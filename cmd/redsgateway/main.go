// Command redsgateway is the sharding front door of a REDS cluster: it
// accepts the same /v1 job API as redsserver, but instead of running
// discovery pipelines itself it consistent-hash-routes each job to one
// of a configured set of redsserver workers, keyed by the job's dataset
// content hash — so every dataset's metamodel cache stays hot on one
// worker. Dead workers are detected by a health prober (and by failed
// executions) and their jobs re-routed to the next worker on the ring.
//
//	redsgateway -addr :8090 \
//	    -workers http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	    -store.dir /var/lib/redsgw -store.ttl 168h
//
// The gateway is an ordinary engine.Engine whose executor is a
// cluster.Dispatcher, so jobs submitted here get the full orchestration
// treatment — bounded queue, lifecycle tracking, durable store,
// TTL GC — while execution happens on the workers through their
// internal API (POST /internal/v1/execute).
//
// Two endpoints aggregate across the fleet:
//
//	GET /v1/jobs     gateway jobs + each worker's own job list
//	GET /v1/healthz  gateway liveness + ring state + per-worker health
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/reds-go/reds/internal/cluster"
	"github.com/reds-go/reds/internal/engine"
	"github.com/reds-go/reds/internal/engine/store"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workersFlag := flag.String("workers", "", "comma-separated redsserver base URLs (required), e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
	dispatch := flag.Int("dispatch", 0, "jobs dispatched concurrently (default 2 per worker)")
	queue := flag.Int("queue", 256, "max pending jobs before submissions are rejected")
	replicas := flag.Int("hash.replicas", 128, "virtual nodes per worker on the consistent-hash ring")
	healthInterval := flag.Duration("health.interval", 2*time.Second, "worker health-probe period")
	healthTimeout := flag.Duration("health.timeout", time.Second, "single health-probe timeout")
	pollInterval := flag.Duration("poll.interval", 150*time.Millisecond, "remote execution progress-poll period")
	storeDir := flag.String("store.dir", "", "directory for the durable job store (empty: in-memory only)")
	storeTTL := flag.Duration("store.ttl", 0, "retention of finished jobs before garbage collection (0: keep forever)")
	storeSweep := flag.Duration("store.sweep-interval", time.Minute, "how often the TTL sweeper runs")
	storeFsync := flag.Duration("store.fsync-interval", 0, "batching window for job-store fsyncs (0: fsync every append)")
	flag.Parse()

	workers := splitWorkers(*workersFlag)
	if len(workers) == 0 {
		log.Fatalf("redsgateway: -workers is required (comma-separated redsserver base URLs)")
	}
	if *dispatch <= 0 {
		*dispatch = 2 * len(workers)
	}

	client := &http.Client{Timeout: 15 * time.Second}
	disp, err := cluster.NewDispatcher(workers, cluster.DispatcherOptions{
		Replicas:     *replicas,
		PollInterval: *pollInterval,
		Client:       client,
		Health: cluster.HealthOptions{
			Interval: *healthInterval,
			Timeout:  *healthTimeout,
		},
	})
	if err != nil {
		log.Fatalf("redsgateway: %v", err)
	}

	var st store.Store
	if *storeDir != "" {
		fs, err := store.OpenFS(*storeDir, store.FSOptions{FsyncInterval: *storeFsync})
		if err != nil {
			log.Fatalf("redsgateway: opening job store: %v", err)
		}
		if n := fs.Skipped(); n > 0 {
			log.Printf("redsgateway: job store replay skipped %d corrupt lines", n)
		}
		st = fs
	}

	eng, err := engine.New(engine.Options{
		Workers:       *dispatch,
		QueueSize:     *queue,
		Executor:      disp,
		Store:         st,
		TTL:           *storeTTL,
		SweepInterval: *storeSweep,
	})
	if err != nil {
		log.Fatalf("redsgateway: starting engine: %v", err)
	}
	if rec := eng.Recovery(); rec.Recovered > 0 {
		log.Printf("redsgateway: recovered %d jobs from %s (%d re-enqueued, %d orphaned running jobs marked failed)",
			rec.Recovered, *storeDir, rec.Reenqueued, rec.Orphaned)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", gatewayHealthz(eng, disp))
	mux.HandleFunc("GET /v1/jobs", gatewayJobs(eng, disp, client))
	mux.Handle("/", engine.NewHandler(eng))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(mux),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Printf("redsgateway: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		eng.Close()
		disp.Close()
	}()

	log.Printf("redsgateway: listening on %s, routing to %d workers: %s", *addr, len(workers), strings.Join(workers, ", "))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("redsgateway: %v", err)
	}
	<-shutdownDone
}

// splitWorkers parses the -workers flag, trimming blanks and trailing
// slashes so the same worker written two ways cannot land on the ring
// twice.
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		if w != "" {
			out = append(out, w)
		}
	}
	return out
}

// gatewayHealthz reports the gateway's own state plus the ring and every
// worker's health (with its last healthz payload, fetched live). ok is
// true while at least one worker is alive — a gateway with no workers
// left cannot make progress.
func gatewayHealthz(eng *engine.Engine, disp *cluster.Dispatcher) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		statuses := disp.Health().Snapshot()
		anyAlive := false
		for _, st := range statuses {
			if st.Alive {
				anyAlive = true
			}
		}
		dispatched, failovers := disp.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":         anyAlive,
			"role":       "gateway",
			"jobs":       eng.JobCount(),
			"workers":    statuses,
			"dispatched": dispatched,
			"failovers":  failovers,
			"ring": map[string]any{
				"workers": disp.Ring().Len(),
			},
		})
	}
}

// gatewayJobs aggregates the cluster's job listings: the gateway's own
// jobs (the ones clients submitted here) plus each worker's /v1/jobs,
// fetched concurrently — jobs submitted directly to a worker stay
// visible through the gateway's single pane.
func gatewayJobs(eng *engine.Engine, disp *cluster.Dispatcher, client *http.Client) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
		defer cancel()
		fetched := cluster.FanOutJSON(ctx, client, disp.Ring().Nodes(), "/v1/jobs")
		writeJSON(w, http.StatusOK, map[string]any{
			"jobs":    eng.Jobs(),
			"workers": fetched,
		})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
