// Command redsgateway is the sharding front door of a REDS cluster: it
// accepts the same /v1 job API as redsserver, but instead of running
// discovery pipelines itself it consistent-hash-routes each job to one
// of a configured set of redsserver workers, keyed by the job's dataset
// content hash — so every dataset's metamodel cache stays hot on one
// worker. Dead workers are detected by a health prober (and by failed
// executions) and their jobs re-routed to the next worker on the ring.
//
//	redsgateway -addr :8090 \
//	    -workers http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	    -store.dir /var/lib/redsgw -store.ttl 168h
//
// The gateway is an ordinary engine.Engine whose executor is a
// cluster.Dispatcher, so jobs submitted here get the full orchestration
// treatment — bounded queue, lifecycle tracking, durable store,
// TTL GC — while execution happens on the workers through their
// internal API (POST /internal/v1/execute). Each job's X-Request-Id
// travels with the dispatch, so one id greps across gateway and worker
// logs.
//
// Two endpoints aggregate across the fleet:
//
//	GET /v1/jobs     gateway jobs + each worker's own job list
//	GET /v1/healthz  gateway liveness + ring state + per-worker health
//
// Observability (see docs/OBSERVABILITY.md): /metrics serves the
// gateway's telemetry registry (engine, dispatcher, prober, store, HTTP
// series) in Prometheus text format; -log.level/-log.format control the
// structured logs; -debug.addr starts a pprof listener.
//
// Admission control mirrors redsserver (see docs/API.md "Authentication
// & quotas"): -auth.tokens, -quota.*, -caps.*, -job.max-runtime. The
// -internal.secret flag (or REDS_INTERNAL_SECRET) serves double duty:
// the gateway sends it on every dispatch and fan-out to workers started
// with the same secret, and requires it (or an admin token) on its own
// /internal/v1/workers admin API.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/reds-go/reds/internal/admission"
	"github.com/reds-go/reds/internal/cluster"
	"github.com/reds-go/reds/internal/engine"
	"github.com/reds-go/reds/internal/engine/store"
	"github.com/reds-go/reds/internal/faultinject"
	"github.com/reds-go/reds/internal/telemetry"
)

// HTTP server timeouts: generous enough for a paper-scale inline-CSV
// upload or a slow scrape, small enough that stuck clients cannot pin
// connections forever.
const (
	httpReadTimeout  = 2 * time.Minute
	httpWriteTimeout = 2 * time.Minute
	httpIdleTimeout  = 5 * time.Minute
)

// buildAdmission assembles the admission controller: token store (when
// -auth.tokens is set), quotas, caps and the internal secret.
func buildAdmission(opts admission.Options, tokensPath string, logger *slog.Logger) (*admission.Controller, error) {
	if tokensPath != "" {
		tokens, err := admission.LoadTokens(tokensPath)
		if err != nil {
			return nil, err
		}
		opts.Tokens = tokens
		logger.Info("bearer-token authentication enabled", "path", tokensPath, "tokens", tokens.Len())
	}
	opts.Logger = logger
	return admission.New(opts), nil
}

// reloadOnSIGHUP re-reads the token file whenever the process receives
// SIGHUP, so operators rotate tokens without a restart. A bad file
// keeps the previous table (and logs the parse error).
func reloadOnSIGHUP(ctrl *admission.Controller, logger *slog.Logger) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	go func() {
		for range ch {
			if err := ctrl.ReloadTokens(); err != nil {
				logger.Error("token reload failed; keeping the previous table", "error", err)
				continue
			}
			logger.Info("token file reloaded")
		}
	}()
}

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workersFlag := flag.String("workers", "", "comma-separated redsserver base URLs (required), e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
	dispatch := flag.Int("dispatch", 0, "jobs dispatched concurrently (default 2 per worker)")
	queue := flag.Int("queue", 256, "max pending jobs before submissions are rejected")
	replicas := flag.Int("hash.replicas", 128, "virtual nodes per worker on the consistent-hash ring")
	healthInterval := flag.Duration("health.interval", 2*time.Second, "worker health-probe period")
	healthTimeout := flag.Duration("health.timeout", time.Second, "single health-probe timeout")
	pollInterval := flag.Duration("poll.interval", 150*time.Millisecond, "remote execution progress-poll period")
	storeDir := flag.String("store.dir", "", "directory for the durable job store (empty: in-memory only)")
	storeTTL := flag.Duration("store.ttl", 0, "retention of finished jobs before garbage collection (0: keep forever)")
	storeSweep := flag.Duration("store.sweep-interval", time.Minute, "how often the TTL sweeper runs")
	storeFsync := flag.Duration("store.fsync-interval", 0, "batching window for job-store fsyncs (0: fsync every append)")
	drainTimeout := flag.Duration("drain.timeout", 10*time.Second, "how long shutdown waits for in-flight jobs to finish before canceling them")
	internalSecret := flag.String("internal.secret", "", "shared secret sent to workers on every dispatch and required on /internal/v1/workers (also read from REDS_INTERNAL_SECRET); empty: no secret")
	authTokens := flag.String("auth.tokens", "", "path to the bearer-token JSON file enabling authentication (hot-reloaded on SIGHUP); empty: no auth")
	quotaRPS := flag.Float64("quota.rps", 0, "per-client job-submission rate limit in requests/second (0: unlimited; token-file entries may override)")
	quotaBurst := flag.Int("quota.burst", 0, "per-client submission burst on top of -quota.rps (min 1 when rate limiting)")
	quotaInflight := flag.Int("quota.inflight", 0, "max unfinished jobs one client may have at once (0: unlimited)")
	capMaxL := flag.Int("caps.max-l", 0, "max Monte Carlo label budget l one job may request (0: unlimited)")
	capMaxN := flag.Int("caps.max-n", 0, "max design size n / inline dataset rows one job may submit (0: unlimited)")
	capMaxVariants := flag.Int("caps.max-variants", 0, "max metamodel variant-grid size one job may request (0: unlimited)")
	capMaxTrainBins := flag.Int("caps.max-train-bins", 0, "max train_bins one job may request (0: unlimited)")
	capMaxBody := flag.Int64("caps.max-body-bytes", 64<<20, "max POST /v1/jobs request body size in bytes (0: unlimited)")
	maxRuntime := flag.Duration("job.max-runtime", 0, "hard wall-clock ceiling on any job's execution, and the ceiling on deadline_seconds requests (0: none)")
	faults := flag.String("faults", "", "arm fault-injection points, e.g. store.wal.torn=1 (testing only; also read from REDS_FAULTS)")
	logLevel := flag.String("log.level", "info", "minimum log level: debug, info, warn, error")
	logFormat := flag.String("log.format", "json", "log output format: json or text")
	debugAddr := flag.String("debug.addr", "", "listen address for the debug server (pprof + metrics); empty: disabled")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		slog.Error("redsgateway: bad logging flags", "error", err)
		os.Exit(1)
	}
	logger = logger.With("service", "redsgateway")
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	workers := splitWorkers(*workersFlag)
	if len(workers) == 0 {
		fatal("-workers is required", errors.New("comma-separated redsserver base URLs"))
	}
	if *dispatch <= 0 {
		*dispatch = 2 * len(workers)
	}

	if spec := firstNonEmpty(*faults, os.Getenv("REDS_FAULTS")); spec != "" {
		if err := faultinject.Arm(spec); err != nil {
			fatal("bad -faults spec", err)
		}
		logger.Warn("fault injection armed", "spec", spec)
	}

	// One registry per process: dispatcher, prober, engine, store and
	// the HTTP middleware all record here; /metrics serves it.
	reg := telemetry.NewRegistry()

	secret := firstNonEmpty(*internalSecret, os.Getenv("REDS_INTERNAL_SECRET"))
	client := &http.Client{Timeout: 15 * time.Second}
	disp, err := cluster.NewDispatcher(workers, cluster.DispatcherOptions{
		Replicas:       *replicas,
		PollInterval:   *pollInterval,
		Client:         client,
		Metrics:        reg,
		InternalSecret: secret,
		Health: cluster.HealthOptions{
			Interval: *healthInterval,
			Timeout:  *healthTimeout,
		},
	})
	if err != nil {
		fatal("building dispatcher failed", err)
	}

	var st store.Store
	if *storeDir != "" {
		fs, err := store.OpenFS(*storeDir, store.FSOptions{FsyncInterval: *storeFsync, Metrics: reg})
		if err != nil {
			fatal("opening job store failed", err)
		}
		if n := fs.Skipped(); n > 0 {
			logger.Warn("job store replay skipped corrupt lines", "skipped", n, "dir", *storeDir)
		}
		st = fs
	}

	eng, err := engine.New(engine.Options{
		Workers:       *dispatch,
		QueueSize:     *queue,
		Executor:      disp,
		Store:         st,
		TTL:           *storeTTL,
		SweepInterval: *storeSweep,
		Metrics:       reg,
		Logger:        logger,
	})
	if err != nil {
		fatal("starting engine failed", err)
	}
	if rec := eng.Recovery(); rec.Recovered > 0 {
		logger.Info("recovered jobs from store", "dir", *storeDir,
			"recovered", rec.Recovered, "reenqueued", rec.Reenqueued, "orphaned", rec.Orphaned)
	}

	ctrl, err := buildAdmission(admission.Options{
		RPS:         *quotaRPS,
		Burst:       *quotaBurst,
		MaxInFlight: *quotaInflight,
		Caps: admission.Caps{
			MaxL:         *capMaxL,
			MaxN:         *capMaxN,
			MaxVariants:  *capMaxVariants,
			MaxTrainBins: *capMaxTrainBins,
			MaxBodyBytes: *capMaxBody,
			MaxRuntime:   *maxRuntime,
		},
		InternalSecret: secret,
		Metrics:        reg,
	}, *authTokens, logger)
	if err != nil {
		fatal("loading -auth.tokens failed", err)
	}
	reloadOnSIGHUP(ctrl, logger)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", gatewayHealthz(eng, disp))
	mux.HandleFunc("GET /v1/readyz", gatewayReadyz(disp))
	mux.HandleFunc("GET /v1/jobs", gatewayJobs(eng, disp, client, secret))
	mux.HandleFunc("GET /internal/v1/workers", listWorkers(disp))
	mux.HandleFunc("POST /internal/v1/workers", addWorker(disp, logger))
	mux.HandleFunc("DELETE /internal/v1/workers", removeWorker(disp, logger))
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("/", engine.NewHandler(eng, engine.WithAdmission(ctrl)))

	// Admission sits inside Instrument so rejected requests still get
	// request IDs and access-log lines.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           telemetry.Instrument(ctrl.Middleware(mux), reg, logger),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       httpReadTimeout,
		WriteTimeout:      httpWriteTimeout,
		IdleTimeout:       httpIdleTimeout,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           telemetry.DebugHandler(reg),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       httpReadTimeout,
			// No WriteTimeout: pprof profile streams (?seconds=N) may
			// legitimately run long.
			IdleTimeout: httpIdleTimeout,
		}
		go func() {
			logger.Info("debug server listening", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logger.Info("shutting down", "drain_timeout", drainTimeout.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
		// Drain before teardown: jobs already dispatched to workers get
		// drain.timeout to finish (their checkpoints are persisted along
		// the way, so whatever is cut off resumes after restart).
		if !eng.Drain(*drainTimeout) {
			logger.Warn("drain timeout: canceling remaining jobs")
		}
		eng.Close()
		disp.Close()
	}()

	logger.Info("listening", "addr", *addr, "workers", strings.Join(workers, ", "))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("server failed", err)
	}
	<-shutdownDone
}

// splitWorkers parses the -workers flag, trimming blanks and trailing
// slashes so the same worker written two ways cannot land on the ring
// twice.
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		if w != "" {
			out = append(out, w)
		}
	}
	return out
}

// gatewayHealthz reports the gateway's own state plus the ring and every
// worker's health (with its last healthz payload, fetched live). ok is
// true while at least one worker is alive — a gateway with no workers
// left cannot make progress. The dispatched/failovers fields read the
// same telemetry counters /metrics exposes.
func gatewayHealthz(eng *engine.Engine, disp *cluster.Dispatcher) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		statuses := disp.Health().Snapshot()
		anyAlive := false
		for _, st := range statuses {
			if st.Alive {
				anyAlive = true
			}
		}
		dispatched, failovers := disp.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":         anyAlive,
			"role":       "gateway",
			"jobs":       eng.JobCount(),
			"workers":    statuses,
			"dispatched": dispatched,
			"failovers":  failovers,
			"ready":      disp.Ready(),
			"ring": map[string]any{
				"workers": disp.Ring().Len(),
				"changes": disp.Ring().Mutations(),
			},
		})
	}
}

// gatewayReadyz is the readiness gate: 503 until the first health-probe
// round has completed AND at least one worker on the ring is alive, 200
// afterwards. Liveness (/v1/healthz) answers ok the moment the process
// is up; readiness only once observed worker health says jobs can
// actually run — load balancers and smoke tests should gate on this.
func gatewayReadyz(disp *cluster.Dispatcher) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		probed := disp.Ready()
		anyAlive := false
		for _, st := range disp.Health().Snapshot() {
			if st.Alive {
				anyAlive = true
				break
			}
		}
		ready := probed && anyAlive
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"ready":         ready,
			"probed":        probed,
			"alive_workers": anyAlive,
		})
	}
}

// workerRequest is the body of worker-admin calls.
type workerRequest struct {
	URL string `json:"url"`
}

// listWorkers reports the registered workers with their health.
func listWorkers(disp *cluster.Dispatcher) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"workers": disp.Health().Snapshot(),
			"ring": map[string]any{
				"workers": disp.Ring().Len(),
				"changes": disp.Ring().Mutations(),
			},
		})
	}
}

// addWorker registers a worker at runtime (POST /internal/v1/workers
// {"url":"http://10.0.0.3:8080"}): the ring rebalances, probing starts,
// and the next dispatches can land on it.
func addWorker(disp *cluster.Dispatcher, logger *slog.Logger) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		url, ok := workerURL(w, r)
		if !ok {
			return
		}
		if err := disp.AddWorker(url); err != nil {
			writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error()})
			return
		}
		logger.Info("worker registered", "worker", url, "ring_size", disp.Ring().Len())
		writeJSON(w, http.StatusOK, map[string]any{
			"workers": disp.Workers(),
		})
	}
}

// removeWorker deregisters a worker at runtime (DELETE with the same
// body as POST, or ?url=). Its keys rebalance onto the survivors.
func removeWorker(disp *cluster.Dispatcher, logger *slog.Logger) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		url, ok := workerURL(w, r)
		if !ok {
			return
		}
		if err := disp.RemoveWorker(url); err != nil {
			status := http.StatusNotFound
			if strings.Contains(err.Error(), "last worker") {
				status = http.StatusConflict
			}
			writeJSON(w, status, map[string]any{"error": err.Error()})
			return
		}
		logger.Info("worker deregistered", "worker", url, "ring_size", disp.Ring().Len())
		writeJSON(w, http.StatusOK, map[string]any{
			"workers": disp.Workers(),
		})
	}
}

// workerURL extracts the worker base URL from the JSON body or the
// ?url= query parameter, normalized like the -workers flag.
func workerURL(w http.ResponseWriter, r *http.Request) (string, bool) {
	var req workerRequest
	if r.Body != nil {
		_ = json.NewDecoder(r.Body).Decode(&req)
	}
	if req.URL == "" {
		req.URL = r.URL.Query().Get("url")
	}
	url := strings.TrimRight(strings.TrimSpace(req.URL), "/")
	if url == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "missing worker url (JSON body {\"url\":...} or ?url=)"})
		return "", false
	}
	return url, true
}

// firstNonEmpty returns the first non-empty string, so the -faults flag
// wins over the REDS_FAULTS environment variable.
func firstNonEmpty(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}

// gatewayJobs aggregates the cluster's job listings: the gateway's own
// jobs (the ones clients submitted here) plus each worker's /v1/jobs,
// fetched concurrently — jobs submitted directly to a worker stay
// visible through the gateway's single pane. The fan-out carries the
// internal secret so secret-guarded workers admit it.
func gatewayJobs(eng *engine.Engine, disp *cluster.Dispatcher, client *http.Client, secret string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
		defer cancel()
		var hdr http.Header
		if secret != "" {
			hdr = http.Header{admission.InternalSecretHeader: []string{secret}}
		}
		fetched := cluster.FanOutJSON(ctx, client, disp.Ring().Nodes(), "/v1/jobs", hdr)
		writeJSON(w, http.StatusOK, map[string]any{
			"jobs":    eng.Jobs(),
			"workers": fetched,
		})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
