package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/benchdata"
	"github.com/reds-go/reds/internal/bi"
	"github.com/reds-go/reds/internal/core"
	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/gbt"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/prim"
	"github.com/reds-go/reds/internal/rf"
	"github.com/reds-go/reds/internal/ruleset"
	"github.com/reds-go/reds/internal/sample"
)

// benchResult is the machine-readable record of one component benchmark:
// the figures CI and the perf trajectory track.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the top-level JSON document `redsbench -bench -json`
// emits; snapshots of it (BENCH_PR2.json, ...) record the perf
// trajectory across PRs.
type benchReport struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPU        int    `json:"num_cpu"`
	Date       string `json:"date"`
	// Note flags non-obvious measurement conditions; set on single-core
	// runs, where the parallel-path benchmarks measure serialized
	// execution and understate their multi-core speedups.
	Note       string        `json:"note,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchData is the dataset generator shared with the repo's
// bench_test.go (internal/benchdata), so the binary reports the same
// workloads `go test -bench` measures.
func benchData(n, m int, seed int64) *dataset.Dataset {
	return benchdata.Gen(n, m, seed)
}

// tunedRFPaper mirrors bench_test.go's fold × grid workload: the
// caret-style mtry grid ({3, 6} for M=10) at the paper's ntree=500,
// exact or histogram-binned.
func tunedRFPaper(binned bool) metamodel.Trainer {
	var grid []metamodel.Trainer
	for _, mtry := range []int{3, 6} {
		if binned {
			grid = append(grid, &rf.BinnedTrainer{Trainer: rf.Trainer{NTrees: 500, MTry: mtry}})
		} else {
			grid = append(grid, &rf.Trainer{NTrees: 500, MTry: mtry})
		}
	}
	return &metamodel.Tuned{Family: "rf", Grid: grid}
}

// componentBenchmarks enumerates the hot-path benchmarks: each optimized
// path next to its kept reference implementation, so every report
// carries its own before/after.
func componentBenchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	primData := benchData(10000, 20, 1)
	sdTrain := benchData(4000, 10, 3)
	mmTrain := benchData(400, 10, 5)

	rfModel, err := (&rf.Trainer{}).Train(benchData(400, 10, 14), rand.New(rand.NewSource(15)))
	if err != nil {
		panic(err)
	}
	pts := sample.LatinHypercube{}.Sample(50000, 10, rand.New(rand.NewSource(16)))
	// The paper-scale forest (ntree=500, the R randomForest default
	// behind the paper's caret setup) for the pseudo-label stage pair.
	rfPaper, err := (&rf.Trainer{NTrees: 500}).Train(benchData(400, 10, 14), rand.New(rand.NewSource(15)))
	if err != nil {
		panic(err)
	}
	// The distilled labeling kernel for the paper-scale forest, built
	// once so label_distilled measures labeling alone; the distill
	// benchmark below measures the build itself.
	rfDistilled, err := ruleset.Distill(rfPaper, ruleset.Options{Dim: 10, Seed: 18})
	if err != nil {
		panic(err)
	}

	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"prim_peel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&prim.Peeler{}).Discover(primData, primData, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"prim_peel_reference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&prim.Peeler{Reference: true}).Discover(primData, primData, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"bumping", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&prim.Bumping{Q: 10}).Discover(sdTrain, sdTrain, rand.New(rand.NewSource(4))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"bumping_serial_reference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&prim.Bumping{Q: 10, Workers: 1, Reference: true}).Discover(sdTrain, sdTrain, rand.New(rand.NewSource(4))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"bi_beam", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&bi.BI{}).Discover(sdTrain, sdTrain, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"rf_train", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&rf.Trainer{NTrees: 100}).Train(mmTrain, rand.New(rand.NewSource(6))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"rf_train_reference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&rf.Trainer{NTrees: 100, Reference: true}).Train(mmTrain, rand.New(rand.NewSource(6))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"gbt_train", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&gbt.Trainer{}).Train(mmTrain, rand.New(rand.NewSource(8))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"gbt_train_reference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&gbt.Trainer{Reference: true}).Train(mmTrain, rand.New(rand.NewSource(8))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The histogram-binned training fast path next to the exact pair
		// above, then the paper-scale tuned (fold × grid) workload it
		// targets — exact vs binned is the headline training speedup
		// (BENCH_PR9.json).
		{"rf_train_binned", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&rf.BinnedTrainer{Trainer: rf.Trainer{NTrees: 100}}).Train(mmTrain, rand.New(rand.NewSource(6))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"gbt_train_binned", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (&gbt.BinnedTrainer{}).Train(mmTrain, rand.New(rand.NewSource(8))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"train_tuned_rf", func(b *testing.B) {
			tr := tunedRFPaper(false)
			for i := 0; i < b.N; i++ {
				if _, err := tr.Train(mmTrain, rand.New(rand.NewSource(6))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"train_tuned_rf_binned", func(b *testing.B) {
			tr := tunedRFPaper(true)
			for i := 0; i < b.N; i++ {
				if _, err := tr.Train(mmTrain, rand.New(rand.NewSource(6))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"train_tuned_gbt", func(b *testing.B) {
			tr := gbt.TunedTrainer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Train(mmTrain, rand.New(rand.NewSource(8))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"train_tuned_gbt_binned", func(b *testing.B) {
			tr := gbt.TunedTrainerBinned(0)
			for i := 0; i < b.N; i++ {
				if _, err := tr.Train(mmTrain, rand.New(rand.NewSource(8))); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The full pseudo-label stage (Algorithm 4, lines 3-6) at the
		// paper's L=10^5 on the paper-scale rf: the batch component runs
		// flat-allocation LHS + flattened batch inference; the reference
		// runs the pre-PR5 stage (row-allocated sampling, per-point
		// prediction closure). Identical outputs, measured at whatever
		// GOMAXPROCS the host gives (CI and the committed snapshots use 1).
		{"label_batch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PseudoLabel(context.Background(), rfPaper, sample.LatinHypercube{}, 100000, 10, 17, false, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"label_batch_reference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(17))
				lpts := make([][]float64, 100000)
				for p := range lpts {
					lpts[p] = make([]float64, 10)
				}
				for j := 0; j < 10; j++ {
					perm := rng.Perm(len(lpts))
					for p := range lpts {
						lpts[p][j] = (float64(perm[p]) + rng.Float64()) / float64(len(lpts))
					}
				}
				y, err := metamodel.PredictBatchParallel(context.Background(), lpts, rfPaper.PredictLabel, metamodel.BatchOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dataset.New(lpts, y); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// Rule-set distillation of the paper-scale forest (agreement-
		// ranked tree selection + merge + recompile + holdout fidelity),
		// and the pseudo-label stage run on the resulting compact kernel.
		// label_distilled vs label_batch is the headline speedup the
		// distilled kernel buys at L=10^5.
		{"distill", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ruleset.Distill(rfPaper, ruleset.Options{Dim: 10, Seed: 18}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"label_distilled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PseudoLabel(context.Background(), rfDistilled, sample.LatinHypercube{}, 100000, 10, 17, false, nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"predict_batch_50k_serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				metamodel.PredictBatchSerial(pts, rfModel.PredictProb)
			}
		}},
		{"predict_batch_50k_parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := metamodel.PredictBatchParallel(b.Context(), pts, rfModel.PredictProb, metamodel.BatchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// runComponentBenchmarks executes the hot-path suite via
// testing.Benchmark, prints a table to w and optionally writes the JSON
// report to jsonPath. With jsonPath "-" the JSON goes to stdout and the
// table moves to stderr, keeping stdout cleanly machine-readable.
func runComponentBenchmarks(w io.Writer, jsonPath string) error {
	if jsonPath == "-" {
		w = os.Stderr
	}
	report := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPU:        runtime.NumCPU(),
		Date:       time.Now().UTC().Format(time.RFC3339),
	}
	if report.GOMAXPROCS == 1 {
		report.Note = "single-core run (GOMAXPROCS=1): parallel-path benchmarks measure serialized execution and understate multi-core speedups"
	}
	fmt.Fprintf(w, "%-28s %14s %12s %14s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, bm := range componentBenchmarks() {
		// Settle the heap between benchmarks: garbage from one must not
		// inflate GC pressure (and ns/op) of the next.
		runtime.GC()
		r := testing.Benchmark(bm.fn)
		res := benchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Fprintf(w, "%-28s %14.0f %12d %14d\n", res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", jsonPath)
	}
	return nil
}
