// Command redsbench regenerates the tables and figures of the paper's
// evaluation (Section 9). Each experiment prints the same rows or series
// the paper reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	redsbench -exp table3            # one experiment at reduced scale
//	redsbench -exp all -reps 10      # everything, 10 repetitions per cell
//	redsbench -exp table3 -paper     # full paper scale (hours of CPU)
//	redsbench -exp fig12 -funcs morris,borehole
//
// Experiments: fig6, table3, fig7, table4, fig8, fig9, fig10, fig11,
// fig12, fig13, table5, fig14, all.
//
// Component mode benchmarks the hot paths (PRIM peeling, RF/GBT
// training, BI, batch prediction) next to their kept reference
// implementations and can emit a machine-readable report; committed
// snapshots (BENCH_PR2.json, ...) record the perf trajectory:
//
//	redsbench -bench                 # table on stdout
//	redsbench -bench -json bench.json
//	redsbench -bench -json -         # JSON to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/reds-go/reds/internal/experiment"
)

func main() { os.Exit(mainRun()) }

// mainRun is main with an exit code instead of os.Exit, so the deferred
// profile writers run on every path.
func mainRun() int {
	var (
		exp        = flag.String("exp", "all", "experiment id (table1, fig6, table3, fig7, table4, fig8, fig9, fig10, fig11, fig12, fig13, table5, fig14, ablation, all)")
		reps       = flag.Int("reps", 0, "repetitions per cell (0 = config default)")
		funcsCS    = flag.String("funcs", "", "comma-separated function subset (default: representative cross-section)")
		paper      = flag.Bool("paper", false, "full paper scale: 50 reps, 33 functions, L=100000 (CPU-hours)")
		testN      = flag.Int("testn", 0, "test-set size (0 = config default)")
		lprim      = flag.Int("lprim", 0, "REDS L for PRIM-based methods (0 = config default)")
		lbi        = flag.Int("lbi", 0, "REDS L for BI-based methods (0 = config default)")
		seed       = flag.Int64("seed", 1, "experiment seed")
		workers    = flag.Int("workers", 0, "parallel repetitions (0 = GOMAXPROCS)")
		bench      = flag.Bool("bench", false, "run the component hot-path benchmarks instead of an experiment")
		jsonOut    = flag.String("json", "", "with -bench: write the machine-readable report to this path ('-' = stdout)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path at exit (after a final GC)")
		maxProcs   = flag.Int("gomaxprocs", 0, "set GOMAXPROCS for the run (0 = leave the runtime default; committed snapshots use 1)")
	)
	flag.Parse()

	if *maxProcs > 0 {
		runtime.GOMAXPROCS(*maxProcs)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redsbench: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "redsbench: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "redsbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "redsbench: memprofile: %v\n", err)
			}
		}()
	}

	if *bench {
		if err := runComponentBenchmarks(os.Stdout, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "redsbench: bench: %v\n", err)
			return 1
		}
		return 0
	}

	cfg := experiment.Default()
	if *paper {
		cfg = experiment.Paper()
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *funcsCS != "" {
		cfg.Funcs = strings.Split(*funcsCS, ",")
	}
	if *testN > 0 {
		cfg.TestN = *testN
	}
	if *lprim > 0 {
		cfg.LPrim = *lprim
	}
	if *lbi > 0 {
		cfg.LBI = *lbi
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Out = os.Stdout

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "fig6", "table3", "fig7", "table4", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "ablation"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(id, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "redsbench: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintf(os.Stdout, "\n[%s done in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
	return 0
}

// run executes one experiment. Table3/Fig7 and Table4/Fig8 share their
// expensive suites, so asking for either renders both views.
func run(id string, cfg experiment.Config, w io.Writer) error {
	switch id {
	case "table1":
		r, err := experiment.Table1(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
	case "ablation":
		r, err := experiment.Ablation(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig6":
		r, err := experiment.Fig6(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
	case "table3", "fig7":
		r, err := experiment.Table3(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		fmt.Fprintln(w)
		r.RenderFig7(w)
	case "table4", "fig8":
		r, err := experiment.Table4(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
		fmt.Fprintln(w)
		r.RenderFig8(w)
	case "fig9":
		r, err := experiment.Fig9(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig10":
		r, err := experiment.Fig10(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig11":
		r, err := experiment.Fig11(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig12":
		r, err := experiment.Fig12(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig13", "table5":
		r, err := experiment.Fig13(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
	case "fig14":
		r, err := experiment.Fig14(cfg)
		if err != nil {
			return err
		}
		r.Render(w)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
