// Command redscli runs scenario discovery on a CSV file whose last
// column is the binary label — the third-party-data workflow of
// Section 9.3 of the paper.
//
// Usage:
//
//	redscli -in data.csv                         # REDS (xgb + PRIM)
//	redscli -in data.csv -method prim            # conventional PRIM
//	redscli -in data.csv -method reds-rf -l 50000
//	redscli -in data.csv -boxes 3                # covering: 3 scenarios
//
// The tool prints each scenario as a rule together with its precision,
// recall and WRAcc on the input data, and the full peeling trajectory.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	reds "github.com/reds-go/reds"
)

func main() {
	var (
		in     = flag.String("in", "", "input CSV (last column = label)")
		method = flag.String("method", "reds-xgb", "prim, bumping, bi, reds-rf, reds-xgb, reds-svm")
		l      = flag.Int("l", 20000, "REDS pseudo-dataset size")
		boxes  = flag.Int("boxes", 1, "number of scenarios (covering approach)")
		alpha  = flag.Float64("alpha", 0.05, "PRIM peeling fraction")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "redscli: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redscli:", err)
		os.Exit(1)
	}
	data, err := reds.ReadCSV(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "redscli:", err)
		os.Exit(1)
	}

	disc, err := discoverer(*method, data.M(), *l, *alpha)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redscli:", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))
	results, err := reds.Cover(data, data, disc, *boxes, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redscli:", err)
		os.Exit(1)
	}

	fmt.Printf("examples: %d, inputs: %d, positive share: %.3f\n\n",
		data.N(), data.M(), data.PositiveShare())
	for i, res := range results {
		final := res.Final()
		prec, rec := reds.PrecisionRecall(final, data)
		fmt.Printf("scenario %d: IF %s THEN y=1\n", i+1, final)
		fmt.Printf("  precision %.3f  recall %.3f  wracc %.4f  restricted inputs %d\n",
			prec, rec, reds.WRAcc(final, data), final.Restricted())
		fmt.Printf("  trajectory (%d boxes):\n", len(res.Steps))
		for _, s := range res.Steps {
			p, r := reds.PrecisionRecall(s.Box, data)
			fmt.Printf("    n=%5d  precision %.3f  recall %.3f\n", s.Train.N, p, r)
		}
		fmt.Println()
	}
}

func discoverer(method string, m, l int, alpha float64) (reds.Discoverer, error) {
	primSD := &reds.PRIM{Alpha: alpha}
	switch method {
	case "prim":
		return primSD, nil
	case "bumping":
		return &reds.PRIMBumping{Alpha: alpha}, nil
	case "bi":
		return &reds.BI{}, nil
	case "reds-rf":
		return &reds.REDS{Metamodel: reds.TunedRandomForest(m), L: l, SD: primSD}, nil
	case "reds-xgb":
		return &reds.REDS{Metamodel: reds.TunedGradientBoosting(), L: l, SD: primSD}, nil
	case "reds-svm":
		return &reds.REDS{Metamodel: reds.TunedSVM(), L: l, SD: primSD}, nil
	}
	return nil, fmt.Errorf("unknown method %q", method)
}
