// Command redsdata exports the datasets of the paper's data sources as
// CSV, for inspection or use with other tools.
//
// Usage:
//
//	redsdata -list
//	redsdata -func morris -n 800 -sampler lhs -seed 1 > morris.csv
//	redsdata -func dsgc -n 400 -sampler halton > dsgc.csv
//	redsdata -func tgl > tgl.csv
//	redsdata -func lake -n 1000 > lake.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/dsgc"
	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/lake"
	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/tgl"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available data sources")
		name    = flag.String("func", "", "data source name (Table 1 function, dsgc, tgl, lake)")
		n       = flag.Int("n", 400, "number of examples")
		smpName = flag.String("sampler", "lhs", "sampler: lhs, uniform, halton, logitnormal, mixed")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list {
		for _, fn := range funcs.Names() {
			fmt.Println(fn)
		}
		fmt.Println("dsgc")
		fmt.Println("tgl")
		fmt.Println("lake")
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "redsdata: -func is required (see -list)")
		os.Exit(2)
	}

	d, err := build(*name, *n, *smpName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redsdata:", err)
		os.Exit(1)
	}
	if err := d.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "redsdata:", err)
		os.Exit(1)
	}
}

func build(name string, n int, smpName string, seed int64) (*dataset.Dataset, error) {
	switch name {
	case "tgl":
		return tgl.Dataset(seed), nil
	case "lake":
		return lake.Dataset(n, seed), nil
	}
	var f funcs.Function
	if name == "dsgc" {
		f = dsgc.New()
	} else {
		var err error
		if f, err = funcs.Get(name); err != nil {
			return nil, err
		}
	}
	smp, err := sampler(smpName)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	return funcs.Generate(f, n, smp, rng), nil
}

func sampler(name string) (sample.Sampler, error) {
	switch name {
	case "lhs":
		return sample.LatinHypercube{}, nil
	case "uniform":
		return sample.Uniform{}, nil
	case "halton":
		return sample.Halton{}, nil
	case "logitnormal":
		return sample.LogitNormal{Sigma: 1}, nil
	case "mixed":
		return sample.Mixed{}, nil
	}
	return nil, fmt.Errorf("unknown sampler %q", name)
}
