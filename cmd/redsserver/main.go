// Command redsserver serves scenario discovery over HTTP: submit jobs,
// poll their progress, fetch the discovered scenario as a JSON rule.
//
//	redsserver -addr :8080 -workers 4 -cache 32
//
// The API lives under /v1 (see internal/engine.NewHandler and the
// "Running the server" section of the README):
//
//	POST   /v1/jobs              {"function":"morris","n":400,"l":50000}
//	GET    /v1/jobs/{id}         status + per-stage progress
//	GET    /v1/jobs/{id}/result  final box, rule, metrics, trajectory
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/functions         registered simulation functions
//	GET    /v1/healthz           liveness + cache stats
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/reds-go/reds/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (default GOMAXPROCS/2)")
	queue := flag.Int("queue", 64, "max pending jobs before submissions are rejected")
	cacheSize := flag.Int("cache", 32, "metamodel LRU cache capacity")
	flag.Parse()

	eng := engine.New(engine.Options{
		Workers:   *workers,
		QueueSize: *queue,
		CacheSize: *cacheSize,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(engine.NewHandler(eng)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// ListenAndServe returns the moment Shutdown is *called*, so main
	// must block on this channel until draining and engine teardown
	// actually finish.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Printf("redsserver: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		eng.Close()
	}()

	log.Printf("redsserver: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("redsserver: %v", err)
	}
	<-shutdownDone
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
