// Command redsserver serves scenario discovery over HTTP: submit jobs,
// poll their progress, fetch the discovered scenario as a JSON rule.
//
//	redsserver -addr :8080 -workers 4 -cache.bytes 268435456 \
//	    -store.dir /var/lib/reds -store.ttl 168h -store.sweep-interval 1m
//
// With -store.dir set, jobs and results are persisted to an append-only
// JSON-lines store in that directory and survive restarts: done results
// stay servable, jobs that were still queued are re-enqueued, and jobs a
// crash left running are marked failed with a restart reason. -store.ttl
// garbage-collects finished jobs after the given retention (0 keeps them
// forever). -store.fsync-interval batches the per-append fsyncs under
// high submission rates. Without -store.dir everything lives in memory,
// as before.
//
// The public API lives under /v1 (see docs/API.md for the full
// reference):
//
//	POST   /v1/jobs              {"function":"morris","n":400,"l":50000}
//	GET    /v1/jobs/{id}         status + per-stage progress + timings
//	GET    /v1/jobs/{id}/result  final box, rule, metrics, trajectory
//	GET    /v1/jobs/{id}/rules   distilled rule sets (label_kernel:"distilled" jobs)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/functions         registered simulation functions
//	GET    /v1/healthz           liveness + cache stats
//	GET    /metrics              Prometheus text exposition
//
// Observability (see docs/OBSERVABILITY.md): every component records
// into one telemetry registry exposed at /metrics; logs are structured
// slog lines (-log.level, -log.format) carrying job and request IDs;
// -debug.addr starts a separate listener with net/http/pprof.
//
// Admission control (see docs/API.md "Authentication & quotas"):
// -auth.tokens points at a JSON bearer-token file mapping tokens to
// client IDs with roles (hot-reloaded on SIGHUP); -quota.rps/-quota.
// burst/-quota.inflight throttle each client's submissions;
// -caps.max-* bound what one job may ask for; -job.max-runtime bounds
// every job's wall-clock execution; -internal.secret (or
// REDS_INTERNAL_SECRET) locks the internal execution API to the
// gateway holding the same secret. All of it is opt-in: without the
// flags the server behaves as before.
//
// Unless -internal.disable is set, the server also exposes the internal
// execution API under /internal/v1/execute, which lets a redsgateway
// dispatch jobs onto this process as a cluster worker (see
// docs/ARCHITECTURE.md "Sharding & cluster topology").
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/reds-go/reds/internal/admission"
	"github.com/reds-go/reds/internal/engine"
	"github.com/reds-go/reds/internal/engine/store"
	"github.com/reds-go/reds/internal/faultinject"
	"github.com/reds-go/reds/internal/telemetry"
)

// HTTP server timeouts: generous enough for a paper-scale inline-CSV
// upload or a slow scrape, small enough that stuck clients cannot pin
// connections forever. Job execution is asynchronous (submission
// returns immediately), so no API response takes anywhere near these.
const (
	httpReadTimeout  = 2 * time.Minute
	httpWriteTimeout = 2 * time.Minute
	httpIdleTimeout  = 5 * time.Minute
)

// buildAdmission assembles the admission controller: token store (when
// -auth.tokens is set), quotas, caps and the internal secret.
func buildAdmission(opts admission.Options, tokensPath string, logger *slog.Logger) (*admission.Controller, error) {
	if tokensPath != "" {
		tokens, err := admission.LoadTokens(tokensPath)
		if err != nil {
			return nil, err
		}
		opts.Tokens = tokens
		logger.Info("bearer-token authentication enabled", "path", tokensPath, "tokens", tokens.Len())
	}
	opts.Logger = logger
	return admission.New(opts), nil
}

// reloadOnSIGHUP re-reads the token file whenever the process receives
// SIGHUP, so operators rotate tokens without a restart. A bad file
// keeps the previous table (and logs the parse error).
func reloadOnSIGHUP(ctrl *admission.Controller, logger *slog.Logger) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	go func() {
		for range ch {
			if err := ctrl.ReloadTokens(); err != nil {
				logger.Error("token reload failed; keeping the previous table", "error", err)
				continue
			}
			logger.Info("token file reloaded")
		}
	}()
}

// firstNonEmpty returns the first non-empty string, so the -faults flag
// wins over the REDS_FAULTS environment variable.
func firstNonEmpty(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (default GOMAXPROCS/2)")
	queue := flag.Int("queue", 64, "max pending jobs before submissions are rejected")
	cacheBytes := flag.Int64("cache.bytes", 256<<20, "metamodel cache budget in approximate model bytes")
	cacheTTL := flag.Duration("cache.ttl", 0, "expiry of cached metamodels after training (0: never)")
	labelCacheBytes := flag.Int64("labelcache.bytes", 256<<20, "pseudo-label dataset cache budget in approximate bytes")
	labelCacheTTL := flag.Duration("labelcache.ttl", 0, "expiry of cached pseudo-labeled datasets (0: never)")
	rulesetCacheBytes := flag.Int64("rulesetcache.bytes", 64<<20, "distilled rule-set cache budget in approximate bytes")
	rulesetCacheTTL := flag.Duration("rulesetcache.ttl", 0, "expiry of cached distilled rule sets (0: never)")
	distillFidelity := flag.Float64("distill.fidelity", 0.99, "default holdout fidelity a distilled labeling kernel must reach; below it jobs fall back to the full ensemble")
	trainBinned := flag.Bool("train.binned", false, "default tree-ensemble training to the histogram-binned fast path (requests override per job via train_mode)")
	trainBins := flag.Int("train.bins", 0, "default per-feature bin budget for binned training (0: the trainers' default, 64)")
	trainQuality := flag.Float64("train.quality", 0, "default holdout accuracy the binned gate model must reach; below it families fall back to exact training (0: the executor default, 0.55)")
	storeDir := flag.String("store.dir", "", "directory for the durable job store (empty: in-memory only)")
	storeTTL := flag.Duration("store.ttl", 0, "retention of finished jobs before garbage collection (0: keep forever)")
	storeSweep := flag.Duration("store.sweep-interval", time.Minute, "how often the TTL sweeper runs")
	storeFsync := flag.Duration("store.fsync-interval", 0, "batching window for job-store fsyncs (0: fsync every append)")
	internalOff := flag.Bool("internal.disable", false, "do not expose the internal execution API used by redsgateway")
	internalSecret := flag.String("internal.secret", "", "shared secret required on the internal execution API (also read from REDS_INTERNAL_SECRET); empty: no check")
	authTokens := flag.String("auth.tokens", "", "path to the bearer-token JSON file enabling authentication (hot-reloaded on SIGHUP); empty: no auth")
	quotaRPS := flag.Float64("quota.rps", 0, "per-client job-submission rate limit in requests/second (0: unlimited; token-file entries may override)")
	quotaBurst := flag.Int("quota.burst", 0, "per-client submission burst on top of -quota.rps (min 1 when rate limiting)")
	quotaInflight := flag.Int("quota.inflight", 0, "max unfinished jobs one client may have at once (0: unlimited)")
	capMaxL := flag.Int("caps.max-l", 0, "max Monte Carlo label budget l one job may request (0: unlimited)")
	capMaxN := flag.Int("caps.max-n", 0, "max design size n / inline dataset rows one job may submit (0: unlimited)")
	capMaxVariants := flag.Int("caps.max-variants", 0, "max metamodel variant-grid size one job may request (0: unlimited)")
	capMaxTrainBins := flag.Int("caps.max-train-bins", 0, "max train_bins one job may request (0: unlimited)")
	capMaxBody := flag.Int64("caps.max-body-bytes", 64<<20, "max POST /v1/jobs request body size in bytes (0: unlimited)")
	maxRuntime := flag.Duration("job.max-runtime", 0, "hard wall-clock ceiling on any job's execution, and the ceiling on deadline_seconds requests (0: none)")
	drainTimeout := flag.Duration("drain.timeout", 10*time.Second, "how long shutdown waits for running jobs and executions to finish before canceling them")
	faults := flag.String("faults", "", "arm fault-injection points, e.g. exec.start.delay=200ms,store.wal.torn=1 (testing only; also read from REDS_FAULTS)")
	logLevel := flag.String("log.level", "info", "minimum log level: debug, info, warn, error")
	logFormat := flag.String("log.format", "json", "log output format: json or text")
	debugAddr := flag.String("debug.addr", "", "listen address for the debug server (pprof + metrics); empty: disabled")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		slog.Error("redsserver: bad logging flags", "error", err)
		os.Exit(1)
	}
	logger = logger.With("service", "redsserver")
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	if spec := firstNonEmpty(*faults, os.Getenv("REDS_FAULTS")); spec != "" {
		if err := faultinject.Arm(spec); err != nil {
			fatal("bad -faults spec", err)
		}
		logger.Warn("fault injection armed", "spec", spec)
	}

	// One registry per process: engine, executor (and its caches), store
	// and execution server all record here, and /metrics serves it.
	reg := telemetry.NewRegistry()

	var st store.Store
	if *storeDir != "" {
		fs, err := store.OpenFS(*storeDir, store.FSOptions{FsyncInterval: *storeFsync, Metrics: reg})
		if err != nil {
			fatal("opening job store failed", err)
		}
		if n := fs.Skipped(); n > 0 {
			logger.Warn("job store replay skipped corrupt lines", "skipped", n, "dir", *storeDir)
		}
		st = fs
	}

	// One executor serves both the engine's own jobs and gateway-
	// dispatched executions, so they share the metamodel cache.
	trainMode := ""
	if *trainBinned {
		trainMode = "binned"
	}
	executor := engine.NewLocalExecutor(engine.LocalExecutorOptions{
		CacheBytes:        *cacheBytes,
		CacheTTL:          *cacheTTL,
		LabelCacheBytes:   *labelCacheBytes,
		LabelCacheTTL:     *labelCacheTTL,
		RulesetCacheBytes: *rulesetCacheBytes,
		RulesetCacheTTL:   *rulesetCacheTTL,
		DistillFidelity:   *distillFidelity,
		TrainMode:         trainMode,
		TrainBins:         *trainBins,
		TrainQuality:      *trainQuality,
		Metrics:           reg,
	})
	eng, err := engine.New(engine.Options{
		Workers:       *workers,
		QueueSize:     *queue,
		Executor:      executor,
		Store:         st,
		TTL:           *storeTTL,
		SweepInterval: *storeSweep,
		Metrics:       reg,
		Logger:        logger,
	})
	if err != nil {
		fatal("starting engine failed", err)
	}
	if rec := eng.Recovery(); rec.Recovered > 0 {
		logger.Info("recovered jobs from store", "dir", *storeDir,
			"recovered", rec.Recovered, "reenqueued", rec.Reenqueued, "orphaned", rec.Orphaned)
	}

	ctrl, err := buildAdmission(admission.Options{
		RPS:         *quotaRPS,
		Burst:       *quotaBurst,
		MaxInFlight: *quotaInflight,
		Caps: admission.Caps{
			MaxL:         *capMaxL,
			MaxN:         *capMaxN,
			MaxVariants:  *capMaxVariants,
			MaxTrainBins: *capMaxTrainBins,
			MaxBodyBytes: *capMaxBody,
			MaxRuntime:   *maxRuntime,
		},
		InternalSecret: firstNonEmpty(*internalSecret, os.Getenv("REDS_INTERNAL_SECRET")),
		Metrics:        reg,
	}, *authTokens, logger)
	if err != nil {
		fatal("loading -auth.tokens failed", err)
	}
	reloadOnSIGHUP(ctrl, logger)

	handlerOpts := []engine.HandlerOption{engine.WithMetrics(reg), engine.WithAdmission(ctrl)}
	var execSrv *engine.ExecServer
	if !*internalOff {
		execSrv = engine.NewExecServer(executor, engine.ExecServerOptions{Metrics: reg, Logger: logger})
		handlerOpts = append(handlerOpts, engine.WithExecutionAPI(execSrv))
	}
	// Admission sits inside Instrument so rejected requests still get
	// request IDs and access-log lines.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           telemetry.Instrument(ctrl.Middleware(engine.NewHandler(eng, handlerOpts...)), reg, logger),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       httpReadTimeout,
		WriteTimeout:      httpWriteTimeout,
		IdleTimeout:       httpIdleTimeout,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           telemetry.DebugHandler(reg),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       httpReadTimeout,
			// No WriteTimeout: pprof profile streams (?seconds=N) may
			// legitimately run long.
			IdleTimeout: httpIdleTimeout,
		}
		go func() {
			logger.Info("debug server listening", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// ListenAndServe returns the moment Shutdown is *called*, so main
	// must block on this channel until draining and engine teardown
	// actually finish.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logger.Info("shutting down", "drain_timeout", drainTimeout.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
		// Graceful drain before teardown: let running work finish inside
		// the budget, then cancel whatever is left. Gateway-dispatched
		// executions drain first (their checkpoints keep streaming to the
		// gateway until the end), then the engine's own jobs.
		if execSrv != nil {
			if !execSrv.Drain(*drainTimeout) {
				logger.Warn("drain timeout: canceling remaining remote executions")
			}
		}
		if !eng.Drain(*drainTimeout) {
			logger.Warn("drain timeout: canceling remaining jobs")
		}
		if execSrv != nil {
			execSrv.Close()
		}
		eng.Close()
	}()

	logger.Info("listening", "addr", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("server failed", err)
	}
	<-shutdownDone
}
