// Grid stability: the paper's "dsgc" workload end to end. We simulate a
// four-node smart grid with delayed price-based frequency control, then
// search for the scenario — the region of reaction delays, feedback
// gains, loads and coupling — under which the grid becomes unstable.
//
//	go run ./examples/gridstability
package main

import (
	"fmt"
	"log"
	"math/rand"

	reds "github.com/reds-go/reds"
)

var inputNames = []string{
	"tau1", "tau2", "tau3", "tau4", // reaction delays
	"g1", "g2", "g3", "g4", // price-feedback gains
	"P2", "P3", "P4", // consumer loads
	"K", // line coupling
}

func main() {
	rng := rand.New(rand.NewSource(7))
	grid := reds.DSGC()

	// The paper samples dsgc with a Halton design. Every point is one
	// delay-differential-equation integration — a real simulation.
	fmt.Println("running 400 grid simulations...")
	train := reds.Generate(grid, 400, reds.Halton{}, rng)
	fmt.Printf("unstable share: %.1f%%\n\n", 100*train.PositiveShare())

	// REDS with a random-forest metamodel.
	r := &reds.REDS{
		Metamodel: reds.TunedRandomForest(grid.Dim()),
		Sampler:   reds.Halton{},
		L:         20000,
		SD:        &reds.PRIM{},
	}
	res, err := r.Discover(train, train, rng)
	if err != nil {
		log.Fatal(err)
	}
	// PRIM hands the user a whole trajectory of nested boxes trading
	// recall for precision (Section 5 of the paper argues this
	// interactivity is PRIM's strength). We play the analyst and pick
	// the widest box that is still at least 75% pure.
	final := res.Final()
	bestRecall := -1.0
	totalPos := res.Steps[0].Val.NPos
	for _, s := range res.Steps {
		rec := s.Val.NPos / totalPos
		if s.Val.Precision() >= 0.75 && rec > bestRecall {
			bestRecall, final = rec, s.Box
		}
	}

	fmt.Println("instability scenario (unit-cube coordinates):")
	for j := 0; j < grid.Dim(); j++ {
		if !final.RestrictedDim(j) {
			continue
		}
		fmt.Printf("  %-5s in [%.2f, %.2f]\n", inputNames[j],
			clamp01(final.Lo[j]), clamp01(final.Hi[j]))
	}

	// Validate with fresh simulations.
	fmt.Println("\nvalidating with 3000 fresh simulations...")
	test := reds.Generate(grid, 3000, reds.Halton{}, rng)
	prec, rec := reds.PrecisionRecall(final, test)
	fmt.Printf("precision %.3f (base rate %.3f), recall %.3f\n",
		prec, test.PositiveShare(), rec)
	fmt.Println("\nexpected physics: long delays (high tau) with strong feedback")
	fmt.Println("(high g) destabilize the control loop; the scenario should")
	fmt.Println("restrict some of those upward.")
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
