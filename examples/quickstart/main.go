// Quickstart: discover a scenario with REDS on a stochastic simulation
// stand-in, and compare it against conventional PRIM on the same budget
// of simulation runs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	reds "github.com/reds-go/reds"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// The "simulation model": a noisy band over two of five inputs
	// (function 2 of the paper's Table 1). Each call to Generate runs
	// the simulation once per point — the expensive step REDS minimizes.
	model, err := reds.GetFunction("f2")
	if err != nil {
		log.Fatal(err)
	}
	const budget = 300 // simulation runs we can afford
	train := reds.Generate(model, budget, reds.LatinHypercube{}, rng)
	fmt.Printf("simulated %d points, %.1f%% interesting\n\n",
		train.N(), 100*train.PositiveShare())

	// Conventional scenario discovery: PRIM straight on the data.
	prim := &reds.PRIM{}
	conventional, err := prim.Discover(train, train, rng)
	if err != nil {
		log.Fatal(err)
	}

	// REDS: metamodel -> pseudo-label 20000 fresh points -> PRIM.
	r := &reds.REDS{
		Metamodel: reds.TunedGradientBoosting(),
		L:         20000,
		SD:        &reds.PRIM{},
	}
	improved, err := r.Discover(train, train, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Judge both on a large independent test set (in real use this
	// would require fresh simulations; here the model is cheap).
	test := reds.Generate(model, 20000, reds.Uniform{}, rng)
	for _, run := range []struct {
		name string
		res  *reds.Result
	}{
		{"conventional PRIM", conventional},
		{"REDS             ", improved},
	} {
		final := run.res.Final()
		prec, rec := reds.PrecisionRecall(final, test)
		auc := reds.PRAUC(reds.TrajectoryCurve(run.res, test))
		fmt.Printf("%s  precision %.3f  recall %.3f  PR AUC %.3f\n",
			run.name, prec, rec, auc)
		fmt.Printf("                   scenario: IF %s THEN interesting\n\n", final)
	}
	fmt.Println("ground truth: a0 in [0.3, 0.7] AND a1 <= 0.6 (plus label noise)")
}
