// Lake policy: scenario discovery from third-party data (Section 9.3 of
// the paper). We have a fixed 1000-example dataset from the lake
// eutrophication model — no simulator to query — and ask under which
// uncertain conditions the pollution-release policy fails. REDS
// resamples the input space through its metamodel, improving over plain
// PRIM on the same frozen data.
//
//	go run ./examples/lakepolicy
package main

import (
	"fmt"
	"log"
	"math/rand"

	reds "github.com/reds-go/reds"
)

var inputNames = []string{"b (removal)", "q (recycling)", "mean inflow", "stdev inflow", "delta (discount)"}

func main() {
	rng := rand.New(rand.NewSource(11))

	// The frozen third-party dataset (y=1: the policy fails its
	// reliability target).
	data := reds.LakeDataset(1000, 1)
	fmt.Printf("lake dataset: %d examples, %d inputs, %.1f%% failures\n\n",
		data.N(), data.M(), 100*data.PositiveShare())

	run := func(name string, disc reds.Discoverer) *reds.Result {
		res, err := disc.Discover(data, data, rng)
		if err != nil {
			log.Fatal(err)
		}
		final := res.Final()
		prec, rec := reds.PrecisionRecall(final, data)
		fmt.Printf("%-14s precision %.3f  recall %.3f  restricted %d\n",
			name, prec, rec, final.Restricted())
		return res
	}

	run("plain PRIM", &reds.PRIM{})
	res := run("REDS (RPf)", &reds.REDS{
		Metamodel: reds.TunedRandomForest(data.M()),
		L:         20000,
		SD:        &reds.PRIM{},
	})

	final := res.Final()
	fmt.Println("\nfailure scenario found by REDS:")
	for j := 0; j < data.M(); j++ {
		if final.RestrictedDim(j) {
			fmt.Printf("  %-16s in [%.2f, %.2f] (unit scale)\n",
				inputNames[j], max0(final.Lo[j]), min1(final.Hi[j]))
		}
	}
	fmt.Println("\nexpected: failures concentrate at low removal rate b and")
	fmt.Println("high natural inflows — the classic lake tipping regime.")
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
