// Semi-supervised subgroup discovery (Section 9.4 of the paper): only a
// small labeled sample is available, plus a large pool of unlabeled
// points from the same non-uniform distribution. REDS pseudo-labels the
// pool with its metamodel and mines the result — no fresh sampling, no
// simulator access.
//
//	go run ./examples/semisupervised
package main

import (
	"fmt"
	"log"
	"math/rand"

	reds "github.com/reds-go/reds"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	model, err := reds.GetFunction("f7") // diagonal band, 2 of 5 inputs
	if err != nil {
		log.Fatal(err)
	}

	// Everything is drawn from a logit-normal p(x) — the paper's
	// semi-supervised design. 150 labeled examples, 5000 unlabeled.
	design := reds.LogitNormal{Mu: 0, Sigma: 1}
	labeled := reds.Generate(model, 150, design, rng)
	pool := design.Sample(5000, model.Dim(), rng)
	fmt.Printf("labeled: %d examples (%.1f%% interesting), unlabeled pool: %d\n\n",
		labeled.N(), 100*labeled.PositiveShare(), len(pool))

	// Baseline: PRIM on the labeled data alone.
	prim := &reds.PRIM{}
	base, err := prim.Discover(labeled, labeled, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Semi-supervised REDS: pseudo-label the pool, mine it, validate on
	// the labeled data.
	r := &reds.REDS{Metamodel: reds.TunedRandomForest(model.Dim()), SD: &reds.PRIM{}}
	semi, err := r.DiscoverSemiSupervised(labeled, pool, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate both on a large fresh sample from the same p(x).
	test := reds.Generate(model, 10000, design, rng)
	for _, run := range []struct {
		name string
		res  *reds.Result
	}{
		{"PRIM (labeled only) ", base},
		{"semi-supervised REDS", semi},
	} {
		prec, rec := reds.PrecisionRecall(run.res.Final(), test)
		auc := reds.PRAUC(reds.TrajectoryCurve(run.res, test))
		fmt.Printf("%s  precision %.3f  recall %.3f  PR AUC %.3f\n", run.name, prec, rec, auc)
	}
	fmt.Println("\nground truth: |a0 - a1| < 0.28 (with label noise)")
}
