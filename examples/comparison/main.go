// Comparison: a miniature of the paper's headline experiment (Figure 11
// and Table 3). On the 20-dimensional "morris" screening function we run
// conventional PRIM ("P"), PRIM with cross-validated peeling ("Pc") and
// REDS with gradient boosting ("RPx") over several repetitions, then
// print mean quality and the peeling trajectories.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"math/rand"

	reds "github.com/reds-go/reds"
)

const (
	n    = 400 // simulation budget per repetition
	reps = 5
)

func main() {
	model, err := reds.GetFunction("morris")
	if err != nil {
		log.Fatal(err)
	}
	testRng := rand.New(rand.NewSource(999))
	test := reds.Generate(model, 10000, reds.Uniform{}, testRng)

	type method struct {
		name  string
		build func(train *reds.Dataset, rng *rand.Rand) reds.Discoverer
	}
	methodsList := []method{
		{"P", func(_ *reds.Dataset, _ *rand.Rand) reds.Discoverer {
			return &reds.PRIM{}
		}},
		{"RPx", func(_ *reds.Dataset, _ *rand.Rand) reds.Discoverer {
			return &reds.REDS{
				Metamodel: reds.TunedGradientBoosting(),
				L:         20000,
				SD:        &reds.PRIM{},
			}
		}},
	}

	fmt.Printf("morris, N=%d, %d repetitions, test on %d points\n\n", n, reps, test.N())
	aucs := map[string][]float64{}
	var finals []*reds.Box
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(int64(rep + 1)))
		train := reds.Generate(model, n, reds.LatinHypercube{}, rng)
		for _, m := range methodsList {
			res, err := m.build(train, rng).Discover(train, train, rng)
			if err != nil {
				log.Fatal(err)
			}
			auc := reds.PRAUC(reds.TrajectoryCurve(res, test))
			aucs[m.name] = append(aucs[m.name], auc)
			if m.name == "RPx" {
				finals = append(finals, res.Final())
			}
		}
	}

	for _, m := range methodsList {
		var mean float64
		for _, a := range aucs[m.name] {
			mean += a
		}
		mean /= reps
		fmt.Printf("%-4s mean PR AUC %.3f  (runs:", m.name, mean)
		for _, a := range aucs[m.name] {
			fmt.Printf(" %.3f", a)
		}
		fmt.Println(")")
	}

	dom := reds.UnitDomain(model.Dim())
	fmt.Printf("\nconsistency of RPx final boxes across repetitions: %.3f\n",
		reds.Consistency(finals, dom))
	fmt.Println("\nexpected shape (paper, Figure 11/Table 3): REDS clearly above")
	fmt.Println("plain PRIM in PR AUC at this budget, with higher consistency.")
}
