package reds_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 9). Each benchmark executes the same
// driver as `redsbench -exp <id>` at a small fixed configuration, so
// `go test -bench=.` regenerates every experimental artifact's code path
// quickly; `cmd/redsbench -paper` scales the identical code to the
// paper's full setup. Component micro-benchmarks for the substrates
// follow below.

import (
	"context"
	"io"
	"math/rand"
	"testing"

	reds "github.com/reds-go/reds"
	"github.com/reds-go/reds/internal/benchdata"
	"github.com/reds-go/reds/internal/experiment"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/ruleset"
)

// skipIfShort exempts the heavy paper-figure suites from -short runs
// (notably the CI benchmark smoke step, which only exercises the
// component hot paths).
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping paper-figure suite in -short mode")
	}
}

// benchConfig keeps every driver in the sub-minute range.
func benchConfig() experiment.Config {
	return experiment.Config{
		Funcs: []string{"f2", "hart3", "morris"},
		Reps:  3,
		Ns:    []int{200, 400},
		TestN: 2000,
		LPrim: 4000,
		LBI:   2000,
		Seed:  1,
	}
}

func BenchmarkFig6Demonstration(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkTable3PRIMMethods(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	cfg.Funcs = []string{"f2", "hart3"}
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFig7RelativeChange(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	cfg.Funcs = []string{"f2", "hart3"}
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.RenderFig7(io.Discard)
	}
}

func BenchmarkTable4BIMethods(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	cfg.Funcs = []string{"f2", "hart3"}
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFig8RelativeChange(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	cfg.Funcs = []string{"f2", "hart3"}
	for i := 0; i < b.N; i++ {
		r, err := experiment.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.RenderFig8(io.Discard)
	}
}

func BenchmarkFig9Runtimes(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	cfg.Funcs = []string{"f2"}
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFig10MixedInputs(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	cfg.Funcs = []string{"f2", "hart3"}
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFig11Trajectories(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFig12LearningCurves(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	cfg.Reps = 2
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFig13Table5ThirdParty(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	cfg.Reps = 2
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

func BenchmarkFig14SemiSupervised(b *testing.B) {
	skipIfShort(b)
	cfg := benchConfig()
	cfg.Funcs = []string{"f2", "hart3"}
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		r.Render(io.Discard)
	}
}

// --- Component micro-benchmarks ---

// benchTrain delegates to the generator shared with cmd/redsbench
// (internal/benchdata), so the two harnesses measure identical
// workloads. reds.Dataset aliases the internal dataset type.
func benchTrain(n, m int, seed int64) *reds.Dataset {
	return benchdata.Gen(n, m, seed)
}

func BenchmarkPRIMPeel(b *testing.B) {
	d := benchTrain(10000, 20, 1)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&reds.PRIM{}).Discover(d, d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPRIMPeelReference measures the kept pre-columnar peeler
// (quickselect plus full passes per dimension per step) on the same
// workload, so the fast path's speedup stays visible in every run.
func BenchmarkPRIMPeelReference(b *testing.B) {
	d := benchTrain(10000, 20, 1)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&reds.PRIM{Reference: true}).Discover(d, d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBumping(b *testing.B) {
	d := benchTrain(4000, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&reds.PRIMBumping{Q: 10}).Discover(d, d, rand.New(rand.NewSource(4))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBumpingSerialReference is the pre-PR2 bumping: serial
// replicas, reference peeler.
func BenchmarkBumpingSerialReference(b *testing.B) {
	d := benchTrain(4000, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&reds.PRIMBumping{Q: 10, Workers: 1, Reference: true}).Discover(d, d, rand.New(rand.NewSource(4))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBIBeamSearch(b *testing.B) {
	d := benchTrain(4000, 10, 3)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&reds.BI{}).Discover(d, d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomForestTrain(b *testing.B) {
	d := benchTrain(400, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(6))
		if _, err := (&reds.RandomForest{NTrees: 100}).Train(d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomForestTrainReference measures the kept per-node
// sorting split finder on the same workload.
func BenchmarkRandomForestTrainReference(b *testing.B) {
	d := benchTrain(400, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(6))
		if _, err := (&reds.RandomForest{NTrees: 100, Reference: true}).Train(d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGradientBoostingTrain(b *testing.B) {
	d := benchTrain(400, 10, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(8))
		if _, err := (&reds.GradientBoosting{}).Train(d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGradientBoostingTrainReference measures the kept per-node
// sorting split finder on the same workload.
func BenchmarkGradientBoostingTrainReference(b *testing.B) {
	d := benchTrain(400, 10, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(8))
		if _, err := (&reds.GradientBoosting{Reference: true}).Train(d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomForestTrainBinned measures the histogram-binned fast
// path on the exact-path workload above.
func BenchmarkRandomForestTrainBinned(b *testing.B) {
	d := benchTrain(400, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(6))
		if _, err := (&reds.RandomForestBinned{Trainer: reds.RandomForest{NTrees: 100}}).Train(d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGradientBoostingTrainBinned measures the histogram-binned
// fast path on the exact-path workload above.
func BenchmarkGradientBoostingTrainBinned(b *testing.B) {
	d := benchTrain(400, 10, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(8))
		if _, err := (&reds.GradientBoostingBinned{}).Train(d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tuned (fold × grid) training at paper scale ---

// tunedRFPaper is the caret-style mtry grid ({sqrt(M), M/3, 2M/3} → {3, 6}
// for M=10) at the paper's ntree=500, exact or histogram-binned. This is
// the fold × grid workload the binned fast path targets: 3 folds × 2
// candidates plus the final refit, 3500 trees per op.
func tunedRFPaper(binned bool) reds.MetamodelTrainer {
	var grid []reds.MetamodelTrainer
	for _, mtry := range []int{3, 6} {
		if binned {
			grid = append(grid, &reds.RandomForestBinned{Trainer: reds.RandomForest{NTrees: 500, MTry: mtry}})
		} else {
			grid = append(grid, &reds.RandomForest{NTrees: 500, MTry: mtry})
		}
	}
	return &metamodel.Tuned{Family: "rf", Grid: grid}
}

func BenchmarkTunedTrainRF(b *testing.B) {
	d := benchTrain(400, 10, 5)
	tr := tunedRFPaper(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Train(d, rand.New(rand.NewSource(6))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTunedTrainRFBinned(b *testing.B) {
	d := benchTrain(400, 10, 5)
	tr := tunedRFPaper(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Train(d, rand.New(rand.NewSource(6))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTunedTrainGBT(b *testing.B) {
	d := benchTrain(400, 10, 7)
	tr := reds.TunedGradientBoosting()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Train(d, rand.New(rand.NewSource(8))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTunedTrainGBTBinned(b *testing.B) {
	d := benchTrain(400, 10, 7)
	tr := reds.TunedGradientBoostingBinned(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Train(d, rand.New(rand.NewSource(8))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVMTrain(b *testing.B) {
	d := benchTrain(400, 10, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(10))
		if _, err := (&reds.SVM{}).Train(d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkREDSPipeline(b *testing.B) {
	d := benchTrain(400, 10, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(12))
		r := &reds.REDS{
			Metamodel: &reds.GradientBoosting{Rounds: 50},
			L:         10000,
			SD:        &reds.PRIM{},
		}
		if _, err := r.Discover(d, d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDSGCSimulation(b *testing.B) {
	grid := reds.DSGC()
	rng := rand.New(rand.NewSource(13))
	x := make([]float64, grid.Dim())
	for j := range x {
		x[j] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.Eval(x)
	}
}

// --- Serial vs parallel pseudo-labeling (the redsserver hot path) ---

// benchForest50k trains a default random forest and draws the 50k-point
// pseudo-label workload the engine shards across workers.
func benchForest50k(b *testing.B) (reds.Metamodel, [][]float64) {
	b.Helper()
	d := benchTrain(400, 10, 14)
	rng := rand.New(rand.NewSource(15))
	model, err := (&reds.RandomForest{}).Train(d, rng)
	if err != nil {
		b.Fatal(err)
	}
	pts := reds.LatinHypercube{}.Sample(50000, 10, rng)
	return model, pts
}

func BenchmarkPredictBatch50kSerial(b *testing.B) {
	model, pts := benchForest50k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reds.PredictBatchSerial(pts, model.PredictProb)
	}
}

func BenchmarkPredictBatch50kParallel(b *testing.B) {
	model, pts := benchForest50k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reds.PredictBatchParallel(context.Background(), pts, model.PredictProb, reds.BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictBatch50kParallel4(b *testing.B) {
	model, pts := benchForest50k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reds.PredictBatchParallel(context.Background(), pts, model.PredictProb, reds.BatchOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Pseudo-label stage: batch fast path vs per-point reference ---

// benchPaperForest trains the paper-scale random forest (ntree=500,
// the R randomForest default behind the paper's caret setup; the
// repo's Trainer default is 100 for speed) on the usual 400×10
// training workload.
func benchPaperForest(b *testing.B) reds.Metamodel {
	b.Helper()
	d := benchTrain(400, 10, 14)
	model, err := (&reds.RandomForest{NTrees: 500}).Train(d, rand.New(rand.NewSource(15)))
	if err != nil {
		b.Fatal(err)
	}
	return model
}

// BenchmarkLabelStage100k measures the optimized pseudo-label stage at
// the paper's L=10^5: flat-allocation Latin hypercube sampling plus
// flattened batch inference (metamodel.BatchModel).
func BenchmarkLabelStage100k(b *testing.B) {
	model := benchPaperForest(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reds.PseudoLabel(context.Background(), model, reds.LatinHypercube{}, 100000, 10, 16, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLabelStage100kReference measures the stage as it ran before
// the batch fast path: row-by-row sample allocation and the per-point
// prediction closure.
func BenchmarkLabelStage100kReference(b *testing.B) {
	model := benchPaperForest(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(16))
		pts := make([][]float64, 100000)
		for p := range pts {
			pts[p] = make([]float64, 10)
		}
		for j := 0; j < 10; j++ {
			perm := rng.Perm(len(pts))
			for p := range pts {
				pts[p][j] = (float64(perm[p]) + rng.Float64()) / float64(len(pts))
			}
		}
		y, err := reds.PredictBatchParallel(context.Background(), pts, model.PredictLabel, reds.BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reds.NewDataset(pts, y); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Rule-set distillation: build cost and the labeling speedup ---

// BenchmarkDistill500 measures distilling the paper-scale forest into a
// compact probabilistic rule set: agreement-ranked tree selection,
// box merging, recompilation and the holdout fidelity check.
func BenchmarkDistill500(b *testing.B) {
	model := benchPaperForest(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ruleset.Distill(model, ruleset.Options{Dim: 10, Seed: 18}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLabelStage100kDistilled runs the same pseudo-label stage as
// BenchmarkLabelStage100k but on the distilled kernel; the gap between
// the two is the speedup the distilled kernel buys at the paper's
// L=10^5.
func BenchmarkLabelStage100kDistilled(b *testing.B) {
	model := benchPaperForest(b)
	distilled, err := ruleset.Distill(model, ruleset.Options{Dim: 10, Seed: 18})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reds.PseudoLabel(context.Background(), distilled, reds.LatinHypercube{}, 100000, 10, 16, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}
