// Command chaos-smoke is the CI fault-injection check: it boots a real
// three-worker fleet with faults armed and asserts the robustness
// machinery holds the system together:
//
//   - the gateway's /v1/readyz gates startup (503 until the prober has
//     seen an alive worker),
//   - a worker is registered at runtime through the worker-admin API and
//     receives traffic,
//   - the worker owning a multi-variant job is killed mid-execution (the
//     exec.exit-after fault point), and the job still completes — resumed
//     from its forwarded checkpoint, with no duplicated train/label work
//     (reds_engine_checkpoint_resumes_total ≥ 1 on the survivors),
//   - a dropped status-poll connection (exec.status.drop) is absorbed by
//     the retry/backoff discipline (reds_cluster_retry_attempts_total),
//   - the dead worker is deregistered and a replacement re-registered,
//     after which the fleet runs a full batch of jobs to completion.
//
// The whole fleet runs with admission enabled — bearer tokens, per-client
// quotas and the internal shared secret — so every chaos scenario above
// also proves the failover/checkpoint machinery works through the
// authenticated paths (the worker-admin calls authenticate with the
// token's admin role; dispatches carry the secret).
//
// Run it from the repository root:
//
//	go run ./scripts/chaos-smoke
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/reds-go/reds/internal/cluster"
	"github.com/reds-go/reds/internal/engine"
)

const (
	worker1Addr = "127.0.0.1:19080"
	worker2Addr = "127.0.0.1:19081"
	worker3Addr = "127.0.0.1:19082"
	gatewayAddr = "127.0.0.1:19090"

	// Admission config for the fleet: one token with submit+read+admin
	// (the script drives the worker-admin API too) and a shared internal
	// secret. The quota is generous — this smoke stresses fault paths,
	// not throttling (cluster-smoke owns the 429 assertions).
	internalSecret = "chaos-hush"
	chaosToken     = "chaos-token"
	tokenFileJSON  = `{"tokens":[{"token":"` + chaosToken + `","client":"chaos","roles":["submit","read","admin"]}]}`
)

var (
	worker1URL = "http://" + worker1Addr
	worker2URL = "http://" + worker2Addr
	worker3URL = "http://" + worker3Addr
	gatewayURL = "http://" + gatewayAddr
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos-smoke: ")
	if err := run(); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	log.Printf("PASS")
}

func run() error {
	bin, err := os.MkdirTemp("", "reds-chaos-bin-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bin)

	log.Printf("building binaries")
	for _, target := range []string{"redsserver", "redsgateway"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, target), "./cmd/"+target)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("building %s: %w", target, err)
		}
	}
	stores, err := os.MkdirTemp("", "reds-chaos-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stores)

	tokenFile := filepath.Join(stores, "tokens.json")
	if err := os.WriteFile(tokenFile, []byte(tokenFileJSON), 0o600); err != nil {
		return fmt.Errorf("writing token file: %w", err)
	}

	worker := func(addr, storeDir, faults string) *exec.Cmd {
		args := []string{"-addr", addr, "-workers", "2", "-store.dir", filepath.Join(stores, storeDir),
			"-auth.tokens", tokenFile, "-internal.secret", internalSecret}
		if faults != "" {
			args = append(args, "-faults", faults)
		}
		c := exec.Command(filepath.Join(bin, "redsserver"), args...)
		c.Stdout, c.Stderr = os.Stderr, os.Stderr
		return c
	}

	// w1 carries the kill fault: once any discover span closes, the
	// process exits — after a delay long enough for the gateway's 50ms
	// poller to fetch the inlined-dataset checkpoint (a multi-MB
	// payload), like a crash that strikes between polls. w2
	// drops one status-poll connection to exercise the retry budget. w3
	// starts clean and outside the gateway's initial worker set: it
	// joins through the admin API.
	w1 := worker(worker1Addr, "w1", "exec.exit-after=discover/,exec.exit.delay=3s")
	w2 := worker(worker2Addr, "w2", "exec.status.drop=1")
	w3 := worker(worker3Addr, "w3", "")
	gw := exec.Command(filepath.Join(bin, "redsgateway"), "-addr", gatewayAddr,
		"-workers", worker1URL+","+worker2URL,
		"-health.interval", "500ms", "-poll.interval", "50ms",
		"-store.dir", filepath.Join(stores, "gw"),
		"-auth.tokens", tokenFile, "-internal.secret", internalSecret,
		"-quota.rps", "50", "-quota.burst", "50")
	gw.Stdout, gw.Stderr = os.Stderr, os.Stderr

	procs := []*exec.Cmd{w1, w2, w3, gw}
	for _, p := range procs {
		if err := p.Start(); err != nil {
			return fmt.Errorf("starting %s: %w", p.Path, err)
		}
	}
	kill := func(p *exec.Cmd) {
		if p != nil && p.Process != nil {
			_ = p.Process.Kill()
			_ = p.Wait()
		}
	}
	var w1replacement *exec.Cmd
	defer func() {
		for _, p := range procs {
			kill(p)
		}
		kill(w1replacement)
	}()

	for _, base := range []string{worker1URL, worker2URL, worker3URL, gatewayURL} {
		if err := waitHealthy(base, 30*time.Second); err != nil {
			return err
		}
	}
	if err := waitReady(gatewayURL, 30*time.Second); err != nil {
		return err
	}
	if err := waitGatewaySeesWorkers(2, 30*time.Second); err != nil {
		return err
	}
	changes0, err := ringChanges()
	if err != nil {
		return err
	}
	log.Printf("fleet up: 2 registered workers ready, ring changes=%d", changes0)

	// Elastic join: w3 registers at runtime.
	if err := adminWorker("POST", worker3URL); err != nil {
		return fmt.Errorf("registering w3: %w", err)
	}
	if err := waitGatewaySeesWorkers(3, 30*time.Second); err != nil {
		return err
	}
	if got, err := ringChanges(); err != nil || got != changes0+1 {
		return fmt.Errorf("ring changes after registration = %d (err %v), want %d", got, err, changes0+1)
	}
	log.Printf("w3 registered through the admin API")

	// The chaos job: three SD variants over one metamodel family, with a
	// seed chosen (against the same consistent-hash ring the gateway
	// runs) so the job lands on the fault-armed w1. The first finished
	// discover variant pulls the trigger; the forwarded checkpoint must
	// carry the failover.
	seed := ownedSeed(worker1URL)
	log.Printf("chaos job seed %d routes to w1", seed)
	chaosID, err := submit(fmt.Sprintf(
		`{"function":"morris","n":120,"l":20000,"seed":%d,"sd":["prim","bumping","bi"]}`, seed), "")
	if err != nil {
		return fmt.Errorf("submitting chaos job: %w", err)
	}

	// The fault must actually kill w1 (exit code 3, not a crash).
	w1exit := make(chan error, 1)
	go func() { w1exit <- w1.Wait() }()
	select {
	case <-w1exit:
		if code := w1.ProcessState.ExitCode(); code != 3 {
			return fmt.Errorf("w1 exited with code %d, want the fault's exit code 3", code)
		}
		procs[0] = nil // already reaped
		log.Printf("w1 killed itself mid-job (fault fired)")
	case <-time.After(120 * time.Second):
		return fmt.Errorf("exec.exit-after fault never fired on w1")
	}

	if err := waitDone(chaosID, 180*time.Second); err != nil {
		return fmt.Errorf("chaos job after worker death: %w", err)
	}
	if err := checkChaosTrace(chaosID); err != nil {
		return err
	}
	resumes, err := sumSeries("reds_engine_checkpoint_resumes_total", worker2URL, worker3URL)
	if err != nil {
		return err
	}
	if resumes < 1 {
		return fmt.Errorf("no survivor resumed from a checkpoint (reds_engine_checkpoint_resumes_total = %v)", resumes)
	}
	log.Printf("chaos job completed after failover, %v checkpoint resume(s) on survivors", resumes)

	// Elastic repair: deregister the corpse, boot and re-register a
	// replacement on the same address and store.
	if err := adminWorker("DELETE", worker1URL); err != nil {
		return fmt.Errorf("deregistering dead w1: %w", err)
	}
	if err := waitGatewaySeesWorkers(2, 30*time.Second); err != nil {
		return err
	}
	w1replacement = worker(worker1Addr, "w1", "")
	if err := w1replacement.Start(); err != nil {
		return fmt.Errorf("restarting w1: %w", err)
	}
	if err := waitHealthy(worker1URL, 30*time.Second); err != nil {
		return err
	}
	if err := adminWorker("POST", worker1URL); err != nil {
		return fmt.Errorf("re-registering w1: %w", err)
	}
	if err := waitGatewaySeesWorkers(3, 30*time.Second); err != nil {
		return err
	}
	if got, err := ringChanges(); err != nil || got != changes0+3 {
		return fmt.Errorf("ring changes after dereg+rereg = %d (err %v), want %d", got, err, changes0+3)
	}
	log.Printf("dead w1 deregistered, replacement re-registered")

	// The repaired fleet absorbs a full batch — including whatever keys
	// the dead worker used to own, and w2's one dropped poll connection.
	ids := make([]string, 0, 6)
	for s := 1; s <= 6; s++ {
		id, err := submit(fmt.Sprintf(`{"function":"morris","n":120,"l":2000,"seed":%d}`, s), "")
		if err != nil {
			return fmt.Errorf("submitting batch job (seed %d): %w", s, err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := waitDone(id, 120*time.Second); err != nil {
			return err
		}
	}
	log.Printf("all %d batch jobs done on the repaired fleet", len(ids))

	// The fault-tolerance machinery left its fingerprints on /metrics.
	retries, err := sumSeries("reds_cluster_retry_attempts_total", gatewayURL)
	if err != nil {
		return err
	}
	if retries < 1 {
		return fmt.Errorf("no retries recorded despite the death and the dropped connection")
	}
	trips, err := sumSeries("reds_cluster_breaker_transitions_total", gatewayURL)
	if err != nil {
		return err
	}
	if trips < 1 {
		return fmt.Errorf("the dead worker never tripped its circuit breaker")
	}
	log.Printf("telemetry consistent: %v retries, %v breaker transitions", retries, trips)
	return nil
}

// ownedSeed finds a seed whose request routes to the target worker on
// the same 128-vnode consistent-hash ring the gateway runs.
func ownedSeed(target string) int64 {
	ring := cluster.NewRing(128, worker1URL, worker2URL, worker3URL)
	for seed := int64(1); seed <= 10000; seed++ {
		req := engine.Request{Function: "morris", N: 120, Seed: seed}
		if node, ok := ring.Lookup(req.ShardKey()); ok && node == target {
			return seed
		}
	}
	panic("no seed in 1..10000 routes to " + target) // 3 workers: unreachable
}

// checkChaosTrace asserts the resumed job's trace carries no duplicated
// work: the stitched trace is the forwarded checkpoint's spans plus the
// successor's discover re-runs, so train/label spans stay within the
// one-per-variant bound and each variant's discover appears exactly once.
func checkChaosTrace(id string) error {
	var snap struct {
		Timings []struct {
			Stage string `json:"stage"`
		} `json:"timings"`
	}
	if err := getJSON(fmt.Sprintf("%s/v1/jobs/%s", gatewayURL, id), &snap); err != nil {
		return fmt.Errorf("chaos job snapshot: %w", err)
	}
	trains, labels, discovers := 0, 0, 0
	for _, ts := range snap.Timings {
		switch {
		case strings.HasPrefix(ts.Stage, "train/"):
			trains++
		case strings.HasPrefix(ts.Stage, "label/"):
			labels++
		case strings.HasPrefix(ts.Stage, "discover/"):
			discovers++
		}
	}
	if trains < 1 || trains > 3 || labels > 3 || discovers != 3 {
		return fmt.Errorf("chaos job trace has %d train / %d label / %d discover spans, want ≤3/≤3/3 — duplicated work after failover: %+v",
			trains, labels, discovers, snap.Timings)
	}
	log.Printf("chaos job trace whole: %d train / %d label / %d discover spans", trains, labels, discovers)
	return nil
}

// adminWorker drives the gateway's worker-admin API, authenticating
// with the chaos token's admin role.
func adminWorker(method, workerURL string) error {
	body, _ := json.Marshal(map[string]string{"url": workerURL})
	req, err := http.NewRequest(method, gatewayURL+"/internal/v1/workers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+chaosToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s /internal/v1/workers (%s): %s: %.200s", method, workerURL, resp.Status, raw)
	}
	return nil
}

// ringChanges reads the ring mutation counter off the gateway healthz.
func ringChanges() (int, error) {
	var hz struct {
		Ring struct {
			Changes int `json:"changes"`
		} `json:"ring"`
	}
	if err := getJSON(gatewayURL+"/v1/healthz", &hz); err != nil {
		return 0, err
	}
	return hz.Ring.Changes, nil
}

// sumSeries scrapes /metrics on the given bases and sums every series of
// the named family (across label sets and bases).
func sumSeries(family string, bases ...string) (float64, error) {
	var total float64
	for _, base := range bases {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			return 0, fmt.Errorf("GET %s/metrics: %w", base, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if !strings.HasPrefix(line, family) {
				continue
			}
			rest := line[len(family):]
			if rest != "" && rest[0] != ' ' && rest[0] != '{' {
				continue // a longer family name sharing the prefix
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				continue
			}
			v, err := strconv.ParseFloat(line[sp+1:], 64)
			if err != nil {
				return 0, fmt.Errorf("%s/metrics: bad value in %q: %w", base, line, err)
			}
			total += v
		}
	}
	return total, nil
}

func waitGatewaySeesWorkers(want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var ghz struct {
			OK      bool `json:"ok"`
			Workers []struct {
				Alive bool `json:"alive"`
			} `json:"workers"`
		}
		err := getJSON(gatewayURL+"/v1/healthz", &ghz)
		if err == nil && ghz.OK && len(ghz.Workers) == want {
			alive := 0
			for _, w := range ghz.Workers {
				if w.Alive {
					alive++
				}
			}
			if alive == want {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gateway never saw %d workers alive: %+v (%v)", want, ghz, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s/v1/readyz never answered 200 (last error: %v)", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became healthy: %v", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func submit(body, requestID string) (string, error) {
	req, err := http.NewRequest("POST", gatewayURL+"/v1/jobs", bytes.NewReader([]byte(body)))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+chaosToken)
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, raw)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &out); err != nil || out.ID == "" {
		return "", fmt.Errorf("undecodable submit response: %s", raw)
	}
	return out.ID, nil
}

func waitDone(id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var snap struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := getJSON(fmt.Sprintf("%s/v1/jobs/%s", gatewayURL, id), &snap); err != nil {
			return fmt.Errorf("polling %s: %w", id, err)
		}
		switch snap.Status {
		case "done":
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %s ended %s: %s", id, snap.Status, snap.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %v", id, snap.Status, timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// getJSON GETs url as the chaos client (open endpoints ignore the
// token; authenticated ones need its read role).
func getJSON(url string, v any) error {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+chaosToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %.200s", url, resp.Status, raw)
	}
	return json.Unmarshal(raw, v)
}
