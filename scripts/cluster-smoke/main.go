// Command cluster-smoke is the CI multi-process integration check: it
// builds the real redsserver and redsgateway binaries, boots two
// workers and one gateway as separate OS processes, submits jobs with
// distinct dataset keys through the gateway, and asserts that
//
//   - every job completes with a result,
//   - both workers received traffic (their /v1/healthz execution
//     counters are non-zero — consistent hashing spread the keys), and
//   - the gateway's aggregated healthz sees both workers alive.
//
// Run it from the repository root:
//
//	go run ./scripts/cluster-smoke
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

const (
	worker1Addr = "127.0.0.1:18080"
	worker2Addr = "127.0.0.1:18081"
	gatewayAddr = "127.0.0.1:18090"
	jobCount    = 6
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster-smoke: ")
	if err := run(); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	log.Printf("PASS")
}

func run() error {
	bin, err := os.MkdirTemp("", "reds-smoke-bin-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bin)

	log.Printf("building binaries")
	for _, target := range []string{"redsserver", "redsgateway"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, target), "./cmd/"+target)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("building %s: %w", target, err)
		}
	}

	procs := []*exec.Cmd{
		exec.Command(filepath.Join(bin, "redsserver"), "-addr", worker1Addr, "-workers", "2"),
		exec.Command(filepath.Join(bin, "redsserver"), "-addr", worker2Addr, "-workers", "2"),
		exec.Command(filepath.Join(bin, "redsgateway"), "-addr", gatewayAddr,
			"-workers", fmt.Sprintf("http://%s,http://%s", worker1Addr, worker2Addr),
			"-health.interval", "500ms", "-poll.interval", "50ms"),
	}
	for _, p := range procs {
		p.Stdout, p.Stderr = os.Stderr, os.Stderr
		if err := p.Start(); err != nil {
			return fmt.Errorf("starting %s: %w", p.Path, err)
		}
	}
	defer func() {
		for _, p := range procs {
			_ = p.Process.Kill()
			_ = p.Wait()
		}
	}()

	for _, base := range []string{"http://" + worker1Addr, "http://" + worker2Addr, "http://" + gatewayAddr} {
		if err := waitHealthy(base, 30*time.Second); err != nil {
			return err
		}
	}
	log.Printf("2 workers + gateway healthy")

	// Distinct seeds → distinct shard keys → with two workers and six
	// keys, both sides of the ring get traffic with overwhelming
	// probability (the placement is deterministic, so this cannot flake
	// run to run).
	ids := make([]string, 0, jobCount)
	for seed := 1; seed <= jobCount; seed++ {
		id, err := submit(fmt.Sprintf(`{"function":"morris","n":120,"l":2000,"seed":%d}`, seed))
		if err != nil {
			return fmt.Errorf("submitting job (seed %d): %w", seed, err)
		}
		ids = append(ids, id)
	}
	log.Printf("submitted %d jobs through the gateway", len(ids))

	for _, id := range ids {
		if err := waitDone(id, 120*time.Second); err != nil {
			return err
		}
		var result struct {
			DatasetHash string `json:"dataset_hash"`
		}
		if err := getJSON(fmt.Sprintf("http://%s/v1/jobs/%s/result", gatewayAddr, id), &result); err != nil {
			return fmt.Errorf("result of %s: %w", id, err)
		}
		if result.DatasetHash == "" {
			return fmt.Errorf("job %s: result has no dataset hash", id)
		}
	}
	log.Printf("all %d jobs done with results", len(ids))

	for _, base := range []string{"http://" + worker1Addr, "http://" + worker2Addr} {
		var hz struct {
			Executions int64 `json:"executions"`
		}
		if err := getJSON(base+"/v1/healthz", &hz); err != nil {
			return fmt.Errorf("healthz of %s: %w", base, err)
		}
		if hz.Executions == 0 {
			return fmt.Errorf("worker %s received no executions — sharding routed everything elsewhere", base)
		}
		log.Printf("worker %s executed %d jobs", base, hz.Executions)
	}

	var ghz struct {
		OK      bool `json:"ok"`
		Workers []struct {
			Node  string `json:"node"`
			Alive bool   `json:"alive"`
		} `json:"workers"`
	}
	if err := getJSON(fmt.Sprintf("http://%s/v1/healthz", gatewayAddr), &ghz); err != nil {
		return fmt.Errorf("gateway healthz: %w", err)
	}
	if !ghz.OK || len(ghz.Workers) != 2 {
		return fmt.Errorf("gateway healthz not ok: %+v", ghz)
	}
	for _, w := range ghz.Workers {
		if !w.Alive {
			return fmt.Errorf("gateway sees worker %s dead", w.Node)
		}
	}
	return nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became healthy: %v", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func submit(body string) (string, error) {
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/jobs", gatewayAddr), "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, raw)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &out); err != nil || out.ID == "" {
		return "", fmt.Errorf("undecodable submit response: %s", raw)
	}
	return out.ID, nil
}

func waitDone(id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var snap struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := getJSON(fmt.Sprintf("http://%s/v1/jobs/%s", gatewayAddr, id), &snap); err != nil {
			return fmt.Errorf("polling %s: %w", id, err)
		}
		switch snap.Status {
		case "done":
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %s ended %s: %s", id, snap.Status, snap.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %v", id, snap.Status, timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %.200s", url, resp.Status, raw)
	}
	return json.Unmarshal(raw, v)
}
