// Command cluster-smoke is the CI multi-process integration check: it
// builds the real redsserver and redsgateway binaries, boots two
// workers and one gateway as separate OS processes, submits jobs with
// distinct dataset keys through the gateway, and asserts that
//
//   - every job completes with a result,
//   - both workers received traffic (their /v1/healthz execution
//     counters are non-zero — consistent hashing spread the keys),
//   - the gateway's aggregated healthz sees both workers alive,
//   - a caller-supplied X-Request-Id is echoed on the job snapshot and
//     the job carries a per-stage trace (queue_wait + worker spans),
//   - all three processes serve a parseable /metrics exposition whose
//     every family follows the reds_<subsystem>_<name>_<unit>
//     convention and whose core series reflect the traffic just sent, and
//   - admission control holds: the whole fleet runs with -auth.tokens
//     and -internal.secret, tokenless and bad-token requests get 401, a
//     rate-limited client's burst draws a real 429 with Retry-After, and
//     the reds_admission_* counters reflect those verdicts.
//
// Run it from the repository root:
//
//	go run ./scripts/cluster-smoke
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/reds-go/reds/internal/telemetry"
)

const (
	worker1Addr = "127.0.0.1:18080"
	worker2Addr = "127.0.0.1:18081"
	gatewayAddr = "127.0.0.1:18090"
	jobCount    = 6

	// The fleet's shared internal secret and the smoke's bearer tokens:
	// "smoke" is the unthrottled submitter the main flow uses; "burst"
	// carries a tight per-token quota (rps=1, burst=2) so the overload
	// check can draw a genuine 429.
	internalSecret = "smoke-hush"
	smokeToken     = "smoke-token"
	burstToken     = "burst-token"
	tokenFileJSON  = `{"tokens":[
		{"token":"` + smokeToken + `","client":"smoke","roles":["submit","read"]},
		{"token":"` + burstToken + `","client":"burst","roles":["submit","read"],"rps":1,"burst":2}
	]}`
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cluster-smoke: ")
	if err := run(); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	log.Printf("PASS")
}

func run() error {
	bin, err := os.MkdirTemp("", "reds-smoke-bin-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(bin)

	log.Printf("building binaries")
	for _, target := range []string{"redsserver", "redsgateway"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, target), "./cmd/"+target)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("building %s: %w", target, err)
		}
	}

	// Store directories so the reds_store_* series are live too.
	stores, err := os.MkdirTemp("", "reds-smoke-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stores)

	// The whole fleet runs with admission on: bearer tokens on the public
	// API, a shared secret on the internal one.
	tokenFile := filepath.Join(stores, "tokens.json")
	if err := os.WriteFile(tokenFile, []byte(tokenFileJSON), 0o600); err != nil {
		return fmt.Errorf("writing token file: %w", err)
	}

	procs := []*exec.Cmd{
		exec.Command(filepath.Join(bin, "redsserver"), "-addr", worker1Addr, "-workers", "2",
			"-store.dir", filepath.Join(stores, "w1"),
			"-auth.tokens", tokenFile, "-internal.secret", internalSecret),
		exec.Command(filepath.Join(bin, "redsserver"), "-addr", worker2Addr, "-workers", "2",
			"-store.dir", filepath.Join(stores, "w2"),
			"-auth.tokens", tokenFile, "-internal.secret", internalSecret),
		exec.Command(filepath.Join(bin, "redsgateway"), "-addr", gatewayAddr,
			"-workers", fmt.Sprintf("http://%s,http://%s", worker1Addr, worker2Addr),
			"-health.interval", "500ms", "-poll.interval", "50ms",
			"-store.dir", filepath.Join(stores, "gw"),
			"-auth.tokens", tokenFile, "-internal.secret", internalSecret),
	}
	for _, p := range procs {
		p.Stdout, p.Stderr = os.Stderr, os.Stderr
		if err := p.Start(); err != nil {
			return fmt.Errorf("starting %s: %w", p.Path, err)
		}
	}
	defer func() {
		for _, p := range procs {
			_ = p.Process.Kill()
			_ = p.Wait()
		}
	}()

	for _, base := range []string{"http://" + worker1Addr, "http://" + worker2Addr, "http://" + gatewayAddr} {
		if err := waitHealthy(base, 30*time.Second); err != nil {
			return err
		}
	}
	// The gateway's readiness gate: /v1/readyz stays 503 until the first
	// probe round completes and a worker is alive — exactly the startup
	// race this smoke used to work around by polling healthz.
	if err := waitReady("http://"+gatewayAddr, 30*time.Second); err != nil {
		return err
	}
	// readyz needs one alive worker; the routing assertions below need
	// both, so let the prober finish marking the second one too.
	if err := waitGatewaySeesWorkers(2, 30*time.Second); err != nil {
		return err
	}
	log.Printf("2 workers + gateway ready")

	// Distinct seeds → distinct shard keys → with two workers and six
	// keys, both sides of the ring get traffic with overwhelming
	// probability (the placement is deterministic, so this cannot flake
	// run to run).
	ids := make([]string, 0, jobCount)
	for seed := 1; seed <= jobCount; seed++ {
		id, err := submit(fmt.Sprintf(`{"function":"morris","n":120,"l":2000,"seed":%d}`, seed), "", smokeToken)
		if err != nil {
			return fmt.Errorf("submitting job (seed %d): %w", seed, err)
		}
		ids = append(ids, id)
	}
	log.Printf("submitted %d jobs through the gateway", len(ids))

	for _, id := range ids {
		if err := waitDone(id, 120*time.Second); err != nil {
			return err
		}
		var result struct {
			DatasetHash string `json:"dataset_hash"`
		}
		if err := getJSON(fmt.Sprintf("http://%s/v1/jobs/%s/result", gatewayAddr, id), &result); err != nil {
			return fmt.Errorf("result of %s: %w", id, err)
		}
		if result.DatasetHash == "" {
			return fmt.Errorf("job %s: result has no dataset hash", id)
		}
	}
	log.Printf("all %d jobs done with results", len(ids))

	for _, base := range []string{"http://" + worker1Addr, "http://" + worker2Addr} {
		var hz struct {
			Executions int64 `json:"executions"`
		}
		if err := getJSON(base+"/v1/healthz", &hz); err != nil {
			return fmt.Errorf("healthz of %s: %w", base, err)
		}
		if hz.Executions == 0 {
			return fmt.Errorf("worker %s received no executions — sharding routed everything elsewhere", base)
		}
		log.Printf("worker %s executed %d jobs", base, hz.Executions)
	}

	// A single probe round can transiently fail while the host is
	// saturated by the job burst, so allow the prober a few rounds to
	// settle before judging.
	if err := waitGatewaySeesWorkers(2, 10*time.Second); err != nil {
		return err
	}

	if err := checkTrace(); err != nil {
		return err
	}
	if err := checkMetrics(); err != nil {
		return err
	}
	// Last: the admission checks submit extra jobs, which would skew
	// checkMetrics' exact dispatch counts if they ran earlier.
	return checkAdmission()
}

// checkAdmission asserts the fleet actually enforces its admission
// config: tokenless and bad-token requests are refused, an over-quota
// burst draws real 429s with Retry-After (while at least one submission
// is admitted at full fidelity), and the verdicts show up in the
// reds_admission_* counters.
func checkAdmission() error {
	for _, token := range []string{"", "not-a-real-token"} {
		status, body, _, err := request("GET", fmt.Sprintf("http://%s/v1/jobs", gatewayAddr), "", "", token)
		if err != nil {
			return err
		}
		if status != http.StatusUnauthorized {
			return fmt.Errorf("GET /v1/jobs with token %q: got %d, want 401", token, status)
		}
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "unauthorized" {
			return fmt.Errorf("401 envelope %s, want error code unauthorized", body)
		}
	}
	log.Printf("tokenless and bad-token requests refused with 401")

	// The burst client is capped at rps=1/burst=2 by its token file
	// entry: firing 6 submissions back to back must admit some and 429
	// the rest.
	admitted, rejected := []string{}, 0
	for i := 0; i < 6; i++ {
		status, body, hdr, err := request("POST", fmt.Sprintf("http://%s/v1/jobs", gatewayAddr),
			`{"function":"morris","n":120,"l":2000,"seed":77}`, "", burstToken)
		if err != nil {
			return err
		}
		switch status {
		case http.StatusCreated:
			var out struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
				return fmt.Errorf("undecodable submit response: %s", body)
			}
			admitted = append(admitted, out.ID)
		case http.StatusTooManyRequests:
			rejected++
			if hdr.Get("Retry-After") == "" {
				return fmt.Errorf("429 without a Retry-After header")
			}
			var env struct {
				Error struct {
					Code              string  `json:"code"`
					RetryAfterSeconds float64 `json:"retry_after_seconds"`
				} `json:"error"`
			}
			if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "rate_limited" || env.Error.RetryAfterSeconds <= 0 {
				return fmt.Errorf("429 envelope %s, want rate_limited with retry_after_seconds > 0", body)
			}
		default:
			return fmt.Errorf("burst submit %d: unexpected status %d: %s", i, status, body)
		}
	}
	if len(admitted) == 0 || rejected == 0 {
		return fmt.Errorf("burst of 6: %d admitted, %d rejected — quota not biting", len(admitted), rejected)
	}
	log.Printf("over-quota burst: %d admitted, %d got 429 + Retry-After", len(admitted), rejected)

	// Admitted jobs still run at full fidelity.
	for _, id := range admitted {
		if err := waitDone(id, 120*time.Second); err != nil {
			return err
		}
	}

	gw, err := scrapeMetrics("http://" + gatewayAddr)
	if err != nil {
		return err
	}
	if gw.series["reds_admission_rejected_total"] == 0 {
		return fmt.Errorf("gateway /metrics: no admission rejections recorded despite the 401s/429s above")
	}
	if gw.series["reds_admission_allowed_total"] == 0 {
		return fmt.Errorf("gateway /metrics: no admitted requests recorded")
	}
	log.Printf("reds_admission_{allowed,rejected}_total both live on the gateway")
	return nil
}

// request performs one HTTP call with an optional bearer token and
// returns status, body and headers.
func request(method, url, body, requestID, token string) (int, []byte, http.Header, error) {
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set(telemetry.RequestIDHeader, requestID)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, resp.Header, nil
}

// checkTrace submits one job with an explicit X-Request-Id and asserts
// the id survives the gateway -> worker round trip onto the job
// snapshot, together with a per-stage trace led by queue_wait.
func checkTrace() error {
	const rid = "cafef00dcafef00d"
	id, err := submit(`{"function":"morris","n":120,"l":2000,"seed":99}`, rid, smokeToken)
	if err != nil {
		return fmt.Errorf("submitting traced job: %w", err)
	}
	if err := waitDone(id, 120*time.Second); err != nil {
		return err
	}
	var snap struct {
		RequestID string `json:"request_id"`
		Timings   []struct {
			Stage   string  `json:"stage"`
			Seconds float64 `json:"seconds"`
		} `json:"timings"`
	}
	if err := getJSON(fmt.Sprintf("http://%s/v1/jobs/%s", gatewayAddr, id), &snap); err != nil {
		return fmt.Errorf("traced job snapshot: %w", err)
	}
	if snap.RequestID != rid {
		return fmt.Errorf("job %s carries request_id %q, want the submitted %q", id, snap.RequestID, rid)
	}
	if len(snap.Timings) < 2 || snap.Timings[0].Stage != "queue_wait" {
		return fmt.Errorf("job %s timings %+v, want queue_wait followed by worker spans", id, snap.Timings)
	}
	workerSpans := 0
	for _, ts := range snap.Timings[1:] {
		if ts.Seconds < 0 {
			return fmt.Errorf("job %s span %q has negative duration", id, ts.Stage)
		}
		workerSpans++
	}
	log.Printf("traced job %s: request id echoed, %d worker spans", id, workerSpans)
	return nil
}

// checkMetrics scrapes /metrics on both workers and the gateway,
// validates every exposed family against the naming convention, and
// asserts the core series reflect the traffic this smoke test sent.
func checkMetrics() error {
	const totalJobs = jobCount + 1 // + the traced job

	for _, base := range []string{"http://" + worker1Addr, "http://" + worker2Addr} {
		m, err := scrapeMetrics(base)
		if err != nil {
			return err
		}
		if m.series["reds_exec_executions_total"] == 0 {
			return fmt.Errorf("%s /metrics: no executions recorded", base)
		}
		if m.series["reds_exec_stage_seconds_count"] == 0 {
			return fmt.Errorf("%s /metrics: no stage spans observed", base)
		}
		if m.series["reds_http_requests_total"] == 0 {
			return fmt.Errorf("%s /metrics: no http requests recorded", base)
		}
		log.Printf("%s /metrics: %d families, all names conformant", base, len(m.families))
	}

	gw, err := scrapeMetrics("http://" + gatewayAddr)
	if err != nil {
		return err
	}
	if got := gw.series["reds_cluster_dispatches_total"]; got != totalJobs {
		return fmt.Errorf("gateway dispatched %v executions, want %d", got, totalJobs)
	}
	if got := gw.series["reds_cluster_alive_workers"]; got != 2 {
		return fmt.Errorf("gateway sees %v alive workers on /metrics, want 2", got)
	}
	if got := gw.series["reds_engine_jobs_finished_total"]; got != totalJobs {
		return fmt.Errorf("gateway finished %v jobs on /metrics, want %d", got, totalJobs)
	}
	if gw.series["reds_store_wal_appends_total"] == 0 {
		return fmt.Errorf("gateway store recorded no WAL appends despite -store.dir")
	}
	log.Printf("gateway /metrics: %d families, core series consistent", len(gw.families))
	return nil
}

// metricsDump is a parsed text exposition: family name -> type, plus
// every series name (including _bucket/_sum/_count) summed over its
// label sets.
type metricsDump struct {
	families map[string]string
	series   map[string]float64
}

func scrapeMetrics(base string) (*metricsDump, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("GET %s/metrics: %w", base, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/metrics: %s", base, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.TextContentType {
		return nil, fmt.Errorf("%s/metrics Content-Type = %q, want %q", base, ct, telemetry.TextContentType)
	}

	m := &metricsDump{families: map[string]string{}, series: map[string]float64{}}
	for ln, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("%s/metrics line %d: malformed TYPE comment %q", base, ln+1, line)
			}
			name, typ := fields[2], fields[3]
			if err := telemetry.CheckName(name); err != nil {
				return nil, fmt.Errorf("%s/metrics exposes non-conformant family: %w", base, err)
			}
			m.families[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("%s/metrics line %d: unparseable series %q", base, ln+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("%s/metrics line %d: bad value in %q: %w", base, ln+1, line, err)
		}
		name := line[:sp]
		if br := strings.IndexByte(name, '{'); br >= 0 {
			name = name[:br]
		}
		m.series[name] += v
	}
	if len(m.families) == 0 {
		return nil, fmt.Errorf("%s/metrics exposed no metric families", base)
	}
	return m, nil
}

// waitGatewaySeesWorkers polls the gateway's healthz until its health
// prober reports `want` workers alive (ok + per-worker alive flags).
func waitGatewaySeesWorkers(want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var ghz struct {
			OK      bool `json:"ok"`
			Workers []struct {
				Node  string `json:"node"`
				Alive bool   `json:"alive"`
				Error string `json:"error"`
			} `json:"workers"`
		}
		err := getJSON(fmt.Sprintf("http://%s/v1/healthz", gatewayAddr), &ghz)
		if err == nil && ghz.OK && len(ghz.Workers) == want {
			alive := 0
			for _, w := range ghz.Workers {
				if w.Alive {
					alive++
				}
			}
			if alive == want {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gateway never saw %d workers alive: %+v (%v)", want, ghz, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// waitReady polls the gateway's /v1/readyz until it answers 200.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s/v1/readyz never answered 200 (last error: %v)", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became healthy: %v", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// submit POSTs a job to the gateway as the given client token; a
// non-empty requestID is sent as the X-Request-Id header.
func submit(body, requestID, token string) (string, error) {
	status, raw, _, err := request("POST", fmt.Sprintf("http://%s/v1/jobs", gatewayAddr), body, requestID, token)
	if err != nil {
		return "", err
	}
	if status != http.StatusCreated {
		return "", fmt.Errorf("POST /v1/jobs: %d: %s", status, raw)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &out); err != nil || out.ID == "" {
		return "", fmt.Errorf("undecodable submit response: %s", raw)
	}
	return out.ID, nil
}

func waitDone(id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var snap struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := getJSON(fmt.Sprintf("http://%s/v1/jobs/%s", gatewayAddr, id), &snap); err != nil {
			return fmt.Errorf("polling %s: %w", id, err)
		}
		switch snap.Status {
		case "done":
			return nil
		case "failed", "canceled":
			return fmt.Errorf("job %s ended %s: %s", id, snap.Status, snap.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %v", id, snap.Status, timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// getJSON GETs url as the smoke client (open endpoints ignore the
// token; authenticated ones need its read role).
func getJSON(url string, v any) error {
	status, raw, _, err := request("GET", url, "", "", smokeToken)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %.200s", url, status, raw)
	}
	return json.Unmarshal(raw, v)
}
