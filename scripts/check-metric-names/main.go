// Command check-metric-names is a vet-style source check: it scans the
// repository's Go files for string literals that look like metric names
// (reds_...) and validates each against the registry's naming
// convention, reds_<subsystem>_<name>_<unit> (telemetry.CheckName).
//
// The telemetry registry already panics on a bad name at registration
// time, but only on the code path that actually runs; this check covers
// every literal statically, including names built for dashboards, docs
// examples and tests. Literals inside _test.go files that are
// deliberately invalid (negative test cases) are skipped via the
// "checkname:invalid" line comment.
//
// Run it from the repository root:
//
//	go run ./scripts/check-metric-names
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"github.com/reds-go/reds/internal/telemetry"
)

// nameLike matches literals that are plausibly metric names: the reds_
// prefix followed by at least two more underscore-separated segments.
// Single-segment strings like "reds_smoke" (package paths, prefixes)
// are not metric names and stay out of scope.
var nameLike = regexp.MustCompile(`^reds(_[a-zA-Z0-9]+){3,}$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("check-metric-names: ")
	bad, checked, err := run(".")
	if err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	for _, b := range bad {
		fmt.Fprintln(os.Stderr, b)
	}
	if len(bad) > 0 {
		log.Fatalf("FAIL: %d of %d metric-name literals violate reds_<subsystem>_<name>_<unit>", len(bad), checked)
	}
	log.Printf("PASS: %d metric-name literals conform", checked)
}

func run(root string) (bad []string, checked int, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "vendor" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fileBad, fileChecked, err := checkFile(path)
		if err != nil {
			return err
		}
		bad = append(bad, fileBad...)
		checked += fileChecked
		return nil
	})
	return bad, checked, err
}

// seriesFamily strips the exposition-format series suffixes a histogram
// family fans out into (_bucket, _sum, _count), so that literals
// referring to scraped series — not just registered families — pass.
func seriesFamily(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suffix); base != name && telemetry.CheckName(base) == nil {
			return base
		}
	}
	return name
}

func checkFile(path string) (bad []string, checked int, err error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, 0, fmt.Errorf("parsing %s: %w", path, err)
	}

	// Lines carrying a "checkname:invalid" comment hold deliberate
	// negative test cases for the convention itself.
	exempt := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "checkname:invalid") {
				exempt[fset.Position(c.Pos()).Line] = true
			}
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil || !nameLike.MatchString(s) {
			return true
		}
		pos := fset.Position(lit.Pos())
		if exempt[pos.Line] {
			return true
		}
		checked++
		if err := telemetry.CheckName(seriesFamily(s)); err != nil {
			bad = append(bad, fmt.Sprintf("%s:%d: %v", pos.Filename, pos.Line, err))
		}
		return true
	})
	return bad, checked, nil
}
