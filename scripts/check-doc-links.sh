#!/bin/sh
# check-doc-links.sh — fail if README.md or docs/*.md reference local
# files that do not exist. Checks two reference styles:
#   1. markdown links:        [text](path/to/file.md#anchor)
#   2. backticked file paths: `docs/API.md`, `BENCH_PR2.json`
# URLs and pure anchors are ignored; backticked tokens only count as
# file references when they end in a known file extension (so Go
# identifiers like `reds.NewEngine` are not mistaken for files).
set -eu
cd "$(dirname "$0")/.."

status=0

check() { # $1 = source doc, $2 = referenced target, $3 = base dir of doc
    md=$1
    target=$2
    base=$3
    case $target in
        http://* | https://* | mailto:* | \#*) return 0 ;;
    esac
    t=${target%%#*} # strip anchor
    [ -z "$t" ] && return 0
    # Resolve relative to the referencing document first, then the repo
    # root (README links are written root-relative either way).
    if [ -e "$base/$t" ] || [ -e "$t" ]; then
        return 0
    fi
    echo "broken reference in $md: $target" >&2
    status=1
}

for md in README.md docs/*.md; do
    [ -f "$md" ] || continue
    base=$(dirname "$md")
    for target in $(grep -oE '\]\([^) ]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//'); do
        check "$md" "$target" "$base"
    done
    for target in $(grep -oE '`[A-Za-z0-9_./-]+`' "$md" | tr -d '`'); do
        case $target in
            *.md | *.json | *.sh | *.yml | *.yaml | *.csv | *.go)
                check "$md" "$target" "$base"
                ;;
        esac
    done
done

if [ "$status" -eq 0 ]; then
    echo "doc links OK"
fi
exit $status
