package metamodel

import (
	"math/rand"
	"testing"
)

// TestTunedWorkersDeterministic asserts that the concurrent fold × grid
// evaluation selects the same model at every worker count: per-cell
// seeds and the fixed-order reduction make the pool's scheduling
// invisible in the outcome.
func TestTunedWorkersDeterministic(t *testing.T) {
	grid := []Trainer{
		noisyTrainer{cut: 0.5, extraDraws: 1},
		noisyTrainer{cut: 0.7, extraDraws: 3},
		noisyTrainer{cut: 0.9, extraDraws: 7},
	}
	train := func(workers int) thresholdModel {
		d := stepData(300, 0.5, rand.New(rand.NewSource(99)))
		m, err := (&Tuned{Family: "noisy", Grid: grid, Workers: workers}).Train(d, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		return m.(thresholdModel)
	}
	serial := train(0)
	for _, workers := range []int{1, 2, 4, 16} {
		if got := train(workers); got != serial {
			t.Errorf("Workers=%d selected %v, serial selected %v", workers, got, serial)
		}
	}
}
