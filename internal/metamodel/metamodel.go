// Package metamodel defines the interface between REDS and its
// intermediate machine-learning models ("AM" in Algorithm 4 of the paper),
// plus a grid-search cross-validation tuner standing in for the caret
// hyperparameter-optimization the paper uses.
package metamodel

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/reds-go/reds/internal/dataset"
)

// Model is a trained metamodel f_am.
type Model interface {
	// PredictProb returns the estimated P(y=1|x), in [0,1].
	PredictProb(x []float64) float64
	// PredictLabel returns the hard 0/1 label, i.e. I(f_am(x) > bnd) with
	// the model's native decision boundary.
	PredictLabel(x []float64) float64
}

// Trainer fits a Model to a dataset. Implementations must be deterministic
// given the RNG.
type Trainer interface {
	// Name identifies the metamodel family ("rf", "xgb", "svm").
	Name() string
	// Train fits the model.
	Train(d *dataset.Dataset, rng *rand.Rand) (Model, error)
}

// BatchModel is optionally implemented by models with a vectorized
// fast path: instead of walking the model once per point through the
// Model interface, a whole slice of points is evaluated in one call
// over flattened model state (rf and gbt compile their ensembles into
// contiguous node tables, svm evaluates its kernel in blocks over a
// flattened support-vector matrix). Implementations must be
// byte-identical to the per-point methods — the differential tests in
// rf, gbt and svm assert it — so callers may pick either path freely.
type BatchModel interface {
	// PredictProbBatchInto fills dst[i] with PredictProb(pts[i]).
	// len(dst) must equal len(pts). Safe for concurrent calls on
	// disjoint dst/pts slices.
	PredictProbBatchInto(dst []float64, pts [][]float64)
	// PredictLabelBatchInto fills dst[i] with PredictLabel(pts[i]),
	// using the model's native decision boundary (not a fixed 0.5
	// threshold on probabilities — gbt and svm threshold their raw
	// margin, exactly like their per-point PredictLabel).
	PredictLabelBatchInto(dst []float64, pts [][]float64)
}

// MemorySizer is optionally implemented by models that can estimate
// their own in-memory footprint. The engine's metamodel cache weighs
// LRU entries by this size (a tuned 500-tree forest should not cost the
// same cache budget as a 20-vector SVM); models without it are charged
// a pessimistic default.
type MemorySizer interface {
	// ApproxMemoryBytes estimates the model's resident size in bytes.
	// It only needs to be proportional to reality, not exact.
	ApproxMemoryBytes() int64
}

// PredictProbBatch evaluates PredictProb on every point, parallelized
// across GOMAXPROCS workers. REDS labels 10^4-10^5 points per run, which
// makes this the hot path of the whole pipeline. Models implementing
// BatchModel are evaluated through their vectorized fast path.
func PredictProbBatch(m Model, pts [][]float64) []float64 {
	out, _ := PredictProbBatchCtx(context.Background(), m, pts, BatchOptions{})
	return out
}

// PredictLabelBatch evaluates PredictLabel on every point in parallel,
// through the model's BatchModel fast path when it has one.
func PredictLabelBatch(m Model, pts [][]float64) []float64 {
	out, _ := PredictLabelBatchCtx(context.Background(), m, pts, BatchOptions{})
	return out
}

// PredictProbBatchCtx is PredictProbBatch with cancellation, progress
// and worker control: it detects a BatchModel and hands its vectorized
// kernel to PredictBatchParallel, falling back to the per-point
// closure otherwise.
func PredictProbBatchCtx(ctx context.Context, m Model, pts [][]float64, opts BatchOptions) ([]float64, error) {
	if bm, ok := m.(BatchModel); ok {
		opts.BatchInto = bm.PredictProbBatchInto
	}
	return PredictBatchParallel(ctx, pts, m.PredictProb, opts)
}

// PredictLabelBatchCtx is the PredictLabel counterpart of
// PredictProbBatchCtx.
func PredictLabelBatchCtx(ctx context.Context, m Model, pts [][]float64, opts BatchOptions) ([]float64, error) {
	if bm, ok := m.(BatchModel); ok {
		opts.BatchInto = bm.PredictLabelBatchInto
	}
	return PredictBatchParallel(ctx, pts, m.PredictLabel, opts)
}

// batchChunk is the unit of work handed to one prediction worker. It
// bounds how stale a Progress report or a cancellation check can be.
const batchChunk = 512

// BatchOptions configure PredictBatchParallel.
type BatchOptions struct {
	// Workers is the number of prediction goroutines (default
	// GOMAXPROCS). One worker degenerates to a serial scan.
	Workers int
	// Progress, when non-nil, is called after every completed chunk with
	// the running total of labeled points. It may be called concurrently
	// from several workers and must be safe for that.
	Progress func(done, total int)
	// BatchInto, when non-nil, replaces the per-point closure: each
	// worker evaluates whole chunks through it (dst[i] receives the
	// prediction for pts[i]). PredictProbBatchCtx/PredictLabelBatchCtx
	// set it from the model's BatchModel implementation; chunking,
	// cancellation and progress behave exactly as on the per-point
	// path.
	BatchInto func(dst []float64, pts [][]float64)
}

// PredictBatchSerial evaluates f on every point on the calling
// goroutine. It is the baseline the parallel path is benchmarked
// against.
func PredictBatchSerial(pts [][]float64, f func([]float64) float64) []float64 {
	out := make([]float64, len(pts))
	for i, x := range pts {
		out[i] = f(x)
	}
	return out
}

// PredictBatchParallel shards the evaluation of f over pts across a pool
// of workers. Points are handed out in fixed-size chunks so workers stay
// balanced even when per-point cost varies (deep trees vs early exits).
// Cancelling ctx stops the scan between chunks and returns ctx.Err();
// the partially-filled slice is discarded.
func PredictBatchParallel(ctx context.Context, pts [][]float64, f func([]float64) float64, opts BatchOptions) ([]float64, error) {
	out := make([]float64, len(pts))
	if len(pts) == 0 {
		return out, ctx.Err()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nChunks := (len(pts) + batchChunk - 1) / batchChunk
	if workers > nChunks {
		workers = nChunks
	}
	var done atomic.Int64
	report := func(n int) {
		if opts.Progress != nil {
			opts.Progress(int(done.Add(int64(n))), len(pts))
		}
	}
	// evalChunk fills out[lo:hi] through the vectorized kernel when the
	// caller provided one, per point otherwise.
	evalChunk := func(lo, hi int) {
		if opts.BatchInto != nil {
			opts.BatchInto(out[lo:hi], pts[lo:hi])
			return
		}
		for i := lo; i < hi; i++ {
			out[i] = f(pts[i])
		}
	}
	if workers <= 1 {
		for lo := 0; lo < len(pts); lo += batchChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hi := lo + batchChunk
			if hi > len(pts) {
				hi = len(pts)
			}
			evalChunk(lo, hi)
			report(hi - lo)
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks || ctx.Err() != nil {
					return
				}
				lo := c * batchChunk
				hi := lo + batchChunk
				if hi > len(pts) {
					hi = len(pts)
				}
				evalChunk(lo, hi)
				report(hi - lo)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Accuracy returns the share of points whose hard prediction matches the
// binary label.
func Accuracy(m Model, d *dataset.Dataset) float64 {
	if d.N() == 0 {
		return 0
	}
	correct := 0
	for i, x := range d.X {
		pred := m.PredictLabel(x)
		want := 0.0
		if d.Y[i] >= 0.5 {
			want = 1
		}
		if pred == want {
			correct++
		}
	}
	return float64(correct) / float64(d.N())
}

// SubsetTrainer is optionally implemented by trainers that can fit on a
// row subset of a shared dataset without materializing a sub-dataset.
// The tuner uses it to evaluate every fold × grid cell against one
// shared view of the parent data — for the histogram-binned rf/gbt
// trainers that means bin edges and codes are computed once per dataset
// and every cell trains through per-fold row masks instead of per-fold
// column copies and re-sorts.
type SubsetTrainer interface {
	Trainer
	// SharedFolds reports whether the trainer wants the shared-fold
	// path. Trainers whose fast path needs materialized per-fold state
	// (the exact columnar trainers) return false.
	SharedFolds() bool
	// TrainSubset fits on the rows (indices into d) of the shared
	// dataset d.
	TrainSubset(d *dataset.Dataset, rows []int, rng *rand.Rand) (Model, error)
}

// Tuned wraps a parameterized trainer family with k-fold cross-validated
// grid search, standing in for the default caret tuning of Section 8.4.3.
type Tuned struct {
	// Family names the underlying metamodel.
	Family string
	// Grid enumerates candidate trainers.
	Grid []Trainer
	// Folds is the number of CV folds (default 3).
	Folds int
	// Workers bounds the pool evaluating fold × grid cells (default 1,
	// serial). Every cell trains from its own candidateSeed-derived RNG
	// and accuracies reduce in fixed grid order, so any worker count
	// produces the identical tuning outcome — the engine wires this to
	// its per-variant CPU budget.
	Workers int
}

// Name implements Trainer.
func (t *Tuned) Name() string { return t.Family }

// candidateSeed derives the training seed of one fold × grid candidate
// from the tuning run's base seed, the candidate's configuration (type
// and field values, not grid position) and the fold index. Identity-based
// derivation makes the tuning outcome invariant under grid reordering,
// not just under evaluation order.
func candidateSeed(base int64, tr Trainer, fold int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%T%+v|%d", tr, tr, fold)
	return base ^ int64(h.Sum64())
}

// Train implements Trainer: it picks the grid entry with the best CV
// accuracy and refits it on the full data.
//
// Every fold × grid candidate trains from its own seeded RNG, derived
// up front from the caller's stream. A single shared RNG would make
// each candidate's result depend on how many random draws the
// previously evaluated candidates consumed — so reordering the grid,
// skipping an entry, or evaluating candidates concurrently would all
// change the tuning outcome. With per-candidate derivation the
// evaluation is order-independent (and safe to parallelize).
func (t *Tuned) Train(d *dataset.Dataset, rng *rand.Rand) (Model, error) {
	if len(t.Grid) == 0 {
		return nil, fmt.Errorf("metamodel: empty tuning grid for %s", t.Family)
	}
	if len(t.Grid) == 1 {
		return t.Grid[0].Train(d, rng)
	}
	folds := t.Folds
	if folds == 0 {
		folds = 3
	}
	kf, err := dataset.KFold(d, folds, rng)
	if err != nil {
		// Too little data to cross-validate: fall back to the first entry.
		return t.Grid[0].Train(d, rng)
	}
	tuneSeed := rng.Int63()
	refitSeed := rng.Int63()

	// evalCell trains one fold × grid candidate and scores it on the
	// fold's holdout. Trainers on the shared-fold path fit through a row
	// mask against the parent dataset, so its cached views (columns,
	// sorted orders, bin edges and codes) are computed once and shared
	// by every cell instead of rebuilt per fold.
	evalCell := func(gi, fi int) (float64, error) {
		tr, f := t.Grid[gi], kf[fi]
		child := rand.New(rand.NewSource(candidateSeed(tuneSeed, tr, fi)))
		var m Model
		var cellErr error
		if st, ok := tr.(SubsetTrainer); ok && st.SharedFolds() {
			m, cellErr = st.TrainSubset(d, f.TrainIdx, child)
		} else {
			m, cellErr = tr.Train(f.Train, child)
		}
		if cellErr != nil {
			return 0, fmt.Errorf("metamodel: tuning %s: %w", t.Family, cellErr)
		}
		return Accuracy(m, f.Test), nil
	}

	nCells := len(t.Grid) * len(kf)
	accs := make([]float64, nCells) // accs[gi*len(kf)+fi]
	errs := make([]error, nCells)
	workers := t.Workers
	if workers > nCells {
		workers = nCells
	}
	if workers <= 1 {
		for c := 0; c < nCells; c++ {
			accs[c], errs[c] = evalCell(c/len(kf), c%len(kf))
			if errs[c] != nil {
				return nil, errs[c]
			}
		}
	} else {
		// Cells are independent (per-cell seeded RNGs) and the reduction
		// below runs in fixed grid order, so scheduling cannot change
		// the outcome — only the wall clock.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c := int(next.Add(1)) - 1
					if c >= nCells {
						return
					}
					accs[c], errs[c] = evalCell(c/len(kf), c%len(kf))
				}
			}()
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
	}

	best, bestAcc := 0, -1.0
	for gi := range t.Grid {
		acc := 0.0
		for fi := range kf {
			acc += accs[gi*len(kf)+fi]
		}
		acc /= float64(len(kf))
		if acc > bestAcc {
			bestAcc, best = acc, gi
		}
	}
	return t.Grid[best].Train(d, rand.New(rand.NewSource(refitSeed)))
}
