package metamodel

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// slowModel burns a few cycles per point so parallelism and
// cancellation are observable.
type slowModel struct{}

func (slowModel) PredictProb(x []float64) float64 {
	s := 0.0
	for i := 0; i < 50; i++ {
		s += math.Sin(x[0] + float64(i))
	}
	return math.Abs(math.Mod(s, 1))
}

func (m slowModel) PredictLabel(x []float64) float64 {
	if m.PredictProb(x) > 0.5 {
		return 1
	}
	return 0
}

func randPoints(n, m int, rng *rand.Rand) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, m)
		for j := range pts[i] {
			pts[i][j] = rng.Float64()
		}
	}
	return pts
}

func TestParallelMatchesSerial(t *testing.T) {
	pts := randPoints(5000, 3, rand.New(rand.NewSource(1)))
	var m slowModel
	want := PredictBatchSerial(pts, m.PredictProb)
	for _, workers := range []int{0, 1, 2, 7} {
		got, err := PredictBatchParallel(context.Background(), pts, m.PredictProb, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: point %d: %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestBatchProgressCoversAllPoints(t *testing.T) {
	pts := randPoints(3000, 2, rand.New(rand.NewSource(2)))
	var mu sync.Mutex
	sum, max := 0, 0
	prev := 0
	_, err := PredictBatchParallel(context.Background(), pts, slowModel{}.PredictProb, BatchOptions{
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(pts) {
				t.Errorf("total = %d, want %d", total, len(pts))
			}
			sum += done - prev
			prev = done
			if done > max {
				max = done
			}
		},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if max != len(pts) {
		t.Errorf("final progress = %d, want %d", max, len(pts))
	}
}

func TestBatchCancellation(t *testing.T) {
	pts := randPoints(200000, 2, rand.New(rand.NewSource(3)))
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	out, err := PredictBatchParallel(ctx, pts, slowModel{}.PredictProb, BatchOptions{
		Workers: 2,
		Progress: func(done, total int) {
			once.Do(cancel) // cancel after the first chunk
		},
	})
	if err == nil {
		t.Fatalf("cancelled batch returned no error (out len %d)", len(out))
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("cancelled batch returned a partial slice")
	}
}

func TestBatchEmptyInput(t *testing.T) {
	out, err := PredictBatchParallel(context.Background(), nil, slowModel{}.PredictProb, BatchOptions{})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

// chunkRecordingModel implements BatchModel and records the chunks the
// batch path hands it, so the dispatch itself is testable without a
// real flattened ensemble.
type chunkRecordingModel struct {
	mu     sync.Mutex
	chunks []int
}

func (m *chunkRecordingModel) PredictProb(x []float64) float64  { return x[0] }
func (m *chunkRecordingModel) PredictLabel(x []float64) float64 { return 1 - x[0] }

func (m *chunkRecordingModel) PredictProbBatchInto(dst []float64, pts [][]float64) {
	m.record(len(pts))
	for i, x := range pts {
		dst[i] = x[0]
	}
}

func (m *chunkRecordingModel) PredictLabelBatchInto(dst []float64, pts [][]float64) {
	m.record(len(pts))
	for i, x := range pts {
		dst[i] = 1 - x[0]
	}
}

func (m *chunkRecordingModel) record(n int) {
	m.mu.Lock()
	m.chunks = append(m.chunks, n)
	m.mu.Unlock()
}

// TestBatchModelDispatch asserts PredictProbBatchCtx/PredictLabelBatchCtx
// route every point through the vectorized kernel exactly once, in
// bounded chunks with the uneven tail intact, at any worker count.
func TestBatchModelDispatch(t *testing.T) {
	pts := randPoints(2*batchChunk+37, 2, rand.New(rand.NewSource(5)))
	for _, workers := range []int{1, 3} {
		m := &chunkRecordingModel{}
		probs, err := PredictProbBatchCtx(context.Background(), m, pts, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		labels, err := PredictLabelBatchCtx(context.Background(), m, pts, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range pts {
			if probs[i] != x[0] || labels[i] != 1-x[0] {
				t.Fatalf("workers=%d: point %d misrouted: prob %v label %v", workers, i, probs[i], labels[i])
			}
		}
		total := 0
		for _, c := range m.chunks {
			if c < 1 || c > batchChunk {
				t.Fatalf("workers=%d: kernel got a chunk of %d points (max %d)", workers, c, batchChunk)
			}
			total += c
		}
		if total != 2*len(pts) {
			t.Fatalf("workers=%d: kernel saw %d points across both calls, want %d", workers, total, 2*len(pts))
		}
	}
}
