package metamodel

import (
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/dataset"
)

// noisyTrainer returns a threshold model whose cut is perturbed by the
// training RNG, after consuming a per-config number of extra draws — a
// stand-in for real trainers whose RNG consumption varies with their
// hyperparameters. With a single RNG threaded through the whole grid,
// each candidate's result would depend on how many draws its
// predecessors consumed.
type noisyTrainer struct {
	cut        float64
	extraDraws int
}

func (t noisyTrainer) Name() string { return "noisy" }

func (t noisyTrainer) Train(d *dataset.Dataset, rng *rand.Rand) (Model, error) {
	for i := 0; i < t.extraDraws; i++ {
		rng.Float64()
	}
	return thresholdModel{t.cut + 0.02*rng.Float64()}, nil
}

// TestTunedOrderIndependent asserts that tuning selects the same model
// regardless of grid order: candidate seeds derive from the candidate's
// configuration, not from its position or from draws consumed by earlier
// candidates.
func TestTunedOrderIndependent(t *testing.T) {
	good := noisyTrainer{cut: 0.5, extraDraws: 1}
	bad := noisyTrainer{cut: 0.9, extraDraws: 7}

	train := func(grid []Trainer, seed int64) thresholdModel {
		rng := rand.New(rand.NewSource(seed))
		d := stepData(300, 0.5, rand.New(rand.NewSource(99)))
		m, err := (&Tuned{Family: "noisy", Grid: grid}).Train(d, rng)
		if err != nil {
			t.Fatal(err)
		}
		return m.(thresholdModel)
	}

	forward := train([]Trainer{good, bad}, 7)
	forwardAgain := train([]Trainer{good, bad}, 7)
	reversed := train([]Trainer{bad, good}, 7)

	if forward != forwardAgain {
		t.Errorf("tuning not deterministic: %v vs %v", forward, forwardAgain)
	}
	if forward != reversed {
		t.Errorf("tuning depends on grid order: forward %v, reversed %v", forward, reversed)
	}
	if forward.cut > 0.6 {
		t.Errorf("tuning picked the wrong entry: cut %v", forward.cut)
	}
}
