package metamodel

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/dataset"
)

// thresholdModel is a trivial model: y = 1 iff x[0] > cut.
type thresholdModel struct{ cut float64 }

func (m thresholdModel) PredictProb(x []float64) float64 {
	if x[0] > m.cut {
		return 0.9
	}
	return 0.1
}

func (m thresholdModel) PredictLabel(x []float64) float64 {
	if x[0] > m.cut {
		return 1
	}
	return 0
}

// cutTrainer "learns" nothing: it returns a fixed threshold model. Useful
// to test the tuner's selection logic.
type cutTrainer struct{ cut float64 }

func (t cutTrainer) Name() string { return "cut" }
func (t cutTrainer) Train(*dataset.Dataset, *rand.Rand) (Model, error) {
	return thresholdModel{t.cut}, nil
}

type failTrainer struct{}

func (failTrainer) Name() string { return "fail" }
func (failTrainer) Train(*dataset.Dataset, *rand.Rand) (Model, error) {
	return nil, errors.New("boom")
}

func stepData(n int, cut float64, rng *rand.Rand) *dataset.Dataset {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := rng.Float64()
		x[i] = []float64{v, rng.Float64()}
		if v > cut {
			y[i] = 1
		}
	}
	return dataset.MustNew(x, y)
}

func TestAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := stepData(200, 0.5, rng)
	if acc := Accuracy(thresholdModel{0.5}, d); acc != 1 {
		t.Errorf("perfect model accuracy = %g, want 1", acc)
	}
	if acc := Accuracy(thresholdModel{-1}, d); acc > 0.65 {
		t.Errorf("always-1 model accuracy = %g, want ~0.5", acc)
	}
	if acc := Accuracy(thresholdModel{0.5}, dataset.MustNew(nil, nil)); acc != 0 {
		t.Errorf("empty dataset accuracy = %g", acc)
	}
}

func TestBatchPredictionMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := stepData(500, 0.3, rng)
	m := thresholdModel{0.3}
	probs := PredictProbBatch(m, d.X)
	labels := PredictLabelBatch(m, d.X)
	for i, x := range d.X {
		if probs[i] != m.PredictProb(x) || labels[i] != m.PredictLabel(x) {
			t.Fatalf("batch mismatch at %d", i)
		}
	}
	// Tiny inputs exercise the serial path.
	one := PredictProbBatch(m, d.X[:1])
	if len(one) != 1 || one[0] != m.PredictProb(d.X[0]) {
		t.Error("single-point batch wrong")
	}
	if out := PredictProbBatch(m, nil); len(out) != 0 {
		t.Error("empty batch should be empty")
	}
}

func TestTunedPicksBestGridEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := stepData(300, 0.5, rng)
	tuned := &Tuned{Family: "cut", Grid: []Trainer{
		cutTrainer{0.05}, cutTrainer{0.5}, cutTrainer{0.95},
	}}
	m, err := tuned.Train(d, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, d); acc < 0.99 {
		t.Errorf("tuner picked accuracy %g, want the 0.5 cut (acc 1)", acc)
	}
	if tuned.Name() != "cut" {
		t.Errorf("Name = %q", tuned.Name())
	}
}

func TestTunedEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := (&Tuned{Family: "x"}).Train(stepData(10, 0.5, rng), rng); err == nil {
		t.Error("empty grid must error")
	}
	// Single entry skips CV entirely.
	m, err := (&Tuned{Family: "x", Grid: []Trainer{cutTrainer{0.5}}}).Train(stepData(10, 0.5, rng), rng)
	if err != nil || m == nil {
		t.Errorf("single-entry grid: %v", err)
	}
	// Failing trainer propagates the error.
	bad := &Tuned{Family: "x", Grid: []Trainer{failTrainer{}, cutTrainer{0.5}}}
	if _, err := bad.Train(stepData(60, 0.5, rng), rng); err == nil {
		t.Error("failing grid entry must propagate")
	}
	// Tiny dataset falls back to the first entry instead of CV.
	tiny := stepData(2, 0.5, rng)
	if _, err := (&Tuned{Family: "x", Folds: 5, Grid: []Trainer{cutTrainer{0.1}, cutTrainer{0.9}}}).Train(tiny, rng); err != nil {
		t.Errorf("tiny dataset fallback failed: %v", err)
	}
}
