package bi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/reds-go/reds/internal/box"
	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/sd"
)

func boxData(n, m int, rng *rand.Rand) *dataset.Dataset {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		if row[0] < 0.5 && row[1] > 0.3 {
			y[i] = 1
		}
	}
	return dataset.MustNew(x, y)
}

func TestWRAcc(t *testing.T) {
	d := dataset.MustNew(
		[][]float64{{0.1}, {0.2}, {0.8}, {0.9}},
		[]float64{1, 1, 0, 0},
	)
	full := box.Full(1)
	if w := WRAcc(full, d); math.Abs(w) > 1e-12 {
		t.Errorf("WRAcc(full) = %g, want 0", w)
	}
	left := box.New([]float64{math.Inf(-1)}, []float64{0.5})
	// n/N = 0.5, precision 1, p0 = 0.5 -> WRAcc = 0.25.
	if w := WRAcc(left, d); math.Abs(w-0.25) > 1e-12 {
		t.Errorf("WRAcc(left) = %g, want 0.25", w)
	}
	if w := WRAcc(box.New([]float64{5}, []float64{6}), d); w != 0 {
		t.Errorf("WRAcc(empty subgroup) = %g, want 0", w)
	}
}

func TestBIFindsTheBox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := boxData(500, 4, rng)
	res, err := (&BI{}).Discover(d, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Final()
	w := WRAcc(final, d)
	// The true box has WRAcc = P(box)(1 - p0) with P(box) = 0.35,
	// p0 = 0.35 -> 0.2275. Finite-sample optimum should be close.
	if w < 0.15 {
		t.Errorf("final WRAcc = %.4f, want >= 0.15", w)
	}
	if !final.RestrictedDim(0) || !final.RestrictedDim(1) {
		t.Errorf("final box %v misses the relevant inputs", final)
	}
	// The final WRAcc must be at least the full box's (0).
	if w < 0 {
		t.Error("BI must never return a box worse than unrestricted")
	}
}

func TestDepthLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := boxData(400, 5, rng)
	res, err := (&BI{Depth: 1}).Discover(d, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Final().Restricted(); r > 1 {
		t.Errorf("depth-1 box restricts %d inputs", r)
	}
}

func TestBeamSizeImprovesOrMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// An XOR-ish problem where greedy 1-beam can get stuck.
	n := 600
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		in1 := x[i][0] < 0.5
		in2 := x[i][1] < 0.5
		if in1 != in2 {
			y[i] = 1
		}
	}
	d := dataset.MustNew(x, y)
	r1, err := (&BI{BeamSize: 1}).Discover(d, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := (&BI{BeamSize: 5}).Discover(d, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	if WRAcc(r5.Final(), d)+1e-9 < WRAcc(r1.Final(), d) {
		t.Errorf("beam 5 (%.4f) worse than beam 1 (%.4f)",
			WRAcc(r5.Final(), d), WRAcc(r1.Final(), d))
	}
}

// bruteBestInterval finds the optimal closed interval over observed
// values by exhaustive search, for cross-checking Kadane.
func bruteBestInterval(d *dataset.Dataset, j int, p0 float64) float64 {
	var vals []float64
	seen := map[float64]bool{}
	for _, x := range d.X {
		if !seen[x[j]] {
			seen[x[j]] = true
			vals = append(vals, x[j])
		}
	}
	best := math.Inf(-1)
	for _, lo := range vals {
		for _, hi := range vals {
			if hi < lo {
				continue
			}
			s := 0.0
			for i, x := range d.X {
				if x[j] >= lo && x[j] <= hi {
					s += d.Y[i] - p0
				}
			}
			if s > best {
				best = s
			}
		}
	}
	return best
}

func TestBestIntervalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			// Quantized values to exercise tie handling.
			x[i] = []float64{math.Floor(rng.Float64()*8) / 8, rng.Float64()}
			if rng.Float64() < 0.4 {
				y[i] = 1
			}
		}
		d := dataset.MustNew(x, y)
		p0 := d.PositiveShare()

		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for a := 1; a < n; a++ { // insertion sort by x[0]
			for b := a; b > 0 && d.X[order[b]][0] < d.X[order[b-1]][0]; b-- {
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
		viol := make([]int, n)
		vdim := make([]int, n)
		countViolations(d, box.Full(2), viol, vdim)
		var groups []group
		nb, ok := bestInterval(d.Columns()[0], d.Y, order, box.Full(2), 0, p0, viol, vdim, &groups)
		if !ok {
			return false
		}
		got := 0.0
		for i, xi := range d.X {
			if nb.Contains(xi) {
				got += d.Y[i] - p0
			}
		}
		want := bruteBestInterval(d, 0, p0)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBestIntervalUnrestrictsWhenAllPositive(t *testing.T) {
	// With all weights positive the best run spans everything and the
	// dimension must become unrestricted.
	d := dataset.MustNew([][]float64{{0.1}, {0.5}, {0.9}}, []float64{1, 1, 1})
	// p0 = 0 keeps every weight positive (pretend the dataset mean is 0).
	order := []int{0, 1, 2}
	viol := make([]int, 3)
	vdim := make([]int, 3)
	countViolations(d, box.Full(1), viol, vdim)
	var groups []group
	nb, ok := bestInterval(d.Columns()[0], d.Y, order, box.Full(1), 0, 0, viol, vdim, &groups)
	if !ok {
		t.Fatal("no interval found")
	}
	if nb.Restricted() != 0 {
		t.Errorf("expected unrestricted dimension, got %v", nb)
	}
}

func TestDiscoverValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := boxData(60, 2, rng)
	if _, err := (&BI{}).Discover(dataset.MustNew(nil, nil), d, rng); err == nil {
		t.Error("empty train must error")
	}
	if _, err := (&BI{}).Discover(d, boxData(20, 3, rng), rng); err == nil {
		t.Error("dim mismatch must error")
	}
}

func TestDeterminism(t *testing.T) {
	d := boxData(200, 3, rand.New(rand.NewSource(5)))
	r1, _ := (&BI{BeamSize: 3}).Discover(d, d, nil)
	r2, _ := (&BI{BeamSize: 3}).Discover(d, d, nil)
	if !r1.Final().Equal(r2.Final()) {
		t.Error("BI must be deterministic")
	}
}

func TestResultShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := boxData(300, 3, rng)
	res, err := (&BI{}).Discover(d, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final() == nil {
		t.Fatal("nil final box")
	}
	if res.FinalIndex != len(res.Steps)-1 {
		t.Error("final must be the last step")
	}
	// Train stats recorded correctly.
	last := res.Steps[res.FinalIndex]
	want := sd.Compute(last.Box, d)
	if last.Train != want {
		t.Errorf("recorded train stats %+v != computed %+v", last.Train, want)
	}
}
