package bi

// This file keeps the original per-candidate interval search as a
// reference implementation: every (box, dimension) pair re-derives point
// eligibility with an O(M) bound check per point. The fast path in
// bi.go precomputes a violation count per point once per beam box and
// reuses the tie-group buffer; differential tests assert both return
// identical intervals and WRAcc values.

import (
	"math"

	"github.com/reds-go/reds/internal/box"
	"github.com/reds-go/reds/internal/dataset"
)

// bestIntervalReference finds the WRAcc-optimal interval for dimension j
// of box cur (ignoring cur's existing bounds on j, per
// BestIntervalWRAcc). It returns ok = false when no point satisfies the
// other bounds. When the optimal run spans all eligible points the
// dimension is left unrestricted.
func bestIntervalReference(d *dataset.Dataset, order []int, cur *box.Box, j int, p0 float64) (*box.Box, bool) {
	// Build tie-groups over eligible points in ascending x_j order.
	var groups []group
	for _, i := range order {
		if !othersContain(cur, d.X[i], j) {
			continue
		}
		v := d.X[i][j]
		w := d.Y[i] - p0
		if len(groups) > 0 && groups[len(groups)-1].value == v {
			groups[len(groups)-1].sum += w
		} else {
			groups = append(groups, group{value: v, sum: w})
		}
	}
	if len(groups) == 0 {
		return nil, false
	}

	// Kadane over groups.
	bestSum := math.Inf(-1)
	bestStart, bestEnd := 0, 0
	curSum, curStart := 0.0, 0
	for g := range groups {
		curSum += groups[g].sum
		if curSum > bestSum {
			bestSum, bestStart, bestEnd = curSum, curStart, g
		}
		if curSum < 0 {
			curSum, curStart = 0, g+1
		}
	}

	nb := cur.Clone()
	if bestStart == 0 && bestEnd == len(groups)-1 {
		// The whole line is optimal: unrestrict the dimension.
		nb.Lo[j] = math.Inf(-1)
		nb.Hi[j] = math.Inf(1)
		return nb, true
	}
	// Bounds extend to the midpoint toward the neighboring excluded
	// group, or to infinity at the eligible extremes.
	if bestStart == 0 {
		nb.Lo[j] = math.Inf(-1)
	} else {
		nb.Lo[j] = (groups[bestStart-1].value + groups[bestStart].value) / 2
	}
	if bestEnd == len(groups)-1 {
		nb.Hi[j] = math.Inf(1)
	} else {
		nb.Hi[j] = (groups[bestEnd].value + groups[bestEnd+1].value) / 2
	}
	return nb, true
}

// othersContain reports whether x satisfies all bounds of b except
// dimension skip.
func othersContain(b *box.Box, x []float64, skip int) bool {
	for j, v := range x {
		if j == skip {
			continue
		}
		if v < b.Lo[j] || v > b.Hi[j] {
			return false
		}
	}
	return true
}
