package bi

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/reds-go/reds/internal/box"
	"github.com/reds-go/reds/internal/dataset"
)

// TestFastIntervalMatchesReference compares the violation-count fast
// path against the reference othersContain implementation on random
// partially-restricted boxes, including quantized (tied) columns, and
// asserts identical interval bounds and identical WRAcc sums.
func TestFastIntervalMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		n, m := 200, 4
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			row := make([]float64, m)
			for j := range row {
				if j%2 == 0 {
					row[j] = math.Floor(rng.Float64()*6) / 6 // ties
				} else {
					row[j] = rng.Float64()
				}
			}
			x[i] = row
			if rng.Float64() < 0.4 {
				y[i] = 1
			}
		}
		d := dataset.MustNew(x, y)
		p0 := d.PositiveShare()
		cols := d.Columns()
		orders := d.SortedOrders()

		viol := make([]int, n)
		vdim := make([]int, n)
		var groups []group

		for trial := 0; trial < 20; trial++ {
			// A random box restricting a random subset of dims.
			cur := box.Full(m)
			for j := 0; j < m; j++ {
				if rng.Float64() < 0.5 {
					a, b := rng.Float64(), rng.Float64()
					if a > b {
						a, b = b, a
					}
					cur.Lo[j], cur.Hi[j] = a, b
				}
			}
			countViolations(d, cur, viol, vdim)
			for j := 0; j < m; j++ {
				want, wantOK := bestIntervalReference(d, orders[j], cur, j, p0)
				got, gotOK := bestInterval(cols[j], d.Y, orders[j], cur, j, p0, viol, vdim, &groups)
				if wantOK != gotOK {
					t.Fatalf("seed %d trial %d dim %d: ok %v, want %v", seed, trial, j, gotOK, wantOK)
				}
				if !wantOK {
					continue
				}
				if !reflect.DeepEqual(got.Lo, want.Lo) || !reflect.DeepEqual(got.Hi, want.Hi) {
					t.Fatalf("seed %d trial %d dim %d: box differs\ngot:  %v\nwant: %v", seed, trial, j, got, want)
				}
				// The fast WRAcc must match the reference Contains scan
				// bit for bit: same points, same ascending iteration.
				wantW := 0.0
				for _, i := range orders[j] {
					if want.Contains(d.X[i]) {
						wantW += d.Y[i] - p0
					}
				}
				gotW := intervalWRAcc(cols[j], d.Y, orders[j], j, got, p0, viol, vdim)
				if gotW != wantW {
					t.Fatalf("seed %d trial %d dim %d: wracc %v, want %v", seed, trial, j, gotW, wantW)
				}
			}
		}
	}
}

// TestBIParallelMatchesSerial asserts the beam-candidate worker pool
// returns the exact result of the serial scan — same boxes, same
// statistics — across beam sizes. Run under -race this also exercises
// the shared viol/vdim scratch and the per-worker group buffers.
func TestBIParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, m := 500, 8
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			if j%2 == 0 {
				row[j] = math.Floor(rng.Float64()*6) / 6 // ties
			} else {
				row[j] = rng.Float64()
			}
		}
		x[i] = row
		if row[0] < 0.5 && row[1] > 0.3 {
			y[i] = 1
		}
	}
	d := dataset.MustNew(x, y)
	for _, bs := range []int{1, 3} {
		serial, err := (&BI{BeamSize: bs, Workers: 1}).Discover(d, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := (&BI{BeamSize: bs, Workers: 4}).Discover(d, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("beam size %d: parallel result differs from serial", bs)
		}
	}
}
