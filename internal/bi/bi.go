// Package bi implements the BestInterval beam-search subgroup-discovery
// algorithm of Mampaey et al. 2012 (Algorithm 3 of the paper). A box is
// iteratively refined one dimension at a time; the optimal interval along
// a dimension under the WRAcc measure is found in linear time after
// sorting, because WRAcc(B) = (1/N)·Σ_{i∈B}(y_i − p₀) turns the search
// into a maximum-sum run of tie-groups (Kadane's algorithm).
//
// The hot loop runs on a columnar fast path: the per-dimension sorted
// orders come from dataset.SortedOrders (computed once, shared), point
// eligibility for every refinement dimension of a beam box is derived
// from a single violation-count pass instead of an O(M) bound check per
// (point, dimension) pair, and the tie-group buffer is reused across
// candidates. The reference implementation is kept in bi_reference.go
// and differential tests assert identical results.
package bi

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/reds-go/reds/internal/box"
	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/sd"
)

// BI configures the beam search. The zero value uses beam size 1 and
// unlimited depth (m = M), the paper's "BI" default.
type BI struct {
	// BeamSize is bs, the number of candidate boxes kept per round
	// (default 1).
	BeamSize int
	// Depth is m, the maximum number of restricted inputs; 0 means all.
	Depth int
	// MaxIters caps the refinement rounds as a safety net (default 64).
	MaxIters int
	// Workers caps the pool evaluating a beam box's M refinement
	// candidates concurrently (default GOMAXPROCS; 1 = serial). The
	// engine passes each variant's worker budget here. Results are
	// identical at any worker count: candidates are gathered in
	// dimension order.
	Workers int
}

// WRAcc returns the weighted relative accuracy of b on d.
func WRAcc(b *box.Box, d *dataset.Dataset) float64 {
	st := sd.Compute(b, d)
	n := float64(d.N())
	if n == 0 || st.N == 0 {
		return 0
	}
	p0 := d.PositiveShare()
	return float64(st.N) / n * (st.Precision() - p0)
}

// group is one run of equal x_j values with the summed WRAcc weight of
// its points.
type group struct {
	value float64
	sum   float64
}

// Discover implements sd.Discoverer. The RNG is unused; BI is
// deterministic. The validation set only contributes the recorded
// statistics: BI selects its box on train data, per Algorithm 3.
func (a *BI) Discover(train, val *dataset.Dataset, _ *rand.Rand) (*sd.Result, error) {
	if train.N() == 0 || val.N() == 0 {
		return nil, fmt.Errorf("bi: empty train or validation data")
	}
	if train.M() != val.M() {
		return nil, fmt.Errorf("bi: train has %d inputs, val has %d", train.M(), val.M())
	}
	bs := a.BeamSize
	if bs == 0 {
		bs = 1
	}
	depth := a.Depth
	m := train.M()
	if depth <= 0 || depth > m {
		depth = m
	}
	maxIters := a.MaxIters
	if maxIters == 0 {
		maxIters = 64
	}

	// Row indices pre-sorted along every dimension, computed once on the
	// dataset and shared with every other consumer.
	cols := train.Columns()
	orders := train.SortedOrders()
	p0 := train.PositiveShare()
	nf := float64(train.N())

	workers := a.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}

	// Scratch reused across all candidate evaluations. viol/vdim are
	// computed once per beam box and then only read, so the dimension
	// workers share them; each worker owns one tie-group buffer.
	viol := make([]int, train.N())
	vdim := make([]int, train.N())
	bufs := make([][]group, workers)
	for w := range bufs {
		bufs[w] = make([]group, 0, train.N())
	}
	slots := make([]scored, m)

	beam := []scored{{box.Full(m), 0}} // full box has WRAcc 0

	for iter := 0; iter < maxIters; iter++ {
		candidates := append([]scored(nil), beam...)
		for _, cur := range beam {
			// One violation-count pass replaces the per-(point, dim)
			// othersContain scan: a point is eligible for refining dim j
			// iff it violates no bound of cur, or only the bound on j.
			countViolations(train, cur.b, viol, vdim)
			// The M per-dimension refinements of one beam box are
			// independent: fan them across the pool, gather into fixed
			// slots, append in dimension order — byte-identical to the
			// serial scan at any worker count.
			evalDim := func(j int, buf *[]group) {
				slots[j] = scored{}
				nb, ok := bestInterval(cols[j], train.Y, orders[j], cur.b, j, p0, viol, vdim, buf)
				if !ok || nb.Restricted() > depth {
					return
				}
				w := intervalWRAcc(cols[j], train.Y, orders[j], j, nb, p0, viol, vdim)
				slots[j] = scored{nb, w / nf}
			}
			if workers <= 1 {
				for j := 0; j < m; j++ {
					evalDim(j, &bufs[0])
				}
			} else {
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for {
							j := int(next.Add(1)) - 1
							if j >= m {
								return
							}
							evalDim(j, &bufs[w])
						}
					}(w)
				}
				wg.Wait()
			}
			for j := 0; j < m; j++ {
				if slots[j].b != nil {
					candidates = append(candidates, slots[j])
				}
			}
		}
		// Keep the top bs distinct boxes.
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].w > candidates[b].w })
		var next []scored
		for _, c := range candidates {
			dup := false
			for _, kept := range next {
				if kept.b.Equal(c.b) {
					dup = true
					break
				}
			}
			if !dup {
				next = append(next, c)
			}
			if len(next) == bs {
				break
			}
		}
		if sameBeam(beam, next) {
			break
		}
		beam = next
	}

	best := beam[0].b
	res := &sd.Result{}
	full := box.Full(m)
	if !best.Equal(full) {
		res.Steps = append(res.Steps, sd.Step{
			Box:   full,
			Train: sd.Compute(full, train),
			Val:   sd.Compute(full, val),
		})
	}
	res.Steps = append(res.Steps, sd.Step{
		Box:   best,
		Train: sd.Compute(best, train),
		Val:   sd.Compute(best, val),
	})
	res.FinalIndex = len(res.Steps) - 1
	return res, nil
}

// scored pairs a candidate box with its train WRAcc.
type scored struct {
	b *box.Box
	w float64
}

func sameBeam(a, b []scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].b.Equal(b[i].b) {
			return false
		}
	}
	return true
}

// countViolations fills, for every point, how many bounds of b it
// violates and (when exactly one) which dimension. Counting stops at two
// — such points are ineligible for every refinement dimension.
func countViolations(d *dataset.Dataset, b *box.Box, viol, vdim []int) {
	for i, x := range d.X {
		c, vd := 0, -1
		for j, v := range x {
			if v < b.Lo[j] || v > b.Hi[j] {
				c++
				vd = j
				if c > 1 {
					break
				}
			}
		}
		viol[i] = c
		vdim[i] = vd
	}
}

// eligible reports whether point i satisfies all bounds except possibly
// the one on dim j — the fast equivalent of othersContain.
func eligible(viol, vdim []int, i, j int) bool {
	return viol[i] == 0 || (viol[i] == 1 && vdim[i] == j)
}

// bestInterval finds the WRAcc-optimal interval for dimension j of box
// cur (ignoring cur's existing bounds on j, per BestIntervalWRAcc). It
// returns ok = false when no point satisfies the other bounds. When the
// optimal run spans all eligible points the dimension is left
// unrestricted. The tie-group buffer is borrowed from the caller and
// reused across candidates.
func bestInterval(col, y []float64, order []int, cur *box.Box, j int, p0 float64, viol, vdim []int, buf *[]group) (*box.Box, bool) {
	// Build tie-groups over eligible points in ascending x_j order.
	groups := (*buf)[:0]
	for _, i := range order {
		if !eligible(viol, vdim, i, j) {
			continue
		}
		v := col[i]
		w := y[i] - p0
		if len(groups) > 0 && groups[len(groups)-1].value == v {
			groups[len(groups)-1].sum += w
		} else {
			groups = append(groups, group{value: v, sum: w})
		}
	}
	*buf = groups
	if len(groups) == 0 {
		return nil, false
	}

	// Kadane over groups.
	bestSum := math.Inf(-1)
	bestStart, bestEnd := 0, 0
	curSum, curStart := 0.0, 0
	for g := range groups {
		curSum += groups[g].sum
		if curSum > bestSum {
			bestSum, bestStart, bestEnd = curSum, curStart, g
		}
		if curSum < 0 {
			curSum, curStart = 0, g+1
		}
	}

	nb := cur.Clone()
	if bestStart == 0 && bestEnd == len(groups)-1 {
		// The whole line is optimal: unrestrict the dimension.
		nb.Lo[j] = math.Inf(-1)
		nb.Hi[j] = math.Inf(1)
		return nb, true
	}
	// Bounds extend to the midpoint toward the neighboring excluded
	// group, or to infinity at the eligible extremes.
	if bestStart == 0 {
		nb.Lo[j] = math.Inf(-1)
	} else {
		nb.Lo[j] = (groups[bestStart-1].value + groups[bestStart].value) / 2
	}
	if bestEnd == len(groups)-1 {
		nb.Hi[j] = math.Inf(1)
	} else {
		nb.Hi[j] = (groups[bestEnd].value + groups[bestEnd+1].value) / 2
	}
	return nb, true
}

// intervalWRAcc returns Σ_{i∈nb}(y_i − p₀) for a box nb that differs
// from the beam box only on dim j, accumulated in ascending x_j order —
// the same iteration the reference's nb.Contains scan performs, at O(1)
// per point instead of O(M).
func intervalWRAcc(col, y []float64, order []int, j int, nb *box.Box, p0 float64, viol, vdim []int) float64 {
	lo, hi := nb.Lo[j], nb.Hi[j]
	w := 0.0
	for _, i := range order {
		if eligible(viol, vdim, i, j) {
			v := col[i]
			if v >= lo && v <= hi {
				w += y[i] - p0
			}
		}
	}
	return w
}
