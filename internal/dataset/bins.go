package dataset

import "math"

const (
	// DefaultBins is the per-feature bin budget used when a caller asks
	// for binned training without choosing one. 64 quantile bins keep a
	// node's histograms inside L1 while leaving split quality within the
	// tolerance the differential suites assert.
	DefaultBins = 64
	// MaxBins caps the per-feature bin budget. Codes are stored as uint8,
	// so 256 is a hard representation limit, not just a tuning choice.
	MaxBins = 256
	// minBins is the smallest usable budget: one cut point.
	minBins = 2
)

// Bins is the quantization view behind histogram-binned tree training:
// every feature is mapped onto at most maxBins quantile bins, and every
// cell of X carries its precomputed bin code. Like Columns and
// SortedOrders it is derived lazily, cached on the dataset (per bin
// budget) and shared — one quantization serves every tree of every
// bootstrap, every boosting round, and every fold × grid candidate of a
// tuning run.
//
// Bin b of feature j holds the values v with edges[j][b-1] < v <=
// edges[j][b]; the last bin is unbounded above. Special values route
// deterministically: -Inf always lands in bin 0, while NaN and +Inf land
// in the last bin — mirroring how the exact trees' `x <= split`
// comparison (false for NaN) sends them right at every cut.
type Bins struct {
	edges [][]float64 // per feature: ascending upper-inclusive cut values, len = bins-1
	codes [][]uint8   // column-major: codes[j][i] is the bin of X[i][j]
}

// Bins returns the quantization of the dataset at the given per-feature
// bin budget (clamped to [2, MaxBins]). It is computed once per budget —
// O(M·N log N) via SortedOrders plus O(M·N) coding — cached on the
// dataset and safe for concurrent use. The dataset must be treated as
// immutable after the first call, like Columns and SortedOrders.
func (d *Dataset) Bins(maxBins int) *Bins {
	if maxBins < minBins {
		maxBins = minBins
	}
	if maxBins > MaxBins {
		maxBins = MaxBins
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if b, ok := d.bins[maxBins]; ok {
		return b
	}
	b := d.buildBinsLocked(maxBins)
	if d.bins == nil {
		d.bins = make(map[int]*Bins)
	}
	d.bins[maxBins] = b
	return b
}

func (d *Dataset) buildBinsLocked(maxBins int) *Bins {
	n, m := d.N(), d.M()
	b := &Bins{edges: make([][]float64, m), codes: make([][]uint8, m)}
	if n == 0 || m == 0 {
		return b
	}
	cols := d.columnsLocked()
	ords := d.sortedOrdersLocked()
	// Greedy quantile grouping: walk each feature's sorted order by runs
	// of equal values and close a bin once it holds at least ceil(n/maxBins)
	// rows. Runs are never split, so every value maps to exactly one bin
	// and the edges depend only on the multiset of values — row
	// permutations cannot move them.
	target := (n + maxBins - 1) / maxBins
	for j := 0; j < m; j++ {
		col, ord := cols[j], ords[j]
		var edges []float64
		count := 0
		for k := 0; k < n; {
			v := col[ord[k]]
			k2 := k + 1
			if math.IsNaN(v) {
				// NaNs sort wherever the comparator left them; they are
				// coded into the last bin regardless, so skip them here.
				for k2 < n && math.IsNaN(col[ord[k2]]) {
					k2++
				}
				k = k2
				continue
			}
			for k2 < n && col[ord[k2]] == v {
				k2++
			}
			count += k2 - k
			if k2 < n && !math.IsNaN(col[ord[k2]]) && count >= target && len(edges) < maxBins-1 {
				edges = append(edges, binEdge(v, col[ord[k2]]))
				count = 0
			}
			k = k2
		}
		b.edges[j] = edges
		codes := make([]uint8, n)
		for i, v := range col {
			codes[i] = b.Code(j, v)
		}
		b.codes[j] = codes
	}
	return b
}

// binEdge returns an upper-inclusive cut between adjacent distinct sorted
// values a < b: the midpoint (matching the exact trees' thresholds) when
// it is representable strictly inside [a, b), otherwise a itself — which
// still separates the two values under `v <= edge`.
func binEdge(a, b float64) float64 {
	mid := (a + b) / 2
	if math.IsNaN(mid) || math.IsInf(mid, 0) {
		mid = a/2 + b/2
	}
	if math.IsNaN(mid) || mid < a || mid >= b {
		return a
	}
	return mid
}

// NumBins returns the number of bins of feature j (at least 1).
func (b *Bins) NumBins(j int) int { return len(b.edges[j]) + 1 }

// Edge returns the upper-inclusive threshold of bin cut c of feature j:
// a split "bin <= c" corresponds to the float predicate "v <= Edge(j, c)".
func (b *Bins) Edge(j, c int) float64 { return b.edges[j][c] }

// ColumnCodes returns the precomputed bin codes of feature j, indexed by
// dataset row. Callers must not mutate the slice.
func (b *Bins) ColumnCodes(j int) []uint8 { return b.codes[j] }

// Code maps a feature value onto its bin: the first bin whose edge is >=
// v, found by binary search. NaN and +Inf deterministically take the last
// bin; -Inf takes bin 0 (it is <= every edge).
func (b *Bins) Code(j int, v float64) uint8 {
	e := b.edges[j]
	if math.IsNaN(v) {
		return uint8(len(e))
	}
	lo, hi := 0, len(e)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= e[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint8(lo)
}
