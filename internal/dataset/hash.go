package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Hash returns a stable hex-encoded SHA-256 digest of the dataset
// content: shape, every input value, every label and the discrete mask.
// Two datasets hash equal iff they hold bit-identical data, which makes
// the digest usable as a cache key for models trained on the data
// (engine metamodel cache) regardless of how the dataset was loaded.
func (d *Dataset) Hash() string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeF64 := func(v float64) { writeU64(math.Float64bits(v)) }

	writeU64(uint64(d.N()))
	writeU64(uint64(d.M()))
	for _, row := range d.X {
		// Rows of a malformed dataset can be ragged; hash the actual
		// width so such datasets still get distinct digests.
		writeU64(uint64(len(row)))
		for _, v := range row {
			writeF64(v)
		}
	}
	for _, y := range d.Y {
		writeF64(y)
	}
	if d.Discrete == nil {
		writeU64(0)
	} else {
		writeU64(1)
		for _, b := range d.Discrete {
			if b {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
