package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row a0..a(M-1),y.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	m := d.M()
	header := make([]string, m+1)
	for j := 0; j < m; j++ {
		header[j] = fmt.Sprintf("a%d", j)
	}
	header[m] = "y"
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, m+1)
	for i, row := range d.X {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[m] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or any CSV whose last
// column is the label). A first row that fails to parse as numbers is
// treated as a header and skipped.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty csv")
	}
	start := 0
	if _, err := strconv.ParseFloat(records[0][0], 64); err != nil {
		start = 1 // header row
	}
	if start >= len(records) {
		return nil, fmt.Errorf("dataset: csv has only a header")
	}
	cols := len(records[start])
	if cols < 2 {
		return nil, fmt.Errorf("dataset: csv needs at least one input and one label column")
	}
	var x [][]float64
	var y []float64
	for line := start; line < len(records); line++ {
		rec := records[line]
		if len(rec) != cols {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", line+1, len(rec), cols)
		}
		row := make([]float64, cols-1)
		for j := 0; j < cols-1; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", line+1, j+1, err)
			}
			row[j] = v
		}
		label, err := strconv.ParseFloat(rec[cols-1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d label: %w", line+1, err)
		}
		x = append(x, row)
		y = append(y, label)
	}
	return New(x, y)
}
