package dataset

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func binsTestData(n, m int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			switch j % 3 {
			case 0:
				row[j] = rng.Float64()
			case 1:
				row[j] = float64(rng.Intn(5)) // heavy ties
			default:
				row[j] = rng.NormFloat64() * 100
			}
		}
		x[i] = row
		if rng.Float64() < 0.3 {
			y[i] = 1
		}
	}
	return MustNew(x, y)
}

// TestBinsCodeMonotone: the bin code is monotone non-decreasing in the
// feature value — the property that makes "bin <= c" equivalent to a
// float threshold predicate.
func TestBinsCodeMonotone(t *testing.T) {
	d := binsTestData(500, 6, 1)
	rng := rand.New(rand.NewSource(2))
	for _, maxBins := range []int{2, 7, 64, 256} {
		b := d.Bins(maxBins)
		for j := 0; j < d.M(); j++ {
			for trial := 0; trial < 2000; trial++ {
				v1 := rng.NormFloat64() * 150
				v2 := v1 + rng.Float64()*10
				if b.Code(j, v1) > b.Code(j, v2) {
					t.Fatalf("maxBins=%d feature %d: Code(%v)=%d > Code(%v)=%d",
						maxBins, j, v1, b.Code(j, v1), v2, b.Code(j, v2))
				}
			}
		}
	}
}

// TestBinsEveryPointOneBin: every dataset cell maps to exactly one bin,
// the precomputed code agrees with the mapper, and codes stay in range.
func TestBinsEveryPointOneBin(t *testing.T) {
	d := binsTestData(400, 6, 3)
	for _, maxBins := range []int{2, 13, 64, 256} {
		b := d.Bins(maxBins)
		for j := 0; j < d.M(); j++ {
			nb := b.NumBins(j)
			if nb < 1 || nb > maxBins {
				t.Fatalf("maxBins=%d feature %d: %d bins", maxBins, j, nb)
			}
			codes := b.ColumnCodes(j)
			for i := range d.X {
				c := b.Code(j, d.X[i][j])
				if int(c) >= nb {
					t.Fatalf("feature %d row %d: code %d out of %d bins", j, i, c, nb)
				}
				if codes[i] != c {
					t.Fatalf("feature %d row %d: cached code %d != mapped %d", j, i, codes[i], c)
				}
				// The code is consistent with the edges: v <= Edge(j,c)
				// and (for c > 0) v > Edge(j,c-1).
				v := d.X[i][j]
				if int(c) < nb-1 && !(v <= b.Edge(j, int(c))) {
					t.Fatalf("feature %d: %v in bin %d above its edge %v", j, v, c, b.Edge(j, int(c)))
				}
				if c > 0 && !(v > b.Edge(j, int(c)-1)) && !math.IsNaN(v) {
					t.Fatalf("feature %d: %v in bin %d not above lower edge %v", j, v, c, b.Edge(j, int(c)-1))
				}
			}
		}
	}
}

// TestBinsSpecialValues: NaN and +Inf deterministically route to the last
// bin, -Inf to the first — including when those values appear in the data.
func TestBinsSpecialValues(t *testing.T) {
	x := [][]float64{
		{math.Inf(-1)}, {math.NaN()}, {0.1}, {0.2}, {0.3}, {0.4},
		{0.5}, {0.6}, {0.7}, {math.Inf(1)},
	}
	y := make([]float64, len(x))
	d := MustNew(x, y)
	b := d.Bins(4)
	last := uint8(b.NumBins(0) - 1)
	for trial := 0; trial < 3; trial++ {
		if got := b.Code(0, math.NaN()); got != last {
			t.Fatalf("NaN routed to bin %d, want last bin %d", got, last)
		}
		if got := b.Code(0, math.Inf(1)); got != last {
			t.Fatalf("+Inf routed to bin %d, want last bin %d", got, last)
		}
		if got := b.Code(0, math.Inf(-1)); got != 0 {
			t.Fatalf("-Inf routed to bin %d, want 0", got)
		}
	}
	for c := 0; c < b.NumBins(0)-1; c++ {
		if e := b.Edge(0, c); math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("edge %d is non-finite: %v", c, e)
		}
	}
}

// TestBinsStableUnderPermutation: bin edges depend only on the multiset
// of feature values, so shuffling rows must not move them.
func TestBinsStableUnderPermutation(t *testing.T) {
	d := binsTestData(300, 4, 7)
	shuffled := d.Shuffled(rand.New(rand.NewSource(8)))
	for _, maxBins := range []int{2, 16, 64} {
		a, b := d.Bins(maxBins), shuffled.Bins(maxBins)
		for j := 0; j < d.M(); j++ {
			if !reflect.DeepEqual(a.edges[j], b.edges[j]) {
				t.Fatalf("maxBins=%d feature %d: edges moved under permutation:\n%v\nvs\n%v",
					maxBins, j, a.edges[j], b.edges[j])
			}
		}
	}
}

// TestBinsDistinctValues: when a feature has no more distinct values than
// the budget, every distinct value gets its own bin — so the binned
// candidate cut set equals the exact one.
func TestBinsDistinctValues(t *testing.T) {
	d := binsTestData(400, 6, 9) // feature 1 takes 5 distinct values
	b := d.Bins(64)
	if got := b.NumBins(1); got != 5 {
		t.Fatalf("5 distinct values got %d bins, want 5", got)
	}
}

// TestBinsCached: repeated calls at the same budget share one view;
// different budgets get their own.
func TestBinsCached(t *testing.T) {
	d := binsTestData(100, 3, 11)
	if d.Bins(64) != d.Bins(64) {
		t.Fatal("same budget returned distinct views")
	}
	if d.Bins(64) == d.Bins(32) {
		t.Fatal("different budgets shared a view")
	}
	// Out-of-range budgets clamp onto the shared views.
	if d.Bins(1) != d.Bins(2) || d.Bins(1000) != d.Bins(256) {
		t.Fatal("clamped budgets not shared")
	}
}
