// Package dataset provides the tabular container used by every algorithm in
// this repository: an N×M input matrix plus an output column, with helpers
// for bootstrap resampling, column subsetting, stratified k-fold splits and
// CSV interchange. Labels are float64 so that both binary {0,1} labels and
// the probability pseudo-labels of the REDS "p" variant flow through the
// same code paths.
//
// # Columnar views
//
// The hot loops of split finding (rf, gbt) and peeling (prim, bi) scan one
// feature at a time, so Dataset lazily derives two cached, shared views:
// Columns (a column-major copy) and SortedOrders (per-column sorted index
// orders, computed once). Both the optimized code paths and the kept
// reference implementations (the Reference flags on rf.Trainer,
// gbt.Trainer, prim.Peeler, prim.Bumping) consume the same dataset;
// differential tests assert the two paths produce identical trees and
// boxes, which is what licenses deleting neither. Once either view has
// been materialized the dataset must be treated as immutable — grow into a
// fresh Dataset instead of appending rows.
//
// # Content hashing
//
// Hash digests the full dataset content (shape, inputs, labels, discrete
// mask) into a stable SHA-256 hex string. Two datasets hash equal iff they
// hold bit-identical data, regardless of how they were loaded, which makes
// the digest the natural cache and addressing key: the engine's metamodel
// cache keys on it, and persisted job results carry it as dataset_hash.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Dataset holds N examples with M inputs each. X is row-major: X[i] is the
// i-th point. Y[i] is the observed output, normally in {0,1} but any value
// in [0,1] is legal (probability labels). Discrete marks inputs that take a
// finite set of values; algorithms that need it (consistency, mixed-input
// sampling) consult this mask, everything else treats inputs as numeric.
//
// Columns and SortedOrders lazily derive (and cache) a column-major view
// and per-column sorted index orders; once either has been called the
// dataset must be treated as immutable.
type Dataset struct {
	X        [][]float64
	Y        []float64
	Discrete []bool // nil means all-continuous

	mu   sync.Mutex // guards the lazy caches below
	cols [][]float64
	ords [][]int
	bins map[int]*Bins // quantization views, keyed by bin budget
}

// New builds a dataset and validates the shape.
func New(x [][]float64, y []float64) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("dataset: %d points but %d labels", len(x), len(y))
	}
	if len(x) > 0 {
		m := len(x[0])
		for i, row := range x {
			if len(row) != m {
				return nil, fmt.Errorf("dataset: row %d has %d columns, want %d", i, len(row), m)
			}
		}
	}
	return &Dataset{X: x, Y: y}, nil
}

// MustNew is New for statically well-formed inputs; it panics on error.
func MustNew(x [][]float64, y []float64) *Dataset {
	d, err := New(x, y)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of examples.
func (d *Dataset) N() int { return len(d.X) }

// M returns the number of inputs, 0 for an empty dataset.
func (d *Dataset) M() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// PositiveShare returns mean(Y), the share of interesting examples
// (N+/N in the paper's notation).
func (d *Dataset) PositiveShare() float64 {
	if len(d.Y) == 0 {
		return 0
	}
	s := 0.0
	for _, y := range d.Y {
		s += y
	}
	return s / float64(len(d.Y))
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	x := make([][]float64, len(d.X))
	for i, row := range d.X {
		x[i] = append([]float64(nil), row...)
	}
	y := append([]float64(nil), d.Y...)
	c := &Dataset{X: x, Y: y}
	if d.Discrete != nil {
		c.Discrete = append([]bool(nil), d.Discrete...)
	}
	return c
}

// Subset returns a dataset view containing the rows at the given indices.
// Rows are shared, not copied; callers must not mutate them.
func (d *Dataset) Subset(idx []int) *Dataset {
	x := make([][]float64, len(idx))
	y := make([]float64, len(idx))
	for k, i := range idx {
		x[k] = d.X[i]
		y[k] = d.Y[i]
	}
	return &Dataset{X: x, Y: y, Discrete: d.Discrete}
}

// Bootstrap returns a bootstrap resample of size N drawn with the given RNG.
func (d *Dataset) Bootstrap(rng *rand.Rand) *Dataset {
	n := d.N()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return d.Subset(idx)
}

// SelectColumns returns a dataset with only the given input columns, in the
// given order. Rows are copied. The Discrete mask is projected accordingly.
func (d *Dataset) SelectColumns(cols []int) *Dataset {
	x := make([][]float64, d.N())
	for i, row := range d.X {
		r := make([]float64, len(cols))
		for k, c := range cols {
			r[k] = row[c]
		}
		x[i] = r
	}
	out := &Dataset{X: x, Y: append([]float64(nil), d.Y...)}
	if d.Discrete != nil {
		m := make([]bool, len(cols))
		for k, c := range cols {
			m[k] = d.Discrete[c]
		}
		out.Discrete = m
	}
	return out
}

// ColumnRange returns the observed minimum and maximum of each input.
// For an empty dataset both slices are nil.
func (d *Dataset) ColumnRange() (lo, hi []float64) {
	if d.N() == 0 {
		return nil, nil
	}
	m := d.M()
	lo = make([]float64, m)
	hi = make([]float64, m)
	for j := 0; j < m; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	for _, row := range d.X {
		for j, v := range row {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	return lo, hi
}

// Shuffled returns a dataset with rows permuted by rng.
func (d *Dataset) Shuffled(rng *rand.Rand) *Dataset {
	idx := rng.Perm(d.N())
	return d.Subset(idx)
}

// Concat appends the rows of o to d and returns the combined dataset. The
// two datasets must have the same number of inputs.
func Concat(d, o *Dataset) (*Dataset, error) {
	if d.N() > 0 && o.N() > 0 && d.M() != o.M() {
		return nil, fmt.Errorf("dataset: concat dim mismatch %d != %d", d.M(), o.M())
	}
	x := make([][]float64, 0, d.N()+o.N())
	x = append(x, d.X...)
	x = append(x, o.X...)
	y := make([]float64, 0, len(d.Y)+len(o.Y))
	y = append(y, d.Y...)
	y = append(y, o.Y...)
	return &Dataset{X: x, Y: y, Discrete: d.Discrete}, nil
}

// Binarize returns a copy whose labels are 1 where raw < thr and 0
// otherwise. This matches the paper's convention "y = 1 if the output is
// below [the threshold]".
func Binarize(x [][]float64, raw []float64, thr float64) *Dataset {
	y := make([]float64, len(raw))
	for i, v := range raw {
		if v < thr {
			y[i] = 1
		}
	}
	return &Dataset{X: x, Y: y}
}
