package dataset

import (
	"fmt"
	"math/rand"
)

// Fold is a train/test split produced by KFold.
type Fold struct {
	Train *Dataset
	Test  *Dataset
	// TrainIdx and TestIdx are the row indices in the source dataset.
	TrainIdx []int
	TestIdx  []int
}

// KFold returns k stratified folds. Stratification keeps the share of
// positive labels (y >= 0.5) approximately equal across folds, which
// matters for the small-N, low-share datasets used in scenario discovery.
func KFold(d *Dataset, k int, rng *rand.Rand) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset: k-fold needs k >= 2, got %d", k)
	}
	if d.N() < k {
		return nil, fmt.Errorf("dataset: %d examples cannot form %d folds", d.N(), k)
	}
	var pos, neg []int
	for i, y := range d.Y {
		if y >= 0.5 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	assign := make([]int, d.N())
	for i, idx := range pos {
		assign[idx] = i % k
	}
	for i, idx := range neg {
		assign[idx] = i % k
	}

	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		var trainIdx, testIdx []int
		for i := 0; i < d.N(); i++ {
			if assign[i] == f {
				testIdx = append(testIdx, i)
			} else {
				trainIdx = append(trainIdx, i)
			}
		}
		folds[f] = Fold{
			Train:    d.Subset(trainIdx),
			Test:     d.Subset(testIdx),
			TrainIdx: trainIdx,
			TestIdx:  testIdx,
		}
	}
	return folds, nil
}

// Split returns a (train, holdout) pair where the holdout holds a fraction
// frac of the shuffled rows (at least one row in each part when possible).
func Split(d *Dataset, frac float64, rng *rand.Rand) (train, holdout *Dataset) {
	idx := rng.Perm(d.N())
	nh := int(float64(d.N()) * frac)
	if nh < 1 {
		nh = 1
	}
	if nh >= d.N() {
		nh = d.N() - 1
	}
	return d.Subset(idx[nh:]), d.Subset(idx[:nh])
}
