package dataset

import "sort"

// Columns returns a column-major view of X: Columns()[j][i] == X[i][j].
// It is built lazily on first use, cached on the dataset, and safe for
// concurrent use. The hot loops of split finding and peeling scan one
// feature at a time; the columnar layout turns those scans into
// sequential walks over a single contiguous slice instead of strided
// loads across every row.
//
// The view (and the dataset) must not be mutated after the first call.
func (d *Dataset) Columns() [][]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.columnsLocked()
}

func (d *Dataset) columnsLocked() [][]float64 {
	if d.cols != nil {
		return d.cols
	}
	n, m := d.N(), d.M()
	if m == 0 {
		return nil
	}
	backing := make([]float64, n*m)
	cols := make([][]float64, m)
	for j := range cols {
		cols[j] = backing[j*n : (j+1)*n : (j+1)*n]
	}
	for i, row := range d.X {
		for j, v := range row {
			cols[j][i] = v
		}
	}
	d.cols = cols
	return cols
}

// SortedOrders returns, for every input column j, the row indices sorted
// ascending by X[i][j], with ties broken by row index so the order is a
// deterministic total order. It is computed once — O(M·N log N) — cached
// on the dataset and shared by every consumer (each random-forest tree,
// each boosting round, each PRIM run), which is what lets the split and
// peel loops drop their per-node / per-step sorts.
//
// Callers must not mutate the returned slices; derive copies instead.
func (d *Dataset) SortedOrders() [][]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sortedOrdersLocked()
}

func (d *Dataset) sortedOrdersLocked() [][]int {
	if d.ords != nil {
		return d.ords
	}
	n, m := d.N(), d.M()
	if m == 0 {
		return nil
	}
	cols := d.columnsLocked()
	backing := make([]int, n*m)
	ords := make([][]int, m)
	for j := range ords {
		ord := backing[j*n : (j+1)*n : (j+1)*n]
		for i := range ord {
			ord[i] = i
		}
		col := cols[j]
		sort.Slice(ord, func(a, b int) bool {
			va, vb := col[ord[a]], col[ord[b]]
			if va != vb {
				return va < vb
			}
			return ord[a] < ord[b]
		})
		ords[j] = ord
	}
	d.ords = ords
	return ords
}

// invalidate drops the cached columnar views; callers must hold no
// reference to previously returned views. Used when a dataset's contents
// are replaced wholesale (JSON decode into a reused receiver).
func (d *Dataset) invalidate() {
	d.mu.Lock()
	d.cols, d.ords, d.bins = nil, nil, nil
	d.mu.Unlock()
}

// StablePartition reorders the row-index segment seg so rows with goLeft
// set come first, preserving relative order on both sides, and returns
// the left count. The left half is compacted in place (writes trail
// reads); the right half spills into scratch — which must be at least
// len(seg) long — and is copied back.
//
// This is the kernel that keeps per-feature sorted orders (derived from
// SortedOrders) sorted through recursive tree splits: partitioning a
// sorted list stably by the split predicate leaves both halves sorted.
func StablePartition(seg []int, goLeft []bool, scratch []int) int {
	nl, nr := 0, 0
	for _, r := range seg {
		if goLeft[r] {
			seg[nl] = r
			nl++
		} else {
			scratch[nr] = r
			nr++
		}
	}
	copy(seg[nl:], scratch[:nr])
	return nl
}
