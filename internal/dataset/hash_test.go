package dataset

import (
	"encoding/json"
	"testing"
)

func TestHashStableAndSensitive(t *testing.T) {
	d := MustNew([][]float64{{1, 2}, {3, 4}}, []float64{0, 1})
	if d.Hash() != d.Hash() {
		t.Fatalf("hash is not deterministic")
	}
	if d.Hash() != d.Clone().Hash() {
		t.Fatalf("clone hashes differently")
	}

	variants := []*Dataset{
		MustNew([][]float64{{1, 2}, {3, 5}}, []float64{0, 1}),       // one value changed
		MustNew([][]float64{{1, 2}, {3, 4}}, []float64{1, 1}),       // label changed
		MustNew([][]float64{{1, 2, 0}, {3, 4, 0}}, []float64{0, 1}), // extra column
		MustNew([][]float64{{1, 2}}, []float64{0}),                  // fewer rows
		{X: [][]float64{{1, 2}, {3, 4}}, Y: []float64{0, 1}, Discrete: []bool{true, false}},
	}
	seen := map[string]bool{d.Hash(): true}
	for i, v := range variants {
		h := v.Hash()
		if seen[h] {
			t.Errorf("variant %d collides with an earlier dataset", i)
		}
		seen[h] = true
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	d := &Dataset{
		X:        [][]float64{{0.25, 1}, {0.5, 0}},
		Y:        []float64{1, 0},
		Discrete: []bool{false, true},
	}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Dataset
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hash() != d.Hash() {
		t.Fatalf("round trip changed content: %s vs %s", back.Hash(), d.Hash())
	}
}

func TestDatasetJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"x": [[1,2],[3]], "y": [0,1]}`,           // ragged rows
		`{"x": [[1,2]], "y": [0,1]}`,               // label count mismatch
		`{"x": [[1,2]], "y": [0], "discrete":[true]}`, // mask width mismatch
	}
	for i, c := range cases {
		var d Dataset
		if err := json.Unmarshal([]byte(c), &d); err == nil {
			t.Errorf("case %d: accepted malformed dataset %s", i, c)
		}
	}
}
