package dataset

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

func TestColumnsView(t *testing.T) {
	d := MustNew([][]float64{{1, 2}, {3, 4}, {5, 6}}, []float64{0, 1, 0})
	cols := d.Columns()
	if len(cols) != 2 {
		t.Fatalf("got %d columns", len(cols))
	}
	for j := range cols {
		for i := range d.X {
			if cols[j][i] != d.X[i][j] {
				t.Fatalf("cols[%d][%d] = %g, want %g", j, i, cols[j][i], d.X[i][j])
			}
		}
	}
	if &cols[0][0] != &d.Columns()[0][0] {
		t.Error("second call must return the cached view")
	}
	var empty Dataset
	if empty.Columns() != nil || empty.SortedOrders() != nil {
		t.Error("empty dataset must return nil views")
	}
}

func TestSortedOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, m := 200, 3
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		// Quantized first column to exercise tie-breaking by row index.
		x[i] = []float64{float64(rng.Intn(5)), rng.Float64(), rng.Float64()}
	}
	d := MustNew(x, y)
	ords := d.SortedOrders()
	if len(ords) != m {
		t.Fatalf("got %d orders", len(ords))
	}
	for j, ord := range ords {
		if len(ord) != n {
			t.Fatalf("order %d has %d entries", j, len(ord))
		}
		seen := make([]bool, n)
		for k, i := range ord {
			if seen[i] {
				t.Fatalf("order %d repeats row %d", j, i)
			}
			seen[i] = true
			if k == 0 {
				continue
			}
			prev := ord[k-1]
			if x[i][j] < x[prev][j] {
				t.Fatalf("order %d not ascending at %d", j, k)
			}
			if x[i][j] == x[prev][j] && i < prev {
				t.Fatalf("order %d tie not broken by row index at %d", j, k)
			}
		}
	}
}

func TestColumnsConcurrentFirstUse(t *testing.T) {
	d := MustNew([][]float64{{1, 2}, {3, 4}}, []float64{0, 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = d.Columns()
			_ = d.SortedOrders()
		}()
	}
	wg.Wait()
}

func TestUnmarshalInvalidatesViews(t *testing.T) {
	d := MustNew([][]float64{{1}, {2}}, []float64{0, 1})
	if got := d.Columns()[0][0]; got != 1 {
		t.Fatalf("pre-decode column = %g", got)
	}
	if err := json.Unmarshal([]byte(`{"x":[[9],[8],[7]],"y":[1,0,1]}`), d); err != nil {
		t.Fatal(err)
	}
	cols := d.Columns()
	if len(cols[0]) != 3 || cols[0][0] != 9 {
		t.Fatalf("stale columnar view survived decode: %v", cols[0])
	}
}
