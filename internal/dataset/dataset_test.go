package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sample(t *testing.T, n, m int, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		if rng.Float64() < 0.3 {
			y[i] = 1
		}
	}
	return MustNew(x, y)
}

func TestNewValidation(t *testing.T) {
	if _, err := New([][]float64{{1, 2}}, []float64{1, 0}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := New([][]float64{{1, 2}, {1}}, []float64{1, 0}); err == nil {
		t.Error("ragged rows should error")
	}
	d, err := New(nil, nil)
	if err != nil || d.N() != 0 || d.M() != 0 {
		t.Errorf("empty dataset: %v, N=%d M=%d", err, d.N(), d.M())
	}
}

func TestPositiveShare(t *testing.T) {
	d := MustNew([][]float64{{0}, {0}, {0}, {0}}, []float64{1, 0, 1, 0})
	if s := d.PositiveShare(); s != 0.5 {
		t.Errorf("share = %g, want 0.5", s)
	}
	// Probability labels count fractionally.
	d = MustNew([][]float64{{0}, {0}}, []float64{0.25, 0.75})
	if s := d.PositiveShare(); s != 0.5 {
		t.Errorf("prob share = %g, want 0.5", s)
	}
}

func TestSubsetAndBootstrap(t *testing.T) {
	d := sample(t, 50, 3, 1)
	s := d.Subset([]int{4, 9, 4})
	if s.N() != 3 || s.X[0][0] != d.X[4][0] || s.X[2][0] != d.X[4][0] {
		t.Error("Subset rows wrong")
	}
	rng := rand.New(rand.NewSource(2))
	b := d.Bootstrap(rng)
	if b.N() != d.N() {
		t.Errorf("bootstrap size = %d, want %d", b.N(), d.N())
	}
}

func TestSelectColumns(t *testing.T) {
	d := MustNew([][]float64{{1, 2, 3}, {4, 5, 6}}, []float64{0, 1})
	d.Discrete = []bool{false, true, false}
	s := d.SelectColumns([]int{2, 0})
	if s.M() != 2 || s.X[0][0] != 3 || s.X[0][1] != 1 || s.X[1][0] != 6 {
		t.Errorf("SelectColumns wrong: %v", s.X)
	}
	if s.Discrete[0] || !s.Discrete[1] == true {
		// col 2 is continuous, col 0 is continuous; mask projected
	}
	if len(s.Discrete) != 2 {
		t.Errorf("Discrete mask not projected: %v", s.Discrete)
	}
}

func TestColumnRange(t *testing.T) {
	d := MustNew([][]float64{{1, -2}, {3, 5}, {2, 0}}, []float64{0, 0, 0})
	lo, hi := d.ColumnRange()
	if lo[0] != 1 || hi[0] != 3 || lo[1] != -2 || hi[1] != 5 {
		t.Errorf("range = %v %v", lo, hi)
	}
}

func TestConcat(t *testing.T) {
	a := sample(t, 5, 2, 1)
	b := sample(t, 7, 2, 2)
	c, err := Concat(a, b)
	if err != nil || c.N() != 12 {
		t.Fatalf("Concat: %v N=%d", err, c.N())
	}
	bad := sample(t, 3, 4, 3)
	if _, err := Concat(a, bad); err == nil {
		t.Error("dim mismatch should error")
	}
}

func TestBinarize(t *testing.T) {
	x := [][]float64{{0}, {0}, {0}}
	raw := []float64{1, 5, 3}
	d := Binarize(x, raw, 3)
	want := []float64{1, 0, 0} // strict less-than
	for i := range want {
		if d.Y[i] != want[i] {
			t.Errorf("Binarize[%d] = %g, want %g", i, d.Y[i], want[i])
		}
	}
}

func TestKFoldStratified(t *testing.T) {
	d := sample(t, 100, 2, 3)
	rng := rand.New(rand.NewSource(4))
	folds, err := KFold(d, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make([]int, d.N())
	total := 0
	for _, f := range folds {
		if f.Train.N()+f.Test.N() != d.N() {
			t.Error("fold sizes do not sum to N")
		}
		for _, i := range f.TestIdx {
			seen[i]++
			total++
		}
		// Stratification: positive share within ±15pp of the global share.
		gs := d.PositiveShare()
		if math.Abs(f.Test.PositiveShare()-gs) > 0.15 {
			t.Errorf("fold share %g too far from %g", f.Test.PositiveShare(), gs)
		}
	}
	if total != d.N() {
		t.Errorf("test rows total = %d, want %d", total, d.N())
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("row %d appears in %d test folds", i, c)
		}
	}
	if _, err := KFold(d, 1, rng); err == nil {
		t.Error("k=1 should error")
	}
}

func TestSplit(t *testing.T) {
	d := sample(t, 20, 2, 5)
	rng := rand.New(rand.NewSource(6))
	train, hold := Split(d, 0.25, rng)
	if train.N()+hold.N() != 20 || hold.N() != 5 {
		t.Errorf("split = %d/%d", train.N(), hold.N())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample(t, 17, 4, 7)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != d.N() || got.M() != d.M() {
		t.Fatalf("shape %dx%d, want %dx%d", got.N(), got.M(), d.N(), d.M())
	}
	for i := range d.X {
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] {
				t.Fatalf("X[%d][%d] = %g, want %g", i, j, got.X[i][j], d.X[i][j])
			}
		}
		if got.Y[i] != d.Y[i] {
			t.Fatalf("Y[%d] = %g, want %g", i, got.Y[i], d.Y[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                // empty
		"a0,y",            // header only
		"1,2\n1",          // ragged (csv pkg catches this)
		"1,abc\n",         // bad label
		"only_one_col\n1", // single column after header
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) should error", c)
		}
	}
}

func TestCloneDeep(t *testing.T) {
	d := sample(t, 5, 2, 8)
	c := d.Clone()
	c.X[0][0] = 999
	c.Y[0] = 999
	if d.X[0][0] == 999 || d.Y[0] == 999 {
		t.Error("Clone must deep-copy")
	}
}

func TestPropertyKFoldPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(90)
		d := sample(t, n, 2, seed)
		k := 2 + rng.Intn(4)
		folds, err := KFold(d, k, rng)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, f := range folds {
			for _, i := range f.TestIdx {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBootstrapPreservesRows(t *testing.T) {
	d := sample(t, 30, 3, 9)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := d.Bootstrap(rng)
		// Every bootstrap row must be one of the original rows.
		for k, row := range b.X {
			found := false
			for i, orig := range d.X {
				if &row[0] == &orig[0] && b.Y[k] == d.Y[i] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
