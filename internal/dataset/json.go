package dataset

import (
	"encoding/json"
	"fmt"
)

// datasetJSON is the interchange shape of a Dataset. Inputs and labels
// are finite floats, so plain JSON numbers suffice (unlike boxes, whose
// infinite bounds need a null encoding).
type datasetJSON struct {
	X        [][]float64 `json:"x"`
	Y        []float64   `json:"y"`
	Discrete []bool      `json:"discrete,omitempty"`
}

// MarshalJSON encodes the dataset as {"x": [[...]], "y": [...]} with an
// optional "discrete" mask.
func (d *Dataset) MarshalJSON() ([]byte, error) {
	return json.Marshal(datasetJSON{X: d.X, Y: d.Y, Discrete: d.Discrete})
}

// UnmarshalJSON decodes and validates a dataset: the shape checks of New
// apply, and a discrete mask must match the input width.
func (d *Dataset) UnmarshalJSON(data []byte) error {
	var raw datasetJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("dataset: decoding json: %w", err)
	}
	parsed, err := New(raw.X, raw.Y)
	if err != nil {
		return err
	}
	if raw.Discrete != nil && len(raw.Discrete) != parsed.M() {
		return fmt.Errorf("dataset: discrete mask has %d entries, want %d", len(raw.Discrete), parsed.M())
	}
	// Assign field-wise: Dataset carries a mutex-guarded cache for its
	// lazy columnar views, which must not be copied (and must not
	// survive a decode into a reused receiver).
	d.X, d.Y, d.Discrete = parsed.X, parsed.Y, raw.Discrete
	d.invalidate()
	return nil
}
