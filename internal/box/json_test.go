package box

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestBoxJSONRoundTrip(t *testing.T) {
	b := Full(3)
	b.Lo[0] = 0.25
	b.Hi[2] = 0.75

	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "null") {
		t.Errorf("unrestricted sides should encode as null: %s", raw)
	}
	var back Box
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !b.Equal(&back) {
		t.Fatalf("round trip changed the box: %v -> %v", b, &back)
	}
	if !math.IsInf(back.Lo[1], -1) || !math.IsInf(back.Hi[1], 1) {
		t.Fatalf("nulls did not decode to infinities: %+v", back)
	}
}

func TestBoxJSONRejectsMismatch(t *testing.T) {
	var b Box
	if err := json.Unmarshal([]byte(`{"lo":[0,1],"hi":[1]}`), &b); err == nil {
		t.Fatalf("accepted mismatched bounds")
	}
}
