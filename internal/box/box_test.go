package box

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullBox(t *testing.T) {
	b := Full(3)
	if b.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", b.Dim())
	}
	if b.Restricted() != 0 {
		t.Errorf("Restricted = %d, want 0", b.Restricted())
	}
	if !b.Contains([]float64{1e300, -1e300, 0}) {
		t.Error("full box must contain any point")
	}
	if b.String() != "TRUE" {
		t.Errorf("String = %q, want TRUE", b.String())
	}
}

func TestContains(t *testing.T) {
	b := New([]float64{0, math.Inf(-1)}, []float64{1, 0.5})
	tests := []struct {
		x    []float64
		want bool
	}{
		{[]float64{0.5, 0}, true},
		{[]float64{0, 0.5}, true},   // closed bounds
		{[]float64{1, -100}, true},  // unbounded low side
		{[]float64{1.01, 0}, false}, // above hi
		{[]float64{-0.01, 0}, false},
		{[]float64{0.5, 0.51}, false},
	}
	for _, tc := range tests {
		if got := b.Contains(tc.x); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestRestricted(t *testing.T) {
	b := Full(4)
	b.Lo[1] = 0.2
	b.Hi[3] = 0.9
	if got := b.Restricted(); got != 2 {
		t.Errorf("Restricted = %d, want 2", got)
	}
	dims := b.RestrictedDims()
	if len(dims) != 2 || dims[0] != 1 || dims[1] != 3 {
		t.Errorf("RestrictedDims = %v, want [1 3]", dims)
	}
}

func TestVolumeClipping(t *testing.T) {
	dom0 := []float64{0, 0}
	dom1 := []float64{1, 1}
	b := Full(2)
	if v := b.Volume(dom0, dom1); math.Abs(v-1) > 1e-12 {
		t.Errorf("full box clipped volume = %g, want 1", v)
	}
	b = New([]float64{0.25, math.Inf(-1)}, []float64{0.75, 0.5})
	if v := b.Volume(dom0, dom1); math.Abs(v-0.25) > 1e-12 {
		t.Errorf("volume = %g, want 0.25", v)
	}
	// Bound entirely outside the domain: empty.
	b = New([]float64{2, 0}, []float64{3, 1})
	if v := b.Volume(dom0, dom1); v != 0 {
		t.Errorf("out-of-domain volume = %g, want 0", v)
	}
}

func TestOverlapAndUnion(t *testing.T) {
	dom0 := []float64{0, 0}
	dom1 := []float64{1, 1}
	a := New([]float64{0, 0}, []float64{0.6, 0.6})
	b := New([]float64{0.4, 0.4}, []float64{1, 1})
	ov := a.OverlapVolume(b, dom0, dom1)
	if math.Abs(ov-0.04) > 1e-12 {
		t.Errorf("overlap = %g, want 0.04", ov)
	}
	un := a.UnionVolume(b, dom0, dom1)
	if math.Abs(un-(0.36+0.36-0.04)) > 1e-12 {
		t.Errorf("union = %g, want 0.68", un)
	}
	// Disjoint boxes.
	c := New([]float64{0.8, 0.8}, []float64{1, 1})
	if ov := a.OverlapVolume(c, dom0, dom1); ov != 0 {
		t.Errorf("disjoint overlap = %g, want 0", ov)
	}
}

func TestIntersect(t *testing.T) {
	a := New([]float64{0, 0}, []float64{0.6, 0.6})
	b := New([]float64{0.4, 0.4}, []float64{1, 1})
	got := a.Intersect(b)
	want := New([]float64{0.4, 0.4}, []float64{0.6, 0.6})
	if got == nil || !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	c := New([]float64{0.7, 0}, []float64{1, 1})
	if a.Intersect(c) != nil {
		t.Error("disjoint intersect should be nil")
	}
}

func TestCoversBox(t *testing.T) {
	outer := New([]float64{0, 0}, []float64{1, 1})
	inner := New([]float64{0.1, 0.2}, []float64{0.9, 0.8})
	if !outer.CoversBox(inner) {
		t.Error("outer should cover inner")
	}
	if inner.CoversBox(outer) {
		t.Error("inner should not cover outer")
	}
	if !Full(2).CoversBox(outer) {
		t.Error("full box covers everything")
	}
}

func TestString(t *testing.T) {
	b := Full(3)
	b.Lo[0] = 0.1
	b.Hi[0] = 0.9
	b.Hi[2] = 0.5
	s := b.String()
	want := "0.1 <= a0 <= 0.9 AND a2 <= 0.5"
	if s != want {
		t.Errorf("String = %q, want %q", s, want)
	}
}

func TestDominates(t *testing.T) {
	tests := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{0.5, 0.5}, true},
		{[]float64{1, 0.5}, []float64{1, 0.4}, true},
		{[]float64{1, 1}, []float64{1, 1}, false},       // equal: no strict part
		{[]float64{1, 0.3}, []float64{0.5, 0.5}, false}, // trade-off
		{[]float64{0.2, 0.2}, []float64{0.5, 0.5}, false},
	}
	for _, tc := range tests {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestParetoFront(t *testing.T) {
	qs := [][]float64{
		{0.9, 0.1}, // kept: best precision
		{0.5, 0.5}, // kept
		{0.4, 0.4}, // dominated by {0.5,0.5}
		{0.1, 0.9}, // kept: best recall
		{0.5, 0.5}, // duplicate of kept vector: also kept
	}
	front := ParetoFront(qs)
	want := map[int]bool{0: true, 1: true, 3: true, 4: true}
	if len(front) != len(want) {
		t.Fatalf("front = %v, want indices %v", front, want)
	}
	for _, i := range front {
		if !want[i] {
			t.Errorf("unexpected front index %d", i)
		}
	}
}

// randomBoxPair builds two random boxes inside [0,1]^dim for property tests.
func randomBoxPair(rng *rand.Rand, dim int) (*Box, *Box) {
	mk := func() *Box {
		b := Full(dim)
		for j := 0; j < dim; j++ {
			if rng.Float64() < 0.7 {
				l, h := rng.Float64(), rng.Float64()
				if l > h {
					l, h = h, l
				}
				b.Lo[j], b.Hi[j] = l, h
			}
		}
		return b
	}
	return mk(), mk()
}

func TestPropertyOverlapWithinUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dom0 := []float64{0, 0, 0}
	dom1 := []float64{1, 1, 1}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed + rng.Int63()))
		a, b := randomBoxPair(r, 3)
		ov := a.OverlapVolume(b, dom0, dom1)
		un := a.UnionVolume(b, dom0, dom1)
		va := a.Volume(dom0, dom1)
		vb := b.Volume(dom0, dom1)
		const eps = 1e-12
		return ov >= -eps && ov <= math.Min(va, vb)+eps &&
			un >= math.Max(va, vb)-eps && un <= va+vb+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOverlapSymmetric(t *testing.T) {
	dom0 := []float64{0, 0, 0, 0}
	dom1 := []float64{1, 1, 1, 1}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomBoxPair(r, 4)
		d1 := a.OverlapVolume(b, dom0, dom1)
		d2 := b.OverlapVolume(a, dom0, dom1)
		return math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersectVolumeMatchesOverlap(t *testing.T) {
	dom0 := []float64{0, 0, 0}
	dom1 := []float64{1, 1, 1}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomBoxPair(r, 3)
		inter := a.Intersect(b)
		ov := a.OverlapVolume(b, dom0, dom1)
		if inter == nil {
			return ov == 0
		}
		return math.Abs(inter.Volume(dom0, dom1)-ov) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDominationIrreflexiveAntisymmetric(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		a := []float64{a0, a1}
		b := []float64{b0, b1}
		if Dominates(a, a) || Dominates(b, b) {
			return false // irreflexive
		}
		// antisymmetric: both directions cannot hold
		return !(Dominates(a, b) && Dominates(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyContainsImpliesInsideIntersectionOfBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomBoxPair(r, 3)
		inter := a.Intersect(b)
		x := []float64{r.Float64(), r.Float64(), r.Float64()}
		inBoth := a.Contains(x) && b.Contains(x)
		if inter == nil {
			return !inBoth
		}
		return inBoth == inter.Contains(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	b := Full(2)
	c := b.Clone()
	c.Lo[0] = 0.5
	if b.Lo[0] == 0.5 {
		t.Error("Clone must not share bound slices")
	}
	if !b.Clone().Equal(b) {
		t.Error("Clone must equal the original")
	}
}
