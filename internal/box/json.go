package box

import (
	"encoding/json"
	"fmt"
	"math"
)

// boxJSON is the interchange shape of a Box. JSON has no encoding for
// ±Inf, so an unrestricted side is transmitted as null.
type boxJSON struct {
	Lo []*float64 `json:"lo"`
	Hi []*float64 `json:"hi"`
}

func boundsToJSON(bounds []float64, sign int) []*float64 {
	out := make([]*float64, len(bounds))
	for j, v := range bounds {
		if math.IsInf(v, sign) {
			continue
		}
		w := v
		out[j] = &w
	}
	return out
}

func boundsFromJSON(bounds []*float64, sign int) []float64 {
	out := make([]float64, len(bounds))
	for j, p := range bounds {
		if p == nil {
			out[j] = math.Inf(sign)
		} else {
			out[j] = *p
		}
	}
	return out
}

// MarshalJSON encodes the box as {"lo": [...], "hi": [...]} with null
// marking an unrestricted side.
func (b *Box) MarshalJSON() ([]byte, error) {
	return json.Marshal(boxJSON{
		Lo: boundsToJSON(b.Lo, -1),
		Hi: boundsToJSON(b.Hi, 1),
	})
}

// UnmarshalJSON decodes the encoding of MarshalJSON, mapping null back
// to the matching infinity.
func (b *Box) UnmarshalJSON(data []byte) error {
	var raw boxJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("box: decoding json: %w", err)
	}
	if len(raw.Lo) != len(raw.Hi) {
		return fmt.Errorf("box: bound length mismatch %d != %d", len(raw.Lo), len(raw.Hi))
	}
	b.Lo = boundsFromJSON(raw.Lo, -1)
	b.Hi = boundsFromJSON(raw.Hi, 1)
	return nil
}
