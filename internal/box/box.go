// Package box implements the hyperbox algebra used throughout scenario
// discovery: axis-aligned boxes with possibly unbounded sides, containment
// tests, restriction counting, clipped volumes, overlap/union volumes and
// Pareto domination of quality-measure vectors (Definition 1 in the paper).
package box

import (
	"fmt"
	"math"
	"strings"
)

// Box is a conjunction of closed intervals, one per input dimension.
// Lo[j] = -Inf or Hi[j] = +Inf mark an unrestricted side. A box with
// Lo[j] = -Inf and Hi[j] = +Inf for all j covers the whole input space.
type Box struct {
	Lo []float64
	Hi []float64
}

// Full returns the unrestricted box over dim dimensions.
func Full(dim int) *Box {
	b := &Box{Lo: make([]float64, dim), Hi: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		b.Lo[j] = math.Inf(-1)
		b.Hi[j] = math.Inf(1)
	}
	return b
}

// New returns a box with the given bounds. It panics if the slice lengths
// differ, since that is always a programming error.
func New(lo, hi []float64) *Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("box: bound length mismatch %d != %d", len(lo), len(hi)))
	}
	return &Box{Lo: lo, Hi: hi}
}

// Dim returns the number of dimensions of the box.
func (b *Box) Dim() int { return len(b.Lo) }

// Clone returns a deep copy of the box.
func (b *Box) Clone() *Box {
	lo := make([]float64, len(b.Lo))
	hi := make([]float64, len(b.Hi))
	copy(lo, b.Lo)
	copy(hi, b.Hi)
	return &Box{Lo: lo, Hi: hi}
}

// Contains reports whether the point x lies inside the box (closed bounds).
func (b *Box) Contains(x []float64) bool {
	for j, v := range x {
		if v < b.Lo[j] || v > b.Hi[j] {
			return false
		}
	}
	return true
}

// RestrictedDim reports whether dimension j is restricted on either side.
func (b *Box) RestrictedDim(j int) bool {
	return !math.IsInf(b.Lo[j], -1) || !math.IsInf(b.Hi[j], 1)
}

// Restricted returns the number of restricted dimensions (the
// interpretability measure "#restricted" from Section 4 of the paper).
func (b *Box) Restricted() int {
	n := 0
	for j := range b.Lo {
		if b.RestrictedDim(j) {
			n++
		}
	}
	return n
}

// RestrictedDims returns the indices of all restricted dimensions.
func (b *Box) RestrictedDims() []int {
	var dims []int
	for j := range b.Lo {
		if b.RestrictedDim(j) {
			dims = append(dims, j)
		}
	}
	return dims
}

// Equal reports whether two boxes have identical bounds. Infinities
// compare equal to infinities of the same sign.
func (b *Box) Equal(o *Box) bool {
	if b.Dim() != o.Dim() {
		return false
	}
	for j := range b.Lo {
		if b.Lo[j] != o.Lo[j] || b.Hi[j] != o.Hi[j] {
			return false
		}
	}
	return true
}

// clip returns the bounds of dimension j clipped to [lo, hi].
func (b *Box) clip(j int, lo, hi float64) (float64, float64) {
	l, h := b.Lo[j], b.Hi[j]
	if l < lo {
		l = lo
	}
	if h > hi {
		h = hi
	}
	return l, h
}

// Volume returns the volume of the box clipped to the domain given by
// domLo/domHi per dimension (Section 4: infinities are replaced with the
// minimal and maximal values of the respective input). An empty clipped
// interval yields volume 0.
func (b *Box) Volume(domLo, domHi []float64) float64 {
	v := 1.0
	for j := range b.Lo {
		l, h := b.clip(j, domLo[j], domHi[j])
		if h <= l {
			return 0
		}
		v *= h - l
	}
	return v
}

// OverlapVolume returns the volume of the intersection of b and o, both
// clipped to the domain.
func (b *Box) OverlapVolume(o *Box, domLo, domHi []float64) float64 {
	v := 1.0
	for j := range b.Lo {
		l1, h1 := b.clip(j, domLo[j], domHi[j])
		l2, h2 := o.clip(j, domLo[j], domHi[j])
		l := math.Max(l1, l2)
		h := math.Min(h1, h2)
		if h <= l {
			return 0
		}
		v *= h - l
	}
	return v
}

// UnionVolume returns the volume of the union of b and o clipped to the
// domain, via inclusion-exclusion.
func (b *Box) UnionVolume(o *Box, domLo, domHi []float64) float64 {
	return b.Volume(domLo, domHi) + o.Volume(domLo, domHi) - b.OverlapVolume(o, domLo, domHi)
}

// Intersect returns the intersection box of b and o, or nil when the
// intersection is empty in some dimension.
func (b *Box) Intersect(o *Box) *Box {
	r := Full(b.Dim())
	for j := range b.Lo {
		r.Lo[j] = math.Max(b.Lo[j], o.Lo[j])
		r.Hi[j] = math.Min(b.Hi[j], o.Hi[j])
		if r.Hi[j] < r.Lo[j] {
			return nil
		}
	}
	return r
}

// CoversBox reports whether every point of o lies inside b.
func (b *Box) CoversBox(o *Box) bool {
	for j := range b.Lo {
		if o.Lo[j] < b.Lo[j] || o.Hi[j] > b.Hi[j] {
			return false
		}
	}
	return true
}

// String renders the box as a conjunction rule over inputs a0..a(M-1),
// omitting unrestricted dimensions.
func (b *Box) String() string {
	var sb strings.Builder
	first := true
	for j := range b.Lo {
		if !b.RestrictedDim(j) {
			continue
		}
		if !first {
			sb.WriteString(" AND ")
		}
		first = false
		switch {
		case math.IsInf(b.Lo[j], -1):
			fmt.Fprintf(&sb, "a%d <= %.4g", j, b.Hi[j])
		case math.IsInf(b.Hi[j], 1):
			fmt.Fprintf(&sb, "a%d >= %.4g", j, b.Lo[j])
		default:
			fmt.Fprintf(&sb, "%.4g <= a%d <= %.4g", b.Lo[j], j, b.Hi[j])
		}
	}
	if first {
		return "TRUE"
	}
	return sb.String()
}

// Dominates implements Definition 1 of the paper: b dominates o for the
// given quality vectors qb (of b) and qo (of o) if qb >= qo component-wise
// with at least one strict inequality. The two vectors must have the same
// length.
func Dominates(qb, qo []float64) bool {
	if len(qb) != len(qo) {
		panic("box: quality vector length mismatch")
	}
	strict := false
	for k := range qb {
		if qb[k] < qo[k] {
			return false
		}
		if qb[k] > qo[k] {
			strict = true
		}
	}
	return strict
}

// ParetoFront returns the indices of the non-dominated quality vectors.
// Ties (identical vectors) are all kept.
func ParetoFront(qualities [][]float64) []int {
	var front []int
	for i, qi := range qualities {
		dominated := false
		for k, qk := range qualities {
			if k != i && Dominates(qk, qi) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}
