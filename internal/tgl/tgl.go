// Package tgl generates a synthetic stand-in for the "TGL" dataset of
// Bryant & Lempert 2010 (882 examples, 9 inputs, ~10% interesting). The
// original ships with the proprietary-ish R sdtoolkit and is not available
// offline; this generator reproduces its role in the paper's third-party
// experiments: a modest, fixed, noisy dataset whose generating process
// cannot be queried, over which REDS must resample uniformly.
//
// The ground truth is the union of two overlapping boxes over three of the
// nine inputs, with asymmetric label noise — a shape PRIM can approximate
// but not match exactly, like real policy-model output.
package tgl

import (
	"math/rand"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/sample"
)

// N and M are the published dataset dimensions.
const (
	N = 882
	M = 9
)

// Prob returns the ground-truth P(y=1|x) of the synthetic TGL process.
func Prob(x []float64) float64 {
	in1 := x[0] < 0.3 && x[1] > 0.55 && x[2] < 0.6
	in2 := x[0] < 0.2 && x[1] > 0.5
	if in1 || in2 {
		return 0.75
	}
	return 0.02
}

// Relevant returns the ground-truth relevance mask: inputs 0-2 matter.
func Relevant() []bool {
	r := make([]bool, M)
	r[0], r[1], r[2] = true, true, true
	return r
}

// Dataset generates the 882-example dataset with the given seed. The
// paper's experiments use seed 1; other seeds give fresh draws from the
// same process (useful for consistency estimates).
func Dataset(seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := sample.LatinHypercube{}.Sample(N, M, rng)
	y := make([]float64, N)
	for i, x := range pts {
		if rng.Float64() < Prob(x) {
			y[i] = 1
		}
	}
	return &dataset.Dataset{X: pts, Y: y}
}
