package tgl

import "testing"

func TestDatasetShape(t *testing.T) {
	d := Dataset(1)
	if d.N() != N || d.M() != M {
		t.Fatalf("shape %dx%d, want %dx%d", d.N(), d.M(), N, M)
	}
}

func TestDeterminismAndVariation(t *testing.T) {
	a := Dataset(1)
	b := Dataset(1)
	c := Dataset(2)
	sameAsA := true
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed must give identical datasets")
		}
		if a.Y[i] != c.Y[i] || a.X[i][0] != c.X[i][0] {
			sameAsA = false
		}
	}
	if sameAsA {
		t.Error("different seeds must give different datasets")
	}
}

func TestShareNearPaper(t *testing.T) {
	share := Dataset(1).PositiveShare()
	// Paper: 10.1%.
	if share < 0.05 || share > 0.18 {
		t.Errorf("TGL share = %.3f, want in [0.05, 0.18] (paper 0.101)", share)
	}
	t.Logf("TGL share: %.3f (paper 0.101)", share)
}

func TestRelevantMask(t *testing.T) {
	r := Relevant()
	if len(r) != M {
		t.Fatalf("mask length %d", len(r))
	}
	for j := 0; j < 3; j++ {
		if !r[j] {
			t.Errorf("input %d should be relevant", j)
		}
	}
	for j := 3; j < M; j++ {
		if r[j] {
			t.Errorf("input %d should be irrelevant", j)
		}
	}
}

func TestProbIsProbability(t *testing.T) {
	d := Dataset(3)
	for _, x := range d.X[:100] {
		p := Prob(x)
		if p < 0 || p > 1 {
			t.Fatalf("Prob = %g", p)
		}
	}
}
