package cv

import (
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/sample"
)

func TestMGrid(t *testing.T) {
	cases := []struct {
		m    int
		want []int
	}{
		{20, []int{20, 16, 12, 8, 4}}, // ⌈20/6⌉ = 4
		{5, []int{5, 4, 3, 2, 1}},     // ⌈5/6⌉ = 1
		{12, []int{12, 10, 8, 6, 4, 2}},
		{3, []int{3, 2, 1}},
	}
	for _, c := range cases {
		got := MGrid(c.m)
		if len(got) != len(c.want) {
			t.Errorf("MGrid(%d) = %v, want %v", c.m, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("MGrid(%d) = %v, want %v", c.m, got, c.want)
				break
			}
		}
	}
}

func TestSelectAlphaReturnsGridValue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := funcs.Generate(funcs.F2, 150, sample.LatinHypercube{}, rng)
	alpha, err := SelectAlpha(d, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range AlphaGrid {
		if a == alpha {
			found = true
		}
	}
	if !found {
		t.Errorf("alpha %g not in grid", alpha)
	}
}

func TestSelectAlphaTinyData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := funcs.Generate(funcs.Hart3, 3, sample.LatinHypercube{}, rng)
	alpha, err := SelectAlpha(d, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range AlphaGrid {
		if a == alpha {
			found = true
		}
	}
	if !found {
		t.Errorf("tiny-data alpha %g not in grid", alpha)
	}
}

func TestSelectMBumping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := funcs.Generate(funcs.F2, 120, sample.LatinHypercube{}, rng)
	m, err := SelectMBumping(d, 0.05, 20, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	grid := MGrid(d.M())
	found := false
	for _, g := range grid {
		if g == m {
			found = true
		}
	}
	if !found {
		t.Errorf("m=%d not in grid %v", m, grid)
	}
}

func TestSelectMBI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := funcs.Generate(funcs.F2, 120, sample.LatinHypercube{}, rng)
	m, err := SelectMBI(d, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m < 1 || m > d.M() {
		t.Errorf("m=%d out of range", m)
	}
}
