// Package cv implements the hyperparameter optimization of Section 8.4 of
// the paper: 5-fold cross-validated selection of PRIM's peeling fraction
// α from the grid {0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2} and of the
// input-subset size m from {M − k⌈M/6⌉} for PRIM-with-bumping and BI.
package cv

import (
	"fmt"
	"math/rand"

	"github.com/reds-go/reds/internal/bi"
	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/metrics"
	"github.com/reds-go/reds/internal/prim"
)

// AlphaGrid is the paper's candidate set for the peeling fraction.
var AlphaGrid = []float64{0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2}

// MGrid returns the paper's candidate set for the number of restricted
// inputs: {M - k⌈M/6⌉ : k = 0, 1, ... , k⌈M/6⌉ < M}.
func MGrid(m int) []int {
	step := (m + 5) / 6 // ⌈M/6⌉
	var grid []int
	for k := 0; ; k++ {
		v := m - k*step
		if v <= 0 {
			break
		}
		grid = append(grid, v)
	}
	return grid
}

// Folds is the number of cross-validation folds used throughout (5 in
// the paper).
const Folds = 5

// SelectAlpha chooses the peeling fraction maximizing the mean held-out
// PR AUC of a plain PRIM peel, the "Pc" procedure.
func SelectAlpha(d *dataset.Dataset, minPoints int, rng *rand.Rand) (float64, error) {
	folds, err := dataset.KFold(d, folds(d), rng)
	if err != nil {
		return AlphaGrid[1], nil // too little data: default α = 0.05
	}
	bestAlpha, bestScore := AlphaGrid[0], -1.0
	for _, alpha := range AlphaGrid {
		score := 0.0
		for _, f := range folds {
			p := &prim.Peeler{Alpha: alpha, MinPoints: minPoints}
			res, err := p.Discover(f.Train, f.Train, rng)
			if err != nil {
				return 0, fmt.Errorf("cv: alpha %g: %w", alpha, err)
			}
			score += metrics.ResultPRAUC(res, f.Test)
		}
		score /= float64(len(folds))
		if score > bestScore {
			bestScore, bestAlpha = score, alpha
		}
	}
	return bestAlpha, nil
}

// SelectMBumping chooses the input-subset size for PRIM with bumping
// ("PBc"): α is selected first with plain PRIM (per Section 8.4.1), then
// m maximizes the held-out PR AUC of the bumping ensemble with a reduced
// repetition count to keep the search affordable.
func SelectMBumping(d *dataset.Dataset, alpha float64, minPoints, q int, rng *rand.Rand) (int, error) {
	grid := MGrid(d.M())
	if len(grid) == 1 {
		return grid[0], nil
	}
	folds, err := dataset.KFold(d, folds(d), rng)
	if err != nil {
		return grid[0], nil
	}
	if q > 10 {
		q = 10 // cheaper inner search; the final fit uses the full Q
	}
	bestM, bestScore := grid[0], -1.0
	for _, m := range grid {
		score := 0.0
		for _, f := range folds {
			b := &prim.Bumping{Alpha: alpha, MinPoints: minPoints, Q: q, SubsetSize: m}
			res, err := b.Discover(f.Train, f.Train, rng)
			if err != nil {
				return 0, fmt.Errorf("cv: bumping m=%d: %w", m, err)
			}
			score += metrics.ResultPRAUC(res, f.Test)
		}
		score /= float64(len(folds))
		if score > bestScore {
			bestScore, bestM = score, m
		}
	}
	return bestM, nil
}

// SelectMBI chooses the depth limit m for BI ("BIc") by held-out WRAcc.
func SelectMBI(d *dataset.Dataset, beamSize int, rng *rand.Rand) (int, error) {
	grid := MGrid(d.M())
	if len(grid) == 1 {
		return grid[0], nil
	}
	folds, err := dataset.KFold(d, folds(d), rng)
	if err != nil {
		return grid[0], nil
	}
	bestM, bestScore := grid[0], -1.0
	for _, m := range grid {
		score := 0.0
		for _, f := range folds {
			a := &bi.BI{BeamSize: beamSize, Depth: m}
			res, err := a.Discover(f.Train, f.Train, rng)
			if err != nil {
				return 0, fmt.Errorf("cv: bi m=%d: %w", m, err)
			}
			score += metrics.WRAcc(res.Final(), f.Test)
		}
		score /= float64(len(folds))
		if score > bestScore {
			bestScore, bestM = score, m
		}
	}
	return bestM, nil
}

// folds returns the fold count, degrading gracefully for tiny datasets.
func folds(d *dataset.Dataset) int {
	k := Folds
	if d.N() < 2*k {
		k = 2
	}
	return k
}
