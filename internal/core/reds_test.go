package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/gbt"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/metrics"
	"github.com/reds-go/reds/internal/prim"
	"github.com/reds-go/reds/internal/rf"
	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/sd"
)

func TestREDSValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := funcs.Generate(funcs.Hart3, 50, sample.LatinHypercube{}, rng)
	if _, err := (&REDS{}).Discover(d, d, rng); err == nil {
		t.Error("missing components must error")
	}
	r := &REDS{Metamodel: &rf.Trainer{NTrees: 5}, SD: &prim.Peeler{}}
	if _, err := r.Discover(dataset.MustNew(nil, nil), nil, rng); err == nil {
		t.Error("empty training data must error")
	}
	if _, err := r.Discover(d, d, nil); err == nil {
		t.Error("nil RNG must error")
	}
}

func TestREDSEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := funcs.F2 // noisy band over 2 of 5 inputs
	train := funcs.Generate(f, 200, sample.LatinHypercube{}, rng)
	r := &REDS{
		Metamodel: &rf.Trainer{NTrees: 50},
		L:         3000,
		SD:        &prim.Peeler{},
	}
	res, err := r.Discover(train, train, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) < 2 {
		t.Fatal("trajectory too short")
	}
	// Quality on independent test data should clearly beat the base rate.
	test := funcs.Generate(f, 4000, sample.Uniform{}, rng)
	p, rec := metrics.PrecisionRecall(res.Final(), test)
	if p < 2*test.PositiveShare() {
		t.Errorf("REDS precision %.3f vs base rate %.3f", p, test.PositiveShare())
	}
	if rec <= 0 {
		t.Error("zero recall")
	}
}

func TestREDSImprovesOverPlainPRIMOnSmallData(t *testing.T) {
	// The paper's central claim at miniature scale: with few simulations
	// and a high-dimensional function, REDS should (usually) find a
	// better scenario than plain PRIM. Averaged over a few repetitions
	// to keep flakiness negligible.
	f := funcs.Morris
	reps := 3
	var aucP, aucR float64
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(int64(100 + rep)))
		train := funcs.Generate(f, 200, sample.LatinHypercube{}, rng)
		test := funcs.Generate(f, 4000, sample.Uniform{}, rng)

		plain, err := (&prim.Peeler{}).Discover(train, train, rng)
		if err != nil {
			t.Fatal(err)
		}
		reds := &REDS{
			Metamodel: &gbt.Trainer{Rounds: 60, MaxDepth: 4},
			L:         5000,
			SD:        &prim.Peeler{},
		}
		redsRes, err := reds.Discover(train, train, rng)
		if err != nil {
			t.Fatal(err)
		}
		aucP += metrics.ResultPRAUC(plain, test)
		aucR += metrics.ResultPRAUC(redsRes, test)
	}
	aucP /= float64(reps)
	aucR /= float64(reps)
	t.Logf("PR AUC: plain PRIM %.4f, REDS %.4f", aucP, aucR)
	if aucR < aucP {
		t.Errorf("REDS (%.4f) should beat plain PRIM (%.4f) on morris at N=200", aucR, aucP)
	}
}

func TestREDSProbLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := funcs.F1
	train := funcs.Generate(f, 150, sample.LatinHypercube{}, rng)
	r := &REDS{
		Metamodel:  &rf.Trainer{NTrees: 40},
		L:          2000,
		SD:         &prim.Peeler{},
		ProbLabels: true,
	}
	res, err := r.Discover(train, train, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final() == nil {
		t.Fatal("no final box")
	}
	// With probability labels the inner dataset's labels are fractional;
	// the pipeline must still produce a sane scenario.
	test := funcs.Generate(f, 3000, sample.Uniform{}, rng)
	p, _ := metrics.PrecisionRecall(res.Final(), test)
	if p < test.PositiveShare() {
		t.Errorf("p-variant precision %.3f below base rate", p)
	}
}

func TestREDSSemiSupervised(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := funcs.F2
	smp := sample.LogitNormal{Sigma: 1}
	// Labeled data and unlabeled pool from the same non-uniform p(x).
	train := funcs.Generate(f, 150, smp, rng)
	pool := smp.Sample(3000, f.Dim(), rng)
	r := &REDS{Metamodel: &rf.Trainer{NTrees: 40}, SD: &prim.Peeler{}}
	res, err := r.DiscoverSemiSupervised(train, pool, rng)
	if err != nil {
		t.Fatal(err)
	}
	test := funcs.Generate(f, 3000, smp, rng)
	p, _ := metrics.PrecisionRecall(res.Final(), test)
	if p < test.PositiveShare() {
		t.Errorf("semi-supervised precision %.3f below base rate %.3f", p, test.PositiveShare())
	}
	if _, err := r.DiscoverSemiSupervised(train, nil, rng); err == nil {
		t.Error("empty pool must error")
	}
}

func TestREDSIsAnSDDiscoverer(t *testing.T) {
	var _ sd.Discoverer = &REDS{}
}

func TestREDSDefaultL(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := funcs.Generate(funcs.Hart3, 100, sample.LatinHypercube{}, rng)
	// Custom SD that records the dataset size it receives.
	rec := &recordingSD{}
	r := &REDS{Metamodel: &rf.Trainer{NTrees: 5}, SD: rec, L: 1234}
	if _, err := r.Discover(train, train, rng); err != nil {
		t.Fatal(err)
	}
	if rec.n != 1234 {
		t.Errorf("SD received %d points, want L=1234", rec.n)
	}
}

type recordingSD struct{ n int }

func (r *recordingSD) Discover(train, val *dataset.Dataset, rng *rand.Rand) (*sd.Result, error) {
	r.n = train.N()
	return (&prim.Peeler{}).Discover(train, val, rng)
}

// TestSemiSupervisedRejectsRaggedPool asserts pool validation errors
// surface instead of panicking deep in the labeling stage (the pool is
// labeled through the batch kernels, which index rows by the training
// width).
func TestSemiSupervisedRejectsRaggedPool(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	train := funcs.Generate(funcs.Hart3, 60, sample.LatinHypercube{}, rng)
	r := &REDS{Metamodel: &rf.Trainer{NTrees: 5}, SD: &prim.Peeler{}}
	pool := sample.LatinHypercube{}.Sample(50, train.M(), rng)
	pool[20] = pool[20][:1]
	if _, err := r.DiscoverSemiSupervised(train, pool, rng); err == nil {
		t.Fatal("ragged pool must error, not panic or mislabel")
	}
}

// TestPseudoLabelDeterministicAndShared asserts the standalone stage
// is a pure function of (model, sampler, l, dim, seed, probLabels) —
// the property that licenses caching it — and that prob vs hard labels
// differ only in Y.
func TestPseudoLabelDeterministicAndShared(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	train := funcs.Generate(funcs.Hart3, 80, sample.LatinHypercube{}, rng)
	model, err := (&rf.Trainer{NTrees: 20}).Train(train, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PseudoLabel(context.Background(), model, sample.LatinHypercube{}, 500, train.M(), 99, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PseudoLabel(context.Background(), model, sample.LatinHypercube{}, 500, train.M(), 99, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("same seed produced different pseudo-labeled datasets")
	}
	p, err := PseudoLabel(context.Background(), model, sample.LatinHypercube{}, 500, train.M(), 99, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Y {
		if p.X[i][0] != a.X[i][0] {
			t.Fatal("prob variant sampled different points")
		}
		if p.Y[i] != 0 && p.Y[i] != 1 {
			return // saw a genuine probability: good
		}
	}
	t.Log("all probability labels were 0/1 (acceptable for a crisp model)")
}

// TestLabelStageSeam asserts a custom LabelStage replaces the sample
// and label stages: the SD stage mines exactly the dataset the seam
// returned.
func TestLabelStageSeam(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	train := funcs.Generate(funcs.F2, 150, sample.LatinHypercube{}, rng)
	model, err := (&rf.Trainer{NTrees: 20}).Train(train, rand.New(rand.NewSource(34)))
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := PseudoLabel(context.Background(), model, sample.LatinHypercube{}, 2000, train.M(), 35, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	r := &REDS{
		Metamodel: &rf.Trainer{NTrees: 20},
		SD:        &prim.Peeler{},
		L:         7, // would be an absurd pseudo-sample; the seam must win
		LabelStage: func(ctx context.Context, m metamodel.Model, dim int) (*dataset.Dataset, error) {
			calls++
			if dim != train.M() {
				t.Fatalf("seam got dim %d, want %d", dim, train.M())
			}
			return fixed, nil
		},
	}
	res, err := r.Discover(train, train, rand.New(rand.NewSource(36)))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("LabelStage called %d times, want 1", calls)
	}
	if res.Final() == nil {
		t.Fatal("no final box")
	}
}
