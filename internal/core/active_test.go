package core

import (
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/metrics"
	"github.com/reds-go/reds/internal/prim"
	"github.com/reds-go/reds/internal/rf"
	"github.com/reds-go/reds/internal/sample"
)

func TestActiveREDSValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := &ActiveREDS{}
	if _, _, err := a.DiscoverBudget(funcs.Hart3, 100, rng); err == nil {
		t.Error("missing components must error")
	}
	a = &ActiveREDS{REDS: REDS{Metamodel: &rf.Trainer{NTrees: 5}, SD: &prim.Peeler{}}}
	if _, _, err := a.DiscoverBudget(funcs.Hart3, 5, rng); err == nil {
		t.Error("tiny budget must error")
	}
}

func TestActiveREDSSpendsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := &ActiveREDS{
		REDS:     REDS{Metamodel: &rf.Trainer{NTrees: 20}, L: 1500, SD: &prim.Peeler{}},
		Rounds:   3,
		PoolSize: 500,
	}
	res, data, err := a.DiscoverBudget(funcs.F2, 150, rng)
	if err != nil {
		t.Fatal(err)
	}
	if data.N() != 150 {
		t.Errorf("labeled %d points, want exactly the budget 150", data.N())
	}
	if res.Final() == nil {
		t.Fatal("no scenario")
	}
}

func TestActiveREDSConcentratesNearBoundary(t *testing.T) {
	// With a sharp boundary at a0+a1 = 1 (function f1), actively chosen
	// points should cluster near it much more than uniform ones.
	rng := rand.New(rand.NewSource(3))
	a := &ActiveREDS{
		REDS:        REDS{Metamodel: &rf.Trainer{NTrees: 30}, L: 1500, SD: &prim.Peeler{}},
		InitialFrac: 0.4,
		Rounds:      3,
		PoolSize:    1500,
	}
	_, data, err := a.DiscoverBudget(funcs.F1, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	nearBoundary := func(pts [][]float64) float64 {
		cnt := 0
		for _, x := range pts {
			d := x[0] + x[1] - 1
			if d < 0 {
				d = -d
			}
			if d < 0.15 {
				cnt++
			}
		}
		return float64(cnt) / float64(len(pts))
	}
	activeShare := nearBoundary(data.X[80:]) // the actively chosen tail
	baseShare := nearBoundary(data.X[:80])   // the space-filling head
	t.Logf("near-boundary share: initial %.2f, active %.2f", baseShare, activeShare)
	if activeShare < baseShare {
		t.Errorf("active points (%.2f) not concentrated vs initial design (%.2f)",
			activeShare, baseShare)
	}
}

func TestActiveREDSBeatsOrMatchesPlainOnBudget(t *testing.T) {
	// Not a strict dominance claim — just sanity that the AL loop does
	// not wreck quality at equal budget (averaged over a few seeds).
	var aucPlain, aucActive float64
	reps := 3
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(int64(10 + rep)))
		f := funcs.F1
		test := funcs.Generate(f, 3000, sample.Uniform{}, rng)

		plainTrain := funcs.Generate(f, 200, sample.LatinHypercube{}, rng)
		plain := &REDS{Metamodel: &rf.Trainer{NTrees: 30}, L: 2000, SD: &prim.Peeler{}}
		pres, err := plain.Discover(plainTrain, plainTrain, rng)
		if err != nil {
			t.Fatal(err)
		}
		aucPlain += metrics.ResultPRAUC(pres, test)

		active := &ActiveREDS{
			REDS:   REDS{Metamodel: &rf.Trainer{NTrees: 30}, L: 2000, SD: &prim.Peeler{}},
			Rounds: 3, PoolSize: 1000,
		}
		ares, _, err := active.DiscoverBudget(f, 200, rng)
		if err != nil {
			t.Fatal(err)
		}
		aucActive += metrics.ResultPRAUC(ares, test)
	}
	aucPlain /= float64(reps)
	aucActive /= float64(reps)
	t.Logf("PR AUC on f1: plain REDS %.3f, active REDS %.3f", aucPlain, aucActive)
	if aucActive < 0.8*aucPlain {
		t.Errorf("active REDS (%.3f) collapsed vs plain (%.3f)", aucActive, aucPlain)
	}
}
