package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/sd"
)

// ActiveREDS implements the active-learning extension sketched in
// Section 10 of the paper: instead of spending the whole simulation
// budget on an up-front space-filling design, it alternates metamodel
// fitting with uncertainty sampling — each round simulates the candidate
// points whose predicted probability is closest to the decision
// boundary, where one more label is most informative. The final
// metamodel then drives the ordinary REDS pipeline.
type ActiveREDS struct {
	// REDS configures the metamodel, sampler, L and SD exactly as for
	// the plain procedure.
	REDS
	// InitialFrac is the share of the budget spent on the initial
	// space-filling design (default 0.5).
	InitialFrac float64
	// Rounds is the number of active-learning rounds the remaining
	// budget is split across (default 4).
	Rounds int
	// PoolSize is the number of candidate points scored per round
	// (default 2000).
	PoolSize int
}

// DiscoverBudget runs the active pipeline against the simulation model f
// with a total budget of simulation runs, then returns the discovered
// scenario and the labeled dataset it used. The returned dataset allows
// callers to compare against plain REDS on the same budget.
func (a *ActiveREDS) DiscoverBudget(f funcs.Function, budget int, rng *rand.Rand) (*sd.Result, *dataset.Dataset, error) {
	if a.Metamodel == nil || a.SD == nil {
		return nil, nil, fmt.Errorf("core: ActiveREDS needs both a metamodel and an SD algorithm")
	}
	if budget < 10 {
		return nil, nil, fmt.Errorf("core: budget %d too small", budget)
	}
	frac := a.InitialFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	rounds := a.Rounds
	if rounds == 0 {
		rounds = 4
	}
	poolSize := a.PoolSize
	if poolSize == 0 {
		poolSize = 2000
	}
	smp := a.Sampler
	if smp == nil {
		smp = sample.LatinHypercube{}
	}

	nInit := int(frac * float64(budget))
	if nInit < 2 {
		nInit = 2
	}
	data := funcs.Generate(f, nInit, smp, rng)
	remaining := budget - nInit
	perRound := remaining / rounds

	for round := 0; round < rounds && remaining > 0; round++ {
		take := perRound
		if round == rounds-1 {
			take = remaining // spend any leftover in the last round
		}
		if take < 1 {
			break
		}
		model, err := a.Metamodel.Train(data, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("core: active round %d: %w", round, err)
		}
		pool := smp.Sample(poolSize, f.Dim(), rng)
		// Uncertainty sampling: |P(y=1|x) - 0.5| smallest first.
		type cand struct {
			x []float64
			u float64
		}
		cands := make([]cand, len(pool))
		for i, x := range pool {
			cands[i] = cand{x, math.Abs(model.PredictProb(x) - 0.5)}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].u < cands[j].u })
		if take > len(cands) {
			take = len(cands)
		}
		// Grow into a fresh Dataset rather than appending in place:
		// trained metamodels may have materialized the old dataset's
		// cached columnar views, which must not outlive its contents.
		x, yy := data.X, data.Y
		for _, c := range cands[:take] {
			x = append(x, c.x)
			yy = append(yy, funcs.Label(f, c.x, rng))
		}
		data = &dataset.Dataset{X: x, Y: yy, Discrete: data.Discrete}
		remaining -= take
	}

	res, err := a.REDS.Discover(data, data, rng)
	return res, data, err
}
