// Package core implements REDS — Rule Extraction for Discovering
// Scenarios — the paper's contribution (Algorithm 4). REDS inserts an
// intermediate metamodel into the conventional scenario-discovery
// pipeline: train the metamodel on the few available simulations, sample
// L fresh points from the same input distribution, pseudo-label them with
// the metamodel, and hand the enlarged dataset to a conventional
// subgroup-discovery algorithm.
package core

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/sd"
)

// Stage identifies one step of the REDS pipeline for progress reporting.
type Stage string

// The pipeline stages, in execution order.
const (
	StageTrain    Stage = "train"    // fit the metamodel (Algorithm 4, line 2)
	StageSample   Stage = "sample"   // draw the L fresh points (line 3)
	StageLabel    Stage = "label"    // pseudo-label them (lines 4-6)
	StageDiscover Stage = "discover" // downstream subgroup discovery (line 7)
)

// Hooks let a caller — in practice the concurrent engine — observe a
// running discovery. All callbacks are optional and may be invoked from
// the goroutine executing the pipeline; OnLabelProgress may additionally
// be invoked concurrently from several labeling workers.
type Hooks struct {
	// OnStage fires when a pipeline stage begins.
	OnStage func(s Stage)
	// OnLabelProgress reports pseudo-labeling progress: done of total
	// points labeled so far.
	OnLabelProgress func(done, total int)
	// LabelWorkers caps the pseudo-labeling worker pool (default
	// GOMAXPROCS).
	LabelWorkers int
}

func (h *Hooks) stage(s Stage) {
	if h != nil && h.OnStage != nil {
		h.OnStage(s)
	}
}

// REDS composes a metamodel, a sampler and a subgroup-discovery
// algorithm. It implements sd.Discoverer, so it can be used anywhere a
// conventional algorithm is — including inside its own covering loop.
type REDS struct {
	// Metamodel is the intermediate model AM (Algorithm 4, line 2).
	Metamodel metamodel.Trainer
	// Sampler draws the L new points from p(x) (line 3). Defaults to
	// Latin hypercube sampling over the unit cube.
	Sampler sample.Sampler
	// L is the number of new points (default 10000).
	L int
	// SD is the downstream subgroup-discovery algorithm (line 7).
	SD sd.Discoverer
	// ProbLabels selects the modified REDS of Section 6.1: pseudo-labels
	// are the raw metamodel probabilities f_am(x) in [0,1] instead of
	// thresholded {0,1} values (the "p" suffix of Section 8.2).
	ProbLabels bool
	// ValidateOnPseudo makes the downstream algorithm validate (stop
	// rule and final-box selection) on the pseudo-labeled dataset
	// instead of the original simulated examples. Off by default: the
	// paper's D_val = D convention uses real data, which keeps the
	// selected box comparable to conventional PRIM's. Exposed for the
	// ablation study (redsbench -exp ablation).
	ValidateOnPseudo bool
	// LabelStage, when non-nil, replaces the sample and label stages
	// (Algorithm 4, lines 3-6): it must return the pseudo-labeled
	// dataset mined downstream, with dim-wide rows and the Discrete
	// mask already set. The engine uses this seam to share one
	// pseudo-labeled dataset across the variants of a job and to serve
	// it from its byte-weighted cache; the returned dataset may
	// therefore be shared and must be treated as immutable. When set,
	// the pipeline RNG is not consumed by sampling — the stage owns its
	// own seeding.
	LabelStage func(ctx context.Context, model metamodel.Model, dim int) (*dataset.Dataset, error)
	// Prelabeled, when non-nil, is a pseudo-labeled dataset Dnew computed
	// by an earlier execution: the train, sample and label stages (and
	// their hooks) are skipped entirely and the pipeline goes straight to
	// subgroup discovery on it. The engine uses this seam to resume a
	// failed-over job from a checkpoint on a cold worker without
	// retraining the metamodel — the discover stage only needs Dnew and
	// the real validation data. The dataset may be shared across variants
	// and must be treated as immutable. Metamodel and LabelStage are
	// ignored when set.
	Prelabeled *dataset.Dataset
	// Hooks observe the pipeline (stage transitions, labeling
	// progress). Nil means no observation.
	Hooks *Hooks
}

// checkTrain validates the shape of a training set before the pipeline
// touches it: without it, a dataset with rows but zero input columns (or
// ragged rows) sails through training and makes the sampler emit
// zero-width points, which fails far downstream with an opaque message.
func checkTrain(train *dataset.Dataset) error {
	if train.N() == 0 {
		return fmt.Errorf("core: empty training data")
	}
	m := train.M()
	if m == 0 {
		return fmt.Errorf("core: training data has %d rows but zero input columns", train.N())
	}
	for i, row := range train.X {
		if len(row) != m {
			return fmt.Errorf("core: malformed training data: row %d has %d columns, want %d", i, len(row), m)
		}
	}
	if len(train.Y) != train.N() {
		return fmt.Errorf("core: malformed training data: %d rows but %d labels", train.N(), len(train.Y))
	}
	return nil
}

// Discover implements sd.Discoverer: it runs Algorithm 4 on the train
// data. The downstream algorithm mines the pseudo-labeled dataset Dnew,
// but its validation set — used for the support-floor stop rule and the
// final-box selection of Algorithm 1 — is the provided val set of
// original simulated examples (the paper's D_val = D convention, with D
// the real data). Validating on real labels keeps REDS's selected box
// directly comparable to conventional PRIM's and prevents the peel from
// drilling into artifacts of the metamodel. When val is nil, train
// doubles as the validation set.
func (r *REDS) Discover(train, val *dataset.Dataset, rng *rand.Rand) (*sd.Result, error) {
	return r.DiscoverContext(context.Background(), train, val, rng)
}

// DiscoverContext is Discover with cooperative cancellation: the pipeline
// checks ctx between stages and while pseudo-labeling, and returns
// ctx.Err() once it fires. Progress is reported through r.Hooks.
func (r *REDS) DiscoverContext(ctx context.Context, train, val *dataset.Dataset, rng *rand.Rand) (*sd.Result, error) {
	if r.SD == nil || (r.Metamodel == nil && r.Prelabeled == nil) {
		return nil, fmt.Errorf("core: REDS needs both a metamodel and an SD algorithm")
	}
	if err := checkTrain(train); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("core: REDS requires an RNG")
	}
	l := r.L
	if l == 0 {
		l = 10000
	}
	smp := r.Sampler
	if smp == nil {
		smp = sample.LatinHypercube{}
	}

	var dnew *dataset.Dataset
	var err error
	if r.Prelabeled != nil {
		dnew = r.Prelabeled
	} else {
		dnew, err = r.trainAndLabel(ctx, train, rng, l, smp)
		if err != nil {
			return nil, err
		}
	}
	switch {
	case r.ValidateOnPseudo:
		val = dnew
	case val == nil:
		val = train
	}
	r.Hooks.stage(StageDiscover)
	res, err := r.SD.Discover(dnew, val, rng)
	if err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// trainAndLabel runs the train, sample and label stages (Algorithm 4,
// lines 2-6) and returns the pseudo-labeled dataset Dnew.
func (r *REDS) trainAndLabel(ctx context.Context, train *dataset.Dataset, rng *rand.Rand, l int, smp sample.Sampler) (*dataset.Dataset, error) {
	r.Hooks.stage(StageTrain)
	model, err := r.Metamodel.Train(train, rng)
	if err != nil {
		return nil, fmt.Errorf("core: training metamodel %s: %w", r.Metamodel.Name(), err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var dnew *dataset.Dataset
	if r.LabelStage != nil {
		// The stage owns both sampling and labeling; it reports its own
		// labeling progress through whatever hooks its creator wired in.
		r.Hooks.stage(StageSample)
		r.Hooks.stage(StageLabel)
		dnew, err = r.LabelStage(ctx, model, train.M())
		if err != nil {
			return nil, err
		}
	} else {
		r.Hooks.stage(StageSample)
		pts := smp.Sample(l, train.M(), rng)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.Hooks.stage(StageLabel)
		dnew, err = r.labelPointsCtx(ctx, model, pts)
		if err != nil {
			return nil, err
		}
		dnew.Discrete = train.Discrete
	}
	return dnew, nil
}

// DiscoverSemiSupervised runs REDS in the semi-supervised setting of
// Section 6.1/9.4: instead of sampling fresh points, the provided
// unlabeled pool (drawn from the same p(x) as the training data) is
// pseudo-labeled and mined.
func (r *REDS) DiscoverSemiSupervised(train *dataset.Dataset, pool [][]float64, rng *rand.Rand) (*sd.Result, error) {
	if r.Metamodel == nil || r.SD == nil {
		return nil, fmt.Errorf("core: REDS needs both a metamodel and an SD algorithm")
	}
	if err := checkTrain(train); err != nil {
		return nil, err
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("core: empty unlabeled pool")
	}
	for i, row := range pool {
		if len(row) != train.M() {
			return nil, fmt.Errorf("core: malformed pool: row %d has %d columns, want %d", i, len(row), train.M())
		}
	}
	model, err := r.Metamodel.Train(train, rng)
	if err != nil {
		return nil, fmt.Errorf("core: training metamodel %s: %w", r.Metamodel.Name(), err)
	}
	dnew, err := r.labelPointsCtx(context.Background(), model, pool)
	if err != nil {
		return nil, fmt.Errorf("core: pseudo-labeling pool: %w", err)
	}
	dnew.Discrete = train.Discrete
	return r.SD.Discover(dnew, train, rng)
}

// labelPointsCtx applies lines 4-6 of Algorithm 4 with cancellation
// and progress: the points are sharded across a worker pool, ctx is
// checked per chunk, and models with a metamodel.BatchModel fast path
// are evaluated through it.
func (r *REDS) labelPointsCtx(ctx context.Context, model metamodel.Model, pts [][]float64) (*dataset.Dataset, error) {
	opts := metamodel.BatchOptions{}
	if r.Hooks != nil {
		opts.Progress = r.Hooks.OnLabelProgress
		opts.Workers = r.Hooks.LabelWorkers
	}
	var y []float64
	var err error
	if r.ProbLabels {
		y, err = metamodel.PredictProbBatchCtx(ctx, model, pts, opts)
	} else {
		y, err = metamodel.PredictLabelBatchCtx(ctx, model, pts, opts)
	}
	if err != nil {
		return nil, err
	}
	return &dataset.Dataset{X: pts, Y: y}, nil
}

// PseudoLabel runs the sample and label stages (Algorithm 4, lines
// 3-6) as a standalone step: draw l points of width dim from smp,
// seeded independently of any pipeline RNG, and label them with the
// trained model (probabilities when probLabels, hard labels
// otherwise). Factoring the stage out of the pipeline is what makes
// its result shareable — the engine calls it once per metamodel
// family and serves every variant (and cache-hitting repeat job) the
// same dataset. Labeling progress and the worker budget come from
// hooks; ctx cancels between chunks.
func PseudoLabel(ctx context.Context, model metamodel.Model, smp sample.Sampler, l, dim int, seed int64, probLabels bool, hooks *Hooks) (*dataset.Dataset, error) {
	if smp == nil {
		smp = sample.LatinHypercube{}
	}
	pts := smp.Sample(l, dim, rand.New(rand.NewSource(seed)))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &REDS{ProbLabels: probLabels, Hooks: hooks}
	return r.labelPointsCtx(ctx, model, pts)
}
