// Package core implements REDS — Rule Extraction for Discovering
// Scenarios — the paper's contribution (Algorithm 4). REDS inserts an
// intermediate metamodel into the conventional scenario-discovery
// pipeline: train the metamodel on the few available simulations, sample
// L fresh points from the same input distribution, pseudo-label them with
// the metamodel, and hand the enlarged dataset to a conventional
// subgroup-discovery algorithm.
package core

import (
	"fmt"
	"math/rand"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/sd"
)

// REDS composes a metamodel, a sampler and a subgroup-discovery
// algorithm. It implements sd.Discoverer, so it can be used anywhere a
// conventional algorithm is — including inside its own covering loop.
type REDS struct {
	// Metamodel is the intermediate model AM (Algorithm 4, line 2).
	Metamodel metamodel.Trainer
	// Sampler draws the L new points from p(x) (line 3). Defaults to
	// Latin hypercube sampling over the unit cube.
	Sampler sample.Sampler
	// L is the number of new points (default 10000).
	L int
	// SD is the downstream subgroup-discovery algorithm (line 7).
	SD sd.Discoverer
	// ProbLabels selects the modified REDS of Section 6.1: pseudo-labels
	// are the raw metamodel probabilities f_am(x) in [0,1] instead of
	// thresholded {0,1} values (the "p" suffix of Section 8.2).
	ProbLabels bool
	// ValidateOnPseudo makes the downstream algorithm validate (stop
	// rule and final-box selection) on the pseudo-labeled dataset
	// instead of the original simulated examples. Off by default: the
	// paper's D_val = D convention uses real data, which keeps the
	// selected box comparable to conventional PRIM's. Exposed for the
	// ablation study (redsbench -exp ablation).
	ValidateOnPseudo bool
}

// Discover implements sd.Discoverer: it runs Algorithm 4 on the train
// data. The downstream algorithm mines the pseudo-labeled dataset Dnew,
// but its validation set — used for the support-floor stop rule and the
// final-box selection of Algorithm 1 — is the provided val set of
// original simulated examples (the paper's D_val = D convention, with D
// the real data). Validating on real labels keeps REDS's selected box
// directly comparable to conventional PRIM's and prevents the peel from
// drilling into artifacts of the metamodel. When val is nil, train
// doubles as the validation set.
func (r *REDS) Discover(train, val *dataset.Dataset, rng *rand.Rand) (*sd.Result, error) {
	if r.Metamodel == nil || r.SD == nil {
		return nil, fmt.Errorf("core: REDS needs both a metamodel and an SD algorithm")
	}
	if train.N() == 0 {
		return nil, fmt.Errorf("core: empty training data")
	}
	if rng == nil {
		return nil, fmt.Errorf("core: REDS requires an RNG")
	}
	l := r.L
	if l == 0 {
		l = 10000
	}
	smp := r.Sampler
	if smp == nil {
		smp = sample.LatinHypercube{}
	}

	model, err := r.Metamodel.Train(train, rng)
	if err != nil {
		return nil, fmt.Errorf("core: training metamodel %s: %w", r.Metamodel.Name(), err)
	}
	pts := smp.Sample(l, train.M(), rng)
	dnew := r.labelPoints(model, pts)
	dnew.Discrete = train.Discrete
	switch {
	case r.ValidateOnPseudo:
		val = dnew
	case val == nil:
		val = train
	}
	return r.SD.Discover(dnew, val, rng)
}

// DiscoverSemiSupervised runs REDS in the semi-supervised setting of
// Section 6.1/9.4: instead of sampling fresh points, the provided
// unlabeled pool (drawn from the same p(x) as the training data) is
// pseudo-labeled and mined.
func (r *REDS) DiscoverSemiSupervised(train *dataset.Dataset, pool [][]float64, rng *rand.Rand) (*sd.Result, error) {
	if r.Metamodel == nil || r.SD == nil {
		return nil, fmt.Errorf("core: REDS needs both a metamodel and an SD algorithm")
	}
	if train.N() == 0 || len(pool) == 0 {
		return nil, fmt.Errorf("core: empty training data or pool")
	}
	model, err := r.Metamodel.Train(train, rng)
	if err != nil {
		return nil, fmt.Errorf("core: training metamodel %s: %w", r.Metamodel.Name(), err)
	}
	dnew := r.labelPoints(model, pool)
	dnew.Discrete = train.Discrete
	return r.SD.Discover(dnew, train, rng)
}

// labelPoints applies lines 4-6 of Algorithm 4.
func (r *REDS) labelPoints(model metamodel.Model, pts [][]float64) *dataset.Dataset {
	var y []float64
	if r.ProbLabels {
		y = metamodel.PredictProbBatch(model, pts)
	} else {
		y = metamodel.PredictLabelBatch(model, pts)
	}
	return &dataset.Dataset{X: pts, Y: y}
}
