package core

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/prim"
	"github.com/reds-go/reds/internal/rf"
)

func validREDS() *REDS {
	return &REDS{Metamodel: &rf.Trainer{NTrees: 10}, L: 500, SD: &prim.Peeler{}}
}

func cornerData(n int, rng *rand.Rand) *dataset.Dataset {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		if x[i][0] < 0.4 {
			y[i] = 1
		}
	}
	return dataset.MustNew(x, y)
}

// TestDiscoverRejectsMalformedData covers the zero-width and ragged-row
// cases that previously failed deep inside the sampler or the SD
// algorithm with opaque errors.
func TestDiscoverRejectsMalformedData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		d    *dataset.Dataset
		want string
	}{
		{"zero-width rows", &dataset.Dataset{X: [][]float64{{}, {}}, Y: []float64{0, 1}}, "zero input columns"},
		{"ragged rows", &dataset.Dataset{X: [][]float64{{1, 2}, {3}}, Y: []float64{0, 1}}, "row 1 has 1 columns"},
		{"label mismatch", &dataset.Dataset{X: [][]float64{{1, 2}, {3, 4}}, Y: []float64{0}}, "labels"},
		{"empty", &dataset.Dataset{}, "empty training data"},
	}
	for _, tc := range cases {
		_, err := validREDS().Discover(tc.d, nil, rng)
		if err == nil {
			t.Errorf("%s: Discover accepted malformed data", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, err := validREDS().DiscoverSemiSupervised(tc.d, [][]float64{{0.5, 0.5}}, rng); err == nil {
			t.Errorf("%s: DiscoverSemiSupervised accepted malformed data", tc.name)
		}
	}
}

func TestDiscoverContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := validREDS().DiscoverContext(ctx, cornerData(100, rand.New(rand.NewSource(2))), nil, rand.New(rand.NewSource(3)))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDiscoverHooksReportStagesAndProgress(t *testing.T) {
	var mu sync.Mutex
	var stages []Stage
	labeled := 0
	r := validREDS()
	r.Hooks = &Hooks{
		OnStage: func(s Stage) {
			mu.Lock()
			stages = append(stages, s)
			mu.Unlock()
		},
		OnLabelProgress: func(done, total int) {
			mu.Lock()
			if done > labeled {
				labeled = done
			}
			mu.Unlock()
		},
	}
	res, err := r.DiscoverContext(context.Background(), cornerData(150, rand.New(rand.NewSource(4))), nil, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Final() == nil {
		t.Fatal("no final box")
	}
	want := []Stage{StageTrain, StageSample, StageLabel, StageDiscover}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stage %d = %s, want %s", i, stages[i], want[i])
		}
	}
	if labeled != 500 {
		t.Fatalf("labeled %d points, want 500 (L)", labeled)
	}
}
