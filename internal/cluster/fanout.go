package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// Fetched is one worker's response to a fan-out request: its decoded
// JSON body, or the error that prevented it.
type Fetched struct {
	Body json.RawMessage `json:"body,omitempty"`
	Err  string          `json:"error,omitempty"`
}

// FanOutJSON GETs path on every node concurrently and returns each
// node's JSON body (or error) keyed by node. It never fails as a whole
// — a dead worker shows up as its own error entry, which is exactly
// what an aggregated listing wants to display. The optional headers are
// sent on every request (the gateway passes its internal secret here so
// secret-guarded workers admit the fan-out).
func FanOutJSON(ctx context.Context, client *http.Client, nodes []string, path string, headers ...http.Header) map[string]Fetched {
	if client == nil {
		client = http.DefaultClient
	}
	var hdr http.Header
	if len(headers) > 0 {
		hdr = headers[0]
	}
	out := make(map[string]Fetched, len(nodes))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			f := fetchJSON(ctx, client, strings.TrimRight(node, "/")+path, hdr)
			mu.Lock()
			out[node] = f
			mu.Unlock()
		}(node)
	}
	wg.Wait()
	return out
}

func fetchJSON(ctx context.Context, client *http.Client, url string, hdr http.Header) Fetched {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Fetched{Err: err.Error()}
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := client.Do(req)
	if err != nil {
		return Fetched{Err: err.Error()}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return Fetched{Err: err.Error()}
	}
	if resp.StatusCode != http.StatusOK {
		return Fetched{Err: fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))}
	}
	if !json.Valid(raw) {
		return Fetched{Err: "invalid JSON response"}
	}
	return Fetched{Body: raw}
}
