package cluster

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/engine"
	"github.com/reds-go/reds/internal/engine/store"
)

// TestClusterCheckpointedFailover is the acceptance flow for elastic
// failover: a multi-variant job runs on its ring owner, the owner is
// killed after at least one variant has checkpointed, and the successor
// must resume from the forwarded checkpoint — finishing the job without
// a second train or label pass and re-running only unfinished variants.
func TestClusterCheckpointedFailover(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	workers := map[string]*testWorker{w1.srv.URL: w1, w2.srv.URL: w2}

	disp, err := NewDispatcher([]string{w1.srv.URL, w2.srv.URL}, DispatcherOptions{
		Replicas:     64,
		PollInterval: 5 * time.Millisecond,
		Health:       HealthOptions{Interval: 100 * time.Millisecond, Timeout: time.Second},
	})
	if err != nil {
		t.Fatalf("dispatcher: %v", err)
	}
	t.Cleanup(disp.Close)
	// The gateway engine gets a store so the in-flight checkpoint stream
	// is observable: the test keys the kill off the persisted checkpoint.
	st := store.NewMem()
	gw, err := engine.New(engine.Options{Workers: 2, Executor: disp, Store: st})
	if err != nil {
		t.Fatalf("gateway engine: %v", err)
	}
	t.Cleanup(gw.Close)

	// Three subgroup-discovery variants over one metamodel family: they
	// share a single train/sample/label pipeline, so the checkpoint after
	// the first finished variant lets a cold successor skip all of it.
	req := engine.Request{
		Dataset: e2eDataset(300, 4),
		L:       20000,
		Seed:    3,
		SD:      []string{"prim", "bumping", "bi"},
	}
	ownerURL, _ := disp.Route(req.ShardKey())
	owner := workers[ownerURL]
	var survivorURL string
	for url := range workers {
		if url != ownerURL {
			survivorURL = url
		}
	}

	id, err := gw.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Kill the owner as soon as a checkpoint with a finished variant has
	// been persisted gateway-side — mid-discover, with work left to do.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if raw, ok, _ := st.GetCheckpoint(string(id)); ok {
			var cp engine.Checkpoint
			if err := json.Unmarshal(raw, &cp); err != nil {
				t.Fatalf("persisted checkpoint unreadable: %v", err)
			}
			if len(cp.Variants) >= 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint with a finished variant ever persisted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	owner.stop()

	snap := waitGatewayTerminal(t, gw, id, 180*time.Second)
	if snap.Status != engine.StatusDone {
		t.Fatalf("status after checkpointed failover = %s (err %q), want done", snap.Status, snap.Error)
	}
	if _, failovers := disp.Stats(); failovers != 1 {
		t.Fatalf("failovers = %d, want 1", failovers)
	}
	if started, _ := workers[survivorURL].exec.Executions(); started != 1 {
		t.Fatalf("survivor executions = %d, want 1", started)
	}

	res, err := gw.Result(id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if len(res.Variants) != 3 {
		t.Fatalf("got %d variants, want 3", len(res.Variants))
	}
	resumed := 0
	for _, vr := range res.Variants {
		if vr.Error != "" {
			t.Fatalf("variant %s/%s failed: %s", vr.Metamodel, vr.SD, vr.Error)
		}
		if vr.Resumed {
			resumed++
		}
	}
	if resumed < 1 {
		t.Fatalf("no variant marked resumed — the successor started from scratch")
	}

	// The stitched trace is the forwarded checkpoint's spans plus the
	// successor's discover re-runs. Concurrent sibling variants close
	// their own train/label spans (cache waits), so the checkpoint may
	// carry up to one per variant — but the successor must add none
	// (train/label within the per-variant bound) and must not repeat a
	// discover the checkpoint already holds (exactly one per variant).
	trains, labels, discovers := 0, 0, 0
	for _, ts := range snap.Timings {
		switch {
		case strings.HasPrefix(ts.Stage, "train/"):
			trains++
		case strings.HasPrefix(ts.Stage, "label/"):
			labels++
		case strings.HasPrefix(ts.Stage, "discover/"):
			discovers++
		}
	}
	if trains > 3 || labels > 3 || discovers != 3 {
		t.Fatalf("trace after failover: %d train / %d label / %d discover spans, want ≤3/≤3/3 (no re-done work): %+v",
			trains, labels, discovers, snap.Timings)
	}

	// Terminal jobs shed their checkpoint.
	if _, ok, _ := st.GetCheckpoint(string(id)); ok {
		t.Fatalf("checkpoint survived job completion")
	}
}
