package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/reds-go/reds/internal/engine"
	"github.com/reds-go/reds/internal/telemetry"
)

// DispatcherOptions tune job routing.
type DispatcherOptions struct {
	// Replicas is the ring's virtual-node count per worker (default
	// 128).
	Replicas int
	// Health configures the liveness prober.
	Health HealthOptions
	// PollInterval is each RemoteExecutor's progress-polling period.
	PollInterval time.Duration
	// Client is the HTTP client RemoteExecutors use (default: one
	// shared client with a 15s per-request timeout).
	Client *http.Client
	// ExecutorFor overrides how a worker name becomes an Executor —
	// injectable for tests that want in-process fakes instead of HTTP.
	ExecutorFor func(node string) engine.Executor
	// Metrics is the registry for the dispatcher's instruments (per-
	// worker dispatch counters, failovers, ring size/churn) and — unless
	// Health.Metrics is set separately — the health prober's. nil gets a
	// private registry.
	Metrics *telemetry.Registry
}

// Dispatcher implements engine.Executor across a fleet of workers: each
// request is consistent-hash-routed by its ShardKey (the dataset
// content hash) to a worker, so one dataset's metamodel cache stays hot
// on one process. When the chosen worker is dead — known from the
// health prober, or discovered when the execution fails with
// engine.ErrUnavailable — the dispatcher walks the key's deterministic
// candidate list to the next worker and re-runs the request there.
// Errors that are verdicts about the request itself (validation,
// pipeline failures) are returned as-is, never re-routed.
type Dispatcher struct {
	ring   *Ring
	health *Health
	execs  map[string]engine.Executor

	// The dispatch counters ARE the telemetry instruments
	// (reds_cluster_dispatches_total{worker}, _failovers_total); Stats()
	// reads them back, so the gateway healthz and /metrics cannot
	// drift. The worker set is fixed at construction, so the children
	// are pre-resolved off the Execute path.
	dispatched map[string]*telemetry.Counter
	failovers  *telemetry.Counter
}

// NewDispatcher builds a dispatcher over the worker base URLs.
func NewDispatcher(workers []string, opts DispatcherOptions) (*Dispatcher, error) {
	if len(workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 15 * time.Second}
	}
	executorFor := opts.ExecutorFor
	if executorFor == nil {
		executorFor = func(node string) engine.Executor {
			return &engine.RemoteExecutor{BaseURL: node, Client: client, PollInterval: opts.PollInterval}
		}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if opts.Health.Client == nil {
		opts.Health.Client = client
	}
	if opts.Health.Metrics == nil {
		opts.Health.Metrics = reg
	}
	execs := make(map[string]engine.Executor, len(workers))
	dispatchVec := reg.CounterVec("reds_cluster_dispatches_total",
		"Executions dispatched per worker (failover re-routes count on the new worker too).", "worker")
	dispatched := make(map[string]*telemetry.Counter, len(workers))
	for _, w := range workers {
		if _, dup := execs[w]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker %s", w)
		}
		execs[w] = executorFor(w)
		dispatched[w] = dispatchVec.With(w)
	}
	ring := NewRing(opts.Replicas, workers...)
	// The initial Adds in NewRing are construction, not churn; expose
	// only set changes after this baseline.
	baseline := ring.Mutations()
	reg.CounterFunc("reds_cluster_ring_changes_total",
		"Consistent-hash ring node additions and removals since startup.",
		func() float64 { return float64(ring.Mutations() - baseline) })
	reg.GaugeFunc("reds_cluster_ring_size_workers",
		"Workers currently on the consistent-hash ring.",
		func() float64 { return float64(ring.Len()) })
	return &Dispatcher{
		ring:       ring,
		health:     NewHealth(workers, opts.Health),
		execs:      execs,
		dispatched: dispatched,
		failovers: reg.Counter("reds_cluster_failovers_total",
			"Executions re-routed to another worker after an unavailable one."),
	}, nil
}

// Close stops the health prober.
func (d *Dispatcher) Close() { d.health.Close() }

// Ring exposes the hash ring (for introspection endpoints).
func (d *Dispatcher) Ring() *Ring { return d.ring }

// Health exposes the liveness prober.
func (d *Dispatcher) Health() *Health { return d.health }

// Route returns the worker currently first in line for a key.
func (d *Dispatcher) Route(key string) (string, bool) { return d.ring.Lookup(key) }

// Stats returns per-worker dispatch counts and the number of failover
// re-routes so far, read from the same telemetry instruments /metrics
// exposes.
func (d *Dispatcher) Stats() (dispatched map[string]int64, failovers int64) {
	out := make(map[string]int64, len(d.dispatched))
	for k, c := range d.dispatched {
		out[k] = c.Value()
	}
	return out, d.failovers.Value()
}

// Execute implements engine.Executor with consistent-hash routing and
// failover. The candidate walk visits every worker at most once, alive
// workers first in ring order; progress restarts from zero when an
// execution is re-routed mid-flight (the new worker runs the request
// from scratch).
func (d *Dispatcher) Execute(ctx context.Context, req engine.Request, onProgress func(engine.Progress)) (*engine.Result, error) {
	key := req.ShardKey()
	cands := d.ring.Candidates(key, d.ring.Len())
	if len(cands) == 0 {
		return nil, fmt.Errorf("cluster: no workers on the ring: %w", engine.ErrUnavailable)
	}
	// Alive candidates keep ring order; dead ones go to the back (still
	// in ring order) rather than being skipped — health is a hint that
	// can be stale in both directions, so a fully-"dead" cluster still
	// gets one optimistic attempt per worker.
	ordered := make([]string, 0, len(cands))
	var dead []string
	for _, c := range cands {
		if d.health.Alive(c) {
			ordered = append(ordered, c)
		} else {
			dead = append(dead, c)
		}
	}
	ordered = append(ordered, dead...)

	var lastErr error
	for i, node := range ordered {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d.dispatched[node].Inc()
		if i > 0 {
			d.failovers.Inc()
		}

		res, err := d.execs[node].Execute(ctx, req, onProgress)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !errors.Is(err, engine.ErrUnavailable) {
			return nil, err
		}
		d.health.MarkDead(node, err)
		lastErr = err
	}
	return nil, fmt.Errorf("cluster: all %d workers failed for key %.12s…: %w", len(ordered), key, lastErr)
}
