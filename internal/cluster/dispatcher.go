package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/reds-go/reds/internal/engine"
	"github.com/reds-go/reds/internal/telemetry"
)

// DispatcherOptions tune job routing.
type DispatcherOptions struct {
	// Replicas is the ring's virtual-node count per worker (default
	// 128).
	Replicas int
	// Health configures the liveness prober.
	Health HealthOptions
	// PollInterval is each RemoteExecutor's progress-polling period.
	PollInterval time.Duration
	// Client is the HTTP client RemoteExecutors use (default: one
	// shared client with a 15s per-request timeout).
	Client *http.Client
	// ExecutorFor overrides how a worker name becomes an Executor —
	// injectable for tests that want in-process fakes instead of HTTP.
	ExecutorFor func(node string) engine.Executor
	// Metrics is the registry for the dispatcher's instruments (per-
	// worker dispatch counters, failovers, retries, ring size/churn) and
	// — unless Health.Metrics is set separately — the health prober's.
	// nil gets a private registry.
	Metrics *telemetry.Registry
	// InternalSecret authenticates the dispatcher's RemoteExecutors to
	// workers started with -internal.secret (sent in the
	// X-Reds-Internal-Secret header on every internal-API call). Empty
	// sends no header. Ignored when ExecutorFor is overridden.
	InternalSecret string
}

// Dispatcher implements engine.Executor across a fleet of workers: each
// request is consistent-hash-routed by its ShardKey (the dataset
// content hash) to a worker, so one dataset's metamodel cache stays hot
// on one process. When the chosen worker is dead — known from the
// health prober, or discovered when the execution fails with
// engine.ErrUnavailable — the dispatcher walks the key's deterministic
// candidate list to the next worker and re-runs the request there,
// forwarding the latest execution checkpoint the failed worker reported
// so finished stages are not recomputed. Errors that are verdicts about
// the request itself (validation, pipeline failures) are returned
// as-is, never re-routed. The worker set is dynamic: AddWorker and
// RemoveWorker rebalance the ring at runtime.
type Dispatcher struct {
	ring        *Ring
	health      *Health
	executorFor func(node string) engine.Executor

	// mu guards the per-worker maps — the worker set changes at runtime
	// via AddWorker/RemoveWorker while Execute reads it.
	mu    sync.Mutex
	execs map[string]engine.Executor
	// The dispatch counters ARE the telemetry instruments
	// (reds_cluster_dispatches_total{worker}, _failovers_total); Stats()
	// reads them back, so the gateway healthz and /metrics cannot
	// drift.
	dispatched  map[string]*telemetry.Counter
	dispatchVec *telemetry.CounterVec
	failovers   *telemetry.Counter
}

// NewDispatcher builds a dispatcher over the worker base URLs.
func NewDispatcher(workers []string, opts DispatcherOptions) (*Dispatcher, error) {
	if len(workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 15 * time.Second}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	executorFor := opts.ExecutorFor
	if executorFor == nil {
		retries := reg.CounterVec("reds_cluster_retry_attempts_total",
			"Per-attempt HTTP retries against workers (op = start|poll).", "worker", "op")
		executorFor = func(node string) engine.Executor {
			return &engine.RemoteExecutor{
				BaseURL:        node,
				Client:         client,
				PollInterval:   opts.PollInterval,
				OnRetry:        func(op string) { retries.With(node, op).Inc() },
				InternalSecret: opts.InternalSecret,
			}
		}
	}
	if opts.Health.Client == nil {
		opts.Health.Client = client
	}
	if opts.Health.Metrics == nil {
		opts.Health.Metrics = reg
	}
	execs := make(map[string]engine.Executor, len(workers))
	dispatchVec := reg.CounterVec("reds_cluster_dispatches_total",
		"Executions dispatched per worker (failover re-routes count on the new worker too).", "worker")
	dispatched := make(map[string]*telemetry.Counter, len(workers))
	for _, w := range workers {
		if _, dup := execs[w]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker %s", w)
		}
		execs[w] = executorFor(w)
		dispatched[w] = dispatchVec.With(w)
	}
	ring := NewRing(opts.Replicas, workers...)
	// The initial Adds in NewRing are construction, not churn; expose
	// only set changes after this baseline.
	baseline := ring.Mutations()
	reg.CounterFunc("reds_cluster_ring_changes_total",
		"Consistent-hash ring node additions and removals since startup.",
		func() float64 { return float64(ring.Mutations() - baseline) })
	reg.GaugeFunc("reds_cluster_ring_size_workers",
		"Workers currently on the consistent-hash ring.",
		func() float64 { return float64(ring.Len()) })
	return &Dispatcher{
		ring:        ring,
		health:      NewHealth(workers, opts.Health),
		executorFor: executorFor,
		execs:       execs,
		dispatched:  dispatched,
		dispatchVec: dispatchVec,
		failovers: reg.Counter("reds_cluster_failovers_total",
			"Executions re-routed to another worker after an unavailable one."),
	}, nil
}

// Close stops the health prober.
func (d *Dispatcher) Close() { d.health.Close() }

// Ring exposes the hash ring (for introspection endpoints).
func (d *Dispatcher) Ring() *Ring { return d.ring }

// Health exposes the liveness prober.
func (d *Dispatcher) Health() *Health { return d.health }

// Route returns the worker currently first in line for a key.
func (d *Dispatcher) Route(key string) (string, bool) { return d.ring.Lookup(key) }

// AddWorker registers a worker at runtime: it joins the consistent-hash
// ring (taking over its share of keys), starts being health-probed, and
// becomes dispatchable. Registering an already-known worker fails.
func (d *Dispatcher) AddWorker(node string) error {
	if node == "" {
		return errors.New("cluster: empty worker url")
	}
	d.mu.Lock()
	if _, dup := d.execs[node]; dup {
		d.mu.Unlock()
		return fmt.Errorf("cluster: worker %s already registered", node)
	}
	d.execs[node] = d.executorFor(node)
	d.dispatched[node] = d.dispatchVec.With(node)
	d.mu.Unlock()
	d.health.Add(node)
	d.ring.Add(node)
	return nil
}

// RemoveWorker deregisters a worker: it leaves the ring (its keys
// rebalance onto the survivors), stops being probed, and receives no
// new dispatches. In-flight executions on it are not interrupted; if
// they fail, normal failover applies. Removing the last worker fails —
// a dispatcher with an empty ring could route nothing.
func (d *Dispatcher) RemoveWorker(node string) error {
	d.mu.Lock()
	if _, ok := d.execs[node]; !ok {
		d.mu.Unlock()
		return fmt.Errorf("cluster: unknown worker %s", node)
	}
	if len(d.execs) == 1 {
		d.mu.Unlock()
		return fmt.Errorf("cluster: refusing to remove the last worker %s", node)
	}
	delete(d.execs, node)
	delete(d.dispatched, node)
	d.mu.Unlock()
	d.ring.Remove(node)
	d.health.Remove(node)
	return nil
}

// Workers returns the registered worker URLs in ring-node order.
func (d *Dispatcher) Workers() []string { return d.ring.Nodes() }

// Ready reports whether the first health-probe round has completed —
// the gateway's readiness gate.
func (d *Dispatcher) Ready() bool { return d.health.Ready() }

// Stats returns per-worker dispatch counts and the number of failover
// re-routes so far, read from the same telemetry instruments /metrics
// exposes.
func (d *Dispatcher) Stats() (dispatched map[string]int64, failovers int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int64, len(d.dispatched))
	for k, c := range d.dispatched {
		out[k] = c.Value()
	}
	return out, d.failovers.Value()
}

// executor returns the executor and dispatch counter for a node, or
// nil when the node was removed after the candidate list was computed.
func (d *Dispatcher) executor(node string) (engine.Executor, *telemetry.Counter) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.execs[node], d.dispatched[node]
}

// Execute implements engine.Executor with consistent-hash routing and
// checkpointed failover. The candidate walk visits every worker at most
// once, alive workers first in ring order. The dispatcher watches the
// progress stream for execution checkpoints; when an execution is
// re-routed mid-flight, the highest-sequence checkpoint seen so far is
// forwarded with the request, so the next worker resumes after the
// stages the checkpoint proves finished instead of starting over.
func (d *Dispatcher) Execute(ctx context.Context, req engine.Request, onProgress func(engine.Progress)) (*engine.Result, error) {
	key := req.ShardKey()
	cands := d.ring.Candidates(key, d.ring.Len())
	if len(cands) == 0 {
		return nil, fmt.Errorf("cluster: no workers on the ring: %w", engine.ErrUnavailable)
	}
	// Alive candidates keep ring order; dead ones go to the back (still
	// in ring order) rather than being skipped — health is a hint that
	// can be stale in both directions, so a fully-"dead" cluster still
	// gets one optimistic attempt per worker.
	ordered := make([]string, 0, len(cands))
	var dead []string
	for _, c := range cands {
		if d.health.Alive(c) {
			ordered = append(ordered, c)
		} else {
			dead = append(dead, c)
		}
	}
	ordered = append(ordered, dead...)

	// Capture the newest checkpoint from the progress stream so a
	// failover can hand it to the next candidate. The mutex covers the
	// executors that report progress from worker goroutines.
	var cpMu sync.Mutex
	latest := req.Checkpoint // a checkpoint already on the request (engine restart) seeds the chain
	observe := func(p engine.Progress) {
		if cp := p.Checkpoint; cp != nil {
			cpMu.Lock()
			if latest == nil || cp.Seq > latest.Seq {
				latest = cp
			}
			cpMu.Unlock()
		}
		if onProgress != nil {
			onProgress(p)
		}
	}

	var lastErr error
	attempts := 0
	for _, node := range ordered {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ex, counter := d.executor(node)
		if ex == nil { // removed since the candidate list was computed
			continue
		}
		counter.Inc()
		if attempts > 0 {
			d.failovers.Inc()
		}
		attempts++

		attemptReq := req
		cpMu.Lock()
		attemptReq.Checkpoint = latest
		cpMu.Unlock()

		res, err := ex.Execute(ctx, attemptReq, observe)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !errors.Is(err, engine.ErrUnavailable) {
			return nil, err
		}
		d.health.MarkDead(node, err)
		lastErr = err
	}
	if attempts == 0 {
		return nil, fmt.Errorf("cluster: no dispatchable workers for key %.12s…: %w", key, engine.ErrUnavailable)
	}
	return nil, fmt.Errorf("cluster: all %d workers failed for key %.12s…: %w", attempts, key, lastErr)
}
