// Package cluster shards discovery jobs across a fleet of redsserver
// workers. A consistent-hash Ring maps each job's dataset content hash
// to a worker, so repeated jobs over the same dataset land on the same
// process and keep its metamodel cache hot; a Health prober tracks
// which workers answer; and a Dispatcher implements engine.Executor on
// top of both, re-routing executions away from dead workers. The
// cmd/redsgateway binary wires a Dispatcher into an ordinary
// engine.Engine, which turns the gateway into the cluster's
// orchestration tier.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring over named nodes. Each node occupies
// `replicas` pseudo-random points on a 64-bit circle (derived from
// SHA-256 of "node#i", so placement is deterministic across processes
// and restarts); a key is owned by the first node point clockwise from
// the key's own hash. Adding or removing one node moves only the keys
// adjacent to its points — in expectation a 1/n fraction of the
// keyspace — which is exactly what a metamodel-cache-affine router
// wants: a worker joining or dying must not reshuffle every dataset's
// home. All methods are safe for concurrent use.
type Ring struct {
	replicas int

	mu     sync.RWMutex
	points []ringPoint // sorted by hash
	nodes  map[string]bool
	// mutations counts set-changing Add/Remove calls — the churn signal
	// behind reds_cluster_ring_changes_total (idempotent no-ops don't
	// count; they move no keys).
	mutations uint64
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring with the given virtual-replica count per node
// (0 defaults to 128, a standard balance/competition trade-off) over
// the initial node set.
func NewRing(replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = 128
	}
	r := &Ring{replicas: replicas, nodes: make(map[string]bool)}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// hash64 maps a string to a point on the circle via SHA-256 (stable
// across architectures and Go versions, unlike maphash).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	r.mutations++
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a node and its points (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	r.mutations++
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the current node set, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Mutations returns how many Add/Remove calls actually changed the node
// set since construction (including the initial Adds in NewRing).
func (r *Ring) Mutations() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.mutations
}

// Len returns the number of nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Lookup returns the node owning key, or ok=false on an empty ring.
func (r *Ring) Lookup(key string) (string, bool) {
	c := r.Candidates(key, 1)
	if len(c) == 0 {
		return "", false
	}
	return c[0], true
}

// Candidates returns up to n distinct nodes in ring order starting from
// the key's owner — the preference list a dispatcher walks when the
// owner is down. The order is a deterministic function of (key, node
// set): every gateway over the same worker list fails over to the same
// successor.
func (r *Ring) Candidates(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// String describes the ring for logs.
func (r *Ring) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("ring(%d nodes × %d replicas)", len(r.nodes), r.replicas)
}
