package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/engine"
)

// fakeExecutor is an in-process stand-in for a worker: it can succeed,
// fail with a request error, or be "down" (engine.ErrUnavailable).
type fakeExecutor struct {
	node string
	down atomic.Bool
	fail error

	mu    sync.Mutex
	calls int
}

func (f *fakeExecutor) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *fakeExecutor) Execute(ctx context.Context, req engine.Request, onProgress func(engine.Progress)) (*engine.Result, error) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	if f.down.Load() {
		return nil, fmt.Errorf("fake %s is down: %w", f.node, engine.ErrUnavailable)
	}
	if f.fail != nil {
		return nil, f.fail
	}
	if onProgress != nil {
		onProgress(engine.Progress{Stage: "discover", VariantsTotal: 1, VariantsDone: 1})
	}
	return &engine.Result{DatasetHash: req.ShardKey(), ElapsedSeconds: 0}, nil
}

// okTransport answers every probe with 200 so fake nodes stay alive
// until a test marks them dead explicitly (through a failed execution).
type okTransport struct{}

func (okTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Body:       io.NopCloser(strings.NewReader(`{"ok":true}`)),
		Header:     make(http.Header),
		Request:    r,
	}, nil
}

// newFakeCluster builds a dispatcher over in-process fakes whose health
// probes always succeed; liveness changes only through dispatcher
// feedback (MarkDead on ErrUnavailable).
func newFakeCluster(t *testing.T, nodes ...string) (*Dispatcher, map[string]*fakeExecutor) {
	t.Helper()
	fakes := make(map[string]*fakeExecutor, len(nodes))
	d, err := NewDispatcher(nodes, DispatcherOptions{
		Replicas: 64,
		Health: HealthOptions{
			Interval: time.Hour,
			Client:   &http.Client{Transport: okTransport{}},
		},
		ExecutorFor: func(node string) engine.Executor {
			f := &fakeExecutor{node: node}
			fakes[node] = f
			return f
		},
	})
	if err != nil {
		t.Fatalf("NewDispatcher: %v", err)
	}
	t.Cleanup(d.Close)
	return d, fakes
}

func testRequest(seed int64) engine.Request {
	return engine.Request{Function: "morris", Seed: seed}
}

func TestDispatcherRoutesByShardKey(t *testing.T) {
	d, fakes := newFakeCluster(t, "http://w1", "http://w2", "http://w3")
	req := testRequest(7)
	owner, _ := d.Route(req.ShardKey())

	for i := 0; i < 5; i++ {
		if _, err := d.Execute(context.Background(), req, nil); err != nil {
			t.Fatalf("execute %d: %v", i, err)
		}
	}
	if got := fakes[owner].Calls(); got != 5 {
		t.Fatalf("owner %s saw %d calls, want all 5 (cache affinity)", owner, got)
	}
	for node, f := range fakes {
		if node != owner && f.Calls() != 0 {
			t.Fatalf("non-owner %s saw %d calls", node, f.Calls())
		}
	}
}

func TestDispatcherSpreadsDistinctKeys(t *testing.T) {
	d, fakes := newFakeCluster(t, "http://w1", "http://w2", "http://w3")
	for seed := int64(1); seed <= 60; seed++ {
		if _, err := d.Execute(context.Background(), testRequest(seed), nil); err != nil {
			t.Fatalf("execute seed %d: %v", seed, err)
		}
	}
	for node, f := range fakes {
		if f.Calls() == 0 {
			t.Errorf("worker %s received no traffic across 60 distinct keys", node)
		}
	}
}

func TestDispatcherFailover(t *testing.T) {
	d, fakes := newFakeCluster(t, "http://w1", "http://w2", "http://w3")
	req := testRequest(11)
	key := req.ShardKey()
	owner, _ := d.Route(key)
	fakes[owner].down.Store(true)

	res, err := d.Execute(context.Background(), req, nil)
	if err != nil {
		t.Fatalf("execute with dead owner: %v", err)
	}
	if res.DatasetHash != key {
		t.Fatalf("wrong result: %+v", res)
	}
	// The dead owner was tried once, then the deterministic successor.
	successor := d.Ring().Candidates(key, 2)[1]
	if fakes[owner].Calls() != 1 || fakes[successor].Calls() != 1 {
		t.Fatalf("calls: owner=%d successor=%d, want 1/1", fakes[owner].Calls(), fakes[successor].Calls())
	}
	if d.Health().Alive(owner) {
		t.Fatalf("failed owner still marked alive")
	}
	_, failovers := d.Stats()
	if failovers < 1 {
		t.Fatalf("failovers = %d, want ≥ 1", failovers)
	}

	// Next execution of the same key skips the known-dead owner
	// entirely.
	if _, err := d.Execute(context.Background(), req, nil); err != nil {
		t.Fatalf("second execute: %v", err)
	}
	if fakes[owner].Calls() != 1 {
		t.Fatalf("known-dead owner was tried again")
	}
	if fakes[successor].Calls() != 2 {
		t.Fatalf("successor calls = %d, want 2", fakes[successor].Calls())
	}
}

func TestDispatcherDoesNotRerouteRequestErrors(t *testing.T) {
	d, fakes := newFakeCluster(t, "http://w1", "http://w2")
	req := testRequest(3)
	owner, _ := d.Route(req.ShardKey())
	wantErr := errors.New("all variants failed")
	fakes[owner].fail = wantErr

	_, err := d.Execute(context.Background(), req, nil)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the request error surfaced", err)
	}
	for node, f := range fakes {
		if node != owner && f.Calls() != 0 {
			t.Fatalf("request error was re-routed to %s", node)
		}
	}
}

func TestDispatcherAllWorkersDown(t *testing.T) {
	d, fakes := newFakeCluster(t, "http://w1", "http://w2")
	for _, f := range fakes {
		f.down.Store(true)
	}
	_, err := d.Execute(context.Background(), testRequest(5), nil)
	if !errors.Is(err, engine.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	for node, f := range fakes {
		if f.Calls() != 1 {
			t.Fatalf("worker %s tried %d times, want exactly 1", node, f.Calls())
		}
	}
}

func TestDispatcherNoWorkers(t *testing.T) {
	if _, err := NewDispatcher(nil, DispatcherOptions{}); err == nil {
		t.Fatalf("NewDispatcher accepted an empty worker list")
	}
	if _, err := NewDispatcher([]string{"w", "w"}, DispatcherOptions{
		Health: HealthOptions{Interval: time.Hour},
	}); err == nil {
		t.Fatalf("NewDispatcher accepted a duplicate worker")
	}
}
