package cluster

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/engine"
)

// testWorker is one in-process redsserver stand-in: a LocalExecutor
// behind the internal execution API plus a real /v1 handler (the health
// prober needs /v1/healthz), served over a real TCP listener.
type testWorker struct {
	srv  *httptest.Server
	eng  *engine.Engine
	exec *engine.ExecServer
}

func startWorker(t *testing.T) *testWorker {
	t.Helper()
	local := engine.NewLocalExecutor(engine.LocalExecutorOptions{})
	eng, err := engine.New(engine.Options{Workers: 1, Executor: local})
	if err != nil {
		t.Fatalf("worker engine: %v", err)
	}
	es := engine.NewExecServer(local, engine.ExecServerOptions{})
	srv := httptest.NewServer(engine.NewHandler(eng, engine.WithExecutionAPI(es)))
	w := &testWorker{srv: srv, eng: eng, exec: es}
	t.Cleanup(w.stop)
	return w
}

// stop tears the worker down; safe to call twice (the mid-job kill test
// stops one worker itself).
func (w *testWorker) stop() {
	if w.srv != nil {
		w.srv.CloseClientConnections()
		w.srv.Close()
		w.srv = nil
		w.exec.Close()
		w.eng.Close()
	}
}

// startGateway builds the orchestration tier: an engine whose executor
// is a dispatcher over the workers' URLs.
func startGateway(t *testing.T, workers ...*testWorker) (*engine.Engine, *Dispatcher) {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.srv.URL
	}
	disp, err := NewDispatcher(urls, DispatcherOptions{
		Replicas:     64,
		PollInterval: 5 * time.Millisecond,
		Health:       HealthOptions{Interval: 100 * time.Millisecond, Timeout: time.Second},
	})
	if err != nil {
		t.Fatalf("dispatcher: %v", err)
	}
	t.Cleanup(disp.Close)
	eng, err := engine.New(engine.Options{Workers: 2, Executor: disp})
	if err != nil {
		t.Fatalf("gateway engine: %v", err)
	}
	t.Cleanup(eng.Close)
	return eng, disp
}

func e2eDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if x[i][0] < 0.4 && x[i][1] < 0.4 {
			y[i] = 1
		}
	}
	return dataset.MustNew(x, y)
}

func waitGatewayTerminal(t *testing.T, eng *engine.Engine, id engine.JobID, timeout time.Duration) engine.Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		snap, ok := eng.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if snap.Status.Terminal() {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, snap.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// normalizeResult zeroes wall-clock and cache-temperature fields so two
// runs of one request compare byte-for-byte.
func normalizeResult(t *testing.T, res *engine.Result) string {
	t.Helper()
	cp := *res
	cp.ElapsedSeconds = 0
	cp.Best.CacheHit = false
	cp.Variants = append([]engine.VariantResult(nil), res.Variants...)
	for i := range cp.Variants {
		cp.Variants[i].CacheHit = false
	}
	raw, err := json.Marshal(&cp)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(raw)
}

// TestClusterEndToEnd drives a job through gateway engine → dispatcher
// → RemoteExecutor → worker ExecServer → LocalExecutor and asserts the
// result is byte-identical to the single-process path.
func TestClusterEndToEnd(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	gw, disp := startGateway(t, w1, w2)

	req := engine.Request{Dataset: e2eDataset(250, 1), L: 2000, Seed: 5}
	id, err := gw.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap := waitGatewayTerminal(t, gw, id, 120*time.Second)
	if snap.Status != engine.StatusDone {
		t.Fatalf("status = %s (err %q), want done", snap.Status, snap.Error)
	}
	// Progress flowed through the whole chain back into the gateway job.
	if snap.LabelDone != 2000 || snap.VariantsDone != 1 {
		t.Fatalf("gateway snapshot missed remote progress: %+v", snap)
	}
	res, err := gw.Result(id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}

	local, err := engine.NewLocalExecutor(engine.LocalExecutorOptions{}).Execute(context.Background(), req, nil)
	if err != nil {
		t.Fatalf("single-process execute: %v", err)
	}
	if got, want := normalizeResult(t, res), normalizeResult(t, local); got != want {
		t.Fatalf("cluster result differs from single-process:\ncluster: %.300s\nlocal:   %.300s", got, want)
	}

	// The job landed on the ring owner of its dataset hash.
	owner, _ := disp.Route(req.ShardKey())
	dispatched, _ := disp.Stats()
	if dispatched[owner] != 1 {
		t.Fatalf("dispatch counts %v, want 1 on owner %s", dispatched, owner)
	}
}

// TestClusterWorkerDeathFailover kills the owning worker mid-job and
// asserts the gateway re-routes the execution to the surviving worker
// and the job still completes.
func TestClusterWorkerDeathFailover(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)
	workers := map[string]*testWorker{w1.srv.URL: w1, w2.srv.URL: w2}
	gw, disp := startGateway(t, w1, w2)

	// A large pseudo-label sample keeps the job running long enough to
	// kill its worker mid-flight.
	req := engine.Request{Dataset: e2eDataset(300, 2), L: 300000, Seed: 3}
	ownerURL, _ := disp.Route(req.ShardKey())
	owner := workers[ownerURL]
	var survivorURL string
	for url := range workers {
		if url != ownerURL {
			survivorURL = url
		}
	}

	id, err := gw.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Wait until the owner is actually executing, then kill it.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if started, _ := owner.exec.Executions(); started > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner never started executing")
		}
		time.Sleep(2 * time.Millisecond)
	}
	owner.stop()

	snap := waitGatewayTerminal(t, gw, id, 180*time.Second)
	if snap.Status != engine.StatusDone {
		t.Fatalf("status after failover = %s (err %q), want done", snap.Status, snap.Error)
	}
	if _, err := gw.Result(id); err != nil {
		t.Fatalf("result after failover: %v", err)
	}
	if started, _ := workers[survivorURL].exec.Executions(); started != 1 {
		t.Fatalf("survivor executions = %d, want 1 (re-routed job)", started)
	}
	dispatched, failovers := disp.Stats()
	if failovers != 1 {
		t.Fatalf("failovers = %d, want 1", failovers)
	}
	if dispatched[ownerURL] != 1 || dispatched[survivorURL] != 1 {
		t.Fatalf("dispatch counts %v, want one attempt each", dispatched)
	}
	if disp.Health().Alive(ownerURL) {
		t.Fatalf("dead owner still marked alive")
	}
}
