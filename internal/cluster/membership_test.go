package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/engine"
)

func TestDispatcherMembership(t *testing.T) {
	d, fakes := newFakeCluster(t, "http://w1", "http://w2")
	base := d.Ring().Mutations()

	if err := d.AddWorker("http://w3"); err != nil {
		t.Fatalf("AddWorker: %v", err)
	}
	if err := d.AddWorker("http://w3"); err == nil {
		t.Fatalf("duplicate AddWorker accepted")
	}
	if d.Ring().Len() != 3 || len(d.Workers()) != 3 {
		t.Fatalf("ring after add: %d nodes, workers %v", d.Ring().Len(), d.Workers())
	}
	if !d.Health().Alive("http://w3") {
		t.Fatalf("added worker not alive")
	}

	// The new worker takes over its share of keys.
	for seed := int64(1); seed <= 80; seed++ {
		if _, err := d.Execute(context.Background(), testRequest(seed), nil); err != nil {
			t.Fatalf("execute seed %d: %v", seed, err)
		}
	}
	if fakes["http://w3"].Calls() == 0 {
		t.Fatalf("added worker received no traffic across 80 distinct keys")
	}

	if err := d.RemoveWorker("http://w3"); err != nil {
		t.Fatalf("RemoveWorker: %v", err)
	}
	if err := d.RemoveWorker("http://w3"); err == nil {
		t.Fatalf("removing an unknown worker succeeded")
	}
	frozen := fakes["http://w3"].Calls()
	for seed := int64(101); seed <= 160; seed++ {
		if _, err := d.Execute(context.Background(), testRequest(seed), nil); err != nil {
			t.Fatalf("execute seed %d: %v", seed, err)
		}
	}
	if got := fakes["http://w3"].Calls(); got != frozen {
		t.Fatalf("removed worker still dispatched to (%d → %d calls)", frozen, got)
	}
	if d.Health().Alive("http://w3") {
		t.Fatalf("removed worker still tracked as alive")
	}
	if churn := d.Ring().Mutations() - base; churn != 2 {
		t.Fatalf("ring churn = %d, want 2 (one add + one remove)", churn)
	}

	// The last worker cannot be removed: an empty ring routes nothing.
	if err := d.RemoveWorker("http://w1"); err != nil {
		t.Fatalf("removing second-to-last worker: %v", err)
	}
	if err := d.RemoveWorker("http://w2"); err == nil {
		t.Fatalf("removing the last worker succeeded")
	}
}

// cpFake is a worker double for checkpoint-forwarding tests: it records
// the checkpoint each incoming request carries, optionally emits one
// through the progress stream and then dies with ErrUnavailable.
type cpFake struct {
	node string
	emit *engine.Checkpoint // if set: report it, then fail unavailable

	mu  sync.Mutex
	got []*engine.Checkpoint
}

func (f *cpFake) Execute(ctx context.Context, req engine.Request, onProgress func(engine.Progress)) (*engine.Result, error) {
	f.mu.Lock()
	f.got = append(f.got, req.Checkpoint)
	f.mu.Unlock()
	if f.emit != nil {
		if onProgress != nil {
			onProgress(engine.Progress{Stage: "discover", Checkpoint: f.emit})
		}
		return nil, fmt.Errorf("fake %s died mid-job: %w", f.node, engine.ErrUnavailable)
	}
	return &engine.Result{DatasetHash: req.ShardKey()}, nil
}

func (f *cpFake) inbound() []*engine.Checkpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*engine.Checkpoint(nil), f.got...)
}

// TestDispatcherForwardsCheckpointOnFailover: the owner reports a
// checkpoint and dies; the successor's request must carry that
// checkpoint so it resumes instead of starting over.
func TestDispatcherForwardsCheckpointOnFailover(t *testing.T) {
	fakes := make(map[string]*cpFake)
	d, err := NewDispatcher([]string{"http://w1", "http://w2"}, DispatcherOptions{
		Replicas: 64,
		Health: HealthOptions{
			Interval: time.Hour,
			Client:   &http.Client{Transport: okTransport{}},
		},
		ExecutorFor: func(node string) engine.Executor {
			f := &cpFake{node: node}
			fakes[node] = f
			return f
		},
	})
	if err != nil {
		t.Fatalf("NewDispatcher: %v", err)
	}
	defer d.Close()

	req := testRequest(17)
	key := req.ShardKey()
	owner, _ := d.Route(key)
	cands := d.Ring().Candidates(key, 2)
	successor := cands[1]
	fakes[owner].emit = &engine.Checkpoint{Seq: 3, DatasetHash: "h", Variants: []engine.VariantResult{{Metamodel: "rf", SD: "prim"}}}

	var sawCheckpoint atomic.Bool
	res, err := d.Execute(context.Background(), req, func(p engine.Progress) {
		if p.Checkpoint != nil {
			sawCheckpoint.Store(true)
		}
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.DatasetHash != key {
		t.Fatalf("wrong result: %+v", res)
	}
	if got := fakes[owner].inbound(); len(got) != 1 || got[0] != nil {
		t.Fatalf("owner's first attempt carried a checkpoint: %+v", got)
	}
	got := fakes[successor].inbound()
	if len(got) != 1 || got[0] == nil || got[0].Seq != 3 {
		t.Fatalf("successor checkpoint = %+v, want the owner's seq-3 snapshot", got)
	}
	if !sawCheckpoint.Load() {
		t.Fatalf("checkpoint progress was not forwarded to the caller")
	}
}

// blockingTransport parks every probe until its context expires, so a
// probe round takes a deterministic, nonzero amount of time.
type blockingTransport struct{}

func (blockingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	<-r.Context().Done()
	return nil, r.Context().Err()
}

func TestHealthReadyAfterFirstRound(t *testing.T) {
	h := NewHealth([]string{"http://w1"}, HealthOptions{
		Interval: time.Hour,
		Timeout:  100 * time.Millisecond,
		Client:   &http.Client{Transport: blockingTransport{}},
	})
	defer h.Close()
	if h.Ready() {
		t.Fatalf("prober ready before the first round completed")
	}
	deadline := time.Now().Add(10 * time.Second)
	for !h.Ready() {
		if time.Now().After(deadline) {
			t.Fatalf("prober never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The round that made it ready also observed the node down.
	if h.Alive("http://w1") {
		t.Fatalf("unreachable node still alive after the first real round")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	var nowNs atomic.Int64
	nowNs.Store(time.Now().UnixNano())
	clock := func() time.Time { return time.Unix(0, nowNs.Load()) }
	h := NewHealth([]string{"w"}, HealthOptions{
		Interval:         time.Hour,
		Client:           &http.Client{Transport: okTransport{}},
		SuccessThreshold: 2,
		BreakerCooldown:  time.Second,
		now:              clock,
	})
	defer h.Close()

	h.MarkDead("w", errors.New("dispatch failed"))
	if h.Alive("w") {
		t.Fatalf("node alive right after MarkDead")
	}
	st := h.Snapshot()[0]
	if st.Breaker != BreakerOpen || st.RetryAt.IsZero() {
		t.Fatalf("after MarkDead: %+v, want an open breaker with a retry time", st)
	}

	// A probe success during the cooldown must not resurrect the node.
	h.observe("w", nil, clock())
	if h.Alive("w") || h.Snapshot()[0].Breaker != BreakerOpen {
		t.Fatalf("node rejoined during the breaker cooldown")
	}

	// Past the cooldown (max jittered cooldown is 1.5×base): the next
	// success half-opens; with SuccessThreshold 2 the node stays out
	// until a second success closes the breaker.
	nowNs.Add(int64(2 * time.Second))
	h.observe("w", nil, clock())
	if h.Alive("w") {
		t.Fatalf("half-open node already back in rotation")
	}
	if got := h.Snapshot()[0].Breaker; got != BreakerHalfOpen {
		t.Fatalf("breaker after trial success = %s, want half-open", got)
	}
	h.observe("w", nil, clock())
	if !h.Alive("w") || h.Snapshot()[0].Breaker != BreakerClosed {
		t.Fatalf("breaker did not close after %d trial successes: %+v", 2, h.Snapshot()[0])
	}
}

func TestBreakerReopensOnTrialFailure(t *testing.T) {
	var nowNs atomic.Int64
	nowNs.Store(time.Now().UnixNano())
	clock := func() time.Time { return time.Unix(0, nowNs.Load()) }
	h := NewHealth([]string{"w"}, HealthOptions{
		Interval:         time.Hour,
		Client:           &http.Client{Transport: okTransport{}},
		SuccessThreshold: 2,
		BreakerCooldown:  time.Second,
		now:              clock,
	})
	defer h.Close()

	h.MarkDead("w", errors.New("boom"))
	nowNs.Add(int64(2 * time.Second))
	h.observe("w", nil, clock()) // trial success → half-open
	if got := h.Snapshot()[0].Breaker; got != BreakerHalfOpen {
		t.Fatalf("breaker = %s, want half-open", got)
	}
	h.observe("w", errors.New("flapped"), clock()) // trial failure → open again
	st := h.Snapshot()[0]
	if st.Breaker != BreakerOpen || st.Alive {
		t.Fatalf("flapping node not re-opened: %+v", st)
	}
	if !st.RetryAt.After(clock()) {
		t.Fatalf("re-opened breaker has no future retry time: %+v", st)
	}
}
