package cluster

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/reds-go/reds/internal/telemetry"
)

// Circuit-breaker states. closed = healthy, failures counted; open =
// tripped, node out of rotation until the cooldown elapses; half-open =
// cooldown over, trial probes decide whether the node rejoins.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// NodeStatus is one worker's health as the gateway sees it.
type NodeStatus struct {
	Node  string `json:"node"`
	Alive bool   `json:"alive"`
	// Error is the most recent probe/execution failure; cleared when
	// the node comes back.
	Error string `json:"error,omitempty"`
	// CheckedAt is the time of the last probe (zero before the first
	// one completes).
	CheckedAt time.Time `json:"checked_at,omitzero"`
	// Breaker is the node's circuit-breaker state (closed, open or
	// half-open). A node is only Alive with a closed breaker.
	Breaker string `json:"breaker"`
	// RetryAt is when an open breaker lets the next probe through as a
	// trial; zero unless the breaker is open.
	RetryAt time.Time `json:"retry_at,omitzero"`
}

// HealthOptions tune the prober.
type HealthOptions struct {
	// Interval between probe rounds (default 2s).
	Interval time.Duration
	// Timeout of one probe request (default 1s).
	Timeout time.Duration
	// Client defaults to http.DefaultClient with Timeout applied per
	// request context.
	Client *http.Client
	// FailureThreshold is how many consecutive failures (probe failures
	// or dispatcher MarkDead reports) open a node's breaker. Default 1:
	// the first failure takes the node out of rotation, matching the
	// prober's historical behavior.
	FailureThreshold int
	// SuccessThreshold is how many consecutive probe successes a
	// half-open node needs before its breaker closes and it rejoins the
	// rotation (default 1).
	SuccessThreshold int
	// BreakerCooldown is the open-state cooldown before the first trial
	// probe is let through; each consecutive trip doubles it, jittered,
	// capped at BreakerMaxCooldown. Default 500ms.
	BreakerCooldown time.Duration
	// BreakerMaxCooldown caps the exponential cooldown growth (default
	// 30s).
	BreakerMaxCooldown time.Duration
	// Metrics is the registry for the prober's instruments
	// (reds_cluster_probes_total{worker,result}, the alive-workers
	// gauge, and reds_cluster_breaker_transitions_total{worker,state}).
	// nil gets a private registry.
	Metrics *telemetry.Registry

	// now is the prober's clock — injectable so breaker tests can move
	// time instead of sleeping.
	now func() time.Time
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = time.Second
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 1
	}
	if o.SuccessThreshold <= 0 {
		o.SuccessThreshold = 1
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 500 * time.Millisecond
	}
	if o.BreakerMaxCooldown <= 0 {
		o.BreakerMaxCooldown = 30 * time.Second
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// breaker is the per-node circuit-breaker bookkeeping behind NodeStatus.
type breaker struct {
	state     string
	failures  int // consecutive failures while closed
	successes int // consecutive successes while half-open
	trips     int // consecutive opens; drives the cooldown growth
	retryAt   time.Time
}

// Health probes each worker's GET /v1/healthz on a fixed interval and
// remembers who answers. Nodes start alive (optimistically — before the
// first probe completes the dispatcher would otherwise have nowhere to
// send work), and a dispatcher that watches an execution fail with
// ErrUnavailable can MarkDead a node immediately instead of waiting for
// the next probe round. Each node carries a circuit breaker: failures
// open it (with an exponentially growing, jittered cooldown on repeated
// trips), the cooldown elapsing half-opens it, and trial probe
// successes close it again — so a flapping worker cannot rejoin the
// rotation on every brief recovery. The node set is dynamic: Add and
// Remove change who gets probed.
type Health struct {
	opts HealthOptions
	// mProbes counts probe outcomes per worker (result = ok|fail).
	mProbes *telemetry.CounterVec
	// mBreaker counts breaker state transitions per worker.
	mBreaker *telemetry.CounterVec

	// ready is closed when the first probe round completes; readiness
	// gates (the gateway's /v1/readyz) key off it so traffic only flows
	// once liveness is observed, not assumed.
	ready     chan struct{}
	readyOnce sync.Once

	mu       sync.Mutex
	status   map[string]*NodeStatus
	breakers map[string]*breaker
	// diedAt records the last MarkDead per node, so a probe success
	// captured *before* the node died cannot resurrect it when its
	// result is folded in after the MarkDead (the dispatcher's report
	// is fresher than an in-flight probe).
	diedAt map[string]time.Time

	done chan struct{}
	stop sync.Once
	wg   sync.WaitGroup
}

// NewHealth builds a prober over the node set and starts it.
func NewHealth(nodes []string, opts HealthOptions) *Health {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	h := &Health{
		opts: opts,
		mProbes: reg.CounterVec("reds_cluster_probes_total",
			"Health probe outcomes per worker (result = ok|fail).", "worker", "result"),
		mBreaker: reg.CounterVec("reds_cluster_breaker_transitions_total",
			"Circuit-breaker state transitions per worker (state = closed|open|half-open).",
			"worker", "state"),
		ready:    make(chan struct{}),
		status:   make(map[string]*NodeStatus, len(nodes)),
		breakers: make(map[string]*breaker, len(nodes)),
		diedAt:   make(map[string]time.Time, len(nodes)),
		done:     make(chan struct{}),
	}
	for _, n := range nodes {
		h.status[n] = &NodeStatus{Node: n, Alive: true, Breaker: BreakerClosed}
		h.breakers[n] = &breaker{state: BreakerClosed}
	}
	reg.GaugeFunc("reds_cluster_alive_workers",
		"Workers whose most recent health probe succeeded.",
		func() float64 {
			var alive int
			for _, st := range h.Snapshot() {
				if st.Alive {
					alive++
				}
			}
			return float64(alive)
		})
	h.wg.Add(1)
	go h.loop()
	return h
}

// Close stops the prober.
func (h *Health) Close() {
	h.stop.Do(func() { close(h.done) })
	h.wg.Wait()
}

// Add starts probing a node. New nodes begin alive with a closed
// breaker, like the initial set. Adding a node that is already tracked
// is a no-op (in particular it does not reset an open breaker).
func (h *Health) Add(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.status[node]; ok {
		return
	}
	h.status[node] = &NodeStatus{Node: node, Alive: true, Breaker: BreakerClosed}
	h.breakers[node] = &breaker{state: BreakerClosed}
}

// Remove stops probing a node and forgets its state. Re-adding it later
// starts from a clean, closed breaker.
func (h *Health) Remove(node string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.status, node)
	delete(h.breakers, node)
	delete(h.diedAt, node)
}

// Ready reports whether the first probe round has completed — i.e. the
// Alive answers are observed, not the optimistic startup default.
func (h *Health) Ready() bool {
	select {
	case <-h.ready:
		return true
	default:
		return false
	}
}

func (h *Health) loop() {
	defer h.wg.Done()
	h.probeAll() // first round immediately, not one interval late
	h.readyOnce.Do(func() { close(h.ready) })
	t := time.NewTicker(h.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-t.C:
			h.probeAll()
		}
	}
}

// probeAll checks every node concurrently and folds the results in.
func (h *Health) probeAll() {
	h.mu.Lock()
	nodes := make([]string, 0, len(h.status))
	for n := range h.status {
		nodes = append(nodes, n)
	}
	h.mu.Unlock()

	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			started := h.opts.now()
			err := h.probe(node)
			result := "ok"
			if err != nil {
				result = "fail"
			}
			h.mProbes.With(node, result).Inc()
			h.observe(node, err, started)
		}(node)
	}
	wg.Wait()
}

// observe folds one probe (or dispatcher) outcome into the node's
// status through its circuit breaker.
func (h *Health) observe(node string, err error, started time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.status[node]
	b := h.breakers[node]
	if st == nil || b == nil { // removed while the probe was in flight
		return
	}
	now := h.opts.now()
	st.CheckedAt = now

	if err != nil {
		st.Alive = false
		st.Error = err.Error()
		switch b.state {
		case BreakerOpen:
			// Already open; repeated failures neither trip it again nor
			// extend the cooldown — the scheduled trial decides.
		case BreakerHalfOpen:
			// The trial failed: re-open with a longer cooldown.
			h.tripLocked(node, st, b, now)
		default:
			b.failures++
			if b.failures >= h.opts.FailureThreshold {
				h.tripLocked(node, st, b, now)
			}
		}
		return
	}

	// A success observed before a MarkDead is stale — the node
	// answered, then died. Discard it; the next probe round decides.
	if h.diedAt[node].After(started) {
		return
	}
	switch b.state {
	case BreakerOpen:
		if now.Before(b.retryAt) {
			// Still cooling down: the success does not rejoin the node;
			// it would re-admit a flapping worker instantly.
			return
		}
		h.setStateLocked(node, st, b, BreakerHalfOpen)
		b.successes = 0
		fallthrough
	case BreakerHalfOpen:
		b.successes++
		if b.successes < h.opts.SuccessThreshold {
			return // still on trial, still out of rotation
		}
		h.setStateLocked(node, st, b, BreakerClosed)
		b.trips = 0
	default:
		b.failures = 0
	}
	st.Alive = true
	st.Error = ""
	st.RetryAt = time.Time{}
	b.retryAt = time.Time{}
}

// tripLocked opens a node's breaker and schedules the next trial.
func (h *Health) tripLocked(node string, st *NodeStatus, b *breaker, now time.Time) {
	h.setStateLocked(node, st, b, BreakerOpen)
	b.failures, b.successes = 0, 0
	b.trips++
	b.retryAt = now.Add(h.cooldown(b.trips))
	st.RetryAt = b.retryAt
}

// cooldown returns the jittered open-state cooldown for the given
// consecutive trip count: base doubling per trip, capped, then spread
// over [d/2, 3d/2) so a fleet-wide outage does not retry in lockstep.
func (h *Health) cooldown(trips int) time.Duration {
	d := h.opts.BreakerCooldown
	for i := 1; i < trips && d < h.opts.BreakerMaxCooldown; i++ {
		d *= 2
	}
	if d > h.opts.BreakerMaxCooldown {
		d = h.opts.BreakerMaxCooldown
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// setStateLocked records a breaker transition on the status and the
// transitions counter.
func (h *Health) setStateLocked(node string, st *NodeStatus, b *breaker, state string) {
	if b.state == state {
		return
	}
	b.state = state
	st.Breaker = state
	h.mBreaker.With(node, state).Inc()
}

// probe performs one healthz request.
func (h *Health) probe(node string) error {
	ctx, cancel := context.WithTimeout(context.Background(), h.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(node, "/")+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := h.opts.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &statusError{node: node, status: resp.Status}
	}
	return nil
}

type statusError struct {
	node   string
	status string
}

func (e *statusError) Error() string { return "healthz of " + e.node + " returned " + e.status }

// Alive reports whether the node answered its last probe and its
// breaker is closed (unknown nodes are dead).
func (h *Health) Alive(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.status[node]
	return ok && st.Alive
}

// MarkDead flags a node down immediately — dispatcher feedback for an
// execution that failed with ErrUnavailable, faster than the next probe
// round. The failure counts against the node's breaker like a probe
// failure, so it also (re)opens the breaker at the failure threshold.
func (h *Health) MarkDead(node string, reason error) {
	if reason == nil {
		reason = errors.New("marked dead by dispatcher")
	}
	now := h.opts.now()
	h.mu.Lock()
	if _, ok := h.status[node]; !ok {
		h.mu.Unlock()
		return
	}
	h.diedAt[node] = now
	h.mu.Unlock()
	h.observe(node, reason, now)
}

// Snapshot returns every node's status, sorted by node name.
func (h *Health) Snapshot() []NodeStatus {
	h.mu.Lock()
	out := make([]NodeStatus, 0, len(h.status))
	for _, st := range h.status {
		out = append(out, *st)
	}
	h.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}
