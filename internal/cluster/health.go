package cluster

import (
	"context"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/reds-go/reds/internal/telemetry"
)

// NodeStatus is one worker's health as the gateway sees it.
type NodeStatus struct {
	Node  string `json:"node"`
	Alive bool   `json:"alive"`
	// Error is the most recent probe/execution failure; cleared when
	// the node comes back.
	Error string `json:"error,omitempty"`
	// CheckedAt is the time of the last probe (zero before the first
	// one completes).
	CheckedAt time.Time `json:"checked_at,omitzero"`
}

// HealthOptions tune the prober.
type HealthOptions struct {
	// Interval between probe rounds (default 2s).
	Interval time.Duration
	// Timeout of one probe request (default 1s).
	Timeout time.Duration
	// Client defaults to http.DefaultClient with Timeout applied per
	// request context.
	Client *http.Client
	// Metrics is the registry for the prober's instruments
	// (reds_cluster_probes_total{worker,result} and the alive-workers
	// gauge). nil gets a private registry.
	Metrics *telemetry.Registry
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = time.Second
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// Health probes each worker's GET /v1/healthz on a fixed interval and
// remembers who answers. Nodes start alive (optimistically — before the
// first probe completes the dispatcher would otherwise have nowhere to
// send work), and a dispatcher that watches an execution fail with
// ErrUnavailable can MarkDead a node immediately instead of waiting for
// the next probe round. A dead node keeps being probed and rejoins the
// rotation as soon as it answers again.
type Health struct {
	opts HealthOptions
	// mProbes counts probe outcomes per worker (result = ok|fail).
	mProbes *telemetry.CounterVec

	mu     sync.Mutex
	status map[string]*NodeStatus
	// diedAt records the last MarkDead per node, so a probe success
	// captured *before* the node died cannot resurrect it when its
	// result is folded in after the MarkDead (the dispatcher's report
	// is fresher than an in-flight probe).
	diedAt map[string]time.Time

	done chan struct{}
	stop sync.Once
	wg   sync.WaitGroup
}

// NewHealth builds a prober over the node set and starts it.
func NewHealth(nodes []string, opts HealthOptions) *Health {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	h := &Health{
		opts: opts,
		mProbes: reg.CounterVec("reds_cluster_probes_total",
			"Health probe outcomes per worker (result = ok|fail).", "worker", "result"),
		status: make(map[string]*NodeStatus, len(nodes)),
		diedAt: make(map[string]time.Time, len(nodes)),
		done:   make(chan struct{}),
	}
	for _, n := range nodes {
		h.status[n] = &NodeStatus{Node: n, Alive: true}
	}
	reg.GaugeFunc("reds_cluster_alive_workers",
		"Workers whose most recent health probe succeeded.",
		func() float64 {
			var alive int
			for _, st := range h.Snapshot() {
				if st.Alive {
					alive++
				}
			}
			return float64(alive)
		})
	h.wg.Add(1)
	go h.loop()
	return h
}

// Close stops the prober.
func (h *Health) Close() {
	h.stop.Do(func() { close(h.done) })
	h.wg.Wait()
}

func (h *Health) loop() {
	defer h.wg.Done()
	h.probeAll() // first round immediately, not one interval late
	t := time.NewTicker(h.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-t.C:
			h.probeAll()
		}
	}
}

// probeAll checks every node concurrently and folds the results in.
func (h *Health) probeAll() {
	h.mu.Lock()
	nodes := make([]string, 0, len(h.status))
	for n := range h.status {
		nodes = append(nodes, n)
	}
	h.mu.Unlock()

	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			started := time.Now()
			err := h.probe(node)
			result := "ok"
			if err != nil {
				result = "fail"
			}
			h.mProbes.With(node, result).Inc()
			h.mu.Lock()
			if st := h.status[node]; st != nil {
				// A success observed before a MarkDead is stale — the
				// node answered, then died. Discard it; the next probe
				// round decides.
				if err == nil && h.diedAt[node].After(started) {
					h.mu.Unlock()
					return
				}
				st.Alive = err == nil
				st.CheckedAt = time.Now()
				if err != nil {
					st.Error = err.Error()
				} else {
					st.Error = ""
				}
			}
			h.mu.Unlock()
		}(node)
	}
	wg.Wait()
}

// probe performs one healthz request.
func (h *Health) probe(node string) error {
	ctx, cancel := context.WithTimeout(context.Background(), h.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(node, "/")+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := h.opts.Client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &statusError{node: node, status: resp.Status}
	}
	return nil
}

type statusError struct {
	node   string
	status string
}

func (e *statusError) Error() string { return "healthz of " + e.node + " returned " + e.status }

// Alive reports whether the node answered its last probe (unknown nodes
// are dead).
func (h *Health) Alive(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.status[node]
	return ok && st.Alive
}

// MarkDead flags a node down immediately — dispatcher feedback for an
// execution that failed with ErrUnavailable, faster than the next probe
// round. The prober will resurrect the node when it answers again.
func (h *Health) MarkDead(node string, reason error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st, ok := h.status[node]; ok {
		st.Alive = false
		h.diedAt[node] = time.Now()
		if reason != nil {
			st.Error = reason.Error()
		}
	}
}

// Snapshot returns every node's status, sorted by node name.
func (h *Health) Snapshot() []NodeStatus {
	h.mu.Lock()
	out := make([]NodeStatus, 0, len(h.status))
	for _, st := range h.status {
		out = append(out, *st)
	}
	h.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}
