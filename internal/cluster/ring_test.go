package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real routing keys (dataset content hashes are hex
		// strings, but any string works — the ring hashes it again).
		keys[i] = fmt.Sprintf("dataset-hash-%06d", i)
	}
	return keys
}

func TestRingDeterministicPlacement(t *testing.T) {
	nodes := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	a := NewRing(128, nodes...)
	// Same node set added in a different order must place every key
	// identically — placement is a pure function of (key, node set), so
	// independent gateways agree without coordination.
	b := NewRing(128, nodes[2], nodes[0], nodes[1])
	for _, key := range ringKeys(2000) {
		na, ok := a.Lookup(key)
		if !ok {
			t.Fatalf("lookup on non-empty ring failed")
		}
		nb, _ := b.Lookup(key)
		if na != nb {
			t.Fatalf("placement differs between identical rings: %s vs %s for %s", na, nb, key)
		}
	}
	// And it must be stable across repeated lookups.
	for _, key := range ringKeys(100) {
		first, _ := a.Lookup(key)
		for i := 0; i < 5; i++ {
			if got, _ := a.Lookup(key); got != first {
				t.Fatalf("lookup of %s is not stable: %s then %s", key, first, got)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	r := NewRing(128, nodes...)
	keys := ringKeys(20000)
	counts := make(map[string]int)
	for _, k := range keys {
		n, _ := r.Lookup(k)
		counts[n]++
	}
	// With 128 virtual nodes each worker should get a share within a
	// factor ~2 of fair; grossly skewed placement would defeat sharding.
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/2 || counts[n] > fair*2 {
			t.Errorf("node %s owns %d keys, want within [%d, %d] of fair %d", n, counts[n], fair/2, fair*2, fair)
		}
	}
}

// TestRingChurnOnJoin asserts the consistent-hashing contract: adding
// one node to an n-node ring moves about 1/(n+1) of the keys — and
// statistically at most 2/(n+1) — and every moved key moves TO the new
// node (no unrelated shuffling).
func TestRingChurnOnJoin(t *testing.T) {
	const n = 8
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	r := NewRing(128, nodes...)
	keys := ringKeys(20000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}

	const newNode = "http://worker-new:8080"
	r.Add(newNode)
	moved := 0
	for _, k := range keys {
		after, _ := r.Lookup(k)
		if after != before[k] {
			moved++
			if after != newNode {
				t.Fatalf("key %s moved %s→%s, not to the joining node", k, before[k], after)
			}
		}
	}
	expected := len(keys) / (n + 1)
	if moved > 2*expected {
		t.Errorf("join moved %d/%d keys, statistically at most %d (2× expected %d) allowed", moved, len(keys), 2*expected, expected)
	}
	if moved == 0 {
		t.Errorf("join moved no keys at all — the new node owns nothing")
	}
}

// TestRingChurnOnLeave is the mirror image: removing a node relocates
// only the keys it owned; everyone else's placement is untouched.
func TestRingChurnOnLeave(t *testing.T) {
	const n = 8
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	r := NewRing(128, nodes...)
	keys := ringKeys(20000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}

	victim := nodes[3]
	r.Remove(victim)
	moved := 0
	for _, k := range keys {
		after, _ := r.Lookup(k)
		if before[k] == victim {
			if after == victim {
				t.Fatalf("key %s still routes to the removed node", k)
			}
			moved++
		} else if after != before[k] {
			t.Fatalf("key %s moved %s→%s although its owner did not leave", k, before[k], after)
		}
	}
	expected := len(keys) / n
	if moved > 2*expected {
		t.Errorf("leave moved %d keys, statistically at most %d allowed", moved, 2*expected)
	}
}

func TestRingCandidates(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := NewRing(64, nodes...)
	for _, key := range ringKeys(500) {
		cands := r.Candidates(key, len(nodes))
		if len(cands) != len(nodes) {
			t.Fatalf("candidates(%s) = %v, want all %d nodes", key, cands, len(nodes))
		}
		seen := make(map[string]bool)
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("candidates(%s) repeats %s: %v", key, c, cands)
			}
			seen[c] = true
		}
		owner, _ := r.Lookup(key)
		if cands[0] != owner {
			t.Fatalf("candidates(%s)[0] = %s, want the owner %s", key, cands[0], owner)
		}
	}
	if got := r.Candidates("k", 2); len(got) != 2 {
		t.Fatalf("capped candidates = %v, want 2", got)
	}
	empty := NewRing(8)
	if got := empty.Candidates("k", 3); got != nil {
		t.Fatalf("empty ring returned candidates %v", got)
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(16, "a", "b")
	r.Add("a")
	if r.Len() != 2 {
		t.Fatalf("double add changed node count: %d", r.Len())
	}
	pointsPerNode := len(r.points) / 2
	if pointsPerNode != 16 {
		t.Fatalf("points per node = %d, want 16", pointsPerNode)
	}
	r.Remove("c") // unknown
	r.Remove("b")
	r.Remove("b")
	if r.Len() != 1 || len(r.points) != 16 {
		t.Fatalf("after removals: %d nodes, %d points, want 1/16", r.Len(), len(r.points))
	}
}
