package cluster

import (
	"strings"
	"testing"
	"time"

	"net/http/httptest"

	"github.com/reds-go/reds/internal/admission"
	"github.com/reds-go/reds/internal/engine"
)

// startSecuredWorker is startWorker behind the admission middleware with
// an internal secret: /internal/v1/execute only admits requests carrying
// the matching X-Reds-Internal-Secret header. /v1/healthz stays open, so
// the gateway's prober keeps working either way.
func startSecuredWorker(t *testing.T, secret string) *testWorker {
	t.Helper()
	local := engine.NewLocalExecutor(engine.LocalExecutorOptions{})
	eng, err := engine.New(engine.Options{Workers: 1, Executor: local})
	if err != nil {
		t.Fatalf("worker engine: %v", err)
	}
	es := engine.NewExecServer(local, engine.ExecServerOptions{})
	ctrl := admission.New(admission.Options{InternalSecret: secret})
	srv := httptest.NewServer(ctrl.Middleware(engine.NewHandler(eng, engine.WithExecutionAPI(es))))
	w := &testWorker{srv: srv, eng: eng, exec: es}
	t.Cleanup(w.stop)
	return w
}

// startGatewayWithSecret mirrors startGateway but sends the given secret
// on every dispatch (empty: none).
func startGatewayWithSecret(t *testing.T, secret string, workers ...*testWorker) (*engine.Engine, *Dispatcher) {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.srv.URL
	}
	disp, err := NewDispatcher(urls, DispatcherOptions{
		Replicas:       64,
		PollInterval:   5 * time.Millisecond,
		InternalSecret: secret,
		Health:         HealthOptions{Interval: 100 * time.Millisecond, Timeout: time.Second},
	})
	if err != nil {
		t.Fatalf("dispatcher: %v", err)
	}
	t.Cleanup(disp.Close)
	eng, err := engine.New(engine.Options{Workers: 2, Executor: disp})
	if err != nil {
		t.Fatalf("gateway engine: %v", err)
	}
	t.Cleanup(eng.Close)
	return eng, disp
}

// TestClusterInternalSecretEndToEnd runs a job through secret-guarded
// workers with the gateway holding the matching secret: the dispatch
// must be admitted and the job complete normally.
func TestClusterInternalSecretEndToEnd(t *testing.T) {
	const secret = "cluster-hush"
	w1, w2 := startSecuredWorker(t, secret), startSecuredWorker(t, secret)
	gw, _ := startGatewayWithSecret(t, secret, w1, w2)

	id, err := gw.Submit(engine.Request{Dataset: e2eDataset(250, 1), L: 2000, Seed: 5})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap := waitGatewayTerminal(t, gw, id, 120*time.Second)
	if snap.Status != engine.StatusDone {
		t.Fatalf("status = %s (err %q), want done", snap.Status, snap.Error)
	}
}

// TestClusterInternalSecretMismatchFailsLoudly drops the secret on the
// gateway side: the worker refuses the dispatch with 401, and the job
// must fail with a clear misconfiguration message — not get re-routed
// around the fleet (every worker would refuse it the same way) and not
// hang.
func TestClusterInternalSecretMismatchFailsLoudly(t *testing.T) {
	w := startSecuredWorker(t, "cluster-hush")
	gw, _ := startGatewayWithSecret(t, "", w)

	id, err := gw.Submit(engine.Request{Dataset: e2eDataset(250, 1), L: 2000, Seed: 5})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap := waitGatewayTerminal(t, gw, id, 30*time.Second)
	if snap.Status != engine.StatusFailed {
		t.Fatalf("status = %s, want failed", snap.Status)
	}
	if !strings.Contains(snap.Error, "refused the internal secret") {
		t.Fatalf("failure reason %q does not name the secret mismatch", snap.Error)
	}
}
