package funcs

import "math"

// This file holds the functions whose published formulas are implemented
// exactly: the engineering test functions of the Virtual Library of
// Simulation Experiments (Surjanovic & Bingham), the Morris screening
// function (Saltelli et al. 2000), and the paper's own "ellipse" function.
// Inputs arrive in [0,1] and are scaled to native ranges inside Eval.

// Borehole models water flow through a borehole (m3/yr). The formula is
// the published one; its outputs lie in roughly [9, 280], so the paper's
// threshold of 1000 (presumably tied to a differently scaled R
// implementation) is replaced by the empirical 30.9%-quantile 45.34 that
// reproduces the Table 1 positive share.
var Borehole = register(&fn{
	name: "borehole", dim: 8, relevant: relevantAll(8), thr: 45.34,
	eval: func(x []float64) float64 {
		rw := scale(x[0], 0.05, 0.15)
		r := scale(x[1], 100, 50000)
		tu := scale(x[2], 63070, 115600)
		hu := scale(x[3], 990, 1110)
		tl := scale(x[4], 63.1, 116)
		hl := scale(x[5], 700, 820)
		l := scale(x[6], 1120, 1680)
		kw := scale(x[7], 9855, 12045)
		lnr := math.Log(r / rw)
		return 2 * math.Pi * tu * (hu - hl) /
			(lnr * (1 + 2*l*tu/(lnr*rw*rw*kw) + tu/tl))
	},
})

// Hartmann matrices shared by hart3 / hart4 / hart6sc.
var (
	hartAlpha = [4]float64{1.0, 1.2, 3.0, 3.2}

	hart3A = [4][3]float64{
		{3, 10, 30}, {0.1, 10, 35}, {3, 10, 30}, {0.1, 10, 35},
	}
	hart3P = [4][3]float64{
		{0.3689, 0.1170, 0.2673},
		{0.4699, 0.4387, 0.7470},
		{0.1091, 0.8732, 0.5547},
		{0.0381, 0.5743, 0.8828},
	}

	hart6A = [4][6]float64{
		{10, 3, 17, 3.5, 1.7, 8},
		{0.05, 10, 17, 0.1, 8, 14},
		{3, 3.5, 1.7, 10, 17, 8},
		{17, 8, 0.05, 10, 0.1, 14},
	}
	hart6P = [4][6]float64{
		{0.1312, 0.1696, 0.5569, 0.0124, 0.8283, 0.5886},
		{0.2329, 0.4135, 0.8307, 0.3736, 0.1004, 0.9991},
		{0.2348, 0.1451, 0.3522, 0.2883, 0.3047, 0.6650},
		{0.4047, 0.8828, 0.8732, 0.5743, 0.1091, 0.0381},
	}
)

// hartSum evaluates Σ αi exp(-Σ_j Aij (xj-Pij)^2) over the first d columns.
func hartSum(x []float64, d int) float64 {
	s := 0.0
	for i := 0; i < 4; i++ {
		inner := 0.0
		for j := 0; j < d; j++ {
			var a, p float64
			if d == 3 {
				a, p = hart3A[i][j], hart3P[i][j]
			} else {
				a, p = hart6A[i][j], hart6P[i][j]
			}
			diff := x[j] - p
			inner += a * diff * diff
		}
		s += hartAlpha[i] * math.Exp(-inner)
	}
	return s
}

// Hart3 is the standard 3-dimensional Hartmann function.
var Hart3 = register(&fn{
	name: "hart3", dim: 3, relevant: relevantAll(3), thr: -1,
	eval: func(x []float64) float64 { return -hartSum(x, 3) },
})

// Hart4 is the 4-dimensional Hartmann function (Picheny et al. rescaling
// of the first four columns of the 6-D matrices).
var Hart4 = register(&fn{
	name: "hart4", dim: 4, relevant: relevantAll(4), thr: -0.5,
	eval: func(x []float64) float64 {
		return (1.1 - hartSum(x, 4)) / 0.839
	},
})

// Hart6sc is the rescaled 6-dimensional Hartmann function
// f = -(1/1.94)[2.58 + ln(Σ αi exp(...))], the logarithmic form used in
// the metamodeling literature for near-standardized outputs. The paper's
// threshold of 1 does not match this form's output scale, so the
// empirical 22.6%-quantile -0.8075 replaces it to reproduce the Table 1
// positive share.
var Hart6sc = register(&fn{
	name: "hart6sc", dim: 6, relevant: relevantAll(6), thr: -0.8075,
	eval: func(x []float64) float64 {
		s := hartSum(x, 6)
		if s < 1e-300 {
			s = 1e-300
		}
		return -(2.58 + math.Log(s)) / 1.94
	},
})

// Ishigami is the classic sensitivity-analysis function on [-pi, pi]^3.
var Ishigami = register(&fn{
	name: "ishigami", dim: 3, relevant: relevantAll(3), thr: 1,
	eval: func(x []float64) float64 {
		x1 := scale(x[0], -math.Pi, math.Pi)
		x2 := scale(x[1], -math.Pi, math.Pi)
		x3 := scale(x[2], -math.Pi, math.Pi)
		s2 := math.Sin(x2)
		return math.Sin(x1) + 7*s2*s2 + 0.1*math.Pow(x3, 4)*math.Sin(x1)
	},
})

// Linketal06dec is Linkletter et al. 2006's decreasing-coefficients
// function: eight geometrically decaying linear effects, two inert inputs.
var Linketal06dec = register(&fn{
	name: "linketal06dec", dim: 10, relevant: relevantFirst(8, 10), thr: 0.15,
	eval: func(x []float64) float64 {
		s := 0.0
		c := 0.2
		for j := 0; j < 8; j++ {
			s += c * x[j]
			c /= 2
		}
		return s
	},
})

// Linketal06simple is Linkletter et al. 2006's simple function: four equal
// linear effects, six inert inputs.
var Linketal06simple = register(&fn{
	name: "linketal06simple", dim: 10, relevant: relevantFirst(4, 10), thr: 0.33,
	eval: func(x []float64) float64 {
		return 0.2 * (x[0] + x[1] + x[2] + x[3])
	},
})

// OTLCircuit is the output-transformerless push-pull circuit function
// (midpoint voltage, volts).
var OTLCircuit = register(&fn{
	name: "otlcircuit", dim: 6, relevant: relevantAll(6), thr: 4.5,
	eval: func(x []float64) float64 {
		rb1 := scale(x[0], 50, 150)
		rb2 := scale(x[1], 25, 70)
		rf := scale(x[2], 0.5, 3)
		rc1 := scale(x[3], 1.2, 2.5)
		rc2 := scale(x[4], 0.25, 1.2)
		beta := scale(x[5], 50, 300)
		vb1 := 12 * rb2 / (rb1 + rb2)
		bc := beta * (rc2 + 9)
		den := bc + rf
		return (vb1+0.74)*bc/den + 11.35*rf/den + 0.74*rf*bc/(den*rc1)
	},
})

// Piston models the cycle time (seconds) of a piston within a cylinder.
var Piston = register(&fn{
	name: "piston", dim: 7, relevant: relevantAll(7), thr: 0.4,
	eval: func(x []float64) float64 {
		m := scale(x[0], 30, 60)
		s := scale(x[1], 0.005, 0.020)
		v0 := scale(x[2], 0.002, 0.010)
		k := scale(x[3], 1000, 5000)
		p0 := scale(x[4], 90000, 110000)
		ta := scale(x[5], 290, 296)
		t0 := scale(x[6], 340, 360)
		a := p0*s + 19.62*m - k*v0/s
		v := s / (2 * k) * (math.Sqrt(a*a+4*k*p0*v0*ta/t0) - a)
		return 2 * math.Pi * math.Sqrt(m/(k+s*s*p0*v0*ta/(t0*v*v)))
	},
})

// sobolA are the coefficients of the 8-dimensional Sobol' g-function;
// small a means strong influence.
var sobolA = []float64{0, 1, 4.5, 9, 99, 99, 99, 99}

// Sobol is the Sobol' g-function.
var Sobol = register(&fn{
	name: "sobol", dim: 8, relevant: relevantAll(8), thr: 0.7,
	eval: func(x []float64) float64 {
		p := 1.0
		for j, a := range sobolA {
			p *= (math.Abs(4*x[j]-2) + a) / (1 + a)
		}
		return p
	},
})

// Welchetal92 is Welch et al. 1992's 20-dimensional screening function on
// [-0.5, 0.5]^20; inputs 8 and 16 are inert.
var Welchetal92 = register(&fn{
	name: "welchetal92", dim: 20, thr: 0,
	relevant: func() []bool {
		r := relevantAll(20)
		r[7] = false  // x8
		r[15] = false // x16
		return r
	}(),
	eval: func(x []float64) float64 {
		u := make([]float64, 20)
		for j := range u {
			u[j] = x[j] - 0.5
		}
		return 5*u[11]/(1+u[0]) + 5*(u[3]-u[19])*(u[3]-u[19]) + u[4] +
			40*u[18]*u[18]*u[18] - 5*u[18] + 0.05*u[1] + 0.08*u[2] -
			0.03*u[5] + 0.03*u[6] - 0.09*u[8] - 0.01*u[9] - 0.07*u[10] +
			0.25*u[12]*u[12] - 0.04*u[13] + 0.06*u[14] - 0.01*u[16] -
			0.03*u[17]
	},
})

// WingWeight is the light-aircraft wing weight function (pounds).
var WingWeight = register(&fn{
	name: "wingweight", dim: 10, relevant: relevantAll(10), thr: 250,
	eval: func(x []float64) float64 {
		sw := scale(x[0], 150, 200)
		wfw := scale(x[1], 220, 300)
		a := scale(x[2], 6, 10)
		lam := scale(x[3], -10, 10) * math.Pi / 180
		q := scale(x[4], 16, 45)
		taper := scale(x[5], 0.5, 1)
		tc := scale(x[6], 0.08, 0.18)
		nz := scale(x[7], 2.5, 6)
		wdg := scale(x[8], 1700, 2500)
		wp := scale(x[9], 0.025, 0.08)
		cl := math.Cos(lam)
		return 0.036*math.Pow(sw, 0.758)*math.Pow(wfw, 0.0035)*
			math.Pow(a/(cl*cl), 0.6)*math.Pow(q, 0.006)*
			math.Pow(taper, 0.04)*math.Pow(100*tc/cl, -0.3)*
			math.Pow(nz*wdg, 0.49) +
			sw*wp
	},
})

// Morris is the 20-dimensional screening function of Morris (1991) as
// given in Saltelli et al., Sensitivity Analysis (2000). All inputs are
// active; the first ten carry large effects.
var Morris = register(&fn{
	name: "morris", dim: 20, relevant: relevantAll(20), thr: 20,
	eval: func(x []float64) float64 {
		var w [20]float64
		for j := 0; j < 20; j++ {
			switch j {
			case 2, 4, 6: // 1-based inputs 3, 5, 7
				w[j] = 2 * (1.1*x[j]/(x[j]+0.1) - 0.5)
			default:
				w[j] = 2 * (x[j] - 0.5)
			}
		}
		y := 0.0
		// First-order terms.
		for j := 0; j < 20; j++ {
			beta := 0.0
			if j < 10 {
				beta = 20
			} else if (j+1)%2 == 0 { // (-1)^i with 1-based i
				beta = 1
			} else {
				beta = -1
			}
			y += beta * w[j]
		}
		// Second-order terms.
		for i := 0; i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				beta := 0.0
				if i < 6 && j < 6 {
					beta = -15
				} else if (i+j+2)%2 == 0 { // (-1)^(i+j), 1-based
					beta = 1
				} else {
					beta = -1
				}
				y += beta * w[i] * w[j]
			}
		}
		// Third-order terms over the first five inputs.
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				for l := j + 1; l < 5; l++ {
					y += -10 * w[i] * w[j] * w[l]
				}
			}
		}
		// Fourth-order term over the first four inputs.
		y += 5 * w[0] * w[1] * w[2] * w[3]
		return y
	},
})

// ellipse constants: weights within [0,1] as required by the paper,
// centers pushed toward the cube faces so the positive share lands near
// the 22.5% reported in Table 1.
var (
	ellipseW = []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0, 0, 0, 0, 0}
	ellipseC = []float64{0.082, 0.918, 0.148, 0.852, 0.192, 0.808, 0.258, 0.742, 0.302, 0.698, 0.5, 0.5, 0.5, 0.5, 0.5}
)

// Ellipse is the paper's own function f(x) = Σ wj (xj-cj)^2 with wj = 0
// for j > 10.
var Ellipse = register(&fn{
	name: "ellipse", dim: 15, relevant: relevantFirst(10, 15), thr: 0.8,
	eval: func(x []float64) float64 {
		s := 0.0
		for j := 0; j < 15; j++ {
			d := x[j] - ellipseC[j]
			s += ellipseW[j] * d * d
		}
		return s
	},
})
