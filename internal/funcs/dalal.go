package funcs

// This file provides the stochastic classification functions standing in
// for functions 1-8 and 102 of Dalal et al. 2013 (Table 1 rows 1-9). The
// originals are "noisy functions representing stochastic simulations" with
// five inputs, two of which matter (nine of fifteen for #102). Each
// stand-in defines P(y=1|x) directly: a geometric region over the relevant
// inputs with high inside-probability and a small outside-probability, so
// labels are noisy on both sides of the boundary. Region shapes are
// deliberately diverse (half-plane, band, disk, triangle, ellipse,
// L-shape, diagonal band, two boxes, high-dimensional box complement) and
// inside/outside probabilities are calibrated to the Table 1 share column.

// dalal builds a 5-input stochastic function with two relevant inputs.
func dalal(name string, prob func(a, b float64) float64) Function {
	return register(&fn{
		name: name, dim: 5, relevant: relevantFirst(2, 5),
		stochastic: true, thr: nan(),
		eval: func(x []float64) float64 { return prob(x[0], x[1]) },
	})
}

func nan() float64 { return nanValue }

var nanValue = func() float64 {
	var z float64
	return z / z
}()

// F1: soft half-plane a+b < 1 with a linear transition zone. Share ~47.6%.
var F1 = dalal("f1", func(a, b float64) float64 {
	s := a + b
	switch {
	case s < 0.95:
		return 0.95
	case s > 1.05:
		return 0.05
	default:
		return 0.95 - 9*(s-0.95) // ramps 0.95 -> 0.05 over [0.95, 1.05]
	}
})

// F2: vertical band with a ceiling. Share ~25.7%.
var F2 = dalal("f2", func(a, b float64) float64 {
	if a > 0.3 && a < 0.7 && b < 0.6 {
		return 0.9
	}
	return 0.05
})

// F3: small disk. Share ~8.2%.
var F3 = dalal("f3", func(a, b float64) float64 {
	d := (a-0.5)*(a-0.5) + (b-0.5)*(b-0.5)
	if d < 0.18*0.18 {
		return 0.8
	}
	return 0.005
})

// F4: lower-left triangle. Share ~18%.
var F4 = dalal("f4", func(a, b float64) float64 {
	if a+b < 0.62 {
		return 0.9
	}
	return 0.005
})

// F5: flat ellipse. Share ~8%.
var F5 = dalal("f5", func(a, b float64) float64 {
	da := (a - 0.5) / 0.3
	db := (b - 0.5) / 0.12
	if da*da+db*db < 1 {
		return 0.7
	}
	return 0.001
})

// F6: L-shaped region with low purity. Share ~8.1%.
var F6 = dalal("f6", func(a, b float64) float64 {
	if (a < 0.2 && b < 0.5) || (a < 0.5 && b < 0.2) {
		return 0.5
	}
	return 0.001
})

// F7: diagonal band. Share ~35%.
var F7 = dalal("f7", func(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d < 0.28 {
		return 0.7
	}
	return 0.02
})

// F8: two disjoint boxes. Share ~10.9%.
var F8 = dalal("f8", func(a, b float64) float64 {
	in1 := a >= 0.05 && a <= 0.3 && b >= 0.6 && b <= 0.95
	in2 := a >= 0.55 && a <= 0.9 && b >= 0.1 && b <= 0.35
	if in1 || in2 {
		return 0.65
	}
	return 0.005
})

// F102: fifteen inputs, nine relevant; the interesting region is the
// complement of a nine-dimensional box, so most of the space is
// interesting (share ~67.2%).
var F102 = register(&fn{
	name: "f102", dim: 15, relevant: relevantFirst(9, 15),
	stochastic: true, thr: nanValue,
	eval: func(x []float64) float64 {
		inside := true
		for j := 0; j < 9; j++ {
			if x[j] <= 0.25 {
				inside = false
				break
			}
		}
		if inside {
			return 0.03
		}
		return 0.72
	},
})
