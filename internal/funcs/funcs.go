// Package funcs implements the data sources of Table 1 of the paper: the
// analytic test functions from the metamodeling literature, the paper's own
// "ellipse" function, and the stochastic classification functions standing
// in for Dalal et al. 2013 functions 1-8 and 102. Each function maps the
// unit cube [0,1]^M to a raw output (deterministic functions) or directly
// to P(y=1|x) (stochastic functions); binarization follows the paper's
// convention y = 1 iff output < threshold.
//
// Functions whose published formulas we verified are implemented exactly
// (borehole, hart3, hart4, hart6sc, ishigami, linketal06dec,
// linketal06simple, morris, sobol, otlcircuit, piston, welchetal92,
// wingweight, ellipse). The remaining ones are structurally faithful
// stand-ins with the same dimensionality, the same number of relevant
// inputs and a threshold calibrated to approximately the positive share of
// Table 1; see DESIGN.md section 5.
package funcs

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/sample"
)

// Function is a simulation-model stand-in defined on the unit cube.
type Function interface {
	// Name returns the identifier used in Table 1.
	Name() string
	// Dim returns the number of inputs M.
	Dim() int
	// Relevant returns the mask of inputs that influence the output
	// (ground truth for the #irrel metric). Its length equals Dim.
	Relevant() []bool
	// Stochastic reports whether Eval returns P(y=1|x) rather than a raw
	// deterministic output.
	Stochastic() bool
	// Eval evaluates the model at a point of the unit cube.
	Eval(x []float64) float64
	// Threshold returns the binarization threshold thr (y=1 iff raw < thr).
	// Stochastic functions return NaN.
	Threshold() float64
}

// Label draws the binary outcome of one simulation run at x. Deterministic
// functions threshold their output; stochastic ones flip a coin with
// probability Eval(x).
func Label(f Function, x []float64, rng *rand.Rand) float64 {
	v := f.Eval(x)
	if f.Stochastic() {
		if rng.Float64() < v {
			return 1
		}
		return 0
	}
	if v < f.Threshold() {
		return 1
	}
	return 0
}

// Prob returns P(y=1|x): Eval for stochastic functions, a 0/1 indicator
// for deterministic ones.
func Prob(f Function, x []float64) float64 {
	v := f.Eval(x)
	if f.Stochastic() {
		return v
	}
	if v < f.Threshold() {
		return 1
	}
	return 0
}

// Generate samples n points with s and labels them by running the
// simulation model once per point, exactly like step (1)-(2) of the
// conventional scenario-discovery process.
func Generate(f Function, n int, s sample.Sampler, rng *rand.Rand) *dataset.Dataset {
	pts := s.Sample(n, f.Dim(), rng)
	y := make([]float64, n)
	for i, x := range pts {
		y[i] = Label(f, x, rng)
	}
	return &dataset.Dataset{X: pts, Y: y}
}

// Share estimates the positive share E[y] by Monte Carlo with n uniform
// points.
func Share(f Function, n int, rng *rand.Rand) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		x := make([]float64, f.Dim())
		for j := range x {
			x[j] = rng.Float64()
		}
		s += Label(f, x, rng)
	}
	return s / float64(n)
}

// scale maps u in [0,1] to [lo, hi].
func scale(u, lo, hi float64) float64 { return lo + u*(hi-lo) }

// relevantAll returns an all-true mask of length m.
func relevantAll(m int) []bool {
	r := make([]bool, m)
	for i := range r {
		r[i] = true
	}
	return r
}

// relevantFirst returns a mask with the first k of m inputs relevant.
func relevantFirst(k, m int) []bool {
	r := make([]bool, m)
	for i := 0; i < k; i++ {
		r[i] = true
	}
	return r
}

// fn is the common implementation of Function used by all the analytic
// functions in this package.
type fn struct {
	name       string
	dim        int
	relevant   []bool
	stochastic bool
	thr        float64
	eval       func(x []float64) float64
}

func (f *fn) Name() string       { return f.name }
func (f *fn) Dim() int           { return f.dim }
func (f *fn) Relevant() []bool   { return f.relevant }
func (f *fn) Stochastic() bool   { return f.stochastic }
func (f *fn) Threshold() float64 { return f.thr }
func (f *fn) Eval(x []float64) float64 {
	if len(x) != f.dim {
		panic(fmt.Sprintf("funcs: %s expects %d inputs, got %d", f.name, f.dim, len(x)))
	}
	return f.eval(x)
}

var registry = map[string]Function{}
var registryOrder []string

func register(f Function) Function {
	if _, dup := registry[f.Name()]; dup {
		panic("funcs: duplicate function " + f.Name())
	}
	registry[f.Name()] = f
	registryOrder = append(registryOrder, f.Name())
	return f
}

// Get returns the registered function with the given Table 1 name.
func Get(name string) (Function, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("funcs: unknown function %q", name)
	}
	return f, nil
}

// Names returns all registered function names in registration order.
func Names() []string {
	out := append([]string(nil), registryOrder...)
	return out
}

// All returns all registered functions sorted by name for deterministic
// iteration.
func All() []Function {
	names := Names()
	sort.Strings(names)
	out := make([]Function, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}
