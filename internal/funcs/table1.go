package funcs

// Meta describes a Table 1 row: dimensionality, number of relevant inputs
// and the expected positive share (percent) under uniform inputs as
// reported in the paper.
type Meta struct {
	Name     string
	M        int
	I        int
	SharePct float64
	// Exact is true when the published formula is implemented verbatim;
	// false marks the documented stand-ins of DESIGN.md section 5.
	Exact bool
}

// Table1 lists the analytic functions of this package in paper order
// (dsgc, TGL and lake live in their own packages).
var Table1 = []Meta{
	{"f1", 5, 2, 47.6, false},
	{"f2", 5, 2, 25.7, false},
	{"f3", 5, 2, 8.2, false},
	{"f4", 5, 2, 18, false},
	{"f5", 5, 2, 8, false},
	{"f6", 5, 2, 8.1, false},
	{"f7", 5, 2, 35, false},
	{"f8", 5, 2, 10.9, false},
	{"f102", 15, 9, 67.2, false},
	{"borehole", 8, 8, 30.9, true},
	{"ellipse", 15, 10, 22.5, true},
	{"hart3", 3, 3, 33.5, true},
	{"hart4", 4, 4, 30.1, true},
	{"hart6sc", 6, 6, 22.6, true},
	{"ishigami", 3, 3, 25.5, true},
	{"linketal06dec", 10, 8, 25.3, true},
	{"linketal06simple", 10, 4, 28.5, true},
	{"linketal06sin", 10, 2, 27.2, false},
	{"loepetal13", 10, 7, 38.9, false},
	{"moon10hd", 20, 20, 42.1, false},
	{"moon10hdc1", 20, 5, 34.2, false},
	{"moon10low", 3, 3, 45.6, false},
	{"morretal06", 30, 10, 34.5, false},
	{"morris", 20, 20, 30.1, true},
	{"oakoh04", 15, 15, 24.9, false},
	{"otlcircuit", 6, 6, 22.5, true},
	{"piston", 7, 7, 36.8, true},
	{"soblev99", 20, 19, 41.3, false},
	{"sobol", 8, 8, 39.2, true},
	{"welchetal92", 20, 18, 35.6, true},
	{"willetal06", 3, 2, 24.9, false},
	{"wingweight", 10, 10, 37.8, true},
}
