package funcs

import (
	"math"
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/sample"
)

func TestRegistryCoversTable1(t *testing.T) {
	for _, m := range Table1 {
		f, err := Get(m.Name)
		if err != nil {
			t.Errorf("missing function %q", m.Name)
			continue
		}
		if f.Dim() != m.M {
			t.Errorf("%s: Dim = %d, want %d", m.Name, f.Dim(), m.M)
		}
		rel := 0
		for _, r := range f.Relevant() {
			if r {
				rel++
			}
		}
		if rel != m.I {
			t.Errorf("%s: relevant inputs = %d, want %d", m.Name, rel, m.I)
		}
		if len(f.Relevant()) != f.Dim() {
			t.Errorf("%s: relevance mask length %d != dim %d", m.Name, len(f.Relevant()), f.Dim())
		}
	}
	if len(Table1) != 32 {
		t.Errorf("Table1 has %d analytic rows, want 32", len(Table1))
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-function"); err == nil {
		t.Error("Get must fail for unknown names")
	}
}

// TestSharesMatchTable1 Monte-Carlo-estimates the positive share of every
// function and compares it with the paper's share column. Verified
// formulas must land close; stand-ins get a wider band (they were
// calibrated, not copied).
func TestSharesMatchTable1(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, m := range Table1 {
		f, err := Get(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		got := 100 * Share(f, 20000, rng)
		tol := 6.0
		if !m.Exact {
			tol = 9.0
		}
		if math.Abs(got-m.SharePct) > tol {
			t.Errorf("%s: share = %.1f%%, want %.1f%% (±%.0f)", m.Name, got, m.SharePct, tol)
		}
	}
}

func TestDeterministicFunctionsAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range All() {
		if f.Stochastic() {
			continue
		}
		x := make([]float64, f.Dim())
		for j := range x {
			x[j] = rng.Float64()
		}
		if f.Eval(x) != f.Eval(x) {
			t.Errorf("%s: Eval not deterministic", f.Name())
		}
		// Deterministic labels must not depend on the RNG.
		l1 := Label(f, x, rand.New(rand.NewSource(1)))
		l2 := Label(f, x, rand.New(rand.NewSource(99)))
		if l1 != l2 {
			t.Errorf("%s: deterministic label depends on RNG", f.Name())
		}
	}
}

func TestStochasticEvalIsProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, f := range All() {
		if !f.Stochastic() {
			continue
		}
		if !math.IsNaN(f.Threshold()) {
			t.Errorf("%s: stochastic function should have NaN threshold", f.Name())
		}
		for i := 0; i < 200; i++ {
			x := make([]float64, f.Dim())
			for j := range x {
				x[j] = rng.Float64()
			}
			p := f.Eval(x)
			if p < 0 || p > 1 {
				t.Fatalf("%s: Eval(%v) = %g not a probability", f.Name(), x, p)
			}
			if got := Prob(f, x); got != p {
				t.Fatalf("%s: Prob != Eval for stochastic function", f.Name())
			}
		}
	}
}

func TestProbMatchesLabelForDeterministic(t *testing.T) {
	f := Borehole
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		x := make([]float64, f.Dim())
		for j := range x {
			x[j] = rng.Float64()
		}
		p := Prob(f, x)
		l := Label(f, x, rng)
		if p != l {
			t.Fatalf("Prob = %g but Label = %g at %v", p, l, x)
		}
	}
}

func TestIrrelevantInputsHaveNoEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, f := range All() {
		rel := f.Relevant()
		x := make([]float64, f.Dim())
		for j := range x {
			x[j] = rng.Float64()
		}
		base := f.Eval(x)
		for j, r := range rel {
			if r {
				continue
			}
			old := x[j]
			x[j] = rng.Float64()
			if got := f.Eval(x); got != base {
				t.Errorf("%s: irrelevant input %d changed output %g -> %g", f.Name(), j, base, got)
			}
			x[j] = old
		}
	}
}

func TestRelevantInputsHaveEffect(t *testing.T) {
	// Probing at several base points: a relevant input must change the
	// output somewhere.
	rng := rand.New(rand.NewSource(5))
	for _, f := range All() {
		rel := f.Relevant()
		for j, r := range rel {
			if !r {
				continue
			}
			changed := false
			// Structured probes catch box-shaped regions where random
			// probing rarely crosses the boundary.
			for _, base := range []float64{0.5, 0.15, 0.85} {
				x := make([]float64, f.Dim())
				for k := range x {
					x[k] = base
				}
				v0 := f.Eval(x)
				for _, alt := range []float64{0.02, 0.98} {
					x[j] = alt
					if f.Eval(x) != v0 {
						changed = true
					}
				}
				if changed {
					break
				}
			}
			for trial := 0; trial < 100 && !changed; trial++ {
				x := make([]float64, f.Dim())
				for k := range x {
					x[k] = rng.Float64()
				}
				base := f.Eval(x)
				x[j] = rng.Float64()
				if f.Eval(x) != base {
					changed = true
				}
			}
			if !changed {
				t.Errorf("%s: input %d marked relevant but no effect found", f.Name(), j)
			}
		}
	}
}

func TestGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := Generate(Borehole, 128, sample.LatinHypercube{}, rng)
	if d.N() != 128 || d.M() != 8 {
		t.Fatalf("shape %dx%d", d.N(), d.M())
	}
	for _, y := range d.Y {
		if y != 0 && y != 1 {
			t.Fatalf("label %g not binary", y)
		}
	}
	if s := d.PositiveShare(); s == 0 || s == 1 {
		t.Errorf("degenerate share %g", s)
	}
}

func TestKnownValues(t *testing.T) {
	// Sobol g-function at the center: |4*0.5-2| = 0 so every factor is
	// a/(1+a); for a=0 the factor is 0, hence f = 0.
	x := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	if v := Sobol.Eval(x); v != 0 {
		t.Errorf("sobol center = %g, want 0", v)
	}
	// Ishigami at the center (all native inputs 0): f = 0.
	if v := Ishigami.Eval([]float64{0.5, 0.5, 0.5}); math.Abs(v) > 1e-12 {
		t.Errorf("ishigami center = %g, want 0", v)
	}
	// Morris at the all-0.5 point: w = 0 for the linear dims, small for
	// dims 3,5,7 (w = 2(1.1*0.5/0.6 - 0.5) = 5/6).
	v := Morris.Eval(func() []float64 {
		x := make([]float64, 20)
		for i := range x {
			x[i] = 0.5
		}
		return x
	}())
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("morris center not finite: %g", v)
	}
	// Hartmann-3 is negative everywhere (negated sum of positives).
	if v := Hart3.Eval([]float64{0.1, 0.2, 0.3}); v >= 0 {
		t.Errorf("hart3 = %g, want negative", v)
	}
	// Borehole output is positive.
	xb := make([]float64, 8)
	for i := range xb {
		xb[i] = 0.5
	}
	if v := Borehole.Eval(xb); v <= 0 {
		t.Errorf("borehole = %g, want positive", v)
	}
}

func TestGaussInvClipping(t *testing.T) {
	if v := gaussInv(0); v != -3.5 {
		t.Errorf("gaussInv(0) = %g", v)
	}
	if v := gaussInv(1); v != 3.5 {
		t.Errorf("gaussInv(1) = %g", v)
	}
	if v := gaussInv(0.5); math.Abs(v) > 1e-12 {
		t.Errorf("gaussInv(0.5) = %g, want 0", v)
	}
	// Monotone.
	if !(gaussInv(0.2) < gaussInv(0.4) && gaussInv(0.4) < gaussInv(0.8)) {
		t.Error("gaussInv not monotone")
	}
}

func TestEvalPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval with wrong dim must panic")
		}
	}()
	Borehole.Eval([]float64{0.5})
}
