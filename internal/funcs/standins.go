package funcs

import (
	"math"
	"math/rand"
)

// This file holds structurally faithful stand-ins for the Table 1
// functions whose exact published constants we could not verify offline
// (DESIGN.md section 5 documents each substitution). Every stand-in keeps
// the dimensionality M, the relevant-input count I and the threshold of
// Table 1, and its constants are calibrated so the Monte-Carlo positive
// share lands close to the paper's "share" column.

// Linketal06sin stands in for Linkletter et al. 2006's sine function:
// two active inputs out of ten, a trigonometric response, thr = 0.
var Linketal06sin = register(&fn{
	name: "linketal06sin", dim: 10, relevant: relevantFirst(2, 10), thr: 0,
	eval: func(x []float64) float64 {
		return math.Sin(2*math.Pi*x[0]) + math.Sin(2*math.Pi*x[1]) + 0.62
	},
})

// Willetal06 stands in for Williams et al. 2006: a smooth bump over two of
// three inputs, thr = -1.
var Willetal06 = register(&fn{
	name: "willetal06", dim: 3, relevant: relevantFirst(2, 3), thr: -1,
	eval: func(x []float64) float64 {
		d := (x[0]-0.4)*(x[0]-0.4) + (x[1]-0.6)*(x[1]-0.6)
		return -1.5 * math.Exp(-5*d)
	},
})

// Loepetal13 stands in for Loeppky et al. 2013: three strong linear
// effects with pairwise interactions plus four weak effects, three inert
// inputs.
var Loepetal13 = register(&fn{
	name: "loepetal13", dim: 10, relevant: relevantFirst(7, 10), thr: 9,
	eval: func(x []float64) float64 {
		return 6*x[0] + 4*x[1] + 5.5*x[2] +
			3*x[0]*x[1] + 2.2*x[0]*x[2] + 1.4*x[1]*x[2] +
			0.5*x[3] + 0.2*x[4] + 0.1*x[5] + 0.05*x[6]
	},
})

// Moon10low stands in for Moon 2010's low-dimensional function: three
// active inputs with one interaction.
var Moon10low = register(&fn{
	name: "moon10low", dim: 3, relevant: relevantAll(3), thr: 1.5,
	eval: func(x []float64) float64 {
		return x[0] + x[1] + x[2] + 0.3*x[0]*x[1]
	},
})

// Moon10hd stands in for Moon 2010's high-dimensional function: twenty
// active linear effects with linearly decaying weights.
var Moon10hd = register(&fn{
	name: "moon10hd", dim: 20, relevant: relevantAll(20), thr: 0,
	eval: func(x []float64) float64 {
		s := 0.31
		for j := 0; j < 20; j++ {
			s += (float64(21-j-1) / 10) * (x[j] - 0.5)
		}
		return s
	},
})

// Moon10hdc1 stands in for the Moon 2010 variant with only five of twenty
// inputs active.
var Moon10hdc1 = register(&fn{
	name: "moon10hdc1", dim: 20, relevant: relevantFirst(5, 20), thr: 0,
	eval: func(x []float64) float64 {
		return 2*(x[0]-0.5) + 1.6*(x[1]-0.5) + 1.2*(x[2]-0.5) +
			0.8*(x[3]-0.5) + 0.4*(x[4]-0.5) +
			1.5*(x[0]-0.5)*(x[1]-0.5) + 0.35
	},
})

// Morretal06 stands in for Morris et al. 2006: ten active inputs of thirty
// with negative main effects and pairwise interactions.
var Morretal06 = register(&fn{
	name: "morretal06", dim: 30, relevant: relevantFirst(10, 30), thr: -330,
	eval: func(x []float64) float64 {
		lin := 0.0
		for j := 0; j < 10; j++ {
			lin += x[j]
		}
		inter := 0.0
		for i := 0; i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				inter += x[i] * x[j]
			}
		}
		return -45*lin - 8*inter
	},
})

// soblev99B are geometrically decaying Sobol-Levitan exponents; the last
// input is inert (19 of 20 active, matching Table 1).
var soblev99B = []float64{
	3.0, 2.5, 2.0, 1.5, 1.2, 1.0, 0.8, 0.6, 0.5, 0.4,
	0.3, 0.25, 0.2, 0.15, 0.1, 0.08, 0.05, 0.03, 0.02, 0,
}

// soblev99I0 is E[exp(Σ bj xj)] = Π (e^bj - 1)/bj over the nonzero b.
var soblev99I0 = func() float64 {
	p := 1.0
	for _, b := range soblev99B {
		if b == 0 {
			continue
		}
		p *= (math.Exp(b) - 1) / b
	}
	return p
}()

// Soblev99 stands in for the Sobol & Levitan 1999 function
// exp(Σ bj xj) - I0 + c0 with decaying exponents and a calibration
// constant c0.
var Soblev99 = register(&fn{
	name: "soblev99", dim: 20, relevant: relevantFirst(19, 20), thr: 2000,
	eval: func(x []float64) float64 {
		s := 0.0
		for j, b := range soblev99B {
			s += b * x[j]
		}
		return math.Exp(s) - soblev99I0 + 5100
	},
})

// oakoh04 coefficients, generated once from a fixed seed so that the
// function has the published structure a1'u + a2' sin(u) + a3' cos(u) +
// u' M u over near-Gaussian inputs with mixed effect sizes.
var oakA1, oakA2, oakA3 []float64
var oakM [][]float64

func init() {
	rng := rand.New(rand.NewSource(20040415)) // Oakley & O'Hagan 2004
	draw := func() []float64 {
		a := make([]float64, 15)
		for j := range a {
			switch {
			case j < 5:
				a[j] = 0.05 + 0.1*rng.Float64() // weak
			case j < 10:
				a[j] = 0.3 + 0.4*rng.Float64() // moderate
			default:
				a[j] = 0.8 + 0.6*rng.Float64() // strong
			}
			if rng.Intn(2) == 0 {
				a[j] = -a[j]
			}
		}
		return a
	}
	oakA1, oakA2, oakA3 = draw(), draw(), draw()
	oakM = make([][]float64, 15)
	for i := range oakM {
		row := make([]float64, 15)
		for j := range row {
			row[j] = 0.1 * rng.NormFloat64()
		}
		oakM[i] = row
	}
}

// gaussInv maps u in (0,1) to a standard normal quantile via the inverse
// error function, clipped to +-3.5 at the extremes.
func gaussInv(u float64) float64 {
	if u <= 0 {
		return -3.5
	}
	if u >= 1 {
		return 3.5
	}
	z := math.Sqrt2 * math.Erfinv(2*u-1)
	if z < -3.5 {
		return -3.5
	}
	if z > 3.5 {
		return 3.5
	}
	return z
}

// Oakoh04 stands in for the Oakley & O'Hagan 2004 function: fifteen
// Gaussian inputs, linear + trigonometric + quadratic-form response.
var Oakoh04 = register(&fn{
	name: "oakoh04", dim: 15, relevant: relevantAll(15), thr: 10,
	eval: func(x []float64) float64 {
		u := make([]float64, 15)
		for j := range u {
			u[j] = gaussInv(x[j])
		}
		s := 11.38 // calibration offset for the Table 1 share
		for j := 0; j < 15; j++ {
			s += oakA1[j]*u[j] + oakA2[j]*math.Sin(u[j]) + oakA3[j]*math.Cos(u[j])
		}
		for i := 0; i < 15; i++ {
			for j := 0; j < 15; j++ {
				s += u[i] * oakM[i][j] * u[j]
			}
		}
		return s
	},
})
