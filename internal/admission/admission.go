// Package admission is the front door of both REDS binaries: it decides
// — before a request reaches the engine — who the caller is (bearer
// tokens mapping to client IDs with roles), whether they may call this
// route (submit / read / admin, plus a shared secret for the internal
// gateway→worker API), how fast they may submit (per-client token
// buckets and an in-flight job cap), and how large a job they may ask
// for (ceilings on L, N, the variant grid, train_bins, body size and
// runtime).
//
// The package is deliberately engine-agnostic: it knows HTTP routes and
// client identities, not jobs. The engine's API handler pulls the caps
// and the in-flight accounting in through an option (engine.
// WithAdmission), and both binaries wrap their handler as
//
//	telemetry.Instrument(ctrl.Middleware(handler), reg, logger)
//
// so rejected requests still get request IDs, access logs and the
// reds_http_* series, while the admission decision lands in its own
// reds_admission_* families.
//
// Everything is opt-in for compatibility: with no token file every
// caller is the "anonymous" client with all roles, with no quota flags
// nothing is throttled, and with no secret the internal API stays open.
package admission

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/reds-go/reds/internal/telemetry"
)

// InternalSecretHeader carries the shared gateway↔worker secret on
// /internal/v1 requests. Workers started with -internal.secret refuse
// internal calls without it, closing the open gateway→worker path.
const InternalSecretHeader = "X-Reds-Internal-Secret"

// AnonymousClient is the client ID used when authentication is
// disabled (no token file): quotas and in-flight accounting still
// apply, to one shared identity.
const AnonymousClient = "anonymous"

// InternalClient is the client ID assigned to callers presenting the
// internal shared secret (the gateway's dispatcher, fan-out listings
// and probes). It carries every role and is exempt from quotas — the
// gateway's own engine queue is its backpressure.
const InternalClient = "internal"

// Rejection reasons, used as the "reason" label of
// reds_admission_rejected_total and mirrored in error-envelope codes.
const (
	ReasonUnauthorized  = "unauthorized"
	ReasonForbidden     = "forbidden"
	ReasonRateLimited   = "rate_limited"
	ReasonInflightLimit = "inflight_limit"
	ReasonQueueFull     = "queue_full"
	ReasonBodyTooLarge  = "body_too_large"
	ReasonLimitExceeded = "limit_exceeded"
)

// Caps are server-side ceilings on what one job may ask for, enforced
// at submission so oversized work is rejected before it costs anything.
// Zero values disable the individual cap.
type Caps struct {
	// MaxL caps the pseudo-label sample size (after the engine default
	// is applied, so omitting l does not bypass the cap).
	MaxL int
	// MaxN caps the training-set size: the simulation count of function
	// requests and the row count of inline datasets.
	MaxN int
	// MaxVariants caps the metamodel × SD grid — the number of
	// concurrent sub-tasks one job fans out into.
	MaxVariants int
	// MaxTrainBins caps the per-feature bin budget of binned training.
	MaxTrainBins int
	// MaxBodyBytes caps the request body of job submissions
	// (http.MaxBytesReader; the handler maps the trip to 413).
	MaxBodyBytes int64
	// MaxRuntime bounds every job's wall-clock execution budget: it is
	// the ceiling for the request's deadline_seconds field and the
	// default deadline when a request sets none.
	MaxRuntime time.Duration
}

// Options configure a Controller.
type Options struct {
	// Tokens is the bearer-token store; nil disables authentication
	// (every caller becomes AnonymousClient with all roles).
	Tokens *TokenStore
	// RPS and Burst are the default per-client submission rate (token
	// bucket; per-client overrides in the token file win). RPS <= 0
	// disables rate limiting for clients without an override.
	RPS   float64
	Burst int
	// MaxInFlight is the default per-client cap on jobs that are
	// submitted but not yet terminal. 0 disables the cap for clients
	// without an override.
	MaxInFlight int
	// Caps are the resource ceilings enforced at submission.
	Caps Caps
	// InternalSecret guards /internal/v1: when set, internal calls must
	// carry it in InternalSecretHeader, and any caller presenting it is
	// the InternalClient with full roles. Empty leaves the internal API
	// open (single-tenant compatibility).
	InternalSecret string
	// Metrics receives the reds_admission_* instruments. nil gets a
	// private registry.
	Metrics *telemetry.Registry
	// Logger receives admission rejections at warn level. nil uses
	// slog.Default().
	Logger *slog.Logger
}

// Controller evaluates admission for every request: identity, roles,
// rate, in-flight budget and resource caps. All methods are safe for
// concurrent use.
type Controller struct {
	tokens      *TokenStore
	limiter     *Limiter
	rps         float64
	burst       int
	maxInFlight int
	caps        Caps
	secret      string
	log         *slog.Logger

	mAllowed  *telemetry.CounterVec
	mRejected *telemetry.CounterVec
	inflight  *inflightTable
}

// New builds a Controller. A zero Options value admits everything —
// each control arms only when its option is set.
func New(opts Options) *Controller {
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Controller{
		tokens:      opts.Tokens,
		limiter:     NewLimiter(),
		rps:         opts.RPS,
		burst:       opts.Burst,
		maxInFlight: opts.MaxInFlight,
		caps:        opts.Caps,
		secret:      opts.InternalSecret,
		log:         logger,
		mAllowed: reg.CounterVec("reds_admission_allowed_total",
			"Requests admitted past authentication, authorization and quota checks.", "client"),
		mRejected: reg.CounterVec("reds_admission_rejected_total",
			"Requests rejected by admission control, by reason (unauthorized, forbidden, rate_limited, inflight_limit, queue_full, body_too_large, limit_exceeded).",
			"client", "reason"),
		inflight: newInflightTable(reg.GaugeVec("reds_admission_inflight_jobs",
			"Jobs submitted but not yet terminal, per client.", "client")),
	}
}

// Caps returns the resource ceilings for submission-time validation.
func (c *Controller) Caps() Caps { return c.caps }

// AuthEnabled reports whether bearer-token authentication is armed.
func (c *Controller) AuthEnabled() bool { return c.tokens != nil }

// ReloadTokens re-reads the token file (SIGHUP handler). A no-op
// without a token store.
func (c *Controller) ReloadTokens() error {
	if c.tokens == nil {
		return nil
	}
	return c.tokens.Reload()
}

// RecordRejected counts a rejection that was decided outside the
// middleware (caps, in-flight, queue-full and body-size trips happen in
// the engine's submit handler, which knows the job).
func (c *Controller) RecordRejected(client, reason string) {
	if client == "" {
		client = AnonymousClient
	}
	c.mRejected.With(client, reason).Inc()
}

// AcquireJob reserves one in-flight job slot for the client. It returns
// a release function to call exactly once when the job reaches a
// terminal state (the engine's OnDone hook), or retryAfter > 0 when the
// client is at its cap. The internal client is exempt.
//
// The accounting is process-local: a restart resets it (jobs recovered
// from a durable store do not re-occupy their submitter's slots).
func (c *Controller) AcquireJob(client string) (release func(), retryAfter time.Duration) {
	if client == "" {
		client = AnonymousClient
	}
	limit := c.maxInFlight
	if c.tokens != nil {
		if id, ok := c.tokens.client(client); ok && id.MaxInFlight > 0 {
			limit = id.MaxInFlight
		}
	}
	if client == InternalClient {
		limit = 0
	}
	ok, release := c.inflight.acquire(client, limit)
	if !ok {
		c.RecordRejected(client, ReasonInflightLimit)
		return nil, time.Second
	}
	return release, 0
}

// quotaFor resolves the effective rate-limit parameters for a client:
// the token file's per-client override when present, the controller's
// defaults otherwise.
func (c *Controller) quotaFor(ident Identity) (rps float64, burst int) {
	rps, burst = c.rps, c.burst
	if ident.RPS > 0 {
		rps = ident.RPS
	}
	if ident.Burst > 0 {
		burst = ident.Burst
	}
	if burst <= 0 {
		burst = int(math.Ceil(rps))
		if burst < 1 {
			burst = 1
		}
	}
	return rps, burst
}

// CheckDeadline validates and defaults a request's deadline against
// MaxRuntime: a deadline above the ceiling is an error, and a request
// without one inherits the ceiling (so the bound travels with the
// serialized request to whichever worker executes it). It returns the
// effective deadline_seconds value.
func (c *Controller) CheckDeadline(deadlineSeconds float64) (float64, error) {
	max := c.caps.MaxRuntime
	if max <= 0 {
		return deadlineSeconds, nil
	}
	if deadlineSeconds > max.Seconds() {
		return 0, fmt.Errorf("deadline_seconds %g exceeds the server's -job.max-runtime of %gs", deadlineSeconds, max.Seconds())
	}
	if deadlineSeconds == 0 {
		return max.Seconds(), nil
	}
	return deadlineSeconds, nil
}

// clientKey is the context key carrying the authenticated client ID.
type clientKey struct{}

// ClientFrom returns the authenticated client ID the middleware put on
// the request context ("" when the request did not pass through the
// middleware).
func ClientFrom(ctx context.Context) string {
	s, _ := ctx.Value(clientKey{}).(string)
	return s
}

// routeClass is what the middleware decided a path needs.
type routeClass int

const (
	routeOpen     routeClass = iota // health, readiness, metrics
	routeSubmit                     // POST /v1/jobs — submit role + rate limit + body cap
	routeCancel                     // DELETE /v1/jobs/{id} — submit role
	routeRead                       // other /v1 GETs — read role
	routeInternal                   // /internal/v1/execute* — shared secret
	routeAdmin                      // /internal/v1/workers — admin role (or secret)
)

// classify maps method+path to a route class. Unknown paths are treated
// as reads: they 404 downstream, but only for authenticated callers —
// the router must not be a probe surface.
func classify(r *http.Request) routeClass {
	p := r.URL.Path
	switch {
	case p == "/v1/healthz" || p == "/v1/readyz" || p == "/metrics":
		return routeOpen
	case strings.HasPrefix(p, "/internal/v1/execute"):
		return routeInternal
	case strings.HasPrefix(p, "/internal/v1/workers"):
		return routeAdmin
	case r.Method == http.MethodPost && p == "/v1/jobs":
		return routeSubmit
	case r.Method == http.MethodDelete && strings.HasPrefix(p, "/v1/jobs/"):
		return routeCancel
	default:
		return routeRead
	}
}

// roleFor is the role a route class demands from bearer-token callers.
func roleFor(class routeClass) string {
	switch class {
	case routeSubmit, routeCancel:
		return RoleSubmit
	case routeAdmin:
		return RoleAdmin
	default:
		return RoleRead
	}
}

// hasSecret reports whether the request carries the internal shared
// secret. Constant-time comparison: the header is an authentication
// credential.
func (c *Controller) hasSecret(r *http.Request) bool {
	if c.secret == "" {
		return false
	}
	got := r.Header.Get(InternalSecretHeader)
	return len(got) == len(c.secret) &&
		subtle.ConstantTimeCompare([]byte(got), []byte(c.secret)) == 1
}

// Middleware enforces admission in front of a /v1 (+ /internal/v1)
// handler:
//
//   - health, readiness and metrics stay open;
//   - /internal/v1/execute requires the shared secret (when configured);
//   - /internal/v1/workers requires the admin role or the secret;
//   - POST /v1/jobs requires the submit role, passes the per-client
//     token bucket, and has its body bounded by Caps.MaxBodyBytes;
//   - DELETE /v1/jobs/{id} requires the submit role;
//   - every other /v1 route requires the read role.
//
// The authenticated client ID lands on the request context (ClientFrom)
// for owner stamping and per-client accounting downstream. Rejections
// use the same JSON error envelope as the API and are counted in
// reds_admission_rejected_total.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class := classify(r)
		if class == routeOpen {
			next.ServeHTTP(w, r)
			return
		}

		// Identity: the internal secret outranks bearer tokens (the
		// gateway authenticates to workers with it for execution, job
		// fan-out and admin probes alike).
		ident := Identity{Client: AnonymousClient, Roles: allRoles()}
		switch {
		case c.hasSecret(r):
			ident = Identity{Client: InternalClient, Roles: allRoles()}
		case class == routeInternal && c.secret != "":
			// The execute API is machine-to-machine: only the secret
			// admits, tokens do not.
			c.reject(w, r, http.StatusUnauthorized, ReasonUnauthorized,
				AnonymousClient, fmt.Errorf("missing or wrong %s header", InternalSecretHeader))
			return
		case c.tokens != nil:
			tok, ok := bearerToken(r)
			if !ok {
				c.reject(w, r, http.StatusUnauthorized, ReasonUnauthorized,
					AnonymousClient, fmt.Errorf("missing bearer token (Authorization: Bearer ...)"))
				return
			}
			ident, ok = c.tokens.Lookup(tok)
			if !ok {
				c.reject(w, r, http.StatusUnauthorized, ReasonUnauthorized,
					AnonymousClient, fmt.Errorf("unknown token"))
				return
			}
		}

		if role := roleFor(class); !ident.Roles[role] {
			c.reject(w, r, http.StatusForbidden, ReasonForbidden, ident.Client,
				fmt.Errorf("client %s lacks the %s role", ident.Client, role))
			return
		}

		if class == routeSubmit && ident.Client != InternalClient {
			if rps, burst := c.quotaFor(ident); rps > 0 {
				if ok, retryAfter := c.limiter.Allow(ident.Client, rps, burst); !ok {
					w.Header().Set("Retry-After", retryAfterHeader(retryAfter))
					c.rejectAfter(w, r, http.StatusTooManyRequests, ReasonRateLimited,
						ident.Client, retryAfter,
						fmt.Errorf("client %s is over its %g req/s submission rate", ident.Client, rps))
					return
				}
			}
		}
		if class == routeSubmit && c.caps.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, c.caps.MaxBodyBytes)
		}

		c.mAllowed.With(ident.Client).Inc()
		next.ServeHTTP(w, r.WithContext(
			context.WithValue(r.Context(), clientKey{}, ident.Client)))
	})
}

// reject writes the API error envelope and counts the rejection.
func (c *Controller) reject(w http.ResponseWriter, r *http.Request, status int, reason, client string, err error) {
	c.rejectAfter(w, r, status, reason, client, 0, err)
}

func (c *Controller) rejectAfter(w http.ResponseWriter, r *http.Request, status int, reason, client string, retryAfter time.Duration, err error) {
	c.mRejected.With(client, reason).Inc()
	c.log.Warn("request rejected by admission control",
		"client", client, "reason", reason, "method", r.Method, "path", r.URL.Path,
		"request_id", telemetry.RequestID(r.Context()))
	WriteEnvelope(w, status, reason, err.Error(), retryAfter)
}

// WriteEnvelope writes the API's JSON error envelope — the same shape
// engine handlers produce — with an optional retry_after_seconds hint.
func WriteEnvelope(w http.ResponseWriter, status int, code, message string, retryAfter time.Duration) {
	type envError struct {
		Code              string  `json:"code"`
		Message           string  `json:"message"`
		RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"error": envError{
		Code:              code,
		Message:           message,
		RetryAfterSeconds: retryAfter.Seconds(),
	}})
}

// retryAfterHeader renders a Retry-After value: integral seconds,
// rounded up so a client that waits exactly this long is admitted.
func retryAfterHeader(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// bearerToken extracts the Authorization: Bearer credential.
func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return strings.TrimSpace(h[len(prefix):]), true
}
