package admission

import (
	"sync"

	"github.com/reds-go/reds/internal/telemetry"
)

// inflightTable counts jobs per client that were submitted but have not
// reached a terminal state, mirrored into the per-client gauge. The
// release closure is idempotent: the engine calls it from its terminal
// hook, and double-frees must not underflow another client's budget.
type inflightTable struct {
	mu    sync.Mutex
	count map[string]int
	gauge *telemetry.GaugeVec
}

func newInflightTable(gauge *telemetry.GaugeVec) *inflightTable {
	return &inflightTable{count: make(map[string]int), gauge: gauge}
}

// acquire reserves a slot when the client is under limit (0 = no
// limit). The returned release is safe to call more than once.
func (t *inflightTable) acquire(client string, limit int) (ok bool, release func()) {
	t.mu.Lock()
	if limit > 0 && t.count[client] >= limit {
		t.mu.Unlock()
		return false, nil
	}
	t.count[client]++
	t.gauge.With(client).Set(float64(t.count[client]))
	t.mu.Unlock()

	var once sync.Once
	return true, func() {
		once.Do(func() {
			t.mu.Lock()
			if t.count[client] > 0 {
				t.count[client]--
			}
			t.gauge.With(client).Set(float64(t.count[client]))
			t.mu.Unlock()
		})
	}
}

// InFlight returns the client's current in-flight count (test and
// introspection helper).
func (c *Controller) InFlight(client string) int {
	c.inflight.mu.Lock()
	defer c.inflight.mu.Unlock()
	return c.inflight.count[client]
}
