package admission

import (
	"sync"
	"time"
)

// Limiter is a per-client token-bucket rate limiter. Each client's
// bucket holds up to burst tokens and refills at rps tokens per second;
// one admission costs one token. The rate parameters are passed per
// call (not stored per bucket) so per-client overrides and hot-reloaded
// defaults take effect immediately.
type Limiter struct {
	mu      sync.Mutex
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter returns an empty limiter.
func NewLimiter() *Limiter {
	return &Limiter{now: time.Now, buckets: make(map[string]*bucket)}
}

// Allow takes one token from the client's bucket. When the bucket is
// empty it reports ok=false and how long until the next token refills —
// the Retry-After hint.
func (l *Limiter) Allow(client string, rps float64, burst int) (ok bool, retryAfter time.Duration) {
	if rps <= 0 {
		return true, 0
	}
	if burst < 1 {
		burst = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[client]
	if b == nil {
		b = &bucket{tokens: float64(burst), last: now}
		l.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rps
	b.last = now
	// A lowered burst (hot reload) clips an over-full bucket here.
	if max := float64(burst); b.tokens > max {
		b.tokens = max
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / rps
	return false, time.Duration(need * float64(time.Second))
}
