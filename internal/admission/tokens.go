package admission

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Roles a token can carry. submit covers POST /v1/jobs and DELETE
// /v1/jobs/{id}; read covers every other /v1 route; admin covers the
// gateway's worker-admin API (/internal/v1/workers).
const (
	RoleSubmit = "submit"
	RoleRead   = "read"
	RoleAdmin  = "admin"
)

func allRoles() map[string]bool {
	return map[string]bool{RoleSubmit: true, RoleRead: true, RoleAdmin: true}
}

// Identity is what a bearer token resolves to: a client ID, its roles,
// and optional per-client quota overrides (0 = use the server default).
type Identity struct {
	Client      string
	Roles       map[string]bool
	RPS         float64
	Burst       int
	MaxInFlight int
}

// tokenFile is the on-disk format of -auth.tokens:
//
//	{"tokens": [
//	  {"token": "s3cr3t", "client": "alice", "roles": ["submit", "read"],
//	   "rps": 2, "burst": 4, "max_inflight": 2},
//	  {"token": "0p5", "client": "ops", "roles": ["admin", "read"]}
//	]}
//
// Tokens are opaque strings; rps/burst/max_inflight override the
// server-wide -quota.* defaults for that client.
type tokenFile struct {
	Tokens []tokenEntry `json:"tokens"`
}

type tokenEntry struct {
	Token       string   `json:"token"`
	Client      string   `json:"client"`
	Roles       []string `json:"roles"`
	RPS         float64  `json:"rps,omitempty"`
	Burst       int      `json:"burst,omitempty"`
	MaxInFlight int      `json:"max_inflight,omitempty"`
}

// TokenStore maps bearer tokens to client identities, loaded from a
// JSON file and hot-reloadable (both binaries re-read it on SIGHUP).
// Lookups take a read lock only; Reload swaps the whole table or — on
// any error — keeps the previous one, so a bad edit never locks every
// client out.
type TokenStore struct {
	path string

	mu       sync.RWMutex
	byToken  map[string]Identity
	byClient map[string]Identity
}

// LoadTokens reads and validates a token file.
func LoadTokens(path string) (*TokenStore, error) {
	s := &TokenStore{path: path}
	if err := s.Reload(); err != nil {
		return nil, err
	}
	return s, nil
}

// Reload re-reads the token file. On error the store keeps serving the
// previously loaded table.
func (s *TokenStore) Reload() error {
	byToken, byClient, err := parseTokenFile(s.path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.byToken = byToken
	s.byClient = byClient
	s.mu.Unlock()
	return nil
}

func parseTokenFile(path string) (map[string]Identity, map[string]Identity, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("admission: reading token file: %w", err)
	}
	var tf tokenFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return nil, nil, fmt.Errorf("admission: parsing token file %s: %w", path, err)
	}
	if len(tf.Tokens) == 0 {
		return nil, nil, fmt.Errorf("admission: token file %s has no tokens", path)
	}
	byToken := make(map[string]Identity, len(tf.Tokens))
	byClient := make(map[string]Identity, len(tf.Tokens))
	for i, e := range tf.Tokens {
		if e.Token == "" {
			return nil, nil, fmt.Errorf("admission: token file %s: entry %d has an empty token", path, i)
		}
		if e.Client == "" {
			return nil, nil, fmt.Errorf("admission: token file %s: entry %d has an empty client", path, i)
		}
		if e.Client == InternalClient {
			return nil, nil, fmt.Errorf("admission: token file %s: client name %q is reserved", path, InternalClient)
		}
		if _, dup := byToken[e.Token]; dup {
			return nil, nil, fmt.Errorf("admission: token file %s: duplicate token (entry %d)", path, i)
		}
		if e.RPS < 0 || e.Burst < 0 || e.MaxInFlight < 0 {
			return nil, nil, fmt.Errorf("admission: token file %s: entry %d has a negative quota", path, i)
		}
		roles := make(map[string]bool, len(e.Roles))
		for _, role := range e.Roles {
			switch role {
			case RoleSubmit, RoleRead, RoleAdmin:
				roles[role] = true
			default:
				return nil, nil, fmt.Errorf("admission: token file %s: entry %d has unknown role %q (want submit, read or admin)", path, i, role)
			}
		}
		if len(roles) == 0 {
			return nil, nil, fmt.Errorf("admission: token file %s: entry %d has no roles", path, i)
		}
		id := Identity{
			Client:      e.Client,
			Roles:       roles,
			RPS:         e.RPS,
			Burst:       e.Burst,
			MaxInFlight: e.MaxInFlight,
		}
		byToken[e.Token] = id
		// Several tokens may share a client; the first entry's quota
		// overrides win so the mapping stays deterministic.
		if _, ok := byClient[e.Client]; !ok {
			byClient[e.Client] = id
		}
	}
	return byToken, byClient, nil
}

// Lookup resolves a bearer token to its identity.
func (s *TokenStore) Lookup(token string) (Identity, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.byToken[token]
	return id, ok
}

// client resolves a client ID to its identity (for quota overrides
// after the middleware has already authenticated the request).
func (s *TokenStore) client(name string) (Identity, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.byClient[name]
	return id, ok
}

// Len returns the number of loaded tokens.
func (s *TokenStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byToken)
}
