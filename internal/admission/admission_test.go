package admission

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func writeTokenFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tokens.json")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatalf("writing token file: %v", err)
	}
	return path
}

const testTokens = `{"tokens": [
  {"token": "alice-token", "client": "alice", "roles": ["submit", "read"]},
  {"token": "bob-token", "client": "bob", "roles": ["read"]},
  {"token": "ops-token", "client": "ops", "roles": ["admin", "read"]},
  {"token": "tight-token", "client": "tight", "roles": ["submit"], "rps": 1, "burst": 1}
]}`

func TestTokenStoreLoadAndLookup(t *testing.T) {
	s, err := LoadTokens(writeTokenFile(t, testTokens))
	if err != nil {
		t.Fatalf("LoadTokens: %v", err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	id, ok := s.Lookup("alice-token")
	if !ok || id.Client != "alice" || !id.Roles[RoleSubmit] || id.Roles[RoleAdmin] {
		t.Fatalf("alice lookup = %+v ok=%v", id, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatalf("unknown token resolved")
	}
	tight, _ := s.Lookup("tight-token")
	if tight.RPS != 1 || tight.Burst != 1 {
		t.Fatalf("per-client quota overrides not loaded: %+v", tight)
	}
}

func TestTokenStoreRejectsBadFiles(t *testing.T) {
	cases := map[string]string{
		"empty":          `{"tokens": []}`,
		"no token":       `{"tokens": [{"client": "x", "roles": ["read"]}]}`,
		"no client":      `{"tokens": [{"token": "t", "roles": ["read"]}]}`,
		"no roles":       `{"tokens": [{"token": "t", "client": "x"}]}`,
		"bad role":       `{"tokens": [{"token": "t", "client": "x", "roles": ["root"]}]}`,
		"dup token":      `{"tokens": [{"token": "t", "client": "x", "roles": ["read"]}, {"token": "t", "client": "y", "roles": ["read"]}]}`,
		"reserved":       `{"tokens": [{"token": "t", "client": "internal", "roles": ["read"]}]}`,
		"negative quota": `{"tokens": [{"token": "t", "client": "x", "roles": ["read"], "rps": -1}]}`,
		"not json":       `nope`,
	}
	for name, content := range cases {
		if _, err := LoadTokens(writeTokenFile(t, content)); err == nil {
			t.Errorf("%s: LoadTokens accepted invalid file", name)
		}
	}
}

// TestTokenStoreReloadKeepsOldStateOnError covers the SIGHUP path: a
// bad edit must not lock clients out.
func TestTokenStoreReloadKeepsOldStateOnError(t *testing.T) {
	path := writeTokenFile(t, testTokens)
	s, err := LoadTokens(path)
	if err != nil {
		t.Fatalf("LoadTokens: %v", err)
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatalf("Reload accepted garbage")
	}
	if _, ok := s.Lookup("alice-token"); !ok {
		t.Fatalf("old tokens gone after failed reload")
	}
	// A good rewrite takes effect.
	if err := os.WriteFile(path, []byte(`{"tokens": [{"token": "new", "client": "new", "roles": ["read"]}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if _, ok := s.Lookup("alice-token"); ok {
		t.Fatalf("stale token survived successful reload")
	}
	if _, ok := s.Lookup("new"); !ok {
		t.Fatalf("new token missing after reload")
	}
}

// TestTokenStoreConcurrentLookupReload is the race test: lookups and
// reloads must not tear (run with -race).
func TestTokenStoreConcurrentLookupReload(t *testing.T) {
	path := writeTokenFile(t, testTokens)
	s, err := LoadTokens(path)
	if err != nil {
		t.Fatalf("LoadTokens: %v", err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if id, ok := s.Lookup("alice-token"); ok && id.Client != "alice" {
					t.Errorf("torn lookup: %+v", id)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := s.Reload(); err != nil {
			t.Fatalf("Reload: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestLimiterBurstAndRefill(t *testing.T) {
	l := NewLimiter()
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("c", 2, 2); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := l.Allow("c", 2, 2)
	if ok {
		t.Fatalf("over-burst request admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s] at 2 rps", retry)
	}
	// After the hinted wait the next token is there.
	now = now.Add(retry)
	if ok, _ := l.Allow("c", 2, 2); !ok {
		t.Fatalf("request after Retry-After still rejected")
	}
	// Refill never exceeds burst.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("c", 2, 2); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after long idle, want burst=2", admitted)
	}
}

func TestLimiterIsolatesClients(t *testing.T) {
	l := NewLimiter()
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	if ok, _ := l.Allow("a", 1, 1); !ok {
		t.Fatal("first a rejected")
	}
	if ok, _ := l.Allow("a", 1, 1); ok {
		t.Fatal("second a admitted")
	}
	if ok, _ := l.Allow("b", 1, 1); !ok {
		t.Fatal("b throttled by a's bucket")
	}
}

// TestLimiterConcurrent is the race test: concurrent Allow calls on one
// client never admit more than burst + refill.
func TestLimiterConcurrent(t *testing.T) {
	l := NewLimiter()
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	l.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	var admitted int64
	var wg sync.WaitGroup
	var countMu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if ok, _ := l.Allow("c", 5, 10); ok {
					countMu.Lock()
					admitted++
					countMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if admitted != 10 { // frozen clock: exactly the burst
		t.Fatalf("admitted %d concurrent requests, want 10 (burst)", admitted)
	}
}

func TestInflightTable(t *testing.T) {
	c := New(Options{MaxInFlight: 2})
	rel1, retry := c.AcquireJob("x")
	if rel1 == nil || retry != 0 {
		t.Fatalf("first acquire rejected")
	}
	rel2, _ := c.AcquireJob("x")
	if rel2 == nil {
		t.Fatalf("second acquire rejected")
	}
	if rel, retry := c.AcquireJob("x"); rel != nil || retry <= 0 {
		t.Fatalf("third acquire admitted over cap")
	}
	if rel, _ := c.AcquireJob("y"); rel == nil {
		t.Fatalf("other client blocked by x's slots")
	} else {
		rel()
	}
	rel1()
	rel1() // double release must not free a second slot
	if c.InFlight("x") != 1 {
		t.Fatalf("InFlight(x) = %d after one release, want 1", c.InFlight("x"))
	}
	if rel, _ := c.AcquireJob("x"); rel == nil {
		t.Fatalf("acquire after release rejected")
	}
}

// newTestController builds a controller with auth + quotas + secret on.
func newTestController(t *testing.T) *Controller {
	t.Helper()
	tokens, err := LoadTokens(writeTokenFile(t, testTokens))
	if err != nil {
		t.Fatalf("LoadTokens: %v", err)
	}
	return New(Options{
		Tokens:         tokens,
		RPS:            100,
		Burst:          100,
		InternalSecret: "hush",
		Caps:           Caps{MaxBodyBytes: 1 << 20},
	})
}

func do(h http.Handler, method, path, token, secret string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader("{}"))
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if secret != "" {
		req.Header.Set(InternalSecretHeader, secret)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestMiddlewareAuthMatrix(t *testing.T) {
	c := newTestController(t)
	var gotClient string
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotClient = ClientFrom(r.Context())
		w.WriteHeader(http.StatusOK)
	}))

	cases := []struct {
		name          string
		method, path  string
		token, secret string
		wantStatus    int
		wantClient    string
		wantErrCode   string
	}{
		{name: "healthz open", method: "GET", path: "/v1/healthz", wantStatus: 200},
		{name: "readyz open", method: "GET", path: "/v1/readyz", wantStatus: 200},
		{name: "metrics open", method: "GET", path: "/metrics", wantStatus: 200},
		{name: "submit no token", method: "POST", path: "/v1/jobs", wantStatus: 401, wantErrCode: "unauthorized"},
		{name: "submit bad token", method: "POST", path: "/v1/jobs", token: "wrong", wantStatus: 401, wantErrCode: "unauthorized"},
		{name: "submit ok", method: "POST", path: "/v1/jobs", token: "alice-token", wantStatus: 200, wantClient: "alice"},
		{name: "submit read-only client", method: "POST", path: "/v1/jobs", token: "bob-token", wantStatus: 403, wantErrCode: "forbidden"},
		{name: "cancel needs submit", method: "DELETE", path: "/v1/jobs/job-000001", token: "bob-token", wantStatus: 403, wantErrCode: "forbidden"},
		{name: "read ok", method: "GET", path: "/v1/jobs", token: "bob-token", wantStatus: 200, wantClient: "bob"},
		{name: "read no token", method: "GET", path: "/v1/jobs", wantStatus: 401, wantErrCode: "unauthorized"},
		{name: "admin denied for submit role", method: "POST", path: "/internal/v1/workers", token: "alice-token", wantStatus: 403, wantErrCode: "forbidden"},
		{name: "admin ok", method: "POST", path: "/internal/v1/workers", token: "ops-token", wantStatus: 200, wantClient: "ops"},
		{name: "internal no secret", method: "POST", path: "/internal/v1/execute", token: "alice-token", wantStatus: 401, wantErrCode: "unauthorized"},
		{name: "internal wrong secret", method: "POST", path: "/internal/v1/execute", secret: "nope", wantStatus: 401, wantErrCode: "unauthorized"},
		{name: "internal ok", method: "POST", path: "/internal/v1/execute", secret: "hush", wantStatus: 200, wantClient: "internal"},
		{name: "secret grants v1 too", method: "GET", path: "/v1/jobs", secret: "hush", wantStatus: 200, wantClient: "internal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gotClient = ""
			rr := do(h, tc.method, tc.path, tc.token, tc.secret)
			if rr.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", rr.Code, tc.wantStatus, rr.Body.String())
			}
			if tc.wantClient != "" && gotClient != tc.wantClient {
				t.Fatalf("client = %q, want %q", gotClient, tc.wantClient)
			}
			if tc.wantErrCode != "" {
				var env struct {
					Error struct {
						Code string `json:"code"`
					} `json:"error"`
				}
				if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil || env.Error.Code != tc.wantErrCode {
					t.Fatalf("error code = %q (err %v), want %q", env.Error.Code, err, tc.wantErrCode)
				}
			}
		})
	}
}

func TestMiddlewareRateLimit(t *testing.T) {
	c := newTestController(t)
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
	}))
	// The "tight" client overrides to rps=1/burst=1: the first submit
	// passes, the second gets 429 with Retry-After.
	if rr := do(h, "POST", "/v1/jobs", "tight-token", ""); rr.Code != http.StatusCreated {
		t.Fatalf("first submit = %d", rr.Code)
	}
	rr := do(h, "POST", "/v1/jobs", "tight-token", "")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}
	var env struct {
		Error struct {
			Code              string  `json:"code"`
			RetryAfterSeconds float64 `json:"retry_after_seconds"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	if env.Error.Code != "rate_limited" || env.Error.RetryAfterSeconds <= 0 {
		t.Fatalf("envelope = %+v", env.Error)
	}
	// Reads are never rate limited.
	for i := 0; i < 5; i++ {
		if rr := do(h, "GET", "/v1/jobs", "bob-token", ""); rr.Code != http.StatusCreated {
			t.Fatalf("read %d = %d", i, rr.Code)
		}
	}
}

func TestMiddlewareDisabledAuthPassesAnonymous(t *testing.T) {
	c := New(Options{}) // nothing armed
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, ClientFrom(r.Context()))
	}))
	rr := do(h, "POST", "/v1/jobs", "", "")
	if rr.Code != http.StatusOK || rr.Body.String() != AnonymousClient {
		t.Fatalf("anonymous submit = %d %q", rr.Code, rr.Body.String())
	}
	// Internal routes stay open without a secret.
	if rr := do(h, "POST", "/internal/v1/execute", "", ""); rr.Code != http.StatusOK {
		t.Fatalf("internal without secret = %d, want 200 when no secret configured", rr.Code)
	}
}

func TestMiddlewareBodyCap(t *testing.T) {
	c := New(Options{Caps: Caps{MaxBodyBytes: 16}})
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var v map[string]any
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				WriteEnvelope(w, http.StatusRequestEntityTooLarge, "request_too_large", err.Error(), 0)
				return
			}
			WriteEnvelope(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(`{"function": "`+strings.Repeat("x", 64)+`"}`))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", rr.Code)
	}
}

func TestCheckDeadline(t *testing.T) {
	c := New(Options{Caps: Caps{MaxRuntime: 10 * time.Second}})
	if _, err := c.CheckDeadline(11); err == nil {
		t.Fatalf("deadline above max accepted")
	}
	if d, err := c.CheckDeadline(0); err != nil || d != 10 {
		t.Fatalf("defaulted deadline = %v, %v; want 10", d, err)
	}
	if d, err := c.CheckDeadline(3); err != nil || d != 3 {
		t.Fatalf("explicit deadline = %v, %v; want 3", d, err)
	}
	unbounded := New(Options{})
	if d, err := unbounded.CheckDeadline(123); err != nil || d != 123 {
		t.Fatalf("unbounded deadline = %v, %v", d, err)
	}
}
