// Package faultinject provides flag/env-armed fault points for chaos
// testing. Production code calls the cheap query helpers (Armed, Delay,
// Once, ...) at well-known points; unless a fault spec has been armed
// via Arm or the REDS_FAULTS environment variable, every helper is a
// single atomic pointer load that returns the zero value, so the hooks
// cost nothing in normal operation.
//
// A fault spec is a comma-separated list of name=value pairs, e.g.
//
//	exec.start.delay=200ms,exec.exit-after=discover/,store.wal.torn=once
//
// The names are free-form: each call site defines the point it consults
// (see docs/ARCHITECTURE.md "Fault injection" for the wired points).
// Values are interpreted by the helper the call site uses — Duration
// parses them with time.ParseDuration, Once fires at most one time per
// armed spec regardless of value, and Value hands back the raw string.
package faultinject

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// injector is an immutable snapshot of armed fault points. Swapping the
// whole snapshot atomically keeps queries race-free without locking.
type injector struct {
	points map[string]string
	onces  sync.Map // point name -> *sync.Once
}

var active atomic.Pointer[injector]

// Arm replaces the active fault set with the given spec. An empty spec
// disarms everything. Arm returns an error (and leaves the previous set
// in place) if the spec is malformed.
func Arm(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disarm()
		return nil
	}
	points := make(map[string]string)
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, value, ok := strings.Cut(pair, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return fmt.Errorf("faultinject: malformed fault %q (want name=value)", pair)
		}
		points[name] = strings.TrimSpace(value)
	}
	if len(points) == 0 {
		Disarm()
		return nil
	}
	active.Store(&injector{points: points})
	return nil
}

// Disarm removes all fault points.
func Disarm() { active.Store(nil) }

// Enabled reports whether any fault point is armed. Call sites with
// non-trivial setup can use it as a fast bail-out.
func Enabled() bool { return active.Load() != nil }

// Armed reports whether the named fault point is armed.
func Armed(point string) bool {
	_, ok := Value(point)
	return ok
}

// Value returns the raw value armed for the point, if any.
func Value(point string) (string, bool) {
	inj := active.Load()
	if inj == nil {
		return "", false
	}
	v, ok := inj.points[point]
	return v, ok
}

// Duration returns the armed value parsed as a duration, or zero when
// the point is unarmed or its value does not parse.
func Duration(point string) time.Duration {
	v, ok := Value(point)
	if !ok {
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0
	}
	return d
}

// Delay sleeps for the armed duration of the point, if any.
func Delay(point string) {
	if d := Duration(point); d > 0 {
		time.Sleep(d)
	}
}

// Once reports true exactly one time per armed spec for the given
// point: the first caller after arming wins, later callers (and all
// callers of unarmed points) get false. Re-arming resets the fuse.
func Once(point string) bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	if _, ok := inj.points[point]; !ok {
		return false
	}
	o, _ := inj.onces.LoadOrStore(point, new(sync.Once))
	fired := false
	o.(*sync.Once).Do(func() { fired = true })
	return fired
}
