package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestDisarmedZeroValues(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("Enabled() = true with nothing armed")
	}
	if Armed("exec.start.delay") {
		t.Fatal("Armed() = true with nothing armed")
	}
	if d := Duration("exec.start.delay"); d != 0 {
		t.Fatalf("Duration() = %v, want 0", d)
	}
	if Once("store.wal.torn") {
		t.Fatal("Once() fired with nothing armed")
	}
}

func TestArmAndQuery(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("exec.start.delay=150ms, exec.exit-after=discover/ ,store.wal.torn=once"); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if !Enabled() {
		t.Fatal("Enabled() = false after Arm")
	}
	if d := Duration("exec.start.delay"); d != 150*time.Millisecond {
		t.Fatalf("Duration = %v, want 150ms", d)
	}
	if v, ok := Value("exec.exit-after"); !ok || v != "discover/" {
		t.Fatalf("Value = %q, %v", v, ok)
	}
	if Armed("exec.drop") {
		t.Fatal("unarmed point reported armed")
	}
}

func TestArmMalformed(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("exec.start.delay=50ms"); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := Arm("nonsense-without-equals"); err == nil {
		t.Fatal("Arm accepted a malformed spec")
	}
	// The previous spec must survive a failed Arm.
	if d := Duration("exec.start.delay"); d != 50*time.Millisecond {
		t.Fatalf("previous spec lost after failed Arm: Duration = %v", d)
	}
}

func TestArmEmptyDisarms(t *testing.T) {
	if err := Arm("exec.drop=1"); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := Arm("  "); err != nil {
		t.Fatalf("Arm(empty): %v", err)
	}
	if Enabled() {
		t.Fatal("empty spec did not disarm")
	}
}

func TestOnceFiresExactlyOnce(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("store.wal.torn=once"); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	fired := make(chan bool, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fired <- Once("store.wal.torn")
		}()
	}
	wg.Wait()
	close(fired)
	n := 0
	for f := range fired {
		if f {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("Once fired %d times, want 1", n)
	}
	// Re-arming resets the fuse.
	if err := Arm("store.wal.torn=once"); err != nil {
		t.Fatalf("re-Arm: %v", err)
	}
	if !Once("store.wal.torn") {
		t.Fatal("Once did not fire after re-arm")
	}
}

func TestDelaySleeps(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("exec.status.delay=30ms"); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	start := time.Now()
	Delay("exec.status.delay")
	if got := time.Since(start); got < 25*time.Millisecond {
		t.Fatalf("Delay slept %v, want >= 30ms", got)
	}
	start = time.Now()
	Delay("unarmed.point")
	if got := time.Since(start); got > 10*time.Millisecond {
		t.Fatalf("Delay on unarmed point slept %v", got)
	}
}
