// Package stats implements the descriptive statistics and nonparametric
// tests the paper's evaluation relies on: quartiles, ranks with tie
// handling, Spearman correlation, the Wilcoxon–Mann–Whitney rank-sum
// test, the Wilcoxon signed-rank test, and the Friedman test with
// pairwise post-hoc comparisons.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the sample median, 0 for empty input.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the p-quantile with linear interpolation between order
// statistics (R type 7), 0 for empty input.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	h := p * float64(len(s)-1)
	i := int(h)
	frac := h - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i] + frac*(s[i+1]-s[i])
}

// Quartiles returns (Q1, median, Q3).
func Quartiles(xs []float64) (q1, med, q3 float64) {
	return Quantile(xs, 0.25), Quantile(xs, 0.5), Quantile(xs, 0.75)
}

// Ranks assigns 1-based ranks with ties receiving their average rank.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation of two equal-length
// samples, NaN for fewer than two points or zero variance.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	rx := Ranks(xs)
	ry := Ranks(ys)
	return pearson(rx, ry)
}

func pearson(xs, ys []float64) float64 {
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// normalSF is the standard normal survival function P(Z > z).
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// MannWhitney performs the two-sided Wilcoxon–Mann–Whitney rank-sum test
// of whether samples a and b come from the same distribution. It returns
// the U statistic of sample a and the normal-approximation p-value with
// tie correction. Small samples (< 4 per group) return p = 1.
func MannWhitney(a, b []float64) (u, p float64) {
	n1, n2 := len(a), len(b)
	if n1 < 4 || n2 < 4 {
		return 0, 1
	}
	all := append(append([]float64(nil), a...), b...)
	ranks := Ranks(all)
	r1 := 0.0
	for i := 0; i < n1; i++ {
		r1 += ranks[i]
	}
	u = r1 - float64(n1*(n1+1))/2
	mu := float64(n1) * float64(n2) / 2
	n := float64(n1 + n2)
	tieSum := tieCorrection(all)
	sigma2 := float64(n1) * float64(n2) / 12 * (n + 1 - tieSum/(n*(n-1)))
	if sigma2 <= 0 {
		return u, 1
	}
	z := math.Abs(u-mu) / math.Sqrt(sigma2)
	// Continuity correction.
	z = math.Max(0, z-0.5/math.Sqrt(sigma2))
	return u, 2 * normalSF(z)
}

// tieCorrection returns Σ (t³ - t) over tie groups.
func tieCorrection(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for i := 0; i < len(s); {
		j := i
		for j+1 < len(s) && s[j+1] == s[i] {
			j++
		}
		t := float64(j - i + 1)
		sum += t*t*t - t
		i = j + 1
	}
	return sum
}

// WilcoxonSignedRank performs the two-sided paired signed-rank test on
// equal-length samples. Zero differences are dropped (Wilcoxon's
// convention); fewer than 6 non-zero pairs return p = 1.
func WilcoxonSignedRank(a, b []float64) (w, p float64) {
	var diffs []float64
	for i := range a {
		d := a[i] - b[i]
		if d != 0 {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n < 6 {
		return 0, 1
	}
	abs := make([]float64, n)
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	ranks := Ranks(abs)
	wPlus := 0.0
	for i, d := range diffs {
		if d > 0 {
			wPlus += ranks[i]
		}
	}
	mu := float64(n*(n+1)) / 4
	sigma2 := float64(n*(n+1)*(2*n+1)) / 24
	sigma2 -= tieCorrection(abs) / 48
	if sigma2 <= 0 {
		return wPlus, 1
	}
	z := math.Abs(wPlus-mu) / math.Sqrt(sigma2)
	return wPlus, 2 * normalSF(z)
}

// Friedman performs the Friedman test on an n-blocks × k-treatments
// matrix (rows = datasets, columns = methods). It returns the chi-square
// statistic and its p-value. Fewer than 2 rows or columns return p = 1.
func Friedman(data [][]float64) (chi2, p float64) {
	n := len(data)
	if n < 2 {
		return 0, 1
	}
	k := len(data[0])
	if k < 2 {
		return 0, 1
	}
	rankSums := make([]float64, k)
	for _, row := range data {
		ranks := Ranks(row)
		for j, r := range ranks {
			rankSums[j] += r
		}
	}
	chi2 = 0
	for _, rs := range rankSums {
		d := rs - float64(n)*float64(k+1)/2
		chi2 += d * d
	}
	chi2 *= 12 / (float64(n) * float64(k) * float64(k+1))
	return chi2, ChiSquareSF(chi2, float64(k-1))
}

// FriedmanPostHoc runs pairwise Wilcoxon signed-rank tests between
// columns i and j of the matrix, the post-hoc procedure referenced in
// Section 9.1.
func FriedmanPostHoc(data [][]float64, i, j int) float64 {
	a := make([]float64, len(data))
	b := make([]float64, len(data))
	for r, row := range data {
		a[r] = row[i]
		b[r] = row[j]
	}
	_, p := WilcoxonSignedRank(a, b)
	return p
}

// HolmAdjust applies the Holm step-down correction to a family of
// p-values (the standard multiplicity control for pairwise post-hoc
// comparisons). The returned slice is aligned with the input and
// clamped to [0, 1], with the usual monotonicity enforcement.
func HolmAdjust(ps []float64) []float64 {
	n := len(ps)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ps[idx[a]] < ps[idx[b]] })
	adj := make([]float64, n)
	running := 0.0
	for rank, i := range idx {
		v := float64(n-rank) * ps[i]
		if v > 1 {
			v = 1
		}
		if v < running {
			v = running // enforce monotone non-decreasing adjusted values
		}
		running = v
		adj[i] = v
	}
	return adj
}

// ChiSquareSF is the chi-square survival function P(X > x) with df
// degrees of freedom, computed through the regularized upper incomplete
// gamma function.
func ChiSquareSF(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return upperGammaRegularized(df/2, x/2)
}

// upperGammaRegularized computes Q(a, x) = Γ(a,x)/Γ(a) by series or
// continued fraction (Numerical Recipes style).
func upperGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerGammaSeries(a, x)
	}
	return upperGammaCF(a, x)
}

func lowerGammaSeries(a, x float64) float64 {
	const itmax = 200
	const eps = 3e-14
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func upperGammaCF(a, x float64) float64 {
	const itmax = 200
	const eps = 3e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
