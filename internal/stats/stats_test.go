package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanMedianQuantile(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty input must give 0")
	}
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Median(xs) != 2 {
		t.Errorf("mean/median of %v wrong", xs)
	}
	xs = []float64{1, 2, 3, 4}
	if m := Median(xs); m != 2.5 {
		t.Errorf("median = %g, want 2.5", m)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %g", q)
	}
	q1, med, q3 := Quartiles([]float64{1, 2, 3, 4, 5})
	if q1 != 2 || med != 3 || q3 != 4 {
		t.Errorf("quartiles = %g %g %g", q1, med, q3)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Spearman(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect monotone rho = %g", r)
	}
	rev := []float64{10, 8, 6, 4, 2}
	if r := Spearman(xs, rev); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect inverse rho = %g", r)
	}
	// Nonlinear but monotone: still 1.
	ys2 := []float64{1, 8, 27, 64, 125}
	if r := Spearman(xs, ys2); math.Abs(r-1) > 1e-12 {
		t.Errorf("monotone rho = %g", r)
	}
	if !math.IsNaN(Spearman(xs, []float64{1, 1, 1, 1, 1})) {
		t.Error("zero-variance rho must be NaN")
	}
	if !math.IsNaN(Spearman([]float64{1}, []float64{2})) {
		t.Error("single-point rho must be NaN")
	}
}

func TestMannWhitneySeparatedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 3
	}
	_, p := MannWhitney(a, b)
	if p > 1e-6 {
		t.Errorf("well-separated samples p = %g, want tiny", p)
	}
	// Same distribution: p should usually be large.
	c := make([]float64, 30)
	d := make([]float64, 30)
	for i := range c {
		c[i] = rng.NormFloat64()
		d[i] = rng.NormFloat64()
	}
	if _, p := MannWhitney(c, d); p < 0.001 {
		t.Errorf("identical distributions p = %g, suspiciously small", p)
	}
	// Tiny samples: defensive p = 1.
	if _, p := MannWhitney([]float64{1}, []float64{2}); p != 1 {
		t.Errorf("tiny sample p = %g", p)
	}
}

func TestWilcoxonSignedRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 1 + 0.1*rng.NormFloat64() // consistent shift
	}
	_, p := WilcoxonSignedRank(a, b)
	if p > 1e-4 {
		t.Errorf("shifted pairs p = %g, want tiny", p)
	}
	if _, p := WilcoxonSignedRank(a, a); p != 1 {
		t.Errorf("identical pairs p = %g, want 1 (all zero diffs)", p)
	}
}

func TestFriedman(t *testing.T) {
	// Method 2 always best, method 0 always worst across 12 datasets.
	var data [][]float64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		base := rng.Float64()
		data = append(data, []float64{base, base + 0.5, base + 1})
	}
	chi2, p := Friedman(data)
	if chi2 <= 0 || p > 0.01 {
		t.Errorf("clear ranking: chi2=%g p=%g", chi2, p)
	}
	// Random data: no effect expected.
	var noise [][]float64
	for i := 0; i < 12; i++ {
		noise = append(noise, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
	}
	if _, p := Friedman(noise); p < 0.001 {
		t.Errorf("random data p = %g, suspiciously small", p)
	}
	if _, p := Friedman(nil); p != 1 {
		t.Error("empty matrix p must be 1")
	}
	ph := FriedmanPostHoc(data, 0, 2)
	if ph > 0.01 {
		t.Errorf("post-hoc p = %g, want small", ph)
	}
}

func TestChiSquareSF(t *testing.T) {
	// Known value: P(X > 3.841) with df=1 is 0.05.
	if p := ChiSquareSF(3.841, 1); math.Abs(p-0.05) > 0.002 {
		t.Errorf("chi2 SF(3.841, 1) = %g, want ~0.05", p)
	}
	// P(X > 5.991) with df=2 is 0.05.
	if p := ChiSquareSF(5.991, 2); math.Abs(p-0.05) > 0.002 {
		t.Errorf("chi2 SF(5.991, 2) = %g, want ~0.05", p)
	}
	// df=2 has closed form exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		if p := ChiSquareSF(x, 2); math.Abs(p-math.Exp(-x/2)) > 1e-9 {
			t.Errorf("chi2 SF(%g, 2) = %g, want %g", x, p, math.Exp(-x/2))
		}
	}
	if ChiSquareSF(-1, 3) != 1 || ChiSquareSF(0, 3) != 1 {
		t.Error("non-positive x must give 1")
	}
}

func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			q := Quantile(xs, p)
			if q < last-1e-12 {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRanksArePermutationInvariantSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(rng.Float64()*10) / 10
		}
		ranks := Ranks(xs)
		sum := 0.0
		for _, r := range ranks {
			sum += r
		}
		// Sum of ranks is always n(n+1)/2, ties or not.
		return math.Abs(sum-float64(n*(n+1))/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySpearmanBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r := Spearman(xs, ys)
		return math.IsNaN(r) || (r >= -1-1e-9 && r <= 1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHolmAdjust(t *testing.T) {
	ps := []float64{0.01, 0.04, 0.03, 0.005}
	adj := HolmAdjust(ps)
	// Sorted: 0.005(x4=0.02), 0.01(x3=0.03), 0.03(x2=0.06), 0.04(x1=0.06 after monotone).
	want := []float64{0.03, 0.06, 0.06, 0.02}
	for i := range want {
		if math.Abs(adj[i]-want[i]) > 1e-12 {
			t.Fatalf("HolmAdjust = %v, want %v", adj, want)
		}
	}
	// Clamping at 1.
	adj = HolmAdjust([]float64{0.9, 0.8})
	for _, v := range adj {
		if v > 1 {
			t.Errorf("adjusted p %g > 1", v)
		}
	}
	if len(HolmAdjust(nil)) != 0 {
		t.Error("empty input must return empty output")
	}
}
