// Package sd defines the common types shared by all subgroup-discovery
// algorithms (PRIM, PRIM with bumping, BI): the trajectory of candidate
// boxes a single run produces, per-box subgroup statistics, and the
// covering approach for finding several subgroups.
package sd

import (
	"fmt"
	"math/rand"

	"github.com/reds-go/reds/internal/box"
	"github.com/reds-go/reds/internal/dataset"
)

// Stats are subgroup statistics of one box on one dataset: the number of
// covered examples n and the covered label mass n+ (Σ y over the
// subgroup; fractional for probability labels).
type Stats struct {
	N    int
	NPos float64
}

// Precision returns n+/n, or 0 for an empty subgroup.
func (s Stats) Precision() float64 {
	if s.N == 0 {
		return 0
	}
	return s.NPos / float64(s.N)
}

// Compute evaluates the subgroup statistics of b on d.
func Compute(b *box.Box, d *dataset.Dataset) Stats {
	var st Stats
	for i, x := range d.X {
		if b.Contains(x) {
			st.N++
			st.NPos += d.Y[i]
		}
	}
	return st
}

// Step is one box of a trajectory with its train and validation
// statistics.
type Step struct {
	Box   *box.Box
	Train Stats
	Val   Stats
}

// Result is the output of a single subgroup-discovery run: the sequence
// of nested candidate boxes (a single box for BI) and the index of the
// selected one.
type Result struct {
	Steps      []Step
	FinalIndex int
}

// Final returns the selected box.
func (r *Result) Final() *box.Box {
	if len(r.Steps) == 0 {
		return nil
	}
	return r.Steps[r.FinalIndex].Box
}

// Boxes returns the trajectory boxes in order.
func (r *Result) Boxes() []*box.Box {
	out := make([]*box.Box, len(r.Steps))
	for i, s := range r.Steps {
		out[i] = s.Box
	}
	return out
}

// Discoverer is a subgroup-discovery algorithm ("SD" in Algorithm 4).
// Implementations must be deterministic given the RNG.
type Discoverer interface {
	// Discover runs the algorithm on train data, using val for stopping
	// and final-box selection. Passing the training set as val (D_val = D)
	// matches the paper's experimental setup.
	Discover(train, val *dataset.Dataset, rng *rand.Rand) (*Result, error)
}

// Cover implements the covering approach of Section 3.2: it repeatedly
// runs disc on the examples not covered by previously selected boxes and
// returns up to k results. It stops early when the remaining data is too
// small or a run fails.
func Cover(train, val *dataset.Dataset, disc Discoverer, k int, rng *rand.Rand) ([]*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("sd: covering needs k >= 1, got %d", k)
	}
	var results []*Result
	curTrain, curVal := train, val
	for round := 0; round < k; round++ {
		if curTrain.N() < 2 || curVal.N() < 2 {
			break
		}
		res, err := disc.Discover(curTrain, curVal, rng)
		if err != nil {
			return results, fmt.Errorf("sd: covering round %d: %w", round, err)
		}
		results = append(results, res)
		final := res.Final()
		if final == nil {
			break
		}
		curTrain = remove(curTrain, final)
		curVal = remove(curVal, final)
	}
	return results, nil
}

// remove returns d without the examples covered by b.
func remove(d *dataset.Dataset, b *box.Box) *dataset.Dataset {
	var idx []int
	for i, x := range d.X {
		if !b.Contains(x) {
			idx = append(idx, i)
		}
	}
	return d.Subset(idx)
}
