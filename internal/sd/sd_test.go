package sd

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/box"
	"github.com/reds-go/reds/internal/dataset"
)

func TestStatsPrecision(t *testing.T) {
	if p := (Stats{}).Precision(); p != 0 {
		t.Errorf("empty precision = %g", p)
	}
	if p := (Stats{N: 4, NPos: 3}).Precision(); p != 0.75 {
		t.Errorf("precision = %g, want 0.75", p)
	}
}

func TestCompute(t *testing.T) {
	d := dataset.MustNew(
		[][]float64{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}, {0.5, 0.1}},
		[]float64{1, 1, 0, 0},
	)
	b := box.New([]float64{0, 0}, []float64{0.6, 0.6})
	st := Compute(b, d)
	if st.N != 3 || st.NPos != 2 {
		t.Errorf("stats = %+v, want N=3 NPos=2", st)
	}
	full := box.Full(2)
	if st := Compute(full, d); st.N != 4 || st.NPos != 2 {
		t.Errorf("full stats = %+v", st)
	}
}

func TestResultAccessors(t *testing.T) {
	empty := &Result{}
	if empty.Final() != nil {
		t.Error("empty result Final must be nil")
	}
	b1, b2 := box.Full(1), box.Full(1)
	b2.Lo[0] = 0.5
	r := &Result{Steps: []Step{{Box: b1}, {Box: b2}}, FinalIndex: 1}
	if r.Final() != b2 {
		t.Error("Final must return the indexed box")
	}
	boxes := r.Boxes()
	if len(boxes) != 2 || boxes[0] != b1 || boxes[1] != b2 {
		t.Error("Boxes order wrong")
	}
}

// cornerDiscoverer always finds the [0, 0.5]^M corner box.
type cornerDiscoverer struct{ calls int }

func (c *cornerDiscoverer) Discover(train, val *dataset.Dataset, _ *rand.Rand) (*Result, error) {
	c.calls++
	b := box.Full(train.M())
	for j := range b.Hi {
		b.Hi[j] = 0.5
	}
	return &Result{Steps: []Step{{Box: b, Train: Compute(b, train), Val: Compute(b, val)}}}, nil
}

type failingDiscoverer struct{}

func (failingDiscoverer) Discover(train, val *dataset.Dataset, _ *rand.Rand) (*Result, error) {
	return nil, errors.New("nope")
}

func TestCoverRemovesCoveredExamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = []float64{rng.Float64()}
		y[i] = 1
	}
	d := dataset.MustNew(x, y)
	disc := &cornerDiscoverer{}
	results, err := Cover(d, d, disc, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no covering results")
	}
	// After the first round all points in [0,0.5] are removed, so the
	// second round's result covers nothing of the first box.
	if len(results) > 1 {
		st := Compute(results[1].Final(), d)
		first := Compute(results[0].Final(), d)
		if st.N >= first.N+int(float64(d.N())/2) {
			t.Error("covering did not shrink the data")
		}
	}
	if disc.calls < 1 {
		t.Error("discoverer never called")
	}
}

func TestCoverErrors(t *testing.T) {
	d := dataset.MustNew([][]float64{{0.1}, {0.9}, {0.4}}, []float64{1, 0, 1})
	rng := rand.New(rand.NewSource(2))
	if _, err := Cover(d, d, &cornerDiscoverer{}, 0, rng); err == nil {
		t.Error("k=0 must error")
	}
	results, err := Cover(d, d, failingDiscoverer{}, 2, rng)
	if err == nil {
		t.Error("failing discoverer must propagate")
	}
	if len(results) != 0 {
		t.Error("no results expected from immediate failure")
	}
}

func TestComputeWithProbabilityLabels(t *testing.T) {
	d := dataset.MustNew([][]float64{{0.2}, {0.4}}, []float64{0.25, 0.5})
	st := Compute(box.Full(1), d)
	if math.Abs(st.NPos-0.75) > 1e-12 {
		t.Errorf("fractional NPos = %g, want 0.75", st.NPos)
	}
}
