package sd

import "github.com/reds-go/reds/internal/box"

// This file provides the box-selection policies a domain expert applies to
// a peeling trajectory (Section 3.2.1: "From this sequence, domain experts
// choose a single box which best suits their needs"). All selectors use
// the recorded validation statistics.

// SelectMaxPrecision returns the trajectory box with the highest
// validation precision, ties broken toward the earlier (larger) box —
// Algorithm 1 line 5, the library default.
func (r *Result) SelectMaxPrecision() *box.Box {
	best, bestPrec := -1, -1.0
	for i, s := range r.Steps {
		if p := s.Val.Precision(); p > bestPrec+1e-12 {
			best, bestPrec = i, p
		}
	}
	if best < 0 {
		return nil
	}
	return r.Steps[best].Box
}

// SelectByF1 returns the box with the best validation F1 score, the
// balanced precision/recall compromise.
func (r *Result) SelectByF1() *box.Box {
	total := r.totalValPos()
	best, bestF1 := -1, -1.0
	for i, s := range r.Steps {
		p := s.Val.Precision()
		rec := 0.0
		if total > 0 {
			rec = s.Val.NPos / total
		}
		if p+rec == 0 {
			continue
		}
		if f1 := 2 * p * rec / (p + rec); f1 > bestF1 {
			best, bestF1 = i, f1
		}
	}
	if best < 0 {
		return nil
	}
	return r.Steps[best].Box
}

// SelectByPrecisionFloor returns the box with the highest validation
// recall among those whose validation precision is at least floor, or
// nil when no box qualifies. This is the "as pure as needed, as big as
// possible" policy of the paper's scenario-selection discussion.
func (r *Result) SelectByPrecisionFloor(floor float64) *box.Box {
	total := r.totalValPos()
	best, bestRec := -1, -1.0
	for i, s := range r.Steps {
		if s.Val.Precision() < floor {
			continue
		}
		rec := 0.0
		if total > 0 {
			rec = s.Val.NPos / total
		}
		if rec > bestRec {
			best, bestRec = i, rec
		}
	}
	if best < 0 {
		return nil
	}
	return r.Steps[best].Box
}

// totalValPos estimates N+ of the validation data from the first
// (largest) trajectory box, which covers everything for peeling
// trajectories.
func (r *Result) totalValPos() float64 {
	if len(r.Steps) == 0 {
		return 0
	}
	total := r.Steps[0].Val.NPos
	for _, s := range r.Steps[1:] {
		if s.Val.NPos > total {
			total = s.Val.NPos
		}
	}
	return total
}
