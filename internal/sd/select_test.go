package sd

import (
	"math"
	"testing"

	"github.com/reds-go/reds/internal/box"
)

// trajectory builds a synthetic three-step result:
// full box (N=100, pos=30), mid box (N=40, pos=28), tiny box (N=10, pos=10).
func trajectory() *Result {
	full := box.Full(1)
	mid := box.New([]float64{math.Inf(-1)}, []float64{0.5})
	tiny := box.New([]float64{math.Inf(-1)}, []float64{0.1})
	return &Result{Steps: []Step{
		{Box: full, Val: Stats{N: 100, NPos: 30}},
		{Box: mid, Val: Stats{N: 40, NPos: 28}},
		{Box: tiny, Val: Stats{N: 10, NPos: 10}},
	}}
}

func TestSelectMaxPrecision(t *testing.T) {
	r := trajectory()
	got := r.SelectMaxPrecision()
	if !got.Equal(r.Steps[2].Box) {
		t.Errorf("max precision should pick the pure tiny box, got %v", got)
	}
	if (&Result{}).SelectMaxPrecision() != nil {
		t.Error("empty result must select nil")
	}
}

func TestSelectByF1(t *testing.T) {
	r := trajectory()
	// F1: full = 2*0.3*1/(1.3) = 0.462; mid = 2*0.7*0.933/1.633 = 0.8;
	// tiny = 2*1*0.333/1.333 = 0.5 -> mid wins.
	got := r.SelectByF1()
	if !got.Equal(r.Steps[1].Box) {
		t.Errorf("F1 should pick the mid box, got %v", got)
	}
	if (&Result{}).SelectByF1() != nil {
		t.Error("empty result must select nil")
	}
}

func TestSelectByPrecisionFloor(t *testing.T) {
	r := trajectory()
	// Floor 0.6: mid (0.7) and tiny (1.0) qualify; mid has higher recall.
	got := r.SelectByPrecisionFloor(0.6)
	if !got.Equal(r.Steps[1].Box) {
		t.Errorf("floor 0.6 should pick the mid box, got %v", got)
	}
	// Floor 0.95: only tiny qualifies.
	got = r.SelectByPrecisionFloor(0.95)
	if !got.Equal(r.Steps[2].Box) {
		t.Errorf("floor 0.95 should pick the tiny box, got %v", got)
	}
	// Impossible floor: nil.
	if r.SelectByPrecisionFloor(1.1) != nil {
		t.Error("impossible floor must select nil")
	}
}

func TestSelectorsAgreeWithFinalIndexDefault(t *testing.T) {
	r := trajectory()
	r.FinalIndex = 2 // what selectFinal-style policies would choose
	if !r.SelectMaxPrecision().Equal(r.Final()) {
		t.Error("SelectMaxPrecision must match the default final policy")
	}
}
