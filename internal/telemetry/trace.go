package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// RequestIDHeader is the HTTP header that carries a job's request ID
// across process boundaries: clients may set it on POST /v1/jobs, the
// gateway's RemoteExecutor forwards it on POST /internal/v1/execute,
// and every response echoes it — so one job's trace is correlatable
// across the gateway's and the worker's logs and timings.
const RequestIDHeader = "X-Request-Id"

type requestIDKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the context's request ID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a
		// time-derived ID still distinguishes concurrent jobs well
		// enough for log correlation.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// Span is one timed section of a trace: a pipeline stage of one job
// (or variant), named like "train/rf" or "discover/rf/prim".
type Span struct {
	Name    string
	Seconds float64
}

// StageTimer turns a sequence of stage-entry notifications into closed
// spans: each Start closes the span of the previous stage, and Stop
// closes the last one. It models exactly the core pipeline's OnStage
// hook, which fires when a stage begins but not when it ends (the next
// stage beginning — or the pipeline returning — is the end). Safe for
// concurrent use, though a single pipeline reports sequentially.
type StageTimer struct {
	onClose func(Span)
	now     func() time.Time // injectable for tests

	mu      sync.Mutex
	current string
	started time.Time
}

// NewStageTimer returns a timer that hands every closed span to
// onClose.
func NewStageTimer(onClose func(Span)) *StageTimer {
	return &StageTimer{onClose: onClose, now: time.Now}
}

// Start enters a new stage, closing the previous one (if any).
func (t *StageTimer) Start(name string) {
	t.mu.Lock()
	span, ok := t.closeLocked()
	t.current, t.started = name, t.now()
	t.mu.Unlock()
	if ok {
		t.onClose(span)
	}
}

// Stop closes the current stage, if any. Idempotent.
func (t *StageTimer) Stop() {
	t.mu.Lock()
	span, ok := t.closeLocked()
	t.mu.Unlock()
	if ok {
		t.onClose(span)
	}
}

// closeLocked builds the span for the current stage and clears it.
// Caller holds t.mu.
func (t *StageTimer) closeLocked() (Span, bool) {
	if t.current == "" {
		return Span{}, false
	}
	span := Span{Name: t.current, Seconds: t.now().Sub(t.started).Seconds()}
	t.current = ""
	return span, true
}
