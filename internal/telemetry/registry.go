// Package telemetry is the repository's zero-dependency observability
// substrate: a race-safe metrics registry (counters, gauges, histograms
// with exponential buckets) with Prometheus text-format exposition, a
// per-job stage tracer with cross-process request-ID propagation, HTTP
// middleware that records request metrics and structured access logs,
// and slog/pprof wiring helpers shared by cmd/redsserver and
// cmd/redsgateway.
//
// # Naming convention
//
// Every metric name must match
//
//	reds_<subsystem>_<name>_<unit>
//
// lower_snake_case throughout, with the trailing unit one of "total"
// (monotone counters), "seconds", "bytes", "jobs", "entries",
// "workers", "rules" or "fidelity". CheckName enforces the convention and every Must*
// registration applies it, so a misnamed metric fails loudly at
// startup rather than drifting into dashboards; the
// scripts/check-metric-names tool applies the same check to every
// metric-name literal in the source tree.
//
// # Hot path
//
// Counter.Add/Inc, Gauge.Set/Add and Histogram.Observe are atomic and
// allocation-free. Label lookup (Vec.With) takes a mutex and may
// allocate, so hot paths resolve their label children once, up front,
// and hold the returned instrument.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType is the exposition TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// nameRE is the shape of a valid metric name; CheckName additionally
// requires the reds_ prefix and a unit suffix.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// validUnits are the accepted trailing unit segments of a metric name.
var validUnits = map[string]bool{
	"total":    true, // monotone counters
	"seconds":  true,
	"bytes":    true,
	"jobs":     true,
	"entries":  true,
	"workers":  true,
	"rules":    true, // rule-set distillation sizes
	"fidelity": true, // distilled-vs-parent agreement ratios in [0,1]
}

// CheckName validates a metric name against the repository convention
// reds_<subsystem>_<name>_<unit> (see the package comment).
func CheckName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("telemetry: metric %q is not lower_snake_case", name)
	}
	parts := strings.Split(name, "_")
	if parts[0] != "reds" {
		return fmt.Errorf("telemetry: metric %q does not start with reds_", name)
	}
	if len(parts) < 3 {
		return fmt.Errorf("telemetry: metric %q needs at least reds_<subsystem>_<unit>", name)
	}
	if unit := parts[len(parts)-1]; !validUnits[unit] {
		return fmt.Errorf("telemetry: metric %q ends in %q, want a unit suffix (total, seconds, bytes, jobs, entries, workers, rules or fidelity)", name, unit)
	}
	return nil
}

// labelSep joins label values into a child key. 0xff cannot occur in
// valid UTF-8 label values, so joined keys cannot collide.
const labelSep = "\xff"

// family is one named metric with its children (one per label-value
// combination; a single unlabeled child for plain instruments).
type family struct {
	name       string
	help       string
	typ        metricType
	labelNames []string
	buckets    []float64 // histogram families only

	mu       sync.Mutex
	children map[string]child
}

// child is one (label values → series) member of a family. Exactly one
// of the value sources is set.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
	fn          func() float64 // read-through collector
	fnType      metricType
}

// value returns the child's current scalar value (histogram children
// are exported structurally, not through this).
func (c child) value() float64 {
	switch {
	case c.counter != nil:
		return float64(c.counter.Value())
	case c.gauge != nil:
		return c.gauge.Value()
	case c.fn != nil:
		return c.fn()
	}
	return math.NaN()
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; use NewRegistry. All methods
// are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the family for name, creating it if needed, and
// panics on a convention violation or a conflicting re-registration —
// both are programmer errors that must fail at startup, not scrape
// time.
func (r *Registry) register(name, help string, typ metricType, labelNames []string, buckets []float64) *family {
	if err := CheckName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s with %d labels (was %s with %d)",
				name, typ, len(labelNames), f.typ, len(f.labelNames)))
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic(fmt.Sprintf("telemetry: metric %s re-registered with label %q (was %q)", name, labelNames[i], f.labelNames[i]))
			}
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: labelNames,
		buckets:    buckets,
		children:   make(map[string]child),
	}
	r.families[name] = f
	return f
}

// childKey joins label values; panics on arity mismatch (a programmer
// error: the call site names the wrong number of labels).
func (f *family) childKey(labelValues []string) string {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d", f.name, len(f.labelNames), len(labelValues)))
	}
	return strings.Join(labelValues, labelSep)
}

// Counter is a monotone counter. All methods are atomic and
// allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programmer error and ignored —
// counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are atomic and
// allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta (CAS loop, lock-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// Histogram registers (or returns the existing) unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or returns the existing) counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, labelNames, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Takes a lock; hot paths should resolve once and keep the
// result.
func (v *CounterVec) With(labelValues ...string) *Counter {
	key := v.f.childKey(labelValues)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.children[key]; ok && c.counter != nil {
		return c.counter
	}
	c := &Counter{}
	v.f.children[key] = child{labelValues: cloneValues(labelValues), counter: c}
	return c
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns the existing) gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, labelNames, nil)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	key := v.f.childKey(labelValues)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.children[key]; ok && c.gauge != nil {
		return c.gauge
	}
	g := &Gauge{}
	v.f.children[key] = child{labelValues: cloneValues(labelValues), gauge: g}
	return g
}

// GaugeFunc registers a read-through gauge whose value is fn(),
// evaluated at scrape time. Re-registering the same name (and labels)
// replaces the closure — last writer wins, which lets a restarted
// component re-bind its collector.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.registerFunc(name, help, typeGauge, fn, labelPairs)
}

// CounterFunc registers a read-through counter (exposed with TYPE
// counter) whose value is fn() at scrape time. fn must be monotone.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.registerFunc(name, help, typeCounter, fn, labelPairs)
}

// registerFunc installs a collector child. labelPairs alternates
// name1, value1, name2, value2, ...
func (r *Registry) registerFunc(name, help string, typ metricType, fn func() float64, labelPairs []string) {
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %s: odd label pair list", name))
	}
	names := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.register(name, help, typ, names, nil)
	key := f.childKey(values)
	f.mu.Lock()
	f.children[key] = child{labelValues: values, fn: fn, fnType: typ}
	f.mu.Unlock()
}

// Value reads one series by name and label values (in the family's
// label-name order). Histograms report their observation count. This
// is how surfaces that must not drift from /metrics — /v1/healthz —
// read their numbers: both go through the registry.
func (r *Registry) Value(name string, labelValues ...string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	key := f.childKey(labelValues)
	f.mu.Lock()
	c, ok := f.children[key]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	if c.histogram != nil {
		return float64(c.histogram.Count()), true
	}
	return c.value(), true
}

// Sum adds up every series of a family — the fleet-wide view of a
// labeled counter (e.g. dispatches across workers).
func (r *Registry) Sum(name string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var sum float64
	for _, c := range f.children {
		if c.histogram != nil {
			sum += float64(c.histogram.Count())
			continue
		}
		sum += c.value()
	}
	return sum, true
}

// sortedFamilies returns families sorted by name; each family's
// children sorted by label values. Used by the expositor.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

func cloneValues(vs []string) []string {
	out := make([]string, len(vs))
	copy(out, vs)
	return out
}
