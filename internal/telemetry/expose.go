package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text format
// served by Handler.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry in Prometheus text format (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		bw := bufio.NewWriter(w)
		_ = r.WriteText(bw)
		_ = bw.Flush()
	})
}

// WriteText renders every family in Prometheus text exposition format:
// families sorted by name, children sorted by label values, HELP and
// TYPE lines first — deterministic output, so scrapes (and golden
// tests) are diffable.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	f.mu.Lock()
	kids := make([]child, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	f.mu.Unlock()
	if len(kids) == 0 {
		return nil
	}
	sort.Slice(kids, func(a, b int) bool {
		return strings.Join(kids[a].labelValues, labelSep) < strings.Join(kids[b].labelValues, labelSep)
	})

	var b strings.Builder
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(string(f.typ))
	b.WriteByte('\n')
	for _, c := range kids {
		if c.histogram != nil {
			writeHistogram(&b, f, c)
			continue
		}
		b.WriteString(f.name)
		writeLabels(&b, f.labelNames, c.labelValues, "")
		b.WriteByte(' ')
		b.WriteString(formatValue(c.value()))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits the cumulative _bucket series, the +Inf bucket,
// and the _sum/_count pair of one histogram child.
func writeHistogram(b *strings.Builder, f *family, c child) {
	upper, cum := c.histogram.Buckets()
	count := c.histogram.Count()
	for i, ub := range upper {
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labelNames, c.labelValues, formatValue(ub))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum[i], 10))
		b.WriteByte('\n')
	}
	b.WriteString(f.name)
	b.WriteString("_bucket")
	writeLabels(b, f.labelNames, c.labelValues, "+Inf")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(count, 10))
	b.WriteByte('\n')

	b.WriteString(f.name)
	b.WriteString("_sum")
	writeLabels(b, f.labelNames, c.labelValues, "")
	b.WriteByte(' ')
	b.WriteString(formatValue(c.histogram.Sum()))
	b.WriteByte('\n')

	b.WriteString(f.name)
	b.WriteString("_count")
	writeLabels(b, f.labelNames, c.labelValues, "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(count, 10))
	b.WriteByte('\n')
}

// writeLabels renders {name="value",...}, appending the le bucket
// label when non-empty. Nothing is written for a label-free series.
func writeLabels(b *strings.Builder, names, values []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatValue renders a sample value: integers without an exponent
// (counters stay grep-able), everything else in Go's shortest float
// form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes
// are legal there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
