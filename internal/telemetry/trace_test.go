package telemetry

import (
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"
)

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("empty context carries request id %q", got)
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Fatalf("request id = %q, want abc123", got)
	}
	if WithRequestID(ctx, "") != ctx {
		t.Fatal("WithRequestID(\"\") should return the context unchanged")
	}
}

func TestNewRequestID(t *testing.T) {
	idRE := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := NewRequestID(), NewRequestID()
	if !idRE.MatchString(a) || !idRE.MatchString(b) {
		t.Fatalf("ids %q/%q are not 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two fresh ids collided: %q", a)
	}
}

func TestStageTimerClosesSpansOnTransition(t *testing.T) {
	var spans []Span
	timer := NewStageTimer(func(s Span) { spans = append(spans, s) })
	// Deterministic clock: each call advances one second.
	now := time.Unix(0, 0)
	timer.now = func() time.Time {
		now = now.Add(time.Second)
		return now
	}

	timer.Start("train")    // nothing to close yet
	timer.Start("sample")   // closes train
	timer.Start("discover") // closes sample
	timer.Stop()            // closes discover
	timer.Stop()            // idempotent: no span

	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	wantNames := []string{"train", "sample", "discover"}
	for i, s := range spans {
		if s.Name != wantNames[i] {
			t.Errorf("span %d = %q, want %q", i, s.Name, wantNames[i])
		}
		if s.Seconds <= 0 {
			t.Errorf("span %q has non-positive duration %v", s.Name, s.Seconds)
		}
	}
}

func TestInstrumentAssignsAndPropagatesRequestID(t *testing.T) {
	reg := NewRegistry()
	var seen string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
		w.WriteHeader(http.StatusTeapot)
	})
	h := Instrument(inner, reg, nil)

	// A caller-provided id reaches the handler context and the response
	// header unchanged.
	req := httptest.NewRequest("GET", "/v1/jobs", nil)
	req.Header.Set(RequestIDHeader, "deadbeefdeadbeef")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if seen != "deadbeefdeadbeef" {
		t.Fatalf("handler saw request id %q, want the inbound header", seen)
	}
	if got := rr.Header().Get(RequestIDHeader); got != "deadbeefdeadbeef" {
		t.Fatalf("response echoed %q, want the inbound header", got)
	}

	// Without the header a fresh id is assigned and echoed.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs", nil))
	if seen == "" || seen == "deadbeefdeadbeef" {
		t.Fatalf("handler saw %q, want a fresh generated id", seen)
	}
	if got := rr.Header().Get(RequestIDHeader); got != seen {
		t.Fatalf("response echoed %q, want the generated id %q", got, seen)
	}

	// Both requests were recorded with method and status code.
	if v, ok := reg.Value("reds_http_requests_total", "GET", "418"); !ok || v != 2 {
		t.Fatalf("requests counter = %v/%v, want 2/true", v, ok)
	}
	if v, ok := reg.Value("reds_http_request_seconds", "GET"); !ok || v != 2 {
		t.Fatalf("request latency count = %v/%v, want 2/true", v, ok)
	}
}
