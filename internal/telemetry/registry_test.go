package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCheckName(t *testing.T) {
	valid := []string{
		"reds_engine_jobs_submitted_total",
		"reds_cache_size_bytes",
		"reds_exec_stage_seconds",
		"reds_engine_queue_depth_jobs",
		"reds_store_wal_length_entries",
		"reds_cluster_alive_workers",
	}
	for _, name := range valid {
		if err := CheckName(name); err != nil {
			t.Errorf("CheckName(%q) = %v, want nil", name, err)
		}
	}
	invalid := []string{
		"engine_jobs_total",       // no reds_ prefix
		"reds_total",              // too few segments
		"reds_engine_queue",       // no unit suffix
		"reds_engine_jobs_count",  // checkname:invalid — "count" is not a unit
		"Reds_Engine_Jobs_Total",  // not lower case
		"reds__engine_total",      // empty segment
		"reds_engine_jobs_total ", // trailing space
		"reds-engine-jobs-total",  // dashes
	}
	for _, name := range invalid {
		if err := CheckName(name); err == nil {
			t.Errorf("CheckName(%q) = nil, want error", name)
		}
	}
}

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reds_test_ops_total", "test counter")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if v, ok := reg.Value("reds_test_ops_total"); !ok || v != workers*per {
		t.Fatalf("registry value = %v/%v, want %d/true", v, ok, workers*per)
	}
}

func TestCounterAddIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5 (negative add must be ignored)", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("reds_test_size_bytes", "test gauge")
	g.Set(10.5)
	g.Add(2)
	g.Add(-4.5)
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge = %v, want 8", got)
	}
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8 {
		t.Fatalf("gauge after balanced concurrent adds = %v, want 8", got)
	}
}

func TestVecChildrenAreDistinctAndStable(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("reds_test_hits_total", "per-cache hits", "cache")
	a1 := vec.With("model")
	b := vec.With("label")
	a2 := vec.With("model")
	if a1 != a2 {
		t.Fatal("With(same labels) returned different instruments")
	}
	if a1 == b {
		t.Fatal("With(different labels) returned the same instrument")
	}
	a1.Add(3)
	b.Inc()
	if v, _ := reg.Value("reds_test_hits_total", "model"); v != 3 {
		t.Fatalf("model child = %v, want 3", v)
	}
	if sum, _ := reg.Sum("reds_test_hits_total"); sum != 4 {
		t.Fatalf("family sum = %v, want 4", sum)
	}
}

func TestRegisterPanics(t *testing.T) {
	reg := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad name", func() { reg.Counter("bad_name", "x") })
	reg.Counter("reds_test_ops_total", "x")
	mustPanic("type conflict", func() { reg.Gauge("reds_test_ops_total", "x") })
	mustPanic("label conflict", func() { reg.CounterVec("reds_test_ops_total", "x", "worker") })
	mustPanic("no buckets", func() { reg.Histogram("reds_test_lat_seconds", "x", nil) })
	mustPanic("label arity", func() {
		reg.CounterVec("reds_test_hits_total", "x", "cache").With("a", "b")
	})
}

func TestGaugeFuncReplacedOnReregister(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("reds_test_depth_jobs", "queue depth", func() float64 { return 1 })
	reg.GaugeFunc("reds_test_depth_jobs", "queue depth", func() float64 { return 7 })
	if v, ok := reg.Value("reds_test_depth_jobs"); !ok || v != 7 {
		t.Fatalf("gauge func = %v/%v, want 7/true (last registration wins)", v, ok)
	}
}

func TestValueUnknown(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.Value("reds_test_missing_total"); ok {
		t.Fatal("Value of unregistered metric reported ok")
	}
	reg.CounterVec("reds_test_hits_total", "x", "cache")
	if _, ok := reg.Value("reds_test_hits_total", "never-touched"); ok {
		t.Fatal("Value of untouched child reported ok")
	}
}

func TestHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reds_test_ops_total", "line one\nline \\two").Inc()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# HELP reds_test_ops_total line one\nline \\two`) {
		t.Fatalf("help not escaped:\n%s", sb.String())
	}
}
