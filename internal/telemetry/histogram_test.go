package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	// Boundary semantics are v <= upper bound (Prometheus le).
	for _, v := range []float64{0.05, 0.1} { // first bucket, incl. boundary
		h.Observe(v)
	}
	h.Observe(0.5) // second bucket
	h.Observe(10)  // third bucket, on the boundary
	h.Observe(42)  // +Inf only

	upper, cum := h.Buckets()
	wantUpper := []float64{0.1, 1, 10}
	wantCum := []uint64{2, 3, 4}
	for i := range wantUpper {
		if upper[i] != wantUpper[i] {
			t.Fatalf("upper[%d] = %v, want %v", i, upper[i], wantUpper[i])
		}
		if cum[i] != wantCum[i] {
			t.Fatalf("cumulative[%d] = %d, want %d", i, cum[i], wantCum[i])
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 10 + 42; math.Abs(h.Sum()-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("reds_test_lat_seconds", "latency", []float64{1, 2, 4})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	_, cum := h.Buckets()
	if cum[0] != 0 || cum[1] != workers*per || cum[2] != workers*per {
		t.Fatalf("cumulative = %v, want [0 %d %d]", cum, workers*per, workers*per)
	}
	if want := 1.5 * workers * per; math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestHistogramUnsortedBucketsAreSorted(t *testing.T) {
	h := newHistogram([]float64{10, 0.1, 1})
	h.Observe(0.5)
	upper, cum := h.Buckets()
	if upper[0] != 0.1 || upper[1] != 1 || upper[2] != 10 {
		t.Fatalf("upper = %v, want sorted [0.1 1 10]", upper)
	}
	if cum[0] != 0 || cum[1] != 1 || cum[2] != 1 {
		t.Fatalf("cumulative = %v, want [0 1 1]", cum)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExponentialBuckets(0, ...) should panic")
		}
	}()
	ExponentialBuckets(0, 2, 4)
}

func TestHistogramVecSharedLayout(t *testing.T) {
	reg := NewRegistry()
	vec := reg.HistogramVec("reds_test_lat_seconds", "latency", []float64{1, 2}, "stage")
	a := vec.With("train")
	b := vec.With("label")
	a.Observe(0.5)
	b.Observe(1.5)
	ua, _ := a.Buckets()
	ub, _ := b.Buckets()
	if len(ua) != 2 || len(ub) != 2 {
		t.Fatalf("children have bucket counts %d/%d, want 2/2", len(ua), len(ub))
	}
	if v, ok := reg.Value("reds_test_lat_seconds", "train"); !ok || v != 1 {
		t.Fatalf("histogram Value (count) = %v/%v, want 1/true", v, ok)
	}
}
