package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets (cumulative at
// exposition, non-cumulative internally) and tracks their sum.
// Observe is atomic and allocation-free: the bucket index is found by
// a linear scan over the (few dozen at most) upper bounds and the
// counts are per-bucket atomics, so concurrent observers never
// contend on a lock. The trade-off of lock-free counts is that a
// scrape racing an Observe may see the bucket increment before the
// sum (or vice versa) — each series is individually consistent, which
// is all Prometheus semantics ask.
type Histogram struct {
	upper   []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and their cumulative counts (the
// +Inf bucket is the total count and not included).
func (h *Histogram) Buckets() (upper []float64, cumulative []uint64) {
	upper = make([]float64, len(h.upper))
	copy(upper, h.upper)
	cumulative = make([]uint64, len(h.upper))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return upper, cumulative
}

// HistogramVec is a family of histograms distinguished by label
// values. Every child shares the family's bucket layout.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns the existing) histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %s has no buckets", name))
	}
	return &HistogramVec{f: r.register(name, help, typeHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values, creating it
// on first use. Takes a lock; hot paths should resolve once and keep
// the result.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	key := v.f.childKey(labelValues)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.children[key]; ok && c.histogram != nil {
		return c.histogram
	}
	h := newHistogram(v.f.buckets)
	v.f.children[key] = child{labelValues: cloneValues(labelValues), histogram: h}
	return h
}

// ExponentialBuckets returns count upper bounds starting at start and
// multiplying by factor — the standard layout for latency histograms,
// where resolution should be proportional to magnitude.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}
