package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriteTextGolden pins the full exposition output: family ordering
// by name, child ordering by label values, HELP/TYPE lines, cumulative
// histogram rendering, label escaping and integer formatting. Any
// format drift breaks scrapers, so this is a byte-exact comparison.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	hits := reg.CounterVec("reds_t_cache_hits_total", "Cache hits.", "cache")
	hits.With("model").Add(3)
	hits.With(`a\b"c`).Inc()
	reg.GaugeFunc("reds_t_depth_jobs", "Queue depth.", func() float64 { return 2 })
	h := reg.HistogramVec("reds_t_lat_seconds", "Latency.", []float64{0.5, 2}, "stage").With("train")
	// Exactly representable values keep the _sum line deterministic.
	h.Observe(0.25)
	h.Observe(1.5)
	h.Observe(4.25)
	reg.Counter("reds_t_ops_total", "Total ops.").Add(42)

	want := strings.Join([]string{
		`# HELP reds_t_cache_hits_total Cache hits.`,
		`# TYPE reds_t_cache_hits_total counter`,
		`reds_t_cache_hits_total{cache="a\\b\"c"} 1`,
		`reds_t_cache_hits_total{cache="model"} 3`,
		`# HELP reds_t_depth_jobs Queue depth.`,
		`# TYPE reds_t_depth_jobs gauge`,
		`reds_t_depth_jobs 2`,
		`# HELP reds_t_lat_seconds Latency.`,
		`# TYPE reds_t_lat_seconds histogram`,
		`reds_t_lat_seconds_bucket{stage="train",le="0.5"} 1`,
		`reds_t_lat_seconds_bucket{stage="train",le="2"} 2`,
		`reds_t_lat_seconds_bucket{stage="train",le="+Inf"} 3`,
		`reds_t_lat_seconds_sum{stage="train"} 6`,
		`reds_t_lat_seconds_count{stage="train"} 3`,
		`# HELP reds_t_ops_total Total ops.`,
		`# TYPE reds_t_ops_total counter`,
		`reds_t_ops_total 42`,
		``,
	}, "\n")

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestEmptyFamiliesAreOmitted(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("reds_t_cache_hits_total", "Cache hits.", "cache") // no children yet
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Fatalf("childless family rendered output:\n%s", sb.String())
	}
}

func TestHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reds_t_ops_total", "Total ops.").Inc()
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != TextContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, TextContentType)
	}
	if !strings.Contains(rr.Body.String(), "reds_t_ops_total 1") {
		t.Fatalf("body missing series:\n%s", rr.Body.String())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		-7:      "-7",
		0.5:     "0.5",
		1e15:    "1e+15", // too large for plain integer formatting
		0.00025: "0.00025",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}
