package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Instrument wraps an HTTP handler with the shared server telemetry:
//
//   - every request gets a request ID (the caller's X-Request-Id, or a
//     fresh one), put into the request context and echoed on the
//     response — the anchor that correlates access logs, job traces
//     and worker-side execution logs;
//   - reds_http_requests_total{method,code} and
//     reds_http_request_seconds{method} are recorded on completion;
//   - one structured access-log line per request at Info level.
//
// reg and log may each be nil to skip that half.
func Instrument(next http.Handler, reg *Registry, log *slog.Logger) http.Handler {
	var requests *CounterVec
	var durations *HistogramVec
	if reg != nil {
		requests = reg.CounterVec("reds_http_requests_total",
			"HTTP requests served, by method and status code.", "method", "code")
		durations = reg.HistogramVec("reds_http_request_seconds",
			"HTTP request handling latency.", ExponentialBuckets(0.0005, 4, 10), "method")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(WithRequestID(r.Context(), id)))
		elapsed := time.Since(start)
		if requests != nil {
			requests.With(r.Method, strconv.Itoa(sw.status)).Inc()
			durations.With(r.Method).Observe(elapsed.Seconds())
		}
		if log != nil {
			log.Info("http request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration_ms", float64(elapsed.Microseconds())/1000,
				"request_id", id)
		}
	})
}

// statusWriter remembers the response status for the access log and
// the requests counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// NewLogger builds the structured logger both binaries hang off their
// -log.level and -log.format flags: level is debug, info, warn or
// error; format is "json" (the default — one object per line, ready
// for a log pipeline) or "text" (slog's key=value form, for humans).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "", "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}

// DebugHandler serves the operational debug surface mounted behind the
// -debug.addr flag: net/http/pprof under /debug/pprof/ plus a second
// /metrics mount, so profiling and scraping work even when the public
// listener is saturated. Deliberately a separate handler (and in the
// binaries a separate listener) — pprof must never be exposed on the
// public address.
func DebugHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	return mux
}
