// Command calibrate documents how the function thresholds and stand-in
// constants of internal/funcs were fixed: for every Table 1 function it
// prints the empirical output quantile matching the paper's positive
// share, next to the output range. Verified formulas should land on the
// paper's published thresholds (they do — see DESIGN.md section 5);
// stand-ins were tuned until their quantiles did.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/reds-go/reds/internal/funcs"
)

func quantile(name string, sharePct float64) {
	f, err := funcs.Get(name)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(123))
	n := 200000
	vals := make([]float64, n)
	for i := range vals {
		x := make([]float64, f.Dim())
		for j := range x {
			x[j] = rng.Float64()
		}
		vals[i] = f.Eval(x)
	}
	sort.Float64s(vals)
	q := vals[int(float64(n)*sharePct/100)]
	fmt.Printf("%-12s share %.1f%% -> thr %.6g   (min %.4g med %.4g max %.4g)\n",
		name, sharePct, q, vals[0], vals[n/2], vals[n-1])
}

func main() {
	quantile("borehole", 30.9)
	quantile("hart6sc", 22.6)
	quantile("oakoh04", 24.9)
	quantile("ellipse", 22.5)
	quantile("soblev99", 41.3)
	quantile("morretal06", 34.5)
	quantile("moon10hd", 42.1)
	quantile("moon10hdc1", 34.2)
	quantile("moon10low", 45.6)
	quantile("loepetal13", 38.9)
	quantile("linketal06sin", 27.2)
	quantile("willetal06", 24.9)
	quantile("hart3", 33.5)
	quantile("hart4", 30.1)
	quantile("ishigami", 25.5)
	quantile("sobol", 39.2)
	quantile("welchetal92", 35.6)
	quantile("wingweight", 37.8)
	quantile("piston", 36.8)
	quantile("otlcircuit", 22.5)
	quantile("linketal06dec", 25.3)
	quantile("linketal06simple", 28.5)
	quantile("morris", 30.1)
}
