package flattree

import "math"

// Ensemble is a tree ensemble in source form together with the
// accumulation its owner applies over the leaf values: a prediction is
// Init + Scale·Σ leaf(tree, x), thresholded at 0 when Margin is true
// (gbt's log-odds margin) or divided by len(Trees) and thresholded at
// 0.5 otherwise (rf's mean vote). It is what rule-set distillation
// (internal/ruleset) consumes: models expose it by decoding their
// compiled table, so the extracted rules describe exactly the
// structure the batch kernel runs.
type Ensemble struct {
	Trees       [][]Node
	Init, Scale float64
	Margin bool
}

// floatFromKey inverts orderKey for non-NaN inputs: a set top bit
// marks an encoded non-negative (clear it), anything else an encoded
// negative (flip every bit). -0.0 decodes as +0.0, which orderKey
// already collapsed at encode time.
func floatFromKey(k uint64) float64 {
	if k&0x8000_0000_0000_0000 != 0 {
		return math.Float64frombits(k ^ 0x8000_0000_0000_0000)
	}
	return math.Float64frombits(^k)
}

// Decode reconstructs the source trees of the compiled table: the
// inverse of Compile up to node numbering (Decode emits each tree in
// the table's level order) and -0.0 splits (returned as +0.0, the key
// they were encoded under). Compile(f.Decode()) is an identical table.
func (f *Table) Decode() [][]Node {
	trees := make([][]Node, len(f.Roots))
	for ti, r := range f.Roots {
		var out []Node
		// Slots queued in level order; a node's position in the queue is
		// its index in out, so children indices are known at append time.
		queue := []int{int(r)}
		for qi := 0; qi < len(queue); qi++ {
			k := queue[qi]
			meta := f.node[k+1]
			left := int(uint32(meta))
			if left == k { // self-looping slot: a leaf
				out = append(out, Node{Leaf: true, Value: f.Value[k>>1]})
				continue
			}
			out = append(out, Node{
				Feature: int32(meta >> 32),
				Split:   floatFromKey(f.node[k]),
				Left:    int32(len(queue)),
				Right:   int32(len(queue) + 1),
			})
			queue = append(queue, left, left+2)
		}
		trees[ti] = out
	}
	return trees
}
