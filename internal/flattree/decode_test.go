package flattree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomTree grows a random binary tree with depth-bounded splits,
// including negative, zero and repeated split values.
func randomTree(rng *rand.Rand, depth int) []Node {
	var nodes []Node
	var grow func(d int) int32
	grow = func(d int) int32 {
		idx := int32(len(nodes))
		nodes = append(nodes, Node{})
		if d == 0 || rng.Float64() < 0.3 {
			nodes[idx] = Node{Leaf: true, Value: rng.NormFloat64()}
			return idx
		}
		splits := []float64{rng.Float64(), -rng.Float64(), 0, 0.5, 1e-300, math.MaxFloat64}
		nd := Node{
			Feature: int32(rng.Intn(4)),
			Split:   splits[rng.Intn(len(splits))],
		}
		nodes[idx] = nd
		nodes[idx].Left = grow(d - 1)
		nodes[idx].Right = grow(d - 1)
		return idx
	}
	grow(depth)
	return nodes
}

// TestDecodeRoundTrip asserts Compile(Decode(table)) reproduces the
// table bit for bit, and that the decoded trees evaluate identically.
func TestDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		trees := make([][]Node, 1+rng.Intn(8))
		for i := range trees {
			trees[i] = randomTree(rng, 1+rng.Intn(6))
		}
		orig := Compile(trees)
		decoded := orig.Decode()
		again := Compile(decoded)
		if !reflect.DeepEqual(orig.node, again.node) {
			t.Fatalf("trial %d: node words differ after decode/compile round trip", trial)
		}
		if !reflect.DeepEqual(orig.Value, again.Value) {
			t.Fatalf("trial %d: leaf values differ after round trip", trial)
		}
		if !reflect.DeepEqual(orig.Roots, again.Roots) {
			t.Fatalf("trial %d: roots differ after round trip", trial)
		}

		pts := make([][]float64, 64)
		for i := range pts {
			row := make([]float64, 4)
			for j := range row {
				switch rng.Intn(8) {
				case 0:
					row[j] = math.Inf(1)
				case 1:
					row[j] = math.Inf(-1)
				case 2:
					row[j] = math.NaN()
				default:
					row[j] = rng.NormFloat64()
				}
			}
			pts[i] = row
		}
		a := make([]float64, len(pts))
		b := make([]float64, len(pts))
		orig.SumInto(a, pts, 4, 0.25, 0.1)
		again.SumInto(b, pts, 4, 0.25, 0.1)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("trial %d: point %d evaluates differently: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

// TestFloatFromKey asserts the key codec is bijective on non-NaN
// floats (with -0.0 collapsed onto +0.0 by design).
func TestFloatFromKey(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), 1e-300, -1e-300}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		vals = append(vals, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(60)-30)))
	}
	for _, v := range vals {
		got := floatFromKey(orderKey(v))
		want := v + 0 // collapse -0.0 like orderKey does
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("floatFromKey(orderKey(%v)) = %v, want %v", v, got, want)
		}
	}
	// Keys ordered like floats must decode back in the same order.
	if floatFromKey(orderKey(1.5)) <= floatFromKey(orderKey(1.25)) {
		t.Fatal("decoded key order broken")
	}
}
