// Package flattree compiles ensembles of binary decision trees into
// one contiguous node table and batch-evaluates them with a
// branch-free lockstep descent. It is the shared machinery behind the
// metamodel.BatchModel implementations of rf and gbt; the per-point
// traversals stay package-local and untouched, and differential tests
// in both packages assert the two paths are byte-identical.
package flattree

import (
	"math"
	"math/bits"
	"sync"
)

// Table is a compiled ensemble.
//
// # Layout
//
// The table interleaves two 8-byte words per node — node[2k] is the
// split threshold as an order-preserving integer key (see orderKey)
// and node[2k+1] packs feature<<32 | 2*left — so a descent step
// touches exactly one cache-line-adjacent pair with one bounds check.
// Node indices are premultiplied by 2 throughout (roots included).
// Internal nodes send x[feature] <= thresh to left and everything else
// to left+1: sibling pairs are always adjacent, which is what lets the
// packed word store only the left child. Leaves are self-looping
// (left == self) with an absorbing threshold key, so a descent that
// has reached its leaf stays put under further steps; Value[k] holds
// the leaf value. Each tree is laid out in level order from Roots[t],
// keeping the near-root levels — the ones every point visits — on a
// handful of cache lines.
//
// # Why the descent looks the way it does
//
// A taken/not-taken split on fresh data is close to a coin flip, so
// the obvious `if x > thresh` walk mispredicts about every other node
// and stalls for most of its cycles (measured: a branchy flat walk is
// no faster than the per-point one). With integer threshold keys the
// child select is pure arithmetic:
//
//	n = left(n) + 2*(key(x[feature(n)]) > tkey(n))
//
// with the comparison bit taken from the borrow of an unsigned
// subtract (bits.Sub64). Eight points descend each tree in lockstep so
// their dependent load chains overlap, and one settle check per level
// (all eight lanes self-looping) ends the descent. Trees iterate
// outer, points inner: the tree being descended stays L1-resident
// across the whole chunk, whereas a per-point walk streams the entire
// ensemble through the cache for every single point — its cost grows
// with ensemble size while the flat path's stays linear.
type Table struct {
	node  []uint64  // interleaved (tkey, feature<<32|2*left) pairs
	Value []float64 // leaf value per node (0 at internal nodes)
	Roots []int32   // premultiplied root index per tree
}

// leafKey is the self-looping leaves' threshold key. It is the maximum
// uint64, strictly above every point key — orderKey maps NaN-free
// floats to at most orderKey(+Inf) = 0xFFF0... and NaN to
// math.MaxUint64 — so the gt bit is 0 for every input, NaN included,
// and a settled lane can never escape its leaf.
const leafKey = math.MaxUint64

// orderKey maps a float64 to a uint64 whose unsigned order matches
// float order — the radix-sort float trick: flip every bit of
// negatives, only the sign bit of non-negatives. Adding +0.0 first
// collapses -0.0 onto +0.0 so the two zeros compare equal, exactly
// like the float compare they replace; ±Inf encode to the extreme
// ordinary keys. NaN (either sign) maps to the maximum key, which
// makes `x > thresh` true at every internal node — the exact route of
// the per-point paths, whose `x <= split` comparison is false for NaN
// — while still absorbed by leafKey.
func orderKey(v float64) uint64 {
	if v != v {
		return math.MaxUint64
	}
	u := math.Float64bits(v + 0)
	return u ^ (uint64(int64(u)>>63) | 0x8000_0000_0000_0000)
}

// Node is one source node handed to Compile: either an internal split
// (Feature/Split/Left/Right indices into the same slice) or a leaf
// (Leaf true, Value set).
type Node struct {
	Feature     int32
	Split       float64
	Left, Right int32
	Leaf        bool
	Value       float64
}

// Compile flattens the trees (each a slice of Nodes rooted at index 0)
// into one table.
func Compile(trees [][]Node) *Table {
	total := 0
	for _, t := range trees {
		total += len(t)
	}
	f := &Table{
		node:  make([]uint64, 0, 2*total),
		Value: make([]float64, 0, total),
		Roots: make([]int32, 0, len(trees)),
	}
	// Queue of (source node, flat slot); slots are reserved in sibling
	// pairs before their subtrees are visited, which yields the
	// level-order layout. reserve emits a self-looping leaf; interior
	// nodes overwrite the slot when they are dequeued. Slot indices are
	// premultiplied.
	type pending struct{ src, dst int32 }
	var queue []pending
	reserve := func() int32 {
		dst := int32(len(f.node))
		f.node = append(f.node, leafKey, uint64(dst))
		f.Value = append(f.Value, 0)
		return dst
	}
	for _, t := range trees {
		root := reserve()
		f.Roots = append(f.Roots, root)
		queue = append(queue[:0], pending{0, root})
		for qi := 0; qi < len(queue); qi++ {
			p := queue[qi]
			nd := &t[p.src]
			if nd.Leaf {
				f.Value[p.dst>>1] = nd.Value
				continue
			}
			l := reserve()
			reserve() // right sibling, l+2 premultiplied
			f.node[p.dst] = orderKey(nd.Split)
			f.node[p.dst+1] = uint64(nd.Feature)<<32 | uint64(l)
			queue = append(queue, pending{nd.Left, l}, pending{nd.Right, l + 2})
		}
	}
	return f
}

// MemoryBytes is the table's resident size, for cache accounting.
func (f *Table) MemoryBytes() int64 {
	return int64(len(f.node))*8 + int64(len(f.Value))*8 + int64(len(f.Roots))*4
}

// NodeBytes is the flat-table weight per source node (two packed words
// plus the value slot), for size estimates made before the table is
// compiled.
const NodeBytes = 24

// keyScratch pools the per-chunk encoded-coordinate buffers, so
// concurrent batch workers reuse their traversal scratch instead of
// allocating per call.
var keyScratch = sync.Pool{New: func() any { s := make([]uint64, 0); return &s }}

// encodePoints fills one flat buffer with orderKey of every coordinate
// of the chunk, the integer mirror of pts the descent indexes.
func encodePoints(buf []uint64, pts [][]float64, dim int) []uint64 {
	buf = buf[:0]
	for _, x := range pts {
		for _, v := range x[:dim] {
			buf = append(buf, orderKey(v))
		}
	}
	return buf
}

// step advances one descent by a level: one paired node load, one
// encoded-coordinate load, and the branch-free child select — the
// select bit is the borrow of tkey - xkey (1 iff x > thresh),
// premultiplied by 2 to pick the adjacent sibling.
func step(node []uint64, keys []uint64, base int, n int) int {
	meta := node[n+1]
	t := node[n]
	x := keys[base+int(meta>>32)]
	_, gt := bits.Sub64(t, x, 0)
	return int(uint32(meta)) + int(gt)<<1
}

// SumInto sets dst[i] = init and accumulates scale times every tree's
// leaf value for pts[i], tree by tree in index order — so with the
// callers' (init, scale) of (0, 1) for rf and (base, eta) for gbt the
// floating-point sequence matches their per-point loops bit for bit
// (a multiply by 1.0 is exact). dim is the row width the descent may
// index.
func (f *Table) SumInto(dst []float64, pts [][]float64, dim int, init, scale float64) {
	for i := range dst {
		dst[i] = init
	}
	bufp := keyScratch.Get().(*[]uint64)
	keys := encodePoints(*bufp, pts, dim)
	node, value := f.node, f.Value
	oct := len(pts) &^ 7
	for _, r := range f.Roots {
		root := int(r)
		for i := 0; i < oct; i += 8 {
			b0 := i * dim
			b1, b2, b3 := b0+dim, b0+2*dim, b0+3*dim
			b4, b5, b6, b7 := b0+4*dim, b0+5*dim, b0+6*dim, b0+7*dim
			n0, n1, n2, n3 := root, root, root, root
			n4, n5, n6, n7 := root, root, root, root
			for {
				c0 := step(node, keys, b0, n0)
				c1 := step(node, keys, b1, n1)
				c2 := step(node, keys, b2, n2)
				c3 := step(node, keys, b3, n3)
				c4 := step(node, keys, b4, n4)
				c5 := step(node, keys, b5, n5)
				c6 := step(node, keys, b6, n6)
				c7 := step(node, keys, b7, n7)
				if (c0^n0)|(c1^n1)|(c2^n2)|(c3^n3)|(c4^n4)|(c5^n5)|(c6^n6)|(c7^n7) == 0 {
					break // all eight lanes sit on self-looping leaves
				}
				n0, n1, n2, n3 = c0, c1, c2, c3
				n4, n5, n6, n7 = c4, c5, c6, c7
			}
			dst[i] += scale * value[n0>>1]
			dst[i+1] += scale * value[n1>>1]
			dst[i+2] += scale * value[n2>>1]
			dst[i+3] += scale * value[n3>>1]
			dst[i+4] += scale * value[n4>>1]
			dst[i+5] += scale * value[n5>>1]
			dst[i+6] += scale * value[n6>>1]
			dst[i+7] += scale * value[n7>>1]
		}
		for i := oct; i < len(pts); i++ {
			bo := i * dim
			n := root
			for {
				c := step(node, keys, bo, n)
				if c == n {
					break
				}
				n = c
			}
			dst[i] += scale * value[n>>1]
		}
	}
	*bufp = keys
	keyScratch.Put(bufp)
}
