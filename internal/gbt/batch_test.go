package gbt

import (
	"math"
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/metamodel"
)

func tiedTrainData(n, m int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	levels := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			if j%2 == 0 {
				row[j] = levels[rng.Intn(len(levels))]
			} else {
				row[j] = rng.Float64()
			}
		}
		x[i] = row
		if row[0] < 0.5 && row[1] > 0.3 {
			y[i] = 1
		}
	}
	return dataset.MustNew(x, y)
}

func batchQueryPoints(d *dataset.Dataset, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	m := d.M()
	pts := make([][]float64, 0, n)
	for len(pts) < n {
		row := make([]float64, m)
		switch len(pts) % 4 {
		case 0:
			for j := range row {
				row[j] = rng.Float64()
			}
		case 1: // exact training row: every split comparison ties
			copy(row, d.X[rng.Intn(d.N())])
		case 2: // one non-finite coordinate: ±Inf box edges, or NaN
			// (the per-point paths route NaN right at every split, and
			// the batch path must match instead of mis-descending)
			for j := range row {
				row[j] = rng.Float64()
			}
			switch rng.Intn(3) {
			case 0:
				row[rng.Intn(m)] = math.Inf(1)
			case 1:
				row[rng.Intn(m)] = math.Inf(-1)
			default:
				row[rng.Intn(m)] = math.NaN()
			}
		case 3:
			copy(row, pts[len(pts)-1])
		}
		pts = append(pts, row)
	}
	return pts
}

// TestGBTBatchMatchesPerPoint asserts the flattened batch path is
// byte-identical to the per-point traversal for probabilities and for
// the margin-thresholded labels.
func TestGBTBatchMatchesPerPoint(t *testing.T) {
	d := tiedTrainData(300, 6, 11)
	trained, err := (&Trainer{Rounds: 40, MaxDepth: 3}).Train(d, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	m := trained.(*Model)
	pts := batchQueryPoints(d, 1237, 13)
	probs := make([]float64, len(pts))
	labels := make([]float64, len(pts))
	m.PredictProbBatchInto(probs, pts)
	m.PredictLabelBatchInto(labels, pts)
	for i, x := range pts {
		if want := m.PredictProb(x); probs[i] != want {
			t.Fatalf("point %d: batch prob %v != per-point %v", i, probs[i], want)
		}
		if want := m.PredictLabel(x); labels[i] != want {
			t.Fatalf("point %d: batch label %v != per-point %v", i, labels[i], want)
		}
	}
}

// TestGBTBatchThroughMetamodel asserts BatchModel detection in the
// metamodel wrappers, for the label path this time.
func TestGBTBatchThroughMetamodel(t *testing.T) {
	d := tiedTrainData(200, 5, 14)
	trained, err := (&Trainer{Rounds: 25}).Train(d, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := trained.(metamodel.BatchModel); !ok {
		t.Fatal("gbt.Model does not implement metamodel.BatchModel")
	}
	pts := batchQueryPoints(d, 999, 16)
	want := metamodel.PredictBatchSerial(pts, trained.PredictLabel)
	got, err := metamodel.PredictLabelBatchCtx(t.Context(), trained, pts, metamodel.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: %v != %v", i, got[i], want[i])
		}
	}
}
