package gbt

import (
	"math"
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/sample"
)

func boxData(n int, rng *rand.Rand) *dataset.Dataset {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if x[i][0] < 0.5 && x[i][1] > 0.3 {
			y[i] = 1
		}
	}
	return dataset.MustNew(x, y)
}

func TestBoostingLearnsBox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := boxData(400, rng)
	test := boxData(1000, rng)
	m, err := (&Trainer{Rounds: 80}).Train(train, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := metamodel.Accuracy(m, test); acc < 0.92 {
		t.Errorf("box accuracy = %.3f, want >= 0.92", acc)
	}
}

func TestProbabilitiesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := (&Trainer{Rounds: 30}).Train(boxData(200, rng), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		p := m.PredictProb(x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prob %g invalid", p)
		}
		if (p > 0.5) != (m.PredictLabel(x) == 1) {
			t.Fatal("label inconsistent with probability")
		}
	}
}

func TestTrainingLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := boxData(300, rng)
	logLoss := func(m metamodel.Model) float64 {
		s := 0.0
		for i, x := range d.X {
			p := m.PredictProb(x)
			p = math.Min(math.Max(p, 1e-9), 1-1e-9)
			if d.Y[i] >= 0.5 {
				s -= math.Log(p)
			} else {
				s -= math.Log(1 - p)
			}
		}
		return s / float64(d.N())
	}
	m5, _ := (&Trainer{Rounds: 5}).Train(d, rand.New(rand.NewSource(4)))
	m80, _ := (&Trainer{Rounds: 80}).Train(d, rand.New(rand.NewSource(4)))
	if logLoss(m80) >= logLoss(m5) {
		t.Errorf("training loss did not decrease: %g -> %g", logLoss(m5), logLoss(m80))
	}
}

func TestSubsampleAndColsample(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := boxData(200, rng)
	m, err := (&Trainer{Rounds: 40, SubSample: 0.7, ColSample: 0.67}).Train(d, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := metamodel.Accuracy(m, d); acc < 0.85 {
		t.Errorf("stochastic boosting accuracy = %.3f, want >= 0.85", acc)
	}
	gm := m.(*Model)
	if gm.NumTrees() != 40 {
		t.Errorf("trees = %d, want 40", gm.NumTrees())
	}
}

func TestConstantLabels(t *testing.T) {
	x := [][]float64{{0.1}, {0.2}, {0.3}, {0.4}}
	d := dataset.MustNew(x, []float64{0, 0, 0, 0})
	m, err := (&Trainer{Rounds: 10}).Train(d, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if l := m.PredictLabel([]float64{0.25}); l != 0 {
		t.Errorf("constant-0 data predicts %g", l)
	}
	if p := m.PredictProb([]float64{0.25}); p > 0.05 {
		t.Errorf("constant-0 prob = %g, want near 0", p)
	}
}

func TestTrainErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := (&Trainer{}).Train(dataset.MustNew([][]float64{{1}}, []float64{1}), rng); err == nil {
		t.Error("single example must error")
	}
}

func TestBoostingBeatsBaseRateOnSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := funcs.Hart3
	train := funcs.Generate(f, 300, sample.LatinHypercube{}, rng)
	test := funcs.Generate(f, 2000, sample.Uniform{}, rng)
	m, err := (&Trainer{}).Train(train, rng)
	if err != nil {
		t.Fatal(err)
	}
	acc := metamodel.Accuracy(m, test)
	base := math.Max(test.PositiveShare(), 1-test.PositiveShare())
	if acc <= base+0.05 {
		t.Errorf("accuracy %.3f does not beat base rate %.3f", acc, base)
	}
}

func TestTunedTrainer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := boxData(150, rng)
	m, err := TunedTrainer().Train(d, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := metamodel.Accuracy(m, d); acc < 0.9 {
		t.Errorf("tuned accuracy = %.3f", acc)
	}
}

func TestMarginAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := boxData(100, rng)
	m, _ := (&Trainer{Rounds: 12}).Train(d, rng)
	gm := m.(*Model)
	x := []float64{0.2, 0.6, 0.5}
	want := gm.base
	for i := range gm.trees {
		want += gm.eta * gm.trees[i].predict(x)
	}
	if got := gm.Margin(x); math.Abs(got-want) > 1e-12 {
		t.Errorf("Margin = %g, want %g", got, want)
	}
}

func TestImportanceFindsRelevantFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	d := boxData(500, rng) // features 0 and 1 relevant, 2 inert
	m, err := (&Trainer{Rounds: 50}).Train(d, rng)
	if err != nil {
		t.Fatal(err)
	}
	imp := m.(*Model).Importance()
	if len(imp) != 3 {
		t.Fatalf("importance length %d", len(imp))
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sums to %g, want 1", sum)
	}
	if imp[0] < 5*imp[2] || imp[1] < 5*imp[2] {
		t.Errorf("relevant features not dominant: %v", imp)
	}
}
