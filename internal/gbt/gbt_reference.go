package gbt

// This file keeps the original per-node sorting tree induction as a
// reference implementation. The fast path in gbt.go presorts the
// sampled rows along every candidate column once per round and sweeps
// splits with running gradient/hessian prefix sums; differential tests
// assert both paths grow identical ensembles. Select it with
// Trainer.Reference.

import "sort"

// growReference appends the subtree over rows and returns its node
// index, adding split gains into the importance accumulator.
func growReference(t *btree, x [][]float64, grad, hess []float64, rows, cols []int, cfg Trainer, depth int, gains []float64) int {
	var gSum, hSum float64
	for _, i := range rows {
		gSum += grad[i]
		hSum += hess[i]
	}
	leafWeight := -gSum / (hSum + cfg.Lambda)
	if depth >= cfg.MaxDepth || hSum < 2*cfg.MinChildWeight || len(rows) < 2 {
		return leaf(t, leafWeight)
	}

	feat, split, gain := bestSplitReference(x, grad, hess, rows, cols, cfg, gSum, hSum)
	if gain <= 1e-12 {
		return leaf(t, leafWeight)
	}
	gains[feat] += gain

	var left, right []int
	for _, i := range rows {
		if x[i][feat] <= split {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return leaf(t, leafWeight)
	}
	self := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: feat, split: split})
	l := growReference(t, x, grad, hess, left, cols, cfg, depth+1, gains)
	r := growReference(t, x, grad, hess, right, cols, cfg, depth+1, gains)
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplitReference maximizes the XGBoost structure gain
// GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ) over all cut points of the
// candidate columns, sorting the node's rows along each column.
func bestSplitReference(x [][]float64, grad, hess []float64, rows, cols []int, cfg Trainer, gSum, hSum float64) (feat int, split, bestGain float64) {
	order := make([]int, len(rows))
	parent := gSum * gSum / (hSum + cfg.Lambda)
	for _, f := range cols {
		copy(order, rows)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		var gl, hl float64
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			gl += grad[i]
			hl += hess[i]
			if x[order[k+1]][f] == x[i][f] {
				continue
			}
			hr := hSum - hl
			if hl < cfg.MinChildWeight || hr < cfg.MinChildWeight {
				continue
			}
			gr := gSum - gl
			gain := gl*gl/(hl+cfg.Lambda) + gr*gr/(hr+cfg.Lambda) - parent
			if gain > bestGain {
				bestGain = gain
				feat = f
				split = (x[i][f] + x[order[k+1]][f]) / 2
			}
		}
	}
	return feat, split, bestGain
}
