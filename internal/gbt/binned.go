package gbt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/metamodel"
)

// BinnedTrainer trains a boosted ensemble on the histogram-binned fast
// path: features are quantized once per dataset into at most Bins
// quantile bins (dataset.Bins — shared by every round and tuning fold),
// and each round's tree sweeps per-node gradient/hessian bin histograms
// with the classic sibling subtraction (only the smaller child's
// histogram is built from rows; the larger child's is parent − smaller,
// always valid here because a round's candidate columns are fixed).
//
// Binned ensembles are NOT byte-identical to exact ones — thresholds
// snap to bin edges — which is why this is a separate opt-in type rather
// than a flag on Trainer (whose exact output, including its tuning-seed
// derivation, stays untouched). The differential quality suite asserts
// CV-score parity within tolerance, and the engine falls back to exact
// training per variant when a holdout quality gate misses.
//
// The embedded Trainer supplies the boosting shape; its Reference flag
// is ignored here.
type BinnedTrainer struct {
	Trainer
	// Bins caps the number of quantile bins per feature
	// (default dataset.DefaultBins, max dataset.MaxBins).
	Bins int
}

// Train implements metamodel.Trainer.
func (t *BinnedTrainer) Train(d *dataset.Dataset, rng *rand.Rand) (metamodel.Model, error) {
	return t.trainRows(d, nil, rng)
}

// SharedFolds implements metamodel.SubsetTrainer: the quantization is
// computed on the parent dataset and shared across fold subsets.
func (t *BinnedTrainer) SharedFolds() bool { return true }

// TrainSubset implements metamodel.SubsetTrainer: it fits on the given
// rows of d against d's shared quantization, without materializing a
// per-fold sub-dataset.
func (t *BinnedTrainer) TrainSubset(d *dataset.Dataset, rows []int, rng *rand.Rand) (metamodel.Model, error) {
	return t.trainRows(d, rows, rng)
}

func (t *BinnedTrainer) trainRows(d *dataset.Dataset, rows []int, rng *rand.Rand) (metamodel.Model, error) {
	var base []int
	if rows == nil {
		base = make([]int, d.N())
		for i := range base {
			base[i] = i
		}
	} else {
		// Ascending row order keeps the histogram gathers (bin codes,
		// gradient pairs) prefetch-friendly down the whole tree: stable
		// partitioning preserves sortedness in every node segment.
		base = append([]int(nil), rows...)
		sort.Ints(base)
	}
	if len(base) < 2 {
		return nil, fmt.Errorf("gbt: need at least 2 examples, got %d", len(base))
	}
	cfg := t.withDefaults()
	budget := t.Bins
	if budget == 0 {
		budget = dataset.DefaultBins
	}
	bins := d.Bins(budget)

	mean := 0.0
	for _, i := range base {
		mean += d.Y[i]
	}
	mean /= float64(len(base))
	if mean < 1e-6 {
		mean = 1e-6
	}
	if mean > 1-1e-6 {
		mean = 1 - 1e-6
	}
	model := &Model{
		eta:   cfg.LearningRate,
		base:  math.Log(mean / (1 - mean)),
		gains: make([]float64, d.M()),
	}

	// Gradient state is indexed by dataset row id (only the subset rows
	// are ever touched), so histogram fills can gather through the shared
	// bin codes without an id translation. Grad and hess are interleaved
	// (gh[2i], gh[2i+1]) — one cache line per row in the fill loop.
	margin := make([]float64, d.N())
	gh := make([]float64, 2*d.N())
	for _, i := range base {
		margin[i] = model.base
	}
	// Rows left out by subsampling still need their margins advanced by
	// tree traversal; sampled rows get theirs leaf-directly during growth.
	var inSample []bool
	if cfg.SubSample < 1 {
		inSample = make([]bool, d.N())
	}

	builder := newBinnedRoundBuilder(bins, d.M(), gh, margin, cfg, len(base))

	for round := 0; round < cfg.Rounds; round++ {
		for _, i := range base {
			p := sigmoid(margin[i])
			gh[2*i] = p - d.Y[i]
			gh[2*i+1] = p * (1 - p)
		}
		sampled := sampleRowsFrom(base, cfg.SubSample, rng)
		cols := sampleCols(d.M(), cfg.ColSample, rng)
		tr := btree{}
		builder.build(&tr, sampled, cols, model.gains)
		model.trees = append(model.trees, tr)
		if len(sampled) != len(base) {
			for _, i := range sampled {
				inSample[i] = true
			}
			for _, i := range base {
				if !inSample[i] {
					margin[i] += cfg.LearningRate * tr.predict(d.X[i])
				}
			}
			for _, i := range sampled {
				inSample[i] = false
			}
		}
	}
	return model, nil
}

// sampleRowsFrom is sampleRows over an explicit row-id set; the result
// preserves base's order (ascending — see trainRows).
func sampleRowsFrom(base []int, ratio float64, rng *rand.Rand) []int {
	if ratio >= 1 {
		return base
	}
	k := int(float64(len(base)) * ratio)
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(len(base))[:k]
	sort.Ints(perm)
	rows := make([]int, k)
	for i, p := range perm {
		rows[i] = base[p]
	}
	return rows
}

// gbtHistCell is the number of float64 slots per (column, bin) histogram
// cell: Σgrad, Σhess.
const gbtHistCell = 2

// gbtSplitCand accumulates the best bin cut seen during a sweep, with
// the left child's gradient statistics at that cut.
type gbtSplitCand struct {
	feat, ci, cut int
	gain          float64
	gl, hl        float64
}

// binnedRoundBuilder grows one boosting tree per round over the shared
// quantization. Scratch buffers persist across rounds.
type binnedRoundBuilder struct {
	bins   *dataset.Bins
	codes  [][]uint8 // per feature: bin code per dataset row
	gh     []float64 // interleaved (grad, hess) per dataset row
	margin []float64 // per dataset row; leaves push eta·weight directly
	cfg    Trainer
	m      int
	stride int // gbtHistCell · max bins over features

	rows    []int // node rows (dataset ids), segmented
	cols    []int // this round's candidate column ids
	scratch []int // partition staging buffer
	free    [][]float64
	gains   []float64
	t       *btree
}

func newBinnedRoundBuilder(bins *dataset.Bins, m int, gh, margin []float64, cfg Trainer, nRows int) *binnedRoundBuilder {
	codes := make([][]uint8, m)
	maxNB := 1
	for f := 0; f < m; f++ {
		codes[f] = bins.ColumnCodes(f)
		if nb := bins.NumBins(f); nb > maxNB {
			maxNB = nb
		}
	}
	return &binnedRoundBuilder{
		bins:    bins,
		codes:   codes,
		gh:      gh,
		margin:  margin,
		cfg:     cfg,
		m:       m,
		stride:  gbtHistCell * maxNB,
		rows:    make([]int, 0, nRows),
		scratch: make([]int, nRows),
	}
}

// build grows one tree over the sampled rows and candidate cols, adding
// split gains into gains and pushing each leaf's eta-scaled weight onto
// the margins of the rows that reached it.
func (b *binnedRoundBuilder) build(t *btree, rows, cols []int, gains []float64) {
	b.rows = append(b.rows[:0], rows...)
	b.cols = cols
	b.t = t
	b.gains = gains
	var gSum, hSum float64
	for _, i := range rows {
		gSum += b.gh[2*i]
		hSum += b.gh[2*i+1]
	}
	b.grow(0, len(rows), 0, gSum, hSum, nil)
}

// leafAt records a leaf with the given weight and advances the margins
// of its rows in place — the growth pass already knows which rows landed
// here, so sampled rows never pay a per-round tree traversal.
func (b *binnedRoundBuilder) leafAt(lo, hi int, w float64) int {
	upd := b.cfg.LearningRate * w
	for _, r := range b.rows[lo:hi] {
		b.margin[r] += upd
	}
	return leaf(b.t, w)
}

// grow appends the subtree over the segment [lo, hi) and returns its
// node index. gSum/hSum are threaded down from the parent's sweep; hist
// is the node's per-candidate-column histogram (nil = build here), owned
// by this call.
func (b *binnedRoundBuilder) grow(lo, hi, depth int, gSum, hSum float64, hist []float64) int {
	cfg := b.cfg
	leafWeight := -gSum / (hSum + cfg.Lambda)
	if depth >= cfg.MaxDepth || hSum < 2*cfg.MinChildWeight || hi-lo < 2 {
		b.releaseHist(hist)
		return b.leafAt(lo, hi, leafWeight)
	}
	if hist == nil {
		hist = b.allocHist()
		b.buildHist(lo, hi, hist)
	}

	var best gbtSplitCand
	parent := gSum * gSum / (hSum + cfg.Lambda)
	for ci, f := range b.cols {
		b.sweep(f, ci, hist[ci*b.stride:(ci+1)*b.stride], gSum, hSum, parent, &best)
	}
	if best.gain <= 1e-12 {
		b.releaseHist(hist)
		return b.leafAt(lo, hi, leafWeight)
	}
	b.gains[best.feat] += best.gain

	// Stable partition in two passes over the cache-hot code bytes:
	// count the left half, then place both halves directly into their
	// scratch segments (the sweep tracks hessian mass, not row counts,
	// so the count pass stays).
	code := b.codes[best.feat]
	cut := uint8(best.cut)
	seg, scratch := b.rows[lo:hi], b.scratch
	nl := 0
	for _, r := range seg {
		if code[r] <= cut {
			nl++
		}
	}
	if nl == 0 || nl == len(seg) {
		b.releaseHist(hist)
		return b.leafAt(lo, hi, leafWeight)
	}
	p, q := 0, nl
	for _, r := range seg {
		if code[r] <= cut {
			scratch[p] = r
			p++
		} else {
			scratch[q] = r
			q++
		}
	}
	copy(seg, scratch[:len(seg)])

	gl, hl := best.gl, best.hl
	gr, hr := gSum-gl, hSum-hl
	lHist, rHist := b.childHists(lo, lo+nl, hi, depth, hl, hr, hist)
	self := len(b.t.nodes)
	b.t.nodes = append(b.t.nodes, node{feature: best.feat, split: b.bins.Edge(best.feat, best.cut)})
	l := b.grow(lo, lo+nl, depth+1, gl, hl, lHist)
	r := b.grow(lo+nl, hi, depth+1, gr, hr, rHist)
	b.t.nodes[self].left = l
	b.t.nodes[self].right = r
	return self
}

// sweep scans the bin cuts of candidate column f (histogram cells) for
// the best XGBoost structure gain.
func (b *binnedRoundBuilder) sweep(f, ci int, cells []float64, gSum, hSum, parent float64, best *gbtSplitCand) {
	cfg := b.cfg
	nb := b.bins.NumBins(f)
	var gl, hl float64
	for c := 0; c < nb-1; c++ {
		g, h := cells[gbtHistCell*c], cells[gbtHistCell*c+1]
		if g == 0 && h == 0 {
			continue // empty bin: same partition as the previous cut
		}
		gl += g
		hl += h
		hr := hSum - hl
		if hl < cfg.MinChildWeight || hr < cfg.MinChildWeight {
			continue
		}
		gr := gSum - gl
		gain := gl*gl/(hl+cfg.Lambda) + gr*gr/(hr+cfg.Lambda) - parent
		if gain > best.gain {
			*best = gbtSplitCand{feat: f, ci: ci, cut: c, gain: gain, gl: gl, hl: hl}
		}
	}
}

// childHists derives the children's histograms from the parent's: the
// smaller child's is built from its rows, the larger child's is
// parent − smaller in place. Children that are guaranteed leaves by
// depth, size or hessian mass get nil and skip the work.
func (b *binnedRoundBuilder) childHists(lo, mid, hi, depth int, hl, hr float64, parent []float64) (lHist, rHist []float64) {
	cfg := b.cfg
	needL := depth+1 < cfg.MaxDepth && mid-lo >= 2 && hl >= 2*cfg.MinChildWeight
	needR := depth+1 < cfg.MaxDepth && hi-mid >= 2 && hr >= 2*cfg.MinChildWeight
	used := len(b.cols) * b.stride
	switch {
	case needL && needR:
		small := b.allocHist()
		if mid-lo <= hi-mid {
			b.buildHist(lo, mid, small)
			lHist, rHist = small, parent
		} else {
			b.buildHist(mid, hi, small)
			lHist, rHist = parent, small
		}
		for i, v := range small[:used] {
			parent[i] -= v
		}
	case needL:
		b.zeroHist(parent)
		b.buildHist(lo, mid, parent)
		lHist = parent
	case needR:
		b.zeroHist(parent)
		b.buildHist(mid, hi, parent)
		rHist = parent
	default:
		b.releaseHist(parent)
	}
	return lHist, rHist
}

// buildHist accumulates the per-candidate-column histogram of the rows
// in [lo, hi) into hist, which must be zeroed. Column-outer order keeps
// each pass streaming through one byte array of codes and the
// interleaved gradient pairs in ascending row order.
func (b *binnedRoundBuilder) buildHist(lo, hi int, hist []float64) {
	rows := b.rows[lo:hi]
	gh := b.gh
	for ci, f := range b.cols {
		cells := hist[ci*b.stride : (ci+1)*b.stride]
		code := b.codes[f]
		for _, r := range rows {
			c := gbtHistCell * int(code[r])
			cells[c] += gh[2*r]
			cells[c+1] += gh[2*r+1]
		}
	}
}

func (b *binnedRoundBuilder) allocHist() []float64 {
	if k := len(b.free); k > 0 {
		h := b.free[k-1]
		b.free = b.free[:k-1]
		b.zeroHist(h)
		return h
	}
	// Sized for the worst case (all columns as candidates) so buffers
	// can be reused across rounds with differing column samples.
	return make([]float64, b.m*b.stride)
}

func (b *binnedRoundBuilder) zeroHist(h []float64) {
	for i := range h {
		h[i] = 0
	}
}

func (b *binnedRoundBuilder) releaseHist(h []float64) {
	if h != nil {
		b.free = append(b.free, h)
	}
}

// TunedTrainerBinned is TunedTrainer on the histogram-binned fast path:
// the same depth × rounds grid, but every candidate trains binned at the
// given bin budget and the tuner's shared-fold path reuses one
// quantization of the parent dataset across all fold × candidate cells.
func TunedTrainerBinned(bins int) metamodel.Trainer {
	return &metamodel.Tuned{Family: "xgb", Grid: []metamodel.Trainer{
		&BinnedTrainer{Trainer: Trainer{Rounds: 50, MaxDepth: 1, LearningRate: 0.3}, Bins: bins},
		&BinnedTrainer{Trainer: Trainer{Rounds: 50, MaxDepth: 3, LearningRate: 0.3}, Bins: bins},
		&BinnedTrainer{Trainer: Trainer{Rounds: 150, MaxDepth: 2, LearningRate: 0.1}, Bins: bins},
		&BinnedTrainer{Trainer: Trainer{Rounds: 150, MaxDepth: 3, LearningRate: 0.1}, Bins: bins},
	}}
}
