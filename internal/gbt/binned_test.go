package gbt

import (
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/metamodel"
)

func noisyData(n, m int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		if row[0] < 0.5 && row[m/2] > 0.3 {
			y[i] = 1
		}
		if rng.Float64() < 0.05 {
			y[i] = 1 - y[i]
		}
	}
	return dataset.MustNew(x, y)
}

// TestBinnedQualityParity: binned boosting must match exact boosting on
// holdout accuracy within a small tolerance across configurations
// (row/column sampling included) and bin budgets.
func TestBinnedQualityParity(t *testing.T) {
	configs := []struct {
		base Trainer
		bins int
	}{
		{Trainer{Rounds: 50}, 0},
		{Trainer{Rounds: 50, MaxDepth: 2, LearningRate: 0.1}, 16},
		{Trainer{Rounds: 30, SubSample: 0.7, ColSample: 0.5}, 64},
		{Trainer{Rounds: 30, MaxDepth: 6}, 256},
	}
	for ci, cfg := range configs {
		for _, seed := range []int64{1, 7, 42} {
			train := noisyData(400, 6, seed)
			holdout := noisyData(300, 6, seed+1000)

			em, err := cfg.base.Train(train, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("config %d seed %d: exact train: %v", ci, seed, err)
			}
			bt := &BinnedTrainer{Trainer: cfg.base, Bins: cfg.bins}
			bm, err := bt.Train(train, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("config %d seed %d: binned train: %v", ci, seed, err)
			}
			ea := metamodel.Accuracy(em, holdout)
			ba := metamodel.Accuracy(bm, holdout)
			if diff := ea - ba; diff > 0.06 || diff < -0.06 {
				t.Errorf("config %d seed %d: exact accuracy %.4f vs binned %.4f (diff %.4f)",
					ci, seed, ea, ba, diff)
			}
		}
	}
}

// TestBinnedDeterministic: same seed, same ensemble.
func TestBinnedDeterministic(t *testing.T) {
	d := noisyData(300, 6, 3)
	tr := &BinnedTrainer{Trainer: Trainer{Rounds: 30, SubSample: 0.8}}
	a, err := tr.Train(d, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Train(d, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	probe := noisyData(200, 6, 9)
	for _, x := range probe.X {
		if a.PredictProb(x) != b.PredictProb(x) {
			t.Fatal("binned training is not deterministic")
		}
	}
}

// TestBinnedTrainSubset: the shared-fold row-mask path must be
// deterministic and as accurate as training the materialized subset.
func TestBinnedTrainSubset(t *testing.T) {
	d := noisyData(500, 6, 11)
	rng := rand.New(rand.NewSource(12))
	rows := rng.Perm(d.N())[:350]
	holdout := noisyData(300, 6, 13)

	tr := &BinnedTrainer{Trainer: Trainer{Rounds: 40}}
	if !tr.SharedFolds() {
		t.Fatal("binned trainer must opt into shared folds")
	}
	sm, err := tr.TrainSubset(d, rows, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	mm, err := tr.Train(d.Subset(rows), rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	sa := metamodel.Accuracy(sm, holdout)
	ma := metamodel.Accuracy(mm, holdout)
	if diff := sa - ma; diff > 0.06 || diff < -0.06 {
		t.Errorf("subset accuracy %.4f vs materialized %.4f", sa, ma)
	}

	sm2, err := tr.TrainSubset(d, rows, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range holdout.X {
		if sm.PredictProb(x) != sm2.PredictProb(x) {
			t.Fatal("TrainSubset is not deterministic")
		}
	}
}

// TestBinnedTooSmall mirrors the exact trainer's minimum-size contract.
func TestBinnedTooSmall(t *testing.T) {
	d := dataset.MustNew([][]float64{{1}}, []float64{0})
	if _, err := (&BinnedTrainer{}).Train(d, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want error for 1-row dataset")
	}
}
