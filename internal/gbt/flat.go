package gbt

import "github.com/reds-go/reds/internal/flattree"

// flatten compiles the boosted ensemble into the shared contiguous
// node-table representation (see internal/flattree for the layout and
// the branch-free lockstep descent) once, lazily, on the first batch
// call. The per-tree node slices stay the canonical representation:
// training and the per-point path keep using them.
func (m *Model) flatten() *flattree.Table {
	m.flatOnce.Do(func() {
		trees := make([][]flattree.Node, len(m.trees))
		for ti := range m.trees {
			src := m.trees[ti].nodes
			nodes := make([]flattree.Node, len(src))
			for i, nd := range src {
				if nd.feature < 0 {
					nodes[i] = flattree.Node{Leaf: true, Value: nd.weight}
				} else {
					nodes[i] = flattree.Node{
						Feature: int32(nd.feature),
						Split:   nd.split,
						Left:    int32(nd.left),
						Right:   int32(nd.right),
					}
				}
			}
			trees[ti] = nodes
		}
		m.flat = flattree.Compile(trees)
	})
	return m.flat
}

// DistillSource exposes the boosted ensemble to rule-set distillation
// (internal/ruleset): the decoded node table plus the accumulation the
// batch kernels apply (margin — init base, scale eta, thresholded at
// 0). Decoding from the compiled table rather than from m.trees
// guarantees the extracted rules describe exactly the structure the
// batch kernel runs.
func (m *Model) DistillSource() flattree.Ensemble {
	return flattree.Ensemble{Trees: m.flatten().Decode(), Init: m.base, Scale: m.eta, Margin: true}
}

// PredictProbBatchInto implements metamodel.BatchModel via the logistic
// link on the batched margins. The table accumulates base + eta·leaf
// per point in tree index order — the exact floating-point sequence of
// the per-point Margin — so the result is bit-identical to
// PredictProb.
func (m *Model) PredictProbBatchInto(dst []float64, pts [][]float64) {
	if len(pts) == 0 {
		return
	}
	m.flatten().SumInto(dst, pts, len(pts[0]), m.base, m.eta)
	for i, z := range dst {
		dst[i] = sigmoid(z)
	}
}

// PredictLabelBatchInto implements metamodel.BatchModel with the same
// margin > 0 boundary as PredictLabel (thresholding the raw margin,
// not the squashed probability, so ties behave identically).
func (m *Model) PredictLabelBatchInto(dst []float64, pts [][]float64) {
	if len(pts) == 0 {
		return
	}
	m.flatten().SumInto(dst, pts, len(pts[0]), m.base, m.eta)
	for i, z := range dst {
		if z > 0 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}
