// Package gbt implements gradient-boosted regression trees with
// second-order (Newton) updates and logistic loss — the "x" (XGBoost)
// metamodel of the paper. Trees are grown by exact greedy search on the
// XGBoost gain criterion with L2 leaf regularization and shrinkage.
package gbt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/flattree"
	"github.com/reds-go/reds/internal/metamodel"
)

// Trainer configures boosting. Zero-value fields take XGBoost-flavored
// defaults: 100 rounds, learning rate 0.3, depth 4, lambda 1.
type Trainer struct {
	// Rounds is the number of boosting rounds (default 100).
	Rounds int
	// LearningRate is the shrinkage eta (default 0.3).
	LearningRate float64
	// MaxDepth caps each tree (default 4).
	MaxDepth int
	// Lambda is the L2 regularization of leaf weights (default 1).
	Lambda float64
	// MinChildWeight is the minimum hessian sum per leaf (default 1).
	MinChildWeight float64
	// SubSample is the row-sampling ratio per round (default 1 = off).
	SubSample float64
	// ColSample is the column-sampling ratio per round (default 1 = off).
	ColSample float64
	// Reference selects the original per-node sorting split finder
	// instead of the presorted columnar fast path. The two grow
	// identical ensembles (see the differential tests) as long as no
	// two distinct rows share a feature value; across genuinely tied
	// rows the reference's unstable sort visits them in a different
	// order, so gradient partial sums (and with them exact split
	// tie-breaking) can differ in the last float64 bit. The flag
	// exists so benchmarks and tests can measure the reference.
	Reference bool
}

// Name implements metamodel.Trainer.
func (t *Trainer) Name() string { return "xgb" }

func (t *Trainer) withDefaults() Trainer {
	out := *t
	if out.Rounds == 0 {
		out.Rounds = 100
	}
	if out.LearningRate == 0 {
		out.LearningRate = 0.3
	}
	if out.MaxDepth == 0 {
		out.MaxDepth = 4
	}
	if out.Lambda == 0 {
		out.Lambda = 1
	}
	if out.MinChildWeight == 0 {
		out.MinChildWeight = 1
	}
	if out.SubSample == 0 {
		out.SubSample = 1
	}
	if out.ColSample == 0 {
		out.ColSample = 1
	}
	return out
}

// node of a boosting tree in a flat slice; leaves have feature == -1 and
// carry the leaf weight.
type node struct {
	feature     int
	split       float64
	weight      float64
	left, right int
}

type btree struct{ nodes []node }

func (t *btree) predict(x []float64) float64 {
	i := 0
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.weight
		}
		if x[nd.feature] <= nd.split {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// Model is a trained boosted ensemble.
type Model struct {
	trees []btree
	eta   float64
	base  float64 // initial log-odds
	gains []float64

	// flat is the contiguous node-table compilation of the trees that
	// batch inference traverses (see flat.go and internal/flattree),
	// derived once on first use.
	flatOnce sync.Once
	flat     *flattree.Table
}

// Margin returns the raw additive score (log-odds) at x.
func (m *Model) Margin(x []float64) float64 {
	s := m.base
	for i := range m.trees {
		s += m.eta * m.trees[i].predict(x)
	}
	return s
}

// PredictProb implements metamodel.Model via the logistic link.
func (m *Model) PredictProb(x []float64) float64 {
	return sigmoid(m.Margin(x))
}

// PredictLabel implements metamodel.Model with boundary margin > 0
// (probability 0.5).
func (m *Model) PredictLabel(x []float64) float64 {
	if m.Margin(x) > 0 {
		return 1
	}
	return 0
}

// NumTrees returns the number of boosted trees.
func (m *Model) NumTrees() int { return len(m.trees) }

// ApproxMemoryBytes implements metamodel.MemorySizer: nodes dominate
// the ensemble's footprint (a node is three float64 and three ints — 48
// bytes plus padding/slice overhead, rounded to 56), plus the flat
// node table batch inference compiles — charged up front, like rf's,
// because every engine-cached model materializes it for labeling.
func (m *Model) ApproxMemoryBytes() int64 {
	const bytesPerNode = 56 + flattree.NodeBytes
	var n int64
	for i := range m.trees {
		n += int64(len(m.trees[i].nodes)) * bytesPerNode
	}
	return n + int64(len(m.gains))*8
}

// Importance returns the gain-based feature importance (XGBoost's "total
// gain"), normalized to sum to 1.
func (m *Model) Importance() []float64 {
	imp := append([]float64(nil), m.gains...)
	total := 0.0
	for _, g := range imp {
		total += g
	}
	if total > 0 {
		for j := range imp {
			imp[j] /= total
		}
	}
	return imp
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Train implements metamodel.Trainer.
func (t *Trainer) Train(d *dataset.Dataset, rng *rand.Rand) (metamodel.Model, error) {
	if d.N() < 2 {
		return nil, fmt.Errorf("gbt: need at least 2 examples, got %d", d.N())
	}
	cfg := t.withDefaults()
	n := d.N()

	// Base score: log-odds of the global mean, clipped away from the
	// degenerate extremes.
	mean := d.PositiveShare()
	if mean < 1e-6 {
		mean = 1e-6
	}
	if mean > 1-1e-6 {
		mean = 1 - 1e-6
	}
	model := &Model{
		eta:   cfg.LearningRate,
		base:  math.Log(mean / (1 - mean)),
		gains: make([]float64, d.M()),
	}

	margin := make([]float64, n)
	for i := range margin {
		margin[i] = model.base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)

	// The columnar view and per-feature sorted orders are computed once
	// on the dataset and shared by every round; the builder specializes
	// them to each round's row sample and reuses its scratch buffers.
	var builder *roundBuilder
	if !cfg.Reference {
		builder = newRoundBuilder(d.Columns(), d.SortedOrders(), grad, hess, cfg)
	}

	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < n; i++ {
			p := sigmoid(margin[i])
			grad[i] = p - d.Y[i]
			hess[i] = p * (1 - p)
		}
		rows := sampleRows(n, cfg.SubSample, rng)
		cols := sampleCols(d.M(), cfg.ColSample, rng)
		tr := btree{}
		if cfg.Reference {
			growReference(&tr, d.X, grad, hess, rows, cols, cfg, 0, model.gains)
		} else {
			builder.build(&tr, rows, cols, model.gains)
		}
		model.trees = append(model.trees, tr)
		for i := 0; i < n; i++ {
			margin[i] += cfg.LearningRate * tr.predict(d.X[i])
		}
	}
	return model, nil
}

func sampleRows(n int, ratio float64, rng *rand.Rand) []int {
	if ratio >= 1 {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}
	k := int(float64(n) * ratio)
	if k < 1 {
		k = 1
	}
	return rng.Perm(n)[:k]
}

func sampleCols(m int, ratio float64, rng *rand.Rand) []int {
	if ratio >= 1 {
		cols := make([]int, m)
		for j := range cols {
			cols[j] = j
		}
		return cols
	}
	k := int(float64(m) * ratio)
	if k < 1 {
		k = 1
	}
	cols := rng.Perm(m)[:k]
	sort.Ints(cols)
	return cols
}

func leaf(t *btree, w float64) int {
	t.nodes = append(t.nodes, node{feature: -1, weight: w})
	return len(t.nodes) - 1
}

// roundBuilder grows one boosting tree per round from presorted column
// orders: the dataset-level sorted orders are filtered to the round's
// row sample once, kept sorted through every split by stable
// partitioning, and swept with running gradient/hessian prefix sums —
// O(n) per node-column instead of the reference's O(n log n) sort.
// Scratch buffers persist across rounds, so steady-state growth
// allocates only the tree nodes.
type roundBuilder struct {
	colsView [][]float64 // columnar view: colsView[j][row]
	shared   [][]int     // dataset-level ascending row order per column
	grad     []float64
	hess     []float64
	cfg      Trainer

	inRound []bool  // dataset row is in this round's sample
	orders  [][]int // per candidate column: sampled rows in ascending order, segmented by node
	rows    []int   // node rows in sample order, segmented like orders
	cols    []int   // this round's candidate column ids
	goLeft  []bool  // per dataset row: goes left at the split being applied
	scratch []int   // right-half spill buffer for stable partitioning
	gains   []float64
	t       *btree
}

func newRoundBuilder(colsView [][]float64, shared [][]int, grad, hess []float64, cfg Trainer) *roundBuilder {
	n := len(grad)
	m := len(colsView)
	orders := make([][]int, m)
	for j := range orders {
		orders[j] = make([]int, 0, n)
	}
	return &roundBuilder{
		colsView: colsView,
		shared:   shared,
		grad:     grad,
		hess:     hess,
		cfg:      cfg,
		inRound:  make([]bool, n),
		orders:   orders,
		rows:     make([]int, 0, n),
		goLeft:   make([]bool, n),
		scratch:  make([]int, n),
	}
}

// build grows one tree over the sampled rows (sample order, no
// duplicates) and candidate cols, adding split gains into gains.
func (b *roundBuilder) build(t *btree, rows, cols []int, gains []float64) {
	for i := range b.inRound {
		b.inRound[i] = false
	}
	for _, i := range rows {
		b.inRound[i] = true
	}
	// Specialize the shared orders to the sample: an O(N) filter per
	// candidate column.
	for ci, c := range cols {
		ord := b.orders[ci][:0]
		for _, r := range b.shared[c] {
			if b.inRound[r] {
				ord = append(ord, r)
			}
		}
		b.orders[ci] = ord
	}
	b.rows = append(b.rows[:0], rows...)
	b.cols = cols
	b.t = t
	b.gains = gains
	b.grow(0, len(rows), 0)
}

// grow appends the subtree over the segment [lo, hi) of the node lists
// and returns its node index.
func (b *roundBuilder) grow(lo, hi, depth int) int {
	cfg := b.cfg
	var gSum, hSum float64
	for _, i := range b.rows[lo:hi] {
		gSum += b.grad[i]
		hSum += b.hess[i]
	}
	leafWeight := -gSum / (hSum + cfg.Lambda)
	if depth >= cfg.MaxDepth || hSum < 2*cfg.MinChildWeight || hi-lo < 2 {
		return leaf(b.t, leafWeight)
	}

	feat, split, gain := b.bestSplit(lo, hi, gSum, hSum)
	if gain <= 1e-12 {
		return leaf(b.t, leafWeight)
	}
	b.gains[feat] += gain

	nl := b.partition(lo, hi, feat, split)
	if nl == 0 || nl == hi-lo {
		return leaf(b.t, leafWeight)
	}
	self := len(b.t.nodes)
	b.t.nodes = append(b.t.nodes, node{feature: feat, split: split})
	l := b.grow(lo, lo+nl, depth+1)
	r := b.grow(lo+nl, hi, depth+1)
	b.t.nodes[self].left = l
	b.t.nodes[self].right = r
	return self
}

// bestSplit maximizes the XGBoost structure gain
// GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ) over all cut points of the
// candidate columns; each column is a single prefix-sum sweep over its
// presorted node segment.
func (b *roundBuilder) bestSplit(lo, hi int, gSum, hSum float64) (feat int, split, bestGain float64) {
	cfg := b.cfg
	n := hi - lo
	parent := gSum * gSum / (hSum + cfg.Lambda)
	for ci, f := range b.cols {
		seg := b.orders[ci][lo:hi]
		col := b.colsView[f]
		var gl, hl float64
		for k := 0; k < n-1; k++ {
			i := seg[k]
			gl += b.grad[i]
			hl += b.hess[i]
			if col[seg[k+1]] == col[i] {
				continue
			}
			hr := hSum - hl
			if hl < cfg.MinChildWeight || hr < cfg.MinChildWeight {
				continue
			}
			gr := gSum - gl
			gain := gl*gl/(hl+cfg.Lambda) + gr*gr/(hr+cfg.Lambda) - parent
			if gain > bestGain {
				bestGain = gain
				feat = f
				split = (col[i] + col[seg[k+1]]) / 2
			}
		}
	}
	return feat, split, bestGain
}

// partition stably splits the node segment [lo, hi) of the sample-order
// row list and of every candidate column's sorted list on
// x[feat] <= split, so both children remain sorted. Returns the left
// child size.
func (b *roundBuilder) partition(lo, hi, feat int, split float64) int {
	col := b.colsView[feat]
	for _, r := range b.rows[lo:hi] {
		b.goLeft[r] = col[r] <= split
	}
	nl := dataset.StablePartition(b.rows[lo:hi], b.goLeft, b.scratch)
	for ci := range b.cols {
		dataset.StablePartition(b.orders[ci][lo:hi], b.goLeft, b.scratch)
	}
	return nl
}

// TunedTrainer returns the caret-style grid for boosting: depth x rounds
// with a moderate learning rate, the dominant dimensions of the default
// caret xgbTree grid (which caps max_depth at 3 — deeper trees overfit
// label noise and fragment the pseudo-labeled region REDS peels).
func TunedTrainer() metamodel.Trainer {
	return &metamodel.Tuned{Family: "xgb", Grid: []metamodel.Trainer{
		&Trainer{Rounds: 50, MaxDepth: 1, LearningRate: 0.3},
		&Trainer{Rounds: 50, MaxDepth: 3, LearningRate: 0.3},
		&Trainer{Rounds: 150, MaxDepth: 2, LearningRate: 0.1},
		&Trainer{Rounds: 150, MaxDepth: 3, LearningRate: 0.1},
	}}
}
