package engine

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/admission"
	"github.com/reds-go/reds/internal/dataset"
)

// apiCapsDataset builds an n-row labeled dataset for cap checks.
func apiCapsDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{float64(i) / float64(n), float64(n-i) / float64(n)}
		if i%3 == 0 {
			y[i] = 1
		}
	}
	return dataset.MustNew(x, y)
}

// apiTestTokens is the token file the full-stack tests load: alice may
// submit and read, bob may only read, carol may submit and read.
const apiTestTokens = `{"tokens":[
	{"token":"tok-alice","client":"alice","roles":["submit","read"]},
	{"token":"tok-bob","client":"bob","roles":["read"]},
	{"token":"tok-carol","client":"carol","roles":["submit","read"]}
]}`

// startAdmissionServer serves the real /v1 API behind the real admission
// middleware — the same stack cmd/redsserver mounts (minus telemetry
// instrumentation, which is orthogonal here).
func startAdmissionServer(t *testing.T, engOpts Options, admOpts admission.Options, tokensJSON string) (*httptest.Server, *Engine) {
	t.Helper()
	if engOpts.Workers == 0 {
		engOpts.Workers = 2
	}
	e, err := New(engOpts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if tokensJSON != "" {
		path := filepath.Join(t.TempDir(), "tokens.json")
		if err := os.WriteFile(path, []byte(tokensJSON), 0o600); err != nil {
			t.Fatalf("writing token file: %v", err)
		}
		tokens, err := admission.LoadTokens(path)
		if err != nil {
			t.Fatalf("LoadTokens: %v", err)
		}
		admOpts.Tokens = tokens
	}
	ctrl := admission.New(admOpts)
	srv := httptest.NewServer(ctrl.Middleware(NewHandler(e, WithAdmission(ctrl))))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return srv, e
}

// authDo sends one request with an optional bearer token and returns
// the closed response (headers/status usable) plus the decoded body.
func authDo(t *testing.T, method, url, token, body string) (*http.Response, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("building %s %s: %v", method, url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := map[string]any{}
	if len(raw) > 0 {
		_ = json.Unmarshal(raw, &out)
	}
	return resp, out
}

// envelopeCode digs the error code out of the standard envelope.
func envelopeCode(body map[string]any) string {
	env, _ := body["error"].(map[string]any)
	code, _ := env["code"].(string)
	return code
}

// TestAPIFullStackAuthAndCaps walks the rejection matrix through the
// complete middleware + handler stack: 401 (no/bad token), 403 (missing
// role), 400 limit_exceeded (caps, deadline ceiling), 413 (body cap).
func TestAPIFullStackAuthAndCaps(t *testing.T) {
	srv, _ := startAdmissionServer(t, Options{}, admission.Options{
		Caps: admission.Caps{
			MaxL:         5000,
			MaxN:         300,
			MaxTrainBins: 64,
			MaxBodyBytes: 4096,
			MaxRuntime:   time.Minute,
		},
	}, apiTestTokens)

	okJob := `{"function":"morris","n":150,"l":2000,"seed":4}`
	bigBody := `{"csv":"` + strings.Repeat("a,", 4096) + `"}`
	cases := []struct {
		name       string
		method     string
		path       string
		token      string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"no token", http.MethodGet, "/v1/jobs", "", "", http.StatusUnauthorized, "unauthorized"},
		{"bad token", http.MethodGet, "/v1/jobs", "tok-nope", "", http.StatusUnauthorized, "unauthorized"},
		{"read ok", http.MethodGet, "/v1/jobs", "tok-bob", "", http.StatusOK, ""},
		{"healthz open", http.MethodGet, "/v1/healthz", "", "", http.StatusOK, ""},
		{"submit without role", http.MethodPost, "/v1/jobs", "tok-bob", okJob, http.StatusForbidden, "forbidden"},
		{"cancel without role", http.MethodDelete, "/v1/jobs/job-1", "tok-bob", "", http.StatusForbidden, "forbidden"},
		{"submit ok", http.MethodPost, "/v1/jobs", "tok-alice", okJob, http.StatusCreated, ""},
		{"l over cap", http.MethodPost, "/v1/jobs", "tok-alice",
			`{"function":"morris","n":150,"l":50000}`, http.StatusBadRequest, "limit_exceeded"},
		{"n over cap", http.MethodPost, "/v1/jobs", "tok-alice",
			`{"function":"morris","n":400,"l":2000}`, http.StatusBadRequest, "limit_exceeded"},
		{"default n over cap", http.MethodPost, "/v1/jobs", "tok-alice",
			`{"function":"morris","l":2000}`, http.StatusBadRequest, "limit_exceeded"},
		{"train_bins over cap", http.MethodPost, "/v1/jobs", "tok-alice",
			`{"function":"morris","n":150,"l":2000,"train_mode":"binned","train_bins":256}`, http.StatusBadRequest, "limit_exceeded"},
		{"deadline over ceiling", http.MethodPost, "/v1/jobs", "tok-alice",
			`{"function":"morris","n":150,"l":2000,"deadline_seconds":3600}`, http.StatusBadRequest, "limit_exceeded"},
		{"negative deadline", http.MethodPost, "/v1/jobs", "tok-alice",
			`{"function":"morris","n":150,"l":2000,"deadline_seconds":-1}`, http.StatusBadRequest, "bad_request"},
		{"body over cap", http.MethodPost, "/v1/jobs", "tok-alice", bigBody, http.StatusRequestEntityTooLarge, "body_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := authDo(t, tc.method, srv.URL+tc.path, tc.token, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %v)", resp.StatusCode, tc.wantStatus, body)
			}
			if tc.wantCode != "" {
				if got := envelopeCode(body); got != tc.wantCode {
					t.Fatalf("error code = %q, want %q (body %v)", got, tc.wantCode, body)
				}
			}
		})
	}
}

// TestCheckCaps covers the caps the HTTP table cannot hit cleanly: the
// variant-grid bound, the dataset row bound, and the all-zero
// (unlimited) configuration.
func TestCheckCaps(t *testing.T) {
	grid := Request{Function: "morris", Metamodels: []string{"rf", "xgb"}, SD: []string{"prim", "best"}}
	if err := checkCaps(admission.Caps{MaxVariants: 3}, grid); err == nil {
		t.Errorf("2x2 grid passed a 3-variant cap")
	}
	if err := checkCaps(admission.Caps{MaxVariants: 4}, grid); err != nil {
		t.Errorf("2x2 grid rejected by a 4-variant cap: %v", err)
	}
	ds := Request{Dataset: apiCapsDataset(t, 500)}
	if err := checkCaps(admission.Caps{MaxN: 300}, ds); err == nil {
		t.Errorf("500-row dataset passed a 300-row cap")
	}
	if err := checkCaps(admission.Caps{}, Request{Function: "morris", N: 1 << 20, L: 1 << 30}); err != nil {
		t.Errorf("zero caps rejected a request: %v", err)
	}
}

// TestAPIQueueFullReturns429 fills a one-deep queue and checks the
// overflow submission gets 429 + Retry-After, not a generic 400 — even
// without an admission controller configured.
func TestAPIQueueFullReturns429(t *testing.T) {
	e, err := New(Options{Workers: 1, QueueSize: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})

	long := `{"function":"hart3","n":200,"l":3000000,"seed":1}`
	for i := 0; i < 2; i++ { // one running + one queued
		resp, body := authDo(t, http.MethodPost, srv.URL+"/v1/jobs", "", long)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d = %d: %v", i, resp.StatusCode, body)
		}
	}
	resp, body := authDo(t, http.MethodPost, srv.URL+"/v1/jobs", "", long)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429 (body %v)", resp.StatusCode, body)
	}
	if got := envelopeCode(body); got != "queue_full" {
		t.Errorf("error code = %q, want queue_full", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	env, _ := body["error"].(map[string]any)
	if ra, _ := env["retry_after_seconds"].(float64); ra <= 0 {
		t.Errorf("retry_after_seconds = %v, want > 0", env["retry_after_seconds"])
	}
}

// normalizeAPIResult zeroes wall-clock and cache-temperature fields so
// two runs of one request compare byte-for-byte.
func normalizeAPIResult(t *testing.T, res Result) string {
	t.Helper()
	res.ElapsedSeconds = 0
	res.Best.CacheHit = false
	res.Best.LabelCacheHit = false
	res.Variants = append([]VariantResult(nil), res.Variants...)
	for i := range res.Variants {
		res.Variants[i].CacheHit = false
		res.Variants[i].LabelCacheHit = false
	}
	raw, err := json.Marshal(&res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(raw)
}

// TestAPIOverloadBurst is the throttling acceptance test: a burst of 20
// submissions against rps=2/burst=2/inflight=1 yields a mix of 201s and
// 429s (each 429 carrying Retry-After), and every admitted job's result
// is byte-identical to the same request on an unthrottled server.
func TestAPIOverloadBurst(t *testing.T) {
	srv, _ := startAdmissionServer(t, Options{}, admission.Options{
		RPS:         2,
		Burst:       2,
		MaxInFlight: 1,
	}, apiTestTokens)

	job := `{"function":"morris","n":150,"l":2000,"seed":4}`
	var admitted []string
	rejected := 0
	for i := 0; i < 20; i++ {
		resp, body := authDo(t, http.MethodPost, srv.URL+"/v1/jobs", "tok-alice", job)
		switch resp.StatusCode {
		case http.StatusCreated:
			admitted = append(admitted, body["id"].(string))
		case http.StatusTooManyRequests:
			rejected++
			if code := envelopeCode(body); code != "rate_limited" && code != "inflight_limit" {
				t.Fatalf("429 with code %q, want rate_limited or inflight_limit", code)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("429 without Retry-After header")
			}
			env, _ := body["error"].(map[string]any)
			if ra, _ := env["retry_after_seconds"].(float64); ra <= 0 {
				t.Fatalf("retry_after_seconds = %v, want > 0", env["retry_after_seconds"])
			}
		default:
			t.Fatalf("submit %d = %d: %v", i, resp.StatusCode, body)
		}
	}
	if len(admitted) == 0 {
		t.Fatalf("no submissions admitted out of 20")
	}
	if rejected < 10 {
		t.Fatalf("only %d/20 submissions throttled; quota not biting", rejected)
	}
	t.Logf("burst of 20: %d admitted, %d throttled", len(admitted), rejected)

	// Admitted jobs must be full-fidelity: identical to an unthrottled run.
	plain, _ := startTestServer(t)
	resp, body := authDo(t, http.MethodPost, plain.URL+"/v1/jobs", "", job)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("unthrottled submit = %d: %v", resp.StatusCode, body)
	}
	want := normalizeAPIResult(t, waitAPIResult(t, plain.URL, "", body["id"].(string)))
	for _, id := range admitted {
		got := normalizeAPIResult(t, waitAPIResult(t, srv.URL, "tok-alice", id))
		if got != want {
			t.Fatalf("throttled job %s result differs from unthrottled run:\n got %s\nwant %s", id, got, want)
		}
	}
}

// waitAPIResult polls one job to completion and returns its result.
func waitAPIResult(t *testing.T, base, token, id string) Result {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, body := authDo(t, http.MethodGet, base+"/v1/jobs/"+id, token, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s = %d: %v", id, resp.StatusCode, body)
		}
		if s, _ := body["status"].(string); Status(s).Terminal() {
			if Status(s) != StatusDone {
				t.Fatalf("job %s finished %s: %v", id, s, body["error"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/result", nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("result %s: %v", id, err)
	}
	defer resp.Body.Close()
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding result %s: %v", id, err)
	}
	return res
}

// TestAPIDeadlineFailsJobAndFreesSlot is the deadline acceptance test: a
// paper-scale job with deadline_seconds=1 must fail with a deadline
// reason well inside 5 seconds, and its in-flight slot must free
// immediately so the next submission is admitted.
func TestAPIDeadlineFailsJobAndFreesSlot(t *testing.T) {
	srv, _ := startAdmissionServer(t, Options{Workers: 1}, admission.Options{
		MaxInFlight: 1,
		Caps:        admission.Caps{MaxRuntime: 30 * time.Second},
	}, "")

	resp, body := authDo(t, http.MethodPost, srv.URL+"/v1/jobs", "",
		`{"function":"hart3","n":200,"l":3000000,"seed":1,"deadline_seconds":1}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d: %v", resp.StatusCode, body)
	}
	id := body["id"].(string)

	start := time.Now()
	window := 5 * time.Second * raceDetectorSlowdown
	deadline := start.Add(window)
	for {
		_, snap := authDo(t, http.MethodGet, srv.URL+"/v1/jobs/"+id, "", "")
		if s, _ := snap["status"].(string); Status(s).Terminal() {
			if Status(s) != StatusFailed {
				t.Fatalf("deadline job finished %s, want failed: %v", s, snap)
			}
			reason, _ := snap["error"].(string)
			if !strings.Contains(reason, "deadline") {
				t.Fatalf("failure reason %q does not mention the deadline", reason)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deadline job still running after %v", window)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("deadline job failed after %v", time.Since(start))

	// The slot must be free the moment the job is terminal: with
	// inflight=1, this submission 429s if release leaked.
	resp, body = authDo(t, http.MethodPost, srv.URL+"/v1/jobs", "",
		`{"function":"morris","n":150,"l":2000,"seed":4}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-deadline submit = %d, want 201 (slot leaked?): %v", resp.StatusCode, body)
	}
	waitAPIResult(t, srv.URL, "", body["id"].(string))
}

// TestAPIClientFilter checks that job ownership flows from the bearer
// token into snapshots and that ?client= narrows the listing.
func TestAPIClientFilter(t *testing.T) {
	srv, _ := startAdmissionServer(t, Options{}, admission.Options{}, apiTestTokens)

	job := `{"function":"morris","n":150,"l":2000,"seed":4}`
	for _, token := range []string{"tok-alice", "tok-alice", "tok-carol"} {
		if resp, body := authDo(t, http.MethodPost, srv.URL+"/v1/jobs", token, job); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit as %s = %d: %v", token, resp.StatusCode, body)
		}
	}
	count := func(query string) int {
		_, body := authDo(t, http.MethodGet, srv.URL+"/v1/jobs"+query, "tok-bob", "")
		jobs, _ := body["jobs"].([]any)
		return len(jobs)
	}
	if n := count(""); n != 3 {
		t.Errorf("unfiltered listing has %d jobs, want 3", n)
	}
	if n := count("?client=alice"); n != 2 {
		t.Errorf("alice's listing has %d jobs, want 2", n)
	}
	if n := count("?client=carol"); n != 1 {
		t.Errorf("carol's listing has %d jobs, want 1", n)
	}
	if n := count("?client=mallory"); n != 0 {
		t.Errorf("mallory's listing has %d jobs, want 0", n)
	}
	_, body := authDo(t, http.MethodGet, srv.URL+"/v1/jobs?client=carol", "tok-bob", "")
	jobs, _ := body["jobs"].([]any)
	if len(jobs) == 1 {
		snap, _ := jobs[0].(map[string]any)
		if snap["client"] != "carol" {
			t.Errorf("snapshot client = %v, want carol", snap["client"])
		}
	}
}
