package engine

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/reds-go/reds/internal/faultinject"
	"github.com/reds-go/reds/internal/telemetry"
)

// The internal execution API is the wire between a gateway's
// RemoteExecutor and a worker's LocalExecutor. It is deliberately tiny
// — execution only, no job lifecycle: the gateway owns the job (queue
// position, persistence, TTL), the worker only runs the pipeline and
// reports progress.
//
//	POST   /internal/v1/execute                  start an execution   → 202 {"id": ...}
//	GET    /internal/v1/execute/{id}             status + progress (+ result when done)
//	GET    /internal/v1/execute/{id}/checkpoint  newest resumable checkpoint
//	DELETE /internal/v1/execute/{id}             cancel and/or release the execution
//
// The API shares redsserver's listener. When the worker is started with
// -internal.secret, the admission middleware in front of the handler
// requires every internal call to carry the shared secret in the
// X-Reds-Internal-Secret header (see internal/admission), so only the
// gateway holding the secret can start executions.

// maxExecBodyBytes bounds /internal/v1/execute payloads. Larger than
// the public submit cap: a dispatched request carries the inline
// dataset plus — on failover — a checkpoint inlining up to the
// executor's labeled-dataset byte budget (32 MiB by default).
const maxExecBodyBytes = 256 << 20

// execStatusResponse is the wire form of one execution's state, shared
// by the server (ExecServer) and the client (RemoteExecutor).
type execStatusResponse struct {
	ID       string   `json:"id"`
	Status   Status   `json:"status"`
	Progress Progress `json:"progress"`
	// RequestID is the trace id the execution runs under — the value of
	// the X-Request-Id header the gateway sent, or a worker-generated id
	// when the header was absent.
	RequestID string `json:"request_id,omitempty"`
	// CheckpointSeq is the sequence number of the newest resumable
	// checkpoint (0 when none). Checkpoints can carry megabytes of
	// labeled data, so the poll response only advertises the seq; the
	// gateway fetches the snapshot from /checkpoint when it advances.
	CheckpointSeq uint64 `json:"checkpoint_seq,omitempty"`
	// Result is set once Status is done; Error once it is failed.
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// ExecServerOptions tune the worker side of the internal execution API.
type ExecServerOptions struct {
	// Retention keeps finished executions around for late polls before
	// they are garbage-collected (default 5 minutes). A gateway that
	// received the terminal poll response acknowledges with DELETE and
	// frees the entry immediately; retention only covers gateways that
	// die between polls.
	Retention time.Duration
	// Metrics is the registry for the server's execution counters
	// (reds_exec_executions_total, reds_exec_active_jobs). nil gets a
	// private registry.
	Metrics *telemetry.Registry
	// Logger receives execution lifecycle logs with execution and
	// request IDs. nil uses slog.Default().
	Logger *slog.Logger
}

func (o ExecServerOptions) withDefaults() ExecServerOptions {
	if o.Retention <= 0 {
		o.Retention = 5 * time.Minute
	}
	return o
}

// ExecServer runs the worker side of the internal execution API over an
// Executor (a LocalExecutor in redsserver). Every accepted POST starts
// the execution immediately on its own goroutine — admission control is
// the gateway's job (its engine queue bounds how many executions it
// dispatches), so the worker deliberately has no second queue.
type ExecServer struct {
	exec Executor
	opts ExecServerOptions
	log  *slog.Logger
	// mStarted mirrors the started counter as a telemetry instrument;
	// active is exposed as a GaugeFunc over Executions().
	mStarted *telemetry.Counter
	// bootID makes execution ids unique per process. Without it, a
	// worker restarted between two gateway polls could reassign a plain
	// counter id to a different request and serve the wrong execution's
	// status — and eventually the wrong result — to the old poller.
	// With it, the old id 404s and the gateway re-routes.
	bootID string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	execs   map[string]*execution
	nextID  uint64
	started int64
	active  int64
	closed  bool
}

// execution is the server-side state of one dispatched request.
type execution struct {
	id string
	// requestID is the trace id the execution runs under (immutable
	// after handleStart).
	requestID string
	cancel    context.CancelFunc

	mu         sync.Mutex
	status     Status
	progress   Progress
	result     *Result
	err        error
	finishedAt time.Time
}

// NewExecServer returns an execution server over exec. Close it to
// cancel in-flight executions and wait for them.
func NewExecServer(exec Executor, opts ExecServerOptions) *ExecServer {
	ctx, cancel := context.WithCancel(context.Background())
	nonce := make([]byte, 4)
	if _, err := rand.Read(nonce); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to the boot time, which still differs across restarts.
		binary.BigEndian.PutUint32(nonce, uint32(time.Now().UnixNano()))
	}
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &ExecServer{
		exec:   exec,
		opts:   opts,
		log:    logger,
		bootID: hex.EncodeToString(nonce),
		ctx:    ctx,
		cancel: cancel,
		execs:  make(map[string]*execution),
		mStarted: reg.Counter("reds_exec_executions_total",
			"Executions accepted over the internal execution API."),
	}
	reg.GaugeFunc("reds_exec_active_jobs",
		"Executions currently running on this worker.",
		func() float64 {
			_, active := s.Executions()
			return float64(active)
		})
	return s
}

// Executions returns how many executions were ever accepted and how
// many are running right now.
func (s *ExecServer) Executions() (started, active int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started, s.active
}

// Close cancels every in-flight execution and waits for them to stop.
func (s *ExecServer) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// Drain stops accepting new executions (POSTs get 503; the gateway
// re-routes them) and waits up to timeout for the running ones to
// finish on their own. It reports whether the server fully drained;
// either way the caller should follow up with Close, which cancels
// whatever is left.
func (s *ExecServer) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Handler returns the internal API as a standalone handler (redsserver
// mounts it through engine.WithExecutionAPI instead, sharing the public
// mux and error envelope).
func (s *ExecServer) Handler() http.Handler {
	mux := http.NewServeMux()
	s.register(mux)
	return jsonErrors(mux)
}

// register mounts the internal routes on a mux.
func (s *ExecServer) register(mux *http.ServeMux) {
	mux.HandleFunc("POST /internal/v1/execute", s.handleStart)
	mux.HandleFunc("GET /internal/v1/execute/{id}", s.handleStatus)
	mux.HandleFunc("GET /internal/v1/execute/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("DELETE /internal/v1/execute/{id}", s.handleCancel)
}

func (s *ExecServer) handleStart(w http.ResponseWriter, r *http.Request) {
	faultinject.Delay("exec.start.delay")
	if faultinject.Once("exec.start.drop") {
		panic(http.ErrAbortHandler) // drop the connection without a response
	}
	// Bound the body like the public submit route, but with headroom for
	// infrastructure payloads: a forwarded request can carry an inline
	// dataset plus a checkpoint with inlined labeled datasets.
	r.Body = http.MaxBytesReader(w, r.Body, maxExecBodyBytes)
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, errBodyTooLarge,
				fmt.Errorf("execution payload exceeds the %d-byte limit", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, errBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, errBadRequest, err)
		return
	}

	// Adopt the gateway's trace id so the execution's spans and log
	// lines correlate across processes; a direct caller without the
	// header gets a fresh worker-local id.
	rid := r.Header.Get(telemetry.RequestIDHeader)
	if rid == "" {
		rid = telemetry.NewRequestID()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errInternal, fmt.Errorf("execution server is shutting down"))
		return
	}
	s.sweepLocked()
	s.nextID++
	id := fmt.Sprintf("exec-%s-%06d", s.bootID, s.nextID)
	ctx, cancel := context.WithCancel(s.ctx)
	ctx = telemetry.WithRequestID(ctx, rid)
	ex := &execution{id: id, requestID: rid, cancel: cancel, status: StatusRunning}
	s.execs[id] = ex
	s.started++
	s.active++
	s.wg.Add(1)
	s.mu.Unlock()
	s.mStarted.Inc()
	s.log.Info("execution started", "execution_id", id, "request_id", rid)

	go s.run(ex, req, ctx)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

// run executes the request and records its terminal state.
func (s *ExecServer) run(ex *execution, req Request, ctx context.Context) {
	defer s.wg.Done()
	defer ex.cancel()
	result, err := s.exec.Execute(ctx, req, func(p Progress) {
		ex.mu.Lock()
		ex.progress = p
		ex.mu.Unlock()
		if faultinject.Enabled() {
			s.maybeFaultExit(p)
		}
	})

	ex.mu.Lock()
	ex.finishedAt = time.Now()
	switch {
	case ctx.Err() != nil:
		ex.status = StatusCanceled
	case err != nil:
		ex.status = StatusFailed
		ex.err = err
	default:
		ex.status = StatusDone
		ex.result = result
	}
	status := ex.status
	ex.mu.Unlock()

	s.mu.Lock()
	s.active--
	s.mu.Unlock()
	if err != nil && status == StatusFailed {
		s.log.Warn("execution failed", "execution_id", ex.id, "request_id", ex.requestID, "error", err)
	} else {
		s.log.Info("execution finished", "execution_id", ex.id, "request_id", ex.requestID, "status", string(status))
	}
}

func (s *ExecServer) lookup(id string) (*execution, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	ex, ok := s.execs[id]
	return ex, ok
}

// sweepLocked garbage-collects finished executions past retention — the
// safety net for gateways that never sent the DELETE acknowledgement.
// Caller holds s.mu.
func (s *ExecServer) sweepLocked() {
	cutoff := time.Now().Add(-s.opts.Retention)
	for id, ex := range s.execs {
		ex.mu.Lock()
		expired := ex.status.Terminal() && !ex.finishedAt.IsZero() && ex.finishedAt.Before(cutoff)
		ex.mu.Unlock()
		if expired {
			delete(s.execs, id)
		}
	}
}

func (s *ExecServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	faultinject.Delay("exec.status.delay")
	if faultinject.Once("exec.status.drop") {
		panic(http.ErrAbortHandler) // drop the connection without a response
	}
	id := r.PathValue("id")
	ex, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound, fmt.Errorf("unknown execution %s", id))
		return
	}
	ex.mu.Lock()
	resp := execStatusResponse{ID: ex.id, Status: ex.status, Progress: ex.progress, RequestID: ex.requestID, Result: ex.result}
	resp.CheckpointSeq = ex.progress.checkpointSeq()
	if ex.err != nil {
		resp.Error = ex.err.Error()
	}
	ex.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint serves the newest resumable checkpoint of an
// execution. The gateway calls it when the status poll's seq advances,
// keeping the snapshot off the hot polling path.
func (s *ExecServer) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ex, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound, fmt.Errorf("unknown execution %s", id))
		return
	}
	ex.mu.Lock()
	cp := ex.progress.Checkpoint
	ex.mu.Unlock()
	if cp == nil {
		writeError(w, http.StatusNotFound, errNotFound, fmt.Errorf("execution %s has no checkpoint yet", id))
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

// maybeFaultExit implements the "exec.exit-after" fault point: once a
// span whose name starts with the armed prefix closes, the process
// exits after "exec.exit.delay" (default immediately) — simulating a
// worker crash mid-execution, after some stages already checkpointed.
// The delay gives the gateway's poller time to fetch the checkpoint,
// like a real crash that happens between polls.
func (s *ExecServer) maybeFaultExit(p Progress) {
	prefix, ok := faultinject.Value("exec.exit-after")
	if !ok || prefix == "" {
		return
	}
	for _, t := range p.Timings {
		if strings.HasPrefix(t.Stage, prefix) {
			if faultinject.Once("exec.exit-after") {
				delay := faultinject.Duration("exec.exit.delay")
				s.log.Warn("faultinject: worker exiting after stage",
					"stage", t.Stage, "delay", delay.String())
				go func() {
					time.Sleep(delay)
					os.Exit(3)
				}()
			}
			return
		}
	}
}

// handleCancel cancels a running execution; for a terminal one it acts
// as the gateway's acknowledgement and releases the entry.
func (s *ExecServer) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ex, ok := s.execs[id]
	terminal := false
	if ok {
		ex.mu.Lock()
		terminal = ex.status.Terminal()
		if terminal {
			delete(s.execs, id)
		}
		ex.mu.Unlock()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errNotFound, fmt.Errorf("unknown execution %s", id))
		return
	}
	ex.cancel()
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "canceled": !terminal})
}
