package engine

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/ruleset"
)

// noisyTestDataset flips a quarter of testDataset's crisp labels, so a
// single tree overfits noise and disagrees with the full ensemble —
// the fixture that makes a forced one-rule distillation measurably
// low-fidelity (see ruleset.TestForcedLowFidelity for the pinning).
func noisyTestDataset(n int, rng *rand.Rand) *dataset.Dataset {
	d := testDataset(n, rng)
	y := append([]float64(nil), d.Y...)
	for i := range y {
		if rng.Float64() < 0.25 {
			y[i] = 1 - y[i]
		}
	}
	return dataset.MustNew(d.X, y)
}

// runJob submits a request and returns the finished result, failing the
// test on any non-done terminal state.
func runJob(t *testing.T, e *Engine, req Request) (JobID, *Result) {
	t.Helper()
	id, err := e.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if snap := waitTerminal(t, e, id, 120*time.Second); snap.Status != StatusDone {
		t.Fatalf("status = %s (err %q), want done", snap.Status, snap.Error)
	}
	res, err := e.Result(id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return id, res
}

// TestDistilledKernelEndToEnd runs a real job with the distilled
// labeling kernel through the engine and the HTTP API: the variant
// reports kernel "distilled" with its measured fidelity, the rule-set
// export decodes, /result omits the inline rules and /rules serves
// them, and a repeat job reuses the cached distillation.
func TestDistilledKernelEndToEnd(t *testing.T) {
	x := NewLocalExecutor(LocalExecutorOptions{})
	e := newTestEngine(t, Options{Workers: 1, Executor: x})
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	d := testDataset(300, rand.New(rand.NewSource(11)))
	id, res := runJob(t, e, Request{Dataset: d, L: 2000, Seed: 12, LabelKernel: "distilled"})

	best := res.Best
	if best.LabelKernel != "distilled" {
		t.Fatalf("label kernel = %q (fallback %q), want distilled", best.LabelKernel, best.FallbackReason)
	}
	if best.FallbackReason != "" {
		t.Fatalf("unexpected fallback: %s", best.FallbackReason)
	}
	if best.LabelFidelity < 0.99 {
		t.Fatalf("reported fidelity %.4f below 0.99", best.LabelFidelity)
	}
	if len(best.Ruleset) == 0 {
		t.Fatalf("distilled variant carries no ruleset export")
	}
	exp, err := ruleset.DecodeExport(best.Ruleset)
	if err != nil {
		t.Fatalf("stored ruleset does not decode: %v", err)
	}
	if exp.Kind != ruleset.KindMean || exp.Dim != 3 {
		t.Fatalf("export kind/dim = %s/%d, want mean/3", exp.Kind, exp.Dim)
	}
	if rs := x.RulesetCacheStats(); rs.Misses != 1 || rs.Entries != 1 {
		t.Fatalf("ruleset cache stats = %+v, want 1 miss / 1 entry", rs)
	}

	// /result strips the inline export; /rules serves it.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + string(id) + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result = %d: %s", resp.StatusCode, raw)
	}
	if strings.Contains(string(raw), `"ruleset"`) {
		t.Fatalf("/result payload still inlines the ruleset export")
	}
	if !strings.Contains(string(raw), `"label_kernel": "distilled"`) {
		t.Fatalf("/result payload does not surface the label kernel:\n%s", raw)
	}
	var rules struct {
		ID          string `json:"id"`
		DatasetHash string `json:"dataset_hash"`
		Rulesets    []struct {
			Metamodel      string          `json:"metamodel"`
			LabelKernel    string          `json:"label_kernel"`
			LabelFidelity  float64         `json:"label_fidelity"`
			FallbackReason string          `json:"fallback_reason"`
			Ruleset        json.RawMessage `json:"ruleset"`
		} `json:"rulesets"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+string(id)+"/rules", &rules); code != http.StatusOK {
		t.Fatalf("GET rules = %d", code)
	}
	if rules.ID != string(id) || rules.DatasetHash != res.DatasetHash {
		t.Fatalf("rules envelope = %s/%s, want %s/%s", rules.ID, rules.DatasetHash, id, res.DatasetHash)
	}
	if len(rules.Rulesets) != 1 || rules.Rulesets[0].Metamodel != "rf" {
		t.Fatalf("rulesets = %+v, want one rf entry", rules.Rulesets)
	}
	served, err := ruleset.DecodeExport(rules.Rulesets[0].Ruleset)
	if err != nil {
		t.Fatalf("served ruleset does not decode: %v", err)
	}
	if served.LabelFidelity != exp.LabelFidelity {
		t.Fatalf("served export fidelity %v != stored %v", served.LabelFidelity, exp.LabelFidelity)
	}

	// A repeat job distills nothing: the rule set is cached under the
	// parent model's key.
	_, res2 := runJob(t, e, Request{Dataset: d, L: 2000, Seed: 12, LabelKernel: "distilled"})
	if res2.Best.LabelKernel != "distilled" || !res2.Best.LabelCacheHit {
		t.Fatalf("repeat job: kernel %q, label hit %v; want distilled hit", res2.Best.LabelKernel, res2.Best.LabelCacheHit)
	}
	if rs := x.RulesetCacheStats(); rs.Misses != 1 || rs.Hits < 1 {
		t.Fatalf("repeat job ruleset cache stats = %+v, want 1 miss and at least 1 hit", rs)
	}
	if n := x.RulesetFallbacks(); n != 0 {
		t.Fatalf("fallbacks = %d, want 0", n)
	}
}

// TestDistilledFidelityFallback forces a low-fidelity distillation
// through a real job (one-rule budget against a noise-overfit forest,
// threshold 1.0) and asserts the engine labels with the full ensemble,
// says why, and counts the fallback.
func TestDistilledFidelityFallback(t *testing.T) {
	x := NewLocalExecutor(LocalExecutorOptions{})
	e := newTestEngine(t, Options{Workers: 1, Executor: x})
	defer e.Close()
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	d := noisyTestDataset(300, rand.New(rand.NewSource(21)))
	id, res := runJob(t, e, Request{
		Dataset: d, L: 2000, Seed: 22,
		LabelKernel:     "distilled",
		DistillFidelity: 1,
		DistillMaxRules: 1,
	})
	best := res.Best
	if best.LabelKernel != "full" {
		t.Fatalf("label kernel = %q, want full after fallback", best.LabelKernel)
	}
	if !strings.Contains(best.FallbackReason, "fidelity") {
		t.Fatalf("fallback reason = %q, want a fidelity explanation", best.FallbackReason)
	}
	if best.LabelFidelity >= 1 || best.LabelFidelity <= 0 {
		t.Fatalf("measured fidelity %v not in (0,1)", best.LabelFidelity)
	}
	if best.Ruleset != nil {
		t.Fatalf("fallen-back variant still carries a ruleset export")
	}
	if n := x.RulesetFallbacks(); n != 1 {
		t.Fatalf("fallbacks = %d, want 1", n)
	}
	// /rules still reports the family — with the reason instead of rules.
	var rules struct {
		Rulesets []struct {
			LabelKernel    string          `json:"label_kernel"`
			FallbackReason string          `json:"fallback_reason"`
			Ruleset        json.RawMessage `json:"ruleset"`
		} `json:"rulesets"`
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+string(id)+"/rules", &rules); code != http.StatusOK {
		t.Fatalf("GET rules = %d", code)
	}
	if len(rules.Rulesets) != 1 || rules.Rulesets[0].LabelKernel != "full" ||
		rules.Rulesets[0].FallbackReason == "" || rules.Rulesets[0].Ruleset != nil {
		t.Fatalf("rules entry = %+v, want full kernel with a reason and no rules", rules.Rulesets)
	}
}

// TestDistilledUnsupportedFamilyFallsBack: svm has no tree structure;
// a distilled request over it must label with the full model and report
// "unsupported".
func TestDistilledUnsupportedFamilyFallsBack(t *testing.T) {
	x := NewLocalExecutor(LocalExecutorOptions{})
	e := newTestEngine(t, Options{Workers: 1, Executor: x})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(31)))
	_, res := runJob(t, e, Request{Dataset: d, L: 1000, Seed: 32, Metamodels: []string{"svm"}, LabelKernel: "distilled"})
	best := res.Best
	if best.LabelKernel != "full" || best.FallbackReason != "unsupported" {
		t.Fatalf("svm variant kernel/reason = %q/%q, want full/unsupported", best.LabelKernel, best.FallbackReason)
	}
	if n := x.RulesetFallbacks(); n != 1 {
		t.Fatalf("fallbacks = %d, want 1", n)
	}
}

// TestLabelCacheKeyIncludesKernel is the cache-poisoning regression:
// distilled-labeled data must never serve a full-ensemble job (or vice
// versa). Back-to-back jobs differing only in the kernel must both
// miss; a repeat with the same kernel hits.
func TestLabelCacheKeyIncludesKernel(t *testing.T) {
	x := NewLocalExecutor(LocalExecutorOptions{})
	e := newTestEngine(t, Options{Workers: 1, Executor: x})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(41)))
	_, full := runJob(t, e, Request{Dataset: d, L: 2000, Seed: 42})
	if full.Best.LabelCacheHit {
		t.Fatalf("first job hit an empty label cache")
	}
	_, dist := runJob(t, e, Request{Dataset: d, L: 2000, Seed: 42, LabelKernel: "distilled"})
	if dist.Best.LabelCacheHit {
		t.Fatalf("distilled job was served full-ensemble labels from the cache")
	}
	if dist.Best.LabelKernel != "distilled" {
		t.Fatalf("distilled job labeled with %q", dist.Best.LabelKernel)
	}
	if ls := x.LabelCacheStats(); ls.Misses != 2 {
		t.Fatalf("label cache misses = %d, want 2 (kernel is part of the key)", ls.Misses)
	}
	// Same kernel again: now it hits.
	_, dist2 := runJob(t, e, Request{Dataset: d, L: 2000, Seed: 42, LabelKernel: "distilled"})
	if !dist2.Best.LabelCacheHit {
		t.Fatalf("repeat distilled job missed the label cache")
	}
	if ls := x.LabelCacheStats(); ls.Misses != 2 || ls.Hits < 1 {
		t.Fatalf("label cache stats after repeat = %+v, want 2 misses and a hit", ls)
	}
}

// TestDistillRequestValidation pins the request-level guardrails.
func TestDistillRequestValidation(t *testing.T) {
	d := testDataset(50, rand.New(rand.NewSource(51)))
	cases := []Request{
		{Dataset: d, LabelKernel: "fast"},
		{Dataset: d, DistillFidelity: 1.5},
		{Dataset: d, DistillFidelity: -0.1},
		{Dataset: d, DistillMaxRules: -1},
	}
	for i, req := range cases {
		if err := req.Validate(); err == nil {
			t.Errorf("case %d: invalid request validated", i)
		}
	}
	ok := Request{Dataset: d, LabelKernel: "distilled", DistillFidelity: 0.95, DistillMaxRules: 64}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid distill request rejected: %v", err)
	}
}
