// Package engine is the concurrent scenario-discovery engine behind
// cmd/redsserver and cmd/redsgateway, split into two layers:
//
//   - the orchestration layer (Engine): a job queue plus a bounded
//     worker pool with lifecycle tracking, store persistence and TTL
//     GC — everything around running a request;
//   - the execution layer (the Executor interface): actually running
//     one request end to end. LocalExecutor runs whole REDS pipelines
//     in-process (metamodel training → parallel pseudo-labeling →
//     subgroup discovery) with per-stage progress, cooperative
//     cancellation, a size-weighted LRU metamodel cache keyed by
//     dataset content, and multi-variant fan-out (several metamodel
//     families × SD algorithms per request) ranked by scenario
//     quality. RemoteExecutor runs the same contract on another
//     process through the internal execution API (ExecServer), and
//     internal/cluster.Dispatcher consistent-hash-routes it across a
//     fleet of workers.
//
// # Durability
//
// Every job lifecycle transition and every finished result is mirrored
// into a store.Store (see internal/engine/store). With the default
// in-memory store the engine behaves as a purely in-process service;
// with a file store, New recovers the previous process's state: done
// results become servable again, jobs that never started are
// re-enqueued, and jobs orphaned mid-run by a crash are marked failed
// with a restart reason. A TTL sweeper garbage-collects terminal jobs
// past their retention window from both the store and the in-memory
// index, bounding growth in long-running deployments.
//
// # Job lifecycle
//
//	pending ──► running ──► done | failed | canceled
//	   │                               ▲
//	   └── cancel while queued ────────┘
//
// A graceful Close leaves queued jobs pending (so a durable restart
// resumes them) and ends running jobs canceled; a crash leaves running
// jobs in the store as running, which the next New reports as orphaned.
package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/reds-go/reds/internal/box"
	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/engine/store"
	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/metrics"
)

// JobID identifies a submitted job.
type JobID string

// Status is the lifecycle state of a job.
type Status string

// Job lifecycle: Pending (queued) → Running → one of Done, Failed,
// Canceled. Cancellation of a still-queued job skips Running.
const (
	StatusPending  Status = "pending"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Request describes one discovery job. The input data is either a
// registered simulation function (Function + N simulations) or an inline
// Dataset; exactly one must be set. Metamodels and SD name the variant
// grid: every combination runs as a concurrent sub-task and the result
// ranks them by quality on the real (simulated) examples.
type Request struct {
	// Function is a funcs registry name ("morris", "borehole", ...).
	Function string `json:"function,omitempty"`
	// N is the number of simulations drawn from Function (default 400).
	N int `json:"n,omitempty"`
	// Dataset is an inline labeled dataset, alternative to Function.
	Dataset *dataset.Dataset `json:"dataset,omitempty"`
	// L is the pseudo-label sample size (default 10000).
	L int `json:"l,omitempty"`
	// Metamodels lists metamodel families to try: "rf", "xgb", "svm"
	// (default ["rf"]).
	Metamodels []string `json:"metamodels,omitempty"`
	// SD lists subgroup-discovery algorithms to try: "prim", "bumping",
	// "bi" (default ["prim"]).
	SD []string `json:"sd,omitempty"`
	// Sampler names the design for training and pseudo-label points:
	// "lhs" (default), "uniform", "halton", "logitnormal", "mixed".
	Sampler string `json:"sampler,omitempty"`
	// Seed makes the job deterministic (default 1).
	Seed int64 `json:"seed,omitempty"`
	// ProbLabels selects the modified REDS of Section 6.1 (probability
	// pseudo-labels instead of thresholded ones).
	ProbLabels bool `json:"prob_labels,omitempty"`
	// Tuned enables cross-validated hyperparameter search for each
	// metamodel (slower; off by default).
	Tuned bool `json:"tuned,omitempty"`
	// LabelKernel selects the pseudo-labeling kernel: "full" (default)
	// runs the trained ensemble's batch path; "distilled" first distills
	// the ensemble into a compact rule set (internal/ruleset) and labels
	// with that — automatically falling back to the full ensemble when
	// the family is not distillable (svm) or the distillation's measured
	// holdout fidelity misses the threshold. The kernel actually used is
	// reported per variant (VariantResult.LabelKernel).
	LabelKernel string `json:"label_kernel,omitempty"`
	// DistillFidelity overrides the executor's fidelity threshold for
	// this job: a distilled kernel whose holdout label agreement with
	// the parent falls below it is discarded in favor of the full
	// ensemble. 0 keeps the executor default (0.99).
	DistillFidelity float64 `json:"distill_fidelity,omitempty"`
	// DistillMaxRules caps the distilled rule budget (0 = unbounded).
	// Mostly a test lever: a tiny budget deterministically forces the
	// fidelity fallback.
	DistillMaxRules int `json:"distill_max_rules,omitempty"`
	// TrainMode selects how tree-ensemble metamodels train: "exact"
	// (default) runs the exhaustive-cut path; "binned" runs the
	// histogram-binned fast path (features quantized once per dataset,
	// splits swept over bin histograms, tuning folds sharing one
	// quantization) — automatically falling back to exact when the
	// family has no binned path (svm) or a quick holdout quality gate
	// misses the threshold. The mode actually used is reported per
	// variant (VariantResult.TrainMode). Empty keeps the executor
	// default.
	TrainMode string `json:"train_mode,omitempty"`
	// TrainBins caps the per-feature quantile bin budget of binned
	// training (2..256; 0 keeps the default, 64).
	TrainBins int `json:"train_bins,omitempty"`
	// TrainQuality overrides the executor's holdout accuracy threshold
	// the binned gate model must reach before the fast path trains a
	// variant; below it the family falls back to exact training. 0 keeps
	// the executor default (0.55).
	TrainQuality float64 `json:"train_quality,omitempty"`
	// DeadlineSeconds bounds the job's wall-clock execution time: a job
	// still running this long after execution starts fails with a
	// deadline reason. 0 means no deadline (or the server's
	// -job.max-runtime default when admission control is configured).
	// The budget is checkpoint-aware: a resumed job inherits what its
	// earlier executions already spent (Checkpoint.ElapsedSeconds).
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// Checkpoint resumes the request from a partially executed state:
	// the executor reuses the finished variants and skips the stages the
	// snapshot proves complete. It is set by the infrastructure — the
	// dispatcher on failover, the engine when re-running a recovered job
	// — never by clients; the public API strips it from submissions. It
	// does not contribute to ShardKey (the same job routes to the same
	// worker whether or not it resumes).
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
}

// Validate checks the request against the function registry and the
// variant grids before the job is accepted.
func (r *Request) Validate() error {
	switch {
	case r.Function == "" && r.Dataset == nil:
		return fmt.Errorf("engine: request needs a function name or an inline dataset")
	case r.Function != "" && r.Dataset != nil:
		return fmt.Errorf("engine: request has both a function and an inline dataset; pick one")
	case r.Function != "":
		if _, err := funcs.Get(r.Function); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
	default:
		if r.Dataset.N() == 0 {
			return fmt.Errorf("engine: inline dataset is empty")
		}
		if r.Dataset.M() == 0 {
			return fmt.Errorf("engine: inline dataset has no input columns")
		}
		// NaN/Inf parse fine from CSV but poison discovery and are not
		// JSON-encodable, so job snapshots would fail to serialize.
		for i, row := range r.Dataset.X {
			for j, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("engine: inline dataset has non-finite value at row %d col %d", i, j)
				}
			}
		}
		for i, y := range r.Dataset.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return fmt.Errorf("engine: inline dataset has non-finite label at row %d", i)
			}
		}
	}
	if r.N < 0 || r.L < 0 {
		return fmt.Errorf("engine: negative n or l")
	}
	for _, name := range r.Metamodels {
		if !knownMetamodel(name) {
			return fmt.Errorf("engine: unknown metamodel %q (want rf, xgb or svm)", name)
		}
	}
	for _, name := range r.SD {
		if !knownSD(name) {
			return fmt.Errorf("engine: unknown SD algorithm %q (want prim, bumping or bi)", name)
		}
	}
	if _, err := samplerByName(r.Sampler); err != nil {
		return err
	}
	switch r.LabelKernel {
	case "", "full", "distilled":
	default:
		return fmt.Errorf("engine: unknown label kernel %q (want full or distilled)", r.LabelKernel)
	}
	if r.DistillFidelity < 0 || r.DistillFidelity > 1 || math.IsNaN(r.DistillFidelity) {
		return fmt.Errorf("engine: distill_fidelity %v out of [0,1]", r.DistillFidelity)
	}
	if r.DistillMaxRules < 0 {
		return fmt.Errorf("engine: negative distill_max_rules")
	}
	switch r.TrainMode {
	case "", "exact", "binned":
	default:
		return fmt.Errorf("engine: unknown train mode %q (want exact or binned)", r.TrainMode)
	}
	if r.TrainBins != 0 && (r.TrainBins < 2 || r.TrainBins > dataset.MaxBins) {
		return fmt.Errorf("engine: train_bins %d out of [2,%d]", r.TrainBins, dataset.MaxBins)
	}
	if r.TrainQuality < 0 || r.TrainQuality > 1 || math.IsNaN(r.TrainQuality) {
		return fmt.Errorf("engine: train_quality %v out of [0,1]", r.TrainQuality)
	}
	if r.DeadlineSeconds < 0 || math.IsNaN(r.DeadlineSeconds) || math.IsInf(r.DeadlineSeconds, 0) {
		return fmt.Errorf("engine: deadline_seconds %v must be a non-negative finite number", r.DeadlineSeconds)
	}
	return nil
}

// VariantResult is the outcome of one metamodel × SD combination.
type VariantResult struct {
	// Metamodel and SD identify the combination.
	Metamodel string `json:"metamodel"`
	SD        string `json:"sd"`
	// Box is the selected scenario; Rule is its IF-THEN rendering.
	Box  *box.Box `json:"box,omitempty"`
	Rule string   `json:"rule,omitempty"`
	// Precision, Recall and WRAcc evaluate Box on the real (simulated)
	// examples; PRAUC integrates the whole trajectory.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	WRAcc     float64 `json:"wracc"`
	PRAUC     float64 `json:"pr_auc"`
	// Trajectory is the peeling trajectory in PR coordinates.
	Trajectory []metrics.PRPoint `json:"trajectory,omitempty"`
	// CacheHit reports whether the metamodel came from the engine cache.
	CacheHit bool `json:"cache_hit"`
	// LabelCacheHit reports whether the pseudo-labeled dataset came
	// from the engine's label cache (another variant of the same family
	// — or an earlier job — had already labeled it).
	LabelCacheHit bool `json:"label_cache_hit"`
	// LabelKernel is the pseudo-labeling kernel that actually ran:
	// "distilled" (the compact rule set) or "full" (the trained
	// ensemble). A request that asked for "distilled" can still report
	// "full" here — see FallbackReason.
	LabelKernel string `json:"label_kernel,omitempty"`
	// LabelFidelity is the distilled kernel's measured holdout label
	// agreement with the parent ensemble. Only set when a distillation
	// ran (even one that fell back).
	LabelFidelity float64 `json:"label_fidelity,omitempty"`
	// FallbackReason explains why a requested distilled kernel was not
	// used: "unsupported" (the family has no tree structure, e.g. svm)
	// or "fidelity <measured> below threshold <t>".
	FallbackReason string `json:"fallback_reason,omitempty"`
	// Ruleset is the distilled rule set's canonical JSON export
	// (ruleset.Export), present when the variant labeled with the
	// distilled kernel. GET /v1/jobs/{id}/rules serves it; the /result
	// payload strips it to stay small.
	Ruleset json.RawMessage `json:"ruleset,omitempty"`
	// TrainMode is the training mode that actually ran: "binned" (the
	// histogram fast path) or "exact". A request that asked for "binned"
	// can still report "exact" here — see TrainFallbackReason.
	TrainMode string `json:"train_mode,omitempty"`
	// TrainQuality is the binned gate model's measured holdout accuracy.
	// Only set when the gate ran (even when it forced a fallback).
	TrainQuality float64 `json:"train_quality,omitempty"`
	// TrainFallbackReason explains why a requested binned mode was not
	// used: "unsupported" (the family has no binned path, e.g. svm) or
	// "quality <measured> below threshold <t>".
	TrainFallbackReason string `json:"train_fallback_reason,omitempty"`
	// Resumed reports that the variant was not re-run at all: a
	// checkpoint from an earlier execution already carried its finished
	// result.
	Resumed bool `json:"resumed,omitempty"`
	// Error is set when this variant failed; the job can still succeed
	// on the surviving variants.
	Error string `json:"error,omitempty"`
}

// Result is the final payload of a finished job: the winning variant
// plus every variant for comparison, ranked best-first.
type Result struct {
	// Best is the highest-ranked variant (by WRAcc, ties by PR AUC).
	Best VariantResult `json:"best"`
	// Variants holds all combinations, ranked best-first with failed
	// variants last.
	Variants []VariantResult `json:"variants"`
	// TrainN and TrainPositiveShare describe the real dataset the
	// variants were validated on.
	TrainN             int     `json:"train_n"`
	TrainPositiveShare float64 `json:"train_positive_share"`
	// DatasetHash is the content hash used as the cache key prefix.
	DatasetHash string `json:"dataset_hash"`
	// ElapsedSeconds is the wall-clock job duration.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// Snapshot is a point-in-time view of a job, safe to serialize.
type Snapshot struct {
	ID     JobID  `json:"id"`
	Status Status `json:"status"`
	// Request echoes the submission, except that an inline dataset is
	// summarized by DatasetN/DatasetM instead of re-serialized on every
	// status poll.
	Request  Request `json:"request"`
	DatasetN int     `json:"dataset_n,omitempty"`
	DatasetM int     `json:"dataset_m,omitempty"`
	// Stage is the most recently entered pipeline stage across the
	// job's variants ("train", "sample", "label", "discover").
	Stage string `json:"stage,omitempty"`
	// LabelDone / LabelTotal aggregate pseudo-labeling progress over
	// all variants.
	LabelDone  int `json:"label_done"`
	LabelTotal int `json:"label_total"`
	// VariantsDone / VariantsTotal count finished variant sub-tasks.
	VariantsDone  int `json:"variants_done"`
	VariantsTotal int `json:"variants_total"`
	// RequestID correlates this job across processes and log streams:
	// the submitting client's X-Request-Id (or a generated one), logged
	// by the engine, forwarded to the executing worker by
	// RemoteExecutor, and echoed in the worker's execution logs. Empty
	// for jobs recovered from a store written before request IDs
	// existed.
	RequestID string `json:"request_id,omitempty"`
	// Timings is the job's per-stage trace: a "queue_wait" span from
	// the orchestrating engine followed by the executor's pipeline
	// spans ("train/rf", "label/rf", "discover/rf/prim", ...) in
	// completion order. For gateway jobs the pipeline spans come from
	// the executing worker, carried back through the internal API.
	Timings []StageTiming `json:"timings,omitempty"`
	// Error is the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// Client is the authenticated client that submitted the job (empty
	// when admission control is disabled). GET /v1/jobs?client= filters
	// on it.
	Client string `json:"client,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// job is the engine-internal mutable state behind a Snapshot.
type job struct {
	id  JobID
	req Request
	// reqJSON is the request as persisted (encoded once at submission or
	// carried over from the store on recovery), reused for every store
	// upsert of this job.
	reqJSON []byte
	// requestID is the job's cross-process trace anchor (see
	// Snapshot.RequestID). Not persisted: a recovered job starts a new
	// trace if it runs again.
	requestID string
	// owner is the authenticated client that submitted the job, persisted
	// so listings can be filtered per client across restarts.
	owner string
	// onDone fires exactly once when the job reaches a terminal state
	// (admission control releases the submitter's in-flight slot here).
	// Not persisted: the accounting is process-local.
	onDone func()
	// onDoneOnce guarantees the exactly-once firing across the racy
	// cancel-while-dequeuing paths.
	onDoneOnce sync.Once
	ctx        context.Context
	cancel     context.CancelFunc

	mu     sync.Mutex
	status Status
	// progress is the most recent executor report; the executor
	// serializes its callbacks, so each report replaces the previous one
	// wholesale.
	progress    Progress
	result      *Result
	err         error
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
}

func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	req := j.req
	s := Snapshot{
		ID:            j.id,
		Status:        j.status,
		Request:       req,
		Stage:         j.progress.Stage,
		LabelDone:     j.progress.LabelDone,
		LabelTotal:    j.progress.LabelTotal,
		VariantsDone:  j.progress.VariantsDone,
		VariantsTotal: j.progress.VariantsTotal,
		RequestID:     j.requestID,
		Client:        j.owner,
		SubmittedAt:   j.submittedAt,
	}
	// The trace starts with the orchestration layer's own span — how
	// long the job sat queued — followed by the executor's pipeline
	// spans. progress.Timings is an immutable snapshot (the sink copies
	// on append), so sharing the tail is safe.
	if !j.startedAt.IsZero() {
		s.Timings = append([]StageTiming{{
			Stage:   "queue_wait",
			Seconds: j.startedAt.Sub(j.submittedAt).Seconds(),
		}}, j.progress.Timings...)
	}
	if req.Dataset != nil {
		s.DatasetN = req.Dataset.N()
		s.DatasetM = req.Dataset.M()
		s.Request.Dataset = nil
	}
	// Checkpoints are infrastructure state, not part of the submission —
	// and can carry megabytes of labeled data; never echo them.
	s.Request.Checkpoint = nil
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		s.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		s.FinishedAt = &t
	}
	return s
}

// recordLocked builds the store record for the job's current state.
// Caller holds j.mu (or has exclusive access during recovery).
func (j *job) recordLocked() store.Record {
	rec := store.Record{
		ID:          string(j.id),
		Status:      string(j.status),
		Owner:       j.owner,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
		Request:     j.reqJSON,
	}
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	return rec
}

// transitionLocked is recordLocked without the request payload: status
// transitions of an already-persisted job upsert with a nil Request
// (the store's merge rule keeps the stored one), so a transition entry
// stays small even for jobs submitted with inline datasets. Caller
// holds j.mu.
func (j *job) transitionLocked() store.Record {
	rec := j.recordLocked()
	rec.Request = nil
	return rec
}

// setProgress replaces the job's progress with the executor's latest
// report.
func (j *job) setProgress(p Progress) {
	j.mu.Lock()
	j.progress = p
	j.mu.Unlock()
}

// fireDone runs the job's terminal hook at most once. Callers invoke it
// after every transition into a terminal state; the sync.Once absorbs
// the duplicate paths (cancel-while-pending followed by the worker
// observing the canceled job).
func (j *job) fireDone() {
	if j.onDone == nil {
		return
	}
	j.onDoneOnce.Do(j.onDone)
}
