package engine

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/engine/store"
)

func openFS(t *testing.T, dir string) *store.FS {
	t.Helper()
	fs, err := store.OpenFS(dir, store.FSOptions{})
	if err != nil {
		t.Fatalf("OpenFS(%s): %v", dir, err)
	}
	return fs
}

// TestRestartServesDoneResults is the acceptance flow at the engine
// level: finish a job over a durable store, shut the engine down, boot a
// fresh engine over the same directory, and read the result back.
func TestRestartServesDoneResults(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(250, rand.New(rand.NewSource(11)))

	e1 := newTestEngine(t, Options{Workers: 1, Store: openFS(t, dir)})
	id, err := e1.Submit(Request{Dataset: d, L: 800, Seed: 5})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if snap := waitTerminal(t, e1, id, 60*time.Second); snap.Status != StatusDone {
		t.Fatalf("job finished %s: %s", snap.Status, snap.Error)
	}
	res1, err := e1.Result(id)
	if err != nil {
		t.Fatalf("result before restart: %v", err)
	}
	e1.Close()

	e2 := newTestEngine(t, Options{Workers: 1, Store: openFS(t, dir)})
	defer e2.Close()
	if got := e2.Recovery(); got.Recovered != 1 || got.Reenqueued != 0 || got.Orphaned != 0 {
		t.Fatalf("recovery stats = %+v, want 1 recovered terminal job", got)
	}
	snap, ok := e2.Job(id)
	if !ok || snap.Status != StatusDone {
		t.Fatalf("recovered job = %+v ok=%v, want done", snap, ok)
	}
	if snap.SubmittedAt.IsZero() || snap.FinishedAt == nil {
		t.Fatalf("recovered job lost its timestamps: %+v", snap)
	}
	res2, err := e2.Result(id)
	if err != nil {
		t.Fatalf("result after restart: %v", err)
	}
	if res2.Best.Rule != res1.Best.Rule || res2.DatasetHash != res1.DatasetHash {
		t.Fatalf("restart changed the result: %q/%s vs %q/%s",
			res1.Best.Rule, res1.DatasetHash, res2.Best.Rule, res2.DatasetHash)
	}
	if res2.Best.Rule == "" || res2.Best.Box == nil {
		t.Fatalf("recovered result is empty: %+v", res2.Best)
	}
}

// TestRestartReenqueuesPending shuts an engine down with a job still
// queued behind a long-running one; the next engine over the same store
// must run the queued job to completion.
func TestRestartReenqueuesPending(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(250, rand.New(rand.NewSource(12)))

	e1 := newTestEngine(t, Options{Workers: 1, Store: openFS(t, dir)})
	blocker, err := e1.Submit(Request{Dataset: d, L: 2000000, Seed: 1})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if snap, _ := e1.Job(blocker); snap.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := e1.Submit(Request{Dataset: d, L: 800, Seed: 6})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	e1.Close() // blocker → canceled, queued stays pending in the store

	e2 := newTestEngine(t, Options{Workers: 1, Store: openFS(t, dir)})
	defer e2.Close()
	rec := e2.Recovery()
	if rec.Recovered != 2 || rec.Reenqueued != 1 {
		t.Fatalf("recovery stats = %+v, want 2 recovered / 1 re-enqueued", rec)
	}
	if snap, ok := e2.Job(blocker); !ok || snap.Status != StatusCanceled {
		t.Fatalf("blocker after restart = %+v, want canceled", snap)
	}
	snap := waitTerminal(t, e2, queued, 60*time.Second)
	if snap.Status != StatusDone {
		t.Fatalf("re-enqueued job finished %s: %s", snap.Status, snap.Error)
	}
	if res, err := e2.Result(queued); err != nil || res.Best.Rule == "" {
		t.Fatalf("re-enqueued job result: %v / %+v", err, res)
	}
}

// TestRecoveryMarksOrphanedRunning boots an engine over a store whose
// previous process crashed mid-job (simulated by writing the running
// record directly): the job must come back failed with a restart reason,
// not silently re-run.
func TestRecoveryMarksOrphanedRunning(t *testing.T) {
	dir := t.TempDir()
	fs := openFS(t, dir)
	reqJSON, _ := json.Marshal(Request{Function: "morris", N: 50, L: 500})
	now := time.Now()
	if err := fs.PutJob(store.Record{
		ID:          "job-000007",
		Status:      string(StatusRunning),
		SubmittedAt: now.Add(-time.Minute),
		StartedAt:   now.Add(-50 * time.Second),
		Request:     reqJSON,
	}); err != nil {
		t.Fatalf("planting running record: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	e := newTestEngine(t, Options{Workers: 1, Store: openFS(t, dir)})
	defer e.Close()
	if rec := e.Recovery(); rec.Orphaned != 1 {
		t.Fatalf("recovery stats = %+v, want 1 orphaned", rec)
	}
	snap, ok := e.Job("job-000007")
	if !ok || snap.Status != StatusFailed {
		t.Fatalf("orphaned job = %+v ok=%v, want failed", snap, ok)
	}
	if !strings.Contains(snap.Error, "previous engine process stopped") {
		t.Fatalf("orphan error = %q, want a restart reason", snap.Error)
	}
	// The failure is persisted, so yet another restart agrees.
	e.Close()
	e2 := newTestEngine(t, Options{Workers: 1, Store: openFS(t, dir)})
	defer e2.Close()
	if rec := e2.Recovery(); rec.Orphaned != 0 {
		t.Fatalf("second recovery re-orphaned: %+v", rec)
	}
	if snap, _ := e2.Job("job-000007"); snap.Status != StatusFailed {
		t.Fatalf("orphan not failed after second restart: %+v", snap)
	}
	// New submissions must not collide with the recovered id space.
	d := testDataset(100, rand.New(rand.NewSource(13)))
	id, err := e2.Submit(Request{Dataset: d, L: 200})
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	if id == "job-000007" {
		t.Fatalf("id collision with recovered job")
	}
	e2.Cancel(id)
}

// TestTTLSweepExpiresFinishedJobs runs an engine with a tiny TTL and
// asserts finished jobs vanish from both the engine and the store while
// unfinished work is untouched.
func TestTTLSweepExpiresFinishedJobs(t *testing.T) {
	st := store.NewMem()
	e := newTestEngine(t, Options{
		Workers:       1,
		Store:         st,
		TTL:           100 * time.Millisecond,
		SweepInterval: 20 * time.Millisecond,
	})
	defer e.Close()

	d := testDataset(250, rand.New(rand.NewSource(14)))
	id, err := e.Submit(Request{Dataset: d, L: 800, Seed: 7})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if snap := waitTerminal(t, e, id, 60*time.Second); snap.Status != StatusDone {
		t.Fatalf("job finished %s: %s", snap.Status, snap.Error)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, inEngine := e.Job(id)
		recs, err := st.List()
		if err != nil {
			t.Fatalf("store list: %v", err)
		}
		if !inEngine && len(recs) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expired job survived the sweeper: inEngine=%v store=%d", inEngine, len(recs))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok, _ := st.GetResult(string(id)); ok {
		t.Fatalf("swept job kept its result in the store")
	}
	if len(e.Jobs()) != 0 {
		t.Fatalf("swept job still listed: %+v", e.Jobs())
	}
}

// TestIDsNotReusedAfterSweepAndRestart sweeps every record away, then
// restarts: the next submission must not reuse a swept job's id (an old
// job URL would silently serve the new job's data otherwise).
func TestIDsNotReusedAfterSweepAndRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := newTestEngine(t, Options{
		Workers:       1,
		Store:         openFS(t, dir),
		TTL:           50 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	})
	d := testDataset(250, rand.New(rand.NewSource(16)))
	id1, err := e1.Submit(Request{Dataset: d, L: 800, Seed: 3})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if snap := waitTerminal(t, e1, id1, 60*time.Second); snap.Status != StatusDone {
		t.Fatalf("job finished %s: %s", snap.Status, snap.Error)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := e1.Job(id1); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never swept")
		}
		time.Sleep(10 * time.Millisecond)
	}
	e1.Close()

	e2 := newTestEngine(t, Options{Workers: 1, Store: openFS(t, dir)})
	defer e2.Close()
	if rec := e2.Recovery(); rec.Recovered != 0 {
		t.Fatalf("swept store recovered %d jobs", rec.Recovered)
	}
	id2, err := e2.Submit(Request{Dataset: d, L: 800, Seed: 4})
	if err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
	if id2 == id1 {
		t.Fatalf("job id %s reused after sweep + restart", id2)
	}
	e2.Cancel(id2)
}

// TestSweepKeepsUnfinishedJobs makes sure the GC never touches pending
// or running work even with an aggressive TTL.
func TestSweepKeepsUnfinishedJobs(t *testing.T) {
	st := store.NewMem()
	e := newTestEngine(t, Options{
		Workers:       1,
		Store:         st,
		TTL:           time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
	})
	defer e.Close()

	d := testDataset(250, rand.New(rand.NewSource(15)))
	running, err := e.Submit(Request{Dataset: d, L: 2000000, Seed: 1})
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	queued, err := e.Submit(Request{Dataset: d, L: 800, Seed: 2})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // several sweep periods
	if _, ok := e.Job(running); !ok {
		t.Fatalf("sweeper removed an active job")
	}
	if _, ok := e.Job(queued); !ok {
		t.Fatalf("sweeper removed a queued job")
	}
	e.Cancel(running)
	e.Cancel(queued)
}
