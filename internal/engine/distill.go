package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/ruleset"
)

// distillSeedOffset derives a family's distillation sampling seed from
// its training seed. Like labelSeedOffset it is chosen to never collide
// (mod variantSeedStride) with training seeds, pipeline seeds or label
// seeds, so the distillation's selection/holdout samples are
// independent of every other seeded stream of the job.
const distillSeedOffset = 7919

// kernelResolution is the outcome of choosing a labeling kernel for
// one variant: which kernel actually runs, the model that implements
// it, and — when a distillation was involved — its measured fidelity,
// exported rules, and the reason it was rejected (if it was).
type kernelResolution struct {
	// kernel is "full" or "distilled" — the kernel that labels, after
	// any fallback.
	kernel string
	// model is the labeling model: the distilled ruleset.Model, or the
	// parent ensemble itself.
	model metamodel.Model
	// fidelity is the distillation's holdout label agreement with the
	// parent (0 when no distillation ran).
	fidelity float64
	// fallbackReason is non-empty when a requested distilled kernel was
	// not used ("unsupported", "fidelity ... below threshold ...").
	fallbackReason string
	// rulesJSON is the canonical rule-set export of the kernel that
	// labels; nil unless kernel == "distilled".
	rulesJSON json.RawMessage
}

// resolveKernel picks the labeling kernel for one variant. Full-kernel
// requests short-circuit; distilled requests fetch (or compute) the
// distillation from the ruleset cache keyed off the parent model's
// cache key, then gate it behind the fidelity threshold. Every path
// that cannot honor a distilled request counts one fallback and
// returns the full ensemble — a job never fails because distillation
// did, it just labels the expensive way and says so.
func (x *LocalExecutor) resolveKernel(req Request, modelKey string, parent metamodel.Model, dim int, distillSeed int64) kernelResolution {
	if req.effectiveLabelKernel() != "distilled" {
		return kernelResolution{kernel: "full", model: parent}
	}
	key := fmt.Sprintf("%s|distill|maxrules=%d|dseed=%d", modelKey, req.DistillMaxRules, distillSeed)
	m, _, err := x.rulesets.getOrDistill(key, func() (*ruleset.Model, error) {
		start := time.Now()
		m, err := ruleset.Distill(parent, ruleset.Options{
			Dim:      dim,
			MaxRules: req.DistillMaxRules,
			Seed:     distillSeed,
		})
		if err != nil {
			return nil, err
		}
		// Observed on cache misses only: these instruments describe
		// distillations performed, not lookups.
		st := m.Stats()
		x.mDistillSeconds.Observe(time.Since(start).Seconds())
		x.mDistillRules.Observe(float64(st.Rules))
		x.mDistillFidelity.Observe(st.LabelFidelity)
		return m, nil
	})
	if err != nil {
		x.mDistillFallback.Inc()
		reason := "error: " + err.Error()
		if errors.Is(err, ruleset.ErrNotDistillable) {
			reason = "unsupported"
		}
		return kernelResolution{kernel: "full", model: parent, fallbackReason: reason}
	}
	st := m.Stats()
	if threshold := req.effectiveDistillFidelity(x.distillFidelity); st.LabelFidelity < threshold {
		x.mDistillFallback.Inc()
		return kernelResolution{
			kernel:         "full",
			model:          parent,
			fidelity:       st.LabelFidelity,
			fallbackReason: fmt.Sprintf("fidelity %.4f below threshold %.4g", st.LabelFidelity, threshold),
		}
	}
	return kernelResolution{
		kernel:    "distilled",
		model:     m,
		fidelity:  st.LabelFidelity,
		rulesJSON: m.ExportJSON(),
	}
}
