package engine

import (
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/engine/store"
)

// countStages tallies the train and label spans of a trace.
func countStages(spans []StageTiming) (trains, labels int) {
	for _, ts := range spans {
		switch {
		case strings.HasPrefix(ts.Stage, "train/"):
			trains++
		case strings.HasPrefix(ts.Stage, "label/"):
			labels++
		}
	}
	return trains, labels
}

// TestCheckpointResumeAfterCrash is the failover/restart acceptance flow
// at the engine level: a job is executed partway (its checkpoint
// captured from the progress stream, as the dispatcher and the engine's
// store persistence do), the process "crashes" — simulated by planting
// the running record plus the checkpoint in a durable store — and the
// next engine must re-enqueue the job, resume it, and finish without
// re-running the variants the checkpoint already carries.
func TestCheckpointResumeAfterCrash(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(250, rand.New(rand.NewSource(21)))
	req := Request{Dataset: d, L: 800, Seed: 5, SD: []string{"prim", "bumping", "bi"}}
	if err := req.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}

	// Phase 1: run the job directly on a LocalExecutor and cancel as
	// soon as the first checkpoint (>= 1 finished variant) appears.
	exec := NewLocalExecutor(LocalExecutorOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var captured *Checkpoint
	_, execErr := exec.Execute(ctx, req, func(p Progress) {
		if cp := p.Checkpoint; cp != nil {
			mu.Lock()
			if captured == nil || cp.Seq > captured.Seq {
				captured = cp
			}
			mu.Unlock()
			if len(cp.Variants) >= 1 {
				cancel()
			}
		}
	})
	mu.Lock()
	cp := captured
	mu.Unlock()
	if cp == nil || len(cp.Variants) == 0 {
		t.Fatalf("no checkpoint captured before cancellation (err=%v)", execErr)
	}
	finished := 0
	for _, vr := range cp.Variants {
		if vr.Error == "" {
			finished++
		}
	}
	if finished == 0 {
		t.Fatalf("checkpoint carries no finished variants: %+v", cp.Variants)
	}

	// Phase 2: plant the crash footprint — a running record plus the
	// checkpoint — exactly what the engine persists while executing.
	fs := openFS(t, dir)
	reqJSON, _ := json.Marshal(req)
	rawCP, _ := json.Marshal(cp)
	now := time.Now()
	if err := fs.PutJob(store.Record{
		ID:          "job-000003",
		Status:      string(StatusRunning),
		SubmittedAt: now.Add(-time.Minute),
		StartedAt:   now.Add(-50 * time.Second),
		Request:     reqJSON,
	}); err != nil {
		t.Fatalf("planting running record: %v", err)
	}
	if err := fs.PutCheckpoint("job-000003", rawCP); err != nil {
		t.Fatalf("planting checkpoint: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	// Phase 3: recovery must resume, not orphan.
	e := newTestEngine(t, Options{Workers: 1, Store: openFS(t, dir)})
	defer e.Close()
	rec := e.Recovery()
	if rec.Resumed != 1 || rec.Reenqueued != 1 || rec.Orphaned != 0 {
		t.Fatalf("recovery stats = %+v, want 1 resumed / 1 reenqueued / 0 orphaned", rec)
	}
	snap := waitTerminal(t, e, "job-000003", 120*time.Second)
	if snap.Status != StatusDone {
		t.Fatalf("resumed job finished %s: %s", snap.Status, snap.Error)
	}
	res, err := e.Result("job-000003")
	if err != nil {
		t.Fatalf("result of resumed job: %v", err)
	}
	if len(res.Variants) != 3 {
		t.Fatalf("resumed job has %d variants, want 3", len(res.Variants))
	}
	resumed := 0
	for _, vr := range res.Variants {
		if vr.Resumed {
			resumed++
		}
		if vr.Error != "" {
			t.Fatalf("variant %s/%s failed after resume: %s", vr.Metamodel, vr.SD, vr.Error)
		}
	}
	if resumed != finished {
		t.Fatalf("%d variants marked resumed, want the checkpoint's %d finished ones", resumed, finished)
	}
	// The trace must be whole with no re-done work: the final trace is
	// the checkpoint's spans (concurrent sibling variants close their own
	// train/label spans, so the checkpoint may carry up to one per
	// variant) plus the re-run variants' discover spans — the resumed
	// execution must not add a single train or label span of its own.
	cpTrains, cpLabels := countStages(cp.Timings)
	trains, labels := countStages(snap.Timings)
	if trains != cpTrains || labels != cpLabels {
		t.Fatalf("resumed trace has %d train / %d label spans, want the checkpoint's %d / %d (no re-done work): %+v",
			trains, labels, cpTrains, cpLabels, snap.Timings)
	}
	discovers := 0
	for _, ts := range snap.Timings {
		if strings.HasPrefix(ts.Stage, "discover/") {
			discovers++
		}
	}
	if discovers != 3 {
		t.Fatalf("resumed trace has %d discover spans, want one per variant (3): %+v", discovers, snap.Timings)
	}

	// Terminal jobs shed their checkpoint.
	if raw, ok, _ := e.store.GetCheckpoint("job-000003"); ok {
		t.Fatalf("checkpoint survived job completion: %s", raw)
	}
}

// TestCheckpointRejectedOnDatasetMismatch plants a checkpoint whose
// DatasetHash does not match the request's dataset: the executor must
// discard it and run the job from scratch rather than trust stale
// variant results.
func TestCheckpointRejectedOnDatasetMismatch(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(250, rand.New(rand.NewSource(22)))
	req := Request{Dataset: d, L: 800, Seed: 5}
	reqJSON, _ := json.Marshal(req)

	fs := openFS(t, dir)
	now := time.Now()
	if err := fs.PutJob(store.Record{
		ID:          "job-000001",
		Status:      string(StatusRunning),
		SubmittedAt: now.Add(-time.Minute),
		StartedAt:   now.Add(-50 * time.Second),
		Request:     reqJSON,
	}); err != nil {
		t.Fatalf("planting running record: %v", err)
	}
	stale := &Checkpoint{
		Seq:         9,
		DatasetHash: "not-the-real-hash",
		Variants:    []VariantResult{{Metamodel: "rf", SD: "prim", Rule: "stale"}},
	}
	rawCP, _ := json.Marshal(stale)
	if err := fs.PutCheckpoint("job-000001", rawCP); err != nil {
		t.Fatalf("planting checkpoint: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	e := newTestEngine(t, Options{Workers: 1, Store: openFS(t, dir)})
	defer e.Close()
	if rec := e.Recovery(); rec.Resumed != 1 {
		t.Fatalf("recovery stats = %+v, want the job re-enqueued for resume", rec)
	}
	snap := waitTerminal(t, e, "job-000001", 120*time.Second)
	if snap.Status != StatusDone {
		t.Fatalf("job finished %s: %s", snap.Status, snap.Error)
	}
	res, err := e.Result("job-000001")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	for _, vr := range res.Variants {
		if vr.Resumed || vr.Rule == "stale" {
			t.Fatalf("mismatched checkpoint was trusted: %+v", vr)
		}
	}
}

// TestDrainLeavesQueuedJobsPending: during drain, running jobs get to
// finish (or are awaited) while dequeued-but-unstarted jobs stay
// pending for the next process.
func TestDrainLeavesQueuedJobsPending(t *testing.T) {
	st := store.NewMem()
	e := newTestEngine(t, Options{Workers: 1, Store: st})
	defer e.Close()

	d := testDataset(250, rand.New(rand.NewSource(23)))
	blocker, err := e.Submit(Request{Dataset: d, L: 2000000, Seed: 1})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if snap, _ := e.Job(blocker); snap.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := e.Submit(Request{Dataset: d, L: 800, Seed: 2})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	// With the blocker still running, a short drain cannot complete.
	if e.Drain(50 * time.Millisecond) {
		t.Fatalf("drain reported complete while a job was running")
	}
	// Unblock: cancel the running job; drain now completes, and the
	// queued job — dequeued by the now-free worker — must stay pending.
	e.Cancel(blocker)
	if !e.Drain(30 * time.Second) {
		t.Fatalf("drain never completed after the blocker was canceled")
	}
	time.Sleep(50 * time.Millisecond) // give the worker time to dequeue and (correctly) skip it
	if snap, ok := e.Job(queued); !ok || snap.Status != StatusPending {
		t.Fatalf("queued job during drain = %+v, want pending", snap)
	}
	recs, _ := st.List()
	for _, rec := range recs {
		if rec.ID == string(queued) && rec.Status != string(StatusPending) {
			t.Fatalf("stored record of queued job = %s, want pending", rec.Status)
		}
	}
}
