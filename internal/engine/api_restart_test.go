package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/engine/store"
)

// startServerOverDir boots an httptest server whose engine persists to
// the given store directory — one "redsserver process".
func startServerOverDir(t *testing.T, dir string, workers int) (*httptest.Server, *Engine) {
	t.Helper()
	fs, err := store.OpenFS(dir, store.FSOptions{})
	if err != nil {
		t.Fatalf("OpenFS(%s): %v", dir, err)
	}
	e, err := New(Options{Workers: workers, Store: fs})
	if err != nil {
		t.Fatalf("New over %s: %v", dir, err)
	}
	return httptest.NewServer(NewHandler(e)), e
}

// TestServerRestartOverStoreDir is the PR's acceptance test at the HTTP
// layer: a server restarted over the same -store.dir serves previously
// submitted done results via GET /v1/jobs/{id}/result and re-enqueues
// jobs that were pending at shutdown.
func TestServerRestartOverStoreDir(t *testing.T) {
	dir := t.TempDir()

	// --- process 1: finish one job, leave a second queued ---
	srv1, e1 := startServerOverDir(t, dir, 1)
	code, created := postJSON(t, srv1.URL+"/v1/jobs",
		`{"function":"morris","n":120,"l":1500,"seed":4}`)
	if code != http.StatusCreated {
		t.Fatalf("submit returned %d: %v", code, created)
	}
	doneID := created["id"].(string)

	var snap Snapshot
	deadline := time.Now().Add(120 * time.Second)
	for {
		getJSON(t, srv1.URL+"/v1/jobs/"+doneID, &snap)
		if snap.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %s", snap.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.Status != StatusDone {
		t.Fatalf("job finished %s: %s", snap.Status, snap.Error)
	}
	var res1 Result
	if code := getJSON(t, srv1.URL+"/v1/jobs/"+doneID+"/result", &res1); code != http.StatusOK {
		t.Fatalf("result before restart returned %d", code)
	}

	// Occupy the single worker, then queue a job that will still be
	// pending when the server goes down.
	_, blocker := postJSON(t, srv1.URL+"/v1/jobs",
		`{"function":"hart3","n":150,"l":3000000,"seed":1}`)
	blockerID := blocker["id"].(string)
	waitForStatus(t, srv1.URL, blockerID, StatusRunning)
	_, queued := postJSON(t, srv1.URL+"/v1/jobs",
		`{"function":"morris","n":100,"l":1200,"seed":9}`)
	queuedID := queued["id"].(string)

	srv1.Close()
	e1.Close() // graceful shutdown: blocker canceled, queued stays pending

	// --- process 2: same directory, fresh engine ---
	srv2, e2 := startServerOverDir(t, dir, 1)
	defer srv2.Close()
	defer e2.Close()

	var res2 Result
	if code := getJSON(t, srv2.URL+"/v1/jobs/"+doneID+"/result", &res2); code != http.StatusOK {
		t.Fatalf("result after restart returned %d", code)
	}
	if res2.Best.Rule != res1.Best.Rule || res2.DatasetHash != res1.DatasetHash {
		t.Fatalf("restart served a different result: %q vs %q", res1.Best.Rule, res2.Best.Rule)
	}

	getJSON(t, srv2.URL+"/v1/jobs/"+blockerID, &snap)
	if snap.Status != StatusCanceled {
		t.Fatalf("blocker after restart = %s, want canceled", snap.Status)
	}

	// The queued job was re-enqueued and runs to completion.
	deadline = time.Now().Add(120 * time.Second)
	for {
		getJSON(t, srv2.URL+"/v1/jobs/"+queuedID, &snap)
		if snap.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-enqueued job stuck at %s", snap.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.Status != StatusDone {
		t.Fatalf("re-enqueued job finished %s: %s", snap.Status, snap.Error)
	}

	var health map[string]any
	getJSON(t, srv2.URL+"/v1/healthz", &health)
	if health["jobs_recovered"].(float64) != 3 {
		t.Fatalf("healthz jobs_recovered = %v, want 3", health["jobs_recovered"])
	}
}

func waitForStatus(t *testing.T, baseURL, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var snap Snapshot
	for {
		getJSON(t, baseURL+"/v1/jobs/"+id, &snap)
		if snap.Status == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s, want %s", id, snap.Status, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestErrorEnvelope asserts every error shape under /v1 — handler
// errors, router 404s, and router 405s — uses the same
// {"error":{"code","message"}} envelope.
func TestErrorEnvelope(t *testing.T) {
	srv, _ := startTestServer(t)

	type envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}

	// Unknown job id → structured not_found, not a bare text 404.
	resp, err := http.Get(srv.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	var env envelope
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("unknown-job Content-Type = %q, want application/json", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("unknown-job body is not the envelope: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != "not_found" || env.Error.Message == "" {
		t.Fatalf("unknown job → %d %+v, want 404 not_found", resp.StatusCode, env)
	}

	// Unknown route → router 404, still the envelope.
	resp, err = http.Get(srv.URL + "/v1/no-such-route")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	env = envelope{}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("router 404 body is not the envelope: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != "not_found" {
		t.Fatalf("unknown route → %d %+v, want 404 not_found", resp.StatusCode, env)
	}

	// Wrong method on a known route → router 405, still the envelope.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/jobs", bytes.NewReader(nil))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT: %v", err)
	}
	env = envelope{}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("router 405 body is not the envelope: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || env.Error.Code != "method_not_allowed" {
		t.Fatalf("wrong method → %d %+v, want 405 method_not_allowed", resp.StatusCode, env)
	}

	// Bad request body → bad_request.
	code, body := postJSON(t, srv.URL+"/v1/jobs", `{"bogus":1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad body → %d, want 400", code)
	}
	errObj, ok := body["error"].(map[string]any)
	if !ok || errObj["code"] != "bad_request" {
		t.Fatalf("bad body envelope = %v, want code bad_request", body)
	}

	// Result of an unfinished job → 409 not_ready with the job status.
	_, created := postJSON(t, srv.URL+"/v1/jobs", fmt.Sprintf(`{"function":"hart3","n":150,"l":3000000,"seed":%d}`, 2))
	id := created["id"].(string)
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	var notReady map[string]any
	if code := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result", &notReady); code != http.StatusConflict {
		t.Fatalf("early result → %d, want 409", code)
	}
	errObj, ok = notReady["error"].(map[string]any)
	if !ok || errObj["code"] != "not_ready" || notReady["status"] == nil {
		t.Fatalf("early result envelope = %v, want not_ready + status", notReady)
	}
}
