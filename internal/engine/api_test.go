package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func startTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	e, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return srv, e
}

func postJSON(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, into); err != nil {
		t.Fatalf("decoding GET %s: %v\n%s", url, err, raw)
	}
	return resp.StatusCode
}

// TestServerEndToEnd exercises the acceptance flow: submit a morris job,
// poll to completion, fetch a valid scenario with precision/recall.
func TestServerEndToEnd(t *testing.T) {
	srv, _ := startTestServer(t)

	code, created := postJSON(t, srv.URL+"/v1/jobs",
		`{"function":"morris","n":150,"l":2000,"seed":4}`)
	if code != http.StatusCreated {
		t.Fatalf("submit returned %d: %v", code, created)
	}
	id, _ := created["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", created)
	}

	deadline := time.Now().Add(120 * time.Second)
	var snap Snapshot
	for {
		if code := getJSON(t, srv.URL+"/v1/jobs/"+id, &snap); code != http.StatusOK {
			t.Fatalf("status poll returned %d", code)
		}
		if snap.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s (stage %s, labels %d/%d)", snap.Status, snap.Stage, snap.LabelDone, snap.LabelTotal)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.Status != StatusDone {
		t.Fatalf("job finished %s: %s", snap.Status, snap.Error)
	}

	var res Result
	if code := getJSON(t, srv.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
		t.Fatalf("result returned %d", code)
	}
	if res.Best.Box == nil || res.Best.Rule == "" {
		t.Fatalf("result has no scenario: %+v", res.Best)
	}
	if res.Best.Precision < 0 || res.Best.Precision > 1 || res.Best.Recall < 0 || res.Best.Recall > 1 {
		t.Fatalf("precision/recall out of range: %v/%v", res.Best.Precision, res.Best.Recall)
	}
	if res.Best.Precision == 0 && res.Best.Recall == 0 {
		t.Fatalf("degenerate scenario with zero precision and recall")
	}
}

func TestServerInlineCSV(t *testing.T) {
	srv, _ := startTestServer(t)

	var csv bytes.Buffer
	csv.WriteString("a0,a1,y\n")
	rng := uint64(12345)
	next := func() float64 { // tiny deterministic LCG, avoids rand here
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / float64(1<<53)
	}
	for i := 0; i < 200; i++ {
		x0, x1 := next(), next()
		y := 0
		if x0 < 0.5 && x1 < 0.5 {
			y = 1
		}
		fmt.Fprintf(&csv, "%.6f,%.6f,%d\n", x0, x1, y)
	}
	body, _ := json.Marshal(map[string]any{"csv": csv.String(), "l": 1500, "seed": 2})
	code, created := postJSON(t, srv.URL+"/v1/jobs", string(body))
	if code != http.StatusCreated {
		t.Fatalf("submit returned %d: %v", code, created)
	}
	id := created["id"].(string)

	deadline := time.Now().Add(60 * time.Second)
	var snap Snapshot
	for {
		getJSON(t, srv.URL+"/v1/jobs/"+id, &snap)
		if snap.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("csv job stuck at %s", snap.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.Status != StatusDone {
		t.Fatalf("csv job finished %s: %s", snap.Status, snap.Error)
	}
	var res Result
	getJSON(t, srv.URL+"/v1/jobs/"+id+"/result", &res)
	if res.Best.Rule == "" {
		t.Fatalf("csv job produced no rule")
	}
}

func TestServerErrorsAndRegistry(t *testing.T) {
	srv, _ := startTestServer(t)

	// Unknown function → 400.
	if code, _ := postJSON(t, srv.URL+"/v1/jobs", `{"function":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("unknown function returned %d, want 400", code)
	}
	// Unknown field → 400.
	if code, _ := postJSON(t, srv.URL+"/v1/jobs", `{"bogus":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field returned %d, want 400", code)
	}
	// Unknown job → 404.
	var any1 map[string]any
	if code := getJSON(t, srv.URL+"/v1/jobs/job-999999", &any1); code != http.StatusNotFound {
		t.Errorf("unknown job returned %d, want 404", code)
	}
	// Result before submission → 404; result of a pending/fresh job → 409
	// is covered implicitly by the e2e test's polling.

	var funcsResp struct {
		Functions []FunctionInfo `json:"functions"`
	}
	if code := getJSON(t, srv.URL+"/v1/functions", &funcsResp); code != http.StatusOK {
		t.Fatalf("functions returned %d", code)
	}
	found := false
	for _, f := range funcsResp.Functions {
		if f.Name == "morris" {
			found = true
			if f.Dim != 20 {
				t.Errorf("morris dim = %d, want 20", f.Dim)
			}
		}
	}
	if !found {
		t.Errorf("functions listing misses morris")
	}

	var health map[string]any
	if code := getJSON(t, srv.URL+"/v1/healthz", &health); code != http.StatusOK || health["ok"] != true {
		t.Errorf("healthz = %d %v", code, health)
	}
}

func TestServerCancel(t *testing.T) {
	srv, e := startTestServer(t)
	_ = e

	code, created := postJSON(t, srv.URL+"/v1/jobs",
		`{"function":"hart3","n":200,"l":3000000,"seed":1}`)
	if code != http.StatusCreated {
		t.Fatalf("submit returned %d", code)
	}
	id := created["id"].(string)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel returned %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	var snap Snapshot
	for {
		getJSON(t, srv.URL+"/v1/jobs/"+id, &snap)
		if snap.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled job stuck at %s", snap.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", snap.Status)
	}
}
