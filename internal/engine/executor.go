package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/reds-go/reds/internal/telemetry"
)

// Progress is a point-in-time view of a request's execution: the most
// recently entered pipeline stage plus the labeling and variant
// counters. Executors report it through the Execute callback; the
// engine folds it into job snapshots, and the internal execution API
// serves it to polling gateways.
type Progress struct {
	// Stage is the most recently entered pipeline stage across the
	// request's variants ("simulate", "train", "sample", "label",
	// "discover").
	Stage string `json:"stage,omitempty"`
	// LabelDone / LabelTotal aggregate pseudo-labeling progress over all
	// variants.
	LabelDone  int `json:"label_done"`
	LabelTotal int `json:"label_total"`
	// VariantsDone / VariantsTotal count finished variant sub-tasks.
	VariantsDone  int `json:"variants_done"`
	VariantsTotal int `json:"variants_total"`
	// Timings lists the pipeline spans closed so far, in completion
	// order: "simulate", then per variant "train/<mm>", "sample/<mm>",
	// "label/<mm>" and "discover/<mm>/<sd>". The slice is append-only
	// and each published value is an immutable snapshot — safe to hand
	// to concurrent readers. Because Progress travels through the
	// internal execution API, a worker's spans surface unchanged in the
	// gateway job's timings.
	Timings []StageTiming `json:"timings,omitempty"`
	// Checkpoint, when non-nil, is the newest resumable snapshot of the
	// execution (see Checkpoint). It rides the in-process progress
	// callback only — the field is excluded from JSON because the
	// internal execution API carries checkpoints out of band (a seq
	// number on the status poll plus a separate fetch), keeping the hot
	// polling path small.
	Checkpoint *Checkpoint `json:"-"`
}

// StageTiming is one closed span of a job's trace: a pipeline stage
// (optionally qualified by variant, like "discover/rf/prim") and its
// wall-clock duration. The engine prepends a "queue_wait" span for the
// time between submission and execution start.
type StageTiming struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

// sameAs reports whether two progress snapshots are observably equal.
// Spans are append-only, so comparing lengths is exact; this replaces
// struct equality, which the Timings slice rules out.
func (p Progress) sameAs(q Progress) bool {
	return p.Stage == q.Stage &&
		p.LabelDone == q.LabelDone && p.LabelTotal == q.LabelTotal &&
		p.VariantsDone == q.VariantsDone && p.VariantsTotal == q.VariantsTotal &&
		len(p.Timings) == len(q.Timings) &&
		p.checkpointSeq() == q.checkpointSeq()
}

// checkpointSeq is the sequence number of the attached checkpoint (0
// when none), so sameAs treats a new snapshot as observable progress.
func (p Progress) checkpointSeq() uint64 {
	if p.Checkpoint == nil {
		return 0
	}
	return p.Checkpoint.Seq
}

// Executor is the execution layer of the engine: it runs one discovery
// request end to end and returns its result. The orchestration layer
// (Engine) owns everything around that call — the queue, the job
// lifecycle, persistence, TTL GC — and stays identical whether requests
// execute in-process (LocalExecutor), on a remote worker
// (RemoteExecutor), or across a consistent-hash cluster
// (internal/cluster.Dispatcher).
type Executor interface {
	// Execute runs the request to completion under ctx. onProgress, when
	// non-nil, receives monotone progress snapshots; it must be fast and
	// safe for concurrent use (executors may report from several
	// goroutines, but calls for one execution are serialized).
	// Cancelling ctx stops the execution at its next cancellation point
	// and returns ctx.Err().
	Execute(ctx context.Context, req Request, onProgress func(Progress)) (*Result, error)
}

// ErrUnavailable marks execution errors caused by the executing worker
// being unreachable or having lost the execution (crash, restart,
// network partition) — as opposed to the request itself failing. A
// dispatcher may safely re-route an execution that failed with
// errors.Is(err, ErrUnavailable) to another worker; any other error is
// a verdict about the request and must not be retried elsewhere.
var ErrUnavailable = errors.New("worker unavailable")

// ErrDeadlineExceeded marks executions that ran out of their request's
// wall-clock budget (Request.DeadlineSeconds). It is deliberately NOT
// ErrUnavailable: the job itself timed out, so a dispatcher must fail
// it rather than re-route it to burn another worker's time. The engine
// records such jobs as failed (not canceled) with the deadline reason.
var ErrDeadlineExceeded = errors.New("job deadline exceeded")

// ShardKey returns the consistent-hash routing key of the request: the
// SHA-256 content hash of the training data the request will run on.
// Requests over the same data map to the same key — and therefore to
// the same worker under consistent-hash routing — which keeps that
// worker's metamodel cache hot (repeated metamodel training over one
// dataset dominates REDS workloads). Inline datasets hash their
// content; function requests hash the tuple that determines the
// simulated training set (function, n, sampler, seed), with the
// engine's defaults applied so equivalent requests share a key.
func (r Request) ShardKey() string {
	if r.Dataset != nil {
		return r.Dataset.Hash()
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("fn=%s|n=%d|sampler=%s|seed=%d",
		r.Function, r.effectiveN(), r.effectiveSampler(), r.effectiveSeed())))
	return hex.EncodeToString(sum[:])
}

// The effective* accessors are the single home of the request defaults,
// shared by execution (run.go) and routing (ShardKey): if a default
// drifted between the two, equivalent requests would silently hash to
// different shard keys than the data they train on, defeating the
// cache-affinity routing.

// effectiveSeed is the seed the pipeline actually runs with.
func (r Request) effectiveSeed() int64 {
	if r.Seed == 0 {
		return 1
	}
	return r.Seed
}

// effectiveN is the number of simulations drawn from a function source.
func (r Request) effectiveN() int {
	if r.N == 0 {
		return 400
	}
	return r.N
}

// effectiveL is the pseudo-label sample size.
func (r Request) effectiveL() int {
	if r.L == 0 {
		return 10000
	}
	return r.L
}

// effectiveSampler is the sampler name with the default applied (the
// empty string already resolves to LHS in samplerByName; this exists so
// ShardKey hashes the same name the pipeline uses).
func (r Request) effectiveSampler() string {
	if r.Sampler == "" {
		return "lhs"
	}
	return r.Sampler
}

// effectiveLabelKernel is the requested labeling kernel with the
// default applied.
func (r Request) effectiveLabelKernel() string {
	if r.LabelKernel == "" {
		return "full"
	}
	return r.LabelKernel
}

// effectiveDistillFidelity is the fidelity threshold a distilled kernel
// must clear, with the executor default applied.
func (r Request) effectiveDistillFidelity(def float64) float64 {
	if r.DistillFidelity > 0 {
		return r.DistillFidelity
	}
	return def
}

// effectiveTrainMode is the requested training mode with the executor
// default applied.
func (r Request) effectiveTrainMode(def string) string {
	if r.TrainMode != "" {
		return r.TrainMode
	}
	if def != "" {
		return def
	}
	return "exact"
}

// effectiveTrainBins is the binned training bin budget with the
// executor default applied (0 = the trainers' own default).
func (r Request) effectiveTrainBins(def int) int {
	if r.TrainBins > 0 {
		return r.TrainBins
	}
	return def
}

// effectiveTrainQuality is the holdout accuracy threshold the binned
// gate model must clear, with the executor default applied.
func (r Request) effectiveTrainQuality(def float64) float64 {
	if r.TrainQuality > 0 {
		return r.TrainQuality
	}
	return def
}

// LocalExecutorOptions configure the in-process execution layer.
type LocalExecutorOptions struct {
	// CacheBytes bounds the metamodel LRU cache by the approximate
	// in-memory size of the cached models (default 256 MiB). A single
	// model larger than the budget is still cached, alone.
	CacheBytes int64
	// CacheTTL expires cached models this long after they were trained
	// (0 = never). Expired entries count as misses and as evictions.
	CacheTTL time.Duration
	// LabelCacheBytes bounds the pseudo-label dataset cache by the
	// approximate in-memory size of the cached datasets (default 256
	// MiB — at the default L=10^4 that is hundreds of labelings; at
	// L=10^5, a couple dozen).
	LabelCacheBytes int64
	// LabelCacheTTL expires cached pseudo-labeled datasets this long
	// after labeling (0 = never).
	LabelCacheTTL time.Duration
	// CheckpointBytes bounds the total size of pseudo-labeled datasets
	// inlined into one execution's checkpoints (default 32 MiB). Within
	// the budget a cold replacement worker resumes without retraining or
	// relabeling; beyond it, checkpoints carry only the cache keys.
	CheckpointBytes int64
	// RulesetCacheBytes bounds the distilled rule-set cache (default 64
	// MiB — distilled models are small; this is hundreds of entries).
	RulesetCacheBytes int64
	// RulesetCacheTTL expires cached distilled models this long after
	// distillation (0 = never).
	RulesetCacheTTL time.Duration
	// DistillFidelity is the default holdout label agreement a distilled
	// kernel must reach before it labels a job; below it the executor
	// falls back to the full ensemble (default 0.99). Requests can raise
	// or lower it per job (Request.DistillFidelity).
	DistillFidelity float64
	// TrainMode is the default training mode for tree-ensemble
	// metamodels: "exact" (the default) or "binned" (the histogram fast
	// path). Requests override it per job (Request.TrainMode).
	TrainMode string
	// TrainBins is the default per-feature bin budget for binned
	// training (0 = the trainers' default, 64).
	TrainBins int
	// TrainQuality is the default holdout accuracy the binned gate model
	// must reach before the fast path trains a variant (default 0.55 —
	// just above coin-flipping; the gate catches pathologies, the
	// differential test suite owns the fine-grained parity guarantees).
	TrainQuality float64
	// Metrics is the registry the executor's instruments live in: the
	// per-stage latency histograms and both caches' counters. nil gets
	// a private registry, which keeps instruments working (and tests
	// hermetic) without exposition.
	Metrics *telemetry.Registry
}

func (o LocalExecutorOptions) withDefaults() LocalExecutorOptions {
	if o.CacheBytes <= 0 {
		o.CacheBytes = 256 << 20
	}
	if o.LabelCacheBytes <= 0 {
		o.LabelCacheBytes = 256 << 20
	}
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 32 << 20
	}
	if o.RulesetCacheBytes <= 0 {
		o.RulesetCacheBytes = 64 << 20
	}
	if o.DistillFidelity <= 0 {
		o.DistillFidelity = 0.99
	}
	if o.TrainQuality <= 0 {
		o.TrainQuality = 0.55
	}
	return o
}

// LocalExecutor runs requests in-process: metamodel training (through
// the size-weighted LRU cache), parallel pseudo-labeling (through the
// batch-inference fast path and the pseudo-label dataset cache) and
// the SD stage all happen on the calling process's worker pools. It is
// the execution layer the engine used before the orchestration/
// execution split, now behind the Executor seam.
type LocalExecutor struct {
	cache  *modelCache
	labels *labelCache
	// rulesets caches distilled rule sets keyed off the parent model's
	// cache key (plus the distillation parameters), so repeat jobs and
	// sibling variants distill once.
	rulesets *rulesetCache
	// distillFidelity is the default fallback threshold for distilled
	// labeling kernels.
	distillFidelity float64
	// Train-mode defaults (LocalExecutorOptions.Train*) and the
	// per-(family, data, knobs) resolution memo, so sibling variants and
	// repeat jobs run the binned quality gate once.
	trainMode    string
	trainBins    int
	trainQuality float64
	trainModeMu  sync.Mutex
	trainModes   map[string]trainResolution
	// checkpointBytes bounds the inline labeled data per checkpoint.
	checkpointBytes int64
	// stageSeconds is the per-stage latency histogram
	// (reds_exec_stage_seconds{stage,metamodel,sd}); children are
	// resolved per variant at execution start, off the hot path.
	stageSeconds *telemetry.HistogramVec
	// Checkpoint counters: executions resumed from a forwarded
	// checkpoint, checkpoints rejected (dataset-hash mismatch), and
	// finished variants reused instead of re-run.
	mCheckpointResumes         *telemetry.Counter
	mCheckpointRejected        *telemetry.Counter
	mCheckpointVariantsSkipped *telemetry.Counter
	// Distillation instruments: distillation latency, the size and
	// holdout fidelity of each produced rule set, and the number of
	// variant resolutions that fell back to the full ensemble.
	mDistillSeconds  *telemetry.Histogram
	mDistillRules    *telemetry.Histogram
	mDistillFidelity *telemetry.Histogram
	mDistillFallback *telemetry.Counter
	// Training instruments: metamodel training latency by family and
	// mode (cache misses only), and the number of family resolutions
	// that fell back from binned to exact training.
	mTrainSeconds  *telemetry.HistogramVec
	mTrainFallback *telemetry.Counter
}

// NewLocalExecutor returns an in-process executor with its own
// metamodel and pseudo-label caches.
func NewLocalExecutor(opts LocalExecutorOptions) *LocalExecutor {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &LocalExecutor{
		cache:           newModelCache(opts.CacheBytes, opts.CacheTTL, reg),
		labels:          newLabelCache(opts.LabelCacheBytes, opts.LabelCacheTTL, reg),
		rulesets:        newRulesetCache(opts.RulesetCacheBytes, opts.RulesetCacheTTL, reg),
		distillFidelity: opts.DistillFidelity,
		trainMode:       opts.TrainMode,
		trainBins:       opts.TrainBins,
		trainQuality:    opts.TrainQuality,
		trainModes:      make(map[string]trainResolution),
		checkpointBytes: opts.CheckpointBytes,
		stageSeconds: reg.HistogramVec("reds_exec_stage_seconds",
			"Pipeline stage latency, labeled by stage (simulate, train, sample, label, discover) and variant.",
			telemetry.ExponentialBuckets(0.001, 2, 16), "stage", "metamodel", "sd"),
		mCheckpointResumes: reg.Counter("reds_engine_checkpoint_resumes_total",
			"Executions resumed from a forwarded checkpoint instead of starting fresh."),
		mCheckpointRejected: reg.Counter("reds_engine_checkpoint_rejected_total",
			"Forwarded checkpoints ignored because their dataset hash did not match the resolved training data."),
		mCheckpointVariantsSkipped: reg.Counter("reds_engine_checkpoint_variants_skipped_total",
			"Finished variants reused from a checkpoint instead of re-running."),
		mDistillSeconds: reg.Histogram("reds_ruleset_distill_seconds",
			"Latency of rule-set distillations (cache misses only).",
			telemetry.ExponentialBuckets(0.001, 2, 14)),
		mDistillRules: reg.Histogram("reds_ruleset_rules",
			"Rules per distilled rule set, after dedup.",
			telemetry.ExponentialBuckets(8, 2, 14)),
		mDistillFidelity: reg.Histogram("reds_ruleset_fidelity",
			"Holdout label agreement of distilled rule sets with their parent ensemble.",
			[]float64{0.5, 0.8, 0.9, 0.95, 0.98, 0.99, 0.995, 0.999, 1}),
		mDistillFallback: reg.Counter("reds_ruleset_fallbacks_total",
			"Variant label-kernel resolutions that requested the distilled kernel but fell back to the full ensemble (unsupported family or fidelity below threshold)."),
		mTrainSeconds: reg.HistogramVec("reds_train_seconds",
			"Metamodel training latency (cache misses only), labeled by family and training mode (exact, binned).",
			telemetry.ExponentialBuckets(0.001, 2, 16), "metamodel", "mode"),
		mTrainFallback: reg.Counter("reds_train_fallbacks_total",
			"Metamodel family resolutions that requested binned training but fell back to exact (unsupported family or gate quality below threshold)."),
	}
}

// CacheStats returns cumulative metamodel cache counters.
func (x *LocalExecutor) CacheStats() CacheStats { return x.cache.Stats() }

// LabelCacheStats returns cumulative pseudo-label dataset cache
// counters.
func (x *LocalExecutor) LabelCacheStats() CacheStats { return x.labels.Stats() }

// RulesetCacheStats returns cumulative distilled rule-set cache
// counters.
func (x *LocalExecutor) RulesetCacheStats() CacheStats { return x.rulesets.Stats() }

// RulesetFallbacks returns the cumulative count of distilled-kernel
// resolutions that fell back to the full ensemble.
func (x *LocalExecutor) RulesetFallbacks() int64 { return x.mDistillFallback.Value() }

// TrainFallbacks returns the cumulative count of metamodel family
// resolutions that requested binned training but fell back to exact.
func (x *LocalExecutor) TrainFallbacks() int64 { return x.mTrainFallback.Value() }

// progressSink aggregates concurrent progress updates for one execution
// and forwards each new snapshot to the callback. Updates mutate the
// shared Progress under one mutex and the callback runs while it is
// held, so snapshots reach the callback in a consistent, monotone
// order; callbacks must therefore be fast and must not re-enter the
// executor.
type progressSink struct {
	mu sync.Mutex
	p  Progress
	// spans is the sink's own append-only trace; p.Timings always
	// points at an immutable copy of it, so callbacks (and whoever
	// they hand the Progress to) can read the slice without holding
	// the sink's lock.
	spans []StageTiming
	fn    func(Progress)
}

func newProgressSink(fn func(Progress)) *progressSink {
	return &progressSink{fn: fn}
}

func (s *progressSink) update(mutate func(*Progress)) {
	s.mu.Lock()
	mutate(&s.p)
	if s.fn != nil {
		s.fn(s.p)
	}
	s.mu.Unlock()
}

// addSpan appends a closed span to the trace and publishes the new
// snapshot. Spans close at stage granularity (a handful per variant),
// so the copy here is rare and small — the per-point labeling hot
// path goes through update, which never touches Timings.
func (s *progressSink) addSpan(t StageTiming) {
	s.mu.Lock()
	s.spans = append(s.spans, t)
	cp := make([]StageTiming, len(s.spans))
	copy(cp, s.spans)
	s.p.Timings = cp
	if s.fn != nil {
		s.fn(s.p)
	}
	s.mu.Unlock()
}

// preload seeds the trace with spans closed by an earlier execution
// (from a checkpoint) without publishing: the resumed execution's
// reports then carry the full job trace — old spans plus its own —
// with no duplicates for the stages it skips. Call before any update.
func (s *progressSink) preload(spans []StageTiming) {
	s.mu.Lock()
	s.spans = append([]StageTiming(nil), spans...)
	cp := make([]StageTiming, len(s.spans))
	copy(cp, s.spans)
	s.p.Timings = cp
	s.mu.Unlock()
}

// setCheckpoint attaches a new resumable snapshot to the progress and
// publishes it. The snapshot's trace is stamped here, under the sink's
// lock, so it is exactly the trace of the progress it travels with.
func (s *progressSink) setCheckpoint(cp *Checkpoint) {
	s.mu.Lock()
	cp.Timings = s.p.Timings
	s.p.Checkpoint = cp
	if s.fn != nil {
		s.fn(s.p)
	}
	s.mu.Unlock()
}
