package engine

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/metamodel"
)

// testDataset builds a small labeled set with a crisp corner scenario:
// y = 1 iff x0 < 0.4 and x1 < 0.4.
func testDataset(n int, rng *rand.Rand) *dataset.Dataset {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if x[i][0] < 0.4 && x[i][1] < 0.4 {
			y[i] = 1
		}
	}
	return dataset.MustNew(x, y)
}

// newTestEngine is New with the error path folded into the test.
func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func waitTerminal(t *testing.T, e *Engine, id JobID, timeout time.Duration) Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		snap, ok := e.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if snap.Status.Terminal() {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, snap.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobLifecycle(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(1)))
	id, err := e.Submit(Request{Dataset: d, L: 3000, Seed: 7})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap := waitTerminal(t, e, id, 60*time.Second)
	if snap.Status != StatusDone {
		t.Fatalf("status = %s (err %q), want done", snap.Status, snap.Error)
	}
	if snap.StartedAt == nil || snap.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", snap)
	}
	if snap.LabelDone != snap.LabelTotal || snap.LabelTotal != 3000 {
		t.Fatalf("label progress %d/%d, want 3000/3000", snap.LabelDone, snap.LabelTotal)
	}
	if snap.VariantsDone != 1 || snap.VariantsTotal != 1 {
		t.Fatalf("variants %d/%d, want 1/1", snap.VariantsDone, snap.VariantsTotal)
	}
	if snap.Request.Dataset != nil {
		t.Errorf("snapshot echoes the full inline dataset")
	}
	if snap.DatasetN != 300 || snap.DatasetM != 3 {
		t.Errorf("dataset summary = %dx%d, want 300x3", snap.DatasetN, snap.DatasetM)
	}

	res, err := e.Result(id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.Best.Box == nil || res.Best.Rule == "" {
		t.Fatalf("missing best box/rule: %+v", res.Best)
	}
	if res.Best.Precision < 0.5 {
		t.Errorf("precision = %v, want a crisp corner scenario found", res.Best.Precision)
	}
	if res.Best.Recall <= 0 || res.Best.Recall > 1 {
		t.Errorf("recall = %v out of range", res.Best.Recall)
	}
	if res.DatasetHash != d.Hash() {
		t.Errorf("dataset hash mismatch")
	}
}

func TestMultiVariantRanking(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	defer e.Close()

	d := testDataset(250, rand.New(rand.NewSource(2)))
	id, err := e.Submit(Request{
		Dataset:    d,
		L:          1500,
		Metamodels: []string{"rf", "xgb"},
		SD:         []string{"prim", "bi"},
		Seed:       3,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap := waitTerminal(t, e, id, 120*time.Second)
	if snap.Status != StatusDone {
		t.Fatalf("status = %s (err %q), want done", snap.Status, snap.Error)
	}
	res, err := e.Result(id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("got %d variants, want 4", len(res.Variants))
	}
	first := res.Variants[0]
	if res.Best.Rule != first.Rule || res.Best.Metamodel != first.Metamodel || res.Best.SD != first.SD {
		t.Errorf("best is not the first ranked variant")
	}
	for i := 1; i < len(res.Variants); i++ {
		a, b := res.Variants[i-1], res.Variants[i]
		if a.Error == "" && b.Error == "" && a.WRAcc < b.WRAcc {
			t.Errorf("ranking violated at %d: %v < %v", i, a.WRAcc, b.WRAcc)
		}
	}
	// Each metamodel family trains once and is shared by its SD
	// variants: 2 families × 2 SD algorithms → 2 misses, 2 hits.
	cs := e.CacheStats()
	if cs.Misses != 2 || cs.Hits != 2 {
		t.Errorf("cache stats = %d hits / %d misses, want 2/2 (family-shared training)", cs.Hits, cs.Misses)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(3)))
	// Occupy the single worker, then cancel a job stuck behind it.
	blocker, err := e.Submit(Request{Dataset: d, L: 400000, Seed: 1})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	queued, err := e.Submit(Request{Dataset: d, L: 1000, Seed: 2})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	if !e.Cancel(queued) {
		t.Fatalf("cancel of queued job reported false")
	}
	snap, _ := e.Job(queued)
	if snap.Status != StatusCanceled {
		t.Fatalf("queued job status = %s, want canceled", snap.Status)
	}
	if _, err := e.Result(queued); err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("result of canceled job: err = %v, want canceled error", err)
	}
	e.Cancel(blocker)
	waitTerminal(t, e, blocker, 60*time.Second)
}

func TestCancelRunningJob(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(4)))
	// A huge pseudo-label sample keeps the labeling stage busy long
	// enough to cancel mid-flight.
	id, err := e.Submit(Request{Dataset: d, L: 2000000, Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		snap, _ := e.Job(id)
		if snap.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (status %s)", snap.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !e.Cancel(id) {
		t.Fatalf("cancel reported false for a running job")
	}
	snap := waitTerminal(t, e, id, 60*time.Second)
	if snap.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", snap.Status)
	}
}

func TestMetamodelCacheHit(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	defer e.Close()

	d := testDataset(250, rand.New(rand.NewSource(5)))
	req := Request{Dataset: d, L: 1000, Seed: 9}

	first, err := e.Submit(req)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if snap := waitTerminal(t, e, first, 60*time.Second); snap.Status != StatusDone {
		t.Fatalf("job 1: %s (%s)", snap.Status, snap.Error)
	}
	res1, _ := e.Result(first)
	if res1.Best.CacheHit {
		t.Fatalf("first run reported a cache hit")
	}

	second, err := e.Submit(req)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if snap := waitTerminal(t, e, second, 60*time.Second); snap.Status != StatusDone {
		t.Fatalf("job 2: %s (%s)", snap.Status, snap.Error)
	}
	res2, _ := e.Result(second)
	if !res2.Best.CacheHit {
		t.Fatalf("second identical run missed the cache")
	}
	if res1.Best.Rule != res2.Best.Rule {
		t.Errorf("cached rerun changed the scenario: %q vs %q", res1.Best.Rule, res2.Best.Rule)
	}
	cs := e.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/1", cs.Hits, cs.Misses)
	}

	// A different seed must not share the cache entry.
	req.Seed = 10
	third, err := e.Submit(req)
	if err != nil {
		t.Fatalf("submit 3: %v", err)
	}
	if snap := waitTerminal(t, e, third, 60*time.Second); snap.Status != StatusDone {
		t.Fatalf("job 3: %s (%s)", snap.Status, snap.Error)
	}
	res3, _ := e.Result(third)
	if res3.Best.CacheHit {
		t.Errorf("different seed hit the cache")
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	defer e.Close()

	cases := []Request{
		{}, // no data source
		{Function: "no-such-function"},
		{Function: "morris", Dataset: testDataset(10, rand.New(rand.NewSource(1)))},
		{Function: "morris", Metamodels: []string{"bogus"}},
		{Function: "morris", SD: []string{"bogus"}},
		{Function: "morris", Sampler: "bogus"},
		{Function: "morris", N: -1},
		{Dataset: &dataset.Dataset{}},
		{Dataset: dataset.MustNew([][]float64{{math.NaN(), 1}}, []float64{1})},
		{Dataset: dataset.MustNew([][]float64{{0, 1}}, []float64{math.Inf(1)})},
	}
	for i, req := range cases {
		if _, err := e.Submit(req); err == nil {
			t.Errorf("case %d: submit accepted invalid request %+v", i, req)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, QueueSize: 1})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(6)))
	slow := Request{Dataset: d, L: 400000, Seed: 1}
	// First job occupies the worker (possibly after a brief queue stay),
	// so keep submitting until the bounded queue rejects one.
	var sawFull bool
	var ids []JobID
	for i := 0; i < 4; i++ {
		id, err := e.Submit(slow)
		if err != nil {
			if !strings.Contains(err.Error(), "queue full") {
				t.Fatalf("unexpected submit error: %v", err)
			}
			sawFull = true
			break
		}
		ids = append(ids, id)
	}
	if !sawFull {
		t.Fatalf("bounded queue never rejected a submission")
	}
	for _, id := range ids {
		e.Cancel(id)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Budget fits two mock models (1 MiB default weight each).
	c := newModelCache(2<<20, 0, nil)
	for _, key := range []string{"a", "b", "c", "a"} {
		c.getOrTrain(key, func() (metamodel.Model, error) { return mockModel{}, nil })
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	// "b" was evicted by "c"; "a" was re-trained after eviction.
	cs := c.Stats()
	if cs.Hits != 0 || cs.Misses != 4 {
		t.Fatalf("stats = %d/%d, want 0 hits / 4 misses", cs.Hits, cs.Misses)
	}
	if cs.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2 (b then the stale a)", cs.Evictions)
	}
	if cs.Bytes != 2<<20 || cs.Entries != 2 {
		t.Fatalf("contents = %d entries / %d bytes, want 2 / %d", cs.Entries, cs.Bytes, 2<<20)
	}
}

type mockModel struct{}

func (mockModel) PredictProb([]float64) float64  { return 0 }
func (mockModel) PredictLabel([]float64) float64 { return 0 }

// sizedModel reports an explicit approximate size.
type sizedModel struct {
	mockModel
	size int64
}

func (m sizedModel) ApproxMemoryBytes() int64 { return m.size }

func TestCacheSizeWeightedEviction(t *testing.T) {
	c := newModelCache(100, 0, nil)
	add := func(key string, size int64) {
		c.getOrTrain(key, func() (metamodel.Model, error) { return sizedModel{size: size}, nil })
	}
	add("small-1", 40)
	add("small-2", 40)
	if cs := c.Stats(); cs.Entries != 2 || cs.Bytes != 80 {
		t.Fatalf("contents = %+v, want 2 entries / 80 bytes", cs)
	}
	// A 90-byte model displaces both small ones: eviction is by weight,
	// not count.
	add("big", 90)
	cs := c.Stats()
	if cs.Entries != 1 || cs.Bytes != 90 || cs.Evictions != 2 {
		t.Fatalf("after big insert: %+v, want 1 entry / 90 bytes / 2 evictions", cs)
	}
	if _, hit, _ := c.getOrTrain("big", nil); !hit {
		t.Fatalf("big model was evicted by its own insert")
	}
	// An oversized model is cached alone rather than thrashing.
	add("huge", 1000)
	if cs := c.Stats(); cs.Entries != 1 || cs.Bytes != 1000 {
		t.Fatalf("oversized model not cached alone: %+v", cs)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := newModelCache(1<<20, time.Minute, nil)
	now := time.Unix(1000, 0)
	c.c.now = func() time.Time { return now }

	c.getOrTrain("k", func() (metamodel.Model, error) { return sizedModel{size: 10}, nil })
	if _, hit, _ := c.getOrTrain("k", nil); !hit {
		t.Fatalf("fresh entry missed")
	}
	now = now.Add(61 * time.Second)
	trained := false
	c.getOrTrain("k", func() (metamodel.Model, error) {
		trained = true
		return sizedModel{size: 10}, nil
	})
	if !trained {
		t.Fatalf("expired entry served from cache")
	}
	cs := c.Stats()
	if cs.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (TTL expiry)", cs.Evictions)
	}
	if cs.Hits != 1 || cs.Misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 1/2", cs.Hits, cs.Misses)
	}
}
