//go:build !race

package engine

// raceDetectorSlowdown scales wall-clock assertion windows in tests that
// pin real-time behavior (e.g. "a deadline'd job settles within 5s"). The
// race detector multiplies execution cost by roughly 5-10x, so timing
// acceptance tests keep their tight window in normal builds and widen it
// only under -race.
const raceDetectorSlowdown = 1
