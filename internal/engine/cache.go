package engine

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/ruleset"
	"github.com/reds-go/reds/internal/telemetry"
)

// CacheStats are cumulative counters of one byte-weighted cache (the
// metamodel cache and the pseudo-label cache each report their own),
// exposed on /v1/healthz.
type CacheStats struct {
	// Hits and Misses count lookups. A caller that waited on another's
	// in-flight computation counts as a hit (it did not compute); an
	// entry past its TTL counts as a miss.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by the byte budget or expired by
	// the TTL.
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe the current contents (Bytes is the sum
	// of the entries' approximate sizes).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// byteCache is an LRU cache bounded by the approximate total byte size
// of the cached values rather than their count, with singleflight
// deduplication of concurrent computations and an optional TTL. It is
// the shared machinery behind the metamodel cache and the
// pseudo-label dataset cache.
//
// Counters and size gauges are telemetry instruments registered under
// reds_cache_*{cache=<label>}. They are the single source of truth:
// Stats() (which /v1/healthz serves) reads the same registry
// instruments /metrics exposes, so the two surfaces cannot drift.
type byteCache[V any] struct {
	mu       sync.Mutex
	maxBytes int64
	ttl      time.Duration
	now      func() time.Time // injectable for TTL tests
	entries  map[string]*list.Element
	order    *list.List // front = most recent
	inflight map[string]*call[V]
	bytes    int64

	hits        *telemetry.Counter
	misses      *telemetry.Counter
	evictions   *telemetry.Counter
	sizeEntries *telemetry.Gauge
	sizeBytes   *telemetry.Gauge
}

type entry[V any] struct {
	key        string
	value      V
	size       int64
	computedAt time.Time
}

type call[V any] struct {
	done  chan struct{}
	value V
	size  int64
	err   error
}

// newByteCache builds a cache whose instruments live in reg under the
// given cache label ("model" or "label"). A nil reg gets a private
// registry — instruments still work, nothing is exposed.
func newByteCache[V any](maxBytes int64, ttl time.Duration, reg *telemetry.Registry, label string) *byteCache[V] {
	if maxBytes < 1 {
		maxBytes = 256 << 20
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &byteCache[V]{
		maxBytes: maxBytes,
		ttl:      ttl,
		now:      time.Now,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*call[V]),
		hits: reg.CounterVec("reds_cache_hits_total",
			"Cache lookups served from the cache (including waits on an in-flight computation).", "cache").With(label),
		misses: reg.CounterVec("reds_cache_misses_total",
			"Cache lookups that had to compute (TTL-expired entries count as misses).", "cache").With(label),
		evictions: reg.CounterVec("reds_cache_evictions_total",
			"Cache entries dropped by the byte budget or expired by the TTL.", "cache").With(label),
		sizeEntries: reg.GaugeVec("reds_cache_size_entries",
			"Entries currently cached.", "cache").With(label),
		sizeBytes: reg.GaugeVec("reds_cache_size_bytes",
			"Approximate bytes currently cached.", "cache").With(label),
	}
}

// syncSizeLocked mirrors the current entry count and byte total into
// the size gauges. Caller holds mu.
func (c *byteCache[V]) syncSizeLocked() {
	c.sizeEntries.Set(float64(c.order.Len()))
	c.sizeBytes.Set(float64(c.bytes))
}

// getOrCompute returns the cached value for key, or runs compute once
// — even under concurrent callers — and caches its result with the
// byte weight compute reports. hit reports whether the value came from
// the cache (a caller that waited on another's in-flight computation
// counts as a hit: it did not compute). A waiter whose in-flight
// computation failed with a context error retries the computation
// itself — the canceled caller's deadline must not poison an
// unrelated caller that shares the key (the pseudo-label stage
// computes under the first job's context; a second job waiting on it
// survives the first job's cancellation).
func (c *byteCache[V]) getOrCompute(key string, compute func() (V, int64, error)) (v V, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*entry[V])
			if c.ttl > 0 && c.now().Sub(e.computedAt) >= c.ttl {
				c.removeLocked(el)
				c.evictions.Inc()
			} else {
				c.order.MoveToFront(el)
				c.hits.Inc()
				c.mu.Unlock()
				return e.value, true, nil
			}
		}
		if cl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-cl.done
			if cl.err != nil && (errors.Is(cl.err, context.Canceled) || errors.Is(cl.err, context.DeadlineExceeded)) {
				continue // the computing caller was canceled, not us: retry
			}
			// Counted only now: a waiter whose computation was canceled
			// re-enters the loop and may end up computing itself, and
			// must not have already booked a hit for that lookup.
			c.hits.Inc()
			return cl.value, true, cl.err
		}
		cl := &call[V]{done: make(chan struct{})}
		c.inflight[key] = cl
		c.misses.Inc()
		c.mu.Unlock()

		cl.value, cl.size, cl.err = compute()
		close(cl.done)

		c.mu.Lock()
		delete(c.inflight, key)
		if cl.err == nil {
			c.insert(key, cl.value, cl.size)
		}
		c.mu.Unlock()
		return cl.value, false, cl.err
	}
}

// insert adds the entry and evicts least-recently-used entries until
// the byte budget holds again. The newly inserted entry itself is never
// evicted — a single value larger than the whole budget is cached
// alone rather than thrashing. Caller holds mu.
func (c *byteCache[V]) insert(key string, v V, size int64) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[V])
		c.bytes += size - e.size
		e.value, e.size, e.computedAt = v, size, c.now()
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&entry[V]{key: key, value: v, size: size, computedAt: c.now()})
		c.entries[key] = el
		c.bytes += size
	}
	for c.bytes > c.maxBytes && c.order.Len() > 1 {
		c.removeLocked(c.order.Back())
		c.evictions.Inc()
	}
	c.syncSizeLocked()
}

// removeLocked drops one entry and its byte weight. Caller holds mu.
func (c *byteCache[V]) removeLocked(el *list.Element) {
	e := el.Value.(*entry[V])
	c.order.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
	c.syncSizeLocked()
}

// Stats returns cumulative counters and the current contents, read
// from the same telemetry instruments /metrics exposes.
func (c *byteCache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Entries:   c.order.Len(),
		Bytes:     c.bytes,
	}
}

// Len returns the number of cached values.
func (c *byteCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// defaultModelBytes is the weight of a cached model that does not report
// its own size. It is deliberately pessimistic (1 MiB) so unknown model
// types cannot silently blow the budget.
const defaultModelBytes = 1 << 20

// modelSizeBytes estimates a trained model's in-memory footprint. The
// shipped model families (rf.Forest, gbt.Model, svm.Model) implement
// metamodel.MemorySizer; anything else is charged defaultModelBytes.
func modelSizeBytes(m metamodel.Model) int64 {
	if s, ok := m.(metamodel.MemorySizer); ok {
		if n := s.ApproxMemoryBytes(); n > 0 {
			return n
		}
	}
	return defaultModelBytes
}

// modelCache is the byte-weighted LRU cache of trained metamodels (a
// tuned 500-tree forest and a 20-vector SVM are not the same cost to
// keep). Keys follow the scheme built in cachedTrainer (run.go):
//
//	<dataset SHA-256>|<family>|tuned=<bool>|seed=<train seed>
//
// i.e. dataset content hash (dataset.Hash, so any load path of the same
// bits hits) + trainer configuration (family name and whether
// cross-validated tuning ran) + the training seed. Anything that can
// change the trained model is part of the key; anything that cannot
// (the SD algorithm, L, the sampler) deliberately is not, so all SD
// variants of one metamodel family share a single entry. Repeated jobs
// over the same data skip retraining entirely — the dominant cost for
// tuned trainers. Concurrent requests for the same key are deduplicated
// singleflight-style: the first caller trains, the rest block and share
// the result. An optional TTL expires entries a fixed time after
// training, so long-lived workers eventually drop models for datasets
// nobody asks about anymore even when the byte budget never fills.
type modelCache struct {
	c *byteCache[metamodel.Model]
}

func newModelCache(maxBytes int64, ttl time.Duration, reg *telemetry.Registry) *modelCache {
	return &modelCache{c: newByteCache[metamodel.Model](maxBytes, ttl, reg, "model")}
}

// getOrTrain returns the cached model for key, or runs train once —
// even under concurrent callers — and caches its result.
func (c *modelCache) getOrTrain(key string, train func() (metamodel.Model, error)) (metamodel.Model, bool, error) {
	return c.c.getOrCompute(key, func() (metamodel.Model, int64, error) {
		m, err := train()
		if err != nil {
			return nil, 0, err
		}
		return m, modelSizeBytes(m), nil
	})
}

// Stats returns cumulative counters and the current contents.
func (c *modelCache) Stats() CacheStats { return c.c.Stats() }

// Len returns the number of cached models.
func (c *modelCache) Len() int { return c.c.Len() }

// datasetBytes is the byte weight of a cached pseudo-labeled dataset:
// the flat rows, the labels, and the row headers. The lazily derived
// columnar views (which a cached dataset shared by several variants
// will typically materialize) roughly double the X weight again, so
// they are charged up front.
func datasetBytes(d *dataset.Dataset) int64 {
	cells := int64(d.N()) * int64(d.M())
	const sliceHeader = 24
	return cells*8*2 + // X cells + columnar view
		int64(d.N())*8 + // Y
		int64(d.N()+d.M())*sliceHeader + // row + column headers
		int64(d.N())*int64(d.M())*8 // sorted index orders
}

// labelCache is the byte-weighted LRU cache of pseudo-labeled
// datasets. At L = 10^5 a single entry is ~10 MiB before the columnar
// views — pseudo-labeled data dominates a busy worker's memory, which
// is why the cache is byte-bounded like the model cache rather than
// counted. Keys (built in run.go) extend the model-cache key with
// everything else that determines the dataset:
//
//	<model cache key>|sampler=<name>|L=<l>|lseed=<label seed>|prob=<bool>
//
// so the rf×prim, rf×bumping and rf×bi variants of one job — same
// family, same label seed — share one labeling, and repeat jobs over
// the same data skip the stage entirely. Cached datasets are served to
// several variants at once and must be treated as immutable (their
// lazy columnar views are internally synchronized, and shared for
// free).
type labelCache struct {
	c *byteCache[*dataset.Dataset]
}

func newLabelCache(maxBytes int64, ttl time.Duration, reg *telemetry.Registry) *labelCache {
	return &labelCache{c: newByteCache[*dataset.Dataset](maxBytes, ttl, reg, "label")}
}

// getOrLabel returns the cached pseudo-labeled dataset for key, or
// runs label once — even under concurrent variants — and caches its
// result.
func (c *labelCache) getOrLabel(key string, label func() (*dataset.Dataset, error)) (*dataset.Dataset, bool, error) {
	return c.c.getOrCompute(key, func() (*dataset.Dataset, int64, error) {
		d, err := label()
		if err != nil {
			return nil, 0, err
		}
		return d, datasetBytes(d), nil
	})
}

// Stats returns cumulative counters and the current contents.
func (c *labelCache) Stats() CacheStats { return c.c.Stats() }

// rulesetCache is the byte-weighted LRU cache of distilled rule sets.
// Keys extend the parent model's cache key with the distillation
// parameters (see run.go):
//
//	<model cache key>|distill|maxrules=<n>|dseed=<seed>
//
// so repeat jobs over the same trained model — and sibling SD variants
// of one family — distill once. Distilled models are tiny next to
// their parents (a handful of simplified trees plus the JSON export),
// so the default budget holds hundreds of them.
type rulesetCache struct {
	c *byteCache[*ruleset.Model]
}

func newRulesetCache(maxBytes int64, ttl time.Duration, reg *telemetry.Registry) *rulesetCache {
	return &rulesetCache{c: newByteCache[*ruleset.Model](maxBytes, ttl, reg, "ruleset")}
}

// getOrDistill returns the cached distilled model for key, or runs
// distill once — even under concurrent variants — and caches its
// result.
func (c *rulesetCache) getOrDistill(key string, distill func() (*ruleset.Model, error)) (*ruleset.Model, bool, error) {
	return c.c.getOrCompute(key, func() (*ruleset.Model, int64, error) {
		m, err := distill()
		if err != nil {
			return nil, 0, err
		}
		return m, m.ApproxMemoryBytes(), nil
	})
}

// Stats returns cumulative counters and the current contents.
func (c *rulesetCache) Stats() CacheStats { return c.c.Stats() }
