package engine

import (
	"container/list"
	"sync"

	"github.com/reds-go/reds/internal/metamodel"
)

// modelCache is an LRU cache of trained metamodels. Keys follow the
// scheme built in cachedTrainer (run.go):
//
//	<dataset SHA-256>|<family>|tuned=<bool>|seed=<train seed>
//
// i.e. dataset content hash (dataset.Hash, so any load path of the same
// bits hits) + trainer configuration (family name and whether
// cross-validated tuning ran) + the training seed. Anything that can
// change the trained model is part of the key; anything that cannot
// (the SD algorithm, L, the sampler) deliberately is not, so all SD
// variants of one metamodel family share a single entry. Repeated jobs
// over the same data skip retraining entirely — the dominant cost for
// tuned trainers. Concurrent requests for the same key are deduplicated
// singleflight-style: the first caller trains, the rest block and share
// the result.
type modelCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recent
	inflight map[string]*trainCall
	hits     int64
	misses   int64
}

type cacheEntry struct {
	key   string
	model metamodel.Model
}

type trainCall struct {
	done  chan struct{}
	model metamodel.Model
	err   error
}

func newModelCache(capacity int) *modelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &modelCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*trainCall),
	}
}

// getOrTrain returns the cached model for key, or runs train once —
// even under concurrent callers — and caches its result. hit reports
// whether the model came from the cache (a caller that waited on
// another's in-flight training counts as a hit: it did not train).
func (c *modelCache) getOrTrain(key string, train func() (metamodel.Model, error)) (m metamodel.Model, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*cacheEntry).model, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-call.done
		return call.model, true, call.err
	}
	call := &trainCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses++
	c.mu.Unlock()

	call.model, call.err = train()
	close(call.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.insert(key, call.model)
	}
	c.mu.Unlock()
	return call.model, false, call.err
}

// insert adds the entry and evicts the least recently used beyond
// capacity. Caller holds mu.
func (c *modelCache) insert(key string, m metamodel.Model) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).model = m
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, model: m})
	c.entries[key] = el
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Stats returns cumulative hit and miss counts.
func (c *modelCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached models.
func (c *modelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
