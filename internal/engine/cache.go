package engine

import (
	"container/list"
	"sync"
	"time"

	"github.com/reds-go/reds/internal/metamodel"
)

// CacheStats are cumulative metamodel-cache counters, exposed on
// /v1/healthz.
type CacheStats struct {
	// Hits and Misses count lookups. A caller that waited on another's
	// in-flight training counts as a hit (it did not train); an entry
	// past its TTL counts as a miss.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by the byte budget or expired by
	// the TTL.
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe the current contents (Bytes is the sum
	// of the entries' approximate model sizes).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// defaultModelBytes is the weight of a cached model that does not report
// its own size. It is deliberately pessimistic (1 MiB) so unknown model
// types cannot silently blow the budget.
const defaultModelBytes = 1 << 20

// modelSizeBytes estimates a trained model's in-memory footprint. The
// shipped model families (rf.Forest, gbt.Model, svm.Model) implement
// metamodel.MemorySizer; anything else is charged defaultModelBytes.
func modelSizeBytes(m metamodel.Model) int64 {
	if s, ok := m.(metamodel.MemorySizer); ok {
		if n := s.ApproxMemoryBytes(); n > 0 {
			return n
		}
	}
	return defaultModelBytes
}

// modelCache is an LRU cache of trained metamodels, bounded by the
// approximate total size of the cached models rather than their count
// (a tuned 500-tree forest and a 20-vector SVM are not the same cost to
// keep). Keys follow the scheme built in cachedTrainer (run.go):
//
//	<dataset SHA-256>|<family>|tuned=<bool>|seed=<train seed>
//
// i.e. dataset content hash (dataset.Hash, so any load path of the same
// bits hits) + trainer configuration (family name and whether
// cross-validated tuning ran) + the training seed. Anything that can
// change the trained model is part of the key; anything that cannot
// (the SD algorithm, L, the sampler) deliberately is not, so all SD
// variants of one metamodel family share a single entry. Repeated jobs
// over the same data skip retraining entirely — the dominant cost for
// tuned trainers. Concurrent requests for the same key are deduplicated
// singleflight-style: the first caller trains, the rest block and share
// the result. An optional TTL expires entries a fixed time after
// training, so long-lived workers eventually drop models for datasets
// nobody asks about anymore even when the byte budget never fills.
type modelCache struct {
	mu        sync.Mutex
	maxBytes  int64
	ttl       time.Duration
	now       func() time.Time // injectable for TTL tests
	entries   map[string]*list.Element
	order     *list.List // front = most recent
	inflight  map[string]*trainCall
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key       string
	model     metamodel.Model
	size      int64
	trainedAt time.Time
}

type trainCall struct {
	done  chan struct{}
	model metamodel.Model
	err   error
}

func newModelCache(maxBytes int64, ttl time.Duration) *modelCache {
	if maxBytes < 1 {
		maxBytes = 256 << 20
	}
	return &modelCache{
		maxBytes: maxBytes,
		ttl:      ttl,
		now:      time.Now,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*trainCall),
	}
}

// getOrTrain returns the cached model for key, or runs train once —
// even under concurrent callers — and caches its result. hit reports
// whether the model came from the cache (a caller that waited on
// another's in-flight training counts as a hit: it did not train).
func (c *modelCache) getOrTrain(key string, train func() (metamodel.Model, error)) (m metamodel.Model, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if c.ttl > 0 && c.now().Sub(e.trainedAt) >= c.ttl {
			c.removeLocked(el)
			c.evictions++
		} else {
			c.order.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			return e.model, true, nil
		}
	}
	if call, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-call.done
		return call.model, true, call.err
	}
	call := &trainCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses++
	c.mu.Unlock()

	call.model, call.err = train()
	close(call.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.insert(key, call.model)
	}
	c.mu.Unlock()
	return call.model, false, call.err
}

// insert adds the entry and evicts least-recently-used entries until
// the byte budget holds again. The newly inserted entry itself is never
// evicted — a single model larger than the whole budget is cached
// alone rather than thrashing. Caller holds mu.
func (c *modelCache) insert(key string, m metamodel.Model) {
	size := modelSizeBytes(m)
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.size
		e.model, e.size, e.trainedAt = m, size, c.now()
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&cacheEntry{key: key, model: m, size: size, trainedAt: c.now()})
		c.entries[key] = el
		c.bytes += size
	}
	for c.bytes > c.maxBytes && c.order.Len() > 1 {
		c.removeLocked(c.order.Back())
		c.evictions++
	}
}

// removeLocked drops one entry and its byte weight. Caller holds mu.
func (c *modelCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// Stats returns cumulative counters and the current contents.
func (c *modelCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
		Bytes:     c.bytes,
	}
}

// Len returns the number of cached models.
func (c *modelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
