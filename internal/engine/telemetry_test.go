package engine

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/telemetry"
)

// captureExec records the request ID each execution runs under before
// delegating — the worker-side observation point for trace propagation.
type captureExec struct {
	inner Executor

	mu  sync.Mutex
	ids []string
}

func (c *captureExec) Execute(ctx context.Context, req Request, onProgress func(Progress)) (*Result, error) {
	c.mu.Lock()
	c.ids = append(c.ids, telemetry.RequestID(ctx))
	c.mu.Unlock()
	return c.inner.Execute(ctx, req, onProgress)
}

// TestTraceAcrossGatewayAndWorker submits a traced job to a gateway-
// style engine whose executor is a RemoteExecutor and asserts that the
// same request ID reaches the worker's execution context (via the
// X-Request-Id header on POST /internal/v1/execute) and surfaces on the
// gateway's job snapshot — the end-to-end correlation contract.
func TestTraceAcrossGatewayAndWorker(t *testing.T) {
	capture := &captureExec{inner: NewLocalExecutor(LocalExecutorOptions{})}
	es := NewExecServer(capture, ExecServerOptions{})
	srv := httptest.NewServer(es.Handler())
	defer func() {
		srv.Close()
		es.Close()
	}()

	e := newTestEngine(t, Options{
		Workers:  1,
		Executor: &RemoteExecutor{BaseURL: srv.URL, PollInterval: 5 * time.Millisecond},
	})
	defer e.Close()

	const rid = "feedface00000001"
	d := testDataset(250, rand.New(rand.NewSource(21)))
	id, err := e.SubmitTraced(Request{Dataset: d, L: 2000, Seed: 4}, rid)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap := waitTerminal(t, e, id, 60*time.Second)
	if snap.Status != StatusDone {
		t.Fatalf("status = %s (err %q), want done", snap.Status, snap.Error)
	}
	if snap.RequestID != rid {
		t.Fatalf("gateway snapshot request_id = %q, want %q", snap.RequestID, rid)
	}

	capture.mu.Lock()
	ids := append([]string(nil), capture.ids...)
	capture.mu.Unlock()
	if len(ids) != 1 || ids[0] != rid {
		t.Fatalf("worker saw request ids %v, want exactly [%q]", ids, rid)
	}

	// The worker's spans travel back through the progress polls: the
	// gateway job's timings must contain worker-side pipeline stages,
	// prefixed by the engine's own queue_wait span.
	if len(snap.Timings) < 2 {
		t.Fatalf("timings = %+v, want queue_wait plus worker spans", snap.Timings)
	}
	if snap.Timings[0].Stage != "queue_wait" {
		t.Fatalf("first span = %q, want queue_wait", snap.Timings[0].Stage)
	}
	var sawTrain bool
	for _, ts := range snap.Timings[1:] {
		if strings.HasPrefix(ts.Stage, "train/") {
			sawTrain = true
		}
		if ts.Seconds < 0 {
			t.Fatalf("span %q has negative duration %v", ts.Stage, ts.Seconds)
		}
	}
	if !sawTrain {
		t.Fatalf("no train/ span crossed the process boundary: %+v", snap.Timings)
	}
}

// TestTimingsCoverElapsed checks the trace's accounting on a single-
// variant job: the stages are strictly sequential, so their spans must
// sum to (almost all of) the job's wall-clock duration and never exceed
// it by more than scheduling noise.
func TestTimingsCoverElapsed(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := newTestEngine(t, Options{
		Workers:  1,
		Executor: NewLocalExecutor(LocalExecutorOptions{Metrics: reg}),
		Metrics:  reg,
	})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(22)))
	id, err := e.Submit(Request{Dataset: d, L: 3000, Seed: 7})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap := waitTerminal(t, e, id, 60*time.Second)
	if snap.Status != StatusDone {
		t.Fatalf("status = %s (err %q), want done", snap.Status, snap.Error)
	}
	res, err := e.Result(id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}

	stages := make(map[string]bool)
	var sum float64
	for _, ts := range snap.Timings {
		if ts.Stage == "queue_wait" {
			continue
		}
		sum += ts.Seconds
		stages[strings.SplitN(ts.Stage, "/", 2)[0]] = true
	}
	for _, want := range []string{"train", "sample", "label", "discover"} {
		if !stages[want] {
			t.Errorf("no %s span recorded; timings = %+v", want, snap.Timings)
		}
	}
	if sum <= 0 {
		t.Fatalf("span sum = %v, want > 0", sum)
	}
	// Sequential stages cannot take longer than the job itself; allow
	// 50ms of clock/scheduling noise. They should also account for most
	// of it — the pipeline is the job.
	if sum > res.ElapsedSeconds+0.05 {
		t.Fatalf("span sum %.3fs exceeds elapsed %.3fs", sum, res.ElapsedSeconds)
	}
	if sum < res.ElapsedSeconds*0.5 {
		t.Errorf("span sum %.3fs covers under half of elapsed %.3fs — missing stages?", sum, res.ElapsedSeconds)
	}

	// The shared registry saw the same execution: lifecycle counters and
	// stage histograms recorded.
	if v, ok := reg.Value("reds_engine_jobs_finished_total", "done"); !ok || v != 1 {
		t.Errorf("finished{done} = %v/%v, want 1/true", v, ok)
	}
	if v, ok := reg.Sum("reds_exec_stage_seconds"); !ok || v == 0 {
		t.Errorf("stage histogram sum = %v/%v, want observations", v, ok)
	}
	if v, ok := reg.Value("reds_engine_queue_wait_seconds"); !ok || v != 1 {
		t.Errorf("queue wait observations = %v/%v, want 1/true", v, ok)
	}
}
