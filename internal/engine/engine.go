package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reds-go/reds/internal/engine/store"
	"github.com/reds-go/reds/internal/telemetry"
)

// Options configure an Engine.
type Options struct {
	// Workers is the number of jobs executed concurrently (default
	// GOMAXPROCS/2, min 1). Each job may itself fan out across variants
	// and labeling workers, so a modest pool keeps the machine busy
	// without oversubscribing it.
	Workers int
	// QueueSize bounds the number of pending jobs (default 64). Submit
	// fails fast once the queue is full — backpressure instead of
	// unbounded memory growth. On recovery the queue is grown to fit
	// every re-enqueued job regardless of this bound.
	QueueSize int

	// Executor is the execution layer jobs are handed to. nil defaults
	// to an in-process LocalExecutor built from CacheBytes/CacheTTL. A
	// RemoteExecutor or a cluster.Dispatcher turns the same engine into
	// the orchestration tier of a multi-process deployment.
	Executor Executor
	// CacheBytes bounds the default LocalExecutor's metamodel cache by
	// approximate model size (default 256 MiB). Ignored when Executor is
	// set.
	CacheBytes int64
	// CacheTTL expires the default LocalExecutor's cached models this
	// long after training (0 = never). Ignored when Executor is set.
	CacheTTL time.Duration

	// Store persists jobs and results across restarts. nil defaults to
	// a fresh in-memory store, which preserves the historical behavior:
	// engine state dies with the process. Pass a store.FS opened over a
	// fixed directory to make jobs durable. The engine owns the store
	// once New succeeds and closes it in Close.
	Store store.Store
	// TTL expires terminal jobs: once a job has been done, failed or
	// canceled for longer than TTL, the background sweeper deletes it
	// (and its result) from both the store and the engine. 0 disables
	// expiry and keeps every job forever.
	TTL time.Duration
	// SweepInterval is the period of the TTL sweeper goroutine (default
	// 1 minute; only used when TTL > 0).
	SweepInterval time.Duration

	// Metrics is the telemetry registry the engine's instruments live
	// in (job lifecycle counters, queue depth/wait, job duration). nil
	// gets a private registry: instruments keep working, nothing is
	// exposed — which also keeps engines hermetic in tests. Pass the
	// same registry to the executor and the store so one /metrics
	// scrape covers the whole process.
	Metrics *telemetry.Registry
	// Logger receives the engine's structured logs (job lifecycle at
	// info with job and request IDs, store failures at error). nil
	// uses slog.Default().
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0) / 2
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.Executor == nil {
		o.Executor = NewLocalExecutor(LocalExecutorOptions{
			CacheBytes: o.CacheBytes,
			CacheTTL:   o.CacheTTL,
		})
	}
	if o.SweepInterval <= 0 {
		o.SweepInterval = time.Minute
	}
	return o
}

// RecoveryStats describes what New found in a pre-existing store.
type RecoveryStats struct {
	// Recovered is the total number of jobs loaded from the store.
	Recovered int
	// Reenqueued counts recovered pending jobs put back on the queue;
	// they run again from their original request.
	Reenqueued int
	// Resumed counts jobs the previous process left running that had a
	// persisted execution checkpoint: instead of being orphaned they are
	// re-enqueued and resume from the checkpoint (skipping the stages it
	// proves complete). Resumed jobs are included in Reenqueued.
	Resumed int
	// Orphaned counts jobs that were running when the previous process
	// stopped without finishing them (a crash — a graceful Close leaves
	// running jobs canceled, not running) and that left no checkpoint to
	// resume from. They are marked failed with a restart reason rather
	// than silently re-run.
	Orphaned int
}

// Engine is the orchestration layer of the service: it schedules
// discovery jobs onto a bounded worker pool, hands each one to its
// Executor, and mirrors every lifecycle transition into its Store. All
// methods are safe for concurrent use.
type Engine struct {
	opts     Options
	exec     Executor
	store    store.Store
	recovery RecoveryStats
	queue    chan *job
	wg       sync.WaitGroup
	ctx      context.Context
	cancel   context.CancelFunc
	log      *slog.Logger

	// Lifecycle instruments. running backs the running-jobs gauge as a
	// plain atomic because workers bump it on the execute hot path;
	// queue depth is a GaugeFunc over len(e.queue) evaluated at scrape.
	mSubmitted    *telemetry.Counter
	mFinished     *telemetry.CounterVec // status = done|failed|canceled
	mQueueWait    *telemetry.Histogram
	mJobDuration  *telemetry.Histogram
	mSweepDeleted *telemetry.Counter
	mCheckpoints  *telemetry.Counter
	running       atomic.Int64
	// draining stops workers from starting dequeued jobs — they stay
	// pending so a durable restart re-enqueues them — while jobs already
	// running are left to finish. Set by Drain, never cleared.
	draining atomic.Bool

	mu     sync.Mutex
	jobs   map[JobID]*job
	order  []JobID
	nextID uint64
	// persistedNextID is the job-ID high-water mark already written to
	// the store's meta namespace; the sweeper raises it before deleting
	// records so ids are never reused across restarts (a reused id would
	// silently serve a different job's data to a client holding an old
	// URL).
	persistedNextID uint64
	closed          bool
}

// nextIDMetaKey is the store meta key holding the job-ID high-water
// mark as a JSON number.
const nextIDMetaKey = "next_id"

// ErrQueueFull is the sentinel Submit wraps when the engine's bounded
// queue rejects a job. The API layer maps it to 429 Too Many Requests
// with a Retry-After hint.
var ErrQueueFull = errors.New("queue full")

// SubmitOptions carry submission metadata that is not part of the
// request payload.
type SubmitOptions struct {
	// RequestID continues the caller's trace (see SubmitTraced). Empty
	// gets a fresh id at execution start.
	RequestID string
	// Owner is the authenticated client submitting the job. It is
	// persisted with the job record and surfaces as Snapshot.Client.
	Owner string
	// OnDone fires exactly once when the job reaches a terminal state
	// (done, failed or canceled) — admission control releases the
	// owner's in-flight slot here. Not invoked for jobs that never
	// enqueue (Submit returned an error) and not persisted: after a
	// restart recovered jobs carry no hook.
	OnDone func()
}

// New starts an engine with its worker pool. If the configured store
// holds jobs from a previous process they are recovered first: terminal
// jobs become visible again (results load lazily from the store),
// pending jobs are re-enqueued, and jobs the previous process left
// running are marked failed with a restart reason — see RecoveryStats.
func New(opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	st := opts.Store
	if st == nil {
		st = store.NewMem()
	}
	recs, err := st.List()
	if err != nil {
		return nil, fmt.Errorf("engine: listing store: %w", err)
	}

	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}

	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		opts:   opts,
		exec:   opts.Executor,
		store:  st,
		ctx:    ctx,
		cancel: cancel,
		log:    logger,
		jobs:   make(map[JobID]*job),
		mSubmitted: reg.Counter("reds_engine_jobs_submitted_total",
			"Jobs accepted by Submit."),
		mFinished: reg.CounterVec("reds_engine_jobs_finished_total",
			"Jobs that reached a terminal status.", "status"),
		mQueueWait: reg.Histogram("reds_engine_queue_wait_seconds",
			"Time jobs spent queued between submission and execution start.",
			telemetry.ExponentialBuckets(0.001, 4, 12)),
		mJobDuration: reg.Histogram("reds_engine_job_duration_seconds",
			"Wall-clock execution time of finished jobs (excludes queue wait).",
			telemetry.ExponentialBuckets(0.01, 2, 16)),
		mSweepDeleted: reg.Counter("reds_engine_sweep_deleted_total",
			"Terminal jobs deleted by the TTL sweeper."),
		mCheckpoints: reg.Counter("reds_engine_checkpoints_persisted_total",
			"Execution checkpoints written to the store."),
	}
	pending, err := e.recover(recs)
	if err != nil {
		cancel()
		return nil, err
	}
	reg.Counter("reds_engine_jobs_recovered_total",
		"Jobs loaded from the store at startup.").Add(int64(e.recovery.Recovered))

	queueCap := opts.QueueSize
	if len(pending) > queueCap {
		queueCap = len(pending)
	}
	e.queue = make(chan *job, queueCap)
	for _, j := range pending {
		e.queue <- j
	}
	// Depth gauges read live state at scrape time; registered after the
	// queue exists so the closures never see a nil channel.
	reg.GaugeFunc("reds_engine_queue_depth_jobs",
		"Jobs currently waiting in the queue.",
		func() float64 { return float64(len(e.queue)) })
	reg.GaugeFunc("reds_engine_running_jobs",
		"Jobs currently executing.",
		func() float64 { return float64(e.running.Load()) })
	reg.GaugeFunc("reds_engine_tracked_jobs",
		"Jobs the engine currently knows (all statuses, post-TTL-sweep).",
		func() float64 { return float64(e.JobCount()) })

	e.wg.Add(opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		go e.worker()
	}
	if opts.TTL > 0 {
		e.wg.Add(1)
		go e.sweeper()
	}
	return e, nil
}

// recover rebuilds the in-memory job index from store records and
// returns the jobs to re-enqueue. Called from New before the workers
// start, so no locking is needed yet.
func (e *Engine) recover(recs []store.Record) ([]*job, error) {
	var pending []*job
	for _, rec := range recs {
		j := &job{
			id:          JobID(rec.ID),
			status:      Status(rec.Status),
			owner:       rec.Owner,
			reqJSON:     rec.Request,
			submittedAt: rec.SubmittedAt,
			startedAt:   rec.StartedAt,
			finishedAt:  rec.FinishedAt,
		}
		if rec.Error != "" {
			j.err = errors.New(rec.Error)
		}
		repersist := false
		switch j.status {
		case StatusPending, StatusRunning, StatusDone, StatusFailed, StatusCanceled:
		default:
			j.status = StatusFailed
			j.err = fmt.Errorf("stored record has unknown status %q", rec.Status)
			repersist = true
		}
		if err := json.Unmarshal(rec.Request, &j.req); err != nil && !j.status.Terminal() {
			j.status = StatusFailed
			j.err = fmt.Errorf("stored request is unreadable: %w", err)
			repersist = true
		}
		if repersist && j.finishedAt.IsZero() {
			// A job failed during recovery is terminal: give it the
			// FinishedAt that makes it TTL-sweepable.
			j.finishedAt = time.Now()
		}

		var n uint64
		if _, err := fmt.Sscanf(rec.ID, "job-%d", &n); err == nil && n > e.nextID {
			e.nextID = n
		}

		jctx, jcancel := context.WithCancel(e.ctx)
		j.ctx, j.cancel = jctx, jcancel
		switch j.status {
		case StatusPending:
			pending = append(pending, j)
			e.recovery.Reenqueued++
		case StatusRunning:
			if _, ok, cerr := e.store.GetCheckpoint(rec.ID); cerr == nil && ok {
				// The previous process died mid-job but left a checkpoint:
				// re-enqueue the job. execute loads the checkpoint from the
				// store, so the finished stages are skipped, not re-run.
				j.status = StatusPending
				j.startedAt = time.Time{}
				pending = append(pending, j)
				e.recovery.Resumed++
				e.recovery.Reenqueued++
				repersist = true
				break
			}
			// The previous process died mid-job with nothing to resume
			// from. Fail it explicitly with the reason instead of
			// re-running: the client may have acted on partial progress,
			// and an expensive job should only burn compute twice on an
			// explicit resubmit.
			j.status = StatusFailed
			j.err = errors.New("job was running when the previous engine process stopped; resubmit to re-run")
			j.finishedAt = time.Now()
			jcancel()
			e.recovery.Orphaned++
			repersist = true
		default:
			jcancel() // terminal: nothing to cancel later
		}
		if repersist {
			e.persist(j.transitionLocked()) // no concurrency yet; "Locked" is satisfied trivially
		}
		e.jobs[j.id] = j
		e.order = append(e.order, j.id)
		e.recovery.Recovered++
	}
	// The id high-water mark may exceed every surviving record's id when
	// swept jobs carried the highest ids. persistedNextID tracks what is
	// durably in the meta namespace (not what is derivable from records,
	// which sweeping can delete), so the sweeper knows when to raise it.
	// A GetMeta failure must fail recovery: proceeding with a low nextID
	// is exactly the silent id reuse the mark prevents.
	raw, ok, err := e.store.GetMeta(nextIDMetaKey)
	if err != nil {
		return nil, fmt.Errorf("engine: reading id high-water mark: %w", err)
	}
	if ok {
		var n uint64
		if err := json.Unmarshal(raw, &n); err != nil {
			return nil, fmt.Errorf("engine: decoding id high-water mark %q: %w", raw, err)
		}
		e.persistedNextID = n
		if n > e.nextID {
			e.nextID = n
		}
	}
	return pending, nil
}

// Recovery reports what New loaded from a pre-existing store.
func (e *Engine) Recovery() RecoveryStats { return e.recovery }

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.execute(j)
	}
}

// sweeper is the TTL garbage collector: every SweepInterval it deletes
// terminal jobs that finished more than TTL ago from the store and the
// in-memory index.
func (e *Engine) sweeper() {
	defer e.wg.Done()
	t := time.NewTicker(e.opts.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-e.ctx.Done():
			return
		case <-t.C:
			e.sweepExpired()
		}
	}
}

// sweepExpired performs one TTL sweep and returns how many jobs it
// removed. The store decides expiry from its mirrored records (non-zero
// FinishedAt before the cutoff), so running jobs are never touched.
func (e *Engine) sweepExpired() int {
	// Make the id high-water mark durable before deleting the records
	// that encode it, so a restart after the sweep cannot reuse ids.
	e.mu.Lock()
	n, persisted := e.nextID, e.persistedNextID
	e.mu.Unlock()
	if n > persisted {
		raw, _ := json.Marshal(n)
		if err := e.store.PutMeta(nextIDMetaKey, raw); err != nil {
			e.log.Error("persisting id high-water mark failed", "error", err)
			return 0 // do not sweep past an unpersisted mark
		}
		e.mu.Lock()
		if n > e.persistedNextID {
			e.persistedNextID = n
		}
		e.mu.Unlock()
	}
	ids, err := e.store.Sweep(time.Now().Add(-e.opts.TTL))
	if err != nil {
		e.log.Error("ttl sweep failed", "error", err)
		return 0
	}
	if len(ids) == 0 {
		return 0
	}
	drop := make(map[JobID]bool, len(ids))
	for _, id := range ids {
		drop[JobID(id)] = true
	}
	e.mu.Lock()
	kept := e.order[:0]
	for _, id := range e.order {
		if drop[id] {
			delete(e.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	e.order = kept
	e.mu.Unlock()
	e.mSweepDeleted.Add(int64(len(ids)))
	e.log.Info("ttl sweep removed expired jobs", "deleted", len(ids))
	return len(ids)
}

// persist mirrors a job record into the store. Store failures must not
// take down job execution, so they are logged and the in-memory state
// stays authoritative for this process.
func (e *Engine) persist(rec store.Record) {
	if err := e.store.PutJob(rec); err != nil {
		e.log.Error("persisting job failed", "job_id", rec.ID, "error", err)
	}
}

// execute transitions a dequeued job through its lifecycle.
func (e *Engine) execute(j *job) {
	j.mu.Lock()
	if j.status != StatusPending { // canceled while queued
		j.mu.Unlock()
		return
	}
	if j.ctx.Err() != nil {
		// The engine is shutting down while the job was still queued (a
		// user cancel would already have moved it to canceled). Leave it
		// pending: over a durable store the next process re-enqueues it.
		j.mu.Unlock()
		return
	}
	if e.draining.Load() {
		// Draining: same treatment as shutdown — the job stays pending
		// and a durable restart re-enqueues it.
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.startedAt = time.Now()
	if j.requestID == "" {
		// Recovered pending jobs (and direct Submit calls) have no
		// caller-provided trace id; start a fresh trace here so their
		// spans are still correlatable in the logs.
		j.requestID = telemetry.NewRequestID()
	}
	rid := j.requestID
	queueWait := j.startedAt.Sub(j.submittedAt)
	rec := j.transitionLocked()
	j.mu.Unlock()
	e.persist(rec)
	e.mQueueWait.Observe(queueWait.Seconds())
	e.running.Add(1)
	e.log.Info("job started", "job_id", string(j.id), "request_id", rid,
		"queue_wait_ms", queueWait.Milliseconds())

	// Resume from a persisted checkpoint when one exists (dispatcher
	// failover writes them through onProgress below; recovery re-enqueues
	// crashed jobs that have one). The request copy keeps j.req pristine:
	// snapshots and retries must not see infrastructure state.
	req := j.req
	if raw, ok, cerr := e.store.GetCheckpoint(string(j.id)); cerr == nil && ok {
		var cp Checkpoint
		if uerr := json.Unmarshal(raw, &cp); uerr == nil {
			req.Checkpoint = &cp
			e.log.Info("job resuming from persisted checkpoint",
				"job_id", string(j.id), "request_id", rid, "checkpoint_seq", cp.Seq)
		}
	}
	// Persist every new checkpoint the executor reports, deduplicated by
	// sequence number. Executors serialize progress callbacks per job, so
	// persistedSeq needs no lock.
	var persistedSeq uint64
	onProgress := func(p Progress) {
		j.setProgress(p)
		cp := p.Checkpoint
		if cp == nil || cp.Seq <= persistedSeq {
			return
		}
		raw, perr := json.Marshal(cp)
		if perr == nil {
			perr = e.store.PutCheckpoint(string(j.id), raw)
		}
		if perr != nil {
			e.log.Error("persisting checkpoint failed", "job_id", string(j.id), "error", perr)
			return
		}
		persistedSeq = cp.Seq
		e.mCheckpoints.Inc()
	}

	result, err := e.exec.Execute(telemetry.WithRequestID(j.ctx, rid), req, onProgress)

	j.mu.Lock()
	j.finishedAt = time.Now()
	switch {
	case j.ctx.Err() != nil:
		j.status = StatusCanceled
	case err != nil:
		j.status = StatusFailed
		j.err = err
	default:
		j.status = StatusDone
		j.result = result
	}
	duration := j.finishedAt.Sub(j.startedAt)
	rec = j.transitionLocked()
	done := j.status == StatusDone
	status := j.status
	j.mu.Unlock()
	j.fireDone()
	e.running.Add(-1)
	e.mFinished.With(string(status)).Inc()
	e.mJobDuration.Observe(duration.Seconds())
	if err != nil && status == StatusFailed {
		e.log.Warn("job failed", "job_id", string(j.id), "request_id", rid,
			"duration_ms", duration.Milliseconds(), "error", err)
	} else {
		e.log.Info("job finished", "job_id", string(j.id), "request_id", rid,
			"status", string(status), "duration_ms", duration.Milliseconds())
	}

	// Result before record: once the record says done, the result is
	// guaranteed to be in the store (a crash in between re-runs nothing
	// and loses nothing — the job is still recorded as running and gets
	// orphaned on recovery). If the result cannot be persisted, the
	// record is deliberately NOT advanced to done either: this process
	// still serves the in-memory result, and the store's stale running
	// record becomes an honest orphaned-failed job on the next boot
	// instead of a done job whose result can never load.
	if done {
		raw, err := json.Marshal(result)
		if err == nil {
			err = e.store.PutResult(string(j.id), raw)
		}
		if err != nil {
			e.log.Error("persisting result failed, leaving stored record running",
				"job_id", string(j.id), "error", err)
			// The checkpoint is deliberately kept: the stored record still
			// says running, so the next boot resumes from it.
			return
		}
	}
	e.persist(rec)
	// Terminal jobs have no use for their checkpoint anymore.
	if persistedSeq > 0 || req.Checkpoint != nil {
		if cerr := e.store.PutCheckpoint(string(j.id), nil); cerr != nil {
			e.log.Error("deleting checkpoint failed", "job_id", string(j.id), "error", cerr)
		}
	}
}

// Submit validates and enqueues a job, returning its ID. It fails when
// the request is invalid, the queue is full, or the engine is closed.
// The job is persisted as pending before Submit returns. The job gets a
// fresh request ID; use SubmitTraced to continue a caller's trace.
func (e *Engine) Submit(req Request) (JobID, error) {
	return e.SubmitTraced(req, "")
}

// SubmitTraced is Submit with an explicit request ID: the id travels
// with the job through logs, the snapshot's request_id field, and —
// over a RemoteExecutor — the X-Request-Id header to the worker, so one
// grep correlates a request across gateway and worker processes. An
// empty id gets a fresh one at execution start.
func (e *Engine) SubmitTraced(req Request, requestID string) (JobID, error) {
	return e.SubmitWith(req, SubmitOptions{RequestID: requestID})
}

// SubmitWith is Submit with full submission metadata: trace id, owning
// client and a terminal hook. See SubmitOptions.
func (e *Engine) SubmitWith(req Request, opts SubmitOptions) (JobID, error) {
	if err := req.Validate(); err != nil {
		return "", err
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("engine: encoding request: %w", err)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return "", fmt.Errorf("engine: closed")
	}
	// Reject on a visibly full queue before doing any store I/O, so
	// backpressure during overload stays free of fsyncs. This check is
	// conservative (the authoritative one is the enqueue below).
	if len(e.queue) == cap(e.queue) {
		e.mu.Unlock()
		return "", fmt.Errorf("engine: %w (%d pending jobs)", ErrQueueFull, e.opts.QueueSize)
	}
	e.nextID++
	id := JobID(fmt.Sprintf("job-%06d", e.nextID))
	e.mu.Unlock()

	ctx, cancel := context.WithCancel(e.ctx)
	j := &job{
		id:          id,
		req:         req,
		reqJSON:     reqJSON,
		ctx:         ctx,
		cancel:      cancel,
		status:      StatusPending,
		submittedAt: time.Now(),
		requestID:   opts.RequestID,
		owner:       opts.Owner,
		onDone:      opts.OnDone,
	}
	// Persist outside e.mu — an fsync (or a snapshot compaction) must
	// not stall every concurrent status poll — but before enqueueing, so
	// the worker's "running" upsert cannot race ahead of the initial
	// pending record.
	e.persist(j.recordLocked())

	e.mu.Lock()
	reject := func(reason error) (JobID, error) {
		e.mu.Unlock()
		cancel()
		// Best-effort: drop the already-persisted pending record so a
		// later boot does not resurrect a job nobody was told about.
		if err := e.store.Delete(string(id)); err != nil {
			e.log.Error("deleting rejected job failed", "job_id", string(id), "error", err)
		}
		return "", reason
	}
	if e.closed {
		return reject(fmt.Errorf("engine: closed"))
	}
	select {
	case e.queue <- j:
	default:
		return reject(fmt.Errorf("engine: %w (%d pending jobs)", ErrQueueFull, e.opts.QueueSize))
	}
	e.jobs[id] = j
	e.order = append(e.order, id)
	e.mu.Unlock()
	e.mSubmitted.Inc()
	e.log.Debug("job submitted", "job_id", string(id), "request_id", opts.RequestID,
		"client", opts.Owner)
	return id, nil
}

func (e *Engine) lookup(id JobID) (*job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Job returns a snapshot of the job, if it exists.
func (e *Engine) Job(id JobID) (Snapshot, bool) {
	j, ok := e.lookup(id)
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// Jobs returns snapshots of every known job in submission order.
func (e *Engine) Jobs() []Snapshot {
	e.mu.Lock()
	ids := append([]JobID(nil), e.order...)
	e.mu.Unlock()
	out := make([]Snapshot, 0, len(ids))
	for _, id := range ids {
		if j, ok := e.lookup(id); ok {
			out = append(out, j.snapshot())
		}
	}
	return out
}

// Result returns the payload of a finished job. It fails for unknown
// jobs and for jobs that are not (or not yet) done. For a job recovered
// from a durable store the payload is loaded from the store on first
// access and cached on the job afterwards.
func (e *Engine) Result(id JobID) (*Result, error) {
	j, ok := e.lookup(id)
	if !ok {
		return nil, fmt.Errorf("engine: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone:
		if j.result == nil {
			res, err := e.loadResult(id)
			if err != nil {
				return nil, err
			}
			j.result = res
		}
		return j.result, nil
	case StatusFailed:
		return nil, fmt.Errorf("engine: job %s failed: %w", id, j.err)
	case StatusCanceled:
		return nil, fmt.Errorf("engine: job %s was canceled", id)
	default:
		return nil, fmt.Errorf("engine: job %s is %s, result not ready", id, j.status)
	}
}

// loadResult fetches and decodes a persisted result payload.
func (e *Engine) loadResult(id JobID) (*Result, error) {
	raw, ok, err := e.store.GetResult(string(id))
	if err != nil {
		return nil, fmt.Errorf("engine: loading result of %s: %w", id, err)
	}
	if !ok {
		return nil, fmt.Errorf("engine: result of %s is missing from the store", id)
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("engine: decoding stored result of %s: %w", id, err)
	}
	return &res, nil
}

// Cancel requests cancellation of a job. Queued jobs are canceled
// immediately; running jobs stop at the next cancellation point. It
// reports whether the job exists and was not already terminal.
func (e *Engine) Cancel(id JobID) bool {
	j, ok := e.lookup(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	terminal := j.status.Terminal()
	var rec store.Record
	persist := false
	if j.status == StatusPending {
		// The worker that eventually dequeues it will observe the
		// status and skip execution.
		j.status = StatusCanceled
		j.finishedAt = time.Now()
		rec = j.transitionLocked()
		persist = true
	}
	j.mu.Unlock()
	if persist {
		// Canceled while still queued: this is the job's terminal
		// transition, so the in-flight slot frees here (a running job's
		// frees when the worker observes the cancellation).
		e.persist(rec)
		j.fireDone()
	}
	j.cancel()
	return !terminal
}

// CacheStats returns the executor's cumulative metamodel cache
// counters, when the executor has a cache (LocalExecutor does; a
// RemoteExecutor or dispatcher reports zeros — the caches live on the
// workers and show up on their /v1/healthz instead).
func (e *Engine) CacheStats() CacheStats {
	if cs, ok := e.exec.(interface{ CacheStats() CacheStats }); ok {
		return cs.CacheStats()
	}
	return CacheStats{}
}

// LabelCacheStats returns the executor's cumulative pseudo-label
// dataset cache counters, under the same executor-locality caveat as
// CacheStats.
func (e *Engine) LabelCacheStats() CacheStats {
	if cs, ok := e.exec.(interface{ LabelCacheStats() CacheStats }); ok {
		return cs.LabelCacheStats()
	}
	return CacheStats{}
}

// RulesetCacheStats returns the executor's cumulative distilled
// rule-set cache counters, under the same executor-locality caveat as
// CacheStats.
func (e *Engine) RulesetCacheStats() CacheStats {
	if cs, ok := e.exec.(interface{ RulesetCacheStats() CacheStats }); ok {
		return cs.RulesetCacheStats()
	}
	return CacheStats{}
}

// Executor returns the execution layer the engine dispatches jobs to.
func (e *Engine) Executor() Executor { return e.exec }

// JobCount returns the number of jobs the engine currently knows,
// without materializing snapshots (TTL-swept jobs are gone).
func (e *Engine) JobCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.jobs)
}

// Drain puts the engine into drain mode and waits up to timeout for
// running jobs to finish. Dequeued-but-unstarted jobs stay pending (a
// restart over a durable store re-enqueues them); new submissions are
// still accepted but not executed. It reports whether the engine fully
// drained. Callers follow with Close, which cancels whatever is left.
func (e *Engine) Drain(timeout time.Duration) bool {
	e.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for e.running.Load() > 0 {
		if time.Now().After(deadline) {
			return e.running.Load() == 0
		}
		time.Sleep(10 * time.Millisecond)
	}
	return true
}

// Close cancels running jobs, stops the workers and the sweeper, waits
// for them, and closes the store. Running jobs end canceled (persisted
// as such); jobs still queued stay pending so a restart over a durable
// store re-enqueues them. The engine accepts no submissions afterwards.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.cancel()     // cancels every job context and stops the sweeper
	close(e.queue) // drains: workers skip canceled jobs
	e.wg.Wait()
	if err := e.store.Close(); err != nil {
		e.log.Error("closing store failed", "error", err)
	}
}
