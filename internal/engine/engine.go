package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Options configure an Engine.
type Options struct {
	// Workers is the number of jobs executed concurrently (default
	// GOMAXPROCS/2, min 1). Each job may itself fan out across variants
	// and labeling workers, so a modest pool keeps the machine busy
	// without oversubscribing it.
	Workers int
	// QueueSize bounds the number of pending jobs (default 64). Submit
	// fails fast once the queue is full — backpressure instead of
	// unbounded memory growth.
	QueueSize int
	// CacheSize is the LRU metamodel cache capacity in trained models
	// (default 32).
	CacheSize int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0) / 2
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 32
	}
	return o
}

// Engine schedules discovery jobs onto a bounded worker pool. All
// methods are safe for concurrent use.
type Engine struct {
	opts   Options
	cache  *modelCache
	queue  chan *job
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[JobID]*job
	order  []JobID
	nextID uint64
	closed bool
}

// New starts an engine with its worker pool.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		opts:   opts,
		cache:  newModelCache(opts.CacheSize),
		queue:  make(chan *job, opts.QueueSize),
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[JobID]*job),
	}
	e.wg.Add(opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.execute(j)
	}
}

// execute transitions a dequeued job through its lifecycle.
func (e *Engine) execute(j *job) {
	j.mu.Lock()
	if j.status != StatusPending { // canceled while queued
		j.mu.Unlock()
		return
	}
	if j.ctx.Err() != nil {
		j.status = StatusCanceled
		j.finishedAt = time.Now()
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.startedAt = time.Now()
	j.mu.Unlock()

	result, err := e.run(j)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishedAt = time.Now()
	switch {
	case j.ctx.Err() != nil:
		j.status = StatusCanceled
	case err != nil:
		j.status = StatusFailed
		j.err = err
	default:
		j.status = StatusDone
		j.result = result
	}
}

// Submit validates and enqueues a job, returning its ID. It fails when
// the request is invalid, the queue is full, or the engine is closed.
func (e *Engine) Submit(req Request) (JobID, error) {
	if err := req.Validate(); err != nil {
		return "", err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return "", fmt.Errorf("engine: closed")
	}
	e.nextID++
	id := JobID(fmt.Sprintf("job-%06d", e.nextID))
	ctx, cancel := context.WithCancel(e.ctx)
	j := &job{
		id:          id,
		req:         req,
		ctx:         ctx,
		cancel:      cancel,
		status:      StatusPending,
		submittedAt: time.Now(),
	}
	select {
	case e.queue <- j:
	default:
		e.mu.Unlock()
		cancel()
		return "", fmt.Errorf("engine: queue full (%d pending jobs)", e.opts.QueueSize)
	}
	e.jobs[id] = j
	e.order = append(e.order, id)
	e.mu.Unlock()
	return id, nil
}

func (e *Engine) lookup(id JobID) (*job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Job returns a snapshot of the job, if it exists.
func (e *Engine) Job(id JobID) (Snapshot, bool) {
	j, ok := e.lookup(id)
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// Jobs returns snapshots of every known job in submission order.
func (e *Engine) Jobs() []Snapshot {
	e.mu.Lock()
	ids := append([]JobID(nil), e.order...)
	e.mu.Unlock()
	out := make([]Snapshot, 0, len(ids))
	for _, id := range ids {
		if j, ok := e.lookup(id); ok {
			out = append(out, j.snapshot())
		}
	}
	return out
}

// Result returns the payload of a finished job. It fails for unknown
// jobs and for jobs that are not (or not yet) done.
func (e *Engine) Result(id JobID) (*Result, error) {
	j, ok := e.lookup(id)
	if !ok {
		return nil, fmt.Errorf("engine: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone:
		return j.result, nil
	case StatusFailed:
		return nil, fmt.Errorf("engine: job %s failed: %w", id, j.err)
	case StatusCanceled:
		return nil, fmt.Errorf("engine: job %s was canceled", id)
	default:
		return nil, fmt.Errorf("engine: job %s is %s, result not ready", id, j.status)
	}
}

// Cancel requests cancellation of a job. Queued jobs are canceled
// immediately; running jobs stop at the next cancellation point. It
// reports whether the job exists and was not already terminal.
func (e *Engine) Cancel(id JobID) bool {
	j, ok := e.lookup(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	terminal := j.status.Terminal()
	if j.status == StatusPending {
		// The worker that eventually dequeues it will observe the
		// status and skip execution.
		j.status = StatusCanceled
		j.finishedAt = time.Now()
	}
	j.mu.Unlock()
	j.cancel()
	return !terminal
}

// CacheStats returns cumulative metamodel cache hits and misses.
func (e *Engine) CacheStats() (hits, misses int64) { return e.cache.Stats() }

// Close cancels all jobs, stops the workers and waits for them. The
// engine accepts no submissions afterwards.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.cancel()      // cancels every job context
	close(e.queue)  // drains: workers skip canceled jobs
	e.wg.Wait()
}
