package engine

import (
	"math/rand"
	"testing"
	"time"
)

// TestLabelCacheSharedAcrossVariants asserts that the SD variants of
// one metamodel family share a single pseudo-labeling: one miss, the
// other variants hit, and every variant mines the same dataset (their
// label-stage counters still add up). Run under -race this is also the
// shared-cache race test for multi-variant fan-out.
func TestLabelCacheSharedAcrossVariants(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(2)))
	id, err := e.Submit(Request{Dataset: d, L: 2000, Seed: 3, SD: []string{"prim", "bumping", "bi"}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap := waitTerminal(t, e, id, 120*time.Second)
	if snap.Status != StatusDone {
		t.Fatalf("status = %s (err %q), want done", snap.Status, snap.Error)
	}
	if snap.LabelDone != snap.LabelTotal || snap.LabelTotal != 3*2000 {
		t.Fatalf("label progress %d/%d, want 6000/6000", snap.LabelDone, snap.LabelTotal)
	}
	res, err := e.Result(id)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	hits := 0
	for _, v := range res.Variants {
		if v.Error != "" {
			t.Fatalf("variant %s/%s failed: %s", v.Metamodel, v.SD, v.Error)
		}
		if v.LabelCacheHit {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("label cache hits across variants = %d, want 2 (one labeling, two reuses)", hits)
	}
	ls := e.LabelCacheStats()
	if ls.Misses != 1 || ls.Hits != 2 {
		t.Fatalf("label cache stats = %+v, want 1 miss / 2 hits", ls)
	}
	if ls.Entries != 1 || ls.Bytes <= 0 {
		t.Fatalf("label cache contents = %+v, want one weighted entry", ls)
	}
}

// TestLabelCacheRepeatJob asserts a repeat job over the same data and
// configuration skips the labeling stage entirely — and that changing
// anything in the key (here L) does not.
func TestLabelCacheRepeatJob(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(4)))
	run := func(l int) *Result {
		id, err := e.Submit(Request{Dataset: d, L: l, Seed: 5})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if snap := waitTerminal(t, e, id, 60*time.Second); snap.Status != StatusDone {
			t.Fatalf("status = %s (err %q), want done", snap.Status, snap.Error)
		}
		res, err := e.Result(id)
		if err != nil {
			t.Fatalf("result: %v", err)
		}
		return res
	}
	first := run(2000)
	if first.Best.LabelCacheHit {
		t.Fatalf("first job reported a label cache hit")
	}
	second := run(2000)
	if !second.Best.LabelCacheHit {
		t.Fatalf("repeat job did not hit the label cache")
	}
	if first.Best.Rule != second.Best.Rule || first.Best.WRAcc != second.Best.WRAcc {
		t.Fatalf("cached rerun differs: %q (%v) vs %q (%v)",
			first.Best.Rule, first.Best.WRAcc, second.Best.Rule, second.Best.WRAcc)
	}
	if third := run(3000); third.Best.LabelCacheHit {
		t.Fatalf("job with different L hit the label cache")
	}
	ls := e.LabelCacheStats()
	if ls.Misses != 2 || ls.Hits != 1 {
		t.Fatalf("label cache stats = %+v, want 2 misses / 1 hit", ls)
	}
}

// TestLabelCacheConcurrentJobs races several identical jobs through a
// multi-worker engine: the singleflight must label once and share the
// dataset, and -race must stay quiet over the shared entry.
func TestLabelCacheConcurrentJobs(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 4})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(6)))
	var ids []JobID
	for i := 0; i < 4; i++ {
		id, err := e.Submit(Request{Dataset: d, L: 2000, Seed: 7, SD: []string{"prim", "bi"}})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, id)
	}
	var rules []string
	for _, id := range ids {
		if snap := waitTerminal(t, e, id, 120*time.Second); snap.Status != StatusDone {
			t.Fatalf("job %s: status = %s (err %q)", id, snap.Status, snap.Error)
		}
		res, err := e.Result(id)
		if err != nil {
			t.Fatalf("result: %v", err)
		}
		rules = append(rules, res.Best.Rule)
	}
	for _, r := range rules[1:] {
		if r != rules[0] {
			t.Fatalf("concurrent identical jobs disagree: %q vs %q", rules[0], r)
		}
	}
	ls := e.LabelCacheStats()
	if ls.Misses != 1 {
		t.Fatalf("label cache misses = %d, want 1 (singleflight across jobs)", ls.Misses)
	}
	if want := int64(4*2 - 1); ls.Hits != want {
		t.Fatalf("label cache hits = %d, want %d", ls.Hits, want)
	}
}
