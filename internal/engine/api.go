package engine

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/funcs"
)

// apiJobRequest is the wire form of a job submission: an engine Request
// plus a csv convenience field for inline data (last column = label).
type apiJobRequest struct {
	Request
	CSV string `json:"csv,omitempty"`
}

// FunctionInfo describes one registry entry for GET /v1/functions.
type FunctionInfo struct {
	Name       string  `json:"name"`
	Dim        int     `json:"dim"`
	Stochastic bool    `json:"stochastic"`
	Threshold  float64 `json:"threshold,omitempty"`
}

// NewHandler returns the /v1 HTTP API over an engine:
//
//	POST   /v1/jobs          submit a discovery job
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     job status + progress
//	DELETE /v1/jobs/{id}     cancel a job
//	GET    /v1/jobs/{id}/result  final payload of a done job
//	GET    /v1/functions     simulation-function registry
//	GET    /v1/healthz       liveness
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req apiJobRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if req.CSV != "" {
			if req.Dataset != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("request has both csv and dataset; pick one"))
				return
			}
			d, err := dataset.ReadCSV(strings.NewReader(req.CSV))
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			req.Dataset = d
		}
		id, err := e.Submit(req.Request)
		if err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "queue full") {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{
			"id":     string(id),
			"status": string(StatusPending),
			"href":   "/v1/jobs/" + string(id),
		})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": e.Jobs()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := e.Job(JobID(r.PathValue("id")))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := JobID(r.PathValue("id"))
		if _, ok := e.Job(id); !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %s", id))
			return
		}
		canceled := e.Cancel(id)
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "canceled": canceled})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := JobID(r.PathValue("id"))
		snap, ok := e.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %s", id))
			return
		}
		res, err := e.Result(id)
		if err != nil {
			status := http.StatusConflict // not ready / canceled / failed
			writeJSON(w, status, map[string]any{"error": err.Error(), "status": snap.Status})
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /v1/functions", func(w http.ResponseWriter, r *http.Request) {
		var out []FunctionInfo
		for _, name := range funcs.Names() {
			f, err := funcs.Get(name)
			if err != nil {
				continue
			}
			info := FunctionInfo{Name: f.Name(), Dim: f.Dim(), Stochastic: f.Stochastic()}
			if !f.Stochastic() {
				info.Threshold = f.Threshold()
			}
			out = append(out, info)
		}
		writeJSON(w, http.StatusOK, map[string]any{"functions": out})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		hits, misses := e.CacheStats()
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":           true,
			"cache_hits":   hits,
			"cache_misses": misses,
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
