package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/reds-go/reds/internal/admission"
	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/telemetry"
)

// apiJobRequest is the wire form of a job submission: an engine Request
// plus a csv convenience field for inline data (last column = label).
type apiJobRequest struct {
	Request
	CSV string `json:"csv,omitempty"`
}

// apiError is the error envelope every /v1 endpoint uses, including the
// router's own 404/405 responses (see jsonErrors):
//
//	{"error": {"code": "not_found", "message": "unknown job job-000042"}}
//
// Codes are stable machine-readable strings; messages are for humans.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds hints when a throttled request (429) is worth
	// retrying; mirrors the Retry-After header.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// Error codes used by the /v1 API (documented in docs/API.md).
const (
	errBadRequest       = "bad_request"        // malformed JSON or invalid request fields
	errNotFound         = "not_found"          // unknown job id or route
	errMethodNotAllowed = "method_not_allowed" // known route, wrong HTTP method
	errQueueFull        = "queue_full"         // submission rejected by backpressure (429)
	errInflightLimit    = "inflight_limit"     // client at its in-flight job cap (429)
	errLimitExceeded    = "limit_exceeded"     // request exceeds a server resource cap (400)
	errBodyTooLarge     = "body_too_large"     // request body over the byte limit (413)
	errNotReady         = "not_ready"          // result requested before the job finished
	errInternal         = "internal"           // unexpected server-side failure
)

// defaultMaxBodyBytes bounds POST /v1/jobs bodies when no admission
// controller is configured: large enough for paper-scale inline CSVs,
// small enough that a stray upload cannot exhaust memory.
const defaultMaxBodyBytes = 64 << 20

// FunctionInfo describes one registry entry for GET /v1/functions.
type FunctionInfo struct {
	Name       string  `json:"name"`
	Dim        int     `json:"dim"`
	Stochastic bool    `json:"stochastic"`
	Threshold  float64 `json:"threshold,omitempty"`
}

// HandlerOption customizes NewHandler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	execServer *ExecServer
	metrics    *telemetry.Registry
	admission  *admission.Controller
}

// WithExecutionAPI mounts the internal execution API (the worker side
// of RemoteExecutor, see ExecServer) on the same handler and folds its
// counters into /v1/healthz.
func WithExecutionAPI(es *ExecServer) HandlerOption {
	return func(c *handlerConfig) { c.execServer = es }
}

// WithMetrics mounts Prometheus text exposition of reg at GET /metrics.
func WithMetrics(reg *telemetry.Registry) HandlerOption {
	return func(c *handlerConfig) { c.metrics = reg }
}

// WithAdmission connects the handler to an admission controller: job
// submissions are validated against its resource caps (l, n, variant
// grid, train_bins, deadline), charged against the submitting client's
// in-flight budget, and stamped with the authenticated client identity
// the controller's Middleware put on the request context. The
// middleware itself must be mounted separately, in front of the whole
// handler (see cmd/redsserver).
func WithAdmission(ctrl *admission.Controller) HandlerOption {
	return func(c *handlerConfig) { c.admission = ctrl }
}

// NewHandler returns the /v1 HTTP API over an engine:
//
//	POST   /v1/jobs          submit a discovery job
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     job status + progress
//	DELETE /v1/jobs/{id}     cancel a job
//	GET    /v1/jobs/{id}/result  final payload of a done job
//	GET    /v1/jobs/{id}/rules   distilled rule sets of a done job
//	GET    /v1/functions     simulation-function registry
//	GET    /v1/healthz       liveness + cache/job counters
//
// Every error response — including the router's own 404/405 — uses the
// apiError envelope. The full request/response reference lives in
// docs/API.md.
func NewHandler(e *Engine, opts ...HandlerOption) http.Handler {
	var cfg handlerConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	mux := http.NewServeMux()
	if cfg.execServer != nil {
		cfg.execServer.register(mux)
	}
	if cfg.metrics != nil {
		mux.Handle("GET /metrics", cfg.metrics.Handler())
	}
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		// The authenticated client, when the admission middleware ran in
		// front of this handler ("" otherwise).
		client := admission.ClientFrom(r.Context())
		if cfg.admission == nil {
			// No admission controller: still bound the body, with the
			// default limit (the controller's middleware wraps the body
			// with its configured cap before the request gets here).
			r.Body = http.MaxBytesReader(w, r.Body, defaultMaxBodyBytes)
		}
		var req apiJobRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				if cfg.admission != nil {
					cfg.admission.RecordRejected(client, admission.ReasonBodyTooLarge)
				}
				writeError(w, http.StatusRequestEntityTooLarge, errBodyTooLarge,
					fmt.Errorf("request body exceeds the %d-byte limit", mbe.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, errBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if req.CSV != "" {
			if req.Dataset != nil {
				writeError(w, http.StatusBadRequest, errBadRequest, fmt.Errorf("request has both csv and dataset; pick one"))
				return
			}
			d, err := dataset.ReadCSV(strings.NewReader(req.CSV))
			if err != nil {
				writeError(w, http.StatusBadRequest, errBadRequest, err)
				return
			}
			req.Dataset = d
		}
		// Checkpoints are infrastructure state (dispatcher failover and
		// crash recovery attach them); a client-supplied one is ignored
		// rather than trusted to skip stages.
		req.Checkpoint = nil
		var onDone func()
		if cfg.admission != nil {
			if err := checkCaps(cfg.admission.Caps(), req.Request); err != nil {
				cfg.admission.RecordRejected(client, admission.ReasonLimitExceeded)
				writeError(w, http.StatusBadRequest, errLimitExceeded, err)
				return
			}
			d, err := cfg.admission.CheckDeadline(req.DeadlineSeconds)
			if err != nil {
				cfg.admission.RecordRejected(client, admission.ReasonLimitExceeded)
				writeError(w, http.StatusBadRequest, errLimitExceeded, err)
				return
			}
			req.DeadlineSeconds = d
			release, retryAfter := cfg.admission.AcquireJob(client)
			if release == nil {
				writeErrorRetry(w, http.StatusTooManyRequests, errInflightLimit,
					fmt.Errorf("client is at its in-flight job limit; wait for a job to finish"),
					retryAfter)
				return
			}
			onDone = release
		}
		// The job continues the HTTP request's trace: the middleware
		// (telemetry.Instrument) put the inbound or generated
		// X-Request-Id on the context, and the engine carries it through
		// the job's logs, snapshot and — over a RemoteExecutor — to the
		// worker. Owner stamps the snapshot's client field; OnDone frees
		// the in-flight slot at the job's terminal transition.
		id, err := e.SubmitWith(req.Request, SubmitOptions{
			RequestID: telemetry.RequestID(r.Context()),
			Owner:     client,
			OnDone:    onDone,
		})
		if err != nil {
			if onDone != nil {
				onDone() // the job never enqueued; free its slot now
			}
			if errors.Is(err, ErrQueueFull) {
				if cfg.admission != nil {
					cfg.admission.RecordRejected(client, admission.ReasonQueueFull)
				}
				writeErrorRetry(w, http.StatusTooManyRequests, errQueueFull, err, time.Second)
				return
			}
			writeError(w, http.StatusBadRequest, errBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{
			"id":     string(id),
			"status": string(StatusPending),
			"href":   "/v1/jobs/" + string(id),
		})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := e.Jobs()
		// ?client= narrows the listing to one submitter (the value the
		// admission middleware authenticated, echoed as each snapshot's
		// client field).
		if owner := r.URL.Query().Get("client"); owner != "" {
			filtered := make([]Snapshot, 0, len(jobs))
			for _, s := range jobs {
				if s.Client == owner {
					filtered = append(filtered, s)
				}
			}
			jobs = filtered
		}
		writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := e.Job(JobID(r.PathValue("id")))
		if !ok {
			writeError(w, http.StatusNotFound, errNotFound, fmt.Errorf("unknown job %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := JobID(r.PathValue("id"))
		if _, ok := e.Job(id); !ok {
			writeError(w, http.StatusNotFound, errNotFound, fmt.Errorf("unknown job %s", id))
			return
		}
		canceled := e.Cancel(id)
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "canceled": canceled})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := JobID(r.PathValue("id"))
		snap, ok := e.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, errNotFound, fmt.Errorf("unknown job %s", id))
			return
		}
		res, err := e.Result(id)
		if err != nil {
			// A done job whose stored result cannot load is a server-side
			// failure, not something a client should retry as not-ready.
			if snap.Status == StatusDone {
				writeError(w, http.StatusInternalServerError, errInternal, err)
				return
			}
			// Not ready, canceled or failed: the envelope carries the
			// reason, "status" the job's current lifecycle state.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  apiError{Code: errNotReady, Message: err.Error()},
				"status": snap.Status,
			})
			return
		}
		writeJSON(w, http.StatusOK, stripRulesets(res))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/rules", func(w http.ResponseWriter, r *http.Request) {
		id := JobID(r.PathValue("id"))
		snap, ok := e.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, errNotFound, fmt.Errorf("unknown job %s", id))
			return
		}
		res, err := e.Result(id)
		if err != nil {
			if snap.Status == StatusDone {
				writeError(w, http.StatusInternalServerError, errInternal, err)
				return
			}
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  apiError{Code: errNotReady, Message: err.Error()},
				"status": snap.Status,
			})
			return
		}
		// One entry per metamodel family: the SD variants of a family
		// share one labeling (and therefore one kernel resolution), so
		// their ruleset entries would be identical.
		type rulesetEntry struct {
			Metamodel      string          `json:"metamodel"`
			LabelKernel    string          `json:"label_kernel,omitempty"`
			LabelFidelity  float64         `json:"label_fidelity,omitempty"`
			FallbackReason string          `json:"fallback_reason,omitempty"`
			Ruleset        json.RawMessage `json:"ruleset,omitempty"`
		}
		seen := map[string]bool{}
		entries := []rulesetEntry{}
		for _, vr := range res.Variants {
			if seen[vr.Metamodel] || vr.Error != "" {
				continue
			}
			seen[vr.Metamodel] = true
			entries = append(entries, rulesetEntry{
				Metamodel:      vr.Metamodel,
				LabelKernel:    vr.LabelKernel,
				LabelFidelity:  vr.LabelFidelity,
				FallbackReason: vr.FallbackReason,
				Ruleset:        vr.Ruleset,
			})
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":           id,
			"dataset_hash": res.DatasetHash,
			"rulesets":     entries,
		})
	})
	mux.HandleFunc("GET /v1/functions", func(w http.ResponseWriter, r *http.Request) {
		var out []FunctionInfo
		for _, name := range funcs.Names() {
			f, err := funcs.Get(name)
			if err != nil {
				continue
			}
			info := FunctionInfo{Name: f.Name(), Dim: f.Dim(), Stochastic: f.Stochastic()}
			if !f.Stochastic() {
				info.Threshold = f.Threshold()
			}
			out = append(out, info)
		}
		writeJSON(w, http.StatusOK, map[string]any{"functions": out})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		// The field names are the pre-telemetry wire contract; the values
		// are read from the same registry instruments /metrics exposes
		// (CacheStats is a view over the reds_cache_* series), so the two
		// surfaces cannot drift apart.
		cs := e.CacheStats()
		ls := e.LabelCacheStats()
		rec := e.Recovery()
		body := map[string]any{
			"ok":                    true,
			"cache_hits":            cs.Hits,
			"cache_misses":          cs.Misses,
			"cache_evictions":       cs.Evictions,
			"cache_entries":         cs.Entries,
			"cache_bytes":           cs.Bytes,
			"label_cache_hits":      ls.Hits,
			"label_cache_misses":    ls.Misses,
			"label_cache_evictions": ls.Evictions,
			"label_cache_entries":   ls.Entries,
			"label_cache_bytes":     ls.Bytes,
			"jobs":                  e.JobCount(),
			"jobs_recovered":        rec.Recovered,
		}
		rs := e.RulesetCacheStats()
		body["ruleset_cache_hits"] = rs.Hits
		body["ruleset_cache_misses"] = rs.Misses
		body["ruleset_cache_evictions"] = rs.Evictions
		body["ruleset_cache_entries"] = rs.Entries
		body["ruleset_cache_bytes"] = rs.Bytes
		if cfg.execServer != nil {
			started, active := cfg.execServer.Executions()
			body["executions"] = started
			body["executions_active"] = active
		}
		writeJSON(w, http.StatusOK, body)
	})
	return jsonErrors(mux)
}

// stripRulesets shallow-copies a result without the variants' inline
// rule-set exports: /result stays small (a paper-scale rule set is
// tens of kilobytes per family) and GET /v1/jobs/{id}/rules is the one
// surface that serves the artifact. The stored result keeps the rules;
// only the response omits them.
func stripRulesets(res *Result) *Result {
	needs := res.Best.Ruleset != nil
	for i := range res.Variants {
		needs = needs || res.Variants[i].Ruleset != nil
	}
	if !needs {
		return res
	}
	out := *res
	out.Best.Ruleset = nil
	out.Variants = make([]VariantResult, len(res.Variants))
	copy(out.Variants, res.Variants)
	for i := range out.Variants {
		out.Variants[i].Ruleset = nil
	}
	return &out
}

// checkCaps validates a request against the server's resource ceilings.
// The effective (defaulted) values are compared, so omitting a field
// does not bypass its cap.
func checkCaps(caps admission.Caps, req Request) error {
	if caps.MaxL > 0 && req.effectiveL() > caps.MaxL {
		return fmt.Errorf("l %d exceeds the server cap of %d", req.effectiveL(), caps.MaxL)
	}
	if caps.MaxN > 0 {
		if req.Function != "" && req.effectiveN() > caps.MaxN {
			return fmt.Errorf("n %d exceeds the server cap of %d", req.effectiveN(), caps.MaxN)
		}
		if req.Dataset != nil && req.Dataset.N() > caps.MaxN {
			return fmt.Errorf("inline dataset has %d rows, over the server cap of %d", req.Dataset.N(), caps.MaxN)
		}
	}
	if caps.MaxVariants > 0 {
		if n := len(buildVariants(req)); n > caps.MaxVariants {
			return fmt.Errorf("metamodels × sd grid has %d variants, over the server cap of %d", n, caps.MaxVariants)
		}
	}
	if caps.MaxTrainBins > 0 && req.TrainBins > caps.MaxTrainBins {
		return fmt.Errorf("train_bins %d exceeds the server cap of %d", req.TrainBins, caps.MaxTrainBins)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, map[string]any{"error": apiError{Code: code, Message: err.Error()}})
}

// writeErrorRetry is writeError for throttled requests: it sets the
// Retry-After header (integral seconds, rounded up, min 1) and mirrors
// the hint in the envelope's retry_after_seconds field.
func writeErrorRetry(w http.ResponseWriter, status int, code string, err error, retryAfter time.Duration) {
	secs := int64(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, map[string]any{"error": apiError{
		Code:              code,
		Message:           err.Error(),
		RetryAfterSeconds: retryAfter.Seconds(),
	}})
}

// jsonErrors converts the plain-text 404/405 responses of the standard
// ServeMux (unknown route, wrong method) into the API's JSON error
// envelope, so every error a client can receive under /v1 has the same
// shape. Handler-written responses pass through untouched: they set
// Content-Type application/json before writing.
func jsonErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w, req: r}, r)
	})
}

// envelopeWriter intercepts WriteHeader: a 404/405 status written
// without a JSON content type comes from the router itself, so the
// writer substitutes the envelope and swallows the original text body.
type envelopeWriter struct {
	http.ResponseWriter
	req       *http.Request
	intercept bool
}

func (w *envelopeWriter) WriteHeader(status int) {
	ct := w.Header().Get("Content-Type")
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		ct != "application/json" {
		w.intercept = true
		code, msg := errNotFound, fmt.Sprintf("no route %s %s", w.req.Method, w.req.URL.Path)
		if status == http.StatusMethodNotAllowed {
			code = errMethodNotAllowed
			msg = fmt.Sprintf("method %s not allowed on %s", w.req.Method, w.req.URL.Path)
			if allow := w.Header().Get("Allow"); allow != "" {
				msg += " (allowed: " + allow + ")"
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("X-Content-Type-Options")
		w.ResponseWriter.WriteHeader(status)
		enc := json.NewEncoder(w.ResponseWriter)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"error": apiError{Code: code, Message: msg}})
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

// Write drops the router's text body once the envelope has been sent.
func (w *envelopeWriter) Write(b []byte) (int, error) {
	if w.intercept {
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}
