package engine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reds-go/reds/internal/bi"
	"github.com/reds-go/reds/internal/core"
	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/gbt"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/metrics"
	"github.com/reds-go/reds/internal/prim"
	"github.com/reds-go/reds/internal/rf"
	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/sd"
	"github.com/reds-go/reds/internal/svm"
	"github.com/reds-go/reds/internal/telemetry"
)

// variantSeedStride separates the RNG streams of a job's variants.
const variantSeedStride = 1009

// labelSeedOffset derives a metamodel family's pseudo-label sampling
// seed from its training seed. It is not a multiple of (or congruent
// mod) variantSeedStride, so label seeds never collide with any
// family's training seed or any variant's pipeline seed.
const labelSeedOffset = 577

func knownMetamodel(name string) bool {
	switch name {
	case "rf", "xgb", "svm":
		return true
	}
	return false
}

func knownSD(name string) bool {
	switch name {
	case "prim", "bumping", "bi":
		return true
	}
	return false
}

// trainerByName builds the metamodel trainer for one variant. binned
// selects the histogram fast path with the given bin budget (resolved
// upstream — svm never reaches here with binned set).
func trainerByName(name string, m int, tuned, binned bool, bins int) metamodel.Trainer {
	switch name {
	case "xgb":
		if binned {
			if tuned {
				return gbt.TunedTrainerBinned(bins)
			}
			return &gbt.BinnedTrainer{Bins: bins}
		}
		if tuned {
			return gbt.TunedTrainer()
		}
		return &gbt.Trainer{}
	case "svm":
		if tuned {
			return svm.TunedTrainer()
		}
		return &svm.Trainer{}
	default: // "rf"
		if binned {
			if tuned {
				return rf.TunedTrainerBinned(m, bins)
			}
			return &rf.BinnedTrainer{Bins: bins}
		}
		if tuned {
			return rf.TunedTrainer(m)
		}
		return &rf.Trainer{}
	}
}

// sdByName builds the subgroup-discovery stage, handing each algorithm
// the variant's worker budget: peeling fans its per-dimension candidate
// evaluation out, bumping its bootstrap replicas, BI its beam
// refinement candidates.
func sdByName(name string, workers int) sd.Discoverer {
	switch name {
	case "bumping":
		return &prim.Bumping{Workers: workers}
	case "bi":
		return &bi.BI{Workers: workers}
	default: // "prim"
		return &prim.Peeler{Workers: workers}
	}
}

func samplerByName(name string) (sample.Sampler, error) {
	switch name {
	case "", "lhs":
		return sample.LatinHypercube{}, nil
	case "uniform":
		return sample.Uniform{}, nil
	case "halton":
		return &sample.Halton{}, nil
	case "logitnormal":
		return &sample.LogitNormal{}, nil
	case "mixed":
		return &sample.Mixed{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown sampler %q (want lhs, uniform, halton, logitnormal or mixed)", name)
	}
}

type variantSpec struct {
	metamodel string
	sd        string
}

func buildVariants(req Request) []variantSpec {
	mms := req.Metamodels
	if len(mms) == 0 {
		mms = []string{"rf"}
	}
	sds := req.SD
	if len(sds) == 0 {
		sds = []string{"prim"}
	}
	var out []variantSpec
	for _, mm := range mms {
		for _, s := range sds {
			out = append(out, variantSpec{metamodel: mm, sd: s})
		}
	}
	return out
}

// Execute implements Executor: apply the request's wall-clock deadline
// (if any), then run the pipeline. The deadline budget is checkpoint-
// aware — a resumed execution inherits what earlier executions already
// spent (Checkpoint.ElapsedSeconds) — and a trip is reported as
// ErrDeadlineExceeded, distinct from both caller cancellation (the
// parent context ending) and worker unavailability (ErrUnavailable), so
// the engine fails the job instead of re-routing or "canceling" it.
func (x *LocalExecutor) Execute(ctx context.Context, req Request, onProgress func(Progress)) (*Result, error) {
	if req.DeadlineSeconds <= 0 {
		return x.execute(ctx, req, onProgress)
	}
	budget := req.DeadlineSeconds
	spent := 0.0
	if cp := req.Checkpoint; cp != nil {
		spent = cp.ElapsedSeconds
	}
	if budget-spent <= 0 {
		return nil, fmt.Errorf("engine: %w: earlier executions already spent %.1fs of the %gs budget",
			ErrDeadlineExceeded, spent, budget)
	}
	dctx, cancel := context.WithTimeout(ctx, time.Duration((budget-spent)*float64(time.Second)))
	defer cancel()
	res, err := x.execute(dctx, req, onProgress)
	if err != nil && dctx.Err() != nil && ctx.Err() == nil {
		// The budget ran out (the parent is still alive, so this is not a
		// cancel or shutdown): surface the deadline as the job's failure.
		return nil, fmt.Errorf("engine: %w after %gs (deadline_seconds=%g, %.1fs spent before this execution)",
			ErrDeadlineExceeded, budget-spent, budget, spent)
	}
	return res, err
}

// execute resolves the training data, fans the variant grid out as
// concurrent sub-tasks, and ranks the outcomes.
func (x *LocalExecutor) execute(ctx context.Context, req Request, onProgress func(Progress)) (*Result, error) {
	sink := newProgressSink(onProgress)
	start := time.Now()
	seed := req.effectiveSeed()
	l := req.effectiveL()
	smp, err := samplerByName(req.Sampler)
	if err != nil {
		return nil, err
	}

	var train *dataset.Dataset
	if req.Function != "" {
		f, err := funcs.Get(req.Function)
		if err != nil {
			return nil, err
		}
		sink.update(func(p *Progress) { p.Stage = "simulate" })
		simStart := time.Now()
		train = funcs.Generate(f, req.effectiveN(), smp, rand.New(rand.NewSource(seed)))
		simSecs := time.Since(simStart).Seconds()
		x.stageSeconds.With("simulate", "", "").Observe(simSecs)
		sink.addSpan(StageTiming{Stage: "simulate", Seconds: simSecs})
	} else {
		train = req.Dataset
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hash := train.Hash()

	// A forwarded checkpoint lets this execution reuse an earlier one's
	// work — but only if it was computed from the same training data.
	cp := req.Checkpoint
	if cp != nil {
		if cp.DatasetHash != hash {
			x.mCheckpointRejected.Inc()
			cp = nil
		} else {
			x.mCheckpointResumes.Inc()
			// The earlier execution's closed spans become the head of this
			// execution's trace: the job's final timings show each stage
			// once, whoever ran it.
			sink.preload(cp.Timings)
		}
	}
	ckpt := newCheckpointRecorder(cp, hash, x.checkpointBytes, sink)
	finished := make(map[variantSpec]VariantResult)
	if cp != nil {
		for _, vr := range cp.Variants {
			if vr.Error == "" {
				finished[variantSpec{metamodel: vr.Metamodel, sd: vr.SD}] = vr
			}
		}
	}

	variants := buildVariants(req)
	sink.update(func(p *Progress) {
		p.VariantsTotal = len(variants)
		p.LabelTotal = l * len(variants)
	})

	// Training seeds are per metamodel *family*, not per variant, so the
	// SD variants of one family share a single cache entry (the
	// singleflight trains once, concurrently-started siblings wait).
	familySeed := make(map[string]int64)
	for _, v := range variants {
		if _, ok := familySeed[v.metamodel]; !ok {
			familySeed[v.metamodel] = seed + int64(len(familySeed)+1)*variantSeedStride
		}
	}
	// Bound each variant's worker pools (pseudo-labeling and the SD
	// stage alike) so a job's fan-out does not multiply into
	// GOMAXPROCS × variants goroutines.
	labelWorkers := runtime.GOMAXPROCS(0) / len(variants)
	if labelWorkers < 1 {
		labelWorkers = 1
	}

	results := make([]VariantResult, len(variants))
	var wg sync.WaitGroup
	for vi, v := range variants {
		if vr, ok := finished[v]; ok {
			// The checkpoint already carries this variant's result: reuse
			// it verbatim. Its spans are in the preloaded trace; account
			// its full labeling share so the job-level counters add up.
			vr.Resumed = true
			results[vi] = vr
			x.mCheckpointVariantsSkipped.Inc()
			sink.update(func(p *Progress) {
				p.VariantsDone++
				p.LabelDone += l
			})
			continue
		}
		wg.Add(1)
		go func(vi int, v variantSpec) {
			defer wg.Done()
			vr := x.runVariant(ctx, req, sink, train, hash, smp, l, v, variantConfig{
				pipelineSeed: seed + int64(vi+1)*variantSeedStride,
				trainSeed:    familySeed[v.metamodel],
				labelWorkers: labelWorkers,
				checkpoints:  ckpt,
			})
			results[vi] = vr
			if vr.Error == "" {
				ckpt.variantDone(vr)
			}
			sink.update(func(p *Progress) { p.VariantsDone++ })
		}(vi, v)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rankVariants(results)
	if results[0].Error != "" {
		return nil, fmt.Errorf("engine: all %d variants failed; first: %s", len(results), results[0].Error)
	}
	return &Result{
		Best:               results[0],
		Variants:           results,
		TrainN:             train.N(),
		TrainPositiveShare: train.PositiveShare(),
		DatasetHash:        hash,
		ElapsedSeconds:     time.Since(start).Seconds(),
	}, nil
}

// variantConfig carries the per-variant execution parameters:
// pipelineSeed drives the sampler and SD stages (unique per variant),
// trainSeed drives metamodel training (shared across a family so its SD
// variants share one cache entry), labelWorkers bounds the labeling
// pool.
type variantConfig struct {
	pipelineSeed int64
	trainSeed    int64
	labelWorkers int
	// checkpoints records this execution's reusable work and serves the
	// inbound checkpoint's labeled datasets for stage skipping.
	checkpoints *checkpointRecorder
}

// runVariant executes one metamodel × SD combination of a request. The
// metamodel is fetched from (or trained into) the executor's cache; the
// pipeline runs under the execution context with progress wired into
// the sink.
func (x *LocalExecutor) runVariant(ctx context.Context, req Request, sink *progressSink, train *dataset.Dataset, hash string, smp sample.Sampler, l int, v variantSpec, cfg variantConfig) VariantResult {
	out := VariantResult{Metamodel: v.metamodel, SD: v.sd}
	// The training mode resolves before the cache key is formed: binned
	// models are approximations and must never be served to (or from) an
	// exact-mode entry, while a binned request that falls back to exact
	// shares the exact entry — its model is the exact model.
	mode := x.resolveTrainMode(req, v.metamodel, train, hash, cfg.trainSeed)
	out.TrainMode = mode.mode
	out.TrainQuality = mode.quality
	out.TrainFallbackReason = mode.fallbackReason
	key := fmt.Sprintf("%s|%s|tuned=%v|seed=%d", hash, v.metamodel, req.Tuned, cfg.trainSeed)
	binned := mode.mode == "binned"
	bins := req.effectiveTrainBins(x.trainBins)
	if binned {
		key += fmt.Sprintf("|mode=binned|bins=%d", bins)
	}
	inner := trainerByName(v.metamodel, train.M(), req.Tuned, binned, bins)
	if binned {
		// The shared-fold tuner can evaluate fold × candidate cells
		// concurrently without changing its outcome; give it the
		// variant's worker budget.
		if tu, ok := inner.(*metamodel.Tuned); ok {
			tu.Workers = cfg.labelWorkers
		}
	}
	trainer := &cachedTrainer{
		cache:        x.cache,
		key:          key,
		seed:         cfg.trainSeed,
		inner:        inner,
		trainSeconds: x.mTrainSeconds,
		family:       v.metamodel,
		mode:         mode.mode,
	}
	// Each stage-entry notification closes the previous stage's span:
	// the span is recorded into the job trace under its variant-
	// qualified name and observed in the stage-latency histogram. A
	// cache hit legitimately closes a ~0s span — the stage really did
	// cost nothing.
	timer := telemetry.NewStageTimer(func(span telemetry.Span) {
		name := span.Name + "/" + v.metamodel
		if span.Name == string(core.StageDiscover) {
			name += "/" + v.sd
		}
		x.stageSeconds.With(span.Name, v.metamodel, v.sd).Observe(span.Seconds)
		sink.addSpan(StageTiming{Stage: name, Seconds: span.Seconds})
	})
	defer timer.Stop()
	var prev atomic.Int64
	hooks := &core.Hooks{
		LabelWorkers: cfg.labelWorkers,
		OnStage: func(s core.Stage) {
			timer.Start(string(s))
			sink.update(func(p *Progress) { p.Stage = string(s) })
		},
		OnLabelProgress: func(done, total int) {
			// Reports may arrive out of order across labeling
			// workers; fold them into a monotone per-variant count
			// so the execution-level sum stays exact.
			for {
				old := prev.Load()
				if int64(done) <= old {
					return
				}
				if prev.CompareAndSwap(old, int64(done)) {
					delta := int(int64(done) - old)
					sink.update(func(p *Progress) { p.LabelDone += delta })
					return
				}
			}
		},
	}
	// The pseudo-label stage is shared: its sampling seed derives from
	// the family's training seed (not the variant's pipeline seed), so
	// every SD variant of one family asks the label cache for the same
	// key and labels once. The cache key extends the model key with
	// everything else that determines the dataset — including which
	// labeling kernel produced it (|kernel=full vs |kernel=distilled):
	// distilled labels are a fidelity-bounded approximation and must
	// never be served to a job that asked for the full ensemble.
	labelSeed := cfg.trainSeed + labelSeedOffset
	baseLabelKey := fmt.Sprintf("%s|sampler=%s|L=%d|lseed=%d|prob=%v",
		trainer.key, req.effectiveSampler(), l, labelSeed, req.ProbLabels)
	var labelHit atomic.Bool
	// resolved is written by LabelStage (which DiscoverContext calls
	// synchronously on this goroutine) and read after it returns.
	var resolved kernelResolution
	r := &core.REDS{
		Metamodel:  trainer,
		Sampler:    smp,
		L:          l,
		SD:         sdByName(v.sd, cfg.labelWorkers),
		ProbLabels: req.ProbLabels,
		LabelStage: func(ctx context.Context, model metamodel.Model, dim int) (*dataset.Dataset, error) {
			// The kernel is resolved here — not at submission — because
			// the distiller needs the trained model. The resolution is
			// cached (ruleset cache) and deterministic per family.
			resolved = x.resolveKernel(req, trainer.key, model, dim, cfg.trainSeed+distillSeedOffset)
			labelKey := baseLabelKey + "|kernel=" + resolved.kernel
			d, hit, err := x.labels.getOrLabel(labelKey, func() (*dataset.Dataset, error) {
				d, err := core.PseudoLabel(ctx, resolved.model, smp, l, dim, labelSeed, req.ProbLabels, hooks)
				if err != nil {
					return nil, err
				}
				d.Discrete = train.Discrete
				return d, nil
			})
			if err != nil {
				return nil, err
			}
			labelHit.Store(hit)
			if hit {
				// The stage is already done (another variant or an
				// earlier job labeled it): report its full share so the
				// job-level counters still add up.
				hooks.OnLabelProgress(l, l)
			}
			cfg.checkpoints.labelStageDone(v.metamodel, trainer.key, labelKey, d)
			return d, nil
		},
		Hooks: hooks,
	}
	// A checkpointed labeled dataset under an exact cache key lets the
	// pipeline skip train/sample/label outright — the discover stage
	// validates on the real examples, so the metamodel itself is not
	// needed. Label keys are kernel-qualified, so a distilled request
	// tries its distilled key first and falls back to a full-kernel
	// dataset (always acceptable: full labels are the ground truth the
	// distilled kernel approximates); a full request never resumes from
	// distilled labels. Seed the label cache so later jobs over the same
	// data (and sibling variants) hit it.
	resumeKernels := []string{"full"}
	if req.effectiveLabelKernel() == "distilled" {
		resumeKernels = []string{"distilled", "full"}
	}
	for _, kernel := range resumeKernels {
		key := baseLabelKey + "|kernel=" + kernel
		pre := cfg.checkpoints.resumeLabeled(key)
		if pre == nil {
			continue
		}
		r.Prelabeled = pre
		// The checkpoint proves which kernel labeled the data, but the
		// distillation artifacts (fidelity, rules) were the previous
		// execution's; this variant reports the kernel only.
		resolved = kernelResolution{kernel: kernel}
		_, hit, err := x.labels.getOrLabel(key, func() (*dataset.Dataset, error) { return pre, nil })
		if err == nil {
			labelHit.Store(hit)
		}
		hooks.OnLabelProgress(l, l)
		break
	}
	res, err := r.DiscoverContext(ctx, train, train, rand.New(rand.NewSource(cfg.pipelineSeed)))
	timer.Stop() // close the discover span before the metric evaluation below
	out.CacheHit = trainer.hit.Load()
	out.LabelCacheHit = labelHit.Load()
	out.LabelKernel = resolved.kernel
	out.LabelFidelity = resolved.fidelity
	out.FallbackReason = resolved.fallbackReason
	out.Ruleset = resolved.rulesJSON
	if err != nil {
		out.Error = err.Error()
		return out
	}
	final := res.Final()
	if final == nil {
		out.Error = "discovery returned an empty trajectory"
		return out
	}
	out.Box = final
	out.Rule = final.String()
	out.Precision, out.Recall = metrics.PrecisionRecall(final, train)
	out.WRAcc = metrics.WRAcc(final, train)
	out.Trajectory = metrics.Trajectory(res, train)
	out.PRAUC = metrics.PRAUC(out.Trajectory)
	return out
}

// rankVariants sorts best-first: successful variants by WRAcc then PR
// AUC on the real examples, failed variants last.
func rankVariants(results []VariantResult) {
	sort.SliceStable(results, func(a, b int) bool {
		ra, rb := &results[a], &results[b]
		if (ra.Error == "") != (rb.Error == "") {
			return ra.Error == ""
		}
		if ra.WRAcc != rb.WRAcc {
			return ra.WRAcc > rb.WRAcc
		}
		return ra.PRAUC > rb.PRAUC
	})
}

// cachedTrainer adapts the engine cache to the metamodel.Trainer
// interface so core.REDS transparently reuses trained models. Training
// runs from its own seed rather than the pipeline RNG: that keeps the
// caller's stream in the same state whether the cache hits or misses,
// so a cached rerun reproduces the uncached run's sampling and SD
// stages exactly.
type cachedTrainer struct {
	cache *modelCache
	key   string
	seed  int64
	inner metamodel.Trainer
	hit   atomic.Bool
	// trainSeconds observes actual training latency (cache misses only)
	// under the variant's family and resolved mode labels.
	trainSeconds *telemetry.HistogramVec
	family, mode string
}

func (c *cachedTrainer) Name() string { return c.inner.Name() }

func (c *cachedTrainer) Train(d *dataset.Dataset, _ *rand.Rand) (metamodel.Model, error) {
	m, hit, err := c.cache.getOrTrain(c.key, func() (metamodel.Model, error) {
		start := time.Now()
		m, err := c.inner.Train(d, rand.New(rand.NewSource(c.seed)))
		if err == nil && c.trainSeconds != nil {
			c.trainSeconds.With(c.family, c.mode).Observe(time.Since(start).Seconds())
		}
		return m, err
	})
	c.hit.Store(hit)
	return m, err
}
