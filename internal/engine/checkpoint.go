package engine

import (
	"sync"
	"time"

	"github.com/reds-go/reds/internal/dataset"
)

// Checkpoint is a resumable snapshot of a partially executed request.
// The executor publishes one after every completed unit of reusable
// work (a family's pseudo-labeling, a finished variant); the engine
// persists the latest snapshot through the store, and on failover the
// dispatcher forwards it to the next candidate worker, which re-runs
// only what the checkpoint cannot prove finished.
//
// A checkpoint is self-validating: DatasetHash pins it to the training
// data, and the cache keys pin the labeled datasets to the exact
// model/sampler/seed tuple, so a worker never resumes from a snapshot
// computed under different inputs.
type Checkpoint struct {
	// Seq orders snapshots of one job. It increases monotonically across
	// executions — a resumed execution continues counting from the
	// inbound checkpoint's Seq — so consumers can keep the newest
	// snapshot by comparing Seq alone.
	Seq uint64 `json:"seq"`
	// DatasetHash is the content hash of the training data the snapshot
	// was computed from. A worker ignores a checkpoint whose hash does
	// not match its own resolved training data.
	DatasetHash string `json:"dataset_hash"`
	// Variants holds the finished variant results; a resuming worker
	// reuses them verbatim and re-runs only the missing combinations.
	Variants []VariantResult `json:"variants,omitempty"`
	// Timings are the pipeline spans closed before the snapshot was
	// taken. A resuming worker preloads them into its own trace, so the
	// job's final timings are the union of every execution's spans with
	// no duplicates for skipped work.
	Timings []StageTiming `json:"timings,omitempty"`
	// ModelKeys maps metamodel family → model-cache key: a warm resuming
	// worker hits its cache under the same key.
	ModelKeys map[string]string `json:"model_keys,omitempty"`
	// LabelKeys maps metamodel family → content-addressed label-dataset
	// cache key (see internal/engine/cache.go for the key scheme).
	LabelKeys map[string]string `json:"label_keys,omitempty"`
	// Labeled inlines the pseudo-labeled datasets themselves, per
	// family, up to the executor's checkpoint byte budget. This is what
	// lets a cold replacement worker skip the train/sample/label stages
	// entirely: the discover stage needs only Dnew and the real
	// validation data, not the trained model. Families whose dataset did
	// not fit the budget keep only their keys — a warm worker still
	// hits its caches, a cold one recomputes.
	Labeled map[string]*dataset.Dataset `json:"labeled,omitempty"`
	// ElapsedSeconds accumulates the wall-clock time every execution of
	// the job has spent so far. A resumed execution subtracts it from
	// the request's deadline budget, so a job deadline bounds the job —
	// not each failover attempt separately.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// checkpointRecorder accumulates one execution's reusable work and
// publishes immutable Checkpoint snapshots through the progress sink.
// It is seeded from the inbound checkpoint (if any), so snapshots
// survive chained failovers: work finished two executions ago is still
// in the checkpoint the third execution publishes.
type checkpointRecorder struct {
	mu          sync.Mutex
	sink        *progressSink
	seq         uint64
	datasetHash string
	// budgetLeft bounds the total bytes of inline labeled datasets.
	budgetLeft int64
	variants   []VariantResult
	modelKeys  map[string]string
	labelKeys  map[string]string
	labeled    map[string]*dataset.Dataset
	// inbound maps label-cache key → dataset from the checkpoint this
	// execution resumed from. Keying by the full cache key (rather than
	// family) makes the lookup self-validating: if this worker computes
	// a different key — different seed, sampler, L — the stale dataset
	// is simply not found and the stage recomputes.
	inbound map[string]*dataset.Dataset
	// start anchors this execution's contribution to ElapsedSeconds;
	// baseElapsed carries what earlier executions already spent.
	start       time.Time
	baseElapsed float64
}

// newCheckpointRecorder seeds a recorder for one execution. cp is the
// inbound checkpoint (nil for a fresh run) — its hash must already be
// validated by the caller.
func newCheckpointRecorder(cp *Checkpoint, datasetHash string, budget int64, sink *progressSink) *checkpointRecorder {
	r := &checkpointRecorder{
		sink:        sink,
		datasetHash: datasetHash,
		budgetLeft:  budget,
		modelKeys:   make(map[string]string),
		labelKeys:   make(map[string]string),
		labeled:     make(map[string]*dataset.Dataset),
		inbound:     make(map[string]*dataset.Dataset),
		start:       time.Now(),
	}
	if cp == nil {
		return r
	}
	r.seq = cp.Seq
	r.baseElapsed = cp.ElapsedSeconds
	r.variants = append(r.variants, cp.Variants...)
	for fam, k := range cp.ModelKeys {
		r.modelKeys[fam] = k
	}
	for fam, k := range cp.LabelKeys {
		r.labelKeys[fam] = k
		if d := cp.Labeled[fam]; d != nil {
			r.inbound[k] = d
			// Carry the inline dataset forward so the next failover can
			// still resume cold; it already fit the previous budget.
			r.labeled[fam] = d
			r.budgetLeft -= datasetBytes(d)
		}
	}
	return r
}

// resumeLabeled returns the inbound checkpoint's labeled dataset for
// the given label-cache key, or nil when the checkpoint has none (or
// was computed under different inputs).
func (r *checkpointRecorder) resumeLabeled(labelKey string) *dataset.Dataset {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inbound[labelKey]
}

// labelStageDone records that a family's pseudo-labeling finished (keys
// always; the dataset itself while the byte budget lasts) and publishes
// a new snapshot. Idempotent per family — concurrent variants of one
// family record once.
func (r *checkpointRecorder) labelStageDone(family, modelKey, labelKey string, d *dataset.Dataset) {
	r.mu.Lock()
	if _, ok := r.labelKeys[family]; ok {
		r.mu.Unlock()
		return
	}
	r.modelKeys[family] = modelKey
	r.labelKeys[family] = labelKey
	if d != nil {
		if w := datasetBytes(d); w <= r.budgetLeft {
			r.labeled[family] = d
			r.budgetLeft -= w
		}
	}
	cp := r.snapshotLocked()
	r.mu.Unlock()
	r.sink.setCheckpoint(cp)
}

// variantDone records a finished variant and publishes a new snapshot.
func (r *checkpointRecorder) variantDone(vr VariantResult) {
	r.mu.Lock()
	r.variants = append(r.variants, vr)
	cp := r.snapshotLocked()
	r.mu.Unlock()
	r.sink.setCheckpoint(cp)
}

// snapshotLocked builds an immutable Checkpoint from the current state.
// Timings are filled in by the sink at publish time, so the snapshot's
// trace exactly matches the progress it travels with. Caller holds
// r.mu.
func (r *checkpointRecorder) snapshotLocked() *Checkpoint {
	r.seq++
	cp := &Checkpoint{
		Seq:            r.seq,
		DatasetHash:    r.datasetHash,
		Variants:       append([]VariantResult(nil), r.variants...),
		ModelKeys:      make(map[string]string, len(r.modelKeys)),
		LabelKeys:      make(map[string]string, len(r.labelKeys)),
		ElapsedSeconds: r.baseElapsed + time.Since(r.start).Seconds(),
	}
	for fam, k := range r.modelKeys {
		cp.ModelKeys[fam] = k
	}
	for fam, k := range r.labelKeys {
		cp.LabelKeys[fam] = k
	}
	if len(r.labeled) > 0 {
		cp.Labeled = make(map[string]*dataset.Dataset, len(r.labeled))
		for fam, d := range r.labeled {
			cp.Labeled[fam] = d
		}
	}
	return cp
}
