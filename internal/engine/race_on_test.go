//go:build race

package engine

// See race_off_test.go: the race detector slows execution ~5-10x, so
// wall-clock assertion windows widen accordingly.
const raceDetectorSlowdown = 5
