package engine

import (
	"fmt"
	"math/rand"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/gbt"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/rf"
)

// trainGateSeedOffset derives a family's train-mode gate seed from its
// training seed. Like labelSeedOffset and distillSeedOffset it is chosen
// to never collide (mod variantSeedStride) with any other seeded stream
// of the job, so the gate's holdout split is independent of training,
// labeling and distillation draws.
const trainGateSeedOffset = 4007

// trainResolution is the outcome of choosing a training mode for one
// metamodel family of a job: the mode that actually trains, the quality
// the gate measured (when one ran), and the reason a requested binned
// mode was not used (if it was not).
type trainResolution struct {
	// mode is "exact" or "binned" — the mode that trains, after any
	// fallback.
	mode string
	// quality is the gate model's holdout accuracy (0 when no gate ran:
	// exact requests, or unsupported families).
	quality float64
	// fallbackReason is non-empty when a requested binned mode was not
	// used ("unsupported", "quality ... below threshold ...").
	fallbackReason string
}

// resolveTrainMode picks the training mode for one metamodel family of a
// request. Exact requests short-circuit; binned requests train a cheap
// default-configuration binned model on an 80/20 split of the training
// data and gate it behind the holdout-quality threshold. Every path that
// cannot honor a binned request counts one fallback and trains the exact
// way — a job never fails because the fast path did, it just trains the
// slow way and says so. Resolutions are cached per (family, data, knobs)
// so sibling variants and repeat jobs gate once.
func (x *LocalExecutor) resolveTrainMode(req Request, family string, train *dataset.Dataset, hash string, trainSeed int64) trainResolution {
	if req.effectiveTrainMode(x.trainMode) != "binned" {
		return trainResolution{mode: "exact"}
	}
	if family == "svm" {
		// The SVM path has no tree growth to bin; the quantization would
		// change its kernel geometry, not speed it up.
		x.mTrainFallback.Inc()
		return trainResolution{mode: "exact", fallbackReason: "unsupported"}
	}
	bins := req.effectiveTrainBins(x.trainBins)
	threshold := req.effectiveTrainQuality(x.trainQuality)
	key := fmt.Sprintf("%s|%s|bins=%d|q=%g|seed=%d", hash, family, bins, threshold, trainSeed)

	x.trainModeMu.Lock()
	if res, ok := x.trainModes[key]; ok {
		x.trainModeMu.Unlock()
		return res
	}
	x.trainModeMu.Unlock()

	res := x.gateTrainMode(family, train, bins, threshold, trainSeed+trainGateSeedOffset)
	if res.fallbackReason != "" {
		x.mTrainFallback.Inc()
	}
	x.trainModeMu.Lock()
	x.trainModes[key] = res
	x.trainModeMu.Unlock()
	return res
}

// gateTrainMode trains the family's default-configuration binned model
// on 80% of the training data and measures its holdout accuracy against
// the threshold. The gate is deliberately small — one untuned ensemble —
// so clearing it costs a fraction of the tuned grid it unlocks.
func (x *LocalExecutor) gateTrainMode(family string, train *dataset.Dataset, bins int, threshold float64, gateSeed int64) trainResolution {
	rng := rand.New(rand.NewSource(gateSeed))
	fit, holdout := dataset.Split(train, 0.2, rng)
	var gate metamodel.Trainer
	switch family {
	case "xgb":
		gate = &gbt.BinnedTrainer{Bins: bins}
	default: // "rf"
		gate = &rf.BinnedTrainer{Bins: bins}
	}
	m, err := gate.Train(fit, rng)
	if err != nil {
		return trainResolution{mode: "exact", fallbackReason: "error: " + err.Error()}
	}
	quality := metamodel.Accuracy(m, holdout)
	if quality < threshold {
		return trainResolution{
			mode:           "exact",
			quality:        quality,
			fallbackReason: fmt.Sprintf("quality %.4f below threshold %.4g", quality, threshold),
		}
	}
	return trainResolution{mode: "binned", quality: quality}
}
