package store

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Mem is the in-process Store: plain maps behind a mutex, no files. An
// engine over a Mem store behaves exactly like the pre-store engine —
// state dies with the process. It is also the reference implementation
// the FS store is tested against.
type Mem struct {
	mu          sync.Mutex
	jobs        map[string]Record
	results     map[string]json.RawMessage
	metas       map[string]json.RawMessage
	checkpoints map[string]json.RawMessage
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		jobs:        make(map[string]Record),
		results:     make(map[string]json.RawMessage),
		metas:       make(map[string]json.RawMessage),
		checkpoints: make(map[string]json.RawMessage),
	}
}

// PutMeta implements Store.
func (m *Mem) PutMeta(key string, value json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.metas[key] = append(json.RawMessage(nil), value...)
	return nil
}

// GetMeta implements Store.
func (m *Mem) GetMeta(key string) (json.RawMessage, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.metas[key]
	if !ok {
		return nil, false, nil
	}
	return append(json.RawMessage(nil), v...), true, nil
}

// PutJob implements Store.
func (m *Mem) PutJob(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec.Request == nil {
		if old, ok := m.jobs[rec.ID]; ok {
			rec.Request = old.Request
		}
	} else {
		rec.Request = append(json.RawMessage(nil), rec.Request...)
	}
	m.jobs[rec.ID] = rec
	return nil
}

// PutResult implements Store.
func (m *Mem) PutResult(id string, result json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.results[id] = append(json.RawMessage(nil), result...)
	return nil
}

// GetResult implements Store.
func (m *Mem) GetResult(id string) (json.RawMessage, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	res, ok := m.results[id]
	if !ok {
		return nil, false, nil
	}
	return append(json.RawMessage(nil), res...), true, nil
}

// List implements Store.
func (m *Mem) List() ([]Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedRecords(m.jobs), nil
}

// Delete implements Store.
func (m *Mem) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.jobs, id)
	delete(m.results, id)
	delete(m.checkpoints, id)
	return nil
}

// Sweep implements Store.
func (m *Mem) Sweep(cutoff time.Time) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	expired := expiredIDs(m.jobs, cutoff)
	for _, id := range expired {
		delete(m.jobs, id)
		delete(m.results, id)
		delete(m.checkpoints, id)
	}
	return expired, nil
}

// PutCheckpoint implements Store.
func (m *Mem) PutCheckpoint(id string, cp json.RawMessage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(cp) == 0 {
		delete(m.checkpoints, id)
		return nil
	}
	m.checkpoints[id] = append(json.RawMessage(nil), cp...)
	return nil
}

// GetCheckpoint implements Store.
func (m *Mem) GetCheckpoint(id string) (json.RawMessage, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp, ok := m.checkpoints[id]
	if !ok {
		return nil, false, nil
	}
	return append(json.RawMessage(nil), cp...), true, nil
}

// Close implements Store; it is a no-op for Mem.
func (m *Mem) Close() error { return nil }

// sortedRecords copies a record map into a slice ordered by SubmittedAt,
// ties broken by ID, so List is deterministic for both implementations.
func sortedRecords(jobs map[string]Record) []Record {
	out := make([]Record, 0, len(jobs))
	for _, rec := range jobs {
		rec.Request = append(json.RawMessage(nil), rec.Request...)
		out = append(out, rec)
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].SubmittedAt.Equal(out[b].SubmittedAt) {
			return out[a].SubmittedAt.Before(out[b].SubmittedAt)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// expiredIDs returns the sorted ids of terminal records finished before
// cutoff.
func expiredIDs(jobs map[string]Record, cutoff time.Time) []string {
	var expired []string
	for id, rec := range jobs {
		if rec.Terminal() && rec.FinishedAt.Before(cutoff) {
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	return expired
}
