package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts FSOptions) *FS {
	t.Helper()
	s, err := OpenFS(dir, opts)
	if err != nil {
		t.Fatalf("OpenFS(%s): %v", dir, err)
	}
	return s
}

// TestFSReplay closes a store and reopens the directory: the full state
// — records, upserts, results, deletes — must come back.
func TestFSReplay(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)

	s := mustOpen(t, dir, FSOptions{})
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		if err := s.PutJob(rec(id, "pending", t0)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// Transition upserts carry a nil Request; replay must merge the
	// stored request back in.
	done := rec("job-2", "done", t0)
	done.FinishedAt = t0.Add(time.Minute)
	done.Request = nil
	if err := s.PutJob(done); err != nil {
		t.Fatalf("upsert: %v", err)
	}
	if err := s.PutResult("job-2", json.RawMessage(`{"best":{"rule":"x <= 1"}}`)); err != nil {
		t.Fatalf("put result: %v", err)
	}
	if err := s.Delete("job-3"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := mustOpen(t, dir, FSOptions{})
	defer re.Close()
	recs, err := re.List()
	if err != nil {
		t.Fatalf("list after reopen: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2: %+v", len(recs), recs)
	}
	byID := map[string]Record{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	if byID["job-1"].Status != "pending" || byID["job-2"].Status != "done" {
		t.Fatalf("replayed statuses wrong: %+v", byID)
	}
	if string(byID["job-2"].Request) != `{"function":"morris","n":10}` {
		t.Fatalf("replay lost the request of a nil-request transition: %q", byID["job-2"].Request)
	}
	res, ok, err := re.GetResult("job-2")
	if err != nil || !ok || !strings.Contains(string(res), "x <= 1") {
		t.Fatalf("result after reopen = %s ok=%v err=%v", res, ok, err)
	}
	if re.Skipped() != 0 {
		t.Fatalf("clean reopen skipped %d lines", re.Skipped())
	}
}

// TestFSCrashReplayWithoutClose reopens a directory whose store was
// never Closed (no final compaction): replay comes purely from the
// write-ahead log.
func TestFSCrashReplayWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, FSOptions{})
	if err := s.PutJob(rec("job-1", "running", time.Now())); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Simulate a crash: drop the handle without Close. The wal fsync on
	// append means the entry is already on disk.
	re := mustOpen(t, dir, FSOptions{})
	defer re.Close()
	recs, _ := re.List()
	if len(recs) != 1 || recs[0].ID != "job-1" || recs[0].Status != "running" {
		t.Fatalf("crash replay lost state: %+v", recs)
	}
}

// TestFSTornTail appends a partial line to the log — the footprint of a
// crash mid-write — and asserts the store recovers the complete prefix,
// truncates the garbage, and keeps accepting appends.
func TestFSTornTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, FSOptions{})
	if err := s.PutJob(rec("job-1", "pending", time.Now())); err != nil {
		t.Fatalf("put: %v", err)
	}
	// No Close: the snapshot stays empty, everything lives in the log.
	walPath := filepath.Join(dir, walFile)
	wal, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("opening wal: %v", err)
	}
	if _, err := wal.WriteString(`{"op":"job","job":{"id":"job-torn","sta`); err != nil {
		t.Fatalf("appending torn line: %v", err)
	}
	wal.Close()

	re := mustOpen(t, dir, FSOptions{})
	recs, _ := re.List()
	if len(recs) != 1 || recs[0].ID != "job-1" {
		t.Fatalf("torn-tail replay = %+v, want only job-1", recs)
	}
	if re.Skipped() != 0 {
		t.Fatalf("torn tail counted as corruption (skipped=%d), should be truncated", re.Skipped())
	}
	// The tail must be gone from disk so the next append starts clean.
	raw, _ := os.ReadFile(walPath)
	if strings.Contains(string(raw), "job-torn") {
		t.Fatalf("torn tail still on disk: %s", raw)
	}
	if err := re.PutJob(rec("job-2", "pending", time.Now())); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	re.Close()

	final := mustOpen(t, dir, FSOptions{})
	defer final.Close()
	recs, _ = final.List()
	if len(recs) != 2 {
		t.Fatalf("post-truncation state = %+v, want 2 records", recs)
	}
}

// TestFSCorruptMidLine damages a complete line in the middle of the log:
// the store must skip it, count it, and keep the rest.
func TestFSCorruptMidLine(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, FSOptions{})
	_ = s.PutJob(rec("job-1", "pending", time.Now()))
	_ = s.PutJob(rec("job-2", "pending", time.Now()))

	walPath := filepath.Join(dir, walFile)
	raw, _ := os.ReadFile(walPath)
	lines := strings.SplitAfter(string(raw), "\n")
	lines[0] = strings.Replace(lines[0], `"op":"job"`, `"op:"job"`, 1) // break JSON
	if err := os.WriteFile(walPath, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatalf("rewriting wal: %v", err)
	}

	re := mustOpen(t, dir, FSOptions{})
	defer re.Close()
	recs, _ := re.List()
	if len(recs) != 1 || recs[0].ID != "job-2" {
		t.Fatalf("corrupt-line replay = %+v, want only job-2", recs)
	}
	if re.Skipped() != 1 {
		t.Fatalf("skipped = %d, want 1", re.Skipped())
	}
}

// TestFSCompaction drives the log past CompactEvery and asserts the
// state folds into the snapshot, the log empties, and reopen still sees
// everything.
func TestFSCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, FSOptions{CompactEvery: 4})
	t0 := time.Now()
	for i, id := range []string{"job-1", "job-2", "job-3", "job-4", "job-5"} {
		if err := s.PutJob(rec(id, "pending", t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatalf("put %s: %v", id, err)
		}
	}
	// 5 appends with CompactEvery=4: at least one compaction happened.
	snap, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil || len(snap) == 0 {
		t.Fatalf("no snapshot written after compaction threshold: %v", err)
	}
	wal, _ := os.ReadFile(filepath.Join(dir, walFile))
	if strings.Count(string(wal), "\n") >= 5 {
		t.Fatalf("log not truncated by compaction: %d bytes", len(wal))
	}
	s.Close()

	re := mustOpen(t, dir, FSOptions{})
	defer re.Close()
	recs, _ := re.List()
	if len(recs) != 5 {
		t.Fatalf("after compaction+reopen: %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if want := []string{"job-1", "job-2", "job-3", "job-4", "job-5"}[i]; r.ID != want {
			t.Fatalf("order after compaction: got %s at %d, want %s", r.ID, i, want)
		}
	}
}

// TestFSCompactionOnOpen reopens a never-closed directory whose log
// already exceeds the threshold: open itself must fold it into the
// snapshot so repeated crash-restarts cannot grow the log forever.
func TestFSCompactionOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, FSOptions{CompactEvery: 100})
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		_ = s.PutJob(rec(id, "pending", time.Now()))
	}
	// No Close: wal has 3 entries, snapshot none.
	re := mustOpen(t, dir, FSOptions{CompactEvery: 2})
	defer re.Close()
	snap, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil || len(snap) == 0 {
		t.Fatalf("open did not compact an oversized log: %v", err)
	}
	wal, _ := os.ReadFile(filepath.Join(dir, walFile))
	if len(wal) != 0 {
		t.Fatalf("log not truncated by open-time compaction: %d bytes", len(wal))
	}
	recs, _ := re.List()
	if len(recs) != 3 {
		t.Fatalf("open-time compaction lost records: %+v", recs)
	}
}

// TestFSMeta exercises the meta namespace: roundtrip, overwrite,
// survival across reopen and compaction, isolation from List/Sweep.
func TestFSMeta(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, FSOptions{CompactEvery: 3})
	if _, ok, err := s.GetMeta("next_id"); ok || err != nil {
		t.Fatalf("meta before put: ok=%v err=%v", ok, err)
	}
	if err := s.PutMeta("next_id", json.RawMessage(`7`)); err != nil {
		t.Fatalf("put meta: %v", err)
	}
	if err := s.PutMeta("next_id", json.RawMessage(`9`)); err != nil {
		t.Fatalf("overwrite meta: %v", err)
	}
	// Push past CompactEvery so the meta must survive the snapshot.
	t0 := time.Now()
	old := rec("job-1", "done", t0)
	old.FinishedAt = t0
	_ = s.PutJob(old)
	_ = s.PutJob(rec("job-2", "pending", t0))
	if recs, _ := s.List(); len(recs) != 2 {
		t.Fatalf("meta leaked into List: %+v", recs)
	}
	if _, err := s.Sweep(t0.Add(time.Hour)); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	s.Close()

	re := mustOpen(t, dir, FSOptions{})
	defer re.Close()
	v, ok, err := re.GetMeta("next_id")
	if err != nil || !ok || string(v) != "9" {
		t.Fatalf("meta after sweep+compaction+reopen = %s ok=%v err=%v, want 9", v, ok, err)
	}
}

// TestFSInterruptedCompaction plants a leftover snapshot temp file (a
// compaction that crashed before rename) and asserts open ignores it.
func TestFSInterruptedCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, FSOptions{})
	_ = s.PutJob(rec("job-1", "pending", time.Now()))
	if err := os.WriteFile(filepath.Join(dir, snapshotFile+".tmp"), []byte("half-written gar"), 0o644); err != nil {
		t.Fatalf("planting tmp: %v", err)
	}
	re := mustOpen(t, dir, FSOptions{})
	defer re.Close()
	recs, _ := re.List()
	if len(recs) != 1 {
		t.Fatalf("tmp leftover broke replay: %+v", recs)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp not cleaned up")
	}
}

// TestFSSweepSurvivesReopen sweeps, reopens, and asserts the swept
// records stay gone (the deletes were logged).
func TestFSSweepSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	s := mustOpen(t, dir, FSOptions{})
	old := rec("job-old", "done", t0)
	old.FinishedAt = t0
	_ = s.PutJob(old)
	_ = s.PutResult("job-old", json.RawMessage(`{}`))
	_ = s.PutJob(rec("job-live", "pending", t0))
	if swept, err := s.Sweep(t0.Add(time.Hour)); err != nil || len(swept) != 1 {
		t.Fatalf("sweep = %v, %v", swept, err)
	}
	// No Close — the delete must already be durable in the log.
	re := mustOpen(t, dir, FSOptions{})
	defer re.Close()
	recs, _ := re.List()
	if len(recs) != 1 || recs[0].ID != "job-live" {
		t.Fatalf("sweep not durable: %+v", recs)
	}
	if _, ok, _ := re.GetResult("job-old"); ok {
		t.Fatalf("swept result resurrected")
	}
}

// TestFSFsyncIntervalDurableAfterClose exercises the batched-fsync mode
// end to end: appends are acknowledged without a per-append sync, the
// background flusher (or Close at the latest) syncs them, and a reopen
// serves the full state back.
func TestFSFsyncIntervalDurableAfterClose(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)

	s := mustOpen(t, dir, FSOptions{FsyncInterval: 10 * time.Millisecond})
	for i := 0; i < 50; i++ {
		if err := s.PutJob(rec(fmt.Sprintf("job-%03d", i), "pending", t0)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := s.PutResult("job-001", json.RawMessage(`{"ok":true}`)); err != nil {
		t.Fatalf("put result: %v", err)
	}
	// Give the flusher a couple of windows, then close (which performs
	// the final error-checked sync regardless).
	time.Sleep(30 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := mustOpen(t, dir, FSOptions{})
	defer re.Close()
	recs, err := re.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(recs) != 50 {
		t.Fatalf("reopened %d records, want 50", len(recs))
	}
	if raw, ok, _ := re.GetResult("job-001"); !ok || string(raw) != `{"ok":true}` {
		t.Fatalf("result lost across batched-fsync close: ok=%v raw=%s", ok, raw)
	}
}

// TestFSFsyncIntervalConcurrent hammers a batched-fsync store from
// several goroutines while the flusher runs — meaningful under -race.
func TestFSFsyncIntervalConcurrent(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	s := mustOpen(t, dir, FSOptions{FsyncInterval: time.Millisecond, CompactEvery: 64})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("job-%d-%03d", w, i)
				if err := s.PutJob(rec(id, "pending", t0)); err != nil {
					t.Errorf("put %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re := mustOpen(t, dir, FSOptions{})
	defer re.Close()
	recs, _ := re.List()
	if len(recs) != 200 {
		t.Fatalf("reopened %d records, want 200", len(recs))
	}
}
