package store

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/reds-go/reds/internal/faultinject"
)

func TestCheckpointRoundtrip(t *testing.T) {
	implementations(t, func(t *testing.T, s Store) {
		if _, ok, err := s.GetCheckpoint("job-1"); ok || err != nil {
			t.Fatalf("checkpoint of unknown job: ok=%v err=%v", ok, err)
		}
		if err := s.PutJob(rec("job-1", "running", time.Now())); err != nil {
			t.Fatalf("put job: %v", err)
		}
		cp1 := json.RawMessage(`{"seq":1,"dataset_hash":"abc"}`)
		if err := s.PutCheckpoint("job-1", cp1); err != nil {
			t.Fatalf("put checkpoint: %v", err)
		}
		got, ok, err := s.GetCheckpoint("job-1")
		if err != nil || !ok || string(got) != string(cp1) {
			t.Fatalf("get checkpoint = %s ok=%v err=%v, want %s", got, ok, err, cp1)
		}

		// Overwrite wins.
		cp2 := json.RawMessage(`{"seq":2,"dataset_hash":"abc"}`)
		if err := s.PutCheckpoint("job-1", cp2); err != nil {
			t.Fatalf("overwrite checkpoint: %v", err)
		}
		if got, _, _ := s.GetCheckpoint("job-1"); string(got) != string(cp2) {
			t.Fatalf("after overwrite: %s, want %s", got, cp2)
		}

		// Checkpoints are invisible to the job listing.
		recs, err := s.List()
		if err != nil || len(recs) != 1 || recs[0].ID != "job-1" {
			t.Fatalf("list with checkpoint = %+v err=%v, want only job-1", recs, err)
		}

		// Empty payload deletes.
		if err := s.PutCheckpoint("job-1", nil); err != nil {
			t.Fatalf("delete checkpoint: %v", err)
		}
		if _, ok, _ := s.GetCheckpoint("job-1"); ok {
			t.Fatalf("checkpoint survived its deletion")
		}
		// Deleting a missing checkpoint is a no-op.
		if err := s.PutCheckpoint("job-1", nil); err != nil {
			t.Fatalf("double-delete checkpoint: %v", err)
		}
	})
}

func TestCheckpointDiesWithJob(t *testing.T) {
	implementations(t, func(t *testing.T, s Store) {
		cp := json.RawMessage(`{"seq":3}`)
		if err := s.PutJob(rec("job-1", "running", time.Now())); err != nil {
			t.Fatalf("put job: %v", err)
		}
		if err := s.PutCheckpoint("job-1", cp); err != nil {
			t.Fatalf("put checkpoint: %v", err)
		}
		if err := s.Delete("job-1"); err != nil {
			t.Fatalf("delete job: %v", err)
		}
		if _, ok, _ := s.GetCheckpoint("job-1"); ok {
			t.Fatalf("checkpoint outlived its deleted job")
		}

		// Sweep removes the checkpoint alongside the expired job.
		old := rec("job-2", "done", time.Now().Add(-2*time.Hour))
		old.FinishedAt = time.Now().Add(-time.Hour)
		if err := s.PutJob(old); err != nil {
			t.Fatalf("put job: %v", err)
		}
		if err := s.PutCheckpoint("job-2", cp); err != nil {
			t.Fatalf("put checkpoint: %v", err)
		}
		ids, err := s.Sweep(time.Now())
		if err != nil || len(ids) != 1 || ids[0] != "job-2" {
			t.Fatalf("sweep = %v err=%v, want [job-2]", ids, err)
		}
		if _, ok, _ := s.GetCheckpoint("job-2"); ok {
			t.Fatalf("checkpoint outlived its swept job")
		}
	})
}

// TestFSCheckpointCrashReplay asserts checkpoints survive both a crash
// (WAL replay, no Close) and a clean restart (snapshot compaction).
func TestFSCheckpointCrashReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, FSOptions{})
	cp := json.RawMessage(`{"seq":7,"dataset_hash":"deadbeef"}`)
	if err := s.PutJob(rec("job-1", "running", time.Now())); err != nil {
		t.Fatalf("put job: %v", err)
	}
	if err := s.PutCheckpoint("job-1", cp); err != nil {
		t.Fatalf("put checkpoint: %v", err)
	}

	// Crash: reopen without Close — the checkpoint replays from the WAL.
	re := mustOpen(t, dir, FSOptions{})
	got, ok, err := re.GetCheckpoint("job-1")
	if err != nil || !ok || string(got) != string(cp) {
		t.Fatalf("after crash replay: %s ok=%v err=%v, want %s", got, ok, err, cp)
	}
	re.Close() // compacts into the snapshot

	// Clean restart: the checkpoint now comes from the snapshot.
	final := mustOpen(t, dir, FSOptions{})
	defer final.Close()
	got, ok, err = final.GetCheckpoint("job-1")
	if err != nil || !ok || string(got) != string(cp) {
		t.Fatalf("after compacted reopen: %s ok=%v err=%v, want %s", got, ok, err, cp)
	}
}

// TestFSCheckpointTornWALFault arms the store.wal.torn injection point:
// the append must fail loudly, nothing must reach the in-memory state,
// and a reopen must truncate the torn tail and keep the complete prefix
// — the exact crash footprint the injector mimics.
func TestFSCheckpointTornWALFault(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, FSOptions{})
	if err := s.PutJob(rec("job-1", "running", time.Now())); err != nil {
		t.Fatalf("put job: %v", err)
	}

	if err := faultinject.Arm("store.wal.torn=1"); err != nil {
		t.Fatalf("arming: %v", err)
	}
	defer faultinject.Disarm()
	if err := s.PutCheckpoint("job-1", json.RawMessage(`{"seq":1}`)); err == nil {
		t.Fatalf("torn-write fault did not surface on the append")
	}
	if _, ok, _ := s.GetCheckpoint("job-1"); ok {
		t.Fatalf("failed append still applied the checkpoint in memory")
	}

	// Reopen over the half-written line, as a restart after the simulated
	// crash would: the torn tail is truncated, not counted as corruption.
	re := mustOpen(t, dir, FSOptions{})
	defer re.Close()
	recs, _ := re.List()
	if len(recs) != 1 || recs[0].ID != "job-1" {
		t.Fatalf("replay over torn write = %+v, want only job-1", recs)
	}
	if _, ok, _ := re.GetCheckpoint("job-1"); ok {
		t.Fatalf("torn checkpoint write survived replay")
	}
	if re.Skipped() != 0 {
		t.Fatalf("torn write counted as corruption (skipped=%d), should be truncated", re.Skipped())
	}
	// The fault fired its once; the reopened store accepts appends again.
	if err := re.PutCheckpoint("job-1", json.RawMessage(`{"seq":2}`)); err != nil {
		t.Fatalf("append after torn write: %v", err)
	}
}
