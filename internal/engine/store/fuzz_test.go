package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplayWAL fuzzes crash recovery: OpenFS over an arbitrary
// wal.jsonl must never panic, must account for every unparseable line
// in Skipped(), and must reach a state it can re-persist — after Close
// (which compacts into the snapshot) a second open replays the store's
// own output with zero skipped lines and the same records.
func FuzzReplayWAL(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"op":"job","job":{"id":"j1","status":"pending","submitted_at":"2026-01-02T03:04:05Z","request":{"metamodels":["rf"]}}}` + "\n"),
		[]byte(`{"op":"job","job":{"id":"j1","status":"running","submitted_at":"2026-01-02T03:04:05Z"}}` + "\n" +
			`{"op":"result","id":"j1","result":{"ok":true}}` + "\n"),
		[]byte(`{"op":"job","job":{"id":"j2","status":"done","submitted_at":"2026-01-02T03:04:05Z","finished_at":"2026-01-02T03:05:00Z"}}` + "\n" +
			`{"op":"delete","id":"j2"}` + "\n"),
		[]byte(`{"op":"meta","id":"jobs.lastid","result":7}` + "\n" +
			`{"op":"checkpoint","id":"j3","result":{"stage":"labeled"}}` + "\n" +
			`{"op":"checkpoint","id":"j3"}` + "\n"),
		[]byte(`{"op":"unknown-op","id":"x"}` + "\n"),
		[]byte("garbage that is not json\n{\"op\":\"job\"}\n"),
		// Torn tail: a crash mid-append leaves a partial final line.
		[]byte(`{"op":"job","job":{"id":"torn","status":"pending","submitted_at":"2026-01-02T03:04:05Z"}}` + "\n" + `{"op":"job","job":{"id":"t`),
		[]byte("\n\n\n"),
		[]byte(nil),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenFS(dir, FSOptions{NoSync: true})
		if err != nil {
			// I/O-level failure is a clean rejection; replay just must
			// not panic or corrupt anything it cannot read.
			return
		}
		recs, err := fs.List()
		if err != nil {
			t.Fatalf("List after replay: %v", err)
		}
		for _, r := range recs {
			if r.ID == "" {
				t.Fatalf("replay produced a record with an empty id: %+v", r)
			}
		}
		if fs.Skipped() < 0 {
			t.Fatalf("negative skipped count %d", fs.Skipped())
		}
		if err := fs.Close(); err != nil {
			t.Fatalf("close after replay: %v", err)
		}
		fs2, err := OpenFS(dir, FSOptions{NoSync: true})
		if err != nil {
			t.Fatalf("reopen after clean close: %v", err)
		}
		defer fs2.Close()
		if fs2.Skipped() != 0 {
			t.Fatalf("reopen skipped %d lines of the store's own snapshot", fs2.Skipped())
		}
		recs2, err := fs2.List()
		if err != nil {
			t.Fatalf("List after reopen: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("reopen changed record count: %d -> %d", len(recs), len(recs2))
		}
	})
}
