package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/reds-go/reds/internal/faultinject"
	"github.com/reds-go/reds/internal/telemetry"
)

// File layout of an FS store directory:
//
//	snapshot.jsonl   compacted full state, rewritten atomically
//	wal.jsonl        write-ahead log of entries since the snapshot
//
// Every mutation appends one JSON line to the write-ahead log (fsynced
// by default) before it is acknowledged. Open replays the snapshot and
// then the log; a partial trailing line — the footprint of a crash
// mid-append — is discarded and truncated away, which is exactly the
// WAL contract: an append whose write never completed was never
// acknowledged to the engine. Once the log grows past CompactEvery
// entries it is folded into a fresh snapshot (written to a temp file,
// fsynced, renamed) and truncated.
const (
	snapshotFile = "snapshot.jsonl"
	walFile      = "wal.jsonl"

	opJob        = "job"
	opResult     = "result"
	opDelete     = "delete"
	opMeta       = "meta"
	opCheckpoint = "checkpoint"
)

// faultWALTorn is the fault-injection point for torn log writes: when
// armed (value "once" by convention), one append writes only half of
// its buffer and fails, simulating a crash mid-write. Replay must
// truncate the torn tail away.
const faultWALTorn = "store.wal.torn"

// walEntry is one JSON line of the log or the snapshot.
type walEntry struct {
	Op     string          `json:"op"`
	Job    *Record         `json:"job,omitempty"`
	ID     string          `json:"id,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// FSOptions tune the file store.
type FSOptions struct {
	// CompactEvery folds the write-ahead log into the snapshot after
	// this many appended entries (default 4096).
	CompactEvery int
	// NoSync skips the per-append fsync. Appends then survive process
	// crashes (the OS page cache holds them) but not power loss; meant
	// for tests and throwaway stores.
	NoSync bool
	// FsyncInterval > 0 coalesces fsyncs: appends return after the
	// write() and a background flusher syncs the log at most once per
	// interval, so a burst of submissions shares a handful of flushes
	// instead of serializing on one disk flush each. The durability
	// window widens accordingly — a power loss can drop up to one
	// interval of acknowledged appends (ordinary process crashes lose
	// nothing; the page cache survives them). 0 keeps the historical
	// fsync-per-append behavior. Ignored when NoSync is set.
	FsyncInterval time.Duration
	// Metrics is the registry for the store's instruments (WAL append
	// and fsync latency, snapshot duration, replay counters, log
	// length). nil gets a private registry.
	Metrics *telemetry.Registry
}

func (o FSOptions) withDefaults() FSOptions {
	if o.CompactEvery <= 0 {
		o.CompactEvery = 4096
	}
	return o
}

// FS is the durable Store: an in-memory mirror of the current state
// (reads never touch the disk) fronted by the append-only log described
// above.
type FS struct {
	dir  string
	opts FSOptions

	// flushDone stops the background flusher of a batched-fsync store;
	// flushStop makes Close idempotent about it.
	flushDone chan struct{}
	flushStop sync.Once
	flushWG   sync.WaitGroup

	// Durability instruments; created before replay so startup work is
	// visible too.
	mAppends       *telemetry.Counter
	mFsync         *telemetry.Histogram
	mSnapshot      *telemetry.Histogram
	mCompactions   *telemetry.Counter
	mReplayEntries *telemetry.Counter
	mReplaySkipped *telemetry.Counter

	mu          sync.Mutex
	wal         *os.File
	walCount    int
	dirty       bool // unsynced log appends (batched-fsync mode only)
	jobs        map[string]Record
	results     map[string]json.RawMessage
	metas       map[string]json.RawMessage
	checkpoints map[string]json.RawMessage
	skipped     int
}

// OpenFS opens (creating if needed) a file store in dir and replays its
// state. A directory left behind by a crashed process is recovered: the
// snapshot is loaded, the log replayed on top, and a torn trailing
// write truncated away.
func OpenFS(dir string, opts FSOptions) (*FS, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	f := &FS{
		dir:         dir,
		opts:        opts,
		jobs:        make(map[string]Record),
		results:     make(map[string]json.RawMessage),
		metas:       make(map[string]json.RawMessage),
		checkpoints: make(map[string]json.RawMessage),
		mAppends: reg.Counter("reds_store_wal_appends_total",
			"Entries appended to the write-ahead log."),
		mFsync: reg.Histogram("reds_store_fsync_seconds",
			"Latency of write-ahead log fsync calls.",
			telemetry.ExponentialBuckets(0.0001, 4, 10)),
		mSnapshot: reg.Histogram("reds_store_snapshot_seconds",
			"Duration of snapshot compactions (marshal, write, fsync, rename, log truncate).",
			telemetry.ExponentialBuckets(0.001, 4, 10)),
		mCompactions: reg.Counter("reds_store_compactions_total",
			"Snapshot compactions completed."),
		mReplayEntries: reg.Counter("reds_store_replay_entries_total",
			"Snapshot and log entries replayed at open."),
		mReplaySkipped: reg.Counter("reds_store_replay_skipped_total",
			"Corrupt lines skipped during replay."),
	}
	reg.GaugeFunc("reds_store_wal_length_entries",
		"Entries currently in the write-ahead log since the last compaction.",
		func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(f.walCount)
		})
	// A leftover temp snapshot is an interrupted compaction that never
	// renamed into place; the snapshot+log pair is still authoritative.
	_ = os.Remove(filepath.Join(dir, snapshotFile+".tmp"))

	if err := f.replayFile(filepath.Join(dir, snapshotFile), false); err != nil {
		return nil, err
	}
	if err := f.replayFile(filepath.Join(dir, walFile), true); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening log: %w", err)
	}
	f.wal = wal
	// A process that crash-restarts repeatedly may never reach the
	// in-flight compaction threshold; fold an oversized replayed log
	// into the snapshot now so it cannot grow without bound.
	if f.walCount >= f.opts.CompactEvery {
		if err := f.compactLocked(); err != nil {
			wal.Close()
			return nil, err
		}
	}
	if f.opts.FsyncInterval > 0 && !f.opts.NoSync {
		f.flushDone = make(chan struct{})
		f.flushWG.Add(1)
		go f.flusher()
	}
	return f, nil
}

// flusher syncs batched log appends once per FsyncInterval. Sync errors
// here are swallowed — the appends are already acknowledged and stay in
// the page cache; Close performs a final, error-checked sync.
func (f *FS) flusher() {
	defer f.flushWG.Done()
	t := time.NewTicker(f.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-f.flushDone:
			return
		case <-t.C:
			f.mu.Lock()
			if f.dirty {
				if err := f.syncWAL(); err == nil {
					f.dirty = false
				}
			}
			f.mu.Unlock()
		}
	}
}

// stopFlusher halts the background flusher, if any, and waits for it.
// Must be called without holding mu (the flusher takes it).
func (f *FS) stopFlusher() {
	if f.flushDone == nil {
		return
	}
	f.flushStop.Do(func() { close(f.flushDone) })
	f.flushWG.Wait()
}

// replayFile applies every complete entry of a JSONL file to the
// in-memory state. For the write-ahead log (truncateTail) a partial
// final line is removed from the file so subsequent appends start on a
// clean line boundary; unparseable complete lines are counted and
// skipped rather than failing the whole store.
func (f *FS) replayFile(path string, truncateTail bool) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", path, err)
	}
	validLen := len(raw)
	if truncateTail {
		if i := bytes.LastIndexByte(raw, '\n'); i < len(raw)-1 {
			validLen = i + 1 // torn final write: everything after the last newline
			raw = raw[:validLen]
		}
	}
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if truncateTail {
			f.walCount++ // replayed log entries count toward compaction
		}
		var e walEntry
		if err := json.Unmarshal(line, &e); err != nil {
			f.skipped++
			f.mReplaySkipped.Inc()
			continue
		}
		f.mReplayEntries.Inc()
		f.apply(e)
	}
	if truncateTail {
		if fi, err := os.Stat(path); err == nil && fi.Size() > int64(validLen) {
			if err := os.Truncate(path, int64(validLen)); err != nil {
				return fmt.Errorf("store: truncating torn log tail: %w", err)
			}
		}
	}
	return nil
}

// apply folds one entry into the in-memory state. Entries are full-state
// upserts or deletes, so replay is idempotent in any snapshot/log
// interleaving.
func (f *FS) apply(e walEntry) {
	switch e.Op {
	case opJob:
		// A job entry without an id cannot have been written by the
		// engine (ids are assigned at submission); treat it as a corrupt
		// line rather than inserting an unaddressable record.
		if e.Job == nil || e.Job.ID == "" {
			f.skipped++
			f.mReplaySkipped.Inc()
			return
		}
		rec := *e.Job
		if rec.Request == nil {
			if old, ok := f.jobs[rec.ID]; ok {
				rec.Request = old.Request
			}
		}
		f.jobs[rec.ID] = rec
	case opResult:
		f.results[e.ID] = e.Result
	case opDelete:
		delete(f.jobs, e.ID)
		delete(f.results, e.ID)
		delete(f.checkpoints, e.ID)
	case opMeta:
		f.metas[e.ID] = e.Result
	case opCheckpoint:
		if len(e.Result) == 0 {
			delete(f.checkpoints, e.ID)
		} else {
			f.checkpoints[e.ID] = e.Result
		}
	default:
		f.skipped++
		f.mReplaySkipped.Inc()
	}
}

// syncWAL is wal.Sync with its latency recorded — the store's dominant
// cost under fsync-per-append, worth watching in production.
func (f *FS) syncWAL() error {
	start := time.Now()
	err := f.wal.Sync()
	f.mFsync.Observe(time.Since(start).Seconds())
	return err
}

// appendLocked writes entries to the log as one buffer with a single
// fsync, then compacts if the log has grown past the threshold. Caller
// holds mu.
func (f *FS) appendLocked(entries ...walEntry) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep rule strings like "x <= 1" readable
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("store: encoding log entry: %w", err)
		}
	}
	if faultinject.Enabled() && faultinject.Once(faultWALTorn) {
		// Simulate a crash mid-append: half the buffer reaches the file,
		// the append fails, and nothing is applied to the in-memory
		// state. Replay truncates the torn tail on the next open.
		_, _ = f.wal.Write(buf.Bytes()[:buf.Len()/2])
		return fmt.Errorf("store: %s fault injected: torn log write", faultWALTorn)
	}
	if _, err := f.wal.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("store: appending to log: %w", err)
	}
	switch {
	case f.opts.NoSync:
	case f.opts.FsyncInterval > 0:
		f.dirty = true // the flusher syncs within one interval
	default:
		if err := f.syncWAL(); err != nil {
			return fmt.Errorf("store: syncing log: %w", err)
		}
	}
	f.walCount += len(entries)
	f.mAppends.Add(int64(len(entries)))
	if f.walCount >= f.opts.CompactEvery {
		return f.compactLocked()
	}
	return nil
}

// compactLocked folds the current state into a fresh snapshot and
// truncates the log: marshal everything to snapshot.jsonl.tmp, fsync,
// rename over snapshot.jsonl, fsync the directory, then empty the log.
// A crash anywhere in that sequence is safe — the rename is atomic and
// replaying a stale log over the new snapshot re-applies the same
// upserts. Caller holds mu.
func (f *FS) compactLocked() error {
	start := time.Now()
	defer func() { f.mSnapshot.Observe(time.Since(start).Seconds()) }()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	for _, rec := range sortedRecords(f.jobs) {
		rec := rec
		if err := enc.Encode(walEntry{Op: opJob, Job: &rec}); err != nil {
			return fmt.Errorf("store: encoding snapshot: %w", err)
		}
	}
	for _, id := range sortedResultIDs(f.results) {
		if err := enc.Encode(walEntry{Op: opResult, ID: id, Result: f.results[id]}); err != nil {
			return fmt.Errorf("store: encoding snapshot: %w", err)
		}
	}
	for _, key := range sortedResultIDs(f.metas) {
		if err := enc.Encode(walEntry{Op: opMeta, ID: key, Result: f.metas[key]}); err != nil {
			return fmt.Errorf("store: encoding snapshot: %w", err)
		}
	}
	for _, id := range sortedResultIDs(f.checkpoints) {
		if err := enc.Encode(walEntry{Op: opCheckpoint, ID: id, Result: f.checkpoints[id]}); err != nil {
			return fmt.Errorf("store: encoding snapshot: %w", err)
		}
	}
	tmp := filepath.Join(f.dir, snapshotFile+".tmp")
	file, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if _, err := file.Write(buf.Bytes()); err != nil {
		file.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if !f.opts.NoSync {
		if err := file.Sync(); err != nil {
			file.Close()
			return fmt.Errorf("store: syncing snapshot: %w", err)
		}
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, snapshotFile)); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	if !f.opts.NoSync {
		if d, err := os.Open(f.dir); err == nil {
			_ = d.Sync() // make the rename durable; best-effort per platform
			d.Close()
		}
	}
	if err := f.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating log: %w", err)
	}
	f.walCount = 0
	f.dirty = false // the snapshot now holds everything the log did
	f.mCompactions.Inc()
	return nil
}

// PutJob implements Store. A nil rec.Request is logged as-is (the
// transition entry stays a few hundred bytes even for jobs with inline
// datasets); the in-memory record and replay both merge the previously
// stored request back in.
func (f *FS) PutJob(rec Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if rec.Request != nil {
		rec.Request = append(json.RawMessage(nil), rec.Request...)
	}
	if err := f.appendLocked(walEntry{Op: opJob, Job: &rec}); err != nil {
		return err
	}
	if rec.Request == nil {
		if old, ok := f.jobs[rec.ID]; ok {
			rec.Request = old.Request
		}
	}
	f.jobs[rec.ID] = rec
	return nil
}

// PutResult implements Store.
func (f *FS) PutResult(id string, result json.RawMessage) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	result = append(json.RawMessage(nil), result...)
	if err := f.appendLocked(walEntry{Op: opResult, ID: id, Result: result}); err != nil {
		return err
	}
	f.results[id] = result
	return nil
}

// GetResult implements Store.
func (f *FS) GetResult(id string) (json.RawMessage, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	res, ok := f.results[id]
	if !ok {
		return nil, false, nil
	}
	return append(json.RawMessage(nil), res...), true, nil
}

// List implements Store.
func (f *FS) List() ([]Record, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return sortedRecords(f.jobs), nil
}

// Delete implements Store.
func (f *FS) Delete(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, okJ := f.jobs[id]
	_, okR := f.results[id]
	_, okC := f.checkpoints[id]
	if !okJ && !okR && !okC {
		return nil // unknown id: nothing to log
	}
	if err := f.appendLocked(walEntry{Op: opDelete, ID: id}); err != nil {
		return err
	}
	delete(f.jobs, id)
	delete(f.results, id)
	delete(f.checkpoints, id)
	return nil
}

// Sweep implements Store. All expired records are logged and removed
// under one append (single fsync).
func (f *FS) Sweep(cutoff time.Time) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	expired := expiredIDs(f.jobs, cutoff)
	if len(expired) == 0 {
		return nil, nil
	}
	entries := make([]walEntry, len(expired))
	for i, id := range expired {
		entries[i] = walEntry{Op: opDelete, ID: id}
	}
	if err := f.appendLocked(entries...); err != nil {
		return nil, err
	}
	for _, id := range expired {
		delete(f.jobs, id)
		delete(f.results, id)
		delete(f.checkpoints, id)
	}
	return expired, nil
}

// PutCheckpoint implements Store. An empty payload logs a deletion so
// replay converges on the same state.
func (f *FS) PutCheckpoint(id string, cp json.RawMessage) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(cp) == 0 {
		if _, ok := f.checkpoints[id]; !ok {
			return nil // nothing stored: nothing to log
		}
		if err := f.appendLocked(walEntry{Op: opCheckpoint, ID: id}); err != nil {
			return err
		}
		delete(f.checkpoints, id)
		return nil
	}
	cp = append(json.RawMessage(nil), cp...)
	if err := f.appendLocked(walEntry{Op: opCheckpoint, ID: id, Result: cp}); err != nil {
		return err
	}
	f.checkpoints[id] = cp
	return nil
}

// GetCheckpoint implements Store.
func (f *FS) GetCheckpoint(id string) (json.RawMessage, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp, ok := f.checkpoints[id]
	if !ok {
		return nil, false, nil
	}
	return append(json.RawMessage(nil), cp...), true, nil
}

// PutMeta implements Store.
func (f *FS) PutMeta(key string, value json.RawMessage) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	value = append(json.RawMessage(nil), value...)
	if err := f.appendLocked(walEntry{Op: opMeta, ID: key, Result: value}); err != nil {
		return err
	}
	f.metas[key] = value
	return nil
}

// GetMeta implements Store.
func (f *FS) GetMeta(key string) (json.RawMessage, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.metas[key]
	if !ok {
		return nil, false, nil
	}
	return append(json.RawMessage(nil), v...), true, nil
}

// Skipped returns the number of corrupt lines ignored during replay —
// non-zero means the directory had damage beyond a torn final write.
func (f *FS) Skipped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.skipped
}

// Close stops the batched-fsync flusher (syncing anything still
// pending), compacts the outstanding log into the snapshot and releases
// the file handle. The store must not be used afterwards.
func (f *FS) Close() error {
	f.stopFlusher()
	f.mu.Lock()
	defer f.mu.Unlock()
	var err error
	if f.dirty {
		err = f.syncWAL()
		f.dirty = false
	}
	if f.walCount > 0 {
		if cerr := f.compactLocked(); err == nil {
			err = cerr
		}
	}
	if cerr := f.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

func sortedResultIDs(results map[string]json.RawMessage) []string {
	ids := make([]string, 0, len(results))
	for id := range results {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
