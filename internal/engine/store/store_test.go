package store

import (
	"encoding/json"
	"testing"
	"time"
)

// implementations runs a subtest against every Store implementation so
// Mem and FS stay behaviorally interchangeable.
func implementations(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) { fn(t, NewMem()) })
	t.Run("fs", func(t *testing.T) {
		s, err := OpenFS(t.TempDir(), FSOptions{})
		if err != nil {
			t.Fatalf("OpenFS: %v", err)
		}
		t.Cleanup(func() { s.Close() })
		fn(t, s)
	})
}

func rec(id, status string, submitted time.Time) Record {
	return Record{
		ID:          id,
		Status:      status,
		SubmittedAt: submitted,
		Request:     json.RawMessage(`{"function":"morris","n":10}`),
	}
}

func TestPutListDelete(t *testing.T) {
	implementations(t, func(t *testing.T, s Store) {
		t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
		if err := s.PutJob(rec("job-2", "pending", t0.Add(time.Second))); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := s.PutJob(rec("job-1", "pending", t0)); err != nil {
			t.Fatalf("put: %v", err)
		}
		recs, err := s.List()
		if err != nil {
			t.Fatalf("list: %v", err)
		}
		if len(recs) != 2 || recs[0].ID != "job-1" || recs[1].ID != "job-2" {
			t.Fatalf("list order = %+v, want job-1 then job-2 by SubmittedAt", recs)
		}
		if string(recs[0].Request) != `{"function":"morris","n":10}` {
			t.Fatalf("request payload lost: %s", recs[0].Request)
		}

		// Upsert replaces the whole record.
		upd := rec("job-1", "running", t0)
		upd.StartedAt = t0.Add(time.Minute)
		if err := s.PutJob(upd); err != nil {
			t.Fatalf("upsert: %v", err)
		}
		recs, _ = s.List()
		if recs[0].Status != "running" || recs[0].StartedAt.IsZero() {
			t.Fatalf("upsert did not replace record: %+v", recs[0])
		}

		if err := s.Delete("job-1"); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if err := s.Delete("no-such-job"); err != nil {
			t.Fatalf("delete unknown: %v", err)
		}
		recs, _ = s.List()
		if len(recs) != 1 || recs[0].ID != "job-2" {
			t.Fatalf("after delete: %+v", recs)
		}
	})
}

func TestResults(t *testing.T) {
	implementations(t, func(t *testing.T, s Store) {
		if _, ok, err := s.GetResult("job-1"); ok || err != nil {
			t.Fatalf("result of unknown job: ok=%v err=%v", ok, err)
		}
		payload := json.RawMessage(`{"best":{"rule":"a1 <= 0.4"}}`)
		if err := s.PutResult("job-1", payload); err != nil {
			t.Fatalf("put result: %v", err)
		}
		got, ok, err := s.GetResult("job-1")
		if err != nil || !ok || string(got) != string(payload) {
			t.Fatalf("get result = %s ok=%v err=%v", got, ok, err)
		}
		if err := s.Delete("job-1"); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if _, ok, _ := s.GetResult("job-1"); ok {
			t.Fatalf("result survived delete")
		}
	})
}

func TestSweep(t *testing.T) {
	implementations(t, func(t *testing.T, s Store) {
		t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
		old := rec("job-old", "done", t0)
		old.FinishedAt = t0.Add(time.Minute)
		fresh := rec("job-fresh", "done", t0)
		fresh.FinishedAt = t0.Add(time.Hour)
		pending := rec("job-pending", "pending", t0) // no FinishedAt: never swept
		for _, r := range []Record{old, fresh, pending} {
			if err := s.PutJob(r); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		if err := s.PutResult("job-old", json.RawMessage(`{}`)); err != nil {
			t.Fatalf("put result: %v", err)
		}

		swept, err := s.Sweep(t0.Add(30 * time.Minute))
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		if len(swept) != 1 || swept[0] != "job-old" {
			t.Fatalf("swept = %v, want [job-old]", swept)
		}
		if _, ok, _ := s.GetResult("job-old"); ok {
			t.Fatalf("swept job kept its result")
		}
		recs, _ := s.List()
		if len(recs) != 2 {
			t.Fatalf("after sweep: %+v", recs)
		}
		// Nothing else is old enough.
		if swept, _ := s.Sweep(t0.Add(30 * time.Minute)); len(swept) != 0 {
			t.Fatalf("second sweep removed %v", swept)
		}
	})
}

func TestNilRequestUpsertPreservesStored(t *testing.T) {
	implementations(t, func(t *testing.T, s Store) {
		t0 := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
		if err := s.PutJob(rec("job-1", "pending", t0)); err != nil {
			t.Fatalf("put: %v", err)
		}
		upd := Record{ID: "job-1", Status: "running", SubmittedAt: t0, StartedAt: t0.Add(time.Second)}
		if err := s.PutJob(upd); err != nil { // nil Request: transition upsert
			t.Fatalf("transition upsert: %v", err)
		}
		recs, _ := s.List()
		if recs[0].Status != "running" {
			t.Fatalf("transition not applied: %+v", recs[0])
		}
		if string(recs[0].Request) != `{"function":"morris","n":10}` {
			t.Fatalf("nil-request upsert dropped the stored request: %q", recs[0].Request)
		}
	})
}

func TestMetaRoundtrip(t *testing.T) {
	implementations(t, func(t *testing.T, s Store) {
		if _, ok, err := s.GetMeta("k"); ok || err != nil {
			t.Fatalf("absent meta: ok=%v err=%v", ok, err)
		}
		if err := s.PutMeta("k", json.RawMessage(`{"n":1}`)); err != nil {
			t.Fatalf("put meta: %v", err)
		}
		v, ok, err := s.GetMeta("k")
		if err != nil || !ok || string(v) != `{"n":1}` {
			t.Fatalf("get meta = %s ok=%v err=%v", v, ok, err)
		}
		// Meta lives outside the job namespace.
		if recs, _ := s.List(); len(recs) != 0 {
			t.Fatalf("meta visible in List: %+v", recs)
		}
		if swept, _ := s.Sweep(time.Now().Add(time.Hour)); len(swept) != 0 {
			t.Fatalf("sweep touched meta: %v", swept)
		}
		if _, ok, _ := s.GetMeta("k"); !ok {
			t.Fatalf("meta lost after sweep")
		}
	})
}

func TestRecordTerminal(t *testing.T) {
	r := Record{Status: "running"}
	if r.Terminal() {
		t.Fatalf("zero FinishedAt reported terminal")
	}
	r.FinishedAt = time.Now()
	if !r.Terminal() {
		t.Fatalf("finished record not terminal")
	}
}

func TestConcurrentAccess(t *testing.T) {
	implementations(t, func(t *testing.T, s Store) {
		done := make(chan struct{})
		t0 := time.Now()
		for g := 0; g < 4; g++ {
			go func(g int) {
				defer func() { done <- struct{}{} }()
				for i := 0; i < 25; i++ {
					id := rune('a' + g)
					r := rec("job-"+string(id), "done", t0)
					r.FinishedAt = t0
					_ = s.PutJob(r)
					_ = s.PutResult(r.ID, json.RawMessage(`{"i":1}`))
					_, _ = s.List()
					_, _, _ = s.GetResult(r.ID)
					_, _ = s.Sweep(t0.Add(-time.Hour))
				}
			}(g)
		}
		for g := 0; g < 4; g++ {
			<-done
		}
	})
}
