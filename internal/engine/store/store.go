// Package store persists discovery-engine job state so that a
// redsserver restart does not discard submitted work. The engine mirrors
// every job lifecycle transition (and every finished result) into a
// Store; on boot it lists the store back and re-enqueues the jobs that
// never ran.
//
// Two implementations ship with the package:
//
//   - Mem keeps everything in process memory — the engine's historical
//     behavior, used when no -store.dir is configured.
//   - FS is an append-only JSON-lines file store with a write-ahead log,
//     periodic snapshot+compaction, and crash-safe replay on open.
//
// The store is deliberately decoupled from the engine's types: jobs and
// results travel as opaque json.RawMessage payloads plus the few fields
// the store itself needs (status, timestamps) to order listings and
// sweep expired records. That keeps the dependency arrow pointing from
// internal/engine to internal/engine/store only.
package store

import (
	"encoding/json"
	"time"
)

// Record is the persisted form of one job. Request is the engine's
// wire-format request (including any inline dataset) so a recovered
// pending job can be re-run with full fidelity; Status and the
// timestamps are duplicated out of the payload because the store sorts
// listings by submission time and sweeps on finish time without wanting
// to understand engine JSON.
type Record struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Owner is the authenticated client that submitted the job ("" when
	// admission control is off), persisted so per-client job listings
	// survive restarts.
	Owner string `json:"owner,omitempty"`
	// Error is the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// SubmittedAt orders List output. StartedAt and FinishedAt are zero
	// until the job reaches the corresponding state; a non-zero
	// FinishedAt marks the record terminal and therefore sweepable.
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	// Request is the engine-encoded job request.
	Request json.RawMessage `json:"request,omitempty"`
}

// Terminal reports whether the record reached a final state. The store
// only relies on FinishedAt (set exactly when a job becomes done, failed
// or canceled), not on parsing Status.
func (r Record) Terminal() bool { return !r.FinishedAt.IsZero() }

// Store is the durability interface the engine writes through. All
// methods must be safe for concurrent use. PutJob is a record upsert
// (last write wins) with one merge rule: a nil Request preserves the
// previously stored request. The request can be large (inline datasets)
// and is immutable after submission, so status transitions upsert with
// a nil Request and stay cheap; the rule is deterministic, so
// write-ahead-log replay remains idempotent. Implementations must
// return copies or immutable data from read methods; callers may
// retain what they get back.
type Store interface {
	// PutJob inserts or replaces the record for rec.ID; a nil
	// rec.Request keeps the stored request of an existing record.
	PutJob(rec Record) error
	// PutResult attaches the encoded final result to a job id. Results
	// are stored separately from records so status upserts stay cheap.
	PutResult(id string, result json.RawMessage) error
	// GetResult returns the stored result payload, ok=false when none
	// exists.
	GetResult(id string) (json.RawMessage, bool, error)
	// List returns every record ordered by SubmittedAt (ties by ID).
	List() ([]Record, error)
	// Delete removes a record and its result. Deleting an unknown id is
	// not an error.
	Delete(id string) error
	// Sweep deletes every terminal record whose FinishedAt is before
	// cutoff, with its result, and returns the deleted ids. Pending and
	// running records are never swept.
	Sweep(cutoff time.Time) ([]string, error)
	// PutMeta stores a small engine metadata payload under a key in a
	// namespace separate from jobs and results (List/Delete/Sweep never
	// touch it). The engine uses it for the job-ID high-water mark, so
	// ids are never reused even after every record has been swept.
	PutMeta(key string, value json.RawMessage) error
	// GetMeta returns a metadata payload, ok=false when absent.
	GetMeta(key string) (json.RawMessage, bool, error)
	// PutCheckpoint stores the engine-encoded execution checkpoint of a
	// job; a nil or empty payload deletes it. Checkpoints live and die
	// with their job: Delete and Sweep remove them alongside the record,
	// and List never returns them (they can carry megabytes of labeled
	// data and only the job's own re-execution wants them).
	PutCheckpoint(id string, cp json.RawMessage) error
	// GetCheckpoint returns the stored checkpoint payload, ok=false when
	// none exists.
	GetCheckpoint(id string) (json.RawMessage, bool, error)
	// Close releases the store. For FS it compacts the write-ahead log
	// into the snapshot first; for Mem it is a no-op.
	Close() error
}
