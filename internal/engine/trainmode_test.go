package engine

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestBinnedTrainingEndToEnd runs a real tuned job on the binned fast
// path through the engine: the variant reports mode "binned" with the
// gate's measured quality, its scenario quality lands near the exact
// mode's, and the model cache keeps the two modes strictly apart while
// repeat binned jobs still hit.
func TestBinnedTrainingEndToEnd(t *testing.T) {
	x := NewLocalExecutor(LocalExecutorOptions{})
	e := newTestEngine(t, Options{Workers: 1, Executor: x})
	defer e.Close()

	d := testDataset(300, rand.New(rand.NewSource(21)))
	_, exact := runJob(t, e, Request{Dataset: d, L: 2000, Seed: 22, Tuned: true})
	if exact.Best.TrainMode != "exact" {
		t.Fatalf("default train mode = %q, want exact", exact.Best.TrainMode)
	}
	if exact.Best.TrainQuality != 0 || exact.Best.TrainFallbackReason != "" {
		t.Fatalf("exact mode reports gate artifacts: quality=%v reason=%q",
			exact.Best.TrainQuality, exact.Best.TrainFallbackReason)
	}

	misses := x.CacheStats().Misses
	_, binned := runJob(t, e, Request{Dataset: d, L: 2000, Seed: 22, Tuned: true, TrainMode: "binned"})
	best := binned.Best
	if best.TrainMode != "binned" {
		t.Fatalf("train mode = %q (fallback %q), want binned", best.TrainMode, best.TrainFallbackReason)
	}
	if best.TrainQuality <= 0 {
		t.Fatalf("binned variant reports no gate quality")
	}
	if best.CacheHit {
		t.Fatalf("binned job hit the exact model cache entry")
	}
	if got := x.CacheStats().Misses; got == misses {
		t.Fatalf("binned job trained no model (misses still %d)", misses)
	}
	if diff := math.Abs(best.WRAcc - exact.Best.WRAcc); diff > 0.1 {
		t.Fatalf("binned WRAcc %.4f vs exact %.4f: diff %.4f > 0.1",
			best.WRAcc, exact.Best.WRAcc, diff)
	}

	// A repeat binned job reuses the binned entry and still reports its
	// mode: the resolution is per request, not per cache entry.
	_, again := runJob(t, e, Request{Dataset: d, L: 2000, Seed: 22, Tuned: true, TrainMode: "binned"})
	if !again.Best.CacheHit {
		t.Fatalf("repeat binned job missed the model cache")
	}
	if again.Best.TrainMode != "binned" {
		t.Fatalf("repeat binned job reports mode %q, want binned", again.Best.TrainMode)
	}
	if x.TrainFallbacks() != 0 {
		t.Fatalf("train fallbacks = %d, want 0", x.TrainFallbacks())
	}
}

// TestBinnedTrainingForcedFallback sets a quality threshold no gate
// model can reach: the job still succeeds, trains exact, and says why.
func TestBinnedTrainingForcedFallback(t *testing.T) {
	x := NewLocalExecutor(LocalExecutorOptions{})
	e := newTestEngine(t, Options{Workers: 1, Executor: x})
	defer e.Close()

	d := noisyTestDataset(300, rand.New(rand.NewSource(23)))
	_, res := runJob(t, e, Request{Dataset: d, L: 2000, Seed: 24, TrainMode: "binned", TrainQuality: 0.999})
	best := res.Best
	if best.TrainMode != "exact" {
		t.Fatalf("train mode = %q, want exact after fallback", best.TrainMode)
	}
	if !strings.Contains(best.TrainFallbackReason, "below threshold") {
		t.Fatalf("fallback reason = %q, want a quality-below-threshold explanation", best.TrainFallbackReason)
	}
	if best.TrainQuality <= 0 {
		t.Fatalf("fallback reports no measured gate quality")
	}
	if x.TrainFallbacks() != 1 {
		t.Fatalf("train fallbacks = %d, want 1", x.TrainFallbacks())
	}
}

// TestBinnedTrainingUnsupportedFamily asks for binned training on svm,
// which has no tree growth to bin: the variant trains exact and reports
// the unsupported fallback.
func TestBinnedTrainingUnsupportedFamily(t *testing.T) {
	x := NewLocalExecutor(LocalExecutorOptions{})
	e := newTestEngine(t, Options{Workers: 1, Executor: x})
	defer e.Close()

	d := testDataset(200, rand.New(rand.NewSource(25)))
	_, res := runJob(t, e, Request{Dataset: d, L: 1000, Seed: 26, Metamodels: []string{"svm"}, TrainMode: "binned"})
	best := res.Best
	if best.TrainMode != "exact" || best.TrainFallbackReason != "unsupported" {
		t.Fatalf("svm binned resolution = (%q, %q), want (exact, unsupported)",
			best.TrainMode, best.TrainFallbackReason)
	}
	if x.TrainFallbacks() != 1 {
		t.Fatalf("train fallbacks = %d, want 1", x.TrainFallbacks())
	}
}

// TestTrainModeValidate pins the request validation of the train-mode
// knobs.
func TestTrainModeValidate(t *testing.T) {
	base := Request{Function: "morris"}
	ok := base
	ok.TrainMode, ok.TrainBins, ok.TrainQuality = "binned", 64, 0.7
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid binned request rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Request){
		"unknown mode":  func(r *Request) { r.TrainMode = "histogram" },
		"bins too low":  func(r *Request) { r.TrainBins = 1 },
		"bins too high": func(r *Request) { r.TrainBins = 257 },
		"quality > 1":   func(r *Request) { r.TrainQuality = 1.5 },
		"quality NaN":   func(r *Request) { r.TrainQuality = math.NaN() },
	} {
		r := base
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, r)
		}
	}
}
