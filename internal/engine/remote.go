package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/reds-go/reds/internal/telemetry"
)

// RemoteExecutor runs requests on a redsserver worker through the
// internal execution API: POST starts the execution, GET polls progress
// until a terminal status, DELETE cancels (and acknowledges terminal
// polls so the worker can release the entry early).
//
// Failures split into two classes the caller can tell apart:
//
//   - the worker is unreachable or has lost the execution (connection
//     errors, 5xx, an unknown execution id after a worker restart) —
//     wrapped in ErrUnavailable, safe for a dispatcher to re-route;
//   - the request itself failed on the worker (a failed execution, a
//     400) — returned as a plain error that must not be retried
//     elsewhere.
type RemoteExecutor struct {
	// BaseURL is the worker's root, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// Client defaults to a client with a 10s per-request timeout. The
	// timeout bounds individual polls, not the whole execution.
	Client *http.Client
	// PollInterval is the progress-polling period (default 150ms).
	PollInterval time.Duration
}

func (r *RemoteExecutor) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return defaultRemoteClient
}

var defaultRemoteClient = &http.Client{Timeout: 10 * time.Second}

func (r *RemoteExecutor) pollInterval() time.Duration {
	if r.PollInterval > 0 {
		return r.PollInterval
	}
	return 150 * time.Millisecond
}

func (r *RemoteExecutor) execURL(id string) string {
	u := strings.TrimRight(r.BaseURL, "/") + "/internal/v1/execute"
	if id != "" {
		u += "/" + id
	}
	return u
}

// Execute implements Executor over the internal HTTP API.
func (r *RemoteExecutor) Execute(ctx context.Context, req Request, onProgress func(Progress)) (*Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("engine: encoding remote request: %w", err)
	}
	id, err := r.start(ctx, body)
	if err != nil {
		if ctx.Err() != nil {
			// Canceled mid-POST. The worker may or may not have accepted
			// the execution; if it did, its retention GC reclaims the
			// orphan (we never learned the id to DELETE it).
			return nil, ctx.Err()
		}
		return nil, err
	}

	t := time.NewTicker(r.pollInterval())
	defer t.Stop()
	var last Progress
	for {
		select {
		case <-ctx.Done():
			r.release(id)
			return nil, ctx.Err()
		case <-t.C:
		}
		st, err := r.poll(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				r.release(id)
				return nil, ctx.Err()
			}
			return nil, err
		}
		if onProgress != nil && !st.Progress.sameAs(last) {
			last = st.Progress
			onProgress(st.Progress)
		}
		switch st.Status {
		case StatusDone:
			r.release(id)
			if st.Result == nil {
				return nil, fmt.Errorf("engine: worker %s reported done without a result: %w", r.BaseURL, ErrUnavailable)
			}
			return st.Result, nil
		case StatusFailed:
			r.release(id)
			if st.Error == "" {
				st.Error = "remote execution failed"
			}
			return nil, errors.New(st.Error)
		case StatusCanceled:
			// The worker canceled without us asking (it is shutting
			// down); from the gateway's view the worker went away.
			return nil, fmt.Errorf("engine: worker %s canceled the execution: %w", r.BaseURL, ErrUnavailable)
		}
	}
}

// start POSTs the request and returns the execution id.
func (r *RemoteExecutor) start(ctx context.Context, body []byte) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.execURL(""), bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("engine: building remote request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if rid := telemetry.RequestID(ctx); rid != "" {
		// Continue the caller's trace on the worker: its execution log
		// lines and span records carry the same id as ours.
		hreq.Header.Set(telemetry.RequestIDHeader, rid)
	}
	resp, err := r.client().Do(hreq)
	if err != nil {
		return "", fmt.Errorf("engine: starting execution on %s: %v: %w", r.BaseURL, err, ErrUnavailable)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusBadRequest {
		return "", fmt.Errorf("engine: worker %s rejected the request: %s", r.BaseURL, readAPIError(resp.Body))
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("engine: worker %s returned %s: %w", r.BaseURL, resp.Status, ErrUnavailable)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
		return "", fmt.Errorf("engine: undecodable accept from %s: %w", r.BaseURL, ErrUnavailable)
	}
	return out.ID, nil
}

// poll GETs the execution's current state.
func (r *RemoteExecutor) poll(ctx context.Context, id string) (*execStatusResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.execURL(id), nil)
	if err != nil {
		return nil, fmt.Errorf("engine: building poll request: %w", err)
	}
	resp, err := r.client().Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("engine: polling %s on %s: %v: %w", id, r.BaseURL, err, ErrUnavailable)
	}
	defer drainClose(resp.Body)
	switch {
	case resp.StatusCode == http.StatusNotFound:
		// The worker restarted and lost the execution (its retention GC
		// cannot race us: we poll far more often than the 5m window).
		return nil, fmt.Errorf("engine: worker %s no longer knows execution %s: %w", r.BaseURL, id, ErrUnavailable)
	case resp.StatusCode != http.StatusOK:
		return nil, fmt.Errorf("engine: poll of %s on %s returned %s: %w", id, r.BaseURL, resp.Status, ErrUnavailable)
	}
	var st execStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("engine: undecodable poll response from %s: %w", r.BaseURL, ErrUnavailable)
	}
	return &st, nil
}

// release cancels/acknowledges the execution so the worker frees it
// promptly. Best-effort: the worker's retention GC covers lost DELETEs,
// and the caller's ctx may already be dead, so this uses its own short
// deadline.
func (r *RemoteExecutor) release(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, r.execURL(id), nil)
	if err != nil {
		return
	}
	if resp, err := r.client().Do(hreq); err == nil {
		drainClose(resp.Body)
	}
}

// readAPIError extracts the message of an apiError envelope, falling
// back to the raw body.
func readAPIError(body io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(body, 4096))
	var env struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Message != "" {
		return env.Error.Message
	}
	return strings.TrimSpace(string(raw))
}

func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}
