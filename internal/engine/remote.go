package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"github.com/reds-go/reds/internal/admission"
	"github.com/reds-go/reds/internal/telemetry"
)

// RemoteExecutor runs requests on a redsserver worker through the
// internal execution API: POST starts the execution, GET polls progress
// until a terminal status, DELETE cancels (and acknowledges terminal
// polls so the worker can release the entry early).
//
// Failures split into two classes the caller can tell apart:
//
//   - the worker is unreachable or has lost the execution (connection
//     errors, 5xx, an unknown execution id after a worker restart) —
//     wrapped in ErrUnavailable, safe for a dispatcher to re-route;
//   - the request itself failed on the worker (a failed execution, a
//     400) — returned as a plain error that must not be retried
//     elsewhere.
type RemoteExecutor struct {
	// BaseURL is the worker's root, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// Client defaults to a client with a 10s per-request timeout. The
	// timeout bounds individual polls, not the whole execution.
	Client *http.Client
	// PollInterval is the progress-polling period (default 150ms).
	PollInterval time.Duration
	// AttemptTimeout bounds every individual HTTP call with its own
	// context deadline (default 10s). A worker that accepts the TCP
	// connection but never responds therefore costs one attempt, not the
	// whole dispatch slot.
	AttemptTimeout time.Duration
	// MaxAttempts is the retry budget per logical operation — one start,
	// one poll (default 3). Only transient failures (connection errors,
	// 5xx) consume retries; definitive answers (400, 404-after-restart)
	// return immediately.
	MaxAttempts int
	// RetryBaseDelay is the first backoff delay (default 100ms); each
	// retry doubles it with ±50% jitter, capped at RetryMaxDelay
	// (default 2s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// OnRetry, when non-nil, is invoked before each retry sleep with the
	// operation name ("start", "poll"). The dispatcher wires it to the
	// reds_cluster_retry_attempts_total counter.
	OnRetry func(op string)
	// InternalSecret is sent on every internal-API request in the
	// X-Reds-Internal-Secret header. Must match the worker's
	// -internal.secret; empty sends no header (open single-tenant
	// deployments).
	InternalSecret string
}

// setAuth attaches the shared internal secret to an internal-API
// request (no-op when none is configured).
func (r *RemoteExecutor) setAuth(hreq *http.Request) {
	if r.InternalSecret != "" {
		hreq.Header.Set(admission.InternalSecretHeader, r.InternalSecret)
	}
}

func (r *RemoteExecutor) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return defaultRemoteClient
}

var defaultRemoteClient = &http.Client{Timeout: 10 * time.Second}

func (r *RemoteExecutor) pollInterval() time.Duration {
	if r.PollInterval > 0 {
		return r.PollInterval
	}
	return 150 * time.Millisecond
}

func (r *RemoteExecutor) attemptTimeout() time.Duration {
	if r.AttemptTimeout > 0 {
		return r.AttemptTimeout
	}
	return 10 * time.Second
}

func (r *RemoteExecutor) maxAttempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 3
}

func (r *RemoteExecutor) retryBaseDelay() time.Duration {
	if r.RetryBaseDelay > 0 {
		return r.RetryBaseDelay
	}
	return 100 * time.Millisecond
}

func (r *RemoteExecutor) retryMaxDelay() time.Duration {
	if r.RetryMaxDelay > 0 {
		return r.RetryMaxDelay
	}
	return 2 * time.Second
}

// withRetry runs one logical operation with per-attempt deadlines and
// jittered exponential backoff. fn executes each attempt under its own
// deadline-bounded context and reports whether its failure is worth
// retrying; the final attempt's error is returned as-is, so the
// ErrUnavailable classification of the underlying call survives.
func (r *RemoteExecutor) withRetry(ctx context.Context, op string, fn func(ctx context.Context) (retry bool, err error)) error {
	delay := r.retryBaseDelay()
	for attempt := 1; ; attempt++ {
		actx, cancel := context.WithTimeout(ctx, r.attemptTimeout())
		retry, err := fn(actx)
		cancel()
		if err == nil || !retry || attempt >= r.maxAttempts() || ctx.Err() != nil {
			return err
		}
		if r.OnRetry != nil {
			r.OnRetry(op)
		}
		// Full jitter around the exponential midpoint: [delay/2, 3*delay/2).
		sleep := delay/2 + time.Duration(rand.Int63n(int64(delay)))
		select {
		case <-ctx.Done():
			return err
		case <-time.After(sleep):
		}
		if delay *= 2; delay > r.retryMaxDelay() {
			delay = r.retryMaxDelay()
		}
	}
}

func (r *RemoteExecutor) execURL(id string) string {
	u := strings.TrimRight(r.BaseURL, "/") + "/internal/v1/execute"
	if id != "" {
		u += "/" + id
	}
	return u
}

// Execute implements Executor over the internal HTTP API.
func (r *RemoteExecutor) Execute(ctx context.Context, req Request, onProgress func(Progress)) (*Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("engine: encoding remote request: %w", err)
	}
	id, err := r.start(ctx, body)
	if err != nil {
		if ctx.Err() != nil {
			// Canceled mid-POST. The worker may or may not have accepted
			// the execution; if it did, its retention GC reclaims the
			// orphan (we never learned the id to DELETE it).
			return nil, ctx.Err()
		}
		return nil, err
	}

	t := time.NewTicker(r.pollInterval())
	defer t.Stop()
	var last Progress
	var lastCP *Checkpoint
	for {
		select {
		case <-ctx.Done():
			r.release(id)
			return nil, ctx.Err()
		case <-t.C:
		}
		st, err := r.poll(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				r.release(id)
				return nil, ctx.Err()
			}
			return nil, err
		}
		// A new checkpoint seq means the worker has more resumable work
		// recorded; fetch the snapshot so the dispatcher can forward it
		// if this worker dies. Best-effort: a failed fetch leaves lastCP
		// behind and the next poll tries again.
		if st.CheckpointSeq > 0 && (lastCP == nil || st.CheckpointSeq > lastCP.Seq) {
			if cp, err := r.fetchCheckpoint(ctx, id); err == nil && cp != nil {
				lastCP = cp
			}
		}
		st.Progress.Checkpoint = lastCP
		if onProgress != nil && !st.Progress.sameAs(last) {
			last = st.Progress
			onProgress(st.Progress)
		}
		switch st.Status {
		case StatusDone:
			r.release(id)
			if st.Result == nil {
				return nil, fmt.Errorf("engine: worker %s reported done without a result: %w", r.BaseURL, ErrUnavailable)
			}
			return st.Result, nil
		case StatusFailed:
			r.release(id)
			if st.Error == "" {
				st.Error = "remote execution failed"
			}
			return nil, errors.New(st.Error)
		case StatusCanceled:
			// The worker canceled without us asking (it is shutting
			// down); from the gateway's view the worker went away.
			return nil, fmt.Errorf("engine: worker %s canceled the execution: %w", r.BaseURL, ErrUnavailable)
		}
	}
}

// start POSTs the request and returns the execution id. Transient
// failures (connection errors, 5xx) are retried within the budget,
// each attempt under its own deadline.
func (r *RemoteExecutor) start(ctx context.Context, body []byte) (string, error) {
	var id string
	err := r.withRetry(ctx, "start", func(actx context.Context) (bool, error) {
		hreq, err := http.NewRequestWithContext(actx, http.MethodPost, r.execURL(""), bytes.NewReader(body))
		if err != nil {
			return false, fmt.Errorf("engine: building remote request: %w", err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		r.setAuth(hreq)
		if rid := telemetry.RequestID(ctx); rid != "" {
			// Continue the caller's trace on the worker: its execution log
			// lines and span records carry the same id as ours.
			hreq.Header.Set(telemetry.RequestIDHeader, rid)
		}
		resp, err := r.client().Do(hreq)
		if err != nil {
			return true, fmt.Errorf("engine: starting execution on %s: %v: %w", r.BaseURL, err, ErrUnavailable)
		}
		defer drainClose(resp.Body)
		switch {
		case resp.StatusCode == http.StatusBadRequest:
			// A verdict about the request: retrying (here or elsewhere)
			// cannot change it.
			return false, fmt.Errorf("engine: worker %s rejected the request: %s", r.BaseURL, readAPIError(resp.Body))
		case resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusForbidden:
			// A secret mismatch is a deployment misconfiguration, not a
			// worker outage: deliberately NOT ErrUnavailable, so the job
			// fails loudly instead of burning the failover chain on every
			// equally misconfigured worker.
			return false, fmt.Errorf("engine: worker %s refused the internal secret (%s): check -internal.secret on both sides", r.BaseURL, resp.Status)
		case resp.StatusCode >= 500:
			return true, fmt.Errorf("engine: worker %s returned %s: %w", r.BaseURL, resp.Status, ErrUnavailable)
		case resp.StatusCode != http.StatusAccepted:
			return false, fmt.Errorf("engine: worker %s returned %s: %w", r.BaseURL, resp.Status, ErrUnavailable)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
			return false, fmt.Errorf("engine: undecodable accept from %s: %w", r.BaseURL, ErrUnavailable)
		}
		id = out.ID
		return false, nil
	})
	return id, err
}

// poll GETs the execution's current state, retrying transient failures
// within the budget. A 404 is definitive — the worker restarted and
// lost the execution — and fails over immediately.
func (r *RemoteExecutor) poll(ctx context.Context, id string) (*execStatusResponse, error) {
	var st *execStatusResponse
	err := r.withRetry(ctx, "poll", func(actx context.Context) (bool, error) {
		hreq, err := http.NewRequestWithContext(actx, http.MethodGet, r.execURL(id), nil)
		if err != nil {
			return false, fmt.Errorf("engine: building poll request: %w", err)
		}
		r.setAuth(hreq)
		resp, err := r.client().Do(hreq)
		if err != nil {
			return true, fmt.Errorf("engine: polling %s on %s: %v: %w", id, r.BaseURL, err, ErrUnavailable)
		}
		defer drainClose(resp.Body)
		switch {
		case resp.StatusCode == http.StatusNotFound:
			// The worker restarted and lost the execution (its retention GC
			// cannot race us: we poll far more often than the 5m window).
			return false, fmt.Errorf("engine: worker %s no longer knows execution %s: %w", r.BaseURL, id, ErrUnavailable)
		case resp.StatusCode != http.StatusOK:
			return true, fmt.Errorf("engine: poll of %s on %s returned %s: %w", id, r.BaseURL, resp.Status, ErrUnavailable)
		}
		var decoded execStatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			return false, fmt.Errorf("engine: undecodable poll response from %s: %w", r.BaseURL, ErrUnavailable)
		}
		st = &decoded
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// fetchCheckpoint GETs the execution's newest resumable checkpoint.
// One attempt under the per-attempt deadline: the caller re-fetches on
// the next poll if this one fails.
func (r *RemoteExecutor) fetchCheckpoint(ctx context.Context, id string) (*Checkpoint, error) {
	actx, cancel := context.WithTimeout(ctx, r.attemptTimeout())
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodGet, r.execURL(id)+"/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	r.setAuth(hreq)
	resp, err := r.client().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("engine: checkpoint fetch of %s on %s returned %s", id, r.BaseURL, resp.Status)
	}
	var cp Checkpoint
	if err := json.NewDecoder(resp.Body).Decode(&cp); err != nil {
		return nil, fmt.Errorf("engine: undecodable checkpoint from %s: %w", r.BaseURL, err)
	}
	return &cp, nil
}

// release cancels/acknowledges the execution so the worker frees it
// promptly. Best-effort: the worker's retention GC covers lost DELETEs,
// and the caller's ctx may already be dead, so this uses its own short
// deadline.
func (r *RemoteExecutor) release(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, r.execURL(id), nil)
	if err != nil {
		return
	}
	r.setAuth(hreq)
	if resp, err := r.client().Do(hreq); err == nil {
		drainClose(resp.Body)
	}
}

// readAPIError extracts the message of an apiError envelope, falling
// back to the raw body.
func readAPIError(body io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(body, 4096))
	var env struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Message != "" {
		return env.Error.Message
	}
	return strings.TrimSpace(string(raw))
}

func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}
