package engine

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestWorker spins up the worker side of the internal execution API
// over a fresh LocalExecutor.
func newTestWorker(t *testing.T) (*httptest.Server, *ExecServer) {
	t.Helper()
	es := NewExecServer(NewLocalExecutor(LocalExecutorOptions{}), ExecServerOptions{})
	srv := httptest.NewServer(es.Handler())
	t.Cleanup(func() {
		srv.Close()
		es.Close()
	})
	return srv, es
}

// normalizeResult zeroes the fields that legitimately differ between
// two runs of the same request (wall-clock time, cache temperature) so
// the rest can be compared byte-for-byte.
func normalizeResult(t *testing.T, res *Result) []byte {
	t.Helper()
	cp := *res
	cp.ElapsedSeconds = 0
	cp.Best.CacheHit = false
	cp.Variants = append([]VariantResult(nil), res.Variants...)
	for i := range cp.Variants {
		cp.Variants[i].CacheHit = false
	}
	raw, err := json.Marshal(&cp)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return raw
}

func TestRemoteExecutorRoundTrip(t *testing.T) {
	srv, es := newTestWorker(t)
	remote := &RemoteExecutor{BaseURL: srv.URL, PollInterval: 5 * time.Millisecond}

	req := Request{Dataset: testDataset(250, rand.New(rand.NewSource(8))), L: 2000, Seed: 4}
	var last Progress
	res, err := remote.Execute(context.Background(), req, func(p Progress) { last = p })
	if err != nil {
		t.Fatalf("remote execute: %v", err)
	}

	// Byte-identical to the single-process path, modulo timing fields.
	local, err := NewLocalExecutor(LocalExecutorOptions{}).Execute(context.Background(), req, nil)
	if err != nil {
		t.Fatalf("local execute: %v", err)
	}
	got, want := normalizeResult(t, res), normalizeResult(t, local)
	if string(got) != string(want) {
		t.Fatalf("remote result differs from local:\nremote: %.200s\nlocal:  %.200s", got, want)
	}

	if last.VariantsDone != 1 || last.LabelDone != 2000 {
		t.Fatalf("final progress = %+v, want completed counters", last)
	}
	if started, active := es.Executions(); started != 1 || active != 0 {
		t.Fatalf("executions = %d started / %d active, want 1/0", started, active)
	}
}

func TestRemoteExecutorRequestErrorIsNotUnavailable(t *testing.T) {
	srv, _ := newTestWorker(t)
	remote := &RemoteExecutor{BaseURL: srv.URL, PollInterval: 5 * time.Millisecond}
	// Validation failure on the worker: a verdict about the request, so
	// the dispatcher must not re-route it.
	_, err := remote.Execute(context.Background(), Request{Function: "no-such-function"}, nil)
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want a plain request error", err)
	}
	if !strings.Contains(err.Error(), "no-such-function") {
		t.Fatalf("error does not carry the worker's message: %v", err)
	}
}

func TestRemoteExecutorWorkerDown(t *testing.T) {
	srv, _ := newTestWorker(t)
	srv.Close() // worker is gone before the POST
	remote := &RemoteExecutor{BaseURL: srv.URL, PollInterval: 5 * time.Millisecond}
	_, err := remote.Execute(context.Background(), Request{Function: "morris", L: 500}, nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestRemoteExecutorWorkerDiesMidExecution(t *testing.T) {
	srv, es := newTestWorker(t)
	remote := &RemoteExecutor{BaseURL: srv.URL, PollInterval: 5 * time.Millisecond}

	req := Request{Dataset: testDataset(300, rand.New(rand.NewSource(9))), L: 400000, Seed: 1}
	done := make(chan error, 1)
	go func() {
		_, err := remote.Execute(context.Background(), req, nil)
		done <- err
	}()

	// Wait until the worker accepted the execution, then kill it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if started, _ := es.Executions(); started > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never accepted the execution")
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv.CloseClientConnections()
	srv.Close()

	select {
	case err := <-done:
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("err = %v, want ErrUnavailable after worker death", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("execute did not return after worker death")
	}
	es.Close() // stop the orphaned in-process pipeline
}

func TestRemoteExecutorCancellation(t *testing.T) {
	srv, es := newTestWorker(t)
	remote := &RemoteExecutor{BaseURL: srv.URL, PollInterval: 5 * time.Millisecond}

	ctx, cancel := context.WithCancel(context.Background())
	// L is large enough to cancel mid-labeling but small enough that the
	// pipeline's non-cancellable sections (training, sampling) stay
	// short even under -race on a loaded machine.
	req := Request{Dataset: testDataset(300, rand.New(rand.NewSource(10))), L: 400000, Seed: 1}
	done := make(chan error, 1)
	go func() {
		_, err := remote.Execute(ctx, req, nil)
		done <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if started, _ := es.Executions(); started > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never accepted the execution")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Let the POST response finish so the client is in its polling loop
	// (a cancel mid-POST is a different, also-correct path: the worker
	// orphan is reclaimed by retention GC, which this test is not
	// about).
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("execute did not return after cancel")
	}
	// The DELETE propagated: the worker-side execution stops too (at
	// its next cancellation point — labeling checks every chunk, but
	// training and sampling do not, hence the generous deadline).
	deadline = time.Now().Add(120 * time.Second)
	for {
		if _, active := es.Executions(); active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker-side execution still active after remote cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestExecServerUnknownExecution(t *testing.T) {
	srv, _ := newTestWorker(t)
	remote := &RemoteExecutor{BaseURL: srv.URL}
	_, err := remote.poll(context.Background(), "exec-999999")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("poll of unknown id: err = %v, want ErrUnavailable", err)
	}
}

func TestExecServerRetentionSweep(t *testing.T) {
	// Retention must comfortably exceed the polling cadence so the test
	// reliably observes the terminal status before the sweep fires.
	const retention = 2 * time.Second
	es := NewExecServer(NewLocalExecutor(LocalExecutorOptions{}), ExecServerOptions{Retention: retention})
	defer es.Close()
	srv := httptest.NewServer(es.Handler())
	defer srv.Close()
	remote := &RemoteExecutor{BaseURL: srv.URL}

	body, _ := json.Marshal(Request{Function: "morris", N: 60, L: 300})
	id, err := remote.start(context.Background(), body)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	// Wait for the execution to finish, without DELETE-acknowledging.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := remote.poll(context.Background(), id)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if st.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("execution never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Past retention, the entry is garbage-collected on the next sweep.
	time.Sleep(retention + 100*time.Millisecond)
	if _, err := remote.poll(context.Background(), id); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("swept execution still served: err = %v", err)
	}
}
