package experiment

import (
	"fmt"
	"io"

	"github.com/reds-go/reds/internal/stats"
)

// Table3Methods are the PRIM-based procedures compared in Table 3 and
// Figure 7 of the paper.
var Table3Methods = []string{"P", "Pc", "PB", "PBc", "RPf", "RPx", "RPs"}

// Table3Result holds the suite behind Table 3 (a)-(e) and Figure 7.
type Table3Result struct {
	Suite   *Suite
	Methods []string
}

// Table3 runs the PRIM-based comparison across all configured functions
// and training sizes.
func Table3(cfg Config) (*Table3Result, error) {
	suite, err := runSuite(cfg, Table3Methods, cfg.Ns, nil, false, nil)
	if err != nil {
		return nil, err
	}
	return &Table3Result{Suite: suite, Methods: Table3Methods}, nil
}

// panel describes one sub-table of Table 3/4: a caption plus a per-cell
// aggregate.
type panel struct {
	caption string
	agg     func(*CellResult, string) float64
}

func primPanels() []panel {
	return []panel{
		{"(a) Average PR AUC (x100)", scaled(cellMean(MetricPRAUC), 100)},
		{"(b) Average precision (x100)", scaled(cellMean(MetricPrecision), 100)},
		{"(c) Average consistency (x100)", scaled(cellConsistency(), 100)},
		{"(d) Average number of restricted inputs", cellMean(MetricRestricted)},
		{"(e) Average number of irrelevantly restricted inputs", cellMean(MetricIrrel)},
	}
}

func scaled(agg func(*CellResult, string) float64, k float64) func(*CellResult, string) float64 {
	return func(c *CellResult, m string) float64 { return k * agg(c, m) }
}

// Render writes the five panels, the morris N=800 row when available,
// and the significance analysis of Section 9.1.1.
func (t *Table3Result) Render(w io.Writer) {
	renderPanels(w, "Table 3: Quality of PRIM-based methods, all functions", t.Suite, t.Methods, primPanels())

	// Headline significance test: RPx vs Pc on PR AUC at the middle N.
	n := midN(t.Suite.Ns)
	matrix := t.Suite.perRunMatrix(n, []string{"RPx", "Pc"}, cellMean(MetricPRAUC))
	if len(matrix) >= 2 {
		p := stats.FriedmanPostHoc(matrix, 0, 1)
		fmt.Fprintf(w, "\nPost-hoc RPx vs Pc on PR AUC (N=%d): p = %.4g (paper: <= 1e-3)\n", n, p)
	}
	rho := t.Suite.spearmanDimVsImprovement(n, "RPx", "Pc", cellMean(MetricPRAUC))
	fmt.Fprintf(w, "Spearman(M, PR AUC gain of RPx over Pc) at N=%d: %.2f (paper: 0.74)\n", n, rho)
}

// RenderFig7 writes the Figure 7 quartile summaries: per-function
// percentage change relative to Pc at N = 400 (or the middle configured
// N).
func (t *Table3Result) RenderFig7(w io.Writer) {
	n := midN(t.Suite.Ns)
	fmt.Fprintf(w, "Figure 7: quality change in %% relative to \"Pc\", N=%d\n", n)
	fmt.Fprintf(w, "(median [Q1, Q3] across functions)\n")
	metricsList := []struct {
		name string
		agg  func(*CellResult, string) float64
	}{
		{"PR AUC", cellMean(MetricPRAUC)},
		{"precision", cellMean(MetricPrecision)},
		{"consistency", cellConsistency()},
		{"# restricted", cellMean(MetricRestricted)},
	}
	for _, m := range metricsList {
		fmt.Fprintf(w, "\n  %s:\n", m.name)
		for _, method := range []string{"P", "PB", "PBc", "RPf", "RPx", "RPs"} {
			changes := t.Suite.pctChanges(n, method, "Pc", m.agg)
			fmt.Fprintf(w, "    %-5s %s\n", method, quartileRow(changes))
		}
	}
}

// renderPanels renders the shared (a)-(e) layout of Tables 3 and 4.
func renderPanels(w io.Writer, title string, suite *Suite, methodNames []string, panels []panel) {
	fmt.Fprintln(w, title)
	for _, p := range panels {
		fmt.Fprintf(w, "\n%s\n", p.caption)
		fmt.Fprintf(w, "%-8s", "N")
		for _, m := range methodNames {
			fmt.Fprintf(w, "  %8s", m)
		}
		fmt.Fprintln(w)
		for _, n := range suite.Ns {
			fmt.Fprintf(w, "%-8d", n)
			for _, m := range methodNames {
				v := suite.avgOver(n, func(c *CellResult) float64 { return p.agg(c, m) })
				fmt.Fprintf(w, "  %8.2f", v)
			}
			fmt.Fprintln(w)
		}
		// The paper's extra "mor800" row: morris alone at N = 800.
		if cell, ok := suite.Cells["morris"]; ok {
			if c800, ok := cell[800]; ok {
				fmt.Fprintf(w, "%-8s", "mor800")
				for _, m := range methodNames {
					fmt.Fprintf(w, "  %8.2f", p.agg(c800, m))
				}
				fmt.Fprintln(w)
			}
		}
	}
}

// midN picks N = 400 when configured, otherwise the middle entry.
func midN(ns []int) int {
	for _, n := range ns {
		if n == 400 {
			return 400
		}
	}
	return ns[len(ns)/2]
}
