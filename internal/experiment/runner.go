package experiment

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/reds-go/reds/internal/box"
	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/metrics"
	"github.com/reds-go/reds/internal/sample"
)

// RepOutcome is the scored result of one method on one repetition.
type RepOutcome struct {
	Method     string
	Rep        int
	PRAUC      float64
	Precision  float64 // of the final box on test data
	Recall     float64
	WRAcc      float64 // of the final box on test data
	TrainWRAcc float64 // of the final box on train data (Figure 6)
	Restricted int
	Irrel      int
	Final      *box.Box
	Seconds    float64
}

// CellResult aggregates all repetitions of one (function, N) cell.
type CellResult struct {
	Function string
	N        int
	ByMethod map[string][]RepOutcome
	// Domain for consistency computations (records discrete levels).
	Domain metrics.Domain
}

// Cell is the work order for RunCell.
type Cell struct {
	Function funcs.Function
	N        int
	Reps     int
	Methods  []string
	// Sampler draws the training designs (default Latin hypercube, per
	// Section 8.5). REDS reuses it as its p(x).
	Sampler sample.Sampler
	// Mixed marks the even inputs as discrete (Section 9.1.2).
	Mixed bool
	// L overrides the REDS pseudo-dataset size per method kind.
	LPrim, LBI int
	// Test is the shared independent test set.
	Test *dataset.Dataset
	// Seed anchors this cell's randomness.
	Seed int64
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
}

// RunCell executes Reps repetitions of every method on fresh training
// data from the cell's sampler, scoring each run on the shared test set.
// Repetitions run in parallel; within a repetition all methods see the
// same training data, enabling the paired comparisons of Section 9.
func RunCell(c Cell) (*CellResult, error) {
	if c.Function == nil || c.Test == nil {
		return nil, fmt.Errorf("experiment: cell needs a function and a test set")
	}
	if c.Reps < 1 || c.N < 1 || len(c.Methods) == 0 {
		return nil, fmt.Errorf("experiment: degenerate cell %+v", c)
	}
	smp := c.Sampler
	if smp == nil {
		smp = sample.LatinHypercube{}
	}
	resolved := make([]Method, len(c.Methods))
	for i, name := range c.Methods {
		m, err := Get(name)
		if err != nil {
			return nil, err
		}
		resolved[i] = m
	}

	dom := metrics.UnitDomain(c.Function.Dim())
	if c.Mixed {
		mask := sample.DiscreteMask(c.Function.Dim())
		dom.Levels = make([][]float64, c.Function.Dim())
		for j, disc := range mask {
			if disc {
				dom.Levels[j] = sample.MixedLevels
			}
		}
	}

	result := &CellResult{
		Function: c.Function.Name(),
		N:        c.N,
		ByMethod: make(map[string][]RepOutcome, len(resolved)),
		Domain:   dom,
	}
	outcomes := make([][]RepOutcome, c.Reps)

	workers := c.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.Reps {
		workers = c.Reps
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	errs := make([]error, c.Reps)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range jobs {
				outcomes[rep], errs[rep] = runRep(c, smp, resolved, rep)
			}
		}()
	}
	for rep := 0; rep < c.Reps; rep++ {
		jobs <- rep
	}
	close(jobs)
	wg.Wait()
	for rep, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: %s N=%d rep %d: %w", c.Function.Name(), c.N, rep, err)
		}
	}
	for _, out := range outcomes {
		for _, o := range out {
			result.ByMethod[o.Method] = append(result.ByMethod[o.Method], o)
		}
	}
	return result, nil
}

// runRep generates the rep's training data and runs every method on it.
func runRep(c Cell, smp sample.Sampler, resolved []Method, rep int) ([]RepOutcome, error) {
	rng := rand.New(rand.NewSource(seedFor(c.Seed, c.Function.Name(), c.N, rep, "data")))
	train := funcs.Generate(c.Function, c.N, smp, rng)
	if c.Mixed {
		train.Discrete = sample.DiscreteMask(c.Function.Dim())
	}

	out := make([]RepOutcome, 0, len(resolved))
	for _, m := range resolved {
		mcfg := MethodConfig{Sampler: smp}
		if m.Kind == PRIMBased {
			mcfg.L = c.LPrim
		} else {
			mcfg.L = c.LBI
		}
		mrng := rand.New(rand.NewSource(seedFor(c.Seed, c.Function.Name(), c.N, rep, m.Name)))
		start := time.Now()
		disc, err := m.Build(train, mcfg, mrng)
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", m.Name, err)
		}
		res, err := disc.Discover(train, train, mrng)
		if err != nil {
			return nil, fmt.Errorf("running %s: %w", m.Name, err)
		}
		elapsed := time.Since(start).Seconds()

		final := res.Final()
		prec, rec := metrics.PrecisionRecall(final, c.Test)
		o := RepOutcome{
			Method:     m.Name,
			Rep:        rep,
			PRAUC:      metrics.ResultPRAUC(res, c.Test),
			Precision:  prec,
			Recall:     rec,
			WRAcc:      metrics.WRAcc(final, c.Test),
			TrainWRAcc: metrics.WRAcc(final, train),
			Restricted: final.Restricted(),
			Irrel:      metrics.Irrelevant(final, c.Function.Relevant()),
			Final:      final,
			Seconds:    elapsed,
		}
		out = append(out, o)
	}
	return out, nil
}

// seedFor derives a stable 63-bit seed from the experiment seed and a
// label tuple, so every (function, N, rep, method) sees reproducible yet
// distinct randomness.
func seedFor(base int64, name string, n, rep int, tag string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d|%s", base, name, n, rep, tag)
	return int64(h.Sum64() & (1<<63 - 1))
}

// Aggregates of a method within one cell.

// Mean returns the mean of metric over the method's outcomes.
func (c *CellResult) Mean(method string, metric func(RepOutcome) float64) float64 {
	outs := c.ByMethod[method]
	if len(outs) == 0 {
		return 0
	}
	s := 0.0
	for _, o := range outs {
		s += metric(o)
	}
	return s / float64(len(outs))
}

// Values extracts a metric column for the method.
func (c *CellResult) Values(method string, metric func(RepOutcome) float64) []float64 {
	outs := c.ByMethod[method]
	vals := make([]float64, len(outs))
	for i, o := range outs {
		vals[i] = metric(o)
	}
	return vals
}

// Consistency computes the pairwise Vo/Vu consistency of the method's
// final boxes (Definition 2) under the cell's domain.
func (c *CellResult) Consistency(method string) float64 {
	outs := c.ByMethod[method]
	boxes := make([]*box.Box, len(outs))
	for i, o := range outs {
		boxes[i] = o.Final
	}
	return metrics.Consistency(boxes, c.Domain)
}

// Metric selector helpers used by the drivers.
var (
	MetricPRAUC      = func(o RepOutcome) float64 { return o.PRAUC }
	MetricPrecision  = func(o RepOutcome) float64 { return o.Precision }
	MetricWRAcc      = func(o RepOutcome) float64 { return o.WRAcc }
	MetricTrainWRAcc = func(o RepOutcome) float64 { return o.TrainWRAcc }
	MetricRestricted = func(o RepOutcome) float64 { return float64(o.Restricted) }
	MetricIrrel      = func(o RepOutcome) float64 { return float64(o.Irrel) }
	MetricSeconds    = func(o RepOutcome) float64 { return o.Seconds }
)

// TestSet generates the shared test set for a function with a seed
// derived only from the experiment seed and the function name, so every
// cell of an experiment scores against identical data.
func TestSet(f funcs.Function, testN int, baseSeed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seedFor(baseSeed, f.Name(), testN, -1, "test")))
	return funcs.Generate(f, testN, sample.Uniform{}, rng)
}

// testSetCache shares test sets across drivers in one process.
var (
	testMu    sync.Mutex
	testCache = map[string]*dataset.Dataset{}
)

// CachedTestSet memoizes TestSet per (function, size, seed).
func CachedTestSet(f funcs.Function, testN int, baseSeed int64) *dataset.Dataset {
	return cachedTestSetWith(f, testN, baseSeed, sample.Uniform{}, "uniform")
}

// cachedTestSetWith memoizes test sets for arbitrary sampling
// distributions: non-uniform experiments (mixed inputs, semi-supervised
// logit-normal) must also evaluate under their own p(x).
func cachedTestSetWith(f funcs.Function, testN int, baseSeed int64, smp sample.Sampler, tag string) *dataset.Dataset {
	if smp == nil {
		smp, tag = sample.Uniform{}, "uniform"
	}
	key := fmt.Sprintf("%s|%d|%d|%s", f.Name(), testN, baseSeed, tag)
	testMu.Lock()
	defer testMu.Unlock()
	if d, ok := testCache[key]; ok {
		return d
	}
	rng := rand.New(rand.NewSource(seedFor(baseSeed, f.Name(), testN, -1, "test|"+tag)))
	d := funcs.Generate(f, testN, smp, rng)
	testCache[key] = d
	return d
}
