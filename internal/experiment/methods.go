package experiment

import (
	"fmt"
	"math/rand"

	"github.com/reds-go/reds/internal/bi"
	"github.com/reds-go/reds/internal/core"
	"github.com/reds-go/reds/internal/cv"
	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/gbt"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/prim"
	"github.com/reds-go/reds/internal/rf"
	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/sd"
	"github.com/reds-go/reds/internal/svm"
)

// Kind distinguishes the two method families of Section 9, which are
// scored with different headline metrics.
type Kind int

const (
	// PRIMBased methods report PR AUC / precision (Table 3).
	PRIMBased Kind = iota
	// BIBased methods report WRAcc (Table 4).
	BIBased
)

// Method is a named scenario-discovery procedure following the paper's
// conventions (Section 8.2): "P" peel, "B" bumping / "BI" BestInterval,
// "c" cross-validated hyperparameters, "R" REDS with metamodel suffixes
// "f"/"x"/"s" and "p" for probability labels.
type Method struct {
	Name string
	Kind Kind
	// Build assembles the configured discoverer for the given training
	// data; cross-validated hyperparameter selection happens here, so
	// measured runtimes include it like the paper's do.
	Build func(d *dataset.Dataset, mcfg MethodConfig, rng *rand.Rand) (sd.Discoverer, error)
}

// MethodConfig carries the experiment-level knobs a method needs.
type MethodConfig struct {
	// L is the REDS pseudo-dataset size (set from Config.LPrim/LBI).
	L int
	// Sampler generates REDS's new points; must match the p(x) of the
	// training data (Section 6.1). Defaults to Latin hypercube.
	Sampler sample.Sampler
	// MinPoints is PRIM's support floor (20 throughout the paper).
	MinPoints int
	// Q is the bumping repetition count (50 throughout the paper).
	Q int
}

func (m MethodConfig) withDefaults() MethodConfig {
	if m.MinPoints == 0 {
		m.MinPoints = 20
	}
	if m.Q == 0 {
		m.Q = 50
	}
	if m.L == 0 {
		m.L = 10000
	}
	if m.Sampler == nil {
		m.Sampler = sample.LatinHypercube{}
	}
	return m
}

// trainer returns the metamodel trainer for a REDS suffix.
func trainer(code byte, m int) (metamodel.Trainer, error) {
	switch code {
	case 'f':
		return rf.TunedTrainer(m), nil
	case 'x':
		return gbt.TunedTrainer(), nil
	case 's':
		return svm.TunedTrainer(), nil
	}
	return nil, fmt.Errorf("experiment: unknown metamodel code %q", string(code))
}

// methods is the registry of all named procedures used in Section 9.
var methods = map[string]Method{}

func registerMethod(m Method) {
	if _, dup := methods[m.Name]; dup {
		panic("experiment: duplicate method " + m.Name)
	}
	methods[m.Name] = m
}

// Get returns a registered method.
func Get(name string) (Method, error) {
	m, ok := methods[name]
	if !ok {
		return Method{}, fmt.Errorf("experiment: unknown method %q", name)
	}
	return m, nil
}

// MethodNames lists all registered methods.
func MethodNames() []string {
	out := make([]string, 0, len(methods))
	for n := range methods {
		out = append(out, n)
	}
	return out
}

func init() {
	// --- Conventional PRIM-based baselines ---
	registerMethod(Method{Name: "P", Kind: PRIMBased,
		Build: func(d *dataset.Dataset, mcfg MethodConfig, rng *rand.Rand) (sd.Discoverer, error) {
			return &prim.Peeler{Alpha: 0.05, MinPoints: mcfg.MinPoints}, nil
		}})
	registerMethod(Method{Name: "Pc", Kind: PRIMBased,
		Build: func(d *dataset.Dataset, mcfg MethodConfig, rng *rand.Rand) (sd.Discoverer, error) {
			alpha, err := cv.SelectAlpha(d, mcfg.MinPoints, rng)
			if err != nil {
				return nil, err
			}
			return &prim.Peeler{Alpha: alpha, MinPoints: mcfg.MinPoints}, nil
		}})
	registerMethod(Method{Name: "PB", Kind: PRIMBased,
		Build: func(d *dataset.Dataset, mcfg MethodConfig, rng *rand.Rand) (sd.Discoverer, error) {
			return &prim.Bumping{Alpha: 0.05, MinPoints: mcfg.MinPoints, Q: mcfg.Q}, nil
		}})
	registerMethod(Method{Name: "PBc", Kind: PRIMBased,
		Build: func(d *dataset.Dataset, mcfg MethodConfig, rng *rand.Rand) (sd.Discoverer, error) {
			alpha, err := cv.SelectAlpha(d, mcfg.MinPoints, rng)
			if err != nil {
				return nil, err
			}
			m, err := cv.SelectMBumping(d, alpha, mcfg.MinPoints, mcfg.Q, rng)
			if err != nil {
				return nil, err
			}
			return &prim.Bumping{Alpha: alpha, MinPoints: mcfg.MinPoints, Q: mcfg.Q, SubsetSize: m}, nil
		}})

	// --- REDS with PRIM ---
	for _, mm := range []byte{'f', 'x', 's'} {
		mm := mm
		registerMethod(Method{Name: "RP" + string(mm), Kind: PRIMBased,
			Build: redsPrimBuilder(mm, false, false)})
		if mm != 's' { // probability labels only for rf and xgb (Section 6.1)
			registerMethod(Method{Name: "RP" + string(mm) + "p", Kind: PRIMBased,
				Build: redsPrimBuilder(mm, true, false)})
		}
	}
	// "RPcxp": CV-selected alpha + xgb + probability labels (Section 9.1.2).
	registerMethod(Method{Name: "RPcxp", Kind: PRIMBased,
		Build: redsPrimBuilder('x', true, true)})

	// --- BI-based ---
	registerMethod(Method{Name: "BI", Kind: BIBased,
		Build: func(d *dataset.Dataset, mcfg MethodConfig, rng *rand.Rand) (sd.Discoverer, error) {
			return &bi.BI{BeamSize: 1}, nil
		}})
	registerMethod(Method{Name: "BI5", Kind: BIBased,
		Build: func(d *dataset.Dataset, mcfg MethodConfig, rng *rand.Rand) (sd.Discoverer, error) {
			return &bi.BI{BeamSize: 5}, nil
		}})
	registerMethod(Method{Name: "BIc", Kind: BIBased,
		Build: func(d *dataset.Dataset, mcfg MethodConfig, rng *rand.Rand) (sd.Discoverer, error) {
			m, err := cv.SelectMBI(d, 1, rng)
			if err != nil {
				return nil, err
			}
			return &bi.BI{BeamSize: 1, Depth: m}, nil
		}})
	registerMethod(Method{Name: "RBIcxp", Kind: BIBased, Build: redsBIBuilder('x')})
	registerMethod(Method{Name: "RBIcfp", Kind: BIBased, Build: redsBIBuilder('f')})
}

// redsPrimBuilder assembles a REDS+PRIM method: metamodel mm, optional
// probability labels, optional CV-selected alpha (selected on D, per
// Section 8.4.3).
func redsPrimBuilder(mm byte, probLabels, cvAlpha bool) func(*dataset.Dataset, MethodConfig, *rand.Rand) (sd.Discoverer, error) {
	return func(d *dataset.Dataset, mcfg MethodConfig, rng *rand.Rand) (sd.Discoverer, error) {
		mcfg = mcfg.withDefaults()
		tr, err := trainer(mm, d.M())
		if err != nil {
			return nil, err
		}
		alpha := 0.05
		if cvAlpha {
			if alpha, err = cv.SelectAlpha(d, mcfg.MinPoints, rng); err != nil {
				return nil, err
			}
		}
		return &core.REDS{
			Metamodel:  tr,
			Sampler:    mcfg.Sampler,
			L:          mcfg.L,
			SD:         &prim.Peeler{Alpha: alpha, MinPoints: mcfg.MinPoints},
			ProbLabels: probLabels,
		}, nil
	}
}

// redsBIBuilder assembles a REDS+BIc method with probability labels: the
// depth m is cross-validated on D, not on Dnew (Section 8.4.3).
func redsBIBuilder(mm byte) func(*dataset.Dataset, MethodConfig, *rand.Rand) (sd.Discoverer, error) {
	return func(d *dataset.Dataset, mcfg MethodConfig, rng *rand.Rand) (sd.Discoverer, error) {
		mcfg = mcfg.withDefaults()
		tr, err := trainer(mm, d.M())
		if err != nil {
			return nil, err
		}
		m, err := cv.SelectMBI(d, 1, rng)
		if err != nil {
			return nil, err
		}
		return &core.REDS{
			Metamodel:  tr,
			Sampler:    mcfg.Sampler,
			L:          mcfg.L,
			SD:         &bi.BI{BeamSize: 1, Depth: m},
			ProbLabels: true,
		}, nil
	}
}
