package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/lake"
	"github.com/reds-go/reds/internal/report"
	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/tgl"
)

// Table1Result verifies the reproduction of the paper's Table 1: for
// every data source, the input count M, the relevant-input count I and a
// Monte-Carlo estimate of the positive share, next to the paper's values.
type Table1Result struct {
	Rows [][]string
}

// Table1 measures every data source. The Monte-Carlo sample size scales
// with cfg.TestN.
func Table1(cfg Config) (*Table1Result, error) {
	n := cfg.TestN
	if n < 2000 {
		n = 2000
	}
	res := &Table1Result{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, meta := range funcs.Table1 {
		f, err := funcs.Get(meta.Name)
		if err != nil {
			return nil, err
		}
		share := 100 * funcs.Share(f, n, rng)
		kind := "exact"
		if !meta.Exact {
			kind = "stand-in"
		}
		res.Rows = append(res.Rows, []string{
			meta.Name, fmt.Sprintf("%d", meta.M), fmt.Sprintf("%d", meta.I),
			fmt.Sprintf("%.1f", meta.SharePct), fmt.Sprintf("%.1f", share), kind,
		})
	}
	// dsgc (Halton design, per Section 8.5).
	d := dsgcShare(cfg, n/4)
	res.Rows = append(res.Rows, []string{"dsgc", "12", "12", "53.7", fmt.Sprintf("%.1f", d), "simulator"})
	// Third-party datasets.
	res.Rows = append(res.Rows, []string{"TGL", "9", "na", "10.1",
		fmt.Sprintf("%.1f", 100*tgl.Dataset(cfg.Seed).PositiveShare()), "stand-in"})
	res.Rows = append(res.Rows, []string{"lake", "5", "na", "33.5",
		fmt.Sprintf("%.1f", 100*lake.Dataset(1000, cfg.Seed).PositiveShare()), "simulator"})
	return res, nil
}

func dsgcShare(cfg Config, n int) float64 {
	f, err := Function("dsgc")
	if err != nil {
		return 0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pts := sample.Halton{}.Sample(n, f.Dim(), rng)
	s := 0.0
	for _, x := range pts {
		s += funcs.Label(f, x, rng)
	}
	return 100 * s / float64(n)
}

// Render prints the comparison table.
func (r *Table1Result) Render(w io.Writer) {
	tbl := &report.Table{
		Title:  "Table 1: data sources — paper vs reproduced positive shares",
		Header: []string{"function", "M", "I", "share paper %", "share measured %", "formula"},
	}
	for _, row := range r.Rows {
		cells := make([]interface{}, len(row))
		for i, c := range row {
			cells[i] = c
		}
		tbl.Add(cells...)
	}
	tbl.Render(w)
}
