// Package experiment reproduces the evaluation of the paper: the method
// registry with the naming scheme of Section 8.2, a parallel repetition
// runner implementing the design of experiments of Section 8.5, and one
// driver per table and figure of Section 9.
package experiment

import (
	"io"
	"os"

	"github.com/reds-go/reds/internal/dsgc"
	"github.com/reds-go/reds/internal/funcs"
)

// Config scales the experiments. The paper's full scale (50 repetitions,
// 33 functions, L = 10^5) takes CPU-days; the default configuration keeps
// the same structure at a fraction of the cost. Paper() restores full
// scale.
type Config struct {
	// Funcs are the data-source names to include ("" entries are skipped).
	Funcs []string
	// Reps is the number of repetitions per (function, N) cell.
	Reps int
	// Ns are the training-set sizes.
	Ns []int
	// TestN is the independent test-set size (paper: 20000).
	TestN int
	// LPrim / LBI are REDS's new-dataset sizes for PRIM- and BI-based
	// methods (paper: 100000 and 10000).
	LPrim int
	LBI   int
	// Seed anchors all randomness.
	Seed int64
	// Workers caps parallel repetitions; 0 = GOMAXPROCS.
	Workers int
	// Out receives rendered tables and charts (default os.Stdout).
	Out io.Writer
}

// DefaultFuncs is a representative cross-section of Table 1: stochastic
// Dalal-style functions, verified engineering functions, a
// high-dimensional screen, and stand-ins, covering M from 3 to 20.
var DefaultFuncs = []string{
	"f2", "f7", "hart3", "ishigami", "borehole", "morris", "ellipse", "linketal06simple",
}

// Default returns the reduced-scale configuration.
func Default() Config {
	return Config{
		Funcs: DefaultFuncs,
		Reps:  5,
		Ns:    []int{200, 400},
		TestN: 5000,
		LPrim: 20000,
		LBI:   4000,
		Seed:  1,
		Out:   os.Stdout,
	}
}

// Paper returns the full-scale configuration of Section 8.5.
func Paper() Config {
	names := make([]string, 0, len(funcs.Table1)+1)
	for _, m := range funcs.Table1 {
		names = append(names, m.Name)
	}
	names = append(names, "dsgc")
	return Config{
		Funcs: names,
		Reps:  50,
		Ns:    []int{200, 400, 800},
		TestN: 20000,
		LPrim: 100000,
		LBI:   10000,
		Seed:  1,
		Out:   os.Stdout,
	}
}

// Function resolves a data-source name to its model: the analytic
// registry of Table 1 plus the dsgc simulator.
func Function(name string) (funcs.Function, error) {
	if name == "dsgc" {
		return dsgc.New(), nil
	}
	return funcs.Get(name)
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}
