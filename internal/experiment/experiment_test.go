package experiment

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/metrics"
	"github.com/reds-go/reds/internal/sample"
)

// tiny returns a minimal configuration that exercises every code path in
// seconds.
func tiny() Config {
	return Config{
		Funcs: []string{"f2", "hart3"},
		Reps:  3,
		Ns:    []int{100},
		TestN: 800,
		LPrim: 1500,
		LBI:   800,
		Seed:  7,
	}
}

func TestMethodRegistry(t *testing.T) {
	want := []string{"P", "Pc", "PB", "PBc", "RPf", "RPx", "RPs", "RPfp", "RPxp", "RPcxp",
		"BI", "BI5", "BIc", "RBIcxp", "RBIcfp"}
	for _, name := range want {
		if _, err := Get(name); err != nil {
			t.Errorf("method %q missing: %v", name, err)
		}
	}
	if _, err := Get("XYZ"); err == nil {
		t.Error("unknown method must error")
	}
	if len(MethodNames()) != len(want) {
		t.Errorf("registry has %d methods, want %d", len(MethodNames()), len(want))
	}
}

func TestFunctionResolver(t *testing.T) {
	f, err := Function("dsgc")
	if err != nil || f.Name() != "dsgc" {
		t.Errorf("dsgc resolution failed: %v", err)
	}
	if _, err := Function("morris"); err != nil {
		t.Errorf("morris resolution failed: %v", err)
	}
	if _, err := Function("nope"); err == nil {
		t.Error("unknown function must error")
	}
}

func TestRunCellBasics(t *testing.T) {
	f, _ := funcs.Get("f2")
	test := CachedTestSet(f, 500, 1)
	cell, err := RunCell(Cell{
		Function: f, N: 80, Reps: 3,
		Methods: []string{"P", "RPx"},
		LPrim:   1000, LBI: 500,
		Test: test, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"P", "RPx"} {
		outs := cell.ByMethod[m]
		if len(outs) != 3 {
			t.Fatalf("%s has %d outcomes, want 3", m, len(outs))
		}
		for _, o := range outs {
			if o.PRAUC < 0 || o.PRAUC > 1 {
				t.Errorf("%s PRAUC %g out of range", m, o.PRAUC)
			}
			if o.Precision < 0 || o.Precision > 1 {
				t.Errorf("%s precision %g out of range", m, o.Precision)
			}
			if o.Final == nil {
				t.Errorf("%s missing final box", m)
			}
			if o.Seconds <= 0 {
				t.Errorf("%s missing runtime", m)
			}
		}
	}
	if c := cell.Consistency("P"); c < 0 || c > 1 {
		t.Errorf("consistency %g out of range", c)
	}
	if cell.Mean("P", MetricPRAUC) == 0 && cell.Mean("RPx", MetricPRAUC) == 0 {
		t.Error("all PR AUCs zero — trajectories empty?")
	}
}

func TestRunCellDeterministic(t *testing.T) {
	f, _ := funcs.Get("hart3")
	test := CachedTestSet(f, 400, 2)
	run := func() *CellResult {
		cell, err := RunCell(Cell{
			Function: f, N: 60, Reps: 2,
			Methods: []string{"P"},
			LPrim:   500, LBI: 500,
			Test: test, Seed: 5, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cell
	}
	a, b := run(), run()
	for rep := range a.ByMethod["P"] {
		if a.ByMethod["P"][rep].PRAUC != b.ByMethod["P"][rep].PRAUC {
			t.Fatal("RunCell must be deterministic for a fixed seed")
		}
	}
}

func TestRunCellValidation(t *testing.T) {
	f, _ := funcs.Get("f2")
	if _, err := RunCell(Cell{}); err == nil {
		t.Error("empty cell must error")
	}
	if _, err := RunCell(Cell{Function: f, Test: CachedTestSet(f, 100, 1)}); err == nil {
		t.Error("degenerate cell must error")
	}
	if _, err := RunCell(Cell{Function: f, Test: CachedTestSet(f, 100, 1),
		N: 50, Reps: 1, Methods: []string{"??"}}); err == nil {
		t.Error("unknown method must error")
	}
}

func TestTable3SmokeAndRender(t *testing.T) {
	cfg := tiny()
	res, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	res.RenderFig7(&buf)
	out := buf.String()
	for _, want := range []string{"Table 3", "PR AUC", "precision", "consistency", "Figure 7", "RPx"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTable4SmokeAndRender(t *testing.T) {
	cfg := tiny()
	res, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	res.RenderFig8(&buf)
	out := buf.String()
	for _, want := range []string{"Table 4", "WRAcc", "RBIcxp", "Figure 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig6Smoke(t *testing.T) {
	cfg := tiny()
	cfg.Reps = 4
	res, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "tBIc") {
		t.Error("Figure 6 output incomplete")
	}
	// Core claim of Example 8.1: train evaluation inflates quality.
	tbi := res.Cell.Mean("BI", MetricTrainWRAcc)
	bi := res.Cell.Mean("BI", MetricWRAcc)
	if tbi < bi {
		t.Errorf("train WRAcc (%.4f) should exceed test WRAcc (%.4f)", tbi, bi)
	}
}

func TestFig13Smoke(t *testing.T) {
	cfg := tiny()
	cfg.Reps = 2
	cfg.LPrim = 1500
	res, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"TGL", "lake", "consistency"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig14Smoke(t *testing.T) {
	cfg := tiny()
	res, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "logit-normal") {
		t.Error("Figure 14 output incomplete")
	}
}

func TestSeedForDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for rep := 0; rep < 10; rep++ {
		for _, tag := range []string{"data", "P", "RPx"} {
			s := seedFor(1, "f", 100, rep, tag)
			if seen[s] {
				t.Fatalf("seed collision at rep %d tag %s", rep, tag)
			}
			seen[s] = true
		}
	}
	if seedFor(1, "f", 100, 0, "x") != seedFor(1, "f", 100, 0, "x") {
		t.Error("seedFor must be stable")
	}
}

func TestInterpPrecision(t *testing.T) {
	pts := []metrics.PRPoint{{Recall: 0.2, Precision: 1}, {Recall: 1, Precision: 0.5}}
	if p, ok := interpPrecision(pts, 0.6); !ok || p != 0.75 {
		t.Errorf("interp = %g, %v; want 0.75, true", p, ok)
	}
	if _, ok := interpPrecision(pts, 0.1); ok {
		t.Error("below range must not interpolate")
	}
	if p, ok := interpPrecision(pts, 1); !ok || p != 0.5 {
		t.Errorf("right endpoint = %g, %v", p, ok)
	}
	if _, ok := interpPrecision(nil, 0.5); ok {
		t.Error("empty curve must not interpolate")
	}
}

func TestSamplerTag(t *testing.T) {
	if samplerTag(nil) != "uniform" || samplerTag(sample.Uniform{}) != "uniform" {
		t.Error("uniform tags wrong")
	}
	if samplerTag(sample.Mixed{}) != "mixed" || samplerTag(sample.LogitNormal{}) != "logitnormal" {
		t.Error("sampler tags wrong")
	}
}

func TestShareUnder(t *testing.T) {
	f, _ := funcs.Get("f1")
	rng := rand.New(rand.NewSource(3))
	s := shareUnder(f, sample.LogitNormal{Sigma: 1}, 2000, rng)
	if s <= 0 || s >= 1 {
		t.Errorf("share = %g", s)
	}
}

func TestTable1Smoke(t *testing.T) {
	cfg := tiny()
	res, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 32 analytic functions + dsgc + TGL + lake.
	if len(res.Rows) != 35 {
		t.Fatalf("Table1 has %d rows, want 35", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	for _, want := range []string{"morris", "dsgc", "TGL", "lake", "stand-in", "exact"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestAblationSmoke(t *testing.T) {
	cfg := tiny()
	cfg.Funcs = []string{"f2"}
	cfg.Reps = 2
	res, err := Ablation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"pseudo-val", "prob-labels", "lift-objective", "with-pasting", "PR AUC"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
	// Every variant must have run on the function.
	if len(res.Rows["f2"]) != len(AblationOrder) {
		t.Errorf("variants run: %d, want %d", len(res.Rows["f2"]), len(AblationOrder))
	}
}

func TestFig9Smoke(t *testing.T) {
	cfg := tiny()
	cfg.Funcs = []string{"f2"}
	cfg.Reps = 2
	res, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "runtime") {
		t.Error("Fig9 output incomplete")
	}
}

func TestFig10Smoke(t *testing.T) {
	cfg := tiny()
	cfg.Reps = 2
	res, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "mixed inputs") {
		t.Error("Fig10 output incomplete")
	}
}

func TestFig11Smoke(t *testing.T) {
	cfg := tiny()
	cfg.Reps = 2
	cfg.LPrim = 1000
	res, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "peeling trajectories") || !strings.Contains(out, "RPx") {
		t.Error("Fig11 output incomplete")
	}
}

func TestFig12Smoke(t *testing.T) {
	cfg := tiny()
	cfg.Reps = 2
	cfg.LPrim = 800
	cfg.LBI = 800
	res, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"(a)", "(b)", "(c)", "(d)", "RPxp"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig12 output missing %q", want)
		}
	}
}
