package experiment

import (
	"fmt"
	"sort"

	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/stats"
)

// Suite holds the cells of a multi-function, multi-N experiment:
// cells[function][N] -> CellResult.
type Suite struct {
	Cells map[string]map[int]*CellResult
	Funcs []string
	Ns    []int
}

// runSuite executes one cell per (function, N) with the shared test set
// of each function.
func runSuite(cfg Config, methodNames []string, ns []int, smp sample.Sampler, mixed bool, testSmp sample.Sampler) (*Suite, error) {
	suite := &Suite{Cells: map[string]map[int]*CellResult{}, Ns: ns}
	for _, name := range cfg.Funcs {
		if name == "" {
			continue
		}
		f, err := Function(name)
		if err != nil {
			return nil, err
		}
		test := cachedTestSetWith(f, cfg.TestN, cfg.Seed, testSmp, samplerTag(testSmp))
		suite.Funcs = append(suite.Funcs, name)
		suite.Cells[name] = map[int]*CellResult{}
		for _, n := range ns {
			cell, err := RunCell(Cell{
				Function: f,
				N:        n,
				Reps:     cfg.Reps,
				Methods:  methodNames,
				Sampler:  smp,
				Mixed:    mixed,
				LPrim:    cfg.LPrim,
				LBI:      cfg.LBI,
				Test:     test,
				Seed:     cfg.Seed,
				Workers:  cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			suite.Cells[name][n] = cell
		}
	}
	if len(suite.Funcs) == 0 {
		return nil, fmt.Errorf("experiment: no functions configured")
	}
	return suite, nil
}

// avgOver averages a per-cell aggregate across all functions at one N.
func (s *Suite) avgOver(n int, agg func(*CellResult) float64) float64 {
	sum, cnt := 0.0, 0
	for _, fn := range s.Funcs {
		cell := s.Cells[fn][n]
		if cell == nil {
			continue
		}
		sum += agg(cell)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// pctChanges returns the per-function percentage change of a method's
// cell aggregate relative to a reference method, at one N — the quantity
// plotted in Figures 7, 8, 10 and 14.
func (s *Suite) pctChanges(n int, method, reference string, agg func(*CellResult, string) float64) []float64 {
	var out []float64
	for _, fn := range s.Funcs {
		cell := s.Cells[fn][n]
		if cell == nil {
			continue
		}
		ref := agg(cell, reference)
		if ref == 0 {
			continue
		}
		out = append(out, 100*(agg(cell, method)-ref)/ref)
	}
	return out
}

// cellMean adapts CellResult.Mean to the two-argument form pctChanges
// expects.
func cellMean(metric func(RepOutcome) float64) func(*CellResult, string) float64 {
	return func(c *CellResult, method string) float64 { return c.Mean(method, metric) }
}

// cellConsistency adapts CellResult.Consistency.
func cellConsistency() func(*CellResult, string) float64 {
	return func(c *CellResult, method string) float64 { return c.Consistency(method) }
}

// quartileRow formats "median [q1, q3]" of a sample.
func quartileRow(vals []float64) string {
	if len(vals) == 0 {
		return "-"
	}
	q1, med, q3 := stats.Quartiles(vals)
	return fmt.Sprintf("%+.1f [%+.1f, %+.1f]", med, q1, q3)
}

// perRunMatrix builds the blocks × methods matrix of per-function means
// used by the Friedman test.
func (s *Suite) perRunMatrix(n int, methodNames []string, agg func(*CellResult, string) float64) [][]float64 {
	var matrix [][]float64
	for _, fn := range s.Funcs {
		cell := s.Cells[fn][n]
		if cell == nil {
			continue
		}
		row := make([]float64, len(methodNames))
		for j, m := range methodNames {
			row[j] = agg(cell, m)
		}
		matrix = append(matrix, row)
	}
	return matrix
}

// spearmanDimVsImprovement returns the Spearman correlation between the
// input dimensionality M and the relative improvement of method over
// reference (Section 9.1's M-vs-gain analysis).
func (s *Suite) spearmanDimVsImprovement(n int, method, reference string, agg func(*CellResult, string) float64) float64 {
	var ms, gains []float64
	for _, fn := range s.Funcs {
		cell := s.Cells[fn][n]
		if cell == nil {
			continue
		}
		f, err := Function(fn)
		if err != nil {
			continue
		}
		ref := agg(cell, reference)
		if ref == 0 {
			continue
		}
		ms = append(ms, float64(f.Dim()))
		gains = append(gains, 100*(agg(cell, method)-ref)/ref)
	}
	return stats.Spearman(ms, gains)
}

// samplerTag names a sampler for test-set cache keys.
func samplerTag(s sample.Sampler) string {
	switch s.(type) {
	case nil:
		return "uniform"
	case sample.Uniform:
		return "uniform"
	case sample.LatinHypercube:
		return "lhs"
	case sample.Halton:
		return "halton"
	case sample.LogitNormal:
		return "logitnormal"
	case sample.Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("%T", s)
	}
}

// sortedCopy returns a sorted copy of xs (ascending).
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
