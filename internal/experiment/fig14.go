package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/sample"
)

// Fig14Result holds the semi-supervised experiment of Section 9.4: all
// inputs drawn i.i.d. from a logit-normal distribution instead of the
// uniform one.
type Fig14Result struct {
	Suite *Suite
	N     int
	Kept  []string
}

// Fig14 re-runs the headline comparison with logit-normal(0, 1) inputs,
// keeping only functions whose positive share stays above 5% under the
// new p(x), as the paper does.
func Fig14(cfg Config) (*Fig14Result, error) {
	smp := sample.LogitNormal{Mu: 0, Sigma: 1}
	var kept []string
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, name := range cfg.Funcs {
		if name == "dsgc" {
			continue // dsgc uses its own Halton design in the paper
		}
		f, err := Function(name)
		if err != nil {
			return nil, err
		}
		share := shareUnder(f, smp, 3000, rng)
		if share > 0.05 {
			kept = append(kept, name)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("experiment: no functions keep share > 5%% under logit-normal inputs")
	}
	sub := cfg
	sub.Funcs = kept
	n := midN(cfg.Ns)
	suite, err := runSuite(sub, []string{"Pc", "PBc", "RPx", "BI", "BIc", "RBIcxp"},
		[]int{n}, smp, false, smp)
	if err != nil {
		return nil, err
	}
	return &Fig14Result{Suite: suite, N: n, Kept: kept}, nil
}

// shareUnder Monte-Carlo-estimates E[y] under the sampler's p(x).
func shareUnder(f funcs.Function, smp sample.Sampler, n int, rng *rand.Rand) float64 {
	pts := smp.Sample(n, f.Dim(), rng)
	s := 0.0
	for _, x := range pts {
		s += funcs.Label(f, x, rng)
	}
	return s / float64(n)
}

// Render prints the Figure 14 quartile summaries.
func (r *Fig14Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 14: semi-supervised setting (logit-normal inputs) — change in %% vs \"Pc\"/\"BIc\", N=%d\n", r.N)
	fmt.Fprintf(w, "functions kept (share > 5%%): %v\n", r.Kept)
	fmt.Fprintln(w, "\n  PR AUC (vs Pc):")
	for _, m := range []string{"PBc", "RPx"} {
		fmt.Fprintf(w, "    %-6s %s\n", m, quartileRow(r.Suite.pctChanges(r.N, m, "Pc", cellMean(MetricPRAUC))))
	}
	fmt.Fprintln(w, "\n  precision (vs Pc):")
	for _, m := range []string{"PBc", "RPx"} {
		fmt.Fprintf(w, "    %-6s %s\n", m, quartileRow(r.Suite.pctChanges(r.N, m, "Pc", cellMean(MetricPrecision))))
	}
	fmt.Fprintln(w, "\n  WRAcc (vs BIc):")
	for _, m := range []string{"BI", "RBIcxp"} {
		fmt.Fprintf(w, "    %-6s %s\n", m, quartileRow(r.Suite.pctChanges(r.N, m, "BIc", cellMean(MetricWRAcc))))
	}
}
