package experiment

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/metrics"
	"github.com/reds-go/reds/internal/report"
	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/stats"
)

// Fig6Result holds the demonstration experiment of Example 8.1: WRAcc of
// BI and BIc on morris, evaluated both on independent test data and —
// misleadingly — on the training data ("tBI", "tBIc").
type Fig6Result struct {
	Cell *CellResult
}

// Fig6 runs the demonstration on "morris" at N = 400.
func Fig6(cfg Config) (*Fig6Result, error) {
	f, err := Function("morris")
	if err != nil {
		return nil, err
	}
	cell, err := RunCell(Cell{
		Function: f,
		N:        400,
		Reps:     cfg.Reps,
		Methods:  []string{"BI", "BIc"},
		LBI:      cfg.LBI,
		LPrim:    cfg.LPrim,
		Test:     CachedTestSet(f, cfg.TestN, cfg.Seed),
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Cell: cell}, nil
}

// Render prints the four quartile boxes of Figure 6. The expected
// pattern: hyperparameter optimization helps (BIc > BI on test), train
// evaluation inflates quality (tBI > BI), and train evaluation flips the
// ranking (tBI > tBIc but BIc > BI).
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: Demonstration — evaluation of BI on \"morris\", N=400")
	fmt.Fprintln(w, "WRAcc x100, median [Q1, Q3]; \"t\" = evaluated on train data")
	rows := []struct {
		label  string
		method string
		metric func(RepOutcome) float64
	}{
		{"BI", "BI", MetricWRAcc},
		{"BIc", "BIc", MetricWRAcc},
		{"tBI", "BI", MetricTrainWRAcc},
		{"tBIc", "BIc", MetricTrainWRAcc},
	}
	for _, row := range rows {
		vals := r.Cell.Values(row.method, row.metric)
		for i := range vals {
			vals[i] *= 100
		}
		q1, med, q3 := stats.Quartiles(vals)
		fmt.Fprintf(w, "  %-5s %s\n", row.label, report.QuartileSummary(q1, med, q3))
	}
}

// Fig9Result holds the runtime curves of Figure 9.
type Fig9Result struct {
	Suite       *Suite
	PrimMethods []string
	BIMethods   []string
}

// Fig9 measures mean wall-clock runtimes of the PRIM- and BI-based
// methods contingent on N.
func Fig9(cfg Config) (*Fig9Result, error) {
	primM := []string{"Pc", "PBc", "RPf", "RPx"}
	biM := []string{"BI", "BIc", "RBIcxp"}
	suite, err := runSuite(cfg, append(append([]string{}, primM...), biM...), cfg.Ns, nil, false, nil)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Suite: suite, PrimMethods: primM, BIMethods: biM}, nil
}

// Render prints mean runtime (seconds) per method and N.
func (r *Fig9Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: mean runtime (seconds) vs N, averaged across functions")
	all := append(append([]string{}, r.PrimMethods...), r.BIMethods...)
	tbl := &report.Table{Header: append([]string{"N"}, all...)}
	for _, n := range r.Suite.Ns {
		row := make([]interface{}, 0, len(all)+1)
		row = append(row, fmt.Sprintf("%d", n))
		for _, m := range all {
			row = append(row, r.Suite.avgOver(n, func(c *CellResult) float64 { return c.Mean(m, MetricSeconds) }))
		}
		tbl.Add(row...)
	}
	tbl.Render(w)
}

// Fig10Result holds the mixed-inputs comparison of Section 9.1.2.
type Fig10Result struct {
	Suite *Suite
	N     int
}

// Fig10 re-runs the headline methods with the even inputs drawn from the
// discrete levels {0.1, 0.3, 0.5, 0.7, 0.9}. The dsgc model is excluded,
// matching the paper.
func Fig10(cfg Config) (*Fig10Result, error) {
	funcsNoDsgc := make([]string, 0, len(cfg.Funcs))
	for _, f := range cfg.Funcs {
		if f != "dsgc" {
			funcsNoDsgc = append(funcsNoDsgc, f)
		}
	}
	cfg.Funcs = funcsNoDsgc
	n := midN(cfg.Ns)
	smp := sample.Mixed{Base: sample.LatinHypercube{}}
	suite, err := runSuite(cfg, []string{"Pc", "PBc", "RPcxp", "BI", "BIc", "RBIcxp"},
		[]int{n}, smp, true, smp)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Suite: suite, N: n}, nil
}

// Render prints the Figure 10 quartile summaries.
func (r *Fig10Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 10: mixed inputs — quality change in %% relative to \"Pc\"/\"BIc\", N=%d\n", r.N)
	fmt.Fprintln(w, "(median [Q1, Q3] across functions)")
	fmt.Fprintln(w, "\n  PR AUC (vs Pc):")
	for _, m := range []string{"PBc", "RPcxp"} {
		fmt.Fprintf(w, "    %-6s %s\n", m, quartileRow(r.Suite.pctChanges(r.N, m, "Pc", cellMean(MetricPRAUC))))
	}
	fmt.Fprintln(w, "\n  precision (vs Pc):")
	for _, m := range []string{"PBc", "RPcxp"} {
		fmt.Fprintf(w, "    %-6s %s\n", m, quartileRow(r.Suite.pctChanges(r.N, m, "Pc", cellMean(MetricPrecision))))
	}
	fmt.Fprintln(w, "\n  WRAcc (vs BIc):")
	for _, m := range []string{"BI", "RBIcxp"} {
		fmt.Fprintf(w, "    %-6s %s\n", m, quartileRow(r.Suite.pctChanges(r.N, m, "BIc", cellMean(MetricWRAcc))))
	}
}

// Fig11Result holds the peeling trajectories and PR AUC spread on
// "morris" (Section 9.2.1).
type Fig11Result struct {
	Cell    *CellResult
	Methods []string
	// Curves are the mean precision values on a fixed recall grid.
	RecallGrid [][]float64
	Precision  map[string][]float64
}

// Fig11 runs P, Pc and RPx on morris at N = 400 and averages their
// peeling trajectories across repetitions.
func Fig11(cfg Config) (*Fig11Result, error) {
	f, err := Function("morris")
	if err != nil {
		return nil, err
	}
	methodsList := []string{"P", "Pc", "RPx"}
	test := CachedTestSet(f, cfg.TestN, cfg.Seed)
	cell, err := RunCell(Cell{
		Function: f, N: 400, Reps: cfg.Reps, Methods: methodsList,
		LPrim: cfg.LPrim, LBI: cfg.LBI, Test: test, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	// Average trajectories on a recall grid. Trajectory curves are
	// recomputed per repetition by re-running the methods cheaply...
	// instead we use the stored finals only for AUC; trajectories are
	// averaged from fresh runs below.
	res := &Fig11Result{Cell: cell, Methods: methodsList, Precision: map[string][]float64{}}
	grid := make([]float64, 21)
	for i := range grid {
		grid[i] = float64(i) / 20
	}
	curves, err := meanTrajectories(cfg, f, 400, methodsList, test, grid)
	if err != nil {
		return nil, err
	}
	res.Precision = curves
	res.RecallGrid = [][]float64{grid}
	return res, nil
}

// meanTrajectories recomputes each method's trajectory per repetition
// and averages precision at fixed recall knots.
func meanTrajectories(cfg Config, f funcs.Function, n int, methodNames []string, test *dataset.Dataset, grid []float64) (map[string][]float64, error) {
	sums := map[string][]float64{}
	counts := map[string][]int{}
	for _, m := range methodNames {
		sums[m] = make([]float64, len(grid))
		counts[m] = make([]int, len(grid))
	}
	for rep := 0; rep < cfg.Reps; rep++ {
		rng := rand.New(rand.NewSource(seedFor(cfg.Seed, f.Name(), n, rep, "data")))
		train := funcs.Generate(f, n, sample.LatinHypercube{}, rng)
		for _, name := range methodNames {
			m, err := Get(name)
			if err != nil {
				return nil, err
			}
			mcfg := MethodConfig{L: cfg.LPrim, Sampler: sample.LatinHypercube{}}
			mrng := rand.New(rand.NewSource(seedFor(cfg.Seed, f.Name(), n, rep, name)))
			disc, err := m.Build(train, mcfg, mrng)
			if err != nil {
				return nil, err
			}
			res, err := disc.Discover(train, train, mrng)
			if err != nil {
				return nil, err
			}
			pts := metrics.Trajectory(res, test)
			for gi, rec := range grid {
				if p, ok := interpPrecision(pts, rec); ok {
					sums[name][gi] += p
					counts[name][gi]++
				}
			}
		}
	}
	out := map[string][]float64{}
	for _, name := range methodNames {
		curve := make([]float64, len(grid))
		for gi := range grid {
			if counts[name][gi] > 0 {
				curve[gi] = sums[name][gi] / float64(counts[name][gi])
			} else {
				curve[gi] = math.NaN()
			}
		}
		out[name] = curve
	}
	return out, nil
}

// interpPrecision linearly interpolates the trajectory's precision at a
// recall value; ok = false outside the curve's recall range.
func interpPrecision(pts []metrics.PRPoint, recall float64) (float64, bool) {
	if len(pts) == 0 {
		return 0, false
	}
	sorted := append([]metrics.PRPoint(nil), pts...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Recall < sorted[b].Recall })
	if recall < sorted[0].Recall || recall > sorted[len(sorted)-1].Recall {
		return 0, false
	}
	for i := 1; i < len(sorted); i++ {
		if recall <= sorted[i].Recall {
			lo, hi := sorted[i-1], sorted[i]
			if hi.Recall == lo.Recall {
				return math.Max(lo.Precision, hi.Precision), true
			}
			t := (recall - lo.Recall) / (hi.Recall - lo.Recall)
			return lo.Precision + t*(hi.Precision-lo.Precision), true
		}
	}
	return sorted[len(sorted)-1].Precision, true
}

// Render draws the trajectory chart and the PR AUC quartiles.
func (r *Fig11Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 11: peeling trajectories & PR AUC, \"morris\", N=400")
	chart := &report.Chart{
		Title:  "mean peeling trajectories (test data)",
		XLabel: "recall", YLabel: "precision",
	}
	grid := r.RecallGrid[0]
	for _, m := range r.Methods {
		chart.Series = append(chart.Series, report.Series{Name: m, X: grid, Y: r.Precision[m]})
	}
	chart.Render(w)
	fmt.Fprintln(w, "\nPR AUC x100, median [Q1, Q3]:")
	for _, m := range r.Methods {
		vals := r.Cell.Values(m, MetricPRAUC)
		for i := range vals {
			vals[i] *= 100
		}
		q1, med, q3 := stats.Quartiles(vals)
		fmt.Fprintf(w, "  %-4s %s\n", m, report.QuartileSummary(q1, med, q3))
	}
	// Significance: RPx vs Pc per repetition (Wilcoxon-Mann-Whitney).
	a := r.Cell.Values("RPx", MetricPRAUC)
	b := r.Cell.Values("Pc", MetricPRAUC)
	if _, p := stats.MannWhitney(a, b); p < 1 {
		fmt.Fprintf(w, "Wilcoxon-Mann-Whitney RPx vs Pc: p = %.4g (paper: < 1e-15)\n", p)
	}
}
