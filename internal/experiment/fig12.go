package experiment

import (
	"fmt"
	"io"

	"github.com/reds-go/reds/internal/report"
	"github.com/reds-go/reds/internal/stats"
)

// Fig12Result holds the four learning-curve panels of Section 9.2.2 on
// "morris": quality vs N (left) and vs L (right), for PRIM-based (top)
// and BI-based (bottom) methods.
type Fig12Result struct {
	NsPrim, NsBI []int
	Ls           []int
	// medians[panel][method] -> one value per x position; iqr likewise
	// stores (q3-q1)/2.
	Medians map[string]map[string][]float64
	Q1s     map[string]map[string][]float64
	Q3s     map[string]map[string][]float64
}

// fig12Panels enumerate the methods per panel.
var (
	fig12PrimN = []string{"P", "Pc", "RPx", "RPxp"}
	fig12PrimL = []string{"P", "RPx", "RPxp"}
	fig12BIN   = []string{"BI", "BIc", "RBIcxp"}
	fig12BIL   = []string{"BI", "RBIcxp"}
)

// Fig12 sweeps N (with fixed L) and L (with fixed N = 400) on "morris".
// The sweep grids shrink with the configured scale: reduced
// configurations use a prefix of the paper's grids.
func Fig12(cfg Config) (*Fig12Result, error) {
	f, err := Function("morris")
	if err != nil {
		return nil, err
	}
	test := CachedTestSet(f, cfg.TestN, cfg.Seed)

	nsAll := []int{200, 400, 800, 1600, 3200}
	lsAll := []int{200, 400, 800, 1600, 3200, 6400, 25000}
	ns := nsAll
	ls := lsAll
	if cfg.Reps < 50 { // reduced scale
		ns = nsAll[:3]
		ls = lsAll[:4]
	}

	res := &Fig12Result{
		NsPrim: ns, NsBI: ns, Ls: ls,
		Medians: map[string]map[string][]float64{},
		Q1s:     map[string]map[string][]float64{},
		Q3s:     map[string]map[string][]float64{},
	}
	record := func(panel, method string, vals []float64) {
		if res.Medians[panel] == nil {
			res.Medians[panel] = map[string][]float64{}
			res.Q1s[panel] = map[string][]float64{}
			res.Q3s[panel] = map[string][]float64{}
		}
		q1, med, q3 := stats.Quartiles(vals)
		res.Medians[panel][method] = append(res.Medians[panel][method], med)
		res.Q1s[panel][method] = append(res.Q1s[panel][method], q1)
		res.Q3s[panel][method] = append(res.Q3s[panel][method], q3)
	}

	// Panels (a) and (c): sweep N.
	for _, n := range ns {
		cell, err := RunCell(Cell{
			Function: f, N: n, Reps: cfg.Reps,
			Methods: append(append([]string{}, fig12PrimN...), fig12BIN...),
			LPrim:   cfg.LPrim, LBI: cfg.LBI,
			Test: test, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		for _, m := range fig12PrimN {
			record("prim-N", m, cell.Values(m, MetricPRAUC))
		}
		for _, m := range fig12BIN {
			record("bi-N", m, cell.Values(m, MetricWRAcc))
		}
	}

	// Panels (b) and (d): sweep L at N = 400. The conventional baselines
	// do not depend on L; they are run once and rendered flat.
	for _, l := range ls {
		cell, err := RunCell(Cell{
			Function: f, N: 400, Reps: cfg.Reps,
			Methods: []string{"RPx", "RPxp", "RBIcxp"},
			LPrim:   l, LBI: l,
			Test: test, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		record("prim-L", "RPx", cell.Values("RPx", MetricPRAUC))
		record("prim-L", "RPxp", cell.Values("RPxp", MetricPRAUC))
		record("bi-L", "RBIcxp", cell.Values("RBIcxp", MetricWRAcc))
	}
	base, err := RunCell(Cell{
		Function: f, N: 400, Reps: cfg.Reps,
		Methods: []string{"P", "BI"},
		LPrim:   cfg.LPrim, LBI: cfg.LBI,
		Test: test, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	for range ls {
		record("prim-L", "P", base.Values("P", MetricPRAUC))
		record("bi-L", "BI", base.Values("BI", MetricWRAcc))
	}
	return res, nil
}

// Render draws the four panels as charts plus a numeric table.
func (r *Fig12Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 12: influence of N and L, function \"morris\" (median, x100)")
	panels := []struct {
		key    string
		title  string
		xs     []int
		xlabel string
	}{
		{"prim-N", "(a) PR AUC vs N (L fixed)", r.NsPrim, "N"},
		{"prim-L", "(b) PR AUC vs L (N=400)", r.Ls, "L"},
		{"bi-N", "(c) WRAcc vs N (L fixed)", r.NsBI, "N"},
		{"bi-L", "(d) WRAcc vs L (N=400)", r.Ls, "L"},
	}
	for _, p := range panels {
		fmt.Fprintf(w, "\n%s\n", p.title)
		tbl := &report.Table{Header: []string{p.xlabel}}
		methodsOf := make([]string, 0, len(r.Medians[p.key]))
		for m := range r.Medians[p.key] {
			methodsOf = append(methodsOf, m)
		}
		// stable order: follow the panel's registration lists
		ordered := orderMethods(p.key, methodsOf)
		for _, m := range ordered {
			tbl.Header = append(tbl.Header, m+" med", m+" IQR")
		}
		for xi, x := range p.xs {
			row := []interface{}{fmt.Sprintf("%d", x)}
			for _, m := range ordered {
				med := r.Medians[p.key][m][xi] * 100
				iqr := (r.Q3s[p.key][m][xi] - r.Q1s[p.key][m][xi]) * 100
				row = append(row, med, iqr)
			}
			tbl.Add(row...)
		}
		tbl.Render(w)
	}
}

func orderMethods(panel string, present []string) []string {
	var want []string
	switch panel {
	case "prim-N":
		want = fig12PrimN
	case "prim-L":
		want = fig12PrimL
	case "bi-N":
		want = fig12BIN
	case "bi-L":
		want = fig12BIL
	}
	set := map[string]bool{}
	for _, m := range present {
		set[m] = true
	}
	var out []string
	for _, m := range want {
		if set[m] {
			out = append(out, m)
		}
	}
	return out
}
