package experiment

import (
	"fmt"
	"io"

	"github.com/reds-go/reds/internal/stats"
)

// Table4Methods are the BI-based procedures compared in Table 4 and
// Figure 8 of the paper.
var Table4Methods = []string{"BI", "BIc", "BI5", "RBIcfp", "RBIcxp"}

// Table4Result holds the suite behind Table 4 (a)-(d) and Figure 8.
type Table4Result struct {
	Suite   *Suite
	Methods []string
}

// Table4 runs the BI-based comparison.
func Table4(cfg Config) (*Table4Result, error) {
	suite, err := runSuite(cfg, Table4Methods, cfg.Ns, nil, false, nil)
	if err != nil {
		return nil, err
	}
	return &Table4Result{Suite: suite, Methods: Table4Methods}, nil
}

func biPanels() []panel {
	return []panel{
		{"(a) Average WRAcc (x100)", scaled(cellMean(MetricWRAcc), 100)},
		{"(b) Average consistency (x100)", scaled(cellConsistency(), 100)},
		{"(c) Average number of restricted inputs", cellMean(MetricRestricted)},
		{"(d) Average number of irrelevantly restricted inputs", cellMean(MetricIrrel)},
	}
}

// Render writes the four panels plus the significance analysis.
func (t *Table4Result) Render(w io.Writer) {
	renderPanels(w, "Table 4: Quality of BI-based methods, all functions", t.Suite, t.Methods, biPanels())

	n := midN(t.Suite.Ns)
	matrix := t.Suite.perRunMatrix(n, []string{"RBIcxp", "BIc"}, cellMean(MetricWRAcc))
	if len(matrix) >= 2 {
		p := stats.FriedmanPostHoc(matrix, 0, 1)
		fmt.Fprintf(w, "\nPost-hoc RBIcxp vs BIc on WRAcc (N=%d): p = %.4g (paper: 1e-3)\n", n, p)
	}
	rho := t.Suite.spearmanDimVsImprovement(n, "RBIcxp", "BIc", cellMean(MetricWRAcc))
	fmt.Fprintf(w, "Spearman(M, WRAcc gain of RBIcxp over BIc) at N=%d: %.2f (paper: 0.77)\n", n, rho)
}

// RenderFig8 writes the Figure 8 quartile summaries: percentage change
// relative to BIc.
func (t *Table4Result) RenderFig8(w io.Writer) {
	n := midN(t.Suite.Ns)
	fmt.Fprintf(w, "Figure 8: quality change in %% relative to \"BIc\", N=%d\n", n)
	fmt.Fprintf(w, "(median [Q1, Q3] across functions)\n")
	metricsList := []struct {
		name string
		agg  func(*CellResult, string) float64
	}{
		{"WRAcc", cellMean(MetricWRAcc)},
		{"consistency", cellConsistency()},
		{"# restricted", cellMean(MetricRestricted)},
	}
	for _, m := range metricsList {
		fmt.Fprintf(w, "\n  %s:\n", m.name)
		for _, method := range []string{"BI", "RBIcxp"} {
			changes := t.Suite.pctChanges(n, method, "BIc", m.agg)
			fmt.Fprintf(w, "    %-7s %s\n", method, quartileRow(changes))
		}
	}
}
