package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/reds-go/reds/internal/core"
	"github.com/reds-go/reds/internal/funcs"
	"github.com/reds-go/reds/internal/gbt"
	"github.com/reds-go/reds/internal/metrics"
	"github.com/reds-go/reds/internal/prim"
	"github.com/reds-go/reds/internal/report"
	"github.com/reds-go/reds/internal/sample"
	"github.com/reds-go/reds/internal/sd"
)

// AblationResult quantifies the design decisions DESIGN.md calls out, on
// the same cells as the main comparison:
//
//   - validation data for REDS's inner PRIM: real examples (the paper's
//     D_val = D, our default) vs the pseudo-labeled set;
//   - pseudo-label type: thresholded {0,1} vs raw probabilities;
//   - PRIM peel objective: mean vs support-weighted lift;
//   - pasting phase: off (paper default) vs on.
type AblationResult struct {
	Variants []string
	// Rows: function -> variant -> mean of (PR AUC, precision, recall).
	Rows map[string]map[string][3]float64
	Fns  []string
}

// ablationVariants enumerates the configurations. All share the same
// gradient-boosting metamodel and budget so differences isolate the
// single design decision.
func ablationVariants(l int) map[string]sd.Discoverer {
	mk := func(probLabels, pseudoVal bool, obj prim.Objective, paste bool) sd.Discoverer {
		return &core.REDS{
			Metamodel:        gbt.TunedTrainer(),
			L:                l,
			SD:               &prim.Peeler{Objective: obj, Paste: paste},
			ProbLabels:       probLabels,
			ValidateOnPseudo: pseudoVal,
		}
	}
	return map[string]sd.Discoverer{
		"base(realval,hard)": mk(false, false, prim.ObjectiveMean, false),
		"pseudo-val":         mk(false, true, prim.ObjectiveMean, false),
		"prob-labels":        mk(true, false, prim.ObjectiveMean, false),
		"lift-objective":     mk(false, false, prim.ObjectiveLift, false),
		"with-pasting":       mk(false, false, prim.ObjectiveMean, true),
	}
}

// AblationOrder fixes the rendering order of the variants.
var AblationOrder = []string{
	"base(realval,hard)", "pseudo-val", "prob-labels", "lift-objective", "with-pasting",
}

// Ablation runs every variant on every configured function at the middle
// N.
func Ablation(cfg Config) (*AblationResult, error) {
	n := midN(cfg.Ns)
	variants := ablationVariants(cfg.LPrim)
	res := &AblationResult{Variants: AblationOrder, Rows: map[string]map[string][3]float64{}}
	for _, fname := range cfg.Funcs {
		if fname == "" {
			continue
		}
		f, err := Function(fname)
		if err != nil {
			return nil, err
		}
		test := CachedTestSet(f, cfg.TestN, cfg.Seed)
		res.Fns = append(res.Fns, fname)
		res.Rows[fname] = map[string][3]float64{}
		for _, vname := range AblationOrder {
			disc := variants[vname]
			var auc, prec, rec float64
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(seedFor(cfg.Seed, fname, n, rep, "abl|data")))
				train := funcs.Generate(f, n, sample.LatinHypercube{}, rng)
				mrng := rand.New(rand.NewSource(seedFor(cfg.Seed, fname, n, rep, "abl|"+vname)))
				r, err := disc.Discover(train, train, mrng)
				if err != nil {
					return nil, fmt.Errorf("experiment: ablation %s on %s: %w", vname, fname, err)
				}
				a := metrics.ResultPRAUC(r, test)
				p, rc := metrics.PrecisionRecall(r.Final(), test)
				auc += a
				prec += p
				rec += rc
			}
			k := float64(cfg.Reps)
			res.Rows[fname][vname] = [3]float64{auc / k, prec / k, rec / k}
		}
	}
	return res, nil
}

// Render prints one block per metric.
func (r *AblationResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: REDS design decisions (gradient-boosting metamodel)")
	metricsList := []struct {
		name string
		idx  int
	}{{"PR AUC x100", 0}, {"final-box precision x100", 1}, {"final-box recall x100", 2}}
	for _, m := range metricsList {
		fmt.Fprintf(w, "\n%s\n", m.name)
		tbl := &report.Table{Header: append([]string{"function"}, r.Variants...)}
		for _, fn := range r.Fns {
			row := []interface{}{fn}
			for _, v := range r.Variants {
				row = append(row, 100*r.Rows[fn][v][m.idx])
			}
			tbl.Add(row...)
		}
		tbl.Render(w)
	}
	fmt.Fprintln(w, "\nReading guide: 'pseudo-val' drills into metamodel artifacts (higher")
	fmt.Fprintln(w, "precision, collapsed recall); 'prob-labels' is the paper's p-variant;")
	fmt.Fprintln(w, "'lift-objective' trades precision for support; pasting barely moves")
	fmt.Fprintln(w, "anything (Section 3.2.1's observation).")
}
