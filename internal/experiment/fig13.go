package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"github.com/reds-go/reds/internal/box"
	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/lake"
	"github.com/reds-go/reds/internal/metrics"
	"github.com/reds-go/reds/internal/report"
	"github.com/reds-go/reds/internal/tgl"
)

// ThirdPartyMethods are compared on the third-party datasets
// (Section 9.3).
var ThirdPartyMethods = []string{"Pc", "RPf", "RPfp"}

// Fig13Result holds the third-party-data experiment: Figure 13 (peeling
// trajectories) and Table 5 (metrics) for "TGL" and "lake".
type Fig13Result struct {
	Datasets map[string]*thirdPartyOutcome
}

type thirdPartyOutcome struct {
	name    string
	byMeth  map[string][]RepOutcome
	boxes   map[string][]*box.Box
	domain  metrics.Domain
	relMask []bool
}

// Fig13 runs repeated stratified 5-fold cross-validation (paper: 10
// repetitions) of the third-party methods on the TGL and lake datasets.
func Fig13(cfg Config) (*Fig13Result, error) {
	repeats := 10
	if cfg.Reps < 10 {
		repeats = cfg.Reps
	}
	out := &Fig13Result{Datasets: map[string]*thirdPartyOutcome{}}

	sets := []struct {
		name string
		data *dataset.Dataset
		rel  []bool
	}{
		{"TGL", tgl.Dataset(cfg.Seed), tgl.Relevant()},
		{"lake", lake.Dataset(1000, cfg.Seed), nil},
	}
	for _, s := range sets {
		o, err := runThirdParty(cfg, s.name, s.data, s.rel, repeats)
		if err != nil {
			return nil, err
		}
		out.Datasets[s.name] = o
	}
	return out, nil
}

// runThirdParty executes repeats x 5-fold CV of every method.
func runThirdParty(cfg Config, name string, data *dataset.Dataset, rel []bool, repeats int) (*thirdPartyOutcome, error) {
	o := &thirdPartyOutcome{
		name:    name,
		byMeth:  map[string][]RepOutcome{},
		boxes:   map[string][]*box.Box{},
		domain:  metrics.UnitDomain(data.M()),
		relMask: rel,
	}
	type job struct{ rep, fold int }
	type res struct {
		outs []RepOutcome
		err  error
	}
	var jobs []job
	folds := make([][]dataset.Fold, repeats)
	for rep := 0; rep < repeats; rep++ {
		rng := rand.New(rand.NewSource(seedFor(cfg.Seed, name, data.N(), rep, "folds")))
		kf, err := dataset.KFold(data, 5, rng)
		if err != nil {
			return nil, err
		}
		folds[rep] = kf
		for f := range kf {
			jobs = append(jobs, job{rep, f})
		}
	}

	results := make([]res, len(jobs))
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range ch {
				j := jobs[ji]
				f := folds[j.rep][j.fold]
				outs, err := runThirdPartyFold(cfg, name, f.Train, f.Test, j.rep*5+j.fold)
				results[ji] = res{outs, err}
			}
		}()
	}
	for ji := range jobs {
		ch <- ji
	}
	close(ch)
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for _, ro := range r.outs {
			o.byMeth[ro.Method] = append(o.byMeth[ro.Method], ro)
			o.boxes[ro.Method] = append(o.boxes[ro.Method], ro.Final)
		}
	}
	return o, nil
}

func runThirdPartyFold(cfg Config, name string, train, test *dataset.Dataset, rep int) ([]RepOutcome, error) {
	var outs []RepOutcome
	for _, mname := range ThirdPartyMethods {
		m, err := Get(mname)
		if err != nil {
			return nil, err
		}
		// The paper fixes alpha = 0.1 for TGL in line with prior work;
		// our "Pc" cross-validates alpha instead, and its grid contains
		// 0.1, so the published setting remains reachable.
		mcfg := MethodConfig{L: cfg.LPrim}
		rng := rand.New(rand.NewSource(seedFor(cfg.Seed, name, train.N(), rep, mname)))
		disc, err := m.Build(train, mcfg, rng)
		if err != nil {
			return nil, err
		}
		res, err := disc.Discover(train, train, rng)
		if err != nil {
			return nil, err
		}
		final := res.Final()
		prec, rec := metrics.PrecisionRecall(final, test)
		outs = append(outs, RepOutcome{
			Method: mname, Rep: rep,
			PRAUC:     metrics.ResultPRAUC(res, test),
			Precision: prec, Recall: rec,
			WRAcc:      metrics.WRAcc(final, test),
			Restricted: final.Restricted(),
			Final:      final,
		})
	}
	return outs, nil
}

// Render prints Table 5 and the trajectory summary of Figure 13.
func (r *Fig13Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 5 / Figure 13: performance on third-party datasets (x100 where applicable)")
	for _, name := range []string{"TGL", "lake"} {
		o := r.Datasets[name]
		if o == nil {
			continue
		}
		fmt.Fprintf(w, "\n%s:\n", name)
		tbl := &report.Table{Header: append([]string{"metric"}, ThirdPartyMethods...)}
		addRow := func(label string, f func(m string) float64) {
			row := []interface{}{label}
			for _, m := range ThirdPartyMethods {
				row = append(row, f(m))
			}
			tbl.Add(row...)
		}
		mean := func(m string, metric func(RepOutcome) float64) float64 {
			outs := o.byMeth[m]
			if len(outs) == 0 {
				return 0
			}
			s := 0.0
			for _, ro := range outs {
				s += metric(ro)
			}
			return s / float64(len(outs))
		}
		addRow("PR AUC", func(m string) float64 { return 100 * mean(m, MetricPRAUC) })
		addRow("precision", func(m string) float64 { return 100 * mean(m, MetricPrecision) })
		addRow("consistency", func(m string) float64 {
			return 100 * metrics.Consistency(o.boxes[m], o.domain)
		})
		addRow("# restricted", func(m string) float64 { return mean(m, MetricRestricted) })
		tbl.Render(w)
	}
}
