package ruleset

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecodeExport fuzzes the rule-set wire format. Inputs the decoder
// rejects only need to fail cleanly; inputs it accepts must satisfy the
// format's contract — the canonical re-encoding is stable (encode →
// decode → encode is byte-identical) and the document is safe to
// evaluate at any point, NaN coordinates included.
func FuzzDecodeExport(f *testing.F) {
	seeds := []string{
		// Minimal valid mean-kind document (a single-leaf tree: the
		// empty-conds rule covers everything).
		`{"kind":"mean","dim":2,"trees":1,"parent_trees":2,"init":0,"scale":1,"label_fidelity":1,"prob_fidelity":1,"rules":[{"value":1,"weight":1,"coverage":0.5,"confidence":1}]}`,
		// Margin kind with one-sided and two-sided intervals and a
		// merged (weight 2) box.
		`{"kind":"margin","dim":3,"trees":2,"parent_trees":5,"init":-0.5,"scale":0.1,"label_fidelity":0.99,"prob_fidelity":0.98,"rules":[{"conds":[{"feature":0,"le":0.5}],"value":-1,"weight":1,"coverage":0.25,"confidence":0.9},{"conds":[{"feature":0,"gt":0.5},{"feature":2,"gt":0.1,"le":0.9}],"value":2,"weight":2,"coverage":0.1,"confidence":0.8}]}`,
		// Rejections the fuzzer should mutate from: unknown field,
		// empty interval, out-of-range feature, trailing data, garbage.
		`{"kind":"mean","dim":1,"trees":1,"parent_trees":1,"extra":true,"rules":[{"value":0,"weight":1}]}`,
		`{"kind":"mean","dim":1,"trees":1,"parent_trees":1,"init":0,"scale":1,"label_fidelity":1,"prob_fidelity":1,"rules":[{"conds":[{"feature":0,"gt":0.9,"le":0.1}],"value":0,"weight":1,"coverage":0,"confidence":0}]}`,
		`{"kind":"mean","dim":1,"trees":1,"parent_trees":1,"init":0,"scale":1,"label_fidelity":1,"prob_fidelity":1,"rules":[{"conds":[{"feature":7,"le":0.1}],"value":0,"weight":1,"coverage":0,"confidence":0}]}`,
		`{"kind":"mean","dim":1,"trees":1,"parent_trees":1,"init":0,"scale":1,"label_fidelity":1,"prob_fidelity":1,"rules":[{"value":1,"weight":1,"coverage":0,"confidence":0}]}{"more":1}`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeExport(data)
		if err != nil {
			return
		}
		b1, err := e.MarshalCanonical()
		if err != nil {
			t.Fatalf("accepted document does not re-encode: %v", err)
		}
		e2, err := DecodeExport(b1)
		if err != nil {
			t.Fatalf("canonical form rejected by own decoder: %v\n%s", err, b1)
		}
		b2, err := e2.MarshalCanonical()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("canonical encoding unstable:\n%s\nvs\n%s", b1, b2)
		}
		// A validated export must evaluate without panicking and produce
		// hard labels in {0,1} at any point of the declared dimension.
		zero := make([]float64, e.Dim)
		nans := make([]float64, e.Dim)
		for j := range nans {
			nans[j] = math.NaN()
		}
		for _, x := range [][]float64{zero, nans} {
			_ = e.ScoreAt(x)
			_ = e.ProbAt(x)
			if l := e.LabelAt(x); l != 0 && l != 1 {
				t.Fatalf("label %v not in {0,1}", l)
			}
		}
	})
}
