// Package ruleset distills a trained tree ensemble into a compact
// probabilistic rule set — the RCProb-style simplification the ROADMAP
// names as the next order-of-magnitude labeling lever. A distilled
// Model is both
//
//   - an interpretable artifact: every selected tree's root-to-leaf
//     paths become rules (axis-aligned boxes with a value, a weight,
//     and coverage/confidence measured on a reference sample), served
//     as JSON by GET /v1/jobs/{id}/rules; and
//   - a labeling kernel: the selected, simplified trees are recompiled
//     into a flattree.Table, so the Model implements
//     metamodel.BatchModel and drops into the chunked batch labeling
//     path at a fraction of the parent's per-point cost (the descent
//     cost is linear in the tree count; distillation keeps the
//     smallest tree subset that reproduces the parent's labels on a
//     seeded sample).
//
// Distillation is lossy by construction, so it reports its own
// fidelity: label agreement (and mean probability closeness) with the
// parent ensemble on a held-out sample the selection never saw. The
// engine enforces a fidelity threshold and falls back to the full
// ensemble when a distillation misses it.
package ruleset

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/reds-go/reds/internal/flattree"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/sample"
)

// Distillable is implemented by metamodels whose ensemble structure
// can be decoded for distillation (rf.Forest and gbt.Model; svm has no
// tree structure to extract rules from). The interface is structural
// so the model packages do not import this one.
type Distillable interface {
	// DistillSource returns the decoded compiled ensemble and its
	// accumulation semantics.
	DistillSource() flattree.Ensemble
}

// ErrNotDistillable marks models without a distillable tree structure.
var ErrNotDistillable = errors.New("ruleset: model does not support distillation")

// Options configure Distill.
type Options struct {
	// Dim is the input dimension rules and samples are drawn in
	// (required).
	Dim int
	// TargetFidelity is the label agreement the tree selection aims for
	// on the selection sample (default 0.995). The holdout measurement
	// in Stats is the honest number; the selection target sits slightly
	// above typical thresholds so holdout fidelity clears them.
	TargetFidelity float64
	// MaxRules caps the total number of extracted rules (leaves across
	// the selected trees) before deduplication; 0 means unbounded. A
	// tiny budget deterministically forces a low-fidelity rule set,
	// which is how tests exercise the engine's fallback path.
	MaxRules int
	// MergeEps is the value tolerance of the lossy subtree merge: a
	// subtree collapses into one leaf only if all its leaves sit on the
	// same side of the decision boundary and their value spread is at
	// most MergeEps. 0 (the default) keeps only the lossless merges of
	// equal-valued leaves — common after depth-limited training.
	MergeEps float64
	// SampleN and HoldoutN size the selection and holdout samples
	// (defaults 4096 and 2048).
	SampleN, HoldoutN int
	// Seed drives both samples; Sampler defaults to Latin hypercube.
	Seed    int64
	Sampler sample.Sampler
}

func (o Options) withDefaults() Options {
	if o.TargetFidelity <= 0 {
		o.TargetFidelity = 0.995
	}
	if o.SampleN <= 0 {
		o.SampleN = 4096
	}
	if o.HoldoutN <= 0 {
		o.HoldoutN = 2048
	}
	if o.Sampler == nil {
		o.Sampler = sample.LatinHypercube{}
	}
	return o
}

// Stats describe a finished distillation.
type Stats struct {
	// ParentTrees and SelectedTrees count the ensemble before and after
	// tree selection; Rules counts the exported rules (after exact
	// deduplication of identical boxes).
	ParentTrees   int `json:"parent_trees"`
	SelectedTrees int `json:"selected_trees"`
	Rules         int `json:"rules"`
	// LabelFidelity is the share of held-out points whose distilled
	// hard label matches the parent's; ProbFidelity is 1 minus the mean
	// absolute probability difference on the same points.
	LabelFidelity float64 `json:"label_fidelity"`
	ProbFidelity  float64 `json:"prob_fidelity"`
}

// Distill extracts, simplifies and prunes parent's rules into a
// compact Model. parent must implement Distillable (rf, gbt);
// ErrNotDistillable otherwise. The returned model is immutable and
// safe for concurrent use.
func Distill(parent metamodel.Model, opts Options) (*Model, error) {
	d, ok := parent.(Distillable)
	if !ok {
		return nil, ErrNotDistillable
	}
	if opts.Dim <= 0 {
		return nil, fmt.Errorf("ruleset: Options.Dim must be positive, got %d", opts.Dim)
	}
	opts = opts.withDefaults()
	src := d.DistillSource()
	if len(src.Trees) == 0 {
		return nil, fmt.Errorf("ruleset: ensemble has no trees")
	}
	boundary := 0.5
	if src.Margin {
		boundary = 0.0
	}

	// Selection and holdout samples from one seeded stream; the parent
	// labels both (its batch path, so sampling cost stays subordinate).
	rng := rand.New(rand.NewSource(opts.Seed))
	selPts := opts.Sampler.Sample(opts.SampleN, opts.Dim, rng)
	holdPts := opts.Sampler.Sample(opts.HoldoutN, opts.Dim, rng)
	parentSel := metamodel.PredictLabelBatch(parent, selPts)

	// Simplify every tree against its observed coverage, then record
	// each simplified tree's per-point leaf values and per-leaf stats
	// on the selection sample.
	simplified := make([][]flattree.Node, len(src.Trees))
	cols := make([][]float64, len(src.Trees))
	stats := make([]leafStats, len(src.Trees))
	for ti, tree := range src.Trees {
		cover := coverCounts(tree, selPts)
		simplified[ti] = simplifyTree(tree, cover, boundary, opts.MergeEps)
		cols[ti], stats[ti] = treeColumns(simplified[ti], selPts, parentSel, boundary)
	}

	selected := selectTrees(src, cols, parentSel, boundary, opts.TargetFidelity, opts.MaxRules, simplified)

	// Recompile the surviving simplified trees into a fresh table: the
	// distilled kernel runs the same branch-free lockstep descent as
	// the parent, just over far fewer trees.
	selTrees := make([][]flattree.Node, len(selected))
	for i, ti := range selected {
		selTrees[i] = simplified[ti]
	}
	m := &Model{
		table:  flattree.Compile(selTrees),
		trees:  len(selected),
		dim:    opts.Dim,
		init:   src.Init,
		scale:  src.Scale,
		margin: src.Margin,
	}

	m.export = buildExport(m, src, selected, simplified, stats, opts)
	m.stats = Stats{
		ParentTrees:   len(src.Trees),
		SelectedTrees: len(selected),
		Rules:         len(m.export.Rules),
	}

	// Honest fidelity: measured on points the selection never saw.
	distLabels := make([]float64, len(holdPts))
	distProbs := make([]float64, len(holdPts))
	m.PredictLabelBatchInto(distLabels, holdPts)
	m.PredictProbBatchInto(distProbs, holdPts)
	parentLabels := metamodel.PredictLabelBatch(parent, holdPts)
	parentProbs := metamodel.PredictProbBatch(parent, holdPts)
	agree, absDiff := 0, 0.0
	for i := range holdPts {
		if distLabels[i] == parentLabels[i] {
			agree++
		}
		d := distProbs[i] - parentProbs[i]
		if d < 0 {
			d = -d
		}
		absDiff += d
	}
	m.stats.LabelFidelity = float64(agree) / float64(len(holdPts))
	m.stats.ProbFidelity = 1 - absDiff/float64(len(holdPts))
	m.export.LabelFidelity = m.stats.LabelFidelity
	m.export.ProbFidelity = m.stats.ProbFidelity

	var err error
	if m.exportJSON, err = m.export.MarshalCanonical(); err != nil {
		return nil, fmt.Errorf("ruleset: encoding export: %w", err)
	}
	return m, nil
}
