package ruleset

import (
	"math"
	"math/rand"
	"testing"

	"github.com/reds-go/reds/internal/dataset"
	"github.com/reds-go/reds/internal/gbt"
	"github.com/reds-go/reds/internal/metamodel"
	"github.com/reds-go/reds/internal/rf"
	"github.com/reds-go/reds/internal/sample"
)

// crispData mirrors the repo-wide benchmark generator: a crisp
// axis-aligned concept tree ensembles learn almost perfectly.
func crispData(n, m int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		if row[0] < 0.5 && row[1] > 0.3 {
			y[i] = 1
		}
	}
	return dataset.MustNew(x, y)
}

// noisyData flips a quarter of the crisp labels, so individual trees
// overfit noise and disagree with the ensemble vote — the fixture that
// makes a forced single-tree rule set measurably low-fidelity.
func noisyData(n, m int, seed int64) *dataset.Dataset {
	d := crispData(n, m, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	y := append([]float64(nil), d.Y...)
	for i := range y {
		if rng.Float64() < 0.25 {
			y[i] = 1 - y[i]
		}
	}
	return dataset.MustNew(d.X, y)
}

// tiedTrainData mirrors the adversarial generator of the PR 5 batch
// tests: even columns quantized to a handful of levels so cross-row
// ties and exact-split-value queries are guaranteed.
func tiedTrainData(n, m int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	levels := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			if j%2 == 0 {
				row[j] = levels[rng.Intn(len(levels))]
			} else {
				row[j] = rng.Float64()
			}
		}
		x[i] = row
		if row[0] <= 0.5 && row[1] > 0.3 {
			y[i] = 1
		}
	}
	return dataset.MustNew(x, y)
}

// adversarialPoints mirrors PR 5's batch query generator: uniform
// points, exact copies of training rows (hitting split values),
// points with a ±Inf or NaN coordinate, and duplicates of the
// previous point.
func adversarialPoints(d *dataset.Dataset, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	m := d.M()
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, m)
		switch i % 4 {
		case 0:
			for j := range row {
				row[j] = rng.Float64()
			}
		case 1:
			copy(row, d.X[rng.Intn(d.N())])
		case 2:
			for j := range row {
				row[j] = rng.Float64()
			}
			switch rng.Intn(3) {
			case 0:
				row[rng.Intn(m)] = math.Inf(1)
			case 1:
				row[rng.Intn(m)] = math.Inf(-1)
			default:
				row[rng.Intn(m)] = math.NaN()
			}
		default:
			copy(row, pts[i-1])
		}
		pts[i] = row
	}
	return pts
}

func trainRF(t *testing.T, d *dataset.Dataset, ntrees int, seed int64) metamodel.Model {
	t.Helper()
	m, err := (&rf.Trainer{NTrees: ntrees}).Train(d, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("rf train: %v", err)
	}
	return m
}

func trainGBT(t *testing.T, d *dataset.Dataset, seed int64) metamodel.Model {
	t.Helper()
	m, err := (&gbt.Trainer{}).Train(d, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("gbt train: %v", err)
	}
	return m
}

// measureFidelity compares distilled vs parent hard labels on a fresh
// seeded LHS grid of l points.
func measureFidelity(t *testing.T, dist *Model, parent metamodel.Model, dim, l int, seed int64) float64 {
	t.Helper()
	pts := sample.LatinHypercube{}.Sample(l, dim, rand.New(rand.NewSource(seed)))
	got := make([]float64, l)
	dist.PredictLabelBatchInto(got, pts)
	want := metamodel.PredictLabelBatch(parent, pts)
	agree := 0
	for i := range got {
		if got[i] == want[i] {
			agree++
		}
	}
	return float64(agree) / float64(l)
}

// TestDifferentialAgainstParent is the core differential suite of the
// PR: the distilled kernel must agree with the parent ensemble at or
// above the configured threshold across seeded LHS grids of several
// sizes, for both distillable families.
func TestDifferentialAgainstParent(t *testing.T) {
	const threshold = 0.99
	train := crispData(400, 10, 14)
	parents := map[string]metamodel.Model{
		"rf":  trainRF(t, train, 200, 15),
		"gbt": trainGBT(t, train, 15),
	}
	for name, parent := range parents {
		t.Run(name, func(t *testing.T) {
			dist, err := Distill(parent, Options{Dim: 10, TargetFidelity: 0.995, Seed: 99})
			if err != nil {
				t.Fatalf("distill: %v", err)
			}
			st := dist.Stats()
			if st.SelectedTrees >= st.ParentTrees {
				t.Errorf("no compression: selected %d of %d trees", st.SelectedTrees, st.ParentTrees)
			}
			if st.LabelFidelity < threshold {
				t.Fatalf("holdout fidelity %.4f below %.2f", st.LabelFidelity, threshold)
			}
			for _, l := range []int{1000, 10000, 50000} {
				if fid := measureFidelity(t, dist, parent, 10, l, int64(l)); fid < threshold {
					t.Errorf("L=%d: fidelity %.4f below %.2f", l, fid, threshold)
				}
			}
		})
	}
}

// TestDistilledBatchMatchesPerPoint asserts the distilled model's
// batch path is byte-identical to its per-point path on adversarial
// inputs (±Inf, NaN, exact split values, duplicate rows) — the same
// contract rf/gbt enforce for their own flat kernels.
func TestDistilledBatchMatchesPerPoint(t *testing.T) {
	train := tiedTrainData(300, 6, 21)
	for name, parent := range map[string]metamodel.Model{
		"rf":  trainRF(t, train, 100, 22),
		"gbt": trainGBT(t, train, 22),
	} {
		t.Run(name, func(t *testing.T) {
			dist, err := Distill(parent, Options{Dim: 6, Seed: 23})
			if err != nil {
				t.Fatalf("distill: %v", err)
			}
			pts := adversarialPoints(train, 1000, 24)
			probs := make([]float64, len(pts))
			labels := make([]float64, len(pts))
			dist.PredictProbBatchInto(probs, pts)
			dist.PredictLabelBatchInto(labels, pts)
			for i, x := range pts {
				if p := dist.PredictProb(x); math.Float64bits(p) != math.Float64bits(probs[i]) {
					t.Fatalf("point %d: batch prob %v != per-point %v", i, probs[i], p)
				}
				if l := dist.PredictLabel(x); l != labels[i] {
					t.Fatalf("point %d: batch label %v != per-point %v", i, labels[i], l)
				}
			}
		})
	}
}

// TestExportEvaluatesLikeTable differentially tests the two readings
// of the same artifact: the recompiled table (the labeling kernel) and
// the exported rules evaluated by box matching (the JSON document).
// Labels must agree everywhere — including NaN/±Inf coordinates, whose
// matching semantics are defined to mirror the descent — and scores
// must agree up to float reassociation noise.
func TestExportEvaluatesLikeTable(t *testing.T) {
	train := tiedTrainData(300, 6, 31)
	for name, parent := range map[string]metamodel.Model{
		"rf":  trainRF(t, train, 100, 32),
		"gbt": trainGBT(t, train, 32),
	} {
		t.Run(name, func(t *testing.T) {
			dist, err := Distill(parent, Options{Dim: 6, Seed: 33, MergeEps: 0.05})
			if err != nil {
				t.Fatalf("distill: %v", err)
			}
			e := dist.Export()
			pts := adversarialPoints(train, 2000, 34)
			probs := make([]float64, len(pts))
			labels := make([]float64, len(pts))
			dist.PredictProbBatchInto(probs, pts)
			dist.PredictLabelBatchInto(labels, pts)
			for i, x := range pts {
				if p := e.ProbAt(x); math.Abs(p-probs[i]) > 1e-9 {
					t.Fatalf("point %d: rule-scan prob %v vs table %v", i, p, probs[i])
				}
				// Labels may legitimately differ only when the score sits
				// within reassociation noise of the decision boundary.
				if l := e.LabelAt(x); l != labels[i] && math.Abs(probs[i]-0.5) > 1e-9 {
					t.Fatalf("point %d: rule-scan label %v vs table %v (prob %v)", i, l, labels[i], probs[i])
				}
			}
		})
	}
}

// TestForcedLowFidelity pins the forcing knob the engine's fallback
// tests rely on: a one-tree rule budget against a noise-overfit forest
// must measure fidelity below any realistic threshold and report it
// honestly.
func TestForcedLowFidelity(t *testing.T) {
	train := noisyData(400, 10, 41)
	parent := trainRF(t, train, 200, 42)
	dist, err := Distill(parent, Options{Dim: 10, TargetFidelity: 1, MaxRules: 1, Seed: 43})
	if err != nil {
		t.Fatalf("distill: %v", err)
	}
	st := dist.Stats()
	if st.SelectedTrees != 1 {
		t.Fatalf("MaxRules=1 kept %d trees, want 1", st.SelectedTrees)
	}
	if st.LabelFidelity >= 0.99 {
		t.Fatalf("forced-low distillation still measured %.4f fidelity; fixture too easy", st.LabelFidelity)
	}
}

// TestNotDistillable pins the sentinel for models without tree
// structure.
func TestNotDistillable(t *testing.T) {
	if _, err := Distill(opaqueModel{}, Options{Dim: 3}); err != ErrNotDistillable {
		t.Fatalf("got %v, want ErrNotDistillable", err)
	}
}

type opaqueModel struct{}

func (opaqueModel) PredictProb(x []float64) float64  { return 0.5 }
func (opaqueModel) PredictLabel(x []float64) float64 { return 0 }
