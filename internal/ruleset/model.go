package ruleset

import (
	"math"

	"github.com/reds-go/reds/internal/flattree"
)

// Model is a distilled rule set in executable form: the selected,
// simplified trees recompiled into a flattree.Table so predictions run
// the same branch-free lockstep descent as the parent ensemble — over
// K selected trees instead of the parent's T, which is where the
// speedup comes from. It implements metamodel.Model,
// metamodel.BatchModel and metamodel.MemorySizer, so it drops into
// core.PseudoLabel and the engine's caches unchanged. Immutable after
// Distill; safe for concurrent use.
type Model struct {
	table       *flattree.Table
	trees       int
	dim         int
	init, scale float64
	margin      bool
	export      *Export
	exportJSON  []byte
	stats       Stats
}

// Stats returns the distillation's size and fidelity measurements.
func (m *Model) Stats() Stats { return m.stats }

// Export returns the interpretable artifact. Callers must treat it as
// read-only — it is shared with ExportJSON and concurrent readers.
func (m *Model) Export() *Export { return m.export }

// ExportJSON returns the canonical wire encoding of the artifact,
// computed once at distillation time.
func (m *Model) ExportJSON() []byte { return m.exportJSON }

// PredictProb implements metamodel.Model.
func (m *Model) PredictProb(x []float64) float64 {
	var dst [1]float64
	m.PredictProbBatchInto(dst[:], [][]float64{x})
	return dst[0]
}

// PredictLabel implements metamodel.Model.
func (m *Model) PredictLabel(x []float64) float64 {
	var dst [1]float64
	m.PredictLabelBatchInto(dst[:], [][]float64{x})
	return dst[0]
}

// sumInto runs the compiled descent with the source ensemble's
// accumulation constants.
func (m *Model) sumInto(dst []float64, pts [][]float64) {
	m.table.SumInto(dst, pts, len(pts[0]), m.init, m.scale)
}

// PredictProbBatchInto implements metamodel.BatchModel: the mean leaf
// value over the selected trees (mean kind) or the logistic link on
// the accumulated margin (margin kind).
func (m *Model) PredictProbBatchInto(dst []float64, pts [][]float64) {
	if len(pts) == 0 {
		return
	}
	m.sumInto(dst, pts)
	if m.margin {
		for i, z := range dst {
			dst[i] = sigmoid(z)
		}
		return
	}
	inv := float64(m.trees)
	for i := range dst {
		dst[i] /= inv
	}
}

// PredictLabelBatchInto implements metamodel.BatchModel with the
// parent families' decision boundaries: raw margin > 0 for margin
// kinds (like gbt), mean vote > 0.5 for mean kinds (like rf).
func (m *Model) PredictLabelBatchInto(dst []float64, pts [][]float64) {
	if len(pts) == 0 {
		return
	}
	m.sumInto(dst, pts)
	if m.margin {
		for i, z := range dst {
			if z > 0 {
				dst[i] = 1
			} else {
				dst[i] = 0
			}
		}
		return
	}
	inv := float64(m.trees)
	for i := range dst {
		if dst[i]/inv > 0.5 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// ApproxMemoryBytes implements metamodel.MemorySizer: the compiled
// table plus the retained export (rules dominate it; the JSON copy is
// charged too since the model keeps it alive).
func (m *Model) ApproxMemoryBytes() int64 {
	const ruleBytes = 96 // Rule struct + average bound allocations
	return m.table.MemoryBytes() + int64(len(m.export.Rules))*ruleBytes + int64(len(m.exportJSON))
}

func sigmoid(z float64) float64 {
	return 1 / (1 + math.Exp(-z))
}
