package ruleset

import (
	"sort"

	"github.com/reds-go/reds/internal/flattree"
)

// selectTrees picks the subset of simplified trees the distilled model
// keeps, scored by label agreement with the parent on the selection
// sample:
//
//   - mean ensembles (rf): trees vote independently, so they are
//     ranked by standalone agreement and the scan grows the prefix of
//     that ranking — the smallest K whose mean vote meets the target
//     wins;
//   - margin ensembles (gbt): boosting stages correct their
//     predecessors, so only natural prefixes are valid sub-models and
//     the scan grows them in training order.
//
// A MaxRules budget (> 0) stops the scan once the cumulative leaf
// count of the prefix would exceed it (at least one tree is always
// kept). If no prefix inside the budget meets the target, the
// best-agreeing (then smallest) prefix is returned — the holdout
// fidelity measurement, not the selection, decides whether the result
// is usable.
func selectTrees(src flattree.Ensemble, cols [][]float64, parentLabels []float64, boundary, target float64, maxRules int, simplified [][]flattree.Node) []int {
	T := len(cols)
	order := make([]int, T)
	for i := range order {
		order[i] = i
	}
	if !src.Margin {
		// Standalone agreement of each tree's own vote with the parent.
		agree := make([]float64, T)
		for t, col := range cols {
			n := 0.0
			for i, v := range col {
				label := 0.0
				if v > boundary {
					label = 1
				}
				if label == parentLabels[i] {
					n++
				}
			}
			agree[t] = n
		}
		sort.SliceStable(order, func(a, b int) bool { return agree[order[a]] > agree[order[b]] })
	}

	S := len(parentLabels)
	acc := make([]float64, S)
	bestK, bestAgree := 1, -1.0
	rules := 0
	for k := 0; k < T; k++ {
		ti := order[k]
		leaves := countLeaves(simplified[ti])
		if maxRules > 0 && k > 0 && rules+leaves > maxRules {
			break
		}
		rules += leaves
		col := cols[ti]
		for i := range acc {
			acc[i] += col[i]
		}
		n := 0
		for i, s := range acc {
			var label float64
			if src.Margin {
				if src.Init+src.Scale*s > 0 {
					label = 1
				}
			} else {
				if (src.Init+src.Scale*s)/float64(k+1) > 0.5 {
					label = 1
				}
			}
			if label == parentLabels[i] {
				n++
			}
		}
		a := float64(n) / float64(S)
		if a > bestAgree {
			bestAgree, bestK = a, k+1
		}
		if a >= target {
			bestK = k + 1
			break
		}
	}
	return order[:bestK]
}
